package mpsockit

// Documentation tests: the docs job in CI runs these. They keep the
// markdown honest — every relative link resolves, every fenced Go
// example stays gofmt-clean and parseable — and enforce the
// exported-comment discipline (revive's `exported` rule) on the
// packages the docs describe, without requiring revive itself.

import (
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the repo's markdown files: everything at the root
// plus docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			// SNIPPETS.md and PAPERS.md quote external material
			// verbatim (exemplar code, abstracts) whose links point
			// into repos this one does not vendor.
			if m == "SNIPPETS.md" || m == "PAPERS.md" {
				continue
			}
			files = append(files, m)
		}
	}
	if len(files) < 3 {
		t.Fatalf("found only %d markdown files — run from the repo root", len(files))
	}
	return files
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks: every relative markdown link points at a file that
// exists (anchors are stripped; external URLs are skipped — CI has no
// business depending on the network).
func TestDocsLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not exist (%v)", file, m[1], err)
			}
		}
	}
}

// goFence extracts ```go fenced blocks.
var goFence = regexp.MustCompile("(?s)```go\n(.*?)```")

// TestDocsGoSnippets: fenced Go examples in the docs must parse and
// already be in canonical gofmt form — stale or hand-mangled examples
// fail the docs job instead of rotting silently.
func TestDocsGoSnippets(t *testing.T) {
	snippets := 0
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range goFence.FindAllSubmatch(data, -1) {
			snippets++
			src := m[1]
			formatted, err := format.Source(src)
			if err != nil {
				t.Errorf("%s go snippet %d does not parse: %v", file, i+1, err)
				continue
			}
			if string(formatted) != string(src) {
				t.Errorf("%s go snippet %d is not gofmt-clean:\n--- have\n%s--- want\n%s", file, i+1, src, formatted)
			}
		}
	}
	if snippets == 0 {
		t.Fatal("no Go snippets found in docs — extraction regexp broken?")
	}
}

// TestExportedComments enforces revive's `exported` rule on the
// packages the exploration docs describe: every exported top-level
// declaration and method in internal/dse, internal/mapping and the
// coordinator packages needs a doc comment (grouped const/var/type
// specs may inherit the group's comment, as revive allows).
func TestExportedComments(t *testing.T) {
	for _, dir := range []string{"internal/dse", "internal/mapping", "internal/coord", "internal/coord/chaos", "internal/obs"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if d.Name.IsExported() && d.Doc == nil {
							t.Errorf("%s: exported %s has no doc comment",
								fset.Position(d.Pos()), d.Name.Name)
						}
					case *ast.GenDecl:
						if d.Tok == token.IMPORT {
							continue
						}
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									t.Errorf("%s: exported type %s has no doc comment",
										fset.Position(s.Pos()), s.Name.Name)
								}
							case *ast.ValueSpec:
								for _, n := range s.Names {
									if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
										t.Errorf("%s: exported %s has no doc comment",
											fset.Position(n.Pos()), n.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}
