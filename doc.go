// Package mpsockit reproduces the systems and claims of "Programming
// MPSoC Platforms: Road Works Ahead!" (Leupers, Vajda, Bekooij, Ha,
// Dömer, Nohl — DATE 2009) as a Go toolkit: an MPSoC platform
// simulator with per-core DVFS, a hybrid time-/space-shared RTOS
// scheduler, CSDF dataflow analysis with buffer sizing, a MAPS-style
// parallelizing toolflow over a C-subset IR, the HOPES CIC
// retargetable programming model with Cell-like and SMP backends, a
// designer-controlled source recoder, and a deterministic virtual
// platform with scriptable debugging.
//
// # Simulation performance
//
// Every model runs on the internal/sim discrete-event kernel, whose
// hot path is allocation-free: event records are pooled on a free
// list with generation-counted handles (a stale handle's Cancel is a
// no-op), and process wake-ups (Delay, Signal, Queue, Resource) carry
// a typed *Proc payload instead of a per-suspension closure. The
// kernel↔process handoff uses one single-token buffered channel per
// direction, so a park/resume costs two channel operations rather
// than four blocking rendezvous.
//
// On top of that, the virtual platform supports TLM-2.0-style
// temporal decoupling: vp.Config.Quantum sets how many instructions a
// core executes per kernel event, trading interleaving granularity
// for simulation speed. Quantum=1 (the default) is precise mode, with
// event ordering byte-identical to per-instruction stepping; precise
// mode is also forced automatically whenever debugging hooks
// (breakpoints, memory/IRQ watchpoints, OnStep) are installed or the
// system is suspended, so the section-VII debugging semantics never
// change. Deterministic replay holds at every quantum: identical
// configurations dispatch identical event sequences.
//
// # Design-space exploration
//
// internal/dse turns the toolkit from "runs one experiment" into
// "serves arbitrary exploration workloads": it expands a sweep
// specification into the cross product of platform configurations
// (core counts, PE-class mixes, DVFS operating points, mesh-vs-bus
// fabrics) × mapping heuristics (list/anneal/exhaustive) × workloads
// (JPEG, H.264, car radio, synthetic task graphs, RTOS job bags) ×
// simulation fidelities (task-level MVP, pipelined, and
// temporally-decoupled instruction-level VP), and evaluates every
// design point on its own kernel in a GOMAXPROCS-wide worker pool.
// Points are seeded deterministically from the sweep seed, results
// stream as JSONL in point order (byte-reproducible and resumable
// from a checkpoint prefix), and the engine extracts per-workload
// Pareto fronts over latency, energy proxy and area proxy. cmd/dse is
// the CLI.
//
// Sweeps also distribute: shard planning is a deterministic,
// cost-balanced split of the expanded point list into contiguous ID
// ranges, so N processes or hosts each run "dse -shard k/N" with no
// coordinator and produce shard files whose provenance headers
// (schema, spec, seed, expanded-point hash, ID range) make them
// safely mergeable — "dse -merge" validates headers, de-duplicates
// on point ID, refuses incomplete or conflicting shard sets, and
// writes a file byte-identical to an unsharded run. Resume uses the
// same header and fails loudly on mismatch instead of silently
// discarding a foreign checkpoint. Front quality is reported as the
// per-workload hypervolume indicator, computed exactly in three
// dimensions against a deterministic reference point, so restricted
// and full sweeps compare quantitatively. docs/dse.md is the
// workflow guide; docs/architecture.md maps the layers.
//
// bench_test.go in this directory regenerates every experiment
// (E1–E13).
package mpsockit
