// Package mpsockit reproduces the systems and claims of "Programming
// MPSoC Platforms: Road Works Ahead!" (Leupers, Vajda, Bekooij, Ha,
// Dömer, Nohl — DATE 2009) as a Go toolkit: an MPSoC platform
// simulator with per-core DVFS, a hybrid time-/space-shared RTOS
// scheduler, CSDF dataflow analysis with buffer sizing, a MAPS-style
// parallelizing toolflow over a C-subset IR, the HOPES CIC
// retargetable programming model with Cell-like and SMP backends, a
// designer-controlled source recoder, and a deterministic virtual
// platform with scriptable debugging.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// experiment index; bench_test.go in this directory regenerates every
// experiment.
package mpsockit
