// Package vp implements the virtual platform of the paper's section
// VII: "a functionally accurate simulator of a SoC that executes
// exactly the same binary software that the real hardware executes."
// It composes MR32 instruction-set simulators with shared memory and
// peripherals (timers, mailboxes, a hardware semaphore unit, a
// console) on the deterministic event kernel, and provides the two
// capabilities the section builds its debugging argument on:
//
//   - synchronous, non-intrusive whole-system suspension ("the entire
//     system can be synchronously suspended … the system can resume
//     the operation without recognizing that it has been halted"),
//     with full visibility into every core and peripheral register,
//     and
//   - deterministic snapshots and replay, so defects reproduce
//     exactly.
package vp

import (
	"fmt"

	"mpsockit/internal/isa"
	"mpsockit/internal/iss"
	"mpsockit/internal/sim"
	"mpsockit/internal/trace"
)

// Memory map.
const (
	LocalBase  = 0x0000_0000
	LocalSize  = 1 << 20
	SharedBase = 0x4000_0000
	SharedSize = 1 << 20
	MMIOBase   = 0xF000_0000

	// Per-core MMIO registers (offset from MMIOBase).
	RegCoreID   = 0x00  // R: core index
	RegConsole  = 0x04  // W: append word to core's console stream
	RegTimerPer = 0x08  // W: start periodic timer (cycles), 0 stops
	RegTimerCnt = 0x0C  // R: timer fire count
	RegHaltAll  = 0x10  // W: request whole-system stop (testing aid)
	RegMboxSend = 0x20  // W: send to core (high 16 bits = dest, low 16 = value)
	RegMboxRecv = 0x24  // R: pop own mailbox (0 if empty; use status first)
	RegMboxStat = 0x28  // R: own mailbox depth
	SemBase     = 0x100 // 16 semaphores, stride 8: +0 R=try-acquire, W=release
	SemCount    = 16
	SemStride   = 8
)

// Config sizes a virtual platform.
type Config struct {
	Cores    int
	HzPer    int64
	Timing   *isa.Timing
	TraceCap int
	// Quantum is the temporal-decoupling time quantum, expressed in
	// instructions per kernel event (TLM-2.0 style loosely-timed
	// simulation): each core executes up to Quantum instructions
	// back-to-back and then consumes their accumulated cycle time in a
	// single Delay. Quantum <= 1 is precise mode — one kernel event per
	// instruction, byte-identical event ordering to the seed model.
	// Precise stepping is also forced automatically whenever debugging
	// hooks (OnStep, OnMemAccess, OnIRQ) are installed or the system is
	// suspended, so watchpoint and breakpoint semantics never change.
	Quantum int
}

// DefaultConfig returns a 2-core 100 MHz platform in precise
// (quantum=1) mode.
func DefaultConfig(cores int) Config {
	return Config{Cores: cores, HzPer: 100_000_000, Timing: isa.TimingRISC(), Quantum: 1}
}

// VP is one virtual platform instance.
type VP struct {
	K      *sim.Kernel
	CPUs   []*iss.CPU
	Locals [][]byte
	Shared []byte
	Trace  *trace.Buffer

	cyclePeriod sim.Time
	quantum     int
	suspended   bool
	resumeSig   *sim.Signal
	procs       []*sim.Proc

	// Console collects words written to RegConsole per core.
	Console [][]uint32
	// timer state per core
	timerPeriod []int64
	timerCount  []uint32
	timerEvents []sim.Event
	// mailboxes per core
	mbox [][]uint32
	// semaphores
	sems [SemCount]uint32

	// coreNames are the per-core process names, precomputed so Start
	// does not format strings on the pooled-reuse path.
	coreNames []string
	// localDirty[i] and sharedDirty are high-water marks of bytes ever
	// written to local store i and to shared memory (by LoadProgram,
	// guest stores or Restore). Reset clears only up to the mark —
	// bytes beyond it are still in their initial all-zero state — so
	// resetting a platform that ran a 4 KiB program costs a 4 KiB
	// clear, not a multi-MiB one.
	localDirty  []int
	sharedDirty int

	// OnMemAccess observes shared-memory accesses (debug watchpoints).
	OnMemAccess func(core int, addr uint32, write bool, val uint32)
	// OnIRQ observes interrupt deliveries (signal watchpoints).
	OnIRQ func(core int)
	// OnStep runs before each instruction; returning false parks the
	// core until the system is resumed (breakpoint hook).
	OnStep func(core int, pc uint32) bool

	// InstrBudget, when positive, stops the run loop after that many
	// total instructions (runaway guard in tests).
	InstrBudget uint64
	retired     uint64
}

// New builds a virtual platform.
func New(k *sim.Kernel, cfg Config) *VP {
	if cfg.Cores <= 0 {
		panic("vp: need at least one core")
	}
	if cfg.Timing == nil {
		cfg.Timing = isa.TimingRISC()
	}
	if cfg.HzPer <= 0 {
		cfg.HzPer = 100_000_000
	}
	if cfg.Quantum < 1 {
		cfg.Quantum = 1
	}
	v := &VP{
		K:           k,
		Shared:      make([]byte, SharedSize),
		Trace:       trace.NewBuffer(cfg.TraceCap),
		cyclePeriod: sim.Time(int64(sim.Second) / cfg.HzPer),
		quantum:     cfg.Quantum,
		resumeSig:   k.NewSignal(),
	}
	for i := 0; i < cfg.Cores; i++ {
		local := make([]byte, LocalSize)
		v.Locals = append(v.Locals, local)
		bus := &coreBus{vp: v, core: i}
		cpu := iss.New(i, bus, cfg.Timing)
		// Local-store fetches carry no hooks or trace (see
		// coreBus.Load), so the CPU may read them directly.
		cpu.LocalFetch = local
		cpu.OnEcall = v.ecall
		v.CPUs = append(v.CPUs, cpu)
		v.Console = append(v.Console, nil)
		v.timerPeriod = append(v.timerPeriod, 0)
		v.timerCount = append(v.timerCount, 0)
		v.timerEvents = append(v.timerEvents, sim.Event{})
		v.mbox = append(v.mbox, nil)
		v.coreNames = append(v.coreNames, fmt.Sprintf("cpu%d", i))
		v.localDirty = append(v.localDirty, 0)
	}
	return v
}

// LoadProgram installs a program image into core's local memory and
// points its PC at the entry.
func (v *VP) LoadProgram(core int, p *isa.Program) {
	n := copy(v.Locals[core], p.Image)
	if n > v.localDirty[core] {
		v.localDirty[core] = n
	}
	v.CPUs[core].PC = p.Entry
}

// Start spawns the per-core execution processes. Call once per run
// (again after each Reset).
func (v *VP) Start() {
	for i := range v.CPUs {
		i := i
		proc := v.K.Spawn(v.coreNames[i], func(p *sim.Proc) {
			cpu := v.CPUs[i]
			for !cpu.Halted {
				for v.suspended {
					v.resumeSig.Wait(p)
				}
				// Temporal decoupling: with a quantum > 1 and no
				// debugging hooks installed, execute a burst of
				// instructions locally and consume their accumulated
				// time in one kernel event. Any hook (breakpoints,
				// watchpoints, IRQ watch) forces precise per-instruction
				// stepping so debug semantics are unchanged; the check
				// is per iteration, so hooks installed mid-run take
				// effect at the next instruction boundary.
				if v.quantum > 1 && v.OnStep == nil && v.OnMemAccess == nil && v.OnIRQ == nil {
					limit := v.quantum
					if v.InstrBudget > 0 {
						// Match the precise path's stop condition
						// (retire until retired > InstrBudget) so both
						// modes count identically at the budget edge.
						if rem := v.InstrBudget - v.retired + 1; rem < uint64(limit) {
							limit = int(rem)
						}
					}
					n, cycles := cpu.StepBurst(limit)
					v.retired += uint64(n)
					if v.InstrBudget > 0 && v.retired > v.InstrBudget {
						return
					}
					if cycles <= 0 {
						cycles = 1
					}
					p.Delay(sim.Time(cycles) * v.cyclePeriod)
					continue
				}
				if v.OnStep != nil && !v.OnStep(i, cpu.PC) {
					// Parked by the debugger; the loop re-checks the
					// suspend flag. Guard against a hook that refuses
					// without suspending (would livelock the host).
					if !v.suspended {
						p.Delay(v.cyclePeriod)
					}
					continue
				}
				cycles := cpu.Step()
				v.retired++
				if v.InstrBudget > 0 && v.retired > v.InstrBudget {
					return
				}
				if cycles <= 0 {
					cycles = 1
				}
				p.Delay(sim.Time(cycles) * v.cyclePeriod)
			}
		})
		v.procs = append(v.procs, proc)
	}
}

// Suspend halts the entire system synchronously: every core parks at
// its next instruction boundary and peripherals' timers freeze
// between events. Non-intrusive: no architectural state changes.
func (v *VP) Suspend() {
	v.suspended = true
	v.Trace.Add(trace.Event{At: v.K.Now(), Kind: trace.Sched, Detail: "suspend"})
}

// Resume releases a suspension.
func (v *VP) Resume() {
	if !v.suspended {
		return
	}
	v.suspended = false
	v.resumeSig.Broadcast()
	v.Trace.Add(trace.Event{At: v.K.Now(), Kind: trace.Sched, Detail: "resume"})
}

// Suspended reports the suspension state.
func (v *VP) Suspended() bool { return v.suspended }

// CyclePeriod returns the duration of one core clock cycle.
func (v *VP) CyclePeriod() sim.Time { return v.cyclePeriod }

// StepCore executes exactly one instruction on one core while the
// system is suspended — the per-core stepping of section VII.
func (v *VP) StepCore(core int) error {
	if !v.suspended {
		return fmt.Errorf("vp: StepCore requires a suspended system")
	}
	cpu := v.CPUs[core]
	if cpu.Halted {
		return fmt.Errorf("vp: core %d is halted", core)
	}
	cpu.Step()
	v.Trace.Add(trace.Event{At: v.K.Now(), Core: core, Kind: trace.Sched, Detail: "step"})
	return nil
}

// AllHalted reports whether every core has halted.
func (v *VP) AllHalted() bool {
	for _, c := range v.CPUs {
		if !c.Halted {
			return false
		}
	}
	return true
}

// Retired returns total instructions retired across cores.
func (v *VP) Retired() uint64 { return v.retired }

// --- Snapshot / deterministic replay ---

// Snapshot is a full-system state capture.
type Snapshot struct {
	At          sim.Time
	CPUs        []iss.State
	Locals      [][]byte
	Shared      []byte
	TimerPeriod []int64
	TimerCount  []uint32
	Mbox        [][]uint32
	Sems        [SemCount]uint32
	Console     [][]uint32
}

// Snapshot captures the complete platform state. Meaningful while
// suspended (or before Start).
func (v *VP) Snapshot() *Snapshot {
	s := &Snapshot{At: v.K.Now(), Sems: v.sems}
	for _, c := range v.CPUs {
		s.CPUs = append(s.CPUs, c.Save())
	}
	for _, l := range v.Locals {
		s.Locals = append(s.Locals, append([]byte{}, l...))
	}
	s.Shared = append([]byte{}, v.Shared...)
	s.TimerPeriod = append([]int64{}, v.timerPeriod...)
	s.TimerCount = append([]uint32{}, v.timerCount...)
	for _, m := range v.mbox {
		s.Mbox = append(s.Mbox, append([]uint32{}, m...))
	}
	for _, c := range v.Console {
		s.Console = append(s.Console, append([]uint32{}, c...))
	}
	return s
}

// Restore reinstates a snapshot's architectural state (clock position
// is not rewound; determinism comes from identical state and ordered
// events).
func (v *VP) Restore(s *Snapshot) {
	for i, cs := range s.CPUs {
		v.CPUs[i].Restore(cs)
	}
	for i, l := range s.Locals {
		if n := copy(v.Locals[i], l); n > v.localDirty[i] {
			v.localDirty[i] = n
		}
	}
	if n := copy(v.Shared, s.Shared); n > v.sharedDirty {
		v.sharedDirty = n
	}
	copy(v.timerPeriod, s.TimerPeriod)
	copy(v.timerCount, s.TimerCount)
	for i, m := range s.Mbox {
		v.mbox[i] = append([]uint32{}, m...)
	}
	v.sems = s.Sems
	for i, c := range s.Console {
		v.Console[i] = append([]uint32{}, c...)
	}
}

// Reset returns the platform — and the kernel it runs on, which the
// platform owns for the duration — to the observably-fresh state a
// new vp.New on a new kernel produces: zeroed CPUs (registers, PC,
// halted flags, counters), all-zero local and shared memory, drained
// timers, mailboxes, semaphores, consoles and trace, no suspension,
// nil debug hooks, and an empty event queue at time zero. Outstanding
// sim.Event handles are invalidated by the kernel reset's generation
// bump, so cancelling one afterwards is a no-op. Live per-core
// processes (cores that never halted, or halted cores whose final
// wake-up is still queued) are killed and unwound first; pending
// events scheduled at the current instant may fire while they unwind,
// everything later is discarded. After Reset, LoadProgram + Start
// begin a new run whose event ordering is byte-identical to a fresh
// platform's.
//
// Local and shared memory are cleared only up to their dirty
// high-water marks, which LoadProgram, guest stores and Restore
// maintain — a reset after a small program costs kilobytes, not the
// platform's full multi-MiB store. Code writing the exported Locals
// or Shared slices directly (nothing in-tree does) would bypass the
// marks and must not rely on Reset re-zeroing those bytes.
func (v *VP) Reset() {
	// Stop the periodic timers first: their handlers re-arm themselves,
	// so the process drain below could otherwise run forever.
	for i := range v.timerEvents {
		v.K.Cancel(v.timerEvents[i])
		v.timerEvents[i] = sim.Event{}
		v.timerPeriod[i] = 0
		v.timerCount[i] = 0
	}
	live := false
	for _, p := range v.procs {
		if !p.Dead() {
			p.Kill()
			live = true
		}
	}
	if live || v.K.LiveProcs() > 0 {
		v.K.Resume() // a Stop would stall the drain
		for v.K.LiveProcs() > 0 && v.K.Step() {
		}
	}
	v.procs = v.procs[:0]
	v.K.Reset()
	v.suspended = false
	v.resumeSig.Reset()
	for i, c := range v.CPUs {
		c.Reset()
		clear(v.Locals[i][:v.localDirty[i]])
		v.localDirty[i] = 0
		v.Console[i] = v.Console[i][:0]
		v.mbox[i] = v.mbox[i][:0]
	}
	clear(v.Shared[:v.sharedDirty])
	v.sharedDirty = 0
	v.sems = [SemCount]uint32{}
	v.Trace.Clear()
	v.Trace.Dropped = 0
	v.Trace.Filter = nil
	v.OnMemAccess, v.OnIRQ, v.OnStep = nil, nil, nil
	v.InstrBudget, v.retired = 0, 0
}

// --- Bus and peripherals ---

// coreBus routes one core's accesses to local RAM, shared RAM or
// MMIO.
type coreBus struct {
	vp   *VP
	core int
}

func (b *coreBus) Load(core int, addr uint32, size int) (uint32, error) {
	v := b.vp
	switch {
	case addr >= MMIOBase:
		return v.mmioLoad(b.core, addr-MMIOBase)
	case addr >= SharedBase && addr+uint32(size) <= SharedBase+SharedSize:
		off := addr - SharedBase
		val := loadLE(v.Shared[off:], size)
		v.Trace.Add(trace.Event{At: v.K.Now(), Core: b.core, Kind: trace.MemRd, Addr: addr, Value: val})
		if v.OnMemAccess != nil {
			v.OnMemAccess(b.core, addr, false, val)
		}
		return val, nil
	case addr+uint32(size) <= LocalSize:
		return loadLE(v.Locals[b.core][addr:], size), nil
	default:
		return 0, fmt.Errorf("vp: core %d load fault at 0x%08x", b.core, addr)
	}
}

func (b *coreBus) Store(core int, addr uint32, val uint32, size int) error {
	v := b.vp
	switch {
	case addr >= MMIOBase:
		return v.mmioStore(b.core, addr-MMIOBase, val)
	case addr >= SharedBase && addr+uint32(size) <= SharedBase+SharedSize:
		off := addr - SharedBase
		storeLE(v.Shared[off:], val, size)
		if end := int(off) + size; end > v.sharedDirty {
			v.sharedDirty = end
		}
		v.Trace.Add(trace.Event{At: v.K.Now(), Core: b.core, Kind: trace.MemWr, Addr: addr, Value: val})
		if v.OnMemAccess != nil {
			v.OnMemAccess(b.core, addr, true, val)
		}
		return nil
	case addr+uint32(size) <= LocalSize:
		storeLE(v.Locals[b.core][addr:], val, size)
		if end := int(addr) + size; end > v.localDirty[b.core] {
			v.localDirty[b.core] = end
		}
		return nil
	default:
		return fmt.Errorf("vp: core %d store fault at 0x%08x", b.core, addr)
	}
}

func loadLE(b []byte, size int) uint32 {
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(b[i])
	}
	return v
}

func storeLE(b []byte, v uint32, size int) {
	for i := 0; i < size; i++ {
		b[i] = byte(v)
		v >>= 8
	}
}

func (v *VP) mmioLoad(core int, off uint32) (uint32, error) {
	switch {
	case off == RegCoreID:
		return uint32(core), nil
	case off == RegTimerCnt:
		return v.timerCount[core], nil
	case off == RegMboxRecv:
		if len(v.mbox[core]) == 0 {
			return 0, nil
		}
		val := v.mbox[core][0]
		v.mbox[core] = v.mbox[core][1:]
		v.Trace.Add(trace.Event{At: v.K.Now(), Core: core, Kind: trace.Periph,
			Addr: MMIOBase + off, Value: val, Detail: "mbox-recv"})
		return val, nil
	case off == RegMboxStat:
		return uint32(len(v.mbox[core])), nil
	case off >= SemBase && off < SemBase+SemCount*SemStride:
		idx := (off - SemBase) / SemStride
		if v.sems[idx] == 0 {
			v.sems[idx] = 1
			v.Trace.Add(trace.Event{At: v.K.Now(), Core: core, Kind: trace.Periph,
				Addr: MMIOBase + off, Value: 1, Detail: fmt.Sprintf("sem%d-acquire", idx)})
			return 1, nil // acquired
		}
		return 0, nil // busy
	default:
		return 0, fmt.Errorf("vp: core %d MMIO load fault at +0x%x", core, off)
	}
}

func (v *VP) mmioStore(core int, off uint32, val uint32) error {
	switch {
	case off == RegConsole:
		v.Console[core] = append(v.Console[core], val)
		return nil
	case off == RegTimerPer:
		v.setTimer(core, int64(val))
		return nil
	case off == RegHaltAll:
		for _, c := range v.CPUs {
			c.Halted = true
		}
		return nil
	case off == RegMboxSend:
		dest := int(val >> 16)
		payload := val & 0xffff
		if dest < 0 || dest >= len(v.CPUs) {
			return fmt.Errorf("vp: mailbox send to bad core %d", dest)
		}
		if len(v.mbox[dest]) >= 16 {
			return nil // full: drop (status lets software avoid this)
		}
		v.mbox[dest] = append(v.mbox[dest], payload)
		v.Trace.Add(trace.Event{At: v.K.Now(), Core: core, Kind: trace.Periph,
			Addr: MMIOBase + off, Value: val, Detail: fmt.Sprintf("mbox-send->%d", dest)})
		v.raiseIRQ(dest)
		return nil
	case off >= SemBase && off < SemBase+SemCount*SemStride:
		idx := (off - SemBase) / SemStride
		v.sems[idx] = 0
		v.Trace.Add(trace.Event{At: v.K.Now(), Core: core, Kind: trace.Periph,
			Addr: MMIOBase + off, Value: 0, Detail: fmt.Sprintf("sem%d-release", idx)})
		return nil
	default:
		return fmt.Errorf("vp: core %d MMIO store fault at +0x%x", core, off)
	}
}

// setTimer programs core's periodic timer in core cycles.
func (v *VP) setTimer(core int, periodCycles int64) {
	// Cancel is a no-op on fired or zero-valued handles.
	v.K.Cancel(v.timerEvents[core])
	v.timerEvents[core] = sim.Event{}
	v.timerPeriod[core] = periodCycles
	if periodCycles <= 0 {
		return
	}
	var arm func()
	arm = func() {
		v.timerEvents[core] = v.K.Schedule(sim.Time(periodCycles)*v.cyclePeriod, func() {
			if v.suspended {
				// Frozen system: re-arm without firing; the timer
				// "does not recognize it has been halted".
				arm()
				return
			}
			v.timerCount[core]++
			v.raiseIRQ(core)
			arm()
		})
	}
	arm()
}

func (v *VP) raiseIRQ(core int) {
	v.CPUs[core].RaiseInterrupt()
	v.Trace.Add(trace.Event{At: v.K.Now(), Core: core, Kind: trace.IRQ, Detail: "irq"})
	if v.OnIRQ != nil {
		v.OnIRQ(core)
	}
}

// ecall provides host services: v0=1 print a0 to console, v0=14
// return-from-interrupt (PC <- k1, re-enable interrupts).
func (v *VP) ecall(c *iss.CPU) int64 {
	switch c.Regs[iss.RegV0] {
	case 1:
		v.Console[c.ID] = append(v.Console[c.ID], c.Regs[iss.RegA0])
		return 2
	case 14:
		c.PC = c.Regs[iss.RegK1]
		c.IntEnabled = true
		return 2
	default:
		return 1
	}
}

// RunFor advances the whole platform by d of virtual time.
func (v *VP) RunFor(d sim.Time) {
	v.K.RunFor(d)
}

// RunUntilHalted runs until all cores halt or maxTime passes.
func (v *VP) RunUntilHalted(maxTime sim.Time) bool {
	deadline := v.K.Now() + maxTime
	for !v.AllHalted() && v.K.Now() < deadline {
		if v.K.RunFor(10*sim.Microsecond) == 0 && v.K.Pending() == 0 {
			break
		}
	}
	return v.AllHalted()
}
