package vp

import (
	"fmt"
	"reflect"
	"testing"

	"mpsockit/internal/isa"
	"mpsockit/internal/sim"
)

// fingerprint captures everything a platform run makes observable:
// the kernel clock and event count, per-core architectural state,
// console streams, peripheral state and retired-instruction count.
type fingerprint struct {
	Now     sim.Time
	Events  uint64
	Retired uint64
	Regs    [][32]uint32
	PC      []uint32
	Cycles  []uint64
	Console [][]uint32
	Timer   []uint32
	Sems    [SemCount]uint32
	Halted  []bool
}

func fingerprintOf(v *VP) fingerprint {
	f := fingerprint{
		Now:     v.K.Now(),
		Events:  v.K.Executed,
		Retired: v.Retired(),
		Sems:    v.sems,
	}
	for i, c := range v.CPUs {
		f.Regs = append(f.Regs, c.Regs)
		f.PC = append(f.PC, c.PC)
		f.Cycles = append(f.Cycles, c.Cycles)
		f.Halted = append(f.Halted, c.Halted)
		f.Console = append(f.Console, append([]uint32{}, v.Console[i]...))
		f.Timer = append(f.Timer, v.timerCount[i])
	}
	return f
}

// workout is a 2-core program pair that touches every subsystem Reset
// must scrub: shared memory, mailboxes + interrupts, a periodic
// timer, the hardware semaphores and both consoles.
func workout(t *testing.T) [2]*isa.Program {
	t.Helper()
	return [2]*isa.Program{
		assemble(t, `
			.entry main
		handler:
			addi s1, s1, 1
			addi v0, r0, 14
			ecall                 # iret
		main:
			li   t0, 0xF0000008   # timer period
			li   t1, 500
			sw   t1, 0(t0)
			li   s2, 0x40000000
		acq:
			lw   t1, 0x100(s0)    # sem 0 try-acquire (s0 = 0, MMIO base folded below)
			li   t2, 0xF0000100
			lw   t1, 0(t2)
			beq  t1, r0, acq
			li   t3, 77
			sw   t3, 0(s2)        # shared write
			sw   r0, 0(t2)        # sem release
			li   t0, 0xF0000020
			li   t1, 0x10009      # mbox send 9 -> core 1
			sw   t1, 0(t0)
			addi t4, r0, 3
		spin:
			blt  s1, t4, spin     # wait for 3 timer ticks
			li   t0, 0xF0000008
			sw   r0, 0(t0)        # stop timer
			move a0, s1
			addi v0, r0, 1
			ecall                 # print tick count
			halt
		`),
		assemble(t, `
			li   t0, 0x40000000
		wait:
			lw   t1, 0(t0)
			beq  t1, r0, wait
			li   t2, 0xF0000024   # mbox recv (polled; IRQs stay disabled)
		drain:
			lw   a0, 0(t2)
			beq  a0, r0, drain
			addi v0, r0, 1
			ecall                 # print mailbox payload
			lw   a0, 0(t0)
			addi v0, r0, 1
			ecall                 # print shared value
			halt
		`),
	}
}

func runWorkout(t *testing.T, v *VP, progs [2]*isa.Program) fingerprint {
	t.Helper()
	v.LoadProgram(0, progs[0])
	v.LoadProgram(1, progs[1])
	v.CPUs[0].IntVector = 0
	v.CPUs[0].IntEnabled = true
	v.Start()
	if !v.RunUntilHalted(sim.Second) {
		t.Fatal("workout did not halt")
	}
	return fingerprintOf(v)
}

// TestResetObservablyFresh: a reset platform re-runs the same program
// with a byte-identical observable outcome to a brand-new platform on
// a brand-new kernel — clock, event count, consoles, architectural
// state — across precise and temporally-decoupled quanta, and with a
// different intervening program to prove no state bleeds through.
func TestResetObservablyFresh(t *testing.T) {
	progs := workout(t)
	other := [2]*isa.Program{
		assemble(t, `
			li  t0, 0x40000000
			li  t1, 0xdead
			sw  t1, 0x400(t0)
			halt
		`),
		assemble(t, `
			addi a0, r0, 5
			addi v0, r0, 1
			ecall
			halt
		`),
	}
	for _, quantum := range []int{1, 16, 64} {
		t.Run(fmt.Sprintf("quantum%d", quantum), func(t *testing.T) {
			cfg := DefaultConfig(2)
			cfg.Quantum = quantum
			fresh := New(sim.NewKernel(), cfg)
			want := runWorkout(t, fresh, progs)

			pooled := New(sim.NewKernel(), cfg)
			runWorkout(t, pooled, other) // dirty it with a different run
			pooled.Reset()
			got := runWorkout(t, pooled, progs)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("reset platform diverged from fresh:\nfresh %+v\nreset %+v", want, got)
			}
			// Twice more on the same instance: steady-state reuse.
			for round := 0; round < 2; round++ {
				pooled.Reset()
				if got := runWorkout(t, pooled, progs); !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d diverged: %+v", round, got)
				}
			}
		})
	}
}

// TestResetMemoryFullyCleared: bytes written by program load, guest
// stores and Restore are all zero after Reset, including a Restore
// whose snapshot is wider than anything the run itself dirtied.
func TestResetMemoryFullyCleared(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(1))
	v.LoadProgram(0, assemble(t, `
		li  t0, 0x40000000
		li  t1, 0x5a5a
		sw  t1, 0x200(t0)
		sw  t1, 0x100(r0)   # local store, beyond the image
		halt
	`))
	v.Start()
	if !v.RunUntilHalted(sim.Second) {
		t.Fatal("did not halt")
	}
	snap := v.Snapshot()
	snap.Locals[0][LocalSize-1] = 0xAB // dirty the far end via Restore
	snap.Shared[SharedSize-1] = 0xCD
	v.Restore(snap)
	v.Reset()
	for i, b := range v.Locals[0] {
		if b != 0 {
			t.Fatalf("local byte %#x = %#x after Reset", i, b)
		}
	}
	for i, b := range v.Shared {
		if b != 0 {
			t.Fatalf("shared byte %#x = %#x after Reset", i, b)
		}
	}
}

// TestResetStaleEventHandles: timer and user event handles taken
// before a Reset are invalidated by it — Cancel afterwards is a
// harmless no-op and the handles report not-pending.
func TestResetStaleEventHandles(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(1))
	v.LoadProgram(0, assemble(t, `
		li   t0, 0xF0000008
		li   t1, 1000
		sw   t1, 0(t0)      # arm the periodic timer
	spin:
		j    spin
	`))
	v.Start()
	k.RunFor(100 * sim.Microsecond)
	stale := k.Schedule(sim.Second, func() { t.Error("stale event fired after Reset") })
	timerEv := v.timerEvents[0]
	if !timerEv.Pending() {
		t.Fatal("timer never armed")
	}
	v.Reset()
	if stale.Pending() || timerEv.Pending() {
		t.Fatal("pre-Reset handles still pending")
	}
	k.Cancel(stale) // must be no-ops
	k.Cancel(timerEv)
	k.Run()
	if k.Executed != 0 {
		t.Fatalf("reset kernel executed %d events with nothing scheduled", k.Executed)
	}
}

// TestResetRunawayAndSuspended: Reset reclaims cores that never halt
// (spin loops) and platforms frozen mid-suspension, then supports a
// clean fresh run.
func TestResetRunawayAndSuspended(t *testing.T) {
	progs := workout(t)
	want := runWorkout(t, New(sim.NewKernel(), DefaultConfig(2)), progs)

	spin := assemble(t, `
	loop:
		addi s2, s2, 1
		j    loop
	`)
	for _, suspend := range []bool{false, true} {
		k := sim.NewKernel()
		v := New(k, DefaultConfig(2))
		v.LoadProgram(0, spin)
		v.LoadProgram(1, spin)
		v.Start()
		k.RunFor(10 * sim.Microsecond)
		if suspend {
			v.Suspend()
			k.RunFor(sim.Microsecond)
		}
		v.Reset()
		if k.LiveProcs() != 0 {
			t.Fatalf("suspend=%v: %d live processes survived Reset", suspend, k.LiveProcs())
		}
		if got := runWorkout(t, v, progs); !reflect.DeepEqual(got, want) {
			t.Fatalf("suspend=%v: post-reset run diverged:\nfresh %+v\nreset %+v", suspend, want, got)
		}
	}
}

// TestResetClearsDebugHooks: installed hooks and the instruction
// budget do not survive into the next tenant's run.
func TestResetClearsDebugHooks(t *testing.T) {
	v := New(sim.NewKernel(), DefaultConfig(1))
	v.OnStep = func(int, uint32) bool { return true }
	v.OnIRQ = func(int) {}
	v.OnMemAccess = func(int, uint32, bool, uint32) {}
	v.InstrBudget = 5
	v.Reset()
	if v.OnStep != nil || v.OnIRQ != nil || v.OnMemAccess != nil {
		t.Fatal("debug hooks survived Reset")
	}
	if v.InstrBudget != 0 || v.Retired() != 0 {
		t.Fatal("instruction budget state survived Reset")
	}
}
