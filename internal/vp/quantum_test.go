package vp

import (
	"testing"

	"mpsockit/internal/isa"
	"mpsockit/internal/sim"
)

const loopSrc = `
loop:
	addi s0, s0, 1
	mul  s1, s0, s0
	j    loop
`

// runLoop executes the compute loop for 1 ms of virtual time at the
// given quantum and returns (instructions retired, kernel events).
func runLoop(t *testing.T, quantum int) (uint64, uint64) {
	t.Helper()
	prog, err := isa.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	cfg := DefaultConfig(1)
	cfg.Quantum = quantum
	v := New(k, cfg)
	v.LoadProgram(0, prog)
	v.Start()
	k.RunUntil(sim.Millisecond)
	return v.Retired(), k.Executed
}

// Temporal decoupling must preserve the amount of work simulated per
// unit of virtual time (up to one quantum of slack at the deadline)
// while dividing the kernel event count by roughly the quantum.
func TestQuantumPreservesProgress(t *testing.T) {
	preciseInstr, preciseEvents := runLoop(t, 1)
	for _, q := range []int{8, 64} {
		qInstr, qEvents := runLoop(t, q)
		diff := int64(qInstr) - int64(preciseInstr)
		if diff < 0 {
			diff = -diff
		}
		// The decoupled core may stop up to one burst short of (or
		// past) the deadline relative to per-instruction stepping.
		if diff > int64(2*q) {
			t.Fatalf("quantum %d retired %d instructions, precise retired %d (slack > %d)",
				q, qInstr, preciseInstr, 2*q)
		}
		if qEvents*uint64(q)/2 > preciseEvents {
			t.Fatalf("quantum %d executed %d events, precise %d: expected ~%dx reduction",
				q, qEvents, preciseEvents, q)
		}
	}
}

// Any installed debugging hook must force precise per-instruction
// stepping regardless of the configured quantum.
func TestDebugHooksForcePrecise(t *testing.T) {
	prog, err := isa.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	cfg := DefaultConfig(1)
	cfg.Quantum = 64
	v := New(k, cfg)
	v.LoadProgram(0, prog)
	steps := 0
	v.OnStep = func(core int, pc uint32) bool {
		steps++
		return true
	}
	v.Start()
	k.RunUntil(10 * sim.Microsecond)
	if v.Retired() == 0 {
		t.Fatal("nothing executed")
	}
	if uint64(steps) != v.Retired() {
		t.Fatalf("OnStep saw %d instruction boundaries but %d retired: quantum bypassed the hook",
			steps, v.Retired())
	}
}

func benchLoop(b *testing.B, quantum int) {
	prog, err := isa.Assemble(loopSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		cfg := DefaultConfig(1)
		cfg.Quantum = quantum
		v := New(k, cfg)
		v.LoadProgram(0, prog)
		v.Start()
		k.RunUntil(sim.Millisecond)
	}
}

// 1 ms of virtual time on one 100 MHz core, per-instruction stepping
// versus a 64-instruction time quantum.
func BenchmarkVP1msPrecise(b *testing.B)   { benchLoop(b, 1) }
func BenchmarkVP1msQuantum64(b *testing.B) { benchLoop(b, 64) }

// Identical configurations must replay identically — event counts,
// retired instructions and architectural outcomes — with pooling and
// decoupling on.
func TestQuantumRunsAreDeterministic(t *testing.T) {
	for _, q := range []int{1, 32} {
		i1, e1 := runLoop(t, q)
		i2, e2 := runLoop(t, q)
		if i1 != i2 || e1 != e2 {
			t.Fatalf("quantum %d: run1 (%d instr, %d events) != run2 (%d instr, %d events)",
				q, i1, e1, i2, e2)
		}
	}
}
