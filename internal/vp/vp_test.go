package vp

import (
	"testing"

	"mpsockit/internal/isa"
	"mpsockit/internal/sim"
)

func assemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleCoreConsole(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(1))
	v.LoadProgram(0, assemble(t, `
		addi v0, r0, 1      # print service
		addi a0, r0, 42
		ecall
		addi a0, r0, 7
		ecall
		halt
	`))
	v.Start()
	if !v.RunUntilHalted(sim.Second) {
		t.Fatal("did not halt")
	}
	if len(v.Console[0]) != 2 || v.Console[0][0] != 42 || v.Console[0][1] != 7 {
		t.Fatalf("console = %v", v.Console[0])
	}
}

func TestCoreIDRegister(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(3))
	src := `
		li   t0, 0xF0000000
		lw   a0, 0(t0)       # core id
		addi v0, r0, 1
		ecall
		halt
	`
	p := assemble(t, src)
	for c := 0; c < 3; c++ {
		v.LoadProgram(c, p)
	}
	v.Start()
	v.RunUntilHalted(sim.Second)
	for c := 0; c < 3; c++ {
		if len(v.Console[c]) != 1 || v.Console[c][0] != uint32(c) {
			t.Fatalf("core %d printed %v", c, v.Console[c])
		}
	}
}

func TestSharedMemoryVisibleAcrossCores(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(2))
	// Core 0 writes a flag+value; core 1 spins for the flag then
	// prints the value.
	v.LoadProgram(0, assemble(t, `
		li  t0, 0x40000000
		li  t1, 1234
		sw  t1, 4(t0)       # value
		addi t2, r0, 1
		sw  t2, 0(t0)       # flag
		halt
	`))
	v.LoadProgram(1, assemble(t, `
		li  t0, 0x40000000
	spin:
		lw  t1, 0(t0)
		beq t1, r0, spin
		lw  a0, 4(t0)
		addi v0, r0, 1
		ecall
		halt
	`))
	v.Start()
	if !v.RunUntilHalted(sim.Second) {
		t.Fatal("did not halt")
	}
	if len(v.Console[1]) != 1 || v.Console[1][0] != 1234 {
		t.Fatalf("core1 console = %v", v.Console[1])
	}
}

func TestMailboxWithInterrupt(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(2))
	// Core 0 sends 0x2A to core 1's mailbox; core 1 takes the IRQ and
	// prints the payload.
	v.LoadProgram(0, assemble(t, `
		li  t0, 0xF0000020    # MBOX_SEND
		li  t1, 0x1002A       # dest=1, payload 0x2A
		sw  t1, 0(t0)
		halt
	`))
	v.LoadProgram(1, assemble(t, `
		.entry main
	handler:
		li   t0, 0xF0000024   # MBOX_RECV
		lw   a0, 0(t0)
		addi v0, r0, 1
		ecall                 # print payload
		li   t0, 0xF0000010   # HALT_ALL (end test from handler)
		sw   r0, 0(t0)
		addi v0, r0, 14
		ecall                 # iret
	main:
	spin:
		j    spin
	`))
	cpu1 := v.CPUs[1]
	cpu1.IntVector = 0 // handler at image start
	prog := assemble(t, "nop")
	_ = prog
	cpu1.IntEnabled = true
	v.Start()
	if !v.RunUntilHalted(sim.Second) {
		t.Fatal("did not halt")
	}
	if len(v.Console[1]) != 1 || v.Console[1][0] != 0x2A {
		t.Fatalf("console = %v", v.Console[1])
	}
	if cpu1.IntTaken != 1 {
		t.Fatalf("interrupts taken = %d", cpu1.IntTaken)
	}
}

func TestTimerInterruptCount(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(1))
	// Program a 1000-cycle timer; handler increments s1; main spins
	// until 5 interrupts then halts.
	v.LoadProgram(0, assemble(t, `
		.entry main
	handler:
		addi s1, s1, 1
		addi v0, r0, 14
		ecall                 # iret
	main:
		li   t0, 0xF0000008   # TIMER_PERIOD
		li   t1, 1000
		sw   t1, 0(t0)
		addi t2, r0, 5
	spin:
		blt  s1, t2, spin
		li   t0, 0xF0000008
		sw   r0, 0(t0)        # stop timer
		halt
	`))
	v.CPUs[0].IntVector = 0
	v.CPUs[0].IntEnabled = true
	v.Start()
	if !v.RunUntilHalted(sim.Second) {
		t.Fatal("did not halt")
	}
	if v.CPUs[0].Regs[17] != 5 {
		t.Fatalf("handler count = %d", v.CPUs[0].Regs[17])
	}
	if v.timerCount[0] < 5 {
		t.Fatalf("timer fired %d times", v.timerCount[0])
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(2))
	// Both cores do guarded increments; the final counter must be
	// exact (the hardware semaphore works).
	src := `
		li   s0, 0x40000000
		li   s1, 50
		li   s2, 0xF0000100
	loop:
	acq:
		lw   t1, 0(s2)
		beq  t1, r0, acq
		lw   t0, 0(s0)
		addi t0, t0, 1
		sw   t0, 0(s0)
		sw   r0, 0(s2)
		addi s1, s1, -1
		bne  s1, r0, loop
		halt
	`
	p := assemble(t, src)
	v.LoadProgram(0, p)
	v.LoadProgram(1, p)
	v.Start()
	if !v.RunUntilHalted(10 * sim.Second) {
		t.Fatal("did not halt")
	}
	var final uint32
	for i := 3; i >= 0; i-- {
		final = final<<8 | uint32(v.Shared[i])
	}
	if final != 100 {
		t.Fatalf("guarded counter = %d, want 100", final)
	}
}

func TestSuspendIsNonIntrusive(t *testing.T) {
	run := func(withSuspend bool) []uint32 {
		k := sim.NewKernel()
		v := New(k, DefaultConfig(2))
		src := `
			li   s1, 20
			li   s2, 0
		loop:
			add  s2, s2, s1
			move a0, s2
			addi v0, r0, 1
			ecall
			addi s1, s1, -1
			bne  s1, r0, loop
			halt
		`
		p := assemble(t, src)
		v.LoadProgram(0, p)
		v.LoadProgram(1, p)
		v.Start()
		if withSuspend {
			// Suspend and resume repeatedly mid-run.
			for i := 0; i < 10; i++ {
				k.RunFor(3 * sim.Microsecond)
				v.Suspend()
				// While suspended, nothing observable changes.
				k.RunFor(5 * sim.Microsecond)
				v.Resume()
			}
		}
		v.RunUntilHalted(sim.Second)
		return append(append([]uint32{}, v.Console[0]...), v.Console[1]...)
	}
	plain := run(false)
	suspended := run(true)
	if len(plain) != len(suspended) {
		t.Fatalf("suspension changed output length: %d vs %d", len(plain), len(suspended))
	}
	for i := range plain {
		if plain[i] != suspended[i] {
			t.Fatalf("suspension changed output at %d: %d vs %d", i, plain[i], suspended[i])
		}
	}
}

func TestSnapshotRestoreReplay(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(2))
	src := `
		li   s1, 1000
	loop:
		addi s2, s2, 3
		addi s1, s1, -1
		bne  s1, r0, loop
		halt
	`
	p := assemble(t, src)
	v.LoadProgram(0, p)
	v.LoadProgram(1, p)
	v.Start()
	k.RunFor(20 * sim.Microsecond)
	v.Suspend()
	k.RunFor(sim.Microsecond)
	snap := v.Snapshot()
	r2a := v.CPUs[0].Regs[18]
	v.Resume()
	k.RunFor(20 * sim.Microsecond)
	after := v.CPUs[0].Regs[18]
	if after == r2a {
		t.Fatal("no progress after resume")
	}
	// Restore and replay: the same amount of virtual time must yield
	// the same state (deterministic replay for phase-2 debugging).
	v.Suspend()
	v.Restore(snap)
	v.Resume()
	k.RunFor(20 * sim.Microsecond)
	replay := v.CPUs[0].Regs[18]
	if replay != after {
		t.Fatalf("replay diverged: %d vs %d", replay, after)
	}
}

func TestStepCoreWhileSuspended(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(2))
	p := assemble(t, `
	loop:
		addi s2, s2, 1
		j    loop
	`)
	v.LoadProgram(0, p)
	v.LoadProgram(1, p)
	v.Start()
	k.RunFor(5 * sim.Microsecond)
	v.Suspend()
	k.RunFor(sim.Microsecond)
	before0 := v.CPUs[0].Regs[18]
	before1 := v.CPUs[1].Regs[18]
	// Step core 0 twice: only it advances.
	if err := v.StepCore(0); err != nil {
		t.Fatal(err)
	}
	if err := v.StepCore(0); err != nil {
		t.Fatal(err)
	}
	if v.CPUs[0].Regs[18] == before0 && v.CPUs[0].PC == 0 {
		t.Fatal("stepped core did not advance")
	}
	if v.CPUs[1].Regs[18] != before1 {
		t.Fatal("non-stepped core advanced during suspension")
	}
	if err := v.StepCore(0); err != nil {
		t.Fatal(err)
	}
	// Stepping without suspension is an error.
	v.Resume()
	if err := v.StepCore(0); err == nil {
		t.Fatal("StepCore allowed while running")
	}
}

func TestTraceRecordsPeripherals(t *testing.T) {
	k := sim.NewKernel()
	v := New(k, DefaultConfig(2))
	v.LoadProgram(0, assemble(t, `
		li  t0, 0xF0000020
		li  t1, 0x10005
		sw  t1, 0(t0)       # mbox send -> core 1
		halt
	`))
	v.LoadProgram(1, assemble(t, `halt`))
	v.Start()
	v.RunUntilHalted(sim.Second)
	if len(v.Trace.OfKind(4)) == 0 { // trace.IRQ
		t.Fatal("no IRQ trace events")
	}
	found := false
	for _, e := range v.Trace.Events() {
		if e.Detail == "mbox-send->1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mailbox send not traced:\n%s", v.Trace.Dump())
	}
}
