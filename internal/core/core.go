// Package core is the toolkit façade: it wires the paper's toolflow
// end to end. A sequential C-subset program goes in; analysis
// (internal/dfa), MAPS-style partitioning (internal/partition),
// task-to-PE mapping (internal/mapping) and high-level simulation
// come out, with a consolidated report. The cmd tools and examples
// drive this API; each stage remains individually accessible for
// finer control.
package core

import (
	"fmt"
	"strings"

	"mpsockit/internal/cir"
	"mpsockit/internal/mapping"
	"mpsockit/internal/noc"
	"mpsockit/internal/partition"
	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
)

// Flow is one program's journey through the toolchain.
type Flow struct {
	Prog *cir.Program
	// Partition result (after Partition).
	Part *partition.Result
	// Assignment (after MapTo).
	Assign *mapping.Assignment
	// Measured makespan (after Simulate).
	Measured sim.Time
	// SerialBaseline is the single-core makespan on the best single
	// core (for speedup reporting).
	SerialBaseline sim.Time
	// Iterations is how many data sets (frames/blocks) Simulate
	// pipelines through the mapped graph (default 16).
	Iterations int

	steps []string
}

// NewFlow parses a C-subset source.
func NewFlow(src string) (*Flow, error) {
	prog, err := cir.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Flow{Prog: prog}, nil
}

// Partition runs the MAPS partitioner on fn.
func (f *Flow) Partition(fn string, opt partition.Options) error {
	res, err := partition.Partition(f.Prog, fn, opt)
	if err != nil {
		return err
	}
	f.Part = res
	f.steps = append(f.steps, fmt.Sprintf("partitioned %s into %d tasks", fn, len(res.Graph.Tasks)))
	return nil
}

// ApplyPragmas copies '#pragma maps' annotations from the source
// function onto the partitioned tasks (period/deadline/pe hints).
func (f *Flow) ApplyPragmas(fn string) {
	if f.Part == nil {
		return
	}
	fd := f.Prog.Func(fn)
	if fd == nil {
		return
	}
	if v, ok := fd.Pragma("pe"); ok {
		if class, err := platform.ParsePEClass(v); err == nil {
			for _, t := range f.Part.Graph.Tasks {
				t.PreferredPE = class
				t.HasPref = true
			}
			f.steps = append(f.steps, "applied pe="+v+" preference")
		}
	}
}

// MapTo maps the partitioned graph onto a platform. The flow targets
// streaming execution, so the default objective is pipeline
// throughput.
func (f *Flow) MapTo(plat *platform.Platform, opt mapping.Options) error {
	if f.Part == nil {
		return fmt.Errorf("core: Partition must run before MapTo")
	}
	opt.Objective = mapping.Throughput
	a, err := mapping.Map(f.Part.Graph, plat, opt)
	if err != nil {
		return err
	}
	f.Assign = a
	f.steps = append(f.steps, fmt.Sprintf("mapped with %v: estimated makespan %v", opt.Heuristic, a.Makespan))
	return nil
}

// Simulate executes the mapping on the event-driven platform model
// (the MVP-style high-level simulation), pipelining Iterations data
// sets through the task graph, and records the serial baseline for
// speedup reporting.
func (f *Flow) Simulate() error {
	if f.Assign == nil {
		return fmt.Errorf("core: MapTo must run before Simulate")
	}
	iters := f.Iterations
	if iters <= 0 {
		iters = 16
	}
	stats, err := mapping.ExecutePipelined(f.Assign, iters)
	if err != nil {
		return err
	}
	f.Measured = stats.Makespan
	f.SerialBaseline = SerialMakespan(f.Part.Graph, f.Assign.Platform) * sim.Time(iters)
	f.steps = append(f.steps, fmt.Sprintf("simulated %d pipelined iterations: makespan %v", iters, stats.Makespan))
	return nil
}

// Speedup returns serial baseline over measured parallel makespan.
func (f *Flow) Speedup() float64 {
	if f.Measured == 0 {
		return 0
	}
	return float64(f.SerialBaseline) / float64(f.Measured)
}

// Report renders the whole flow for the designer.
func (f *Flow) Report() string {
	var b strings.Builder
	b.WriteString("=== mpsockit flow report ===\n")
	for _, s := range f.steps {
		b.WriteString("  - " + s + "\n")
	}
	if f.Part != nil {
		b.WriteString(f.Part.Report)
	}
	if f.Assign != nil {
		b.WriteString(f.Assign.Gantt())
	}
	if f.Measured > 0 {
		fmt.Fprintf(&b, "serial baseline %v, parallel %v, speedup %.2fx\n",
			f.SerialBaseline, f.Measured, f.Speedup())
	}
	return b.String()
}

// SerialMakespan computes the best single-core execution time of a
// task graph on the platform (every task on one core, no comm).
func SerialMakespan(g *taskgraph.Graph, plat *platform.Platform) sim.Time {
	best := sim.Forever
	for _, c := range plat.Cores {
		var total sim.Time
		ok := true
		for _, t := range g.Tasks {
			if !t.CanRunOn(c.Class) {
				ok = false
				break
			}
			total += c.Cycles(t.CyclesOn(c.Class))
		}
		if ok && total < best {
			best = total
		}
	}
	if best == sim.Forever {
		return 0
	}
	return best
}

// DefaultPlatform builds the standard 6-PE wireless terminal used by
// the examples and cmd tools.
func DefaultPlatform() *platform.Platform {
	k := sim.NewKernel()
	return platform.NewWirelessTerminal(k, noc.MeshFor(k, 6))
}

// HomogeneousPlatform builds an n-core homogeneous manycore.
func HomogeneousPlatform(n int, hz int64) *platform.Platform {
	k := sim.NewKernel()
	return platform.NewHomogeneous(k, n, hz, noc.MeshFor(k, n))
}
