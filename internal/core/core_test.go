package core

import (
	"strings"
	"testing"

	"mpsockit/internal/mapping"
	"mpsockit/internal/partition"
	"mpsockit/internal/workload"
)

func TestFlowEndToEnd(t *testing.T) {
	f, err := NewFlow(workload.JPEGSourceCIR)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Partition("main", partition.Options{MaxTasks: 4, MinTaskCycles: 500}); err != nil {
		t.Fatal(err)
	}
	if err := f.MapTo(DefaultPlatform(), mapping.Options{Heuristic: mapping.List}); err != nil {
		t.Fatal(err)
	}
	if err := f.Simulate(); err != nil {
		t.Fatal(err)
	}
	if f.Speedup() <= 1.0 {
		t.Fatalf("JPEG flow speedup %.2f, want > 1 (the section IV claim)", f.Speedup())
	}
	rep := f.Report()
	for _, want := range []string{"flow report", "MAPS partition", "makespan", "speedup"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report lacks %q:\n%s", want, rep)
		}
	}
}

func TestFlowOrderEnforced(t *testing.T) {
	f, _ := NewFlow("void main() { int x = 0; x += 1; }")
	if err := f.MapTo(DefaultPlatform(), mapping.Options{}); err == nil {
		t.Fatal("MapTo before Partition accepted")
	}
	if err := f.Simulate(); err == nil {
		t.Fatal("Simulate before MapTo accepted")
	}
}

func TestApplyPragmas(t *testing.T) {
	src := `
		int a[64];
		int b[64];
		#pragma maps task pe=DSP
		void main() {
			for (int i = 0; i < 64; i++) { b[i] = a[i] * 3; }
		}
	`
	f, err := NewFlow(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Partition("main", partition.Options{MaxTasks: 2, MinTaskCycles: 1}); err != nil {
		t.Fatal(err)
	}
	f.ApplyPragmas("main")
	for _, task := range f.Part.Graph.Tasks {
		if !task.HasPref {
			t.Fatal("pragma preference not applied")
		}
	}
	if err := f.MapTo(DefaultPlatform(), mapping.Options{Heuristic: mapping.List}); err != nil {
		t.Fatal(err)
	}
	for _, pe := range f.Assign.TaskPE {
		if f.Assign.Platform.Core(pe).Class.String() != "DSP" {
			t.Fatalf("task not on DSP despite pragma")
		}
	}
}

func TestSerialMakespanPicksBestCore(t *testing.T) {
	f, _ := NewFlow(workload.JPEGSourceCIR)
	_ = f.Partition("main", partition.Options{MaxTasks: 3, MinTaskCycles: 1})
	plat := DefaultPlatform()
	s := SerialMakespan(f.Part.Graph, plat)
	if s <= 0 {
		t.Fatal("no serial baseline")
	}
}
