package noc

import (
	"testing"
	"testing/quick"

	"mpsockit/internal/sim"
)

func TestMeshRouteXY(t *testing.T) {
	k := sim.NewKernel()
	m := NewMesh(k, 4, 4, 2*sim.Nanosecond, 8)
	// core 0 at (0,0), core 15 at (3,3): 3 X-hops then 3 Y-hops.
	links := m.route(0, 15)
	if len(links) != 6 {
		t.Fatalf("route length %d, want 6", len(links))
	}
	if m.Hops(0, 15) != 6 {
		t.Fatalf("hops = %d, want 6", m.Hops(0, 15))
	}
	if m.Hops(5, 5) != 0 {
		t.Fatal("self hops should be 0")
	}
}

func TestMeshTransferLatency(t *testing.T) {
	k := sim.NewKernel()
	m := NewMesh(k, 4, 1, 2*sim.Nanosecond, 8)
	var doneAt sim.Time = -1
	m.Transfer(0, 2, 64, func() { doneAt = k.Now() })
	k.Run()
	// 2 hops * 2ns header + 64B/8Bns = 8ns serialization = 12ns.
	want := 2*2*sim.Nanosecond + 8*sim.Nanosecond
	if doneAt != want {
		t.Fatalf("transfer done at %v, want %v", doneAt, want)
	}
	if got := m.EstLatency(0, 2, 64); got != want {
		t.Fatalf("EstLatency = %v, want %v", got, want)
	}
}

func TestMeshLocalTransfer(t *testing.T) {
	k := sim.NewKernel()
	m := NewMesh(k, 2, 2, 3*sim.Nanosecond, 8)
	var doneAt sim.Time = -1
	m.Transfer(1, 1, 1024, func() { doneAt = k.Now() })
	k.Run()
	if doneAt != 3*sim.Nanosecond {
		t.Fatalf("local transfer at %v, want hop latency", doneAt)
	}
}

func TestMeshContention(t *testing.T) {
	k := sim.NewKernel()
	m := NewMesh(k, 4, 1, 0, 8) // zero hop latency isolates serialization
	var t1, t2 sim.Time
	// Two transfers sharing the 0->1 link, issued simultaneously.
	m.Transfer(0, 3, 80, func() { t1 = k.Now() })
	m.Transfer(0, 2, 80, func() { t2 = k.Now() })
	k.Run()
	if t2 <= t1 {
		t.Fatalf("second transfer (%v) should finish after first (%v)", t2, t1)
	}
	if m.TotalWait == 0 {
		t.Fatal("contention wait not recorded")
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	k := sim.NewKernel()
	m := NewMesh(k, 4, 2, 0, 8)
	var t1, t2 sim.Time
	m.Transfer(0, 1, 80, func() { t1 = k.Now() })
	m.Transfer(6, 7, 80, func() { t2 = k.Now() })
	k.Run()
	if t1 != t2 {
		t.Fatalf("disjoint transfers should complete together: %v vs %v", t1, t2)
	}
	if m.TotalWait != 0 {
		t.Fatal("disjoint paths should not contend")
	}
}

func TestBusSerializesEverything(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, 2*sim.Nanosecond, 8)
	var finishes []sim.Time
	for i := 0; i < 4; i++ {
		b.Transfer(i, i+1, 64, func() { finishes = append(finishes, k.Now()) })
	}
	k.Run()
	per := 2*sim.Nanosecond + 8*sim.Nanosecond
	for i, f := range finishes {
		want := sim.Time(i+1) * per
		if f != want {
			t.Fatalf("transfer %d finished at %v, want %v", i, f, want)
		}
	}
	if b.TotalWait == 0 {
		t.Fatal("bus contention not recorded")
	}
}

func TestBusVsMeshScaling(t *testing.T) {
	// The E1 premise in miniature: with many disjoint flows, the mesh's
	// aggregate bandwidth beats the serialized bus.
	const n = 16
	flow := func(f interface {
		Transfer(src, dst, bytes int, done func())
	}, k *sim.Kernel) sim.Time {
		var last sim.Time
		for i := 0; i < n; i += 2 {
			f.Transfer(i, i+1, 256, func() {
				if k.Now() > last {
					last = k.Now()
				}
			})
		}
		k.Run()
		return last
	}
	k1 := sim.NewKernel()
	meshDone := flow(NewMesh(k1, 4, 4, 2*sim.Nanosecond, 8), k1)
	k2 := sim.NewKernel()
	busDone := flow(DefaultBus(k2), k2)
	if meshDone >= busDone {
		t.Fatalf("mesh (%v) should beat bus (%v) on disjoint flows", meshDone, busDone)
	}
}

func TestMeshForCapacity(t *testing.T) {
	k := sim.NewKernel()
	for _, n := range []int{1, 2, 5, 16, 17, 64} {
		m := MeshFor(k, n)
		if m.W*m.H < n {
			t.Fatalf("MeshFor(%d) = %dx%d too small", n, m.W, m.H)
		}
	}
}

// Property: route(src,dst) length equals Manhattan distance and every
// transfer eventually completes exactly once.
func TestMeshRouteProperty(t *testing.T) {
	f := func(srcRaw, dstRaw uint8) bool {
		k := sim.NewKernel()
		m := NewMesh(k, 5, 5, sim.Nanosecond, 8)
		src := int(srcRaw) % 25
		dst := int(dstRaw) % 25
		if len(m.route(src, dst)) != m.Hops(src, dst) {
			return false
		}
		count := 0
		m.Transfer(src, dst, 32, func() { count++ })
		k.Run()
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
