// Package noc implements the on-chip interconnects of the platform
// model: a distributed 2-D mesh network-on-chip with XY routing (the
// "scalable, fast and low-latency chip interconnect" section II-A of
// the paper calls for) and a centralized shared bus (the kind of
// "centralized construct" the same section argues a scalable design
// must avoid — kept as the comparison baseline).
//
// Both fabrics use a deterministic busy-until contention model: a
// transfer reserves each resource (link or bus) from max(arrival,
// resource-free time) for its serialization duration. This captures
// the first-order queueing behaviour that makes centralized fabrics
// collapse under core-count scaling without simulating individual
// flits.
package noc

import (
	"fmt"

	"mpsockit/internal/sim"
)

// Mesh is a W×H 2-D mesh NoC with dimension-ordered (XY) routing.
// Core i sits at node (i % W, i / W).
type Mesh struct {
	k *sim.Kernel
	// W and H are the mesh dimensions in nodes.
	W, H int
	// HopLatency is the router+link traversal latency per hop.
	HopLatency sim.Time
	// BytesPerNS is the link bandwidth in bytes per nanosecond.
	BytesPerNS int64

	// busyUntil[l] is the time link l becomes free. Links are indexed
	// by direction: for each node, 4 outgoing links (E, W, N, S).
	busyUntil []sim.Time

	// Transfers counts completed transfers; TotalWait accumulates
	// contention stalls across all transfers.
	Transfers uint64
	TotalWait sim.Time

	// routeBuf is reused by route so per-transfer routing does not
	// allocate. Model code runs single-threaded on the kernel, and
	// Transfer consumes the route before returning.
	routeBuf []int
}

// NewMesh returns a w×h mesh attached to kernel k with the given hop
// latency and per-link bandwidth.
func NewMesh(k *sim.Kernel, w, h int, hopLatency sim.Time, bytesPerNS int64) *Mesh {
	if w <= 0 || h <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	if bytesPerNS <= 0 {
		panic("noc: bandwidth must be positive")
	}
	return &Mesh{
		k: k, W: w, H: h,
		HopLatency: hopLatency, BytesPerNS: bytesPerNS,
		busyUntil: make([]sim.Time, w*h*4),
	}
}

// MeshFor returns a roughly square mesh with capacity for n cores,
// with default latency (2 ns/hop) and bandwidth (8 B/ns).
func MeshFor(k *sim.Kernel, n int) *Mesh {
	w := 1
	for w*w < n {
		w++
	}
	h := (n + w - 1) / w
	return NewMesh(k, w, h, 2*sim.Nanosecond, 8)
}

// Name implements platform.Fabric.
func (m *Mesh) Name() string { return fmt.Sprintf("mesh%dx%d", m.W, m.H) }

func (m *Mesh) nodeOf(core int) (x, y int) { return core % m.W, core / m.W }

const (
	dirE = 0
	dirW = 1
	dirN = 2
	dirS = 3
)

// route returns the link indices a packet traverses from src to dst
// under XY routing (X first, then Y). The slice is the mesh's reused
// buffer — valid until the next route call.
func (m *Mesh) route(src, dst int) []int {
	sx, sy := m.nodeOf(src)
	dx, dy := m.nodeOf(dst)
	links := m.routeBuf[:0]
	x, y := sx, sy
	for x != dx {
		dir := dirE
		if dx < x {
			dir = dirW
		}
		links = append(links, (y*m.W+x)*4+dir)
		if dx < x {
			x--
		} else {
			x++
		}
	}
	for y != dy {
		dir := dirS
		if dy < y {
			dir = dirN
		}
		links = append(links, (y*m.W+x)*4+dir)
		if dy < y {
			y--
		} else {
			y++
		}
	}
	m.routeBuf = links
	return links
}

// Hops returns the Manhattan hop count between two cores.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.nodeOf(src)
	dx, dy := m.nodeOf(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (m *Mesh) serialization(bytes int) sim.Time {
	if bytes <= 0 {
		bytes = 1
	}
	ns := (int64(bytes) + m.BytesPerNS - 1) / m.BytesPerNS
	return sim.Time(ns) * sim.Nanosecond
}

// Transfer implements platform.Fabric. The payload claims each link on
// the XY route in order; each claim starts when both the payload head
// has arrived and the link is free (wormhole-style approximation).
func (m *Mesh) Transfer(src, dst, bytes int, done func()) {
	now := m.k.Now()
	if src == dst {
		// Local: one local-store hop.
		m.k.Schedule(m.HopLatency, done)
		return
	}
	ser := m.serialization(bytes)
	head := now
	var wait sim.Time
	for _, l := range m.route(src, dst) {
		start := head
		if m.busyUntil[l] > start {
			wait += m.busyUntil[l] - start
			start = m.busyUntil[l]
		}
		m.busyUntil[l] = start + ser
		head = start + m.HopLatency
	}
	finish := head + ser // tail drains after the head arrives
	m.Transfers++
	m.TotalWait += wait
	m.k.At(finish, done)
}

// EstLatency implements platform.Fabric: zero-load latency.
func (m *Mesh) EstLatency(src, dst, bytes int) sim.Time {
	if src == dst {
		return m.HopLatency
	}
	return sim.Time(m.Hops(src, dst))*m.HopLatency + m.serialization(bytes)
}

// Stats implements platform.Fabric.
func (m *Mesh) Stats() (uint64, sim.Time) {
	return m.Transfers, m.TotalWait
}

// Bus is a single shared split-transaction bus: every transfer
// serializes through one arbiter. It is the centralized baseline for
// experiment E1.
type Bus struct {
	k *sim.Kernel
	// ArbLatency is the arbitration overhead per transfer.
	ArbLatency sim.Time
	// BytesPerNS is the bus bandwidth.
	BytesPerNS int64

	busyUntil sim.Time
	Transfers uint64
	TotalWait sim.Time
}

// NewBus returns a shared bus attached to kernel k.
func NewBus(k *sim.Kernel, arbLatency sim.Time, bytesPerNS int64) *Bus {
	if bytesPerNS <= 0 {
		panic("noc: bandwidth must be positive")
	}
	return &Bus{k: k, ArbLatency: arbLatency, BytesPerNS: bytesPerNS}
}

// DefaultBus matches the mesh's raw link speed (8 B/ns, 2 ns
// arbitration) so E1 compares topology, not link technology.
func DefaultBus(k *sim.Kernel) *Bus {
	return NewBus(k, 2*sim.Nanosecond, 8)
}

// Name implements platform.Fabric.
func (b *Bus) Name() string { return "sharedbus" }

func (b *Bus) serialization(bytes int) sim.Time {
	if bytes <= 0 {
		bytes = 1
	}
	ns := (int64(bytes) + b.BytesPerNS - 1) / b.BytesPerNS
	return sim.Time(ns) * sim.Nanosecond
}

// Transfer implements platform.Fabric: transfers queue on the single
// bus resource.
func (b *Bus) Transfer(src, dst, bytes int, done func()) {
	now := b.k.Now()
	start := now
	if b.busyUntil > start {
		b.TotalWait += b.busyUntil - start
		start = b.busyUntil
	}
	dur := b.ArbLatency + b.serialization(bytes)
	b.busyUntil = start + dur
	b.Transfers++
	b.k.At(start+dur, done)
}

// EstLatency implements platform.Fabric.
func (b *Bus) EstLatency(src, dst, bytes int) sim.Time {
	return b.ArbLatency + b.serialization(bytes)
}

// Stats implements platform.Fabric.
func (b *Bus) Stats() (uint64, sim.Time) {
	return b.Transfers, b.TotalWait
}
