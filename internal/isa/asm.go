package isa

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a flat little-endian memory
// image plus the symbol table.
type Program struct {
	Image   []byte
	Entry   uint32
	Symbols map[string]uint32
	// Source maps word addresses back to source line numbers for the
	// debugger's source-level views.
	Source map[uint32]int
}

// WordAt returns the 32-bit word at addr.
func (p *Program) WordAt(addr uint32) uint32 {
	return binary.LittleEndian.Uint32(p.Image[addr:])
}

// regAliases maps register names to numbers; MIPS-style conventions.
var regAliases = map[string]int{
	"zero": 0, "at": 1, "v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
	"s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"t8": 24, "t9": 25, "k0": 26, "k1": 27,
	"gp": 28, "sp": 29, "fp": 30, "ra": 31,
}

// ParseReg resolves a register name (r0..r31 or an alias).
func ParseReg(s string) (int, error) {
	s = strings.TrimSuffix(strings.ToLower(s), ",")
	if n, ok := regAliases[s]; ok {
		return n, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("isa: bad register %q", s)
}

type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.line, e.msg) }

// item is one assembled unit: an instruction (possibly pending label
// resolution) or literal data.
type item struct {
	addr  uint32
	line  int
	data  []byte // literal bytes, when instruction == nil
	emit  func(symbols map[string]uint32) (uint32, error)
	words int
}

// Assembler state for a single Assemble call.
type assembler struct {
	pc      uint32
	items   []item
	symbols map[string]uint32
	maxAddr uint32
	entry   uint32
	hasEnt  bool
}

// Assemble translates MR32 assembly source into a Program. Two passes:
// the first lays out addresses and collects labels, the second
// resolves label references.
//
// Syntax: one instruction, directive or label per line; comments start
// with '#' or ';'. Directives: .org N, .word v[,v...], .byte, .space N,
// .asciz "s", .align N, .entry label.
func Assemble(src string) (*Program, error) {
	a := &assembler{symbols: map[string]uint32{}}
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		if err := a.doLine(line, raw); err != nil {
			return nil, err
		}
	}
	// Pass 2: resolve and emit.
	size := a.maxAddr
	if size < 4 {
		size = 4
	}
	img := make([]byte, size)
	source := map[uint32]int{}
	for _, it := range a.items {
		if it.emit != nil {
			w, err := it.emit(a.symbols)
			if err != nil {
				return nil, &asmError{it.line, err.Error()}
			}
			binary.LittleEndian.PutUint32(img[it.addr:], w)
			source[it.addr] = it.line
		} else {
			copy(img[it.addr:], it.data)
		}
	}
	entry := a.entry
	return &Program{Image: img, Entry: entry, Symbols: a.symbols, Source: source}, nil
}

func stripComment(s string) string {
	for _, c := range []string{"#", ";"} {
		if i := strings.Index(s, c); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

func (a *assembler) bump(bytes uint32) {
	a.pc += bytes
	if a.pc > a.maxAddr {
		a.maxAddr = a.pc
	}
}

func (a *assembler) doLine(line int, raw string) error {
	s := stripComment(raw)
	if s == "" {
		return nil
	}
	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if label == "" || strings.ContainsAny(label, " \t") {
			return &asmError{line, "malformed label"}
		}
		if _, dup := a.symbols[label]; dup {
			return &asmError{line, "duplicate label " + label}
		}
		a.symbols[label] = a.pc
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	fields := strings.Fields(strings.ReplaceAll(s, ",", " , "))
	// Re-split into mnemonic + comma-separated operands.
	mn := strings.ToLower(fields[0])
	var ops []string
	cur := ""
	for _, f := range fields[1:] {
		if f == "," {
			ops = append(ops, cur)
			cur = ""
		} else if cur == "" {
			cur = f
		} else {
			cur += " " + f
		}
	}
	if cur != "" {
		ops = append(ops, cur)
	}
	if strings.HasPrefix(mn, ".") {
		return a.directive(line, mn, ops, s)
	}
	return a.instruction(line, mn, ops)
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	return strconv.ParseInt(s, 0, 64)
}

func (a *assembler) directive(line int, mn string, ops []string, full string) error {
	switch mn {
	case ".org":
		if len(ops) != 1 {
			return &asmError{line, ".org needs one operand"}
		}
		v, err := parseInt(ops[0])
		if err != nil {
			return &asmError{line, err.Error()}
		}
		a.pc = uint32(v)
		if a.pc > a.maxAddr {
			a.maxAddr = a.pc
		}
	case ".word":
		for _, op := range ops {
			op := op
			addr := a.pc
			a.items = append(a.items, item{addr: addr, line: line,
				emit: func(sym map[string]uint32) (uint32, error) {
					if v, err := parseInt(op); err == nil {
						return uint32(v), nil
					}
					if v, ok := sym[strings.TrimSpace(op)]; ok {
						return v, nil
					}
					return 0, fmt.Errorf("bad .word operand %q", op)
				}})
			a.bump(4)
		}
	case ".byte":
		var data []byte
		for _, op := range ops {
			v, err := parseInt(op)
			if err != nil {
				return &asmError{line, err.Error()}
			}
			data = append(data, byte(v))
		}
		a.items = append(a.items, item{addr: a.pc, line: line, data: data})
		a.bump(uint32(len(data)))
	case ".space":
		if len(ops) != 1 {
			return &asmError{line, ".space needs one operand"}
		}
		v, err := parseInt(ops[0])
		if err != nil || v < 0 {
			return &asmError{line, "bad .space size"}
		}
		a.bump(uint32(v))
	case ".asciz":
		i := strings.Index(full, "\"")
		j := strings.LastIndex(full, "\"")
		if i < 0 || j <= i {
			return &asmError{line, ".asciz needs a quoted string"}
		}
		str, err := strconv.Unquote(full[i : j+1])
		if err != nil {
			return &asmError{line, err.Error()}
		}
		data := append([]byte(str), 0)
		a.items = append(a.items, item{addr: a.pc, line: line, data: data})
		a.bump(uint32(len(data)))
	case ".align":
		if len(ops) != 1 {
			return &asmError{line, ".align needs one operand"}
		}
		v, err := parseInt(ops[0])
		if err != nil || v <= 0 {
			return &asmError{line, "bad alignment"}
		}
		mask := uint32(v) - 1
		a.pc = (a.pc + mask) &^ mask
		if a.pc > a.maxAddr {
			a.maxAddr = a.pc
		}
	case ".entry":
		if len(ops) != 1 {
			return &asmError{line, ".entry needs a label"}
		}
		lbl := strings.TrimSpace(ops[0])
		a.hasEnt = true
		a.items = append(a.items, item{addr: 0, line: line,
			emit: func(sym map[string]uint32) (uint32, error) {
				v, ok := sym[lbl]
				if !ok {
					return 0, fmt.Errorf("unknown entry label %q", lbl)
				}
				a.entry = v
				return 0, nil
			}})
	default:
		return &asmError{line, "unknown directive " + mn}
	}
	return nil
}

// fixed emits a fully resolved instruction.
func (a *assembler) fixed(line int, ins Instr) {
	w := Encode(ins)
	a.items = append(a.items, item{addr: a.pc, line: line,
		emit: func(map[string]uint32) (uint32, error) { return w, nil }})
	a.bump(4)
}

// withLabel emits an instruction whose immediate depends on a label.
func (a *assembler) withLabel(line int, resolve func(sym map[string]uint32) (Instr, error)) {
	addr := a.pc
	a.items = append(a.items, item{addr: addr, line: line,
		emit: func(sym map[string]uint32) (uint32, error) {
			ins, err := resolve(sym)
			if err != nil {
				return 0, err
			}
			return Encode(ins), nil
		}})
	a.bump(4)
}

func immOrLabel(op string, sym map[string]uint32) (int64, error) {
	if v, err := parseInt(op); err == nil {
		return v, nil
	}
	if v, ok := sym[strings.TrimSpace(op)]; ok {
		return int64(v), nil
	}
	return 0, fmt.Errorf("bad immediate %q", op)
}

// parseMemOperand parses "off(rs)".
func parseMemOperand(s string) (off int64, reg int, err error) {
	i := strings.Index(s, "(")
	j := strings.LastIndex(s, ")")
	if i < 0 || j <= i {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:i])
	if offStr == "" {
		offStr = "0"
	}
	off, err = parseInt(offStr)
	if err != nil {
		return 0, 0, err
	}
	reg, err = ParseReg(strings.TrimSpace(s[i+1 : j]))
	return off, reg, err
}

var rFormat = map[string]uint32{
	"add": FnADD, "sub": FnSUB, "mul": FnMUL, "div": FnDIV, "rem": FnREM,
	"and": FnAND, "or": FnOR, "xor": FnXOR,
	"sll": FnSLL, "srl": FnSRL, "sra": FnSRA, "slt": FnSLT, "sltu": FnSLTU,
}

var iFormat = map[string]uint32{
	"addi": OpADDI, "andi": OpANDI, "ori": OpORI, "xori": OpXORI,
	"slti": OpSLTI, "slli": OpSLLI, "srli": OpSRLI, "srai": OpSRAI,
}

var branches = map[string]uint32{
	"beq": OpBEQ, "bne": OpBNE, "blt": OpBLT, "bge": OpBGE,
}

func (a *assembler) instruction(line int, mn string, ops []string) error {
	bad := func(msg string) error { return &asmError{line, mn + ": " + msg} }
	need := func(n int) error {
		if len(ops) != n {
			return bad(fmt.Sprintf("want %d operands, got %d", n, len(ops)))
		}
		return nil
	}
	regs := func() ([]int, error) {
		out := make([]int, len(ops))
		for i, op := range ops {
			r, err := ParseReg(op)
			if err != nil {
				return nil, bad(err.Error())
			}
			out[i] = r
		}
		return out, nil
	}

	switch {
	case rFormat[mn] != 0 || mn == "add":
		if err := need(3); err != nil {
			return err
		}
		r, err := regs()
		if err != nil {
			return err
		}
		a.fixed(line, Instr{Op: OpR, Fn: rFormat[mn], Rd: r[0], Rs1: r[1], Rs2: r[2]})
	case iFormat[mn] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := ParseReg(ops[0])
		if err != nil {
			return bad(err.Error())
		}
		rs, err := ParseReg(ops[1])
		if err != nil {
			return bad(err.Error())
		}
		imm := ops[2]
		a.withLabel(line, func(sym map[string]uint32) (Instr, error) {
			v, err := immOrLabel(imm, sym)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: iFormat[mn], Rd: rd, Rs1: rs, Imm: int32(v)}, nil
		})
	case mn == "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, err := ParseReg(ops[0])
		if err != nil {
			return bad(err.Error())
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return bad(err.Error())
		}
		a.fixed(line, Instr{Op: OpLUI, Rd: rd, Imm: int32(v & 0xffff)})
	case mn == "lw" || mn == "lb":
		if err := need(2); err != nil {
			return err
		}
		rd, err := ParseReg(ops[0])
		if err != nil {
			return bad(err.Error())
		}
		off, rs, err := parseMemOperand(ops[1])
		if err != nil {
			return bad(err.Error())
		}
		op := OpLW
		if mn == "lb" {
			op = OpLB
		}
		a.fixed(line, Instr{Op: op, Rd: rd, Rs1: rs, Imm: int32(off)})
	case mn == "sw" || mn == "sb":
		if err := need(2); err != nil {
			return err
		}
		rv, err := ParseReg(ops[0])
		if err != nil {
			return bad(err.Error())
		}
		off, rs, err := parseMemOperand(ops[1])
		if err != nil {
			return bad(err.Error())
		}
		op := OpSW
		if mn == "sb" {
			op = OpSB
		}
		// Store value travels in the Rd field.
		a.fixed(line, Instr{Op: op, Rd: rv, Rs1: rs, Imm: int32(off)})
	case branches[mn] != 0:
		if err := need(3); err != nil {
			return err
		}
		r1, err := ParseReg(ops[0])
		if err != nil {
			return bad(err.Error())
		}
		r2, err := ParseReg(ops[1])
		if err != nil {
			return bad(err.Error())
		}
		target := ops[2]
		pc := a.pc
		a.withLabel(line, func(sym map[string]uint32) (Instr, error) {
			t, err := immOrLabel(target, sym)
			if err != nil {
				return Instr{}, err
			}
			off := (t - int64(pc) - 4) / 4
			if off < -(1<<15) || off >= 1<<15 {
				return Instr{}, fmt.Errorf("branch target out of range")
			}
			return Instr{Op: branches[mn], Rd: r1, Rs1: r2, Imm: int32(off)}, nil
		})
	case mn == "j" || mn == "jal":
		if err := need(1); err != nil {
			return err
		}
		op := OpJ
		if mn == "jal" {
			op = OpJAL
		}
		target := ops[0]
		pc := a.pc
		a.withLabel(line, func(sym map[string]uint32) (Instr, error) {
			t, err := immOrLabel(target, sym)
			if err != nil {
				return Instr{}, err
			}
			off := (t - int64(pc) - 4) / 4
			return Instr{Op: op, Imm: int32(off)}, nil
		})
	case mn == "jr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := ParseReg(ops[0])
		if err != nil {
			return bad(err.Error())
		}
		a.fixed(line, Instr{Op: OpR, Fn: FnJR, Rs1: rs})
	case mn == "jalr":
		if err := need(2); err != nil {
			return err
		}
		rd, err := ParseReg(ops[0])
		if err != nil {
			return bad(err.Error())
		}
		rs, err := ParseReg(ops[1])
		if err != nil {
			return bad(err.Error())
		}
		a.fixed(line, Instr{Op: OpR, Fn: FnJALR, Rd: rd, Rs1: rs})
	case mn == "ecall":
		a.fixed(line, Instr{Op: OpECALL})
	case mn == "halt":
		a.fixed(line, Instr{Op: OpHALT})
	case mn == "nop":
		a.fixed(line, Instr{Op: OpR, Fn: FnADD}) // add r0,r0,r0
	case mn == "move":
		if err := need(2); err != nil {
			return err
		}
		r, err := regs()
		if err != nil {
			return err
		}
		a.fixed(line, Instr{Op: OpADDI, Rd: r[0], Rs1: r[1]})
	case mn == "li", mn == "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := ParseReg(ops[0])
		if err != nil {
			return bad(err.Error())
		}
		src := ops[1]
		if v, err := parseInt(src); err == nil && v >= -(1<<15) && v < 1<<15 {
			a.fixed(line, Instr{Op: OpADDI, Rd: rd, Imm: int32(v)})
			return nil
		}
		// Two-word expansion: lui + ori. Label values resolve in pass 2.
		a.withLabel(line, func(sym map[string]uint32) (Instr, error) {
			v, err := immOrLabel(src, sym)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: OpLUI, Rd: rd, Imm: int32(uint32(v) >> 16)}, nil
		})
		a.withLabel(line, func(sym map[string]uint32) (Instr, error) {
			v, err := immOrLabel(src, sym)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: OpORI, Rd: rd, Rs1: rd, Imm: int32(uint32(v) & 0xffff)}, nil
		})
	default:
		return bad("unknown mnemonic")
	}
	return nil
}
