package isa

import (
	"strings"
	"testing"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
		# a tiny program
		addi r1, r0, 5
		addi r2, r0, 7
		add  r3, r1, r2
		halt
	`)
	if len(p.Image) != 16 {
		t.Fatalf("image size %d, want 16", len(p.Image))
	}
	ins := Decode(p.WordAt(8))
	if ins.Mnemonic() != "add" || ins.Rd != 3 {
		t.Fatalf("word 2 = %v", ins)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	start:
		addi r1, r0, 10
	loop:
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`)
	if p.Symbols["loop"] != 4 {
		t.Fatalf("loop at %d, want 4", p.Symbols["loop"])
	}
	br := Decode(p.WordAt(8))
	if br.Mnemonic() != "bne" {
		t.Fatalf("expected bne, got %v", br)
	}
	// Branch from pc=8 back to 4: offset = (4 - 8 - 4)/4 = -2.
	if br.Imm != -2 {
		t.Fatalf("branch offset %d, want -2", br.Imm)
	}
}

func TestAssembleMemAndData(t *testing.T) {
	p := mustAssemble(t, `
		la  r1, data
		lw  r2, 0(r1)
		lw  r3, 4(r1)
		sw  r3, 8(r1)
		halt
	.align 4
	data:
		.word 0x1234, 0xabcd
		.space 4
	`)
	addr := p.Symbols["data"]
	if p.WordAt(addr) != 0x1234 || p.WordAt(addr+4) != 0xabcd {
		t.Fatalf("data words wrong: %x %x", p.WordAt(addr), p.WordAt(addr+4))
	}
}

func TestAssembleLiExpansion(t *testing.T) {
	// Small immediates use one word, large ones two.
	small := mustAssemble(t, "li r1, 100\nhalt")
	if len(small.Image) != 8 {
		t.Fatalf("small li image %d bytes, want 8", len(small.Image))
	}
	big := mustAssemble(t, "li r1, 0x12345678\nhalt")
	if len(big.Image) != 12 {
		t.Fatalf("big li image %d bytes, want 12", len(big.Image))
	}
	lui := Decode(big.WordAt(0))
	ori := Decode(big.WordAt(4))
	if lui.Op != OpLUI || uint32(lui.Imm) != 0x1234 {
		t.Fatalf("lui wrong: %v", lui)
	}
	if ori.Op != OpORI || uint32(ori.Imm) != 0x5678 {
		t.Fatalf("ori wrong: %v", ori)
	}
}

func TestAssembleJalJr(t *testing.T) {
	p := mustAssemble(t, `
		jal fn
		halt
	fn:
		addi r2, r0, 1
		jr ra
	`)
	jal := Decode(p.WordAt(0))
	if jal.Op != OpJAL || jal.Imm != 1 {
		t.Fatalf("jal = %v (imm %d)", jal, jal.Imm)
	}
	jr := Decode(p.WordAt(12))
	if jr.Op != OpR || jr.Fn != FnJR || jr.Rs1 != 31 {
		t.Fatalf("jr = %v", jr)
	}
}

func TestAssembleAsciz(t *testing.T) {
	p := mustAssemble(t, `
	msg: .asciz "hi\n"
	`)
	want := "hi\n\x00"
	if got := string(p.Image[:4]); got != want {
		t.Fatalf("asciz bytes %q, want %q", got, want)
	}
}

func TestAssembleEntry(t *testing.T) {
	p := mustAssemble(t, `
		.entry main
		.word 0
	main:
		halt
	`)
	if p.Entry != p.Symbols["main"] {
		t.Fatalf("entry %d, want %d", p.Entry, p.Symbols["main"])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",            // too few operands
		"addi r1, r2, r3, r4",   // too many
		"lw r1, nope",           // bad memory operand
		"beq r1, r2, undefined", // unknown label
		"add r99, r0, r0",       // bad register
		".org",                  // missing operand
		"dup: nop\ndup: nop",    // duplicate label
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assemble(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("error %q lacks line info", err)
		}
	}
}

func TestBranchRangeCheck(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("beq r0, r0, far\n")
	for i := 0; i < 40000; i++ {
		sb.WriteString("nop\n")
	}
	sb.WriteString("far: halt\n")
	if _, err := Assemble(sb.String()); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
}
