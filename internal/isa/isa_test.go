package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpR, Fn: FnADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpR, Fn: FnMUL, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: OpR, Fn: FnJR, Rs1: 31},
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: -42},
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: 32767},
		{Op: OpORI, Rd: 7, Rs1: 8, Imm: 0xffff},
		{Op: OpLUI, Rd: 9, Imm: 0xabcd},
		{Op: OpLW, Rd: 10, Rs1: 11, Imm: -8},
		{Op: OpSW, Rd: 12, Rs1: 13, Imm: 100},
		{Op: OpBEQ, Rd: 1, Rs1: 2, Imm: -5},
		{Op: OpJ, Imm: -1000},
		{Op: OpJAL, Imm: 1 << 20},
		{Op: OpECALL},
		{Op: OpHALT},
	}
	for _, ins := range cases {
		got := Decode(Encode(ins))
		if !got.Valid {
			t.Fatalf("%v decoded invalid", ins)
		}
		if got.Op != ins.Op {
			t.Fatalf("op mismatch: %v vs %v", got.Op, ins.Op)
		}
		if ins.Op == OpR && got.Fn != ins.Fn {
			t.Fatalf("fn mismatch for %v", ins)
		}
		switch ins.Op {
		case OpECALL, OpHALT:
		case OpJ, OpJAL:
			if got.Imm != ins.Imm {
				t.Fatalf("imm mismatch: %d vs %d", got.Imm, ins.Imm)
			}
		case OpR:
			if got.Rd != ins.Rd || got.Rs1 != ins.Rs1 || got.Rs2 != ins.Rs2 {
				t.Fatalf("register mismatch for %v: %+v", ins, got)
			}
		default:
			if got.Rd != ins.Rd || got.Rs1 != ins.Rs1 {
				t.Fatalf("register mismatch for %v: %+v", ins, got)
			}
			wantImm := ins.Imm
			if zeroExtImm(ins.Op) {
				wantImm = int32(uint32(ins.Imm) & 0xffff)
			}
			if got.Imm != wantImm {
				t.Fatalf("imm mismatch for %v: %d vs %d", ins, got.Imm, wantImm)
			}
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	if Decode(uint32(numOps) << 26).Valid {
		t.Fatal("out-of-range opcode decoded as valid")
	}
	if Decode(uint32(OpR)<<26 | numFns).Valid {
		t.Fatal("out-of-range funct decoded as valid")
	}
}

// Property: decoding any 32-bit word never panics, and valid decodes
// re-encode to a word that decodes identically (canonicalization).
func TestDecodeTotalProperty(t *testing.T) {
	f := func(raw uint32) bool {
		ins := Decode(raw)
		if !ins.Valid {
			return true
		}
		again := Decode(Encode(ins))
		return again.Valid && again.Op == ins.Op && again.Fn == ins.Fn &&
			again.Rd == ins.Rd && again.Rs1 == ins.Rs1 && again.Imm == ins.Imm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseReg(t *testing.T) {
	cases := map[string]int{
		"r0": 0, "r31": 31, "zero": 0, "ra": 31, "sp": 29, "a0": 4, "t3": 11, "v0": 2,
	}
	for s, want := range cases {
		got, err := ParseReg(s)
		if err != nil || got != want {
			t.Fatalf("ParseReg(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	for _, bad := range []string{"r32", "x5", "", "r-1"} {
		if _, err := ParseReg(bad); err == nil {
			t.Fatalf("ParseReg(%q) accepted", bad)
		}
	}
}

func TestTimingTables(t *testing.T) {
	mul := Instr{Op: OpR, Fn: FnMUL, Valid: true}
	if TimingDSP().Cost(mul) >= TimingRISC().Cost(mul) {
		t.Fatal("DSP multiply should be cheaper than RISC multiply")
	}
	branch := Instr{Op: OpBNE, Valid: true}
	if TimingVLIW().Cost(branch) <= TimingDSP().Cost(branch) {
		t.Fatal("VLIW branches should cost more than DSP branches")
	}
	for _, tm := range []*Timing{TimingRISC(), TimingDSP(), TimingVLIW(), TimingACC()} {
		for cc := CostClass(0); cc < numCostClasses; cc++ {
			if tm.Cycles[cc] <= 0 {
				t.Fatalf("%s has non-positive cost for class %d", tm.Name, cc)
			}
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: OpR, Fn: FnADD, Rd: 1, Rs1: 2, Rs2: 3, Valid: true}, "add r1, r2, r3"},
		{Instr{Op: OpLW, Rd: 4, Rs1: 29, Imm: -8, Valid: true}, "lw r4, -8(r29)"},
		{Instr{Op: OpHALT, Valid: true}, "halt"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
