// Package isa defines MR32, the toolkit's 32-bit RISC instruction
// set. Every processing element in the platform executes MR32 — the
// homogeneous-ISA position of the paper's section II-A ("uniform ISA
// guarantees that any piece of software can be executed on any of the
// processor cores") — while per-PE-class timing tables preserve the
// heterogeneous performance characteristics that sections IV and V
// target. The same binary runs on the fast functional simulator and
// the cycle-approximate virtual platform, which is the property the
// paper's section VII debugging methodology depends on.
//
// MR32 is MIPS-flavoured: 32 general registers (r0 hard-wired to
// zero), fixed 32-bit instructions in R/I/J formats, word-addressed
// branches relative to the delay-free next PC.
package isa

import "fmt"

// Primary opcodes (bits 31..26).
const (
	OpR uint32 = iota // R-format; funct field selects the operation
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLTI
	OpLUI
	OpLW
	OpSW
	OpLB
	OpSB
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpJ
	OpJAL
	OpSLLI
	OpSRLI
	OpSRAI
	OpECALL
	OpHALT
	numOps
)

// R-format function codes (bits 10..0).
const (
	FnADD uint32 = iota
	FnSUB
	FnMUL
	FnDIV
	FnREM
	FnAND
	FnOR
	FnXOR
	FnSLL
	FnSRL
	FnSRA
	FnSLT
	FnSLTU
	FnJR
	FnJALR
	numFns
)

// Instr is a decoded MR32 instruction.
type Instr struct {
	Op    uint32
	Fn    uint32 // valid when Op == OpR
	Rd    int
	Rs1   int
	Rs2   int
	Imm   int32 // sign- or zero-extended per opcode semantics
	Raw   uint32
	Valid bool
}

// Encode packs an instruction into its 32-bit representation.
func Encode(ins Instr) uint32 {
	switch ins.Op {
	case OpR:
		return ins.Op<<26 | uint32(ins.Rd&31)<<21 | uint32(ins.Rs1&31)<<16 |
			uint32(ins.Rs2&31)<<11 | (ins.Fn & 0x7ff)
	case OpJ, OpJAL:
		return ins.Op<<26 | (uint32(ins.Imm) & 0x03ffffff)
	case OpECALL, OpHALT:
		return ins.Op << 26
	default: // I-format
		return ins.Op<<26 | uint32(ins.Rd&31)<<21 | uint32(ins.Rs1&31)<<16 |
			(uint32(ins.Imm) & 0xffff)
	}
}

// zeroExtImm opcodes treat the 16-bit immediate as unsigned.
func zeroExtImm(op uint32) bool {
	switch op {
	case OpANDI, OpORI, OpXORI, OpLUI, OpSLLI, OpSRLI, OpSRAI:
		return true
	}
	return false
}

// Decode unpacks a 32-bit word. Invalid encodings yield Valid=false.
func Decode(raw uint32) Instr {
	op := raw >> 26
	ins := Instr{Op: op, Raw: raw, Valid: op < numOps}
	switch op {
	case OpR:
		ins.Rd = int(raw >> 21 & 31)
		ins.Rs1 = int(raw >> 16 & 31)
		ins.Rs2 = int(raw >> 11 & 31)
		ins.Fn = raw & 0x7ff
		if ins.Fn >= numFns {
			ins.Valid = false
		}
	case OpJ, OpJAL:
		v := raw & 0x03ffffff
		// sign-extend 26-bit field
		if v&0x02000000 != 0 {
			v |= 0xfc000000
		}
		ins.Imm = int32(v)
	case OpECALL, OpHALT:
		// no operands
	default:
		ins.Rd = int(raw >> 21 & 31)
		ins.Rs1 = int(raw >> 16 & 31)
		imm := raw & 0xffff
		if !zeroExtImm(op) && imm&0x8000 != 0 {
			imm |= 0xffff0000
		}
		ins.Imm = int32(imm)
	}
	return ins
}

var opNames = [...]string{
	"r", "addi", "andi", "ori", "xori", "slti", "lui",
	"lw", "sw", "lb", "sb",
	"beq", "bne", "blt", "bge",
	"j", "jal", "slli", "srli", "srai", "ecall", "halt",
}

var fnNames = [...]string{
	"add", "sub", "mul", "div", "rem", "and", "or", "xor",
	"sll", "srl", "sra", "slt", "sltu", "jr", "jalr",
}

// Mnemonic returns the assembly mnemonic for the instruction.
func (ins Instr) Mnemonic() string {
	if !ins.Valid {
		return "illegal"
	}
	if ins.Op == OpR {
		return fnNames[ins.Fn]
	}
	return opNames[ins.Op]
}

// String disassembles the instruction.
func (ins Instr) String() string {
	if !ins.Valid {
		return fmt.Sprintf(".word 0x%08x", ins.Raw)
	}
	switch ins.Op {
	case OpR:
		switch ins.Fn {
		case FnJR:
			return fmt.Sprintf("jr r%d", ins.Rs1)
		case FnJALR:
			return fmt.Sprintf("jalr r%d, r%d", ins.Rd, ins.Rs1)
		default:
			return fmt.Sprintf("%s r%d, r%d, r%d", ins.Mnemonic(), ins.Rd, ins.Rs1, ins.Rs2)
		}
	case OpLW, OpLB:
		return fmt.Sprintf("%s r%d, %d(r%d)", ins.Mnemonic(), ins.Rd, ins.Imm, ins.Rs1)
	case OpSW, OpSB:
		return fmt.Sprintf("%s r%d, %d(r%d)", ins.Mnemonic(), ins.Rd, ins.Imm, ins.Rs1)
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return fmt.Sprintf("%s r%d, r%d, %+d", ins.Mnemonic(), ins.Rd, ins.Rs1, ins.Imm)
	case OpJ, OpJAL:
		return fmt.Sprintf("%s %+d", ins.Mnemonic(), ins.Imm)
	case OpLUI:
		return fmt.Sprintf("lui r%d, 0x%x", ins.Rd, uint32(ins.Imm)&0xffff)
	case OpECALL, OpHALT:
		return ins.Mnemonic()
	default:
		return fmt.Sprintf("%s r%d, r%d, %d", ins.Mnemonic(), ins.Rd, ins.Rs1, ins.Imm)
	}
}

// CostClass buckets instructions for the timing tables.
type CostClass int

// Cost classes.
const (
	CostALU CostClass = iota
	CostMul
	CostDiv
	CostMem
	CostBranch
	CostJump
	CostSys
	numCostClasses
)

// Class returns the instruction's cost class.
func (ins Instr) Class() CostClass {
	switch ins.Op {
	case OpR:
		switch ins.Fn {
		case FnMUL:
			return CostMul
		case FnDIV, FnREM:
			return CostDiv
		case FnJR, FnJALR:
			return CostJump
		default:
			return CostALU
		}
	case OpLW, OpSW, OpLB, OpSB:
		return CostMem
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return CostBranch
	case OpJ, OpJAL:
		return CostJump
	case OpECALL, OpHALT:
		return CostSys
	default:
		return CostALU
	}
}

// Timing is a per-cost-class cycle table. The virtual platform holds
// one per PE class.
type Timing struct {
	Name   string
	Cycles [numCostClasses]int64
}

// Cost returns the cycle count of one instruction under this timing.
func (t *Timing) Cost(ins Instr) int64 {
	return t.Cycles[ins.Class()]
}

// TimingRISC is a scalar in-order control core.
func TimingRISC() *Timing {
	return &Timing{Name: "RISC", Cycles: [numCostClasses]int64{
		CostALU: 1, CostMul: 3, CostDiv: 18, CostMem: 2, CostBranch: 2, CostJump: 2, CostSys: 4,
	}}
}

// TimingDSP models a MAC-optimized signal processor: single-cycle
// multiply, fast memory pipes.
func TimingDSP() *Timing {
	return &Timing{Name: "DSP", Cycles: [numCostClasses]int64{
		CostALU: 1, CostMul: 1, CostDiv: 8, CostMem: 1, CostBranch: 3, CostJump: 2, CostSys: 4,
	}}
}

// TimingVLIW models a wide media engine: cheap arithmetic streams,
// expensive control flow.
func TimingVLIW() *Timing {
	return &Timing{Name: "VLIW", Cycles: [numCostClasses]int64{
		CostALU: 1, CostMul: 2, CostDiv: 12, CostMem: 1, CostBranch: 4, CostJump: 4, CostSys: 6,
	}}
}

// TimingACC models a slow-clock fixed-function helper.
func TimingACC() *Timing {
	return &Timing{Name: "ACC", Cycles: [numCostClasses]int64{
		CostALU: 1, CostMul: 1, CostDiv: 4, CostMem: 1, CostBranch: 2, CostJump: 2, CostSys: 2,
	}}
}
