package rtos

import (
	"testing"

	"mpsockit/internal/noc"
	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
)

// mixedPlatform: nTS time-shared + nSS space-shared 1 GHz cores.
func mixedPlatform(k *sim.Kernel, nTS, nSS int) *platform.Platform {
	p := platform.NewHomogeneous(k, nTS+nSS, 1_000_000_000, noc.MeshFor(k, nTS+nSS))
	for i := 0; i < nTS; i++ {
		p.Cores[i].SpaceShared = false
	}
	return p
}

func TestSequentialJobCompletes(t *testing.T) {
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 1), DefaultConfig())
	j := &Job{Name: "seq", Kind: Sequential, WorkCycles: 1_000_000} // 1ms at 1GHz
	s.Submit(j)
	k.RunUntil(100 * sim.Millisecond)
	if j.Finished == 0 {
		t.Fatal("job did not finish")
	}
	// 1ms of work plus a couple of context switches.
	if j.Finished < sim.Millisecond || j.Finished > 2*sim.Millisecond {
		t.Fatalf("finish at %v, want ~1ms", j.Finished)
	}
}

func TestQuantumSharing(t *testing.T) {
	// Two equal sequential jobs on one TS core should finish close
	// together (round-robin), not strictly one after the other.
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 1), DefaultConfig())
	a := &Job{Name: "a", Kind: Sequential, WorkCycles: 2_000_000}
	b := &Job{Name: "b", Kind: Sequential, WorkCycles: 2_000_000}
	s.Submit(a)
	s.Submit(b)
	k.RunUntil(100 * sim.Millisecond)
	if a.Finished == 0 || b.Finished == 0 {
		t.Fatal("jobs did not finish")
	}
	gap := b.Finished - a.Finished
	if gap < 0 {
		gap = -gap
	}
	// With 0.5ms quanta over 2ms jobs, the finish gap is at most about
	// one quantum plus switch overhead.
	if gap > sim.Millisecond {
		t.Fatalf("finish gap %v too large for round-robin", gap)
	}
}

func TestEDFOrdering(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Quantum = 10 * sim.Millisecond // effectively run-to-completion
	s := NewHybrid(k, mixedPlatform(k, 1, 1), cfg)
	late := &Job{Name: "late", Kind: Sequential, WorkCycles: 1_000_000, Deadline: 50 * sim.Millisecond}
	urgent := &Job{Name: "urgent", Kind: Sequential, WorkCycles: 1_000_000, Deadline: 3 * sim.Millisecond}
	s.Submit(late)
	s.Submit(urgent)
	k.RunUntil(100 * sim.Millisecond)
	if urgent.Finished > late.Finished {
		t.Fatal("EDF should run the urgent job first")
	}
	if urgent.Missed {
		t.Fatalf("urgent job missed: finished %v", urgent.Finished)
	}
}

func TestParallelGangAllocation(t *testing.T) {
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 8), DefaultConfig())
	j := &Job{Name: "par", Kind: Parallel, WorkCycles: 8_000_000, MaxWidth: 8,
		Deadline: 2 * sim.Millisecond}
	s.Submit(j)
	k.RunUntil(50 * sim.Millisecond)
	if j.Finished == 0 {
		t.Fatal("parallel job did not finish")
	}
	if j.Width < 4 {
		t.Fatalf("tight deadline should get wide grant, got %d", j.Width)
	}
	if j.Missed {
		t.Fatalf("missed deadline with %d cores", j.Width)
	}
}

func TestMoldableMinimalGrant(t *testing.T) {
	// A loose deadline should be satisfied with few cores, leaving the
	// pool free for others (reactive mitigation of competing requests).
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 8), DefaultConfig())
	j := &Job{Name: "lazy", Kind: Parallel, WorkCycles: 1_000_000, MaxWidth: 8,
		Deadline: 100 * sim.Millisecond}
	s.Submit(j)
	k.RunUntil(200 * sim.Millisecond)
	if j.Width != 1 {
		t.Fatalf("loose deadline granted width %d, want 1", j.Width)
	}
	if j.Missed {
		t.Fatal("missed loose deadline")
	}
}

func TestReactiveBoost(t *testing.T) {
	// A deadline impossible at nominal frequency but feasible at boost
	// must trigger the DVFS response of section II-B.
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 2), DefaultConfig())
	// 2 cores * 1GHz nominal: 4M cycles across 2 cores = 2ms at
	// nominal, 1ms at 2x boost. Deadline 1.3ms needs the boost.
	j := &Job{Name: "hot", Kind: Parallel, WorkCycles: 4_000_000, MaxWidth: 2,
		Deadline: 1300 * sim.Microsecond}
	s.Submit(j)
	k.RunUntil(50 * sim.Millisecond)
	if !j.Boosted {
		t.Fatal("scheduler did not boost for tight deadline")
	}
	if j.Missed {
		t.Fatalf("missed even with boost: finished %v", j.Finished)
	}
	if s.Stats().Boosts != 1 {
		t.Fatalf("boost count %d", s.Stats().Boosts)
	}
	// Cores must be back at nominal afterwards.
	for _, c := range s.P.Cores {
		if c.SpaceShared && c.Hz() != 1_000_000_000 {
			t.Fatalf("core %s left at %d Hz", c.Name, c.Hz())
		}
	}
}

func TestCompetingParallelJobs(t *testing.T) {
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 4), DefaultConfig())
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j := &Job{Name: "p", Kind: Parallel, WorkCycles: 2_000_000, MaxWidth: 4,
			Deadline: k.Now() + 20*sim.Millisecond}
		jobs = append(jobs, j)
		s.Submit(j)
	}
	k.RunUntil(100 * sim.Millisecond)
	st := s.Stats()
	if st.Completed != 4 {
		t.Fatalf("completed %d/4", st.Completed)
	}
	if st.Missed != 0 {
		t.Fatalf("%d misses with generous deadlines", st.Missed)
	}
}

func TestBestEffortRunsEventually(t *testing.T) {
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 2), DefaultConfig())
	be := &Job{Name: "be", Kind: Parallel, WorkCycles: 500_000, MaxWidth: 2}
	s.Submit(be)
	k.RunUntil(50 * sim.Millisecond)
	if be.Finished == 0 {
		t.Fatal("best-effort job starved with free pool")
	}
	if be.Width != 1 {
		t.Fatalf("best-effort width %d, want minimal grant 1", be.Width)
	}
}

func TestOverloadReportsMisses(t *testing.T) {
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 2), DefaultConfig())
	// 6 jobs each needing 2 cores for 1ms, all due at 2ms: impossible.
	for i := 0; i < 6; i++ {
		s.Submit(&Job{Name: "x", Kind: Parallel, WorkCycles: 2_000_000, MaxWidth: 2,
			Deadline: 2 * sim.Millisecond})
	}
	k.RunUntil(100 * sim.Millisecond)
	st := s.Stats()
	if st.Completed != 6 {
		t.Fatalf("completed %d/6", st.Completed)
	}
	if st.Missed == 0 {
		t.Fatal("overload produced no misses — model broken")
	}
	if st.MaxLateness <= 0 {
		t.Fatal("max lateness not tracked")
	}
}

func TestUtilizationBounded(t *testing.T) {
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 3), DefaultConfig())
	for i := 0; i < 10; i++ {
		s.Submit(&Job{Kind: Parallel, WorkCycles: 1_000_000, MaxWidth: 2,
			Deadline: 30 * sim.Millisecond})
	}
	k.RunUntil(50 * sim.Millisecond)
	u := s.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of (0,1]", u)
	}
}

func TestStatsTurnaround(t *testing.T) {
	k := sim.NewKernel()
	s := NewHybrid(k, mixedPlatform(k, 1, 1), DefaultConfig())
	s.Submit(&Job{Kind: Sequential, WorkCycles: 1_000_000})
	k.RunUntil(10 * sim.Millisecond)
	if s.Stats().AvgTurnMs <= 0 {
		t.Fatal("turnaround not computed")
	}
}
