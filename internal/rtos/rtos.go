// Package rtos models the operating-system layer of section II-B of
// the paper. Its position: future manycore OSes must offer two kinds
// of computing resources — time-shared cores for sequential code and
// space-shared cores dedicated to single parallel applications — and
// need "scheduling algorithms that can in a reactive way mitigate
// multiple requests for parallel computing resources as well as
// sequential computing resources … adjusted by e.g. modifying the
// frequency at which each core is running". The paper notes no such
// algorithm had been published; HybridScheduler is our concrete
// realization, so experiment E3 can measure the behaviour the section
// argues for.
package rtos

import (
	"fmt"
	"sort"

	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
)

// JobKind separates the two resource demands of section II-B.
type JobKind int

// Job kinds.
const (
	Sequential JobKind = iota // wants a time-slice of a time-shared core
	Parallel                  // wants dedicated space-shared cores
)

func (k JobKind) String() string {
	if k == Sequential {
		return "seq"
	}
	return "par"
}

// Job is one unit of application demand submitted to the scheduler.
type Job struct {
	ID   int
	Name string
	Kind JobKind

	// WorkCycles is the total computational work. For parallel jobs it
	// is divided across the granted cores.
	WorkCycles int64
	// MaxWidth is the maximum useful parallelism of a parallel job.
	// The application must be "fully functional starting from a
	// minimal set of processing resources" (section II-C), i.e. jobs
	// are moldable: the scheduler may grant any width in [1,MaxWidth].
	MaxWidth int
	// Deadline is absolute; zero means best-effort.
	Deadline sim.Time

	Arrival  sim.Time
	Started  sim.Time
	Finished sim.Time
	Width    int  // granted width (parallel jobs)
	Boosted  bool // whether DVFS boost was applied
	Missed   bool

	// qseq orders jobs with equal deadlines: bumped on every enqueue
	// so preempted jobs rotate to the back of their class (round-robin
	// within one deadline).
	qseq int
}

// Lateness returns completion time minus deadline (negative = early).
func (j *Job) Lateness() sim.Time {
	if j.Deadline == 0 {
		return 0
	}
	return j.Finished - j.Deadline
}

// Config tunes the scheduler.
type Config struct {
	// Quantum is the time-shared round-robin slice.
	Quantum sim.Time
	// CtxSwitch is the overhead charged per preemption or dispatch on
	// time-shared cores.
	CtxSwitch sim.Time
	// SyncCyclesPerStep is the barrier cost added to parallel jobs per
	// doubling of width (models combining-tree synchronization).
	SyncCyclesPerStep int64
	// BoostWhenTight enables the reactive DVFS response: boost granted
	// cores when the predicted finish would miss the deadline.
	BoostWhenTight bool
}

// DefaultConfig returns reasonable model parameters.
func DefaultConfig() Config {
	return Config{
		Quantum:           500 * sim.Microsecond,
		CtxSwitch:         2 * sim.Microsecond,
		SyncCyclesPerStep: 200,
		BoostWhenTight:    true,
	}
}

// Stats summarizes a scheduling run.
type Stats struct {
	Completed   int
	Missed      int
	Boosts      int
	AvgTurnMs   float64
	MaxLateness sim.Time
	// BusyTime accumulates core-seconds of useful work (utilization
	// numerator).
	BusyTime sim.Time
}

// MissRate returns the fraction of deadline-bearing jobs that missed.
func (s Stats) MissRate() float64 {
	total := s.Completed
	if total == 0 {
		return 0
	}
	return float64(s.Missed) / float64(total)
}

// HybridScheduler implements the reactive time-/space-shared policy.
type HybridScheduler struct {
	K   *sim.Kernel
	P   *platform.Platform
	Cfg Config

	// time-shared side
	tsCores []*platform.Core
	tsReady []*Job // EDF-ordered
	tsWake  *sim.Signal

	// space-shared side
	ssFree []*platform.Core
	ssWait []*Job // EDF-ordered

	done  []*Job
	stats Stats
	next  int
	qctr  int
}

// NewHybrid builds a scheduler over the platform's cores: cores with
// SpaceShared=true form the gang pool; the rest are time-shared. At
// least one core must exist in each pool; if the platform has no
// time-shared cores, the first space-shared core is reassigned.
func NewHybrid(k *sim.Kernel, p *platform.Platform, cfg Config) *HybridScheduler {
	s := &HybridScheduler{K: k, P: p, Cfg: cfg, tsWake: k.NewSignal()}
	for _, c := range p.Cores {
		if c.SpaceShared {
			s.ssFree = append(s.ssFree, c)
		} else {
			s.tsCores = append(s.tsCores, c)
		}
	}
	if len(s.tsCores) == 0 && len(s.ssFree) > 0 {
		s.tsCores = append(s.tsCores, s.ssFree[0])
		s.ssFree = s.ssFree[1:]
	}
	for _, c := range s.tsCores {
		s.runTimeShared(c)
	}
	return s
}

// Submit enqueues a job at the current virtual time.
func (s *HybridScheduler) Submit(j *Job) {
	j.ID = s.next
	s.next++
	j.Arrival = s.K.Now()
	switch j.Kind {
	case Sequential:
		s.enqueueTS(j)
		s.tsWake.Broadcast()
	case Parallel:
		if j.MaxWidth < 1 {
			j.MaxWidth = 1
		}
		j.qseq = s.qctr
		s.qctr++
		s.ssWait = append(s.ssWait, j)
		s.sortEDF(s.ssWait)
		s.K.Schedule(0, s.dispatchParallel)
	}
}

// sortEDF orders by deadline (earliest first; best-effort last),
// breaking ties by arrival then ID for determinism.
func (s *HybridScheduler) sortEDF(jobs []*Job) {
	sort.SliceStable(jobs, func(a, b int) bool {
		da, db := jobs[a].Deadline, jobs[b].Deadline
		if da == 0 {
			da = sim.Forever
		}
		if db == 0 {
			db = sim.Forever
		}
		if da != db {
			return da < db
		}
		return jobs[a].qseq < jobs[b].qseq
	})
}

// enqueueTS appends to the time-shared ready queue with a fresh
// rotation sequence.
func (s *HybridScheduler) enqueueTS(j *Job) {
	j.qseq = s.qctr
	s.qctr++
	s.tsReady = append(s.tsReady, j)
	s.sortEDF(s.tsReady)
}

// runTimeShared is the per-core dispatcher loop: EDF with quantum
// slicing, context-switch overhead charged on every dispatch.
func (s *HybridScheduler) runTimeShared(c *platform.Core) {
	s.K.Spawn(fmt.Sprintf("ts-%s", c.Name), func(p *sim.Proc) {
		for {
			for len(s.tsReady) == 0 {
				s.tsWake.Wait(p)
			}
			j := s.tsReady[0]
			s.tsReady = s.tsReady[1:]
			if j.Started == 0 {
				j.Started = p.Now()
			}
			p.Delay(s.Cfg.CtxSwitch)
			slice := c.TimeToCycles(s.Cfg.Quantum)
			run := j.WorkCycles
			if run > slice {
				run = slice
			}
			dur := c.Cycles(run)
			p.Delay(dur)
			s.stats.BusyTime += dur
			j.WorkCycles -= run
			if j.WorkCycles <= 0 {
				s.complete(j)
			} else {
				s.enqueueTS(j)
			}
		}
	})
}

// dispatchParallel implements the reactive space-sharing policy:
//
//  1. Take the most urgent waiting job (EDF).
//  2. Grant the smallest width that still meets its deadline at
//     nominal frequency (jobs are moldable; small grants leave room
//     for other requests — the "reactive mitigation" of competing
//     demands).
//  3. If even the full free pool at nominal frequency misses, boost
//     the granted cores' frequency (section II-B's DVFS adjustment).
//  4. Best-effort jobs take one core when nothing urgent waits.
func (s *HybridScheduler) dispatchParallel() {
	for len(s.ssWait) > 0 && len(s.ssFree) > 0 {
		j := s.ssWait[0]
		width, boost := s.chooseGrant(j)
		if width == 0 {
			return // not enough resources yet; retry on next release
		}
		s.ssWait = s.ssWait[1:]
		grant := s.ssFree[:width]
		s.ssFree = s.ssFree[width:]
		s.launch(j, grant, boost)
	}
}

// chooseGrant picks (width, boost) for job j given the free pool.
func (s *HybridScheduler) chooseGrant(j *Job) (int, bool) {
	free := len(s.ssFree)
	if free == 0 {
		return 0, false
	}
	max := j.MaxWidth
	if max > free {
		max = free
	}
	if j.Deadline == 0 {
		// Best-effort: take a single core; parallel width is a luxury
		// urgent jobs may need more.
		return 1, false
	}
	slack := j.Deadline - s.K.Now()
	if slack <= 0 {
		// Already late: throw everything at it, boosted.
		return max, s.Cfg.BoostWhenTight
	}
	for w := 1; w <= max; w++ {
		if s.predictedDur(j, s.ssFree[:w], false) <= slack {
			return w, false
		}
	}
	if s.Cfg.BoostWhenTight && s.predictedDur(j, s.ssFree[:max], true) <= slack {
		return max, true
	}
	return max, s.Cfg.BoostWhenTight
}

// predictedDur estimates the execution time of j on the given cores.
func (s *HybridScheduler) predictedDur(j *Job, cores []*platform.Core, boost bool) sim.Time {
	w := int64(len(cores))
	per := j.WorkCycles/w + s.syncCycles(len(cores))
	hz := cores[0].Hz()
	if boost {
		hz = cores[0].Levels[len(cores[0].Levels)-1]
	}
	return sim.Time(per * (int64(sim.Second) / hz))
}

func (s *HybridScheduler) syncCycles(w int) int64 {
	steps := int64(0)
	for n := 1; n < w; n *= 2 {
		steps++
	}
	return steps * s.Cfg.SyncCyclesPerStep
}

// launch runs j on the granted cores and returns them when done.
func (s *HybridScheduler) launch(j *Job, cores []*platform.Core, boost bool) {
	j.Started = s.K.Now()
	j.Width = len(cores)
	j.Boosted = boost
	if boost {
		for _, c := range cores {
			c.Boost()
		}
		s.stats.Boosts++
	}
	// Cores already run at their (possibly boosted) frequency here.
	per := j.WorkCycles/int64(len(cores)) + s.syncCycles(len(cores))
	dur := cores[0].Cycles(per)
	s.K.Schedule(dur, func() {
		s.stats.BusyTime += sim.Time(int64(dur) * int64(len(cores)))
		if boost {
			for _, c := range cores {
				c.Unboost()
			}
		}
		s.ssFree = append(s.ssFree, cores...)
		s.complete(j)
		s.dispatchParallel()
	})
}

func (s *HybridScheduler) complete(j *Job) {
	j.Finished = s.K.Now()
	if j.Deadline != 0 && j.Finished > j.Deadline {
		j.Missed = true
		s.stats.Missed++
		if lat := j.Finished - j.Deadline; lat > s.stats.MaxLateness {
			s.stats.MaxLateness = lat
		}
	}
	s.stats.Completed++
	s.done = append(s.done, j)
}

// Done returns the completed jobs in completion order.
func (s *HybridScheduler) Done() []*Job { return s.done }

// Stats returns the aggregate statistics; AvgTurnMs is derived here.
func (s *HybridScheduler) Stats() Stats {
	st := s.stats
	if len(s.done) > 0 {
		var sum sim.Time
		for _, j := range s.done {
			sum += j.Finished - j.Arrival
		}
		st.AvgTurnMs = (sum.Seconds() * 1000) / float64(len(s.done))
	}
	return st
}

// Utilization returns busy core-time divided by wall-time × cores.
func (s *HybridScheduler) Utilization() float64 {
	elapsed := s.K.Now()
	if elapsed == 0 {
		return 0
	}
	total := float64(int64(elapsed)) * float64(len(s.P.Cores))
	return float64(int64(s.stats.BusyTime)) / total
}
