package sim

import (
	"testing"
)

// resetWorkload drives a representative mix of kernel features —
// callbacks, processes, queues, resources, signals, cancellation —
// and returns an event trace plus the final clock.
func resetWorkload(k *Kernel) ([]Time, Time) {
	var log []Time
	record := func() { log = append(log, k.Now()) }
	q := k.NewQueue("q", 2)
	r := k.NewResource("r", 1)
	s := k.NewSignal()
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("prod", func(p *Proc) {
			p.Delay(Time(10 * (i + 1)))
			q.Put(p, i)
			record()
		})
		k.Spawn("cons", func(p *Proc) {
			r.Acquire(p)
			q.Get(p)
			p.Delay(5)
			r.Release()
			record()
		})
	}
	k.Spawn("sig", func(p *Proc) {
		s.Wait(p)
		record()
	})
	k.Schedule(40, func() { s.Broadcast() })
	ev := k.Schedule(1000, func() { record() })
	k.Schedule(50, func() { k.Cancel(ev) })
	k.Run()
	return log, k.Now()
}

// TestKernelResetObservablyFresh: a reset kernel reproduces a fresh
// kernel's run exactly — same event trace, same clock, same Executed
// count — and Reset itself zeroes all observable state.
func TestKernelResetObservablyFresh(t *testing.T) {
	fresh := NewKernel()
	wantLog, wantNow := resetWorkload(fresh)
	wantExec := fresh.Executed

	k := NewKernel()
	resetWorkload(k)
	// Leave a pending event behind to prove Reset drops it.
	stale := k.Schedule(500, func() { t.Error("cancelled event fired after Reset") })
	k.Reset()

	if k.Now() != 0 || k.Executed != 0 || k.Pending() != 0 || k.Stopped() {
		t.Fatalf("Reset left state: now=%v executed=%d pending=%d stopped=%v",
			k.Now(), k.Executed, k.Pending(), k.Stopped())
	}
	if stale.Pending() {
		t.Fatal("pre-Reset event handle still pending")
	}
	k.Cancel(stale) // must be a harmless no-op
	k.Run()         // empty queue

	gotLog, gotNow := resetWorkload(k)
	if gotNow != wantNow || k.Executed != wantExec {
		t.Fatalf("reset kernel diverged: now %v/%v executed %d/%d", gotNow, wantNow, k.Executed, wantExec)
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("trace length %d != %d", len(gotLog), len(wantLog))
	}
	for i := range gotLog {
		if gotLog[i] != wantLog[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, gotLog[i], wantLog[i])
		}
	}
}

// TestKernelResetAfterStop: Reset clears a Stop so the kernel runs
// again.
func TestKernelResetAfterStop(t *testing.T) {
	k := NewKernel()
	k.Schedule(1, func() { k.Stop() })
	k.Run()
	if !k.Stopped() {
		t.Fatal("Stop did not latch")
	}
	k.Reset()
	fired := false
	k.Schedule(1, func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("reset kernel did not run")
	}
}

// TestKernelResetLiveProcsPanics: resetting under live processes must
// panic — their goroutines are parked in model code and the kernel
// cannot reclaim them.
func TestKernelResetLiveProcsPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("parked", func(p *Proc) {
		p.Delay(Forever / 2)
	})
	k.Step() // activate the process so it parks in Delay
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with a live process did not panic")
		}
	}()
	k.Reset()
}
