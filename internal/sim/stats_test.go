package sim

import "testing"

// TestKernelStats: the observability counters track scheduling, pool
// reuse and heap depth, and survive Reset (unlike Executed).
func TestKernelStats(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 4; i++ {
		k.Schedule(Time(i+1), func() {})
	}
	ev := k.Schedule(100, func() { t.Error("cancelled event fired") })
	k.Cancel(ev)
	k.Run()

	s := k.Stats()
	if s.Scheduled != 5 {
		t.Fatalf("Scheduled = %d, want 5", s.Scheduled)
	}
	if s.Executed != 4 {
		t.Fatalf("Executed = %d, want 4", s.Executed)
	}
	if s.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", s.Cancelled)
	}
	if s.PoolHits+s.PoolMisses != s.Scheduled {
		t.Fatalf("pool hits %d + misses %d != scheduled %d", s.PoolHits, s.PoolMisses, s.Scheduled)
	}
	if s.HeapMax != 5 {
		t.Fatalf("HeapMax = %d, want 5", s.HeapMax)
	}

	// Second round on a reset kernel: records recycle from the pool
	// (hits), and the monotonic stats keep counting while Executed
	// restarts from zero.
	k.Reset()
	if k.Executed != 0 {
		t.Fatal("Reset did not zero Executed")
	}
	if got := k.Stats(); got != s {
		t.Fatalf("Reset changed stats: %+v -> %+v", s, got)
	}
	for i := 0; i < 3; i++ {
		k.Schedule(Time(i+1), func() {})
	}
	k.Run()
	s2 := k.Stats()
	if s2.Scheduled != s.Scheduled+3 || s2.Executed != s.Executed+3 {
		t.Fatalf("stats not monotonic across Reset: %+v -> %+v", s, s2)
	}
	if s2.PoolHits < s.PoolHits+3 {
		t.Fatalf("reset kernel missed the pool: %+v", s2)
	}
	if s2.PoolMisses != s.PoolMisses {
		t.Fatalf("reset kernel allocated fresh records: %+v", s2)
	}
}
