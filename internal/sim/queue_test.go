package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	k := NewKernel()
	q := k.NewQueue("q", 4)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			q.Put(p, i)
			p.Delay(1 * Nanosecond)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	k.Run()
	if len(got) != 10 {
		t.Fatalf("consumed %d, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
	if q.Puts != 10 || q.Gets != 10 {
		t.Fatalf("stats puts=%d gets=%d", q.Puts, q.Gets)
	}
}

func TestQueueBackPressure(t *testing.T) {
	k := NewKernel()
	q := k.NewQueue("q", 2)
	var putTimes []Time
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Put(p, i)
			putTimes = append(putTimes, p.Now())
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Delay(100 * Nanosecond)
		for i := 0; i < 4; i++ {
			q.Get(p)
			p.Delay(10 * Nanosecond)
		}
	})
	k.Run()
	// First two puts are immediate; the third must block until the
	// consumer frees a slot at t=100ns.
	if putTimes[0] != 0 || putTimes[1] != 0 {
		t.Fatalf("first puts should be immediate: %v", putTimes)
	}
	if putTimes[2] != 100*Nanosecond {
		t.Fatalf("third put at %v, want 100ns (back-pressure)", putTimes[2])
	}
	if q.BlockedPutTime == 0 {
		t.Fatal("blocked-put time not accounted")
	}
}

func TestQueueTryAndForcePut(t *testing.T) {
	k := NewKernel()
	q := k.NewQueue("q", 2)
	if !q.TryPut(1) || !q.TryPut(2) {
		t.Fatal("TryPut should succeed while not full")
	}
	if q.TryPut(3) {
		t.Fatal("TryPut should fail when full")
	}
	ev := q.ForcePut(3)
	if ev != 1 {
		t.Fatalf("ForcePut evicted %v, want 1 (oldest)", ev)
	}
	v, ok := q.TryGet()
	if !ok || v != 2 {
		t.Fatalf("after eviction head = %v, want 2", v)
	}
	v, ok = q.Peek()
	if !ok || v != 3 {
		t.Fatalf("peek = %v, want 3", v)
	}
}

func TestQueueUnbounded(t *testing.T) {
	k := NewKernel()
	q := k.NewQueue("q", 0)
	for i := 0; i < 1000; i++ {
		if !q.TryPut(i) {
			t.Fatal("unbounded queue rejected a token")
		}
	}
	if q.MaxDepth != 1000 {
		t.Fatalf("max depth %d, want 1000", q.MaxDepth)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	k := NewKernel()
	r := k.NewResource("bus", 1)
	inCrit := 0
	maxInCrit := 0
	for i := 0; i < 5; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			inCrit++
			if inCrit > maxInCrit {
				maxInCrit = inCrit
			}
			p.Delay(10 * Nanosecond)
			inCrit--
			r.Release()
		})
	}
	k.Run()
	if maxInCrit != 1 {
		t.Fatalf("mutual exclusion violated: %d concurrent holders", maxInCrit)
	}
	if r.Acquisitions != 5 {
		t.Fatalf("acquisitions = %d, want 5", r.Acquisitions)
	}
	if r.ContendedTime == 0 {
		t.Fatal("contention time not accounted")
	}
}

func TestResourceCounting(t *testing.T) {
	k := NewKernel()
	r := k.NewResource("dma", 2)
	if !r.TryAcquire() || !r.TryAcquire() {
		t.Fatal("two units should be available")
	}
	if r.TryAcquire() {
		t.Fatal("third acquire should fail")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("released unit should be reacquirable")
	}
	if r.InUse() != 2 {
		t.Fatalf("in use = %d, want 2", r.InUse())
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := NewKernel()
	k.NewResource("r", 1).Release()
}

// Property: any interleaving of bounded producers/consumers preserves
// token order and never exceeds capacity.
func TestQueueOrderProperty(t *testing.T) {
	f := func(capRaw uint8, prodDelay, consDelay uint8, n uint8) bool {
		capacity := int(capRaw%8) + 1
		count := int(n%64) + 1
		k := NewKernel()
		q := k.NewQueue("q", capacity)
		var got []int
		overCap := false
		k.Spawn("prod", func(p *Proc) {
			for i := 0; i < count; i++ {
				q.Put(p, i)
				if q.Len() > capacity {
					overCap = true
				}
				p.Delay(Time(prodDelay) * Nanosecond)
			}
		})
		k.Spawn("cons", func(p *Proc) {
			for i := 0; i < count; i++ {
				got = append(got, q.Get(p).(int))
				p.Delay(Time(consDelay) * Nanosecond)
			}
		})
		k.Run()
		if overCap || len(got) != count {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
