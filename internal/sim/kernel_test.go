package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelEmptyRun(t *testing.T) {
	k := NewKernel()
	k.Run()
	if k.Now() != 0 {
		t.Fatalf("time advanced with no events: %v", k.Now())
	}
	if k.Executed != 0 {
		t.Fatalf("executed %d events on empty kernel", k.Executed)
	}
}

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	k.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	k.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 30*Nanosecond {
		t.Fatalf("final time %v, want 30ns", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, order[:i+1])
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	k := NewKernel()
	var order []string
	k.ScheduleP(1*Nanosecond, 5, func() { order = append(order, "low") })
	k.ScheduleP(1*Nanosecond, -5, func() { order = append(order, "high") })
	k.ScheduleP(1*Nanosecond, 0, func() { order = append(order, "mid") })
	k.Run()
	if order[0] != "high" || order[1] != "mid" || order[2] != "low" {
		t.Fatalf("priority order wrong: %v", order)
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(10*Nanosecond, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and cancel-after-fire must be safe.
	k.Cancel(e)
	e2 := k.Schedule(1*Nanosecond, func() {})
	k.Run()
	k.Cancel(e2)
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			k.Schedule(1*Nanosecond, rec)
		}
	}
	k.Schedule(0, rec)
	k.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if k.Now() != 49*Nanosecond {
		t.Fatalf("now = %v, want 49ns", k.Now())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i)*Microsecond, func() { count++ })
	}
	n := k.RunUntil(5 * Microsecond)
	if n != 5 || count != 5 {
		t.Fatalf("RunUntil executed %d (count %d), want 5", n, count)
	}
	if k.Now() != 5*Microsecond {
		t.Fatalf("now = %v, want 5us", k.Now())
	}
	k.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel()
	k.RunUntil(3 * Millisecond)
	if k.Now() != 3*Millisecond {
		t.Fatalf("idle clock not advanced: %v", k.Now())
	}
}

func TestStopResume(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 5; i++ {
		i := i
		k.Schedule(Time(i)*Nanosecond, func() {
			count++
			if i == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 2 {
		t.Fatalf("ran %d events before stop, want 2", count)
	}
	if !k.Stopped() {
		t.Fatal("kernel should report stopped")
	}
	k.Resume()
	k.Run()
	if count != 5 {
		t.Fatalf("after resume count = %d, want 5", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewKernel().Schedule(-1, func() {})
}

// Property: for any set of (delay, priority) pairs, the kernel
// dispatches events in nondecreasing time order, and within one
// timestamp in nondecreasing priority then insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16, prios []int8) bool {
		k := NewKernel()
		type fired struct {
			at   Time
			prio int
			seq  int
		}
		var log []fired
		for i, d := range delays {
			p := 0
			if i < len(prios) {
				p = int(prios[i])
			}
			at := Time(d) * Nanosecond
			seq := i
			pr := p
			k.ScheduleP(at, pr, func() {
				log = append(log, fired{at, pr, seq})
			})
		}
		k.Run()
		for i := 1; i < len(log); i++ {
			a, b := log[i-1], log[i]
			if a.at > b.at {
				return false
			}
			if a.at == b.at && a.prio > b.prio {
				return false
			}
			if a.at == b.at && a.prio == b.prio && a.seq > b.seq {
				return false
			}
		}
		return len(log) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{1500 * Microsecond, "1.5ms"},
		{2 * Second, "2s"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
