package sim

import "testing"

// The event pool recycles fired and cancelled records; these tests pin
// the generation-counter semantics that make stale handles harmless.

func TestCancelStaleHandleIsNoOp(t *testing.T) {
	k := NewKernel()
	first := 0
	e1 := k.Schedule(1*Nanosecond, func() { first++ })
	k.Run()
	if first != 1 {
		t.Fatalf("first event fired %d times, want 1", first)
	}
	// e1's record is now on the free list; the next Schedule reuses it.
	second := 0
	e2 := k.Schedule(1*Nanosecond, func() { second++ })
	// Cancelling the stale handle must not touch the recycled record's
	// new occupant.
	k.Cancel(e1)
	k.Run()
	if second != 1 {
		t.Fatalf("stale Cancel killed the recycled event (fired %d times, want 1)", second)
	}
	k.Cancel(e2) // cancel-after-fire stays a no-op too
}

func TestCancelledRecordIsRecycledSafely(t *testing.T) {
	k := NewKernel()
	e := k.Schedule(5*Nanosecond, func() { t.Fatal("cancelled event fired") })
	k.Cancel(e)
	if e.Pending() {
		t.Fatal("cancelled handle still pending")
	}
	fired := false
	k.Schedule(1*Nanosecond, func() { fired = true })
	k.Cancel(e) // double cancel on the now-recycled record: no-op
	k.Run()
	if !fired {
		t.Fatal("event scheduled after cancel did not fire")
	}
}

func TestEventHandleTimeAndPending(t *testing.T) {
	k := NewKernel()
	var zero Event
	if zero.Pending() || zero.Time() != -1 {
		t.Fatal("zero handle must be non-pending with Time() == -1")
	}
	e := k.Schedule(7*Nanosecond, func() {})
	if !e.Pending() || e.Time() != 7*Nanosecond {
		t.Fatalf("pending handle: Pending=%v Time=%v", e.Pending(), e.Time())
	}
	k.Run()
	if e.Pending() || e.Time() != -1 {
		t.Fatal("fired handle must be non-pending with Time() == -1")
	}
}

// Heavy churn with interleaved cancels: dispatch order must stay
// (time, priority, sequence)-sorted through pooling and heap removal.
func TestPooledOrderingUnderChurn(t *testing.T) {
	k := NewKernel()
	var got []int
	var handles []Event
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			i := i
			base := round * 20
			h := k.ScheduleP(Time(i%5)*Nanosecond, i%3, func() { got = append(got, base+i) })
			handles = append(handles, h)
		}
		// Cancel every 4th pending event, then drain.
		for i, h := range handles {
			if i%4 == 0 {
				k.Cancel(h)
			}
		}
		k.Run()
		handles = handles[:0]
	}
	want := 50 * 20 * 3 / 4
	if len(got) != want {
		t.Fatalf("executed %d events, want %d", len(got), want)
	}
}

// The free list must keep the kernel's steady-state footprint bounded:
// after heavy schedule/fire churn the pool holds at most the peak
// number of concurrently pending events.
func TestFreeListBounded(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10_000; i++ {
		k.Schedule(Nanosecond, func() {})
		k.Step()
	}
	if n := len(k.free); n > 2 {
		t.Fatalf("free list grew to %d records, want <= 2 (peak pending)", n)
	}
}
