// Package sim implements the deterministic discrete-event simulation
// kernel underneath every hardware and OS model in the toolkit.
//
// All platform components (cores, interconnect, DMA engines, RTOS
// schedulers, dataflow executors, the virtual platform) advance a
// shared virtual clock by executing events in a strict, reproducible
// order. Determinism is the property the paper's section VII builds
// its whole debugging argument on (non-intrusive suspension and
// reproducible defects), so the kernel guarantees it structurally:
// events at equal timestamps are ordered by (priority, insertion
// sequence), and simulated "concurrency" is cooperative — exactly one
// event handler or process body runs at a time.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, measured in picoseconds. The
// picosecond base lets per-core frequency scaling (section II-A of the
// paper calls for fine-grained frequency variability) express exact
// integer cycle periods for clocks up to 1 THz.
type Time int64

// Convenient virtual-time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel for "no deadline".
const Forever Time = 1<<63 - 1

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. Events are single-shot; cancelling an
// already-fired or already-cancelled event is a no-op.
type Event struct {
	at       Time
	prio     int
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use; all model code runs on the kernel's goroutine (or in
// lock-step handoff with it, for processes).
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// Executed counts events dispatched since construction; useful as
	// a progress measure and in tests.
	Executed uint64
	// procs tracks live processes so Drain can detect leaks in tests.
	procs int
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule queues fn to run after delay, with priority 0. A negative
// delay panics: virtual time cannot run backwards.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	return k.ScheduleP(delay, 0, fn)
}

// ScheduleP queues fn to run after delay with an explicit priority.
// Lower priorities run first among events with equal timestamps.
func (k *Kernel) ScheduleP(delay Time, prio int, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return k.at(k.now+delay, prio, fn)
}

// At queues fn to run at absolute time t (>= Now).
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, k.now))
	}
	return k.at(t, 0, fn)
}

func (k *Kernel) at(t Time, prio int, fn func()) *Event {
	e := &Event{at: t, prio: prio, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// Cancel removes a queued event. Safe to call on fired events.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		return
	}
	e.canceled = true
	heap.Remove(&k.queue, e.index)
}

// Step executes the single next event. It returns false when the queue
// is empty or the kernel has been stopped.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	if e.at < k.now {
		panic("sim: event queue corrupted (time went backwards)")
	}
	k.now = e.at
	k.Executed++
	e.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to the deadline (if the simulation did not already pass
// it). It returns the number of events executed.
func (k *Kernel) RunUntil(deadline Time) uint64 {
	start := k.Executed
	for !k.stopped && len(k.queue) > 0 && k.queue[0].at <= deadline {
		k.Step()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
	return k.Executed - start
}

// RunFor runs for d units of virtual time from the current instant.
func (k *Kernel) RunFor(d Time) uint64 {
	return k.RunUntil(k.now + d)
}

// Stop halts the run loop after the current event handler returns.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Resume clears a previous Stop so the kernel can run again.
func (k *Kernel) Resume() { k.stopped = false }
