// Package sim implements the deterministic discrete-event simulation
// kernel underneath every hardware and OS model in the toolkit.
//
// All platform components (cores, interconnect, DMA engines, RTOS
// schedulers, dataflow executors, the virtual platform) advance a
// shared virtual clock by executing events in a strict, reproducible
// order. Determinism is the property the paper's section VII builds
// its whole debugging argument on (non-intrusive suspension and
// reproducible defects), so the kernel guarantees it structurally:
// events at equal timestamps are ordered by (priority, insertion
// sequence), and simulated "concurrency" is cooperative — exactly one
// event handler or process body runs at a time.
//
// # Hot-path design: event pooling and closure-free wake-ups
//
// The kernel is the system-wide bottleneck, so its hot path is
// allocation-free in steady state:
//
//   - Event records are pooled. Fired and cancelled records go on a
//     free list and are recycled by the next Schedule instead of being
//     heap-allocated. Each record carries a generation counter that is
//     bumped on recycle; the public Event handle is a (record,
//     generation) value pair, so a stale handle — one whose record has
//     since been reused for a newer event — fails the generation check
//     and Cancel on it is a harmless no-op. Pooling never changes the
//     (time, priority, sequence) dispatch order, so event ordering is
//     byte-identical to an unpooled kernel.
//
//   - Process wake-ups are closure-free. ScheduleProc queues a typed
//     wake payload (the *Proc itself) instead of a func() closure, so
//     Proc.Delay, Signal.Broadcast, Queue and Resource wake paths do
//     not allocate a closure per suspension.
package sim

import "fmt"

// Time is a point in virtual time, measured in picoseconds. The
// picosecond base lets per-core frequency scaling (section II-A of the
// paper calls for fine-grained frequency variability) express exact
// integer cycle periods for clocks up to 1 THz.
type Time int64

// Convenient virtual-time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel for "no deadline".
const Forever Time = 1<<63 - 1

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is the pooled scheduling record. Exactly one of fn and proc is
// set: fn for callback events, proc for closure-free process wake-ups.
type event struct {
	at    Time
	prio  int
	seq   uint64
	gen   uint64
	fn    func()
	proc  *Proc
	index int // heap index, -1 when not queued
}

// Event is a cancellable handle to a scheduled callback or wake-up.
// Events are single-shot; cancelling an already-fired,
// already-cancelled, or zero-valued handle is a no-op. The handle is a
// value pair (record pointer, generation): the kernel recycles fired
// records through a free list, and the generation check makes a stale
// handle harmless even after its record has been reused.
type Event struct {
	e   *event
	gen uint64
}

// Pending reports whether the handle still refers to a queued event.
func (ev Event) Pending() bool {
	return ev.e != nil && ev.e.gen == ev.gen && ev.e.index >= 0
}

// Time returns the virtual time the event is scheduled for, or -1 once
// it has fired or been cancelled (its record may then describe a newer
// event).
func (ev Event) Time() Time {
	if !ev.Pending() {
		return -1
	}
	return ev.e.at
}

// KernelStats are the kernel's observability counters: plain fields
// bumped inline on the (single-goroutine) hot path, so instrumentation
// costs an increment and allocates nothing. Unlike Kernel.Executed,
// the stats are monotonic for the kernel's whole lifetime — Reset
// preserves them — because what they measure (pool effectiveness,
// heap pressure across reuse) only exists across resets. Read them
// with Kernel.Stats.
type KernelStats struct {
	// Scheduled counts events queued (Schedule/ScheduleP/
	// ScheduleProc/At) since construction.
	Scheduled uint64
	// Executed counts events dispatched since construction (the
	// monotonic twin of Kernel.Executed, which Reset zeroes).
	Executed uint64
	// Cancelled counts events removed by Cancel before firing.
	Cancelled uint64
	// PoolHits counts event records recycled from the free list;
	// PoolMisses counts fresh heap allocations. Hits/(Hits+Misses) is
	// the pool hit rate — near 1.0 in steady state.
	PoolHits uint64
	// PoolMisses counts event records that had to be heap-allocated.
	PoolMisses uint64
	// HeapMax is the event queue's high-water depth.
	HeapMax int
}

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use; all model code runs on the kernel's goroutine (or in
// lock-step handoff with it, for processes).
type Kernel struct {
	now     Time
	queue   []*event
	free    []*event
	seq     uint64
	stopped bool
	// Executed counts events dispatched since construction; useful as
	// a progress measure and in tests.
	Executed uint64
	// procs tracks live processes so Drain can detect leaks in tests.
	procs int
	stats KernelStats
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule queues fn to run after delay, with priority 0. A negative
// delay panics: virtual time cannot run backwards.
func (k *Kernel) Schedule(delay Time, fn func()) Event {
	return k.ScheduleP(delay, 0, fn)
}

// ScheduleP queues fn to run after delay with an explicit priority.
// Lower priorities run first among events with equal timestamps.
func (k *Kernel) ScheduleP(delay Time, prio int, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return k.at(k.now+delay, prio, fn, nil)
}

// ScheduleProc queues a wake-up of process p after delay. This is the
// closure-free fast path used by Delay, Signal, Queue and Resource:
// the payload is the typed *Proc, so nothing is allocated in steady
// state. Dispatching the event resumes p exactly like a
// Schedule(delay, func() { p.run() }) would, in the same (time,
// priority, insertion) order.
func (k *Kernel) ScheduleProc(delay Time, prio int, p *Proc) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return k.at(k.now+delay, prio, nil, p)
}

// At queues fn to run at absolute time t (>= Now).
func (k *Kernel) At(t Time, fn func()) Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, k.now))
	}
	return k.at(t, 0, fn, nil)
}

func (k *Kernel) at(t Time, prio int, fn func(), p *Proc) Event {
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		k.stats.PoolHits++
	} else {
		e = &event{}
		k.stats.PoolMisses++
	}
	k.stats.Scheduled++
	e.at, e.prio, e.seq, e.fn, e.proc = t, prio, k.seq, fn, p
	k.seq++
	k.heapPush(e)
	return Event{e: e, gen: e.gen}
}

// recycle bumps the record's generation (invalidating outstanding
// handles) and returns it to the free list.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.proc = nil
	e.index = -1
	k.free = append(k.free, e)
}

// Cancel removes a queued event. Safe to call on fired, cancelled or
// zero-valued handles: the generation check turns those into no-ops.
func (k *Kernel) Cancel(ev Event) {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.index < 0 {
		return
	}
	k.stats.Cancelled++
	k.heapRemove(e.index)
	k.recycle(e)
}

// Stats returns the kernel's monotonic observability counters. They
// survive Reset — pool hit rate and heap high-water are precisely
// about behavior across kernel reuse — and are a pure side channel:
// reading them never perturbs event order or timing.
func (k *Kernel) Stats() KernelStats { return k.stats }

// Step executes the single next event. It returns false when the queue
// is empty or the kernel has been stopped.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.queue) == 0 {
		return false
	}
	e := k.heapPop()
	if e.at < k.now {
		panic("sim: event queue corrupted (time went backwards)")
	}
	k.now = e.at
	k.Executed++
	k.stats.Executed++
	fn, proc := e.fn, e.proc
	// Recycle before dispatch: the handler may schedule new events and
	// reuse this record immediately; fn/proc were copied out above.
	k.recycle(e)
	if proc != nil {
		proc.run()
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to the deadline (if the simulation did not already pass
// it). It returns the number of events executed.
func (k *Kernel) RunUntil(deadline Time) uint64 {
	start := k.Executed
	for !k.stopped && len(k.queue) > 0 && k.queue[0].at <= deadline {
		k.Step()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
	return k.Executed - start
}

// RunFor runs for d units of virtual time from the current instant.
func (k *Kernel) RunFor(d Time) uint64 {
	return k.RunUntil(k.now + d)
}

// Reset returns the kernel to its initial state — empty event queue,
// time zero, sequence zero, zero Executed — while keeping the pooled
// event records, so a reset kernel behaves exactly like a freshly
// constructed one but re-runs without re-warming the pool. Pending
// events are cancelled (their records recycled, outstanding handles
// invalidated by the generation bump). Reset panics if live processes
// remain: their goroutines are parked inside model code and cannot be
// reclaimed, so such a kernel must be discarded instead. The Stats
// counters are deliberately preserved — they measure behavior across
// resets (pool hit rate, heap high-water) and are not observable
// simulation state.
func (k *Kernel) Reset() {
	if k.procs != 0 {
		panic(fmt.Sprintf("sim: Reset with %d live processes", k.procs))
	}
	for i, e := range k.queue {
		k.queue[i] = nil
		k.recycle(e)
	}
	k.queue = k.queue[:0]
	k.now = 0
	k.seq = 0
	k.stopped = false
	k.Executed = 0
}

// Stop halts the run loop after the current event handler returns.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Resume clears a previous Stop so the kernel can run again.
func (k *Kernel) Resume() { k.stopped = false }

// --- Event heap (inlined binary heap; avoids container/heap's
// interface dispatch on the hottest code in the system) ---

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (k *Kernel) heapPush(e *event) {
	k.queue = append(k.queue, e)
	if n := len(k.queue); n > k.stats.HeapMax {
		k.stats.HeapMax = n
	}
	e.index = len(k.queue) - 1
	k.siftUp(e.index)
}

func (k *Kernel) heapPop() *event {
	q := k.queue
	e := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	k.queue = q[:n]
	if n > 0 {
		k.queue[0] = last
		last.index = 0
		k.siftDown(0)
	}
	e.index = -1
	return e
}

func (k *Kernel) heapRemove(i int) {
	q := k.queue
	e := q[i]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	k.queue = q[:n]
	if i < n {
		k.queue[i] = last
		last.index = i
		k.siftDown(i)
		k.siftUp(last.index)
	}
	e.index = -1
}

func (k *Kernel) siftUp(i int) {
	q := k.queue
	e := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = e
	e.index = i
}

func (k *Kernel) siftDown(i int) {
	q := k.queue
	n := len(q)
	e := q[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventLess(q[r], q[c]) {
			c = r
		}
		if !eventLess(q[c], e) {
			break
		}
		q[i] = q[c]
		q[i].index = i
		i = c
	}
	q[i] = e
	e.index = i
}
