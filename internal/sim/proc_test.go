package sim

import "testing"

func TestProcDelay(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Delay(10 * Nanosecond)
			times = append(times, p.Now())
		}
	})
	k.Run()
	want := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	if len(times) != 3 {
		t.Fatalf("got %d wakeups, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("wakeup %d at %v, want %v", i, times[i], want[i])
		}
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("%d processes leaked", k.LiveProcs())
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(10 * Nanosecond)
				log = append(log, "a")
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(10 * Nanosecond)
				log = append(log, "b")
			}
		})
		k.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("nondeterministic length: %v vs %v", got, first)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, got, first)
			}
		}
	}
	// Spawn order a-then-b must be preserved at equal timestamps.
	if first[0] != "a" || first[1] != "b" {
		t.Fatalf("spawn order not respected: %v", first)
	}
}

func TestSpawnAfter(t *testing.T) {
	k := NewKernel()
	var at Time = -1
	k.SpawnAfter("late", 5*Microsecond, func(p *Proc) { at = p.Now() })
	k.Run()
	if at != 5*Microsecond {
		t.Fatalf("late proc started at %v, want 5us", at)
	}
}

func TestKill(t *testing.T) {
	k := NewKernel()
	steps := 0
	p := k.Spawn("victim", func(p *Proc) {
		for {
			p.Delay(1 * Nanosecond)
			steps++
		}
	})
	k.Schedule(5*Nanosecond, func() { p.Kill() })
	k.Run()
	if !p.Dead() {
		t.Fatal("killed process not dead")
	}
	if steps == 0 || steps > 6 {
		t.Fatalf("victim ran %d steps, want a handful then death", steps)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("%d processes leaked", k.LiveProcs())
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal()
	var woke []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			s.Wait(p)
			woke = append(woke, name)
		})
	}
	k.Schedule(100*Nanosecond, func() { s.Broadcast() })
	k.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d, want 3", len(woke))
	}
	for i, want := range []string{"w1", "w2", "w3"} {
		if woke[i] != want {
			t.Fatalf("wake order %v, want FIFO", woke)
		}
	}
	if s.Fires != 1 {
		t.Fatalf("signal fires = %d, want 1", s.Fires)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	// A panicking process must crash loudly, not hang. We can't easily
	// recover a goroutine crash in-test, so this is compile-time
	// documented behavior; here we just check a normal body does not
	// trip the recovery path.
	k := NewKernel()
	done := false
	k.Spawn("ok", func(p *Proc) { done = true })
	k.Run()
	if !done {
		t.Fatal("process did not run")
	}
}
