package sim

import "testing"

// The kernel is the system-wide hot path: every model (VP, OSIP, RTOS,
// NoC, dataflow, TTDD) schedules through it. These benchmarks pin down
// allocs/op on the three dominant operations so regressions are caught
// immediately. The steady-state Delay path must report 0 allocs/op.

func BenchmarkSchedule(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(Nanosecond, fn)
		k.Step()
	}
}

func BenchmarkProcDelay(b *testing.B) {
	k := NewKernel()
	done := false
	k.Spawn("delayer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(Nanosecond)
		}
		done = true
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
	if !done {
		b.Fatal("delayer did not finish")
	}
}

func BenchmarkSignalBroadcast(b *testing.B) {
	const waiters = 8
	k := NewKernel()
	s := k.NewSignal()
	stop := false
	for w := 0; w < waiters; w++ {
		k.Spawn("waiter", func(p *Proc) {
			for !stop {
				s.Wait(p)
			}
		})
	}
	k.Spawn("driver", func(p *Proc) {
		p.Delay(Nanosecond) // let the waiters register first
		for i := 0; i < b.N; i++ {
			s.Broadcast()
			p.Delay(Nanosecond) // waiters re-register before the next round
		}
		stop = true
		s.Broadcast()
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
	if s.Fires != uint64(b.N)+1 {
		b.Fatalf("fired %d broadcasts, want %d", s.Fires, b.N+1)
	}
}
