package sim

// Queue is a bounded FIFO token channel between simulation processes,
// with blocking semantics in virtual time: Get blocks while empty,
// Put blocks while full (back-pressure). It is the basic communication
// primitive of the data-driven execution model in section III of the
// paper, and of the message-based programming model of section II-C.
type Queue struct {
	Name string
	k    *Kernel
	cap  int
	buf  []any

	getters []*Proc
	putters []*Proc

	// Statistics.
	Puts, Gets uint64
	MaxDepth   int
	// BlockedPutTime accumulates virtual time producers spent blocked.
	BlockedPutTime Time
	// BlockedGetTime accumulates virtual time consumers spent blocked.
	BlockedGetTime Time
}

// NewQueue returns a queue with the given capacity. capacity <= 0
// means unbounded.
func (k *Kernel) NewQueue(name string, capacity int) *Queue {
	return &Queue{Name: name, k: k, cap: capacity}
}

// Len returns the number of buffered tokens.
func (q *Queue) Len() int { return len(q.buf) }

// Cap returns the capacity (0 = unbounded).
func (q *Queue) Cap() int { return q.cap }

// Full reports whether a Put would block.
func (q *Queue) Full() bool { return q.cap > 0 && len(q.buf) >= q.cap }

// Put appends v, blocking the process while the queue is full.
func (q *Queue) Put(p *Proc, v any) {
	for q.Full() {
		t0 := q.k.Now()
		q.putters = append(q.putters, p)
		p.park()
		q.BlockedPutTime += q.k.Now() - t0
	}
	q.buf = append(q.buf, v)
	q.Puts++
	if len(q.buf) > q.MaxDepth {
		q.MaxDepth = len(q.buf)
	}
	q.wake(&q.getters)
}

// TryPut appends v without blocking; it reports whether the token was
// accepted. This models the time-triggered writer of section III that
// does NOT wait for buffer space and therefore can overwrite data.
func (q *Queue) TryPut(v any) bool {
	if q.Full() {
		return false
	}
	q.buf = append(q.buf, v)
	q.Puts++
	if len(q.buf) > q.MaxDepth {
		q.MaxDepth = len(q.buf)
	}
	q.wake(&q.getters)
	return true
}

// ForcePut appends v even when full, evicting the oldest token. It
// returns the evicted token (nil if none). This is the corruption
// mechanism of time-triggered overruns in the paper's section III:
// "data would be overwritten in a buffer".
func (q *Queue) ForcePut(v any) (evicted any) {
	if q.Full() {
		evicted = q.buf[0]
		copy(q.buf, q.buf[1:])
		q.buf[len(q.buf)-1] = v
		q.Puts++
		q.wake(&q.getters)
		return evicted
	}
	q.buf = append(q.buf, v)
	q.Puts++
	if len(q.buf) > q.MaxDepth {
		q.MaxDepth = len(q.buf)
	}
	q.wake(&q.getters)
	return nil
}

// Get removes and returns the oldest token, blocking while empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.buf) == 0 {
		t0 := q.k.Now()
		q.getters = append(q.getters, p)
		p.park()
		q.BlockedGetTime += q.k.Now() - t0
	}
	v := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	q.Gets++
	q.wake(&q.putters)
	return v
}

// TryGet removes the oldest token without blocking.
func (q *Queue) TryGet() (any, bool) {
	if len(q.buf) == 0 {
		return nil, false
	}
	v := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	q.Gets++
	q.wake(&q.putters)
	return v, true
}

// Peek returns the oldest token without removing it.
func (q *Queue) Peek() (any, bool) {
	if len(q.buf) == 0 {
		return nil, false
	}
	return q.buf[0], true
}

// wake resumes every parked process on list via the kernel's shared
// closure-free wakeAll path.
func (q *Queue) wake(list *[]*Proc) {
	q.k.wakeAll(list)
}

// Resource is a counting semaphore in virtual time; it models
// exclusive or limited-capacity hardware resources (bus grants,
// scheduler ASIP ports, semaphore peripherals).
type Resource struct {
	Name  string
	k     *Kernel
	total int
	inUse int
	wait  []*Proc
	// Acquisitions counts successful Acquire calls.
	Acquisitions uint64
	// ContendedTime accumulates time processes spent waiting.
	ContendedTime Time
}

// NewResource returns a resource with n units of capacity.
func (k *Kernel) NewResource(name string, n int) *Resource {
	if n <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{Name: name, k: k, total: n}
}

// Acquire takes one unit, blocking while none are free.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.total {
		t0 := r.k.Now()
		r.wait = append(r.wait, p)
		p.park()
		r.ContendedTime += r.k.Now() - t0
	}
	r.inUse++
	r.Acquisitions++
}

// TryAcquire takes one unit if immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.total {
		return false
	}
	r.inUse++
	r.Acquisitions++
	return true
}

// Release returns one unit and wakes all waiters (they re-contend in
// FIFO order thanks to deterministic event ordering).
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire on " + r.Name)
	}
	r.inUse--
	r.k.wakeAll(&r.wait)
}

// InUse returns the number of held units.
func (r *Resource) InUse() int { return r.inUse }
