package sim

import "fmt"

// Proc is a simulation process: a goroutine that runs in strict
// lock-step handoff with the kernel, so that at any instant at most
// one process body (or event handler) executes. This gives
// sequential, deterministic semantics to model code written in a
// blocking style (Delay, Wait, channel Get/Put) — the programming
// model section II-C of the paper argues for: internally sequential
// components communicating asynchronously.
//
// The handoff uses one single-token buffered channel per direction:
// each side deposits a token (a buffered send that never blocks,
// because strict alternation guarantees the buffer is empty) and then
// blocks receiving the other side's token. That is two channel
// operations per transfer of control instead of the four a pair of
// unbuffered rendezvous would cost, and it is the reason park/resume
// dominates neither CPU profiles nor allocation profiles.
type Proc struct {
	Name   string
	k      *Kernel
	resume chan struct{}
	yield  chan struct{}
	dead   bool
	// Killed is set when the process is terminated externally.
	Killed bool
}

// Spawn starts body as a new process at the current virtual time.
// The body begins executing when the kernel dispatches its activation
// event, not immediately.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	return k.SpawnAfter(name, 0, body)
}

// SpawnAfter starts body as a new process after the given delay.
func (k *Kernel) SpawnAfter(name string, delay Time, body func(p *Proc)) *Proc {
	p := &Proc{
		Name:   name,
		k:      k,
		resume: make(chan struct{}, 1),
		yield:  make(chan struct{}, 1),
	}
	k.procs++
	go func() {
		<-p.resume
		defer func() {
			// A killed process unwinds via panic(procKilled); anything
			// else is a genuine model bug and is re-raised on the
			// kernel goroutine by poisoning the handoff.
			if r := recover(); r != nil && r != procKilled {
				p.dead = true
				p.k.procs--
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.Name, r))
			}
			p.dead = true
			p.k.procs--
			p.yield <- struct{}{}
		}()
		if !p.Killed {
			body(p)
		}
	}()
	k.ScheduleProc(delay, 0, p)
	return p
}

// procKilled is the sentinel used to unwind a killed process.
var procKilled = new(int)

// run transfers control to the process and blocks until it parks
// again (in Delay/Wait/…) or terminates.
func (p *Proc) run() {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// park gives control back to the kernel and blocks until resumed.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
	if p.Killed {
		panic(procKilled)
	}
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// Delay suspends the process for d units of virtual time.
func (p *Proc) Delay(d Time) {
	if d < 0 {
		panic("sim: negative delay")
	}
	p.k.ScheduleProc(d, 0, p)
	p.park()
}

// DelayP suspends like Delay but wakes with the given event priority,
// controlling ordering against same-time events.
func (p *Proc) DelayP(d Time, prio int) {
	if d < 0 {
		panic("sim: negative delay")
	}
	p.k.ScheduleProc(d, prio, p)
	p.park()
}

// Kill terminates the process the next time it would resume. If the
// process is currently parked it is woken immediately to unwind.
func (p *Proc) Kill() {
	if p.dead || p.Killed {
		return
	}
	p.Killed = true
	p.k.ScheduleProc(0, 0, p)
}

// Dead reports whether the process body has returned or been killed.
func (p *Proc) Dead() bool { return p.dead }

// LiveProcs returns the number of processes that have been spawned and
// have not yet terminated. Useful for leak checks in tests.
func (k *Kernel) LiveProcs() int { return k.procs }

// wakeAll schedules a zero-delay closure-free wake-up for every
// process on list, then truncates the list in place so its backing
// array is reused by the next round of waiters (no steady-state
// allocation). Shared by Signal.Broadcast, Queue and Resource.
func (k *Kernel) wakeAll(list *[]*Proc) {
	for _, p := range *list {
		k.ScheduleProc(0, 0, p)
	}
	*list = (*list)[:0]
}

// Signal is a broadcast wake-up point for processes (a condition
// variable in virtual time).
type Signal struct {
	k       *Kernel
	waiters []*Proc
	// Fires counts how many times the signal has been raised.
	Fires uint64
}

// NewSignal returns a signal bound to kernel k.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Wait parks the process until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Broadcast wakes all waiting processes at the current time, in the
// order they started waiting. The wake-ups go through the kernel's
// closure-free ScheduleProc path and the waiter slice's backing array
// is retained, so a steady broadcast/re-wait cycle does not allocate.
func (s *Signal) Broadcast() {
	s.Fires++
	s.k.wakeAll(&s.waiters)
}

// Waiters returns the number of processes currently waiting.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Reset returns the signal to its just-constructed state: no waiters,
// zero fire count. The waiter slice's backing array is retained, so a
// reset signal re-warms nothing and allocates nothing. Only call it
// when every recorded waiter is dead or being discarded — dropping a
// live waiter would strand its process forever.
func (s *Signal) Reset() {
	for i := range s.waiters {
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
	s.Fires = 0
}
