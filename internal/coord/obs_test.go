package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"mpsockit/internal/dse"
	"mpsockit/internal/obs"
)

// TestMetricsEndpoint drives a sweep through a worker with telemetry
// attached and scrapes GET /metrics afterwards: the exposition must
// parse line by line (the same walk the CI farm smoke applies) and the
// farm counters must have moved.
func TestMetricsEndpoint(t *testing.T) {
	srv, err := New(Config{Spec: "smoke", Seed: 1, Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cfg := quickWorker(hs.URL, "w-obs")
	cfg.Obs = dse.NewEvalObs(srv.Registry())
	var traceBuf bytes.Buffer
	cfg.Tracer = obs.NewTracer(&traceBuf)
	w := NewWorker(cfg)
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || name == "" || value == "" {
			t.Fatalf("unparseable sample line %q", line)
		}
		samples[name] = value
	}
	for _, name := range []string{
		"coord_lease_grants_total",
		"coord_results_accepted_total",
		"coord_points_done",
		`coord_worker_heartbeat_age_seconds{worker="w-obs"}`,
		`coord_worker_accepted_total{worker="w-obs"}`,
		"dse_points_total",
		"sim_events_executed_total",
	} {
		v, ok := samples[name]
		if !ok {
			t.Fatalf("metric %s missing from exposition:\n%s", name, body)
		}
		if name != `coord_worker_heartbeat_age_seconds{worker="w-obs"}` && (v == "0" || v == "") {
			t.Fatalf("metric %s = %q, want non-zero", name, v)
		}
	}
	n := len(srv.Points())
	if v, _ := strconv.Atoi(samples["coord_results_accepted_total"]); v != n {
		t.Fatalf("coord_results_accepted_total = %s, want %d", samples["coord_results_accepted_total"], n)
	}
	// The trace includes at least one eval span per point plus
	// lease/flush spans on the coordination row.
	var events []map[string]any
	if err := json.Unmarshal(traceBuf.Bytes(), &events); err != nil {
		t.Fatalf("trace unparseable: %v", err)
	}
	evals, coordSpans := 0, 0
	for _, e := range events {
		switch e["name"] {
		case "eval":
			evals++
		case "lease", "flush":
			coordSpans++
		}
	}
	if evals < n {
		t.Fatalf("trace has %d eval spans for %d points", evals, n)
	}
	if coordSpans == 0 {
		t.Fatal("trace has no lease/flush spans")
	}
}

// TestStatusWorkersAndRate: the enriched status carries the per-worker
// table and a resume-aware throughput/ETA estimate under an injected
// clock.
func TestStatusWorkersAndRate(t *testing.T) {
	clk := newFakeClock()
	srv, err := New(Config{Spec: "smoke", Seed: 1, Chunks: 2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	w := NewWorker(quickWorker(hs.URL, "w-status"))
	// Advance the fake clock in the background so elapsed time is
	// non-zero by completion; evaluation runs on the real clock.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				clk.Advance(10 * time.Millisecond)
			}
		}
	}()
	err = w.Run(context.Background())
	close(stop)
	if err != nil {
		t.Fatal(err)
	}

	st := srv.Status()
	if !st.Complete {
		t.Fatal("sweep incomplete")
	}
	if len(st.WorkerInfo) != 1 || st.WorkerInfo[0].Name != "w-status" {
		t.Fatalf("worker table %+v, want one row for w-status", st.WorkerInfo)
	}
	if st.WorkerInfo[0].Accepted != int64(st.Total) {
		t.Fatalf("worker accepted %d, want %d", st.WorkerInfo[0].Accepted, st.Total)
	}
	if st.PointsPerSec <= 0 {
		t.Fatalf("points/sec %v, want > 0", st.PointsPerSec)
	}
	if st.ETASeconds != 0 {
		t.Fatalf("ETA %v on a complete sweep, want 0", st.ETASeconds)
	}
}
