package coord

import (
	"time"

	"mpsockit/internal/obs"
)

// coordObs bundles the coordinator's result-path counters. Fields are
// nil-safe obs instruments, so the zero value (no registry) is inert.
type coordObs struct {
	accepted   *obs.Counter
	duplicates *obs.Counter
	conflicts  *obs.Counter
}

// leaseObs bundles the lease-table counters; every sweep's table
// shares one instance so the totals stay farm-global, and the zero
// value is inert.
type leaseObs struct {
	grants   *obs.Counter
	reissues *obs.Counter
	steals   *obs.Counter
	reclaims *obs.Counter
}

// workerState is the coordinator's per-worker record: when the worker
// was last heard from (hello, lease, heartbeat or results), how many
// result lines of its submissions were accepted as new, and which
// sweep it was last granted work from (the scheduler's affinity).
type workerState struct {
	lastSeen time.Time
	accepted int64
	affinity string
}

// initObs registers the coordinator's farm-level metric families.
// Func-valued gauges read server state under s.mu — safe because the
// registry never renders while a coordinator handler holds the lock
// (exposition snapshots the series list, then evaluates functions
// unlocked). Per-sweep and per-worker series register on first sight
// and unregister when the entity is garbage-collected, so a long-lived
// multi-tenant daemon's label sets stay bounded.
func (s *Server) initObs() {
	r := s.reg
	s.obs = coordObs{
		accepted:   r.Counter("coord_results_accepted_total", "Result lines accepted as new."),
		duplicates: r.Counter("coord_result_duplicates_total", "Byte-identical duplicate result lines absorbed."),
		conflicts:  r.Counter("coord_result_conflicts_total", "Result batches rejected with 409 (conflicting bytes for an accepted point)."),
	}
	s.leaseObs = leaseObs{
		grants:   r.Counter("coord_lease_grants_total", "Leases granted (fresh, reissued and stolen)."),
		reissues: r.Counter("coord_lease_reissues_total", "Lease grants covering previously-leased ranges."),
		steals:   r.Counter("coord_lease_steals_total", "Leases granted by stealing a straggler's unfinished tail."),
		reclaims: r.Counter("coord_lease_reclaims_total", "Expired or cancelled leases reclaimed."),
	}
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	r.GaugeFunc("coord_points_done", "Points with an accepted result, all sweeps.",
		locked(func() float64 {
			n := 0
			for _, sw := range s.sweeps {
				n += sw.acc.Done()
			}
			return float64(n)
		}))
	r.GaugeFunc("coord_points_total", "Points across all registered sweeps.",
		locked(func() float64 {
			n := 0
			for _, sw := range s.sweeps {
				n += sw.acc.Total()
			}
			return float64(n)
		}))
	r.GaugeFunc("coord_active_leases", "Currently outstanding leases, all sweeps.",
		locked(func() float64 {
			n := 0
			for _, sw := range s.sweeps {
				n += len(sw.table.active)
			}
			return float64(n)
		}))
	r.GaugeFunc("coord_pending_points", "Points neither done nor covered by an active lease.",
		locked(func() float64 {
			n := 0
			for _, sw := range s.sweeps {
				if sw.state == SweepActive {
					n += sw.table.pendingPoints()
				}
			}
			return float64(n)
		}))
	r.GaugeFunc("coord_workers", "Distinct worker identities currently tracked.",
		locked(func() float64 { return float64(len(s.workers)) }))
	r.GaugeFunc("coord_sweeps_active", "Registered sweeps still running.",
		locked(func() float64 {
			n := 0
			for _, sw := range s.sweeps {
				if sw.state == SweepActive {
					n++
				}
			}
			return float64(n)
		}))
	r.GaugeFunc("coord_checkpoint_bytes", "Total on-disk checkpoint bytes, all sweeps.",
		locked(func() float64 {
			var n int64
			for _, sw := range s.sweeps {
				n += sw.ckptBytes
			}
			return float64(n)
		}))
}

// sweepSeries are the per-sweep metric families, registered and
// unregistered as a block.
var sweepSeries = []string{
	"coord_sweep_points_done",
	"coord_sweep_points_total",
	"coord_sweep_active_leases",
	"coord_sweep_debt",
	"coord_sweep_checkpoint_bytes",
}

// registerSweepObsLocked adds the sweep's labeled series. Caller holds
// s.mu; the closures re-lock at exposition time and read through the
// captured record, which stays valid even after removal (the series is
// unregistered in the same critical section that drops the record, so
// an unregistered closure is never rendered again).
func (s *Server) registerSweepObsLocked(sw *sweep) {
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	s.reg.GaugeFunc("coord_sweep_points_done", "Points of this sweep with an accepted result.",
		locked(func() float64 { return float64(sw.acc.Done()) }), "sweep", sw.id)
	s.reg.GaugeFunc("coord_sweep_points_total", "Points in this sweep.",
		func() float64 { return float64(len(sw.points)) }, "sweep", sw.id)
	s.reg.GaugeFunc("coord_sweep_active_leases", "Outstanding leases of this sweep.",
		locked(func() float64 { return float64(len(sw.table.active)) }), "sweep", sw.id)
	s.reg.GaugeFunc("coord_sweep_debt", "Fair-scheduling deficit of this sweep (EstCost units).",
		locked(func() float64 { return sw.debt }), "sweep", sw.id)
	s.reg.GaugeFunc("coord_sweep_checkpoint_bytes", "On-disk checkpoint bytes of this sweep.",
		locked(func() float64 { return float64(sw.ckptBytes) }), "sweep", sw.id)
}

// unregisterSweepObsLocked drops a removed sweep's labeled series.
func (s *Server) unregisterSweepObsLocked(id string) {
	for _, name := range sweepSeries {
		s.reg.Unregister(name, "sweep", id)
	}
}

// unregisterWorkerObsLocked drops a departed worker's labeled series.
func (s *Server) unregisterWorkerObsLocked(name string) {
	s.reg.Unregister("coord_worker_heartbeat_age_seconds", "worker", name)
	s.reg.Unregister("coord_worker_accepted_total", "worker", name)
}

// touchWorkerLocked records that the worker was heard from now,
// registering its per-worker metric series on first sight. Caller
// holds s.mu.
func (s *Server) touchWorkerLocked(worker string, now time.Time) *workerState {
	if worker == "" {
		worker = "(anonymous)"
	}
	ws, ok := s.workers[worker]
	if !ok {
		ws = &workerState{}
		s.workers[worker] = ws
		s.reg.GaugeFunc("coord_worker_heartbeat_age_seconds",
			"Seconds since the worker was last heard from.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return s.cfg.Now().Sub(ws.lastSeen).Seconds()
			}, "worker", worker)
		s.reg.CounterFunc("coord_worker_accepted_total",
			"Result lines from this worker accepted as new.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(ws.accepted)
			}, "worker", worker)
	}
	ws.lastSeen = now
	return ws
}
