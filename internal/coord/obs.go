package coord

import (
	"time"

	"mpsockit/internal/obs"
)

// coordObs bundles the coordinator's result-path counters. Fields are
// nil-safe obs instruments, so the zero value (no registry) is inert.
type coordObs struct {
	accepted   *obs.Counter
	duplicates *obs.Counter
	conflicts  *obs.Counter
}

// leaseObs bundles the lease table's counters; the table increments
// them inline (grant, reissue, steal, reclaim) and the zero value is
// inert.
type leaseObs struct {
	grants   *obs.Counter
	reissues *obs.Counter
	steals   *obs.Counter
	reclaims *obs.Counter
}

// workerState is the coordinator's per-worker record: when the worker
// was last heard from (hello, lease, heartbeat or results) and how
// many result lines of its submissions were accepted as new.
type workerState struct {
	lastSeen time.Time
	accepted int64
}

// initObs registers the coordinator's metric families on its registry.
// Func-valued gauges read server state under s.mu — safe because the
// registry never renders while a coordinator handler holds the lock
// (exposition snapshots the series list, then evaluates functions
// unlocked).
func (s *Server) initObs() {
	r := s.reg
	s.obs = coordObs{
		accepted:   r.Counter("coord_results_accepted_total", "Result lines accepted as new."),
		duplicates: r.Counter("coord_result_duplicates_total", "Byte-identical duplicate result lines absorbed."),
		conflicts:  r.Counter("coord_result_conflicts_total", "Result batches rejected with 409 (conflicting bytes for an accepted point)."),
	}
	s.table.obs = leaseObs{
		grants:   r.Counter("coord_lease_grants_total", "Leases granted (fresh, reissued and stolen)."),
		reissues: r.Counter("coord_lease_reissues_total", "Lease grants covering previously-leased ranges."),
		steals:   r.Counter("coord_lease_steals_total", "Leases granted by stealing a straggler's unfinished tail."),
		reclaims: r.Counter("coord_lease_reclaims_total", "Expired leases reclaimed."),
	}
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	r.GaugeFunc("coord_points_done", "Points with an accepted result.",
		locked(func() float64 { return float64(s.acc.Done()) }))
	r.GaugeFunc("coord_points_total", "Points in the sweep.",
		func() float64 { return float64(len(s.points)) })
	r.GaugeFunc("coord_active_leases", "Currently outstanding leases.",
		locked(func() float64 { return float64(len(s.table.active)) }))
	r.GaugeFunc("coord_pending_points", "Points neither done nor covered by an active lease.",
		locked(func() float64 { return float64(s.table.pendingPoints()) }))
	r.GaugeFunc("coord_workers", "Distinct worker identities seen.",
		locked(func() float64 { return float64(len(s.workers)) }))
}

// touchWorkerLocked records that the worker was heard from now,
// registering its per-worker metric series on first sight. Caller
// holds s.mu.
func (s *Server) touchWorkerLocked(worker string, now time.Time) *workerState {
	if worker == "" {
		worker = "(anonymous)"
	}
	ws, ok := s.workers[worker]
	if !ok {
		ws = &workerState{}
		s.workers[worker] = ws
		s.reg.GaugeFunc("coord_worker_heartbeat_age_seconds",
			"Seconds since the worker was last heard from.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return s.cfg.Now().Sub(ws.lastSeen).Seconds()
			}, "worker", worker)
		s.reg.CounterFunc("coord_worker_accepted_total",
			"Result lines from this worker accepted as new.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(ws.accepted)
			}, "worker", worker)
	}
	ws.lastSeen = now
	return ws
}
