package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpsockit/internal/dse"
)

// fakeClock is an injectable, manually advanced clock for driving
// lease expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// sweepLines evaluates the sweep once and returns the expanded points
// plus each point's JSONL line (without trailing newline), indexed by
// point ID — the ground truth any worker anywhere would produce.
func sweepLines(t *testing.T, spec string, seed uint64) ([]dse.Point, [][]byte) {
	t.Helper()
	sw, err := dse.ParseSweep(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	lines := make([][]byte, len(points))
	eng := dse.Engine{OnResult: func(r dse.Result) {
		var buf bytes.Buffer
		if err := dse.WriteResult(&buf, r); err != nil {
			t.Error(err)
		}
		lines[r.Point.ID] = bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
	}}
	eng.Run(points)
	return points, lines
}

// referenceBytes renders the full fault-free single-worker output
// file for the sweep.
func referenceBytes(t *testing.T, spec string, seed uint64) []byte {
	t.Helper()
	points, lines := sweepLines(t, spec, seed)
	var buf bytes.Buffer
	if err := dse.WriteHeader(&buf, dse.NewHeader(spec, seed, points, nil)); err != nil {
		t.Fatal(err)
	}
	for _, line := range lines {
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// postJSON drives one JSON protocol request against the handler.
func postJSON(t *testing.T, h http.Handler, path string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: decoding %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// postLines submits JSONL result lines, returning the status code,
// ack and error body.
func postLines(t *testing.T, h http.Handler, worker string, lease int64, lines [][]byte) (int, ResultAck, string) {
	t.Helper()
	body := bytes.Join(lines, []byte("\n"))
	path := fmt.Sprintf("/results?worker=%s&lease=%d", worker, lease)
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var ack ResultAck
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
			t.Fatal(err)
		}
	}
	return rec.Code, ack, rec.Body.String()
}

// lease requests one lease for the worker.
func requestLease(t *testing.T, h http.Handler, worker string) LeaseResponse {
	t.Helper()
	var lr LeaseResponse
	if code := postJSON(t, h, "/lease", LeaseRequest{Worker: worker}, &lr); code != http.StatusOK {
		t.Fatalf("lease: HTTP %d", code)
	}
	return lr
}

// TestLeaseExpiryReclaimThenLateAck is the dedupe race the whole
// design leans on: worker A's lease expires (stalled heartbeat), the
// range is reclaimed and reissued to worker B, B submits — and then A,
// which was merely slow, acks the same points late. A's lines must
// land as byte-identical duplicates, not conflicts, and the final file
// must come out clean.
func TestLeaseExpiryReclaimThenLateAck(t *testing.T) {
	const spec, seed = "smoke", uint64(1)
	points, lines := sweepLines(t, spec, seed)
	clock := newFakeClock()
	srv, err := New(Config{Spec: spec, Seed: seed, LeaseTimeout: 10 * time.Second, Chunks: 4, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	la := requestLease(t, h, "A")
	if la.Lease == nil {
		t.Fatal("A got no lease")
	}

	// A goes quiet; the deadline passes; B's next request reclaims.
	clock.Advance(11 * time.Second)
	lb := requestLease(t, h, "B")
	if lb.Lease == nil {
		t.Fatal("B got no lease after reclaim")
	}
	if lb.Lease.Lo != la.Lease.Lo {
		t.Fatalf("B's lease starts at %d, want the reclaimed range start %d", lb.Lease.Lo, la.Lease.Lo)
	}
	if lb.Lease.Len() >= la.Lease.Len() {
		t.Fatalf("reissued lease len %d not shrunk from %d", lb.Lease.Len(), la.Lease.Len())
	}

	// A's heartbeat for the reclaimed lease is politely refused.
	var hb HeartbeatResponse
	postJSON(t, h, "/heartbeat", HeartbeatRequest{Worker: "A", Lease: la.Lease.ID}, &hb)
	if hb.Valid {
		t.Fatal("heartbeat on a reclaimed lease reported valid")
	}

	// B delivers its (shrunken) range.
	code, ack, body := postLines(t, h, "B", lb.Lease.ID, lines[lb.Lease.Lo:lb.Lease.Hi])
	if code != http.StatusOK || ack.Accepted != lb.Lease.Len() {
		t.Fatalf("B submit: HTTP %d ack %+v (%s)", code, ack, body)
	}

	// A wakes up and submits its whole original range: the part B beat
	// it to dedupes, the rest is accepted.
	code, ack, body = postLines(t, h, "A", la.Lease.ID, lines[la.Lease.Lo:la.Lease.Hi])
	if code != http.StatusOK {
		t.Fatalf("late ack: HTTP %d (%s)", code, body)
	}
	if ack.Duplicates != lb.Lease.Len() {
		t.Fatalf("late ack dedupe: %d duplicates, want %d", ack.Duplicates, lb.Lease.Len())
	}
	if ack.Accepted != la.Lease.Len()-lb.Lease.Len() {
		t.Fatalf("late ack accepted %d, want %d", ack.Accepted, la.Lease.Len()-lb.Lease.Len())
	}

	// Drain the rest of the sweep as worker B.
	for {
		lr := requestLease(t, h, "B")
		if lr.Done {
			break
		}
		if lr.Lease == nil {
			t.Fatalf("sweep stalled: %+v, status %+v", lr, srv.Status())
		}
		if code, _, body := postLines(t, h, "B", lr.Lease.ID, lines[lr.Lease.Lo:lr.Lease.Hi]); code != http.StatusOK {
			t.Fatalf("drain submit: HTTP %d (%s)", code, body)
		}
	}

	st := srv.Status()
	if !st.Complete || st.Done != len(points) || st.Duplicates != lb.Lease.Len() {
		t.Fatalf("final status %+v", st)
	}
	var got bytes.Buffer
	if err := srv.WriteFinal(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), referenceBytes(t, spec, seed)) {
		t.Fatal("merged output differs from the fault-free single-worker run")
	}
}

// TestConflictingBytesRejected checks that a result whose bytes
// disagree with an accepted line — or whose point disagrees with the
// spec expansion — is refused with 409, because that is engine drift,
// not a retry.
func TestConflictingBytesRejected(t *testing.T) {
	const spec, seed = "smoke", uint64(1)
	_, lines := sweepLines(t, spec, seed)
	srv, err := New(Config{Spec: spec, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	l := requestLease(t, h, "w")
	if code, _, _ := postLines(t, h, "w", l.Lease.ID, lines[l.Lease.Lo:l.Lease.Hi]); code != http.StatusOK {
		t.Fatalf("seed submit: HTTP %d", code)
	}

	// Same point, different metrics bytes: conflict.
	tampered := bytes.Replace(lines[l.Lease.Lo], []byte(`"makespan_ps":`), []byte(`"makespan_ps":9`), 1)
	code, _, body := postLines(t, h, "w", l.Lease.ID, [][]byte{tampered})
	if code != http.StatusConflict || !strings.Contains(body, "conflicting") {
		t.Fatalf("tampered metrics: HTTP %d (%s), want 409/conflicting", code, body)
	}

	// A point that does not re-expand from the spec: refused.
	var r dse.Result
	if err := json.Unmarshal(lines[l.Lease.Hi-1], &r); err != nil {
		t.Fatal(err)
	}
	r.Point.Seed++
	var buf bytes.Buffer
	if err := dse.WriteResult(&buf, r); err != nil {
		t.Fatal(err)
	}
	code, _, body = postLines(t, h, "w", l.Lease.ID, [][]byte{bytes.TrimSuffix(buf.Bytes(), []byte("\n"))})
	if code != http.StatusConflict || !strings.Contains(body, "does not match") {
		t.Fatalf("drifted point: HTTP %d (%s), want 409/does not match", code, body)
	}
}

// TestCheckpointResume crashes the coordinator (with a torn tail, as
// a real crash would leave) and resumes: accepted work survives, the
// sweep completes, and the output is still byte-identical.
func TestCheckpointResume(t *testing.T) {
	const spec, seed = "smoke", uint64(1)
	points, lines := sweepLines(t, spec, seed)
	ckpt := filepath.Join(t.TempDir(), "coord.jsonl")

	srv, err := New(Config{Spec: spec, Seed: seed, Chunks: 4, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	l := requestLease(t, h, "w")
	if code, _, _ := postLines(t, h, "w", l.Lease.ID, lines[l.Lease.Lo:l.Lease.Hi]); code != http.StatusOK {
		t.Fatal("submit failed")
	}
	accepted := l.Lease.Len()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash tearing a final line.
	f, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(`{"point":{"id":`)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, err := New(Config{Spec: spec, Seed: seed, Chunks: 4, CheckpointPath: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := srv2.Status(); st.Done != accepted {
		t.Fatalf("resumed Done = %d, want %d", st.Done, accepted)
	}
	h2 := srv2.Handler()
	for {
		lr := requestLease(t, h2, "w")
		if lr.Done {
			break
		}
		if lr.Lease == nil {
			t.Fatalf("stalled: %+v", srv2.Status())
		}
		if code, _, body := postLines(t, h2, "w", lr.Lease.ID, lines[lr.Lease.Lo:lr.Lease.Hi]); code != http.StatusOK {
			t.Fatalf("submit: HTTP %d (%s)", code, body)
		}
	}
	select {
	case <-srv2.Done():
	default:
		t.Fatal("Done channel not closed after completion")
	}
	var got bytes.Buffer
	if err := srv2.WriteFinal(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), referenceBytes(t, spec, seed)) {
		t.Fatal("resumed output differs from the fault-free run")
	}
	if st := srv2.Status(); st.Total != len(points) || !st.Complete {
		t.Fatalf("final status %+v", st)
	}

	// A third resume from the now-complete checkpoint is done on
	// arrival.
	srv3, err := New(Config{Spec: spec, Seed: seed, CheckpointPath: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv3.Done():
	default:
		t.Fatal("resume of a complete checkpoint did not close Done")
	}
	var lr LeaseResponse
	postJSON(t, srv3.Handler(), "/lease", LeaseRequest{Worker: "w"}, &lr)
	if !lr.Done {
		t.Fatalf("lease on a complete sweep: %+v", lr)
	}
}

// TestWriteFinalIncomplete checks the coordinator refuses to write a
// partial sweep as final output.
func TestWriteFinalIncomplete(t *testing.T) {
	srv, err := New(Config{Spec: "smoke", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := srv.WriteFinal(&buf); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("WriteFinal on empty sweep: %v", err)
	}
}

// TestStealDuplicatesStragglerTail checks work stealing: when all
// work is leased but one holder is slow, an idle worker is handed a
// duplicate of the unfinished tail rather than nothing.
func TestStealDuplicatesStragglerTail(t *testing.T) {
	const spec, seed = "smoke", uint64(1)
	points, lines := sweepLines(t, spec, seed)
	clock := newFakeClock()
	srv, err := New(Config{Spec: spec, Seed: seed, LeaseTimeout: 10 * time.Second, Chunks: 1, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// One lease covers the whole sweep.
	la := requestLease(t, h, "slow")
	if la.Lease == nil || la.Lease.Len() != len(points) {
		t.Fatalf("expected a whole-sweep lease, got %+v", la)
	}
	// Too young to rob yet.
	if lb := requestLease(t, h, "idle"); lb.Lease != nil {
		t.Fatalf("stole from a fresh lease: %+v", lb.Lease)
	}
	// The straggler heartbeats (stays live) but completes only the
	// first quarter. Past half the timeout its tail is stealable.
	quarter := len(points) / 4
	if code, _, _ := postLines(t, h, "slow", la.Lease.ID, lines[:quarter]); code != http.StatusOK {
		t.Fatal("straggler submit failed")
	}
	clock.Advance(6 * time.Second)
	var hb HeartbeatResponse
	postJSON(t, h, "/heartbeat", HeartbeatRequest{Worker: "slow", Lease: la.Lease.ID}, &hb)
	if !hb.Valid {
		t.Fatal("straggler heartbeat refused")
	}
	lb := requestLease(t, h, "idle")
	if lb.Lease == nil {
		t.Fatalf("no steal offered: %+v", srv.Status())
	}
	if lb.Lease.Lo <= quarter || lb.Lease.Hi != len(points) {
		t.Fatalf("stolen range [%d,%d), want the tail half of the %d missing", lb.Lease.Lo, lb.Lease.Hi, len(points)-quarter)
	}
	// Both finish; the overlap dedupes; the file is clean.
	if code, _, _ := postLines(t, h, "idle", lb.Lease.ID, lines[lb.Lease.Lo:lb.Lease.Hi]); code != http.StatusOK {
		t.Fatal("thief submit failed")
	}
	code, ack, _ := postLines(t, h, "slow", la.Lease.ID, lines[quarter:])
	if code != http.StatusOK || ack.Duplicates != lb.Lease.Len() {
		t.Fatalf("straggler finish: HTTP %d ack %+v, want %d duplicates", code, ack, lb.Lease.Len())
	}
	var got bytes.Buffer
	if err := srv.WriteFinal(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), referenceBytes(t, spec, seed)) {
		t.Fatal("output differs after steal + duplicate finish")
	}
}
