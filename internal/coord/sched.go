package coord

// Cost-weighted fair scheduling between tenant sweeps, in the deficit
// round-robin family. Each sweep carries a debt: how much EstCost of
// service it is owed relative to an equal share of everything granted
// while it was runnable. When a grant of cost C goes to one of n
// runnable sweeps, every runnable sweep earns C/n of fair share and
// the chosen one pays the full C, so
//
//	debt_i = fairShare_i - granted_i
//
// holds exactly and the debts of the runnable set always sum to zero.
// The scheduler serves the most-indebted sweep, which bounds how far
// any tenant can fall behind: a 10k-point sweep cannot starve a
// 100-point one, because every grant the big sweep takes raises the
// small sweep's debt until the small sweep is the argmax.
//
// Worker affinity is layered on top as a bounded distortion: a worker
// keeps draining the sweep whose expanded points and caches it already
// holds, unless some other sweep's debt exceeds the affine sweep's by
// more than a threshold — then fairness wins and the worker is
// rebalanced. The threshold is therefore also the fairness price of
// affinity: debts stay within the DRR bound plus the threshold.
//
// The functions here are pure (slices in, index out) so the debt-bound
// property test can hammer them without a server.

// pickFair returns the index of the runnable sweep to serve next: the
// highest-debt entry, ties broken by lowest index (registration
// order). affinity, when a valid index, is preferred as long as its
// debt is within threshold of the maximum — the caller passes the
// requesting worker's cached sweep so it keeps draining warm state.
// debts must be non-empty.
func pickFair(debts []float64, affinity int, threshold float64) int {
	best := 0
	for i, d := range debts {
		if d > debts[best] {
			best = i
		}
	}
	if affinity >= 0 && affinity < len(debts) && debts[best]-debts[affinity] <= threshold {
		return affinity
	}
	return best
}

// chargeGrant updates the runnable sweeps' debts for a grant of the
// given cost to debts[picked]: everyone earns an equal fair share of
// the grant, the picked sweep pays its full cost. The sum of debts is
// invariant (zero, if it started zero).
func chargeGrant(debts []float64, picked int, cost float64) {
	share := cost / float64(len(debts))
	for i := range debts {
		debts[i] += share
	}
	debts[picked] -= cost
}
