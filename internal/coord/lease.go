package coord

import (
	"sort"
	"time"
)

// span is a contiguous range of point IDs awaiting (re)assignment.
// issues counts how many times the range has been leased out before:
// each reissue halves the grant size, so a range that keeps landing
// on dead or straggling workers is progressively split across the
// fleet instead of bouncing whole between victims.
type span struct {
	lo, hi, issues int
}

// lease is the server-side state of one outstanding assignment.
type lease struct {
	id       int64
	lo, hi   int
	issues   int
	worker   string
	granted  time.Time
	deadline time.Time
	// stolen marks that the tail of this lease was already duplicated
	// to another worker; a victim is robbed at most once.
	stolen bool
}

// leaseTable owns work assignment: the pending spans nobody holds,
// the active leases with deadlines, and the grant/reclaim/steal
// logic. It is not self-locking — the Server serializes access under
// its own mutex. Point completion is read through has (the
// accumulator), so the table never double-tracks what is done.
type leaseTable struct {
	nextID  int64
	pending []span
	active  map[int64]*lease
	// chunkCost is the target EstCost of a fresh (issues == 0) lease.
	chunkCost float64
	timeout   time.Duration
	costs     []float64
	has       func(id int) bool
	// obs counts grants, reissues, steals and reclaims; the zero value
	// is inert.
	obs leaseObs
}

// newLeaseTable builds a table over the per-point costs with the
// given fresh-lease cost target and lease timeout.
func newLeaseTable(costs []float64, chunkCost float64, timeout time.Duration, has func(int) bool) *leaseTable {
	return &leaseTable{
		active:    make(map[int64]*lease),
		chunkCost: chunkCost,
		timeout:   timeout,
		costs:     costs,
		has:       has,
	}
}

// addPending queues a span for (re)assignment, keeping the pending
// list sorted by range start so grants walk the sweep in ID order.
func (t *leaseTable) addPending(s span) {
	if s.lo >= s.hi {
		return
	}
	t.pending = append(t.pending, s)
	sort.Slice(t.pending, func(i, j int) bool { return t.pending[i].lo < t.pending[j].lo })
}

// uncovered appends the sub-spans of [lo, hi) whose points lack an
// accepted result, tagged with the given reissue count.
func (t *leaseTable) uncovered(lo, hi, issues int) {
	start := -1
	for id := lo; id <= hi; id++ {
		missing := id < hi && !t.has(id)
		if missing && start < 0 {
			start = id
		}
		if !missing && start >= 0 {
			t.addPending(span{lo: start, hi: id, issues: issues})
			start = -1
		}
	}
}

// reclaim expires overdue leases, returning their uncovered ranges to
// the pending list with an incremented reissue count. It reports how
// many leases were reclaimed.
func (t *leaseTable) reclaim(now time.Time) int {
	n := 0
	for id, l := range t.active {
		if now.After(l.deadline) {
			delete(t.active, id)
			t.uncovered(l.lo, l.hi, l.issues+1)
			t.obs.reclaims.Inc()
			n++
		}
	}
	return n
}

// closeCovered retires active leases whose whole range has accepted
// results (their own worker's, or a thief's — either way the work is
// done).
func (t *leaseTable) closeCovered() {
	for id, l := range t.active {
		done := true
		for p := l.lo; p < l.hi; p++ {
			if !t.has(p) {
				done = false
				break
			}
		}
		if done {
			delete(t.active, id)
		}
	}
}

// heartbeat extends a live lease's deadline and reports whether the
// lease was still active.
func (t *leaseTable) heartbeat(id int64, now time.Time) bool {
	l, ok := t.active[id]
	if !ok {
		return false
	}
	l.deadline = now.Add(t.timeout)
	return true
}

// grant hands the worker its next lease: a cost-budgeted prefix of
// the first pending span (budget halved per reissue), or — when
// nothing is pending but leases are still out — a duplicate of the
// unfinished tail of the most loaded old-enough lease (work
// stealing; safe because duplicate results dedupe byte-identically).
// It returns nil when there is nothing to hand out right now.
func (t *leaseTable) grant(worker string, now time.Time) *lease {
	for len(t.pending) > 0 {
		s := t.pending[0]
		for s.lo < s.hi && t.has(s.lo) {
			s.lo++
		}
		if s.lo >= s.hi {
			t.pending = t.pending[1:]
			continue
		}
		budget := t.chunkCost / float64(uint(1)<<min(s.issues, 6))
		hi, cum := s.lo, 0.0
		for hi < s.hi && (hi == s.lo || cum+t.costs[hi] <= budget) {
			cum += t.costs[hi]
			hi++
		}
		if hi < s.hi {
			t.pending[0] = span{lo: hi, hi: s.hi, issues: s.issues}
		} else {
			t.pending = t.pending[1:]
		}
		return t.issue(worker, s.lo, hi, s.issues, now)
	}
	return t.steal(worker, now)
}

// findVictim picks the steal target: an active lease older than half
// its timeout, not already robbed, with at least two points missing —
// the one with the most unfinished cost. Nil when no lease qualifies.
func (t *leaseTable) findVictim(now time.Time) *lease {
	var victim *lease
	victimCost := 0.0
	for _, l := range t.active {
		if l.stolen || now.Sub(l.granted) < t.timeout/2 {
			continue
		}
		missing, cost := 0, 0.0
		for p := l.lo; p < l.hi; p++ {
			if !t.has(p) {
				missing++
				cost += t.costs[p]
			}
		}
		if missing < 2 {
			continue
		}
		if victim == nil || cost > victimCost {
			victim, victimCost = l, cost
		}
	}
	return victim
}

// steal duplicates the tail half of the unfinished points of the
// best victim (see findVictim). The victim keeps its lease — whoever
// finishes first wins, the loser's lines land as duplicates.
func (t *leaseTable) steal(worker string, now time.Time) *lease {
	victim := t.findVictim(now)
	if victim == nil {
		return nil
	}
	var missing []int
	for p := victim.lo; p < victim.hi; p++ {
		if !t.has(p) {
			missing = append(missing, p)
		}
	}
	victim.stolen = true
	t.obs.steals.Inc()
	start := missing[len(missing)/2]
	return t.issue(worker, start, victim.hi, victim.issues+1, now)
}

// issue registers and returns a new active lease over [lo, hi).
func (t *leaseTable) issue(worker string, lo, hi, issues int, now time.Time) *lease {
	t.obs.grants.Inc()
	if issues > 0 {
		t.obs.reissues.Inc()
	}
	t.nextID++
	l := &lease{
		id:       t.nextID,
		lo:       lo,
		hi:       hi,
		issues:   issues,
		worker:   worker,
		granted:  now,
		deadline: now.Add(t.timeout),
	}
	t.active[l.id] = l
	return l
}

// hasWork reports whether grant would hand out a lease right now:
// an uncovered pending point exists, or a straggler is eligible for
// stealing. The fair scheduler uses it to decide which sweeps are
// runnable before charging anyone's debt.
func (t *leaseTable) hasWork(now time.Time) bool {
	if t.pendingPoints() > 0 {
		return true
	}
	return t.findVictim(now) != nil
}

// clear drops every pending span and active lease — the sweep was
// cancelled, so nothing will be granted or accepted again. It reports
// how many active leases were reclaimed; their workers learn via a
// Cancelled heartbeat or result ack.
func (t *leaseTable) clear() int {
	n := len(t.active)
	t.pending = nil
	t.active = make(map[int64]*lease)
	for i := 0; i < n; i++ {
		t.obs.reclaims.Inc()
	}
	return n
}

// pendingPoints counts points queued for assignment (not done, not
// actively leased).
func (t *leaseTable) pendingPoints() int {
	n := 0
	for _, s := range t.pending {
		for p := s.lo; p < s.hi; p++ {
			if !t.has(p) {
				n++
			}
		}
	}
	return n
}
