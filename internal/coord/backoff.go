package coord

import (
	"time"

	"mpsockit/internal/xrand"
)

// Backoff yields capped exponential retry delays with deterministic
// jitter: attempt k waits between half and all of min(Base·2ᵏ, Max).
// Jitter desynchronizes a fleet of workers hammering a coordinator
// that just came back (the thundering-herd problem), and drawing it
// from a seeded xrand stream instead of the global clock keeps every
// worker's delay sequence replayable — the retry schedule a chaos test
// observed is the schedule any rerun observes.
type Backoff struct {
	// Base is the nominal first delay.
	Base time.Duration
	// Max caps the un-jittered delay growth.
	Max time.Duration
	rng *xrand.Rand
	// attempt counts Next calls since the last Reset.
	attempt int
}

// NewBackoff builds a backoff with the given bounds and jitter seed.
// Workers derive the seed from their identity, so two workers never
// share a delay sequence but each worker's own sequence replays.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, rng: xrand.New(seed)}
}

// Next returns the delay before the next retry and advances the
// attempt counter.
func (b *Backoff) Next() time.Duration {
	d := b.Base
	for i := 0; i < b.attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	b.attempt++
	half := float64(d) / 2
	return time.Duration(half + b.rng.Float64()*half)
}

// Reset rewinds the exponential growth to the first attempt. The
// jitter stream is not rewound: delays stay decorrelated across retry
// bursts while the sequence as a whole remains a pure function of the
// seed and the call pattern.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
