// Package chaos injects deterministic faults into the coordinator
// worker protocol for testing. A Transport wraps an http.RoundTripper
// and, driven by a seeded RNG, drops responses after the server has
// processed the request (the nastiest failure — the work happened but
// the client believes it did not, so it retries and the server must
// absorb the duplicate), duplicates requests, delays them, and stalls
// heartbeats; KillSwitch kills a worker mid-lease after a point quota.
// Every fault decision comes from the policy seed, never the clock, so
// a failing chaos run replays exactly under the same seeds — and the
// coordinator's byte-identity guarantee means none of it may change a
// single output byte.
package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mpsockit/internal/dse"
	"mpsockit/internal/xrand"
)

// ErrInjected marks a transport failure manufactured by the policy
// (as opposed to a real network error).
var ErrInjected = errors.New("chaos: injected fault")

// Policy sets the fault mix. Probabilities are per request in [0, 1];
// zero values inject nothing.
type Policy struct {
	// Seed drives every fault decision; same seed, same fault
	// sequence for the same request sequence.
	Seed uint64
	// Drop is the probability the response is thrown away AFTER the
	// server processed the request: the client sees a transport error
	// and retries work the coordinator already accepted. This is the
	// fault that proves acceptance is idempotent.
	Drop float64
	// Dup is the probability the request is sent twice back-to-back
	// (a replay); the first response is discarded.
	Dup float64
	// Delay is the probability a request is held up to MaxDelay
	// before sending.
	Delay float64
	// MaxDelay bounds injected latency; zero disables delays.
	MaxDelay time.Duration
	// StallHeartbeats silently swallows every /heartbeat request, so
	// leases expire under workers that are alive and working —
	// forcing reclaim/reissue races while the original worker still
	// finishes and acks late.
	StallHeartbeats bool
}

// Transport is a fault-injecting http.RoundTripper. Safe for
// concurrent use; fault decisions are serialized over one RNG stream.
type Transport struct {
	base   http.RoundTripper
	policy Policy

	mu  sync.Mutex
	rng *xrand.Rand
	// Drops, Dups, Delays and Stalls count injected faults, so tests
	// can assert the chaos actually fired.
	Drops, Dups, Delays, Stalls int
}

// NewTransport wraps base (nil means http.DefaultTransport) with the
// policy.
func NewTransport(p Policy, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, policy: p, rng: xrand.New(p.Seed)}
}

// Faults returns the total number of faults injected so far.
func (t *Transport) Faults() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Drops + t.Dups + t.Delays + t.Stalls
}

// roll draws the fault decisions for one request under the lock, so
// concurrent requests consume the RNG stream in a serialized (if
// schedule-dependent) order.
func (t *Transport) roll(path string) (stall, dup, drop bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.policy.StallHeartbeats && strings.HasSuffix(path, "/heartbeat") {
		t.Stalls++
		return true, false, false, 0
	}
	if t.policy.Delay > 0 && t.policy.MaxDelay > 0 && t.rng.Bool(t.policy.Delay) {
		delay = time.Duration(t.rng.Float64() * float64(t.policy.MaxDelay))
		t.Delays++
	}
	if t.policy.Dup > 0 && t.rng.Bool(t.policy.Dup) {
		dup = true
		t.Dups++
	}
	if t.policy.Drop > 0 && t.rng.Bool(t.policy.Drop) {
		drop = true
		t.Drops++
	}
	return false, dup, drop, delay
}

// RoundTrip applies the policy to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	stall, dup, drop, delay := t.roll(req.URL.Path)
	if stall {
		return nil, ErrInjected
	}
	// Buffer the body so the request can be replayed for Dup (and so
	// a dropped request was still fully sent first).
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return t.base.RoundTrip(r)
	}
	if dup {
		if resp, err := send(); err == nil {
			// Discard the first response; the replay's answer is the
			// one the client sees.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := send()
	if err != nil {
		return nil, err
	}
	if drop {
		// The server processed the request; the client never learns.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, ErrInjected
	}
	return resp, nil
}

// KillSwitch returns an OnResult hook that calls kill (typically a
// context cancel) once n results have been evaluated — a deterministic
// stand-in for a worker process dying mid-lease with results
// unsubmitted.
func KillSwitch(n int, kill func()) func(dse.Result) {
	var mu sync.Mutex
	seen := 0
	return func(dse.Result) {
		mu.Lock()
		defer mu.Unlock()
		seen++
		if seen == n {
			kill()
		}
	}
}
