package coord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"mpsockit/internal/dse"
	"mpsockit/internal/obs"
)

// Config parameterizes a coordinator.
type Config struct {
	// Spec is the sweep specification (preset or dimension list).
	Spec string
	// Seed is the sweep seed; the whole determinism contract hangs
	// off it.
	Seed uint64
	// LeaseTimeout bounds how long a lease can go without results or
	// a heartbeat before its range is reclaimed. Default 30s.
	LeaseTimeout time.Duration
	// Chunks is the target number of fresh leases the sweep is cut
	// into (grant size = total estimated cost / Chunks; reissues
	// shrink from there). Default 32.
	Chunks int
	// CheckpointPath, when non-empty, is the append-only JSONL log of
	// accepted result lines: header first, then lines in acceptance
	// order. A coordinator restarted with Resume re-accepts it and
	// continues; only unacked work is lost to a coordinator crash.
	CheckpointPath string
	// Resume loads CheckpointPath instead of truncating it.
	Resume bool
	// Now supplies the clock; nil means time.Now. Tests inject a fake
	// clock to drive lease expiry deterministically.
	Now func() time.Time
	// Log receives progress lines; nil discards them.
	Log *log.Logger
	// ProgressEvery, when > 0, logs a live per-workload Pareto-front
	// and hypervolume snapshot each time that many further points
	// complete.
	ProgressEvery int
}

// Server coordinates one sweep: it owns the expanded point list, the
// lease table and the result accumulator, and serves the worker
// protocol over HTTP. All state shares one mutex — the work units are
// whole simulation runs on the workers, so coordination is never the
// bottleneck.
type Server struct {
	cfg    Config
	points []dse.Point
	header dse.Header
	costs  []float64

	mu        sync.Mutex
	acc       *dse.Accumulator
	table     *leaseTable
	workers   map[string]*workerState
	ckptFile  *os.File
	ckpt      *bufio.Writer
	done      chan struct{}
	closeOnce sync.Once
	frontAt   int

	// reg and obs are the coordinator's telemetry. started/baseCost
	// anchor throughput and ETA: rates count only work accepted since
	// this process started, so a resumed sweep does not claim its
	// checkpointed points as instantaneous progress.
	reg      *obs.Registry
	obs      coordObs
	started  time.Time
	baseDone int
	baseCost float64
}

// New expands the sweep, optionally re-accepts an existing
// checkpoint, and returns a coordinator ready to serve.
func New(cfg Config) (*Server, error) {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 30 * time.Second
	}
	if cfg.Chunks <= 0 {
		cfg.Chunks = 32
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Log == nil {
		cfg.Log = log.New(io.Discard, "", 0)
	}
	sw, err := dse.ParseSweep(cfg.Spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	points, err := sw.Points()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		points:  points,
		header:  dse.NewHeader(cfg.Spec, cfg.Seed, points, nil),
		costs:   make([]float64, len(points)),
		acc:     dse.NewAccumulator(points),
		workers: make(map[string]*workerState),
		done:    make(chan struct{}),
		reg:     obs.NewRegistry(),
		started: cfg.Now(),
	}
	total := 0.0
	for i, p := range points {
		s.costs[i] = dse.EstCost(p)
		total += s.costs[i]
	}
	s.table = newLeaseTable(s.costs, total/float64(cfg.Chunks), cfg.LeaseTimeout, s.acc.Has)
	if cfg.CheckpointPath != "" && cfg.Resume {
		results, raw, err := dse.ReadResultLog(cfg.CheckpointPath, s.header)
		if err != nil {
			return nil, fmt.Errorf("coord: resume: %w", err)
		}
		for i := range results {
			if _, err := s.acc.AddResult(results[i], raw[i]); err != nil {
				return nil, fmt.Errorf("coord: resume %s: %w", cfg.CheckpointPath, err)
			}
		}
		if len(results) > 0 {
			cfg.Log.Printf("resumed %d/%d points from %s", s.acc.Done(), len(points), cfg.CheckpointPath)
		}
	}
	s.table.uncovered(0, len(points), 0)
	s.initObs()
	s.baseDone = s.acc.Done()
	for i := range points {
		if s.acc.Has(i) {
			s.baseCost += s.costs[i]
		}
	}
	if cfg.CheckpointPath != "" {
		// (Re)write the log cleanly: a salvaged torn tail must not
		// remain in a file we are about to append to.
		f, err := os.Create(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		s.ckptFile = f
		s.ckpt = bufio.NewWriter(f)
		if err := dse.WriteHeader(s.ckpt, s.header); err != nil {
			return nil, err
		}
		for _, r := range s.acc.Completed() {
			if err := s.appendCheckpointLocked(r.Point.ID); err != nil {
				return nil, err
			}
		}
		if err := s.ckpt.Flush(); err != nil {
			return nil, err
		}
	}
	if s.acc.Complete() {
		s.finishLocked()
	}
	return s, nil
}

// appendCheckpointLocked writes the accepted line for point id to the
// checkpoint log.
func (s *Server) appendCheckpointLocked(id int) error {
	if s.ckpt == nil {
		return nil
	}
	line := s.acc.Raw(id)
	if line == nil {
		return fmt.Errorf("coord: no accepted line for point %d", id)
	}
	if _, err := s.ckpt.Write(line); err != nil {
		return err
	}
	_, err := s.ckpt.Write([]byte{'\n'})
	return err
}

// finishLocked flushes the checkpoint and signals completion once.
func (s *Server) finishLocked() {
	s.closeOnce.Do(func() {
		if s.ckpt != nil {
			s.ckpt.Flush()
		}
		close(s.done)
	})
}

// Done is closed when every point has an accepted result.
func (s *Server) Done() <-chan struct{} { return s.done }

// Header returns the sweep's provenance header (the merged file's
// first line).
func (s *Server) Header() dse.Header { return s.header }

// Points returns the expanded point list the coordinator validates
// results against.
func (s *Server) Points() []dse.Point { return s.points }

// Results returns the accepted results in point-ID order (all of
// them once Done is closed) — the input for front and hypervolume
// reports.
func (s *Server) Results() []dse.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acc.Completed()
}

// Close flushes and closes the checkpoint log.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ckpt == nil {
		return nil
	}
	if err := s.ckpt.Flush(); err != nil {
		return err
	}
	return s.ckptFile.Close()
}

// WriteFinal streams the completed sweep — byte-identical to a
// fault-free single-worker run — to w. It fails if points are still
// missing.
func (s *Server) WriteFinal(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.acc.Complete() {
		missing, first := s.acc.Missing()
		return fmt.Errorf("coord: sweep incomplete: %d of %d points missing (first ID %d)", missing, len(s.points), first)
	}
	_, err := s.acc.WriteTo(w, s.header)
	return err
}

// Status returns a progress snapshot, including the per-worker table
// and the cost-weighted throughput/ETA estimate (rates count only
// work accepted since this process started, so a resumed coordinator
// does not credit its checkpoint as instantaneous progress).
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	s.table.reclaim(now)
	st := Status{
		Spec:          s.header.Spec,
		Seed:          s.header.Seed,
		Done:          s.acc.Done(),
		Total:         s.acc.Total(),
		Duplicates:    s.acc.Duplicates(),
		ActiveLeases:  len(s.table.active),
		PendingPoints: s.table.pendingPoints(),
		Workers:       len(s.workers),
		Complete:      s.acc.Complete(),
	}
	var doneCost, remCost float64
	for i := range s.points {
		if s.acc.Has(i) {
			doneCost += s.costs[i]
		} else {
			remCost += s.costs[i]
		}
	}
	if elapsed := now.Sub(s.started).Seconds(); elapsed > 0 {
		st.PointsPerSec = float64(st.Done-s.baseDone) / elapsed
		if costRate := (doneCost - s.baseCost) / elapsed; costRate > 0 {
			st.ETASeconds = remCost / costRate
		}
	}
	for name, ws := range s.workers {
		st.WorkerInfo = append(st.WorkerInfo, WorkerStatus{
			Name:        name,
			Accepted:    ws.accepted,
			LastSeenAgo: now.Sub(ws.lastSeen).Seconds(),
		})
	}
	sort.Slice(st.WorkerInfo, func(i, j int) bool { return st.WorkerInfo[i].Name < st.WorkerInfo[j].Name })
	return st
}

// Registry exposes the coordinator's metric registry; cmd/dsed mounts
// its Prometheus handler and callers may add their own series.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the coordinator's HTTP handler (the worker
// protocol plus /status).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /hello", s.handleHello)
	mux.HandleFunc("POST /lease", s.handleLease)
	mux.HandleFunc("POST /results", s.handleResults)
	mux.HandleFunc("POST /heartbeat", s.handleHeartbeat)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.Handle("GET /metrics", s.reg.Handler())
	return mux
}

// writeJSON responds with one JSON document.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// readJSON decodes the request body into v.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(v); err != nil {
		http.Error(w, "coord: bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleHello(w http.ResponseWriter, r *http.Request) {
	var req HelloRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	s.touchWorkerLocked(req.Worker, s.cfg.Now())
	s.mu.Unlock()
	s.cfg.Log.Printf("hello from %s", req.Worker)
	writeJSON(w, HelloResponse{
		Header:      s.header,
		HeartbeatMS: (s.cfg.LeaseTimeout / 4).Milliseconds(),
	})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchWorkerLocked(req.Worker, now)
	if n := s.table.reclaim(now); n > 0 {
		s.cfg.Log.Printf("reclaimed %d expired lease(s)", n)
	}
	s.table.closeCovered()
	if s.acc.Complete() {
		writeJSON(w, LeaseResponse{Done: true})
		return
	}
	l := s.table.grant(req.Worker, now)
	if l == nil {
		retry := s.cfg.LeaseTimeout / 8
		if retry < 50*time.Millisecond {
			retry = 50 * time.Millisecond
		}
		writeJSON(w, LeaseResponse{RetryMS: retry.Milliseconds()})
		return
	}
	s.cfg.Log.Printf("lease %d [%d,%d) -> %s (reissue %d)", l.id, l.lo, l.hi, req.Worker, l.issues)
	writeJSON(w, LeaseResponse{Lease: &Lease{
		ID:         l.id,
		Lo:         l.lo,
		Hi:         l.hi,
		DeadlineMS: s.cfg.LeaseTimeout.Milliseconds(),
	}})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := s.cfg.Now()
	s.mu.Lock()
	s.touchWorkerLocked(req.Worker, now)
	valid := s.table.heartbeat(req.Lease, now)
	s.mu.Unlock()
	writeJSON(w, HeartbeatResponse{Valid: valid})
}

// handleResults accepts a JSONL batch of result lines. Acceptance is
// idempotent line-by-line; a conflicting line (bytes disagreeing with
// an accepted result for the same point) rejects the whole request
// with 409 — that is never a retry artifact, it means an engine
// drifted.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, "coord: reading results: "+err.Error(), http.StatusBadRequest)
		return
	}
	worker := r.URL.Query().Get("worker")
	leaseID, _ := strconv.ParseInt(r.URL.Query().Get("lease"), 10, 64)
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.touchWorkerLocked(worker, s.cfg.Now())
	ack := ResultAck{}
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		added, err := s.acc.Add(line)
		if err != nil {
			s.obs.conflicts.Inc()
			s.cfg.Log.Printf("conflict from %s (lease %d): %v", worker, leaseID, err)
			http.Error(w, "coord: "+err.Error(), http.StatusConflict)
			return
		}
		if !added {
			ack.Duplicates++
			continue
		}
		ack.Accepted++
		if err := s.appendCheckpointLocked(lastPointID(line)); err != nil {
			http.Error(w, "coord: checkpoint: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if s.ckpt != nil {
		if err := s.ckpt.Flush(); err != nil {
			http.Error(w, "coord: checkpoint: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	ws.accepted += int64(ack.Accepted)
	s.obs.accepted.Add(int64(ack.Accepted))
	s.obs.duplicates.Add(int64(ack.Duplicates))
	s.table.closeCovered()
	s.logProgressLocked()
	if s.acc.Complete() {
		ack.Done = true
		s.cfg.Log.Printf("sweep complete: %d points (%d duplicate lines absorbed)", s.acc.Total(), s.acc.Duplicates())
		s.finishLocked()
	}
	writeJSON(w, ack)
}

// lastPointID extracts the point ID from an accepted line. The line
// already passed Accumulator validation, so decoding cannot fail.
func lastPointID(line []byte) int {
	var r dse.Result
	_ = json.Unmarshal(line, &r)
	return r.Point.ID
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Status())
}

// logProgressLocked emits the live per-workload front snapshot every
// ProgressEvery accepted points: merge is incremental, so the Pareto
// fronts and hypervolumes of the completed subset are available the
// whole time the sweep runs.
func (s *Server) logProgressLocked() {
	if s.cfg.ProgressEvery <= 0 || s.acc.Done() < s.frontAt+s.cfg.ProgressEvery {
		return
	}
	s.frontAt = s.acc.Done()
	completed := s.acc.Completed()
	front := dse.GroupedFront(completed)
	var hv bytes.Buffer
	for i, f := range dse.Hypervolumes(completed) {
		if i > 0 {
			hv.WriteString(" ")
		}
		fmt.Fprintf(&hv, "%s=%.3f", f.Workload, f.Norm)
	}
	s.cfg.Log.Printf("live %d/%d points, front %d, hv-norm %s",
		s.acc.Done(), s.acc.Total(), len(front), hv.String())
}
