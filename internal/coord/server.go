package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"mpsockit/internal/dse"
	"mpsockit/internal/obs"
)

// Config parameterizes a coordinator.
type Config struct {
	// Spec, when non-empty, boots the coordinator with one sweep
	// already registered and puts it in single-shot mode: Done() closes
	// (and workers are told to exit) once every registered sweep is
	// terminal. Empty Spec is the multi-tenant service mode — sweeps
	// arrive via POST /sweeps and the coordinator serves until stopped.
	Spec string
	// Seed is the boot sweep's seed; the whole determinism contract
	// hangs off it.
	Seed uint64
	// LeaseTimeout bounds how long a lease can go without results or
	// a heartbeat before its range is reclaimed. Default 30s.
	LeaseTimeout time.Duration
	// Chunks is the target number of fresh leases each sweep is cut
	// into (grant size = sweep estimated cost / Chunks; reissues
	// shrink from there). Default 32.
	Chunks int
	// CheckpointPath, when non-empty, is the boot sweep's append-only
	// JSONL log of accepted result lines: header first, then lines in
	// acceptance order. A coordinator restarted with Resume re-accepts
	// it and continues; only unacked work is lost to a crash.
	CheckpointPath string
	// Resume loads CheckpointPath instead of starting fresh.
	Resume bool
	// CheckpointDir, when non-empty, is the service's storage root:
	// every registry sweep keeps its crash-resumable log there as
	// <sweep-id>.jsonl (rewritten atomically into the canonical final
	// bytes on completion), and a restarted coordinator rescans the
	// directory and resumes every sweep it finds.
	CheckpointDir string
	// MaxSweeps bounds concurrently active sweeps; registration beyond
	// it is refused with 429 + Retry-After. Default 16.
	MaxSweeps int
	// DiskBudgetBytes bounds the total size of checkpoint logs under
	// CheckpointDir; registration past the budget is refused with 507 +
	// Retry-After. 0 means unlimited.
	DiskBudgetBytes int64
	// AffinityDebt is the fairness price of worker affinity: a worker
	// keeps draining its cached sweep as long as no other sweep's
	// scheduling debt exceeds that sweep's by more than this many
	// EstCost units. <= 0 means auto (twice the largest fresh-lease
	// cost among runnable sweeps).
	AffinityDebt float64
	// WorkerExpiry is how long a silent worker stays in the /status
	// table and metric label set before being garbage-collected, and
	// how long a cancelled sweep's tombstone absorbs late submissions.
	// Default 4 x LeaseTimeout.
	WorkerExpiry time.Duration
	// Now supplies the clock; nil means time.Now. Tests inject a fake
	// clock to drive lease expiry deterministically.
	Now func() time.Time
	// Log receives progress lines; nil discards them.
	Log *log.Logger
	// ProgressEvery, when > 0, logs a live per-workload Pareto-front
	// and hypervolume snapshot each time that many further points of a
	// sweep complete.
	ProgressEvery int
}

// Server is the multi-tenant sweep coordinator: it owns the sweep
// registry, schedules lease grants fairly across tenants, and serves
// the worker protocol plus the registry API over HTTP. All state
// shares one mutex — the work units are whole simulation runs on the
// workers, so coordination is never the bottleneck.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sweeps   map[string]*sweep
	order    []string // registration order; scheduling tie-break
	workers  map[string]*workerState
	draining bool
	// bootID is the Config.Spec sweep's registry ID ("" in service
	// mode); it selects single-shot semantics and resolves legacy
	// requests that do not name a sweep.
	bootID    string
	done      chan struct{}
	closeOnce sync.Once

	// reg and obs are the coordinator's telemetry; leaseObs is shared
	// by every sweep's table so the lease counters stay farm-global.
	reg      *obs.Registry
	obs      coordObs
	leaseObs leaseObs
	started  time.Time
}

// New builds a coordinator: it rescans CheckpointDir and resumes every
// sweep log found there, then registers the boot sweep (if any),
// optionally resuming its checkpoint.
func New(cfg Config) (*Server, error) {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 30 * time.Second
	}
	if cfg.Chunks <= 0 {
		cfg.Chunks = 32
	}
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = 16
	}
	if cfg.WorkerExpiry <= 0 {
		cfg.WorkerExpiry = 4 * cfg.LeaseTimeout
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Log == nil {
		cfg.Log = log.New(io.Discard, "", 0)
	}
	s := &Server{
		cfg:     cfg,
		sweeps:  make(map[string]*sweep),
		workers: make(map[string]*workerState),
		done:    make(chan struct{}),
		reg:     obs.NewRegistry(),
	}
	s.started = cfg.Now()
	s.initObs()
	if cfg.CheckpointDir != "" {
		if err := s.rescanDir(); err != nil {
			return nil, err
		}
	}
	if cfg.Spec != "" {
		points, header, err := expandSpec(cfg.Spec, cfg.Seed)
		if err != nil {
			return nil, err
		}
		id := SweepID(header)
		s.bootID = id
		if _, ok := s.sweeps[id]; !ok {
			ckptPath := cfg.CheckpointPath
			managed := false
			if ckptPath == "" && cfg.CheckpointDir != "" {
				ckptPath = filepath.Join(cfg.CheckpointDir, id+".jsonl")
				managed = true
			}
			if _, err := s.adoptSweepLocked(header, points, ckptPath, managed, cfg.Resume); err != nil {
				return nil, err
			}
		}
	}
	s.maybeFinishLocked()
	return s, nil
}

// expandSpec parses and expands a sweep spec into its point list and
// provenance header.
func expandSpec(spec string, seed uint64) ([]dse.Point, dse.Header, error) {
	sw, err := dse.ParseSweep(spec, seed)
	if err != nil {
		return nil, dse.Header{}, err
	}
	points, err := sw.Points()
	if err != nil {
		return nil, dse.Header{}, err
	}
	return points, dse.NewHeader(spec, seed, points, nil), nil
}

// rescanDir adopts every sweep log found in the checkpoint directory —
// the whole-farm crash recovery path: a coordinator killed with N
// sweeps active restarts, finds N logs, and resumes each one exactly
// where its accepted lines end. Stale atomic-write temp files are
// swept out first; files whose header does not reproduce its own spec
// hash locally are skipped (foreign engine), never adopted.
func (s *Server) rescanDir() error {
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return err
	}
	if stale, _ := filepath.Glob(filepath.Join(s.cfg.CheckpointDir, "sw-*.jsonl.tmp-*")); len(stale) > 0 {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	paths, err := filepath.Glob(filepath.Join(s.cfg.CheckpointDir, "sw-*.jsonl"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		h, err := dse.PeekHeader(path)
		if err != nil {
			s.cfg.Log.Printf("skipping unreadable checkpoint %s: %v", path, err)
			continue
		}
		points, header, err := expandSpec(h.Spec, h.Seed)
		if err != nil || header.SpecHash != h.SpecHash {
			s.cfg.Log.Printf("skipping checkpoint %s: spec does not reproduce hash %s locally", path, h.SpecHash)
			continue
		}
		if _, ok := s.sweeps[SweepID(header)]; ok {
			continue
		}
		sw, err := s.adoptSweepLocked(header, points, path, true, true)
		if err != nil {
			return err
		}
		s.cfg.Log.Printf("recovered sweep %s from %s: %d/%d points", sw.id, path, sw.acc.Done(), sw.acc.Total())
	}
	return nil
}

// adoptSweepLocked builds, resumes and registers a sweep record. The
// caller holds s.mu (or is the single-threaded constructor) and has
// already checked admission and that the ID is free.
func (s *Server) adoptSweepLocked(header dse.Header, points []dse.Point, ckptPath string, managed, resume bool) (*sweep, error) {
	sw := newSweep(header, points, s.cfg.Now())
	sw.ckptPath = ckptPath
	sw.managed = managed
	sw.table = newLeaseTable(sw.costs, sw.totalCost/float64(s.cfg.Chunks), s.cfg.LeaseTimeout, sw.acc.Has)
	sw.table.obs = s.leaseObs
	if resume && ckptPath != "" {
		if err := sw.resumeLog(); err != nil {
			return nil, err
		}
		if sw.acc.Done() > 0 {
			s.cfg.Log.Printf("resumed %d/%d points of sweep %s from %s", sw.acc.Done(), len(points), sw.id, ckptPath)
		}
	}
	sw.baseDone = sw.acc.Done()
	for i := range points {
		if sw.acc.Has(i) {
			sw.baseCost += sw.costs[i]
		}
	}
	sw.table.uncovered(0, len(points), 0)
	if err := sw.openCheckpoint(); err != nil {
		return nil, err
	}
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	s.registerSweepObsLocked(sw)
	if sw.acc.Complete() {
		s.completeSweepLocked(sw)
	}
	return sw, nil
}

// completeSweepLocked retires a sweep whose every point has an
// accepted result: the append log is atomically replaced with the
// canonical point-ordered final bytes (for managed sweeps) and the
// sweep's Done channel closes.
func (s *Server) completeSweepLocked(sw *sweep) {
	if sw.state != SweepActive {
		return
	}
	sw.state = SweepDone
	sw.finished = s.cfg.Now()
	sw.debt = 0
	if err := sw.closeCheckpoint(); err != nil {
		s.cfg.Log.Printf("sweep %s: closing checkpoint: %v", sw.id, err)
	}
	if err := sw.finalizeFile(); err != nil {
		s.cfg.Log.Printf("sweep %s: finalizing %s: %v", sw.id, sw.ckptPath, err)
	}
	close(sw.done)
	s.cfg.Log.Printf("sweep %s complete: %d points (%d duplicate lines absorbed)",
		sw.id, sw.acc.Total(), sw.acc.Duplicates())
	s.maybeFinishLocked()
}

// cancelSweepLocked is the tenant-isolation teardown: reclaim every
// lease, remove the sweep's storage, and leave a tombstone so late
// submissions and heartbeats from its workers are answered with
// Cancelled (not errors) until the tombstone ages out. Other sweeps
// never notice.
func (s *Server) cancelSweepLocked(sw *sweep) {
	if sw.state == SweepCancelled {
		return
	}
	wasActive := sw.state == SweepActive
	n := sw.table.clear()
	sw.state = SweepCancelled
	sw.finished = s.cfg.Now()
	sw.debt = 0
	if err := sw.closeCheckpoint(); err != nil {
		s.cfg.Log.Printf("sweep %s: closing checkpoint: %v", sw.id, err)
	}
	if sw.managed {
		sw.removeFile()
	} else {
		sw.ckptBytes = 0
	}
	if wasActive {
		close(sw.done)
	}
	s.cfg.Log.Printf("sweep %s cancelled: reclaimed %d lease(s)", sw.id, n)
	s.maybeFinishLocked()
}

// removeSweepLocked drops a sweep record and its metric series
// entirely — tombstone expiry or re-registration after cancel.
func (s *Server) removeSweepLocked(sw *sweep) {
	delete(s.sweeps, sw.id)
	for i, id := range s.order {
		if id == sw.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.unregisterSweepObsLocked(sw.id)
}

// maybeFinishLocked closes the coordinator's Done channel when a
// single-shot (boot-sweep) run has no active sweeps left. A
// multi-tenant service never finishes — it serves until stopped.
func (s *Server) maybeFinishLocked() {
	if s.bootID == "" || !s.allTerminalLocked() {
		return
	}
	s.closeOnce.Do(func() { close(s.done) })
}

// allTerminalLocked reports whether at least one sweep is registered
// and none is still active.
func (s *Server) allTerminalLocked() bool {
	if len(s.order) == 0 {
		return false
	}
	for _, id := range s.order {
		if s.sweeps[id].state == SweepActive {
			return false
		}
	}
	return true
}

// reclaimAndGCLocked expires overdue leases on every active sweep,
// retires leases whose ranges completed, garbage-collects workers not
// heard from within WorkerExpiry (dropping their metric series so a
// long-lived daemon's label set stays bounded), and expires cancelled
// sweeps' tombstones.
func (s *Server) reclaimAndGCLocked(now time.Time) {
	for _, id := range s.order {
		sw := s.sweeps[id]
		if sw.state != SweepActive {
			continue
		}
		if n := sw.table.reclaim(now); n > 0 {
			s.cfg.Log.Printf("sweep %s: reclaimed %d expired lease(s)", sw.id, n)
		}
		sw.table.closeCovered()
	}
	for name, ws := range s.workers {
		if now.Sub(ws.lastSeen) >= s.cfg.WorkerExpiry {
			delete(s.workers, name)
			s.unregisterWorkerObsLocked(name)
			s.cfg.Log.Printf("worker %s departed (silent %s), dropped from tables", name, now.Sub(ws.lastSeen))
		}
	}
	for i := 0; i < len(s.order); {
		sw := s.sweeps[s.order[i]]
		if sw.state == SweepCancelled && now.Sub(sw.finished) >= s.cfg.WorkerExpiry {
			s.removeSweepLocked(sw)
			continue
		}
		i++
	}
}

// Done is closed when a single-shot coordinator's sweeps are all
// terminal; a multi-tenant service leaves it open forever.
func (s *Server) Done() <-chan struct{} { return s.done }

// bootLocked returns the boot sweep record, nil in service mode.
func (s *Server) bootLocked() *sweep {
	if s.bootID == "" {
		return nil
	}
	return s.sweeps[s.bootID]
}

// Header returns the boot sweep's provenance header (zero in service
// mode).
func (s *Server) Header() dse.Header {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sw := s.bootLocked(); sw != nil {
		return sw.header
	}
	return dse.Header{}
}

// Points returns the boot sweep's expanded point list.
func (s *Server) Points() []dse.Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sw := s.bootLocked(); sw != nil {
		return sw.points
	}
	return nil
}

// Results returns the boot sweep's accepted results in point-ID order
// (all of them once Done is closed) — the input for front and
// hypervolume reports.
func (s *Server) Results() []dse.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sw := s.bootLocked(); sw != nil {
		return sw.acc.Completed()
	}
	return nil
}

// Close flushes and closes every sweep's checkpoint log.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, id := range s.order {
		if err := s.sweeps[id].closeCheckpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Drain is the graceful-shutdown path: stop granting leases, wait for
// every in-flight lease to flush results or expire, then flush and
// close all checkpoints. In-flight work that expires is simply not
// waited for further — its points are already durable or will be
// resumed by the next incarnation. Returns ctx.Err() if the context
// ends first (checkpoints are still flushed).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.cfg.Log.Printf("draining: no new leases, waiting for in-flight leases to flush")
	}
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		s.mu.Lock()
		now := s.cfg.Now()
		inflight := 0
		for _, id := range s.order {
			sw := s.sweeps[id]
			if sw.state != SweepActive {
				continue
			}
			sw.table.reclaim(now)
			sw.table.closeCovered()
			inflight += len(sw.table.active)
		}
		s.mu.Unlock()
		if inflight == 0 {
			return s.Close()
		}
		select {
		case <-ctx.Done():
			s.Close()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// WriteFinal streams the boot sweep's completed output — byte-identical
// to a fault-free single-worker run — to w. It fails if points are
// still missing or there is no boot sweep.
func (s *Server) WriteFinal(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.bootLocked()
	if sw == nil {
		return fmt.Errorf("coord: no boot sweep (service mode); use GET /sweeps/{id}/result")
	}
	if !sw.acc.Complete() {
		missing, first := sw.acc.Missing()
		return fmt.Errorf("coord: sweep incomplete: %d of %d points missing (first ID %d)", missing, len(sw.points), first)
	}
	_, err := sw.acc.WriteTo(w, sw.header)
	return err
}

// Status returns a progress snapshot: aggregate counters, the
// per-sweep registry table and the per-worker table. Rates count only
// work accepted since this process started, so a resumed coordinator
// does not credit its checkpoints as instantaneous progress.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	s.reclaimAndGCLocked(now)
	st := Status{
		Workers:  len(s.workers),
		Draining: s.draining,
		Complete: s.allTerminalLocked(),
	}
	ratePts, rateBasePts := 0, 0
	var doneCost, baseCost, remCost float64
	for _, id := range s.order {
		sw := s.sweeps[id]
		row := sw.status()
		st.Sweeps = append(st.Sweeps, row)
		st.Done += row.Done
		st.Total += row.Total
		st.Duplicates += row.Duplicates
		st.ActiveLeases += row.ActiveLeases
		st.PendingPoints += row.PendingPoints
		if sw.state == SweepCancelled {
			continue // a cancelled sweep neither contributes rate nor owes work
		}
		ratePts += row.Done
		rateBasePts += sw.baseDone
		baseCost += sw.baseCost
		for i := range sw.points {
			if sw.acc.Has(i) {
				doneCost += sw.costs[i]
			} else {
				remCost += sw.costs[i]
			}
		}
	}
	if sw := s.bootLocked(); sw != nil {
		st.Spec, st.Seed = sw.header.Spec, sw.header.Seed
	}
	if elapsed := now.Sub(s.started).Seconds(); elapsed > 0 {
		st.PointsPerSec = float64(ratePts-rateBasePts) / elapsed
		if costRate := (doneCost - baseCost) / elapsed; costRate > 0 {
			st.ETASeconds = remCost / costRate
		}
	}
	for name, ws := range s.workers {
		st.WorkerInfo = append(st.WorkerInfo, WorkerStatus{
			Name:        name,
			Accepted:    ws.accepted,
			LastSeenAgo: now.Sub(ws.lastSeen).Seconds(),
			Affinity:    ws.affinity,
		})
	}
	sort.Slice(st.WorkerInfo, func(i, j int) bool { return st.WorkerInfo[i].Name < st.WorkerInfo[j].Name })
	return st
}

// Registry exposes the coordinator's metric registry; cmd/dsed mounts
// its Prometheus handler and callers may add their own series.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the coordinator's HTTP handler: the worker protocol
// plus the sweep registry API and /status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /hello", s.handleHello)
	mux.HandleFunc("POST /lease", s.handleLease)
	mux.HandleFunc("POST /results", s.handleResults)
	mux.HandleFunc("POST /heartbeat", s.handleHeartbeat)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("POST /sweeps", s.handleRegister)
	mux.HandleFunc("GET /sweeps", s.handleListSweeps)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("DELETE /sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /sweeps/{id}/front", s.handleFront)
	mux.HandleFunc("GET /sweeps/{id}/result", s.handleResult)
	return mux
}

// writeJSON responds with one JSON document.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// readJSON decodes the request body into v.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(v); err != nil {
		http.Error(w, "coord: bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// retryAfterLocked renders the Retry-After value clients of a refused
// request should wait: one lease timeout, at least a second.
func (s *Server) retryAfterLocked() string {
	secs := int(s.cfg.LeaseTimeout / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleRegister (POST /sweeps) admits a tenant sweep. Registration is
// idempotent on (spec, seed); admission control refuses new tenants
// with 429 when MaxSweeps are already active and 507 when the
// checkpoint directory is over its disk budget — bounded refusals
// instead of OOM/ENOSPC collapse.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	points, header, err := expandSpec(req.Spec, req.Seed)
	if err != nil {
		http.Error(w, "coord: bad sweep spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	id := SweepID(header)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		w.Header().Set("Retry-After", s.retryAfterLocked())
		http.Error(w, "coord: draining, not admitting sweeps", http.StatusServiceUnavailable)
		return
	}
	if existing, ok := s.sweeps[id]; ok && existing.state != SweepCancelled {
		writeJSON(w, RegisterResponse{Sweep: existing.status(), Header: existing.header})
		return
	}
	active := 0
	var diskUsed int64
	for _, sid := range s.order {
		sw := s.sweeps[sid]
		if sw.state == SweepActive {
			active++
		}
		diskUsed += sw.ckptBytes
	}
	if active >= s.cfg.MaxSweeps {
		w.Header().Set("Retry-After", s.retryAfterLocked())
		http.Error(w, fmt.Sprintf("coord: %d sweeps already active (limit %d)", active, s.cfg.MaxSweeps), http.StatusTooManyRequests)
		return
	}
	if s.cfg.DiskBudgetBytes > 0 && diskUsed >= s.cfg.DiskBudgetBytes {
		w.Header().Set("Retry-After", s.retryAfterLocked())
		http.Error(w, fmt.Sprintf("coord: checkpoint storage over budget (%d of %d bytes)", diskUsed, s.cfg.DiskBudgetBytes), http.StatusInsufficientStorage)
		return
	}
	if tomb, ok := s.sweeps[id]; ok {
		s.removeSweepLocked(tomb) // cancelled tombstone: re-registration revives fresh
	}
	ckptPath := ""
	if s.cfg.CheckpointDir != "" {
		ckptPath = filepath.Join(s.cfg.CheckpointDir, id+".jsonl")
	}
	sw, err := s.adoptSweepLocked(header, points, ckptPath, ckptPath != "", true)
	if err != nil {
		http.Error(w, "coord: registering sweep: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.cfg.Log.Printf("registered sweep %s: spec %q seed %d (%d points)", sw.id, req.Spec, req.Seed, len(points))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(RegisterResponse{Sweep: sw.status(), Header: sw.header, Created: true})
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rows := make([]SweepStatus, 0, len(s.order))
	for _, id := range s.order {
		rows = append(rows, s.sweeps[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, rows)
}

// lookupSweep resolves a path {id}; nil means a 404 was written.
func (s *Server) lookupSweepLocked(w http.ResponseWriter, r *http.Request) *sweep {
	sw, ok := s.sweeps[r.PathValue("id")]
	if !ok {
		http.Error(w, "coord: unknown sweep "+r.PathValue("id"), http.StatusNotFound)
		return nil
	}
	return sw
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw := s.lookupSweepLocked(w, r)
	if sw == nil {
		s.mu.Unlock()
		return
	}
	row := sw.status()
	s.mu.Unlock()
	writeJSON(w, row)
}

// handleCancel (DELETE /sweeps/{id}) gracefully cancels a sweep:
// leases reclaimed, storage removed, late submissions absorbed by the
// tombstone — and no other tenant affected.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw := s.lookupSweepLocked(w, r)
	if sw == nil {
		s.mu.Unlock()
		return
	}
	s.cancelSweepLocked(sw)
	row := sw.status()
	s.mu.Unlock()
	writeJSON(w, row)
}

// handleFront (GET /sweeps/{id}/front) serves the incremental Pareto
// and hypervolume snapshot over the sweep's accepted results so far.
func (s *Server) handleFront(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw := s.lookupSweepLocked(w, r)
	if sw == nil {
		s.mu.Unlock()
		return
	}
	snap := FrontSnapshot{
		Sweep:    sw.id,
		Done:     sw.acc.Done(),
		Total:    sw.acc.Total(),
		Complete: sw.acc.Complete(),
	}
	completed := sw.acc.Completed()
	s.mu.Unlock()
	// Front and hypervolume run on the copied slice outside the lock:
	// snapshot math never blocks the lease path.
	for _, i := range dse.GroupedFront(completed) {
		snap.Front = append(snap.Front, completed[i])
	}
	snap.Hypervolumes = dse.Hypervolumes(completed)
	writeJSON(w, snap)
}

// handleResult (GET /sweeps/{id}/result) streams a completed sweep's
// final JSONL — byte-identical to a fault-free standalone run.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw := s.lookupSweepLocked(w, r)
	if sw == nil {
		s.mu.Unlock()
		return
	}
	if !sw.acc.Complete() {
		missing, first := sw.acc.Missing()
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("coord: sweep incomplete: %d points missing (first ID %d)", missing, first), http.StatusConflict)
		return
	}
	var buf bytes.Buffer
	_, err := sw.acc.WriteTo(&buf, sw.header)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, "coord: rendering result: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.Write(buf.Bytes())
}

func (s *Server) handleHello(w http.ResponseWriter, r *http.Request) {
	var req HelloRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	s.touchWorkerLocked(req.Worker, s.cfg.Now())
	resp := HelloResponse{HeartbeatMS: (s.cfg.LeaseTimeout / 4).Milliseconds()}
	for _, id := range s.order {
		resp.Sweeps = append(resp.Sweeps, s.sweeps[id].status())
	}
	s.mu.Unlock()
	s.cfg.Log.Printf("hello from %s", req.Worker)
	writeJSON(w, resp)
}

// handleLease grants the requesting worker its next assignment,
// picking the sweep by cost-weighted fairness with worker affinity
// (see sched.go).
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.touchWorkerLocked(req.Worker, now)
	s.reclaimAndGCLocked(now)
	if s.bootID != "" && s.allTerminalLocked() {
		writeJSON(w, LeaseResponse{Done: true})
		return
	}
	if s.draining {
		writeJSON(w, s.retryResponseLocked())
		return
	}
	// The runnable set: active sweeps with grantable work right now.
	// An active sweep with nothing to hand out holds no claim on
	// service while idle, so its debt resets (the DRR empty-queue
	// rule) — debt measures being outscheduled, not being finished.
	var elig []*sweep
	for _, id := range s.order {
		sw := s.sweeps[id]
		if sw.state != SweepActive {
			continue
		}
		if sw.table.hasWork(now) {
			elig = append(elig, sw)
		} else {
			sw.debt = 0
		}
	}
	if len(elig) == 0 {
		writeJSON(w, s.retryResponseLocked())
		return
	}
	debts := make([]float64, len(elig))
	affinity, maxChunk := -1, 0.0
	for i, sw := range elig {
		debts[i] = sw.debt
		if sw.id == ws.affinity {
			affinity = i
		}
		if sw.table.chunkCost > maxChunk {
			maxChunk = sw.table.chunkCost
		}
	}
	threshold := s.cfg.AffinityDebt
	if threshold <= 0 {
		threshold = 2 * maxChunk
	}
	sw := elig[pickFair(debts, affinity, threshold)]
	l := sw.table.grant(req.Worker, now)
	if l == nil {
		writeJSON(w, s.retryResponseLocked())
		return
	}
	cost := 0.0
	for p := l.lo; p < l.hi; p++ {
		cost += sw.costs[p]
	}
	for i, e := range elig {
		if e == sw {
			chargeGrant(debts, i, cost)
			break
		}
	}
	for i, e := range elig {
		e.debt = debts[i]
	}
	ws.affinity = sw.id
	s.cfg.Log.Printf("lease %s/%d [%d,%d) -> %s (reissue %d)", sw.id, l.id, l.lo, l.hi, req.Worker, l.issues)
	writeJSON(w, LeaseResponse{
		Lease: &Lease{
			Sweep:      sw.id,
			ID:         l.id,
			Lo:         l.lo,
			Hi:         l.hi,
			DeadlineMS: s.cfg.LeaseTimeout.Milliseconds(),
		},
		Header: &sw.header,
	})
}

// retryResponseLocked is the "nothing to grant right now" answer.
func (s *Server) retryResponseLocked() LeaseResponse {
	retry := s.cfg.LeaseTimeout / 8
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	return LeaseResponse{RetryMS: retry.Milliseconds()}
}

// resolveSweepParam maps a request's sweep query parameter to its
// record; "" falls back to the boot sweep (the single-sweep wire
// format predates tenancy).
func (s *Server) resolveSweepParamLocked(id string) *sweep {
	if id == "" {
		return s.bootLocked()
	}
	return s.sweeps[id]
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := s.cfg.Now()
	s.mu.Lock()
	s.touchWorkerLocked(req.Worker, now)
	sw := s.resolveSweepParamLocked(req.Sweep)
	resp := HeartbeatResponse{}
	if sw == nil || sw.state == SweepCancelled {
		resp.Cancelled = true
	} else {
		resp.Valid = sw.table.heartbeat(req.Lease, now)
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleResults accepts a JSONL batch of result lines for one sweep.
// Acceptance is idempotent line-by-line; a conflicting line (bytes
// disagreeing with an accepted result for the same point) rejects the
// whole request with 409 — that is never a retry artifact, it means an
// engine drifted. A batch for a cancelled or unknown sweep is
// discarded with a Cancelled ack so the worker abandons the lease.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, "coord: reading results: "+err.Error(), http.StatusBadRequest)
		return
	}
	worker := r.URL.Query().Get("worker")
	leaseID, _ := strconv.ParseInt(r.URL.Query().Get("lease"), 10, 64)
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.touchWorkerLocked(worker, s.cfg.Now())
	sw := s.resolveSweepParamLocked(r.URL.Query().Get("sweep"))
	if sw == nil || sw.state == SweepCancelled {
		writeJSON(w, ResultAck{Cancelled: true})
		return
	}
	ack := ResultAck{}
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		added, err := sw.acc.Add(line)
		if err != nil {
			s.obs.conflicts.Inc()
			s.cfg.Log.Printf("conflict from %s (sweep %s lease %d): %v", worker, sw.id, leaseID, err)
			http.Error(w, "coord: "+err.Error(), http.StatusConflict)
			return
		}
		if !added {
			ack.Duplicates++
			continue
		}
		ack.Accepted++
		if err := sw.appendCheckpoint(lastPointID(line)); err != nil {
			http.Error(w, "coord: checkpoint: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if err := sw.flushCheckpoint(); err != nil {
		http.Error(w, "coord: checkpoint: "+err.Error(), http.StatusInternalServerError)
		return
	}
	ws.accepted += int64(ack.Accepted)
	s.obs.accepted.Add(int64(ack.Accepted))
	s.obs.duplicates.Add(int64(ack.Duplicates))
	sw.table.closeCovered()
	s.logProgressLocked(sw)
	if sw.acc.Complete() {
		s.completeSweepLocked(sw)
	}
	ack.Done = s.bootID != "" && s.allTerminalLocked()
	writeJSON(w, ack)
}

// lastPointID extracts the point ID from an accepted line. The line
// already passed Accumulator validation, so decoding cannot fail.
func lastPointID(line []byte) int {
	var r dse.Result
	_ = json.Unmarshal(line, &r)
	return r.Point.ID
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Status())
}

// logProgressLocked emits a sweep's live per-workload front snapshot
// every ProgressEvery accepted points: merge is incremental, so the
// Pareto fronts and hypervolumes of the completed subset are available
// the whole time the sweep runs.
func (s *Server) logProgressLocked(sw *sweep) {
	if s.cfg.ProgressEvery <= 0 || sw.acc.Done() < sw.frontAt+s.cfg.ProgressEvery {
		return
	}
	sw.frontAt = sw.acc.Done()
	completed := sw.acc.Completed()
	front := dse.GroupedFront(completed)
	var hv bytes.Buffer
	for i, f := range dse.Hypervolumes(completed) {
		if i > 0 {
			hv.WriteString(" ")
		}
		fmt.Fprintf(&hv, "%s=%.3f", f.Workload, f.Norm)
	}
	s.cfg.Log.Printf("sweep %s live %d/%d points, front %d, hv-norm %s",
		sw.id, sw.acc.Done(), sw.acc.Total(), len(front), hv.String())
}
