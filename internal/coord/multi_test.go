package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// doJSON drives one request of any method against the handler,
// decoding a JSON response body into out on 2xx.
func doJSON(t *testing.T, h http.Handler, method, path string, in, out any) (int, http.Header) {
	t.Helper()
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code, rec.Result().Header
}

// registerSweep registers a tenant sweep and returns the response.
func registerSweep(t *testing.T, h http.Handler, spec string, seed uint64) (int, RegisterResponse) {
	t.Helper()
	var rr RegisterResponse
	code, _ := doJSON(t, h, http.MethodPost, "/sweeps", RegisterRequest{Spec: spec, Seed: seed}, &rr)
	return code, rr
}

// postLinesSweep submits JSONL result lines for one sweep.
func postLinesSweep(t *testing.T, h http.Handler, worker, sweepID string, lease int64, lines [][]byte) (int, ResultAck, string) {
	t.Helper()
	body := bytes.Join(lines, []byte("\n"))
	path := fmt.Sprintf("/results?worker=%s&sweep=%s&lease=%d", worker, sweepID, lease)
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var ack ResultAck
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
			t.Fatal(err)
		}
	}
	return rec.Code, ack, rec.Body.String()
}

// fetchResult downloads a completed sweep's final JSONL.
func fetchResult(t *testing.T, h http.Handler, sweepID string) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/sweeps/"+sweepID+"/result", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET result %s: HTTP %d (%s)", sweepID, rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// listSweeps fetches the registry table.
func listSweeps(t *testing.T, h http.Handler) []SweepStatus {
	t.Helper()
	var rows []SweepStatus
	if code, _ := doJSON(t, h, http.MethodGet, "/sweeps", nil, &rows); code != http.StatusOK {
		t.Fatalf("GET /sweeps: HTTP %d", code)
	}
	return rows
}

// TestRegistryLifecycle checks registration idempotency and the
// registry read endpoints.
func TestRegistryLifecycle(t *testing.T) {
	srv, err := New(Config{}) // service mode: no boot sweep
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	if rows := listSweeps(t, h); len(rows) != 0 {
		t.Fatalf("fresh service has %d sweeps", len(rows))
	}
	code, rr := registerSweep(t, h, "smoke", 1)
	if code != http.StatusCreated || !rr.Created {
		t.Fatalf("register: HTTP %d %+v", code, rr)
	}
	id := rr.Sweep.ID
	if id != "sw-"+rr.Header.SpecHash {
		t.Fatalf("sweep ID %q not derived from spec hash %q", id, rr.Header.SpecHash)
	}
	// Re-registration is idempotent: same ID, not created, 200.
	code, rr2 := registerSweep(t, h, "smoke", 1)
	if code != http.StatusOK || rr2.Created || rr2.Sweep.ID != id {
		t.Fatalf("re-register: HTTP %d %+v", code, rr2)
	}
	var row SweepStatus
	if code, _ := doJSON(t, h, http.MethodGet, "/sweeps/"+id, nil, &row); code != http.StatusOK || row.State != SweepActive {
		t.Fatalf("GET sweep: HTTP %d %+v", code, row)
	}
	if code, _ := doJSON(t, h, http.MethodGet, "/sweeps/sw-nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown sweep: HTTP %d, want 404", code)
	}
	// A different seed is a different tenant.
	code, rr3 := registerSweep(t, h, "smoke", 2)
	if code != http.StatusCreated || rr3.Sweep.ID == id {
		t.Fatalf("second tenant: HTTP %d id %s", code, rr3.Sweep.ID)
	}
	if rows := listSweeps(t, h); len(rows) != 2 || rows[0].ID != id {
		t.Fatalf("registry rows %+v", rows)
	}
}

// TestAdmissionControl checks both backpressure refusals: sweep-count
// 429 and disk-budget 507, each with Retry-After.
func TestAdmissionControl(t *testing.T) {
	srv, err := New(Config{MaxSweeps: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	if code, _ := registerSweep(t, h, "smoke", 1); code != http.StatusCreated {
		t.Fatalf("first register: HTTP %d", code)
	}
	code, hdr := doJSON(t, h, http.MethodPost, "/sweeps", RegisterRequest{Spec: "smoke", Seed: 2}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over sweep limit: HTTP %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Re-registering the existing sweep is still fine at the limit.
	if code, rr := registerSweep(t, h, "smoke", 1); code != http.StatusOK || rr.Created {
		t.Fatalf("idempotent register at limit: HTTP %d %+v", code, rr)
	}

	// Disk budget: the first sweep's checkpoint header alone exceeds a
	// one-byte budget, so the second tenant is refused with 507.
	dir := t.TempDir()
	srv2, err := New(Config{CheckpointDir: dir, DiskBudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	h2 := srv2.Handler()
	if code, _ := registerSweep(t, h2, "smoke", 1); code != http.StatusCreated {
		t.Fatalf("register under budget: HTTP %d", code)
	}
	code, hdr = doJSON(t, h2, http.MethodPost, "/sweeps", RegisterRequest{Spec: "smoke", Seed: 2}, nil)
	if code != http.StatusInsufficientStorage || hdr.Get("Retry-After") == "" {
		t.Fatalf("over disk budget: HTTP %d (Retry-After %q), want 507", code, hdr.Get("Retry-After"))
	}
}

// TestCancelReclaimsLeasesAndIsolatesTenants is the tenant-isolation
// contract: cancelling sweep A reclaims all of A's leases, answers A's
// late traffic with Cancelled, and leaves sweep B completely
// untouched — B still completes byte-identical to its standalone run.
func TestCancelReclaimsLeasesAndIsolatesTenants(t *testing.T) {
	_, linesB := sweepLines(t, "smoke", 2)
	srv, err := New(Config{Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	_, rrA := registerSweep(t, h, "smoke", 1)
	_, rrB := registerSweep(t, h, "smoke", 2)
	idA, idB := rrA.Sweep.ID, rrB.Sweep.ID

	// First grant goes to A (registration order on zero debts), giving
	// worker wa affinity to A; fairness then steers wb to B.
	la := requestLease(t, h, "wa")
	if la.Lease == nil || la.Lease.Sweep != idA {
		t.Fatalf("wa's lease %+v, want sweep %s", la.Lease, idA)
	}
	if la.Header == nil || la.Header.SpecHash != rrA.Header.SpecHash {
		t.Fatalf("lease header %+v, want sweep A's", la.Header)
	}
	lb := requestLease(t, h, "wb")
	if lb.Lease == nil || lb.Lease.Sweep != idB {
		t.Fatalf("wb's lease %+v, want sweep %s (fairness)", lb.Lease, idB)
	}

	// Cancel A mid-lease.
	var cancelled SweepStatus
	if code, _ := doJSON(t, h, http.MethodDelete, "/sweeps/"+idA, nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	if cancelled.State != SweepCancelled || cancelled.ActiveLeases != 0 {
		t.Fatalf("cancelled status %+v, want state=cancelled with 0 leases", cancelled)
	}

	// A's worker learns via heartbeat and result ack, not errors.
	var hb HeartbeatResponse
	postJSON(t, h, "/heartbeat", HeartbeatRequest{Worker: "wa", Sweep: idA, Lease: la.Lease.ID}, &hb)
	if hb.Valid || !hb.Cancelled {
		t.Fatalf("heartbeat on cancelled sweep: %+v", hb)
	}
	_, linesA := sweepLines(t, "smoke", 1)
	code, ack, _ := postLinesSweep(t, h, "wa", idA, la.Lease.ID, linesA[la.Lease.Lo:la.Lease.Hi])
	if code != http.StatusOK || !ack.Cancelled || ack.Accepted != 0 {
		t.Fatalf("late submit to cancelled sweep: HTTP %d %+v", code, ack)
	}

	// B is untouched: its lease heartbeats fine and the sweep drains to
	// byte-identical completion.
	var hbB HeartbeatResponse
	postJSON(t, h, "/heartbeat", HeartbeatRequest{Worker: "wb", Sweep: idB, Lease: lb.Lease.ID}, &hbB)
	if !hbB.Valid || hbB.Cancelled {
		t.Fatalf("B's heartbeat after A's cancel: %+v", hbB)
	}
	if code, _, body := postLinesSweep(t, h, "wb", idB, lb.Lease.ID, linesB); code != http.StatusOK {
		t.Fatalf("B drain: HTTP %d (%s)", code, body)
	}
	var rowB SweepStatus
	doJSON(t, h, http.MethodGet, "/sweeps/"+idB, nil, &rowB)
	if rowB.State != SweepDone {
		t.Fatalf("B after drain: %+v", rowB)
	}
	if !bytes.Equal(fetchResult(t, h, idB), referenceBytes(t, "smoke", 2)) {
		t.Fatal("B's output differs from its standalone run after A's cancel")
	}
	var snap FrontSnapshot
	if code, _ := doJSON(t, h, http.MethodGet, "/sweeps/"+idB+"/front", nil, &snap); code != http.StatusOK {
		t.Fatalf("front: HTTP %d", code)
	}
	if !snap.Complete || len(snap.Front) == 0 || len(snap.Hypervolumes) == 0 {
		t.Fatalf("front snapshot %+v", snap)
	}
}

// TestDirResumeCoversAllActiveSweeps is whole-farm crash recovery: a
// coordinator dies (torn checkpoint tail included) with two sweeps
// mid-flight; the restarted coordinator resumes both from the
// checkpoint directory and each completes byte-identical.
func TestDirResumeCoversAllActiveSweeps(t *testing.T) {
	dir := t.TempDir()
	_, linesA := sweepLines(t, "smoke", 1)
	_, linesB := sweepLines(t, "smoke", 2)

	srv, err := New(Config{CheckpointDir: dir, Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	_, rrA := registerSweep(t, h, "smoke", 1)
	_, rrB := registerSweep(t, h, "smoke", 2)
	idA, idB := rrA.Sweep.ID, rrB.Sweep.ID
	if _, ack, _ := postLinesSweep(t, h, "w", idA, 0, linesA[:5]); ack.Accepted != 5 {
		t.Fatal("seeding A failed")
	}
	if _, ack, _ := postLinesSweep(t, h, "w", idB, 0, linesB[:7]); ack.Accepted != 7 {
		t.Fatal("seeding B failed")
	}
	// Crash: no graceful close; then a torn tail on A's log, as a real
	// mid-append crash would leave.
	srv.Close()
	f, err := os.OpenFile(filepath.Join(dir, idA+".jsonl"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(`{"point":{"id":`))
	f.Close()

	srv2, err := New(Config{CheckpointDir: dir, Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	h2 := srv2.Handler()
	rows := listSweeps(t, h2)
	if len(rows) != 2 {
		t.Fatalf("restart recovered %d sweeps, want 2", len(rows))
	}
	byID := map[string]SweepStatus{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	if byID[idA].Done != 5 || byID[idB].Done != 7 {
		t.Fatalf("resumed progress A=%d B=%d, want 5 and 7", byID[idA].Done, byID[idB].Done)
	}
	// Finish both; outputs must be byte-identical to standalone runs.
	postLinesSweep(t, h2, "w", idA, 0, linesA)
	postLinesSweep(t, h2, "w", idB, 0, linesB)
	for _, row := range listSweeps(t, h2) {
		if row.State != SweepDone {
			t.Fatalf("after drain: %+v", row)
		}
	}
	if !bytes.Equal(fetchResult(t, h2, idA), referenceBytes(t, "smoke", 1)) {
		t.Fatal("A's resumed output differs")
	}
	if !bytes.Equal(fetchResult(t, h2, idB), referenceBytes(t, "smoke", 2)) {
		t.Fatal("B's resumed output differs")
	}

	// A third incarnation adopts the finalized files as done sweeps and
	// still serves identical bytes.
	srv3, err := New(Config{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h3 := srv3.Handler()
	for _, row := range listSweeps(t, h3) {
		if row.State != SweepDone {
			t.Fatalf("third incarnation: %+v", row)
		}
	}
	if !bytes.Equal(fetchResult(t, h3, idA), referenceBytes(t, "smoke", 1)) {
		t.Fatal("finalized file served differently after restart")
	}
}

// TestFairSchedulerDebtBound is the scheduler property test: under
// adversarial random grant costs and affinity churn, no sweep's debt
// drifts unboundedly in either direction, debts always sum to zero,
// and no sweep is starved of grants.
//
// Bound rationale: a sweep is only ever *granted* work when its debt
// is within threshold of the maximum (affinity) or is the maximum, so
// debts sink at most threshold + maxCost below zero. Upward creep
// happens while affinity outruns fairness, but each affinity grant
// widens the gap to the leader by its full cost while raising the
// leader only cost/n, so the leader is served before exceeding
// roughly threshold + maxCost; doubling both terms gives comfortable
// slack without hiding real drift.
func TestFairSchedulerDebtBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		debts := make([]float64, n)
		grants := make([]int, n)
		maxCost := 1.0 + rng.Float64()*9
		threshold := maxCost * (1 + rng.Float64()*3)
		affinity := make([]int, 6)
		for i := range affinity {
			affinity[i] = -1
		}
		bound := 2*threshold + 2*maxCost
		const steps = 1500
		for step := 0; step < steps; step++ {
			wkr := rng.Intn(len(affinity))
			pick := pickFair(debts, affinity[wkr], threshold)
			cost := 0.5 + rng.Float64()*(maxCost-0.5)
			chargeGrant(debts, pick, cost)
			affinity[wkr] = pick
			grants[pick]++
			sum := 0.0
			for i, d := range debts {
				sum += d
				if math.Abs(d) > bound {
					t.Fatalf("trial %d step %d: debt[%d]=%.2f exceeds bound %.2f (threshold %.2f, maxCost %.2f)",
						trial, step, i, d, bound, threshold, maxCost)
				}
			}
			if math.Abs(sum) > 1e-6*float64(step+1) {
				t.Fatalf("trial %d: debts sum to %g, want 0", trial, sum)
			}
		}
		for i, g := range grants {
			if g < steps/(n*10) {
				t.Fatalf("trial %d: sweep %d starved (%d of %d grants across %d sweeps)", trial, i, g, steps, n)
			}
		}
	}
}

// TestWorkerGCAndTombstoneExpiry checks /status and metric hygiene: a
// silent worker is dropped from the tables and its labeled series
// unregistered; a cancelled sweep's tombstone (which absorbs late
// traffic) also ages out along with its series.
func TestWorkerGCAndTombstoneExpiry(t *testing.T) {
	clock := newFakeClock()
	srv, err := New(Config{LeaseTimeout: 10 * time.Second, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	metrics := func() string {
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Body.String()
	}
	var hr HelloResponse
	postJSON(t, h, "/hello", HelloRequest{Worker: "old"}, &hr)
	clock.Advance(30 * time.Second)
	postJSON(t, h, "/hello", HelloRequest{Worker: "young"}, &hr)
	if !strings.Contains(metrics(), `worker="old"`) {
		t.Fatal("old worker's series missing before expiry")
	}
	clock.Advance(15 * time.Second) // old is now 45s silent > 4 x 10s
	st := srv.Status()
	if st.Workers != 1 || len(st.WorkerInfo) != 1 || st.WorkerInfo[0].Name != "young" {
		t.Fatalf("after GC: %+v", st.WorkerInfo)
	}
	m := metrics()
	if strings.Contains(m, `worker="old"`) {
		t.Fatal("departed worker's series still exported")
	}
	if !strings.Contains(m, `worker="young"`) {
		t.Fatal("live worker's series dropped")
	}

	// Cancelled-sweep tombstone: present right after cancel, gone (with
	// its series) after the expiry window.
	_, rr := registerSweep(t, h, "smoke", 1)
	id := rr.Sweep.ID
	if !strings.Contains(metrics(), `sweep="`+id+`"`) {
		t.Fatal("registered sweep has no labeled series")
	}
	doJSON(t, h, http.MethodDelete, "/sweeps/"+id, nil, nil)
	if rows := listSweeps(t, h); len(rows) != 1 || rows[0].State != SweepCancelled {
		t.Fatalf("tombstone missing right after cancel: %+v", rows)
	}
	clock.Advance(41 * time.Second)
	srv.Status() // any request runs the GC
	if rows := listSweeps(t, h); len(rows) != 0 {
		t.Fatalf("tombstone survived expiry: %+v", rows)
	}
	if strings.Contains(metrics(), `sweep="`+id+`"`) {
		t.Fatal("removed sweep's series still exported")
	}
}

// TestDrainGraceful checks the SIGTERM path: a draining coordinator
// grants nothing and admits nobody, waits for the in-flight lease to
// flush, and leaves a checkpoint a restart can resume.
func TestDrainGraceful(t *testing.T) {
	_, lines := sweepLines(t, "smoke", 1)
	ckpt := filepath.Join(t.TempDir(), "boot.jsonl")
	srv, err := New(Config{Spec: "smoke", Seed: 1, Chunks: 4, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	l := requestLease(t, h, "w")
	if l.Lease == nil {
		t.Fatal("no lease before drain")
	}
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()
	waitUntil(t, time.Second, func() bool { return srv.Status().Draining })
	if lr := requestLease(t, h, "w2"); lr.Lease != nil || lr.Done {
		t.Fatalf("draining coordinator still granting: %+v", lr)
	}
	if code, _ := doJSON(t, h, http.MethodPost, "/sweeps", RegisterRequest{Spec: "smoke", Seed: 9}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining register: HTTP %d, want 503", code)
	}
	// The in-flight lease flushes its results; drain completes.
	if code, _, body := postLines(t, h, "w", l.Lease.ID, lines[l.Lease.Lo:l.Lease.Hi]); code != http.StatusOK {
		t.Fatalf("flush during drain: HTTP %d (%s)", code, body)
	}
	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not complete after in-flight lease flushed")
	}
	// The checkpoint is resumable exactly where the drain left it.
	srv2, err := New(Config{Spec: "smoke", Seed: 1, CheckpointPath: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.Status().Done; got != l.Lease.Len() {
		t.Fatalf("resumed %d points after drain, want %d", got, l.Lease.Len())
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTwoSweepsConcurrentWorkersByteIdentity runs a real worker fleet
// against a two-tenant service end to end (the -race target): three
// interleaved workers drain both sweeps concurrently and each sweep's
// final bytes equal its standalone single-worker run.
func TestTwoSweepsConcurrentWorkersByteIdentity(t *testing.T) {
	srv, err := New(Config{LeaseTimeout: 5 * time.Second, Chunks: 6})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	h := srv.Handler()
	_, rrA := registerSweep(t, h, "smoke", 1)
	_, rrB := registerSweep(t, h, "smoke", 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(quickWorker(hs.URL, fmt.Sprintf("w%d", i)))
			errs[i] = w.Run(ctx)
		}(i)
	}
	waitUntil(t, 60*time.Second, func() bool {
		for _, row := range listSweeps(t, h) {
			if row.State != SweepDone {
				return false
			}
		}
		return true
	})
	cancel() // service mode: workers poll forever, stop them explicitly
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !bytes.Equal(fetchResult(t, h, rrA.Sweep.ID), referenceBytes(t, "smoke", 1)) {
		t.Fatal("sweep A bytes differ from standalone run")
	}
	if !bytes.Equal(fetchResult(t, h, rrB.Sweep.ID), referenceBytes(t, "smoke", 2)) {
		t.Fatal("sweep B bytes differ from standalone run")
	}
	// Both tenants got served: every worker held affinity somewhere,
	// and the farm-level counters cover both sweeps.
	st := srv.Status()
	if st.Done != st.Total || len(st.Sweeps) != 2 {
		t.Fatalf("final status %+v", st)
	}
}
