// Package coord is the fault-tolerant sweep coordinator: a
// long-running HTTP/JSONL service (cmd/dsed) that expands a sweep
// once, hands out contiguous point-ID leases to workers
// (cmd/dse -connect), and accumulates streamed result lines back into
// a file byte-identical to a fault-free single-worker run.
//
// Robustness rests entirely on the determinism contract the dse
// package already enforces: every per-point seed derives from the
// sweep seed alone, result lines are byte-reproducible wherever they
// are evaluated, and the Accumulator validates each line against the
// locally re-expanded point list, dropping byte-identical duplicates
// and refusing conflicts. Given that, every failure mode reduces to
// "evaluate the range again somewhere": a worker that dies simply
// never acks, its lease deadline passes, and the uncovered range is
// reissued (shrunk, so a straggling range spreads across the fleet);
// a worker that was merely slow acks late and its lines land as
// duplicates; a duplicated or replayed network request is absorbed
// the same way. The coordinator checkpoints accepted lines to an
// append-only JSONL log, so its own crash loses nothing that was
// acked; workers retry transient failures with deterministic jittered
// backoff (Backoff) and, when the coordinator vanishes entirely,
// finish the current lease, checkpoint it locally in shard-file form,
// and rejoin.
//
// # Protocol
//
// Workers are the HTTP clients (the uPIMulator subprocess-RPC pattern
// inverted). All requests and responses are JSON except result
// submission, whose body is the raw JSONL result lines — the same
// bytes a standalone run would write, which is what makes merged
// output byte-identical.
//
//	POST /hello      HelloRequest  -> HelloResponse   (sweep identity)
//	POST /lease      LeaseRequest  -> LeaseResponse   (work assignment)
//	POST /results    JSONL lines   -> ResultAck       (?worker=&lease=)
//	POST /heartbeat  HeartbeatRequest -> HeartbeatResponse
//	GET  /status                   -> Status
package coord

import "mpsockit/internal/dse"

// HelloRequest announces a worker to the coordinator.
type HelloRequest struct {
	// Worker is the worker's self-chosen identity, used for lease
	// accounting and logs.
	Worker string `json:"worker"`
}

// HelloResponse hands the worker everything needed to evaluate
// points: the sweep header. The worker re-parses the spec and
// re-expands the point list locally, then verifies its hash against
// Header.SpecHash — an engine-drifted worker refuses to participate
// instead of poisoning the sweep with conflicting bytes.
type HelloResponse struct {
	// Header is the sweep's provenance record, identical to the first
	// line of the output file.
	Header dse.Header `json:"header"`
	// HeartbeatMS is how often the coordinator expects a heartbeat
	// while a lease is held (a fraction of the lease timeout).
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// LeaseRequest asks for a work assignment.
type LeaseRequest struct {
	// Worker is the requesting worker's identity.
	Worker string `json:"worker"`
}

// Lease is one work assignment: a contiguous point-ID range plus the
// deadline discipline. Leases are not exclusive grants in the
// correctness sense — the determinism contract makes double
// evaluation harmless — they are a scheduling tool bounding how long
// a range can sit on a dead or straggling worker.
type Lease struct {
	// ID identifies the lease for heartbeats and acks.
	ID int64 `json:"id"`
	// Lo is the first point ID of the range (inclusive).
	Lo int `json:"lo"`
	// Hi is one past the last point ID (exclusive).
	Hi int `json:"hi"`
	// DeadlineMS is the lease duration in milliseconds: the worker
	// must submit results or heartbeat within it, or the range is
	// reclaimed and reissued.
	DeadlineMS int64 `json:"deadline_ms"`
}

// Len returns the number of points the lease covers.
func (l Lease) Len() int { return l.Hi - l.Lo }

// LeaseResponse carries a lease, a complete-sweep signal, or a
// back-off hint when all remaining work is currently leased out.
type LeaseResponse struct {
	// Lease is the granted assignment; nil when Done or RetryMS is
	// set instead.
	Lease *Lease `json:"lease,omitempty"`
	// Done reports that every point has an accepted result; the
	// worker should exit.
	Done bool `json:"done,omitempty"`
	// RetryMS asks the worker to poll again after this many
	// milliseconds.
	RetryMS int64 `json:"retry_ms,omitempty"`
}

// ResultAck acknowledges a batch of submitted result lines.
type ResultAck struct {
	// Accepted counts lines that were new.
	Accepted int `json:"accepted"`
	// Duplicates counts byte-identical lines the coordinator already
	// had — the normal aftermath of a reissued lease or a replayed
	// request, not an error.
	Duplicates int `json:"duplicates"`
	// Done reports that the sweep is now complete.
	Done bool `json:"done,omitempty"`
}

// HeartbeatRequest extends a lease's deadline.
type HeartbeatRequest struct {
	// Worker is the heartbeating worker's identity.
	Worker string `json:"worker"`
	// Lease is the lease being kept alive.
	Lease int64 `json:"lease"`
}

// HeartbeatResponse reports whether the lease was still live. An
// invalid lease is not fatal for the worker: its range was reclaimed
// (and possibly reissued), but finishing and submitting anyway is
// safe — the lines land as duplicates or fill still-missing points.
type HeartbeatResponse struct {
	// Valid is false when the lease had already expired or closed.
	Valid bool `json:"valid"`
}

// Status is the coordinator's observable progress snapshot.
type Status struct {
	// Spec and Seed identify the sweep being coordinated.
	Spec string `json:"spec"`
	// Seed is the sweep seed.
	Seed uint64 `json:"seed"`
	// Done counts points with an accepted result.
	Done int `json:"done"`
	// Total is the sweep's point count.
	Total int `json:"total"`
	// Duplicates counts byte-identical duplicate lines absorbed so
	// far (retries, reissues, replays).
	Duplicates int `json:"duplicates"`
	// ActiveLeases counts currently outstanding leases.
	ActiveLeases int `json:"active_leases"`
	// PendingPoints counts points neither done nor covered by an
	// active lease.
	PendingPoints int `json:"pending_points"`
	// Workers counts distinct worker identities seen.
	Workers int `json:"workers"`
	// Complete mirrors Done == Total.
	Complete bool `json:"complete"`
	// PointsPerSec is the acceptance rate since this coordinator
	// process started (resumed checkpoint points excluded).
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	// ETASeconds estimates the remaining wall-clock time, weighting
	// points by estimated evaluation cost rather than counting them
	// equally; zero until enough work has been accepted to form a rate.
	ETASeconds float64 `json:"eta_s,omitempty"`
	// WorkerInfo is the per-worker table, sorted by name.
	WorkerInfo []WorkerStatus `json:"worker_info,omitempty"`
}

// WorkerStatus is one worker's row in the Status table.
type WorkerStatus struct {
	// Name is the worker's self-chosen identity.
	Name string `json:"name"`
	// Accepted counts this worker's result lines accepted as new.
	Accepted int64 `json:"accepted"`
	// LastSeenAgo is seconds since the worker was last heard from
	// (hello, lease, heartbeat or results).
	LastSeenAgo float64 `json:"last_seen_ago_s"`
}
