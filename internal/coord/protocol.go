// Package coord is the fault-tolerant multi-tenant sweep service: a
// long-running HTTP/JSONL coordinator (cmd/dsed) that holds a registry
// of concurrent sweeps, hands out contiguous point-ID leases to
// workers (cmd/dse -connect) under cost-weighted fair scheduling, and
// accumulates each sweep's streamed result lines into a file
// byte-identical to a fault-free single-worker run of that sweep.
//
// Robustness rests entirely on the determinism contract the dse
// package already enforces: every per-point seed derives from the
// sweep seed alone, result lines are byte-reproducible wherever they
// are evaluated, and each sweep's Accumulator validates every line
// against the locally re-expanded point list, dropping byte-identical
// duplicates and refusing conflicts. Given that, every failure mode
// reduces to "evaluate the range again somewhere": a worker that dies
// simply never acks, its lease deadline passes, and the uncovered
// range is reissued (shrunk, so a straggling range spreads across the
// fleet); a worker that was merely slow acks late and its lines land
// as duplicates; a duplicated or replayed network request is absorbed
// the same way. Tenancy layers lifecycle on top without touching that
// core: each sweep owns its own lease table, accumulator and
// append-only checkpoint log (all logs reloaded on coordinator
// restart, so a mid-crash farm resumes every active sweep), a
// cancelled sweep's leases are reclaimed without poisoning its
// neighbours, and admission control sheds load with 429/507 before
// memory or disk collapse.
//
// # Protocol
//
// Workers are the HTTP clients (the uPIMulator subprocess-RPC pattern
// inverted). All requests and responses are JSON except result
// submission, whose body is the raw JSONL result lines — the same
// bytes a standalone run would write, which is what makes merged
// output byte-identical.
//
//	POST   /sweeps             RegisterRequest -> RegisterResponse (tenant entry)
//	GET    /sweeps                             -> []SweepStatus
//	GET    /sweeps/{id}                        -> SweepStatus
//	DELETE /sweeps/{id}                        -> SweepStatus     (graceful cancel)
//	GET    /sweeps/{id}/front                  -> FrontSnapshot   (live Pareto/HV)
//	GET    /sweeps/{id}/result                 -> JSONL           (final bytes)
//	POST   /hello              HelloRequest    -> HelloResponse   (worker join)
//	POST   /lease              LeaseRequest    -> LeaseResponse   (work assignment)
//	POST   /results            JSONL lines     -> ResultAck       (?worker=&sweep=&lease=)
//	POST   /heartbeat          HeartbeatRequest -> HeartbeatResponse
//	GET    /status                             -> Status
package coord

import "mpsockit/internal/dse"

// Sweep lifecycle states, as reported in SweepStatus.State.
const (
	// SweepActive is a registered sweep with work outstanding.
	SweepActive = "active"
	// SweepDone is a completed sweep: every point has an accepted
	// result and the final file has been written.
	SweepDone = "done"
	// SweepCancelled is a tenant-cancelled sweep: its leases were
	// reclaimed and its checkpoint removed; late result submissions are
	// acked with Cancelled so workers abandon the work quietly.
	SweepCancelled = "cancelled"
)

// SweepID derives a sweep's registry identity from its provenance
// header: "sw-" plus the expanded point-list hash. The ID is a pure
// function of spec and seed, which makes registration idempotent (a
// retried POST /sweeps lands on the same sweep), lets a worker map a
// locally checkpointed lease file back to its sweep after a
// coordinator restart, and names the sweep's on-disk checkpoint log.
func SweepID(h dse.Header) string { return "sw-" + h.SpecHash }

// RegisterRequest asks the coordinator to adopt a sweep.
type RegisterRequest struct {
	// Spec is the sweep specification (preset or dimension list).
	Spec string `json:"spec"`
	// Seed is the sweep seed; the determinism contract hangs off it.
	Seed uint64 `json:"seed"`
}

// RegisterResponse acknowledges a registration. Registration is
// idempotent on (spec, seed): re-registering an existing sweep returns
// its current status with Created false.
type RegisterResponse struct {
	// Sweep is the registered sweep's status snapshot.
	Sweep SweepStatus `json:"sweep"`
	// Header is the sweep's provenance record (the final file's first
	// line); clients verify their engine against Header.SpecHash.
	Header dse.Header `json:"header"`
	// Created is false when the sweep was already registered.
	Created bool `json:"created"`
}

// HelloRequest announces a worker to the coordinator.
type HelloRequest struct {
	// Worker is the worker's self-chosen identity, used for lease
	// accounting and logs.
	Worker string `json:"worker"`
}

// HelloResponse hands the worker the farm's protocol parameters.
// Sweep identity travels per lease (LeaseResponse.Header), because a
// multi-tenant worker may serve any number of sweeps over its
// lifetime; the worker re-expands and hash-verifies each sweep the
// first time it is leased work from it.
type HelloResponse struct {
	// HeartbeatMS is how often the coordinator expects a heartbeat
	// while a lease is held (a fraction of the lease timeout).
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// Sweeps lists the currently registered sweeps, for logs and
	// dashboards; it is informational, not a work assignment.
	Sweeps []SweepStatus `json:"sweeps,omitempty"`
}

// LeaseRequest asks for a work assignment from any registered sweep.
type LeaseRequest struct {
	// Worker is the requesting worker's identity.
	Worker string `json:"worker"`
}

// Lease is one work assignment: a contiguous point-ID range of one
// sweep plus the deadline discipline. Leases are not exclusive grants
// in the correctness sense — the determinism contract makes double
// evaluation harmless — they are a scheduling tool bounding how long a
// range can sit on a dead or straggling worker.
type Lease struct {
	// Sweep is the registry ID of the sweep the range belongs to.
	Sweep string `json:"sweep"`
	// ID identifies the lease for heartbeats and acks (unique within
	// its sweep).
	ID int64 `json:"id"`
	// Lo is the first point ID of the range (inclusive).
	Lo int `json:"lo"`
	// Hi is one past the last point ID (exclusive).
	Hi int `json:"hi"`
	// DeadlineMS is the lease duration in milliseconds: the worker
	// must submit results or heartbeat within it, or the range is
	// reclaimed and reissued.
	DeadlineMS int64 `json:"deadline_ms"`
}

// Len returns the number of points the lease covers.
func (l Lease) Len() int { return l.Hi - l.Lo }

// LeaseResponse carries a lease, a farm-complete signal, or a back-off
// hint when no work can be granted right now (all remaining ranges
// leased out, no sweeps registered, or the coordinator is draining).
type LeaseResponse struct {
	// Lease is the granted assignment; nil when Done or RetryMS is
	// set instead.
	Lease *Lease `json:"lease,omitempty"`
	// Header is the leased sweep's provenance record. A worker seeing
	// the sweep for the first time re-expands the spec locally and
	// verifies its point-list hash against Header.SpecHash — an
	// engine-drifted worker refuses the sweep instead of poisoning it
	// with conflicting bytes.
	Header *dse.Header `json:"header,omitempty"`
	// Done reports that every registered sweep has finished and the
	// coordinator is a single-shot (boot-sweep) run; the worker should
	// exit. A long-running service never sets it — workers poll.
	Done bool `json:"done,omitempty"`
	// RetryMS asks the worker to poll again after this many
	// milliseconds.
	RetryMS int64 `json:"retry_ms,omitempty"`
}

// ResultAck acknowledges a batch of submitted result lines.
type ResultAck struct {
	// Accepted counts lines that were new.
	Accepted int `json:"accepted"`
	// Duplicates counts byte-identical lines the coordinator already
	// had — the normal aftermath of a reissued lease or a replayed
	// request, not an error.
	Duplicates int `json:"duplicates"`
	// Done reports that every registered sweep is finished on a
	// single-shot coordinator (see LeaseResponse.Done).
	Done bool `json:"done,omitempty"`
	// Cancelled reports that the submission's sweep was cancelled (or
	// never registered): the lines were discarded and the worker
	// should abandon the lease without retrying.
	Cancelled bool `json:"cancelled,omitempty"`
}

// HeartbeatRequest extends a lease's deadline.
type HeartbeatRequest struct {
	// Worker is the heartbeating worker's identity.
	Worker string `json:"worker"`
	// Sweep is the registry ID of the lease's sweep.
	Sweep string `json:"sweep"`
	// Lease is the lease being kept alive.
	Lease int64 `json:"lease"`
}

// HeartbeatResponse reports whether the lease was still live. An
// invalid lease is not fatal for the worker: its range was reclaimed
// (and possibly reissued), but finishing and submitting anyway is
// safe — the lines land as duplicates or fill still-missing points.
type HeartbeatResponse struct {
	// Valid is false when the lease had already expired or closed.
	Valid bool `json:"valid"`
	// Cancelled is true when the lease's sweep was cancelled; the
	// worker should stop evaluating the lease immediately rather than
	// finish work nobody wants.
	Cancelled bool `json:"cancelled,omitempty"`
}

// SweepStatus is one sweep's row in the registry.
type SweepStatus struct {
	// ID is the sweep's registry identity (SweepID of its header).
	ID string `json:"id"`
	// Spec and Seed identify the sweep.
	Spec string `json:"spec"`
	// Seed is the sweep seed.
	Seed uint64 `json:"seed"`
	// SpecHash fingerprints the expanded point list.
	SpecHash string `json:"spec_hash"`
	// State is the lifecycle state: active, done or cancelled.
	State string `json:"state"`
	// Done counts points with an accepted result.
	Done int `json:"done"`
	// Total is the sweep's point count.
	Total int `json:"total"`
	// Duplicates counts byte-identical duplicate lines absorbed.
	Duplicates int `json:"duplicates"`
	// ActiveLeases counts currently outstanding leases of this sweep.
	ActiveLeases int `json:"active_leases"`
	// PendingPoints counts points neither done nor covered by an
	// active lease.
	PendingPoints int `json:"pending_points"`
	// Debt is the sweep's fair-scheduling deficit in EstCost units:
	// how much service the sweep is owed relative to an equal
	// cost-share of all grants while it was runnable. Positive means
	// under-served (the scheduler will favour it), negative means it
	// ran ahead of its share.
	Debt float64 `json:"debt"`
	// CheckpointBytes is the on-disk size of the sweep's checkpoint
	// log (or final file), counted against the coordinator's disk
	// budget.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
}

// FrontSnapshot is the live Pareto/hypervolume view of one sweep's
// accepted results so far (GET /sweeps/{id}/front). Fronts only
// tighten as results arrive, so the snapshot is meaningful the whole
// time the sweep runs.
type FrontSnapshot struct {
	// Sweep is the sweep's registry ID.
	Sweep string `json:"sweep"`
	// Done and Total report progress at snapshot time.
	Done int `json:"done"`
	// Total is the sweep's point count.
	Total int `json:"total"`
	// Complete mirrors Done == Total.
	Complete bool `json:"complete"`
	// Front holds the non-dominated completed results (the union of
	// per-workload Pareto fronts).
	Front []dse.Result `json:"front"`
	// Hypervolumes carries the per-workload front hypervolume
	// indicators over the completed subset.
	Hypervolumes []dse.FrontHV `json:"hypervolumes"`
}

// Status is the coordinator's observable progress snapshot. The
// top-level counters aggregate over every registered sweep; Sweeps
// carries the per-tenant rows.
type Status struct {
	// Spec and Seed identify the boot sweep on a single-shot
	// coordinator; empty on a multi-tenant service.
	Spec string `json:"spec,omitempty"`
	// Seed is the boot sweep's seed.
	Seed uint64 `json:"seed,omitempty"`
	// Done counts points with an accepted result across all sweeps.
	Done int `json:"done"`
	// Total is the point count across all sweeps.
	Total int `json:"total"`
	// Duplicates counts byte-identical duplicate lines absorbed so
	// far (retries, reissues, replays).
	Duplicates int `json:"duplicates"`
	// ActiveLeases counts currently outstanding leases.
	ActiveLeases int `json:"active_leases"`
	// PendingPoints counts points neither done nor covered by an
	// active lease.
	PendingPoints int `json:"pending_points"`
	// Workers counts distinct worker identities currently tracked
	// (departed workers are garbage-collected).
	Workers int `json:"workers"`
	// Complete reports that at least one sweep is registered and every
	// registered sweep has reached a terminal state.
	Complete bool `json:"complete"`
	// Draining reports that the coordinator has stopped granting
	// leases and is waiting for in-flight ones to flush.
	Draining bool `json:"draining,omitempty"`
	// PointsPerSec is the acceptance rate since this coordinator
	// process started (resumed checkpoint points excluded).
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	// ETASeconds estimates the remaining wall-clock time, weighting
	// points by estimated evaluation cost rather than counting them
	// equally; zero until enough work has been accepted to form a rate.
	ETASeconds float64 `json:"eta_s,omitempty"`
	// Sweeps is the per-sweep table, in registration order.
	Sweeps []SweepStatus `json:"sweeps,omitempty"`
	// WorkerInfo is the per-worker table, sorted by name.
	WorkerInfo []WorkerStatus `json:"worker_info,omitempty"`
}

// WorkerStatus is one worker's row in the Status table.
type WorkerStatus struct {
	// Name is the worker's self-chosen identity.
	Name string `json:"name"`
	// Accepted counts this worker's result lines accepted as new.
	Accepted int64 `json:"accepted"`
	// LastSeenAgo is seconds since the worker was last heard from
	// (hello, lease, heartbeat or results).
	LastSeenAgo float64 `json:"last_seen_ago_s"`
	// Affinity is the sweep the worker was last granted work from;
	// the scheduler keeps the worker there (warm caches) until another
	// sweep's fairness debt exceeds the rebalance threshold.
	Affinity string `json:"affinity,omitempty"`
}
