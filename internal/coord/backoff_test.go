package coord

import (
	"testing"
	"time"
)

// TestBackoffReplay pins the determinism contract: the delay sequence
// is a pure function of the seed and the call pattern, so a retry
// schedule observed in a chaos run replays exactly.
func TestBackoffReplay(t *testing.T) {
	pattern := func(b *Backoff) []time.Duration {
		var out []time.Duration
		for i := 0; i < 5; i++ {
			out = append(out, b.Next())
		}
		b.Reset()
		for i := 0; i < 3; i++ {
			out = append(out, b.Next())
		}
		return out
	}
	a := pattern(NewBackoff(50*time.Millisecond, 2*time.Second, 42))
	b := pattern(NewBackoff(50*time.Millisecond, 2*time.Second, 42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := pattern(NewBackoff(50*time.Millisecond, 2*time.Second, 43))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

// TestBackoffBounds checks each delay lands in [d/2, d) of the capped
// exponential envelope.
func TestBackoffBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 160*time.Millisecond
	b := NewBackoff(base, max, 7)
	envelope := base
	for i := 0; i < 12; i++ {
		d := b.Next()
		if d < envelope/2 || d >= envelope {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, envelope/2, envelope)
		}
		if envelope < max {
			envelope *= 2
			if envelope > max {
				envelope = max
			}
		}
	}
	if got := b.Attempt(); got != 12 {
		t.Fatalf("Attempt() = %d, want 12", got)
	}
	b.Reset()
	if d := b.Next(); d >= base {
		t.Fatalf("after Reset, delay %v did not rewind to the %v envelope", d, base)
	}
}

// TestBackoffDefaults checks the zero-value guards.
func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if b.Base != 50*time.Millisecond {
		t.Fatalf("default base = %v", b.Base)
	}
	if b.Max < b.Base {
		t.Fatalf("max %v below base %v", b.Max, b.Base)
	}
}
