package coord

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	"mpsockit/internal/dse"
)

// sweep is the server-side record of one tenant sweep. Every mutable
// field is guarded by the owning Server's mutex; the sweep carries its
// own accumulator, lease table and checkpoint log so tenants share
// nothing but the scheduler — a cancelled or crashed-out sweep cannot
// corrupt a neighbour.
type sweep struct {
	id        string
	header    dse.Header
	points    []dse.Point
	costs     []float64
	totalCost float64

	acc   *dse.Accumulator
	table *leaseTable
	// state is SweepActive, SweepDone or SweepCancelled.
	state      string
	registered time.Time
	finished   time.Time

	// ckptPath is the sweep's on-disk JSONL log ("" disables
	// persistence). While active it is an append-only log of accepted
	// lines in acceptance order; when managed, completion atomically
	// rewrites it into the canonical point-ordered final bytes and
	// cancellation removes it.
	ckptPath  string
	ckptFile  *os.File
	ckpt      *bufio.Writer
	ckptBytes int64
	// managed marks sweeps whose file lifecycle the service owns
	// (registry sweeps living in the checkpoint directory), as opposed
	// to a legacy boot sweep whose caller-named checkpoint is left
	// exactly as the single-sweep coordinator always left it.
	managed bool

	// debt is the fair-scheduling deficit in EstCost units (sched.go).
	debt float64

	// frontAt is the Done count at the last live-front log line.
	// baseDone/baseCost anchor rates: work resumed from the checkpoint
	// is not claimed as this process's progress.
	frontAt  int
	baseDone int
	baseCost float64

	// done closes when the sweep reaches a terminal state.
	done chan struct{}
}

// newSweep builds the in-memory record for an expanded sweep. The
// caller attaches the lease table (it needs server-level knobs) and
// the checkpoint log.
func newSweep(header dse.Header, points []dse.Point, now time.Time) *sweep {
	sw := &sweep{
		id:         SweepID(header),
		header:     header,
		points:     points,
		costs:      make([]float64, len(points)),
		acc:        dse.NewAccumulator(points),
		state:      SweepActive,
		registered: now,
		done:       make(chan struct{}),
	}
	for i, p := range points {
		sw.costs[i] = dse.EstCost(p)
		sw.totalCost += sw.costs[i]
	}
	return sw
}

// resumeLog re-accepts the sweep's checkpoint log from disk. Torn
// tails are salvaged by the reader; a header that disagrees with the
// sweep's identity is an error.
func (sw *sweep) resumeLog() error {
	results, raw, err := dse.ReadResultLog(sw.ckptPath, sw.header)
	if err != nil {
		return fmt.Errorf("coord: resume %s: %w", sw.ckptPath, err)
	}
	for i := range results {
		if _, err := sw.acc.AddResult(results[i], raw[i]); err != nil {
			return fmt.Errorf("coord: resume %s: %w", sw.ckptPath, err)
		}
	}
	return nil
}

// openCheckpoint (re)writes the sweep's log cleanly — header plus the
// currently accepted lines — and opens it for appending. The rewrite
// is atomic (temp file + fsync + rename), so a crash mid-rewrite
// leaves the previous log intact instead of a torn mid-file line the
// salvage path (built for torn tails) would refuse; and a salvaged
// torn tail never remains in a file about to be appended to.
func (sw *sweep) openCheckpoint() error {
	if sw.ckptPath == "" {
		return nil
	}
	err := dse.AtomicWriteFile(sw.ckptPath, func(w io.Writer) error {
		if err := dse.WriteHeader(w, sw.header); err != nil {
			return err
		}
		for _, r := range sw.acc.Completed() {
			if _, err := w.Write(sw.acc.Raw(r.Point.ID)); err != nil {
				return err
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(sw.ckptPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	sw.ckptFile = f
	sw.ckpt = bufio.NewWriter(f)
	sw.ckptBytes = st.Size()
	return nil
}

// appendCheckpoint writes the accepted line for point id to the log.
func (sw *sweep) appendCheckpoint(id int) error {
	if sw.ckpt == nil {
		return nil
	}
	line := sw.acc.Raw(id)
	if line == nil {
		return fmt.Errorf("coord: no accepted line for point %d", id)
	}
	if _, err := sw.ckpt.Write(line); err != nil {
		return err
	}
	_, err := sw.ckpt.Write([]byte{'\n'})
	sw.ckptBytes += int64(len(line)) + 1
	return err
}

// flushCheckpoint pushes buffered log lines to the OS.
func (sw *sweep) flushCheckpoint() error {
	if sw.ckpt == nil {
		return nil
	}
	return sw.ckpt.Flush()
}

// closeCheckpoint flushes and closes the log file handle.
func (sw *sweep) closeCheckpoint() error {
	if sw.ckpt == nil {
		return nil
	}
	ferr := sw.ckpt.Flush()
	cerr := sw.ckptFile.Close()
	sw.ckpt, sw.ckptFile = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// finalizeFile atomically replaces a managed sweep's append-order log
// with the canonical final bytes: header plus every accepted line in
// point-ID order — byte-identical to a fault-free standalone run, and
// exactly what GET /sweeps/{id}/result serves. Because the bytes are
// deterministic, re-finalizing after a crash-and-restart is a no-op
// rewrite of identical content.
func (sw *sweep) finalizeFile() error {
	if !sw.managed || sw.ckptPath == "" {
		return nil
	}
	if err := dse.AtomicWriteFile(sw.ckptPath, func(w io.Writer) error {
		_, err := sw.acc.WriteTo(w, sw.header)
		return err
	}); err != nil {
		return err
	}
	if st, err := os.Stat(sw.ckptPath); err == nil {
		sw.ckptBytes = st.Size()
	}
	return nil
}

// removeFile deletes the sweep's on-disk log (cancellation reclaims
// its disk budget). Missing files are fine.
func (sw *sweep) removeFile() {
	if sw.ckptPath != "" {
		os.Remove(sw.ckptPath)
	}
	sw.ckptBytes = 0
}

// remainingCost sums the EstCost of points without an accepted result.
func (sw *sweep) remainingCost() float64 {
	rem := 0.0
	for i := range sw.points {
		if !sw.acc.Has(i) {
			rem += sw.costs[i]
		}
	}
	return rem
}

// status snapshots the sweep's registry row. Caller holds the server
// mutex.
func (sw *sweep) status() SweepStatus {
	return SweepStatus{
		ID:              sw.id,
		Spec:            sw.header.Spec,
		Seed:            sw.header.Seed,
		SpecHash:        sw.header.SpecHash,
		State:           sw.state,
		Done:            sw.acc.Done(),
		Total:           sw.acc.Total(),
		Duplicates:      sw.acc.Duplicates(),
		ActiveLeases:    len(sw.table.active),
		PendingPoints:   sw.table.pendingPoints(),
		Debt:            sw.debt,
		CheckpointBytes: sw.ckptBytes,
	}
}
