package coord

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpsockit/internal/coord/chaos"
)

// chaosWorkerCfg builds a fault-injected worker config for the
// multi-tenant chaos runs.
func chaosWorkerCfg(urlStr, id, dir string, tr http.RoundTripper) WorkerConfig {
	return WorkerConfig{
		URL:           urlStr,
		ID:            id,
		FlushPoints:   3,
		Workers:       1,
		Client:        &http.Client{Transport: tr},
		CheckpointDir: dir,
		MaxAttempts:   5,
		BackoffBase:   time.Millisecond,
		BackoffMax:    30 * time.Millisecond,
	}
}

// TestChaosMultiTenantFaults layers tenant-level faults on the
// transport chaos: three sweeps share one farm, part of the worker
// fleet dies mid-lease and never comes back (its leases expire and
// rebalance to survivors), and one tenant is cancelled mid-run. The
// surviving tenants must complete byte-identical to their fault-free
// standalone runs — a cancel or a fleet death in one sweep never
// poisons another.
func TestChaosMultiTenantFaults(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		LeaseTimeout:  400 * time.Millisecond,
		Chunks:        8,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	h := srv.Handler()
	_, rrA := registerSweep(t, h, "smoke", 1)
	_, rrB := registerSweep(t, h, "smoke", 2)
	_, rrC := registerSweep(t, h, "smoke", 3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var transports []*chaos.Transport

	// Two workers are doomed: they die mid-lease (KillSwitch) with no
	// respawn manager. Their leases expire and rebalance.
	for i := 0; i < 2; i++ {
		tr := chaos.NewTransport(chaos.Policy{
			Seed: 31<<8 | uint64(i), Drop: 0.15, Dup: 0.15,
			Delay: 0.25, MaxDelay: 2 * time.Millisecond,
		}, nil)
		transports = append(transports, tr)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kctx, kill := context.WithCancel(ctx)
			defer kill()
			cfg := chaosWorkerCfg(hs.URL, fmt.Sprintf("doomed%d", i), dir, tr)
			cfg.OnResult = chaos.KillSwitch(4+i, kill)
			NewWorker(cfg).Run(kctx)
		}(i)
	}
	// Three survivors with respawn managers carry the farm.
	for i := 0; i < 3; i++ {
		tr := chaos.NewTransport(chaos.Policy{
			Seed: 47<<8 | uint64(i), Drop: 0.15, Dup: 0.15,
			Delay: 0.25, MaxDelay: 2 * time.Millisecond,
			StallHeartbeats: i%3 == 0,
		}, nil)
		transports = append(transports, tr)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", i)
			for incarnation := 0; ctx.Err() == nil; incarnation++ {
				if incarnation > 100 {
					t.Errorf("%s: still respawning after %d incarnations", id, incarnation)
					return
				}
				NewWorker(chaosWorkerCfg(hs.URL, id, dir, tr)).Run(ctx)
			}
		}(i)
	}

	// Cancel tenant C mid-run: wait for it to hold a lease (or finish
	// under us — cancel is legal either way), then DELETE.
	idC := rrC.Sweep.ID
	waitUntil(t, 30*time.Second, func() bool {
		var row SweepStatus
		if code, _ := doJSON(t, h, http.MethodGet, "/sweeps/"+idC, nil, &row); code != http.StatusOK {
			return true // tombstone already expired
		}
		return row.ActiveLeases > 0 || row.Done > 0 || row.State == SweepDone
	})
	var cRow SweepStatus
	if code, _ := doJSON(t, h, http.MethodDelete, "/sweeps/"+idC, nil, &cRow); code != http.StatusOK {
		t.Fatalf("cancel C: HTTP %d", code)
	}
	if cRow.State != SweepCancelled || cRow.ActiveLeases != 0 {
		t.Fatalf("C after cancel: %+v", cRow)
	}

	// A and B must drain to completion despite the dead fleet, the
	// cancelled tenant and the transport chaos.
	waitUntil(t, 60*time.Second, func() bool {
		for _, id := range []string{rrA.Sweep.ID, rrB.Sweep.ID} {
			var row SweepStatus
			doJSON(t, h, http.MethodGet, "/sweeps/"+id, nil, &row)
			if row.State != SweepDone {
				return false
			}
		}
		return true
	})
	cancel()
	wg.Wait()

	faults := 0
	for _, tr := range transports {
		faults += tr.Faults()
	}
	if faults == 0 {
		t.Fatal("chaos policy injected no faults; the run proved nothing")
	}
	t.Logf("multi-tenant chaos: %d faults injected, C cancelled, A and B complete", faults)
	if !bytes.Equal(fetchResult(t, h, rrA.Sweep.ID), referenceBytes(t, "smoke", 1)) {
		t.Fatal("surviving sweep A differs from its standalone run")
	}
	if !bytes.Equal(fetchResult(t, h, rrB.Sweep.ID), referenceBytes(t, "smoke", 2)) {
		t.Fatal("surviving sweep B differs from its standalone run")
	}
}

// retarget rewrites every request's host to the currently-published
// coordinator address, so a worker fleet survives the coordinator
// process being replaced at a new port mid-run.
type retarget struct {
	base http.RoundTripper
	host atomic.Value // string
}

func (rt *retarget) RoundTrip(req *http.Request) (*http.Response, error) {
	r2 := req.Clone(req.Context())
	r2.URL.Host = rt.host.Load().(string)
	return rt.base.RoundTrip(r2)
}

// TestChaosCoordinatorKillRestart is whole-farm crash recovery under
// load: a coordinator with two active sweeps is killed without any
// graceful shutdown (torn runtime state, only the flushed per-sweep
// checkpoint logs survive), a fresh coordinator resumes from the same
// directory, the worker fleet re-targets it, and both sweeps complete
// byte-identical to fault-free standalone runs.
func TestChaosCoordinatorKillRestart(t *testing.T) {
	dir := t.TempDir()
	workerDir := t.TempDir()
	newCoord := func() (*Server, *httptest.Server) {
		srv, err := New(Config{
			LeaseTimeout:  400 * time.Millisecond,
			Chunks:        8,
			CheckpointDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv.Handler())
	}
	srv1, hs1 := newCoord()
	_, rrA := registerSweep(t, srv1.Handler(), "smoke", 1)
	_, rrB := registerSweep(t, srv1.Handler(), "smoke", 2)

	u, err := url.Parse(hs1.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt := &retarget{base: http.DefaultTransport}
	rt.host.Store(u.Host)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", i)
			for incarnation := 0; ctx.Err() == nil; incarnation++ {
				if incarnation > 200 {
					t.Errorf("%s: still respawning after %d incarnations", id, incarnation)
					return
				}
				// The URL's host is rewritten per-request by retarget, so
				// the same config follows the coordinator across restarts.
				NewWorker(chaosWorkerCfg(hs1.URL, id, workerDir, rt)).Run(ctx)
			}
		}(i)
	}

	// Let the farm make real progress, then kill the coordinator with
	// no drain: close its listener and abandon the process state.
	waitUntil(t, 30*time.Second, func() bool {
		st := srv1.Status()
		return st.Done >= 4
	})
	killedAt := srv1.Status().Done
	hs1.CloseClientConnections()
	hs1.Close()

	// Restart from the same checkpoint directory and re-point the fleet.
	srv2, hs2 := newCoord()
	defer hs2.Close()
	defer srv2.Close()
	resumed := srv2.Status()
	if len(resumed.Sweeps) != 2 {
		t.Fatalf("restart recovered %d sweeps, want 2", len(resumed.Sweeps))
	}
	if resumed.Done == 0 {
		t.Fatalf("restart resumed nothing despite %d points checkpointed", killedAt)
	}
	u2, err := url.Parse(hs2.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt.host.Store(u2.Host)

	h2 := srv2.Handler()
	waitUntil(t, 60*time.Second, func() bool {
		for _, row := range listSweeps(t, h2) {
			if row.State != SweepDone {
				return false
			}
		}
		return true
	})
	cancel()
	wg.Wait()
	t.Logf("killed coordinator at %d points, resumed %d, both sweeps completed", killedAt, resumed.Done)
	if !bytes.Equal(fetchResult(t, h2, rrA.Sweep.ID), referenceBytes(t, "smoke", 1)) {
		t.Fatal("sweep A differs after coordinator kill+restart")
	}
	if !bytes.Equal(fetchResult(t, h2, rrB.Sweep.ID), referenceBytes(t, "smoke", 2)) {
		t.Fatal("sweep B differs after coordinator kill+restart")
	}
}
