package coord

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mpsockit/internal/coord/chaos"
)

// TestChaosSweepByteIdentity is the PR's headline guarantee: the
// default sweep, coordinated across 8 workers under randomized chaos
// — dropped acks, duplicated requests, injected latency, stalled
// heartbeats, workers killed mid-lease and respawned — produces a
// final file byte-identical to a fault-free single-worker run. In
// -short mode the smoke sweep stands in for the default one.
func TestChaosSweepByteIdentity(t *testing.T) {
	spec := "default"
	if testing.Short() {
		spec = "smoke"
	}
	for _, chaosSeed := range []uint64{7, 2026} {
		chaosSeed := chaosSeed
		t.Run(fmt.Sprintf("seed%d", chaosSeed), func(t *testing.T) {
			runChaosSweep(t, spec, 1, chaosSeed, 8)
		})
	}
}

// runChaosSweep coordinates one sweep under fault injection and
// asserts byte identity against the fault-free reference.
func runChaosSweep(t *testing.T, spec string, seed, chaosSeed uint64, workers int) {
	t.Helper()
	ref := referenceBytes(t, spec, seed)
	dir := t.TempDir()
	srv, err := New(Config{
		Spec:           spec,
		Seed:           seed,
		LeaseTimeout:   400 * time.Millisecond,
		Chunks:         4 * workers,
		CheckpointPath: filepath.Join(dir, "coord.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	transports := make([]*chaos.Transport, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		// Per-worker fault mix, all derived from the chaos seed: every
		// worker drops and duplicates, a third also stalls heartbeats
		// (so live workers lose leases and late-ack), and early
		// incarnations get killed mid-lease.
		tr := chaos.NewTransport(chaos.Policy{
			Seed:            chaosSeed<<8 | uint64(i),
			Drop:            0.15,
			Dup:             0.15,
			Delay:           0.25,
			MaxDelay:        2 * time.Millisecond,
			StallHeartbeats: i%3 == 0,
		}, nil)
		transports[i] = tr
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", i)
			for incarnation := 0; ; incarnation++ {
				select {
				case <-srv.Done():
					return
				default:
				}
				if incarnation > 100 {
					t.Errorf("%s: still respawning after %d incarnations", id, incarnation)
					return
				}
				ctx, cancel := context.WithCancel(context.Background())
				cfg := WorkerConfig{
					URL:           hs.URL,
					ID:            id,
					FlushPoints:   3,
					Workers:       1,
					Client:        &http.Client{Transport: tr},
					CheckpointDir: dir,
					MaxAttempts:   5,
					BackoffBase:   time.Millisecond,
					BackoffMax:    30 * time.Millisecond,
				}
				if incarnation < 2 {
					// Die mid-lease with unsubmitted results; the
					// respawn manager (this loop) brings the worker
					// back, as a farm supervisor would.
					killAfter := 4 + int((chaosSeed+uint64(i))%5)
					cfg.OnResult = chaos.KillSwitch(killAfter, cancel)
				}
				err := NewWorker(cfg).Run(ctx)
				cancel()
				if err == nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()

	select {
	case <-srv.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("sweep did not complete: %+v", srv.Status())
	}
	faults := 0
	for _, tr := range transports {
		faults += tr.Faults()
	}
	if faults == 0 {
		t.Fatal("chaos policy injected no faults; the run proved nothing")
	}
	st := srv.Status()
	t.Logf("chaos seed %d: %d points, %d duplicate lines absorbed, %d faults injected",
		chaosSeed, st.Done, st.Duplicates, faults)

	var got bytes.Buffer
	if err := srv.WriteFinal(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), ref) {
		t.Fatalf("chaos run output differs from the fault-free single-worker run (%d vs %d bytes)", got.Len(), len(ref))
	}
}

// TestChaosTransportDeterminism pins the chaos replay contract: the
// same policy seed over the same request sequence injects the same
// faults.
func TestChaosTransportDeterminism(t *testing.T) {
	sequence := func(seed uint64) (string, int) {
		ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("{}"))
		})
		hs := httptest.NewServer(ok)
		defer hs.Close()
		tr := chaos.NewTransport(chaos.Policy{
			Seed: seed, Drop: 0.3, Dup: 0.3, StallHeartbeats: true,
		}, nil)
		client := &http.Client{Transport: tr}
		var pattern bytes.Buffer
		for i := 0; i < 40; i++ {
			path := "/results"
			if i%5 == 0 {
				path = "/heartbeat"
			}
			_, err := client.Post(hs.URL+path, "application/json", bytes.NewReader([]byte("{}")))
			if err != nil {
				pattern.WriteByte('x')
			} else {
				pattern.WriteByte('.')
			}
		}
		return pattern.String(), tr.Faults()
	}
	p1, f1 := sequence(11)
	p2, f2 := sequence(11)
	if p1 != p2 || f1 != f2 {
		t.Fatalf("same seed diverged:\n%s (%d faults)\n%s (%d faults)", p1, f1, p2, f2)
	}
	if f1 == 0 {
		t.Fatal("no faults fired at p=0.3 over 40 requests")
	}
	p3, _ := sequence(12)
	if p1 == p3 {
		t.Fatal("different seeds produced an identical fault pattern")
	}
}
