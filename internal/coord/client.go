package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"mpsockit/internal/dse"
	"mpsockit/internal/obs"
)

// ErrConflict is returned when the coordinator rejects submitted
// result bytes as conflicting with an already-accepted line. This is
// never a transient fault — it means this worker's engine produces
// different bytes than the fleet's, and retrying would resubmit the
// same poison — so the worker stops instead of backing off.
var ErrConflict = errors.New("coord: coordinator rejected results as conflicting")

// errSweepCancelled marks a lease abandoned because its sweep was
// cancelled mid-flight; the worker drops the work and asks for the
// next lease.
var errSweepCancelled = errors.New("coord: sweep cancelled")

// WorkerConfig parameterizes a sweep worker.
type WorkerConfig struct {
	// URL is the coordinator's base URL, e.g. http://host:9090.
	URL string
	// ID is the worker's identity; it seeds the backoff jitter and
	// names the local fallback checkpoints. Defaults to host:pid.
	ID string
	// FlushPoints is how many completed points accumulate before a
	// partial submit, bounding work lost to a worker crash. Default 8.
	FlushPoints int
	// Client is the HTTP client; nil means http.DefaultClient. Chaos
	// tests inject a fault-wrapped transport here.
	Client *http.Client
	// Log receives progress lines; nil discards them.
	Log *log.Logger
	// CheckpointDir, when non-empty, is where the worker saves a
	// shard-form checkpoint of a finished lease it could not deliver
	// because the coordinator vanished. Rejoining resubmits and
	// removes it.
	CheckpointDir string
	// MaxAttempts bounds consecutive failed attempts of any one
	// request before the worker gives up on the coordinator (0 means
	// 10). Between attempts the worker sleeps the backoff schedule.
	MaxAttempts int
	// Backoff bounds the retry delays; zero values default to
	// 50ms..2s.
	BackoffBase, BackoffMax time.Duration
	// OnResult, when non-nil, observes every locally evaluated result
	// before submission. Chaos tests use it to kill a worker
	// mid-lease (by cancelling the worker's context).
	OnResult func(dse.Result)
	// Workers sizes the evaluation pool; <= 0 means GOMAXPROCS.
	Workers int
	// Obs, when non-zero, instruments the evaluation pool (attached to
	// every engine the worker runs). Telemetry never changes result
	// bytes.
	Obs dse.EvalObs
	// Tracer, when set, records lease/eval/flush spans.
	Tracer *obs.Tracer
}

// workerSweep is the worker's cached, hash-verified expansion of one
// tenant sweep — the point list it slices leases out of.
type workerSweep struct {
	header dse.Header
	points []dse.Point
}

// Worker evaluates leased point ranges against a coordinator until
// the farm completes (single-shot coordinators only), the context is
// cancelled, or the coordinator stays unreachable past the retry
// budget. A multi-tenant worker serves whatever sweeps it is leased
// work from, verifying and caching each sweep's expansion on first
// contact.
type Worker struct {
	cfg     WorkerConfig
	client  *http.Client
	log     *log.Logger
	backoff *Backoff
	sweeps  map[string]*workerSweep
	hbEvery time.Duration
	// done is set when a result ack reports farm completion, so the
	// worker exits without needing one more /lease round trip (the
	// coordinator may already be shutting down by then).
	done bool

	// Submitted and Duplicate tally the coordinator's acks, exposed
	// for tests and exit logs.
	Submitted, Duplicate int
}

// NewWorker builds a worker for the given coordinator.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.ID == "" {
		host, _ := os.Hostname()
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.FlushPoints <= 0 {
		cfg.FlushPoints = 8
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Log == nil {
		cfg.Log = log.New(io.Discard, "", 0)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.ID))
	return &Worker{
		cfg:     cfg,
		client:  cfg.Client,
		log:     cfg.Log,
		backoff: NewBackoff(cfg.BackoffBase, cfg.BackoffMax, h.Sum64()),
		sweeps:  make(map[string]*workerSweep),
	}
}

// Run joins the coordinator and works leases until the farm is done.
// It returns nil on farm completion, ctx.Err() on cancellation, and
// an error when the coordinator is unreachable past the retry budget
// or rejects this worker's results as conflicting.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.hello(ctx); err != nil {
		return err
	}
	if err := w.resubmitCheckpoints(ctx); err != nil {
		return err
	}
	for {
		if w.done {
			w.log.Printf("%s: farm complete (%d submitted, %d duplicates)", w.cfg.ID, w.Submitted, w.Duplicate)
			return nil
		}
		var lr LeaseResponse
		if err := w.call(ctx, "/lease", LeaseRequest{Worker: w.cfg.ID}, &lr); err != nil {
			return err
		}
		switch {
		case lr.Done:
			w.log.Printf("%s: farm complete (%d submitted, %d duplicates)", w.cfg.ID, w.Submitted, w.Duplicate)
			return nil
		case lr.Lease == nil:
			delay := time.Duration(lr.RetryMS) * time.Millisecond
			if delay <= 0 {
				delay = 200 * time.Millisecond
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return err
			}
		default:
			sw, err := w.resolveSweep(*lr.Lease, lr.Header)
			if err != nil {
				return err
			}
			if err := w.workLease(ctx, sw, *lr.Lease); err != nil {
				if errors.Is(err, errSweepCancelled) {
					continue
				}
				return err
			}
		}
	}
}

// hello announces the worker and picks up the farm's heartbeat cadence.
func (w *Worker) hello(ctx context.Context) error {
	var hr HelloResponse
	if err := w.call(ctx, "/hello", HelloRequest{Worker: w.cfg.ID}, &hr); err != nil {
		return err
	}
	w.hbEvery = time.Duration(hr.HeartbeatMS) * time.Millisecond
	if w.hbEvery <= 0 {
		w.hbEvery = time.Second
	}
	w.log.Printf("%s: joined farm (%d registered sweep(s))", w.cfg.ID, len(hr.Sweeps))
	return nil
}

// resolveSweep returns the worker's verified expansion of the leased
// sweep, building it on first contact: the spec from the lease header
// is re-expanded locally and the point-list hash compared against the
// coordinator's — a drifted engine refuses the sweep here, before it
// can submit a single conflicting line. The cache makes affinity pay
// off: repeat leases of the same sweep skip straight to evaluation.
func (w *Worker) resolveSweep(l Lease, h *dse.Header) (*workerSweep, error) {
	if sw, ok := w.sweeps[l.Sweep]; ok {
		return sw, nil
	}
	if h == nil {
		return nil, fmt.Errorf("coord: lease for unknown sweep %s carried no header", l.Sweep)
	}
	spec, err := dse.ParseSweep(h.Spec, h.Seed)
	if err != nil {
		return nil, fmt.Errorf("coord: sweep %s spec: %w", l.Sweep, err)
	}
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	local := dse.NewHeader(h.Spec, h.Seed, points, nil)
	if local.SpecHash != h.SpecHash {
		return nil, fmt.Errorf("coord: sweep %s spec hash mismatch (coordinator %s, local %s): engine drift, refusing sweep",
			l.Sweep, h.SpecHash, local.SpecHash)
	}
	sw := &workerSweep{header: *h, points: points}
	w.sweeps[l.Sweep] = sw
	w.log.Printf("%s: joined sweep %s: %q seed %d (%d points)", w.cfg.ID, l.Sweep, h.Spec, h.Seed, len(points))
	return sw, nil
}

// workLease evaluates the leased range, submitting partial batches
// every FlushPoints completed points and heartbeating in the
// background. A Cancelled ack or heartbeat aborts the evaluation and
// returns errSweepCancelled — the sweep's tenant withdrew it, so the
// remaining work is dropped, not delivered. If the coordinator
// vanishes mid-lease the worker finishes evaluating, checkpoints the
// undelivered lines locally, and returns the transport error so the
// caller can rejoin later.
func (w *Worker) workLease(ctx context.Context, sw *workerSweep, l Lease) error {
	w.log.Printf("%s: lease %s/%d [%d,%d)", w.cfg.ID, l.Sweep, l.ID, l.Lo, l.Hi)
	// The lease span sits on the coordination row (tid -1), above the
	// per-worker eval rows the engine emits.
	if w.cfg.Tracer != nil {
		leaseStart := time.Now()
		defer func() {
			w.cfg.Tracer.Span("lease", "coord", -1, leaseStart, time.Since(leaseStart),
				obs.Arg{Key: "lease", Val: l.ID},
				obs.Arg{Key: "lo", Val: int64(l.Lo)},
				obs.Arg{Key: "hi", Val: int64(l.Hi)})
		}()
	}
	// leaseCtx aborts the evaluation early on cancellation; cancelled
	// distinguishes that from the caller's ctx ending.
	leaseCtx, stopLease := context.WithCancel(ctx)
	defer stopLease()
	var cancelled atomic.Bool
	abandon := func() {
		cancelled.Store(true)
		stopLease()
	}
	go w.heartbeatLoop(leaseCtx, l, abandon)

	var pending bytes.Buffer
	pendingPoints := 0
	flush := func() error {
		if pendingPoints == 0 {
			return nil
		}
		ack, err := w.submit(ctx, l.Sweep, l.ID, pending.Bytes())
		if err != nil {
			return err
		}
		if ack.Cancelled {
			abandon()
			return errSweepCancelled
		}
		pending.Reset()
		pendingPoints = 0
		return nil
	}

	var evalErr error
	eng := dse.Engine{
		Workers: w.cfg.Workers,
		Obs:     w.cfg.Obs,
		Tracer:  w.cfg.Tracer,
		// OnResult runs on the engine's collector goroutine, in point
		// order — so pending accumulates the exact bytes a standalone
		// run would write for this range.
		OnResult: func(r dse.Result) {
			if w.cfg.OnResult != nil {
				w.cfg.OnResult(r)
			}
			if err := dse.WriteResult(&pending, r); err != nil && evalErr == nil {
				evalErr = err
				return
			}
			pendingPoints++
			if pendingPoints >= w.cfg.FlushPoints && evalErr == nil {
				if err := flush(); err != nil {
					// Keep evaluating: the lease is already paid for
					// and the undelivered lines checkpoint locally
					// below. Only remember the first delivery failure.
					evalErr = err
				}
			}
		},
	}
	eng.RunContext(leaseCtx, sw.points[l.Lo:l.Hi])
	if cancelled.Load() || errors.Is(evalErr, errSweepCancelled) {
		w.log.Printf("%s: lease %s/%d abandoned: sweep cancelled", w.cfg.ID, l.Sweep, l.ID)
		return errSweepCancelled
	}
	if evalErr == nil {
		evalErr = flush()
	}
	if evalErr != nil {
		if errors.Is(evalErr, ErrConflict) || errors.Is(evalErr, errSweepCancelled) || ctx.Err() != nil {
			return evalErr
		}
		// Coordinator vanished: save what we could not deliver in
		// shard-file form and surface the error.
		if err := w.checkpointLocal(sw, l, pending.Bytes()); err != nil {
			w.log.Printf("%s: local checkpoint failed: %v", w.cfg.ID, err)
		}
		return evalErr
	}
	return nil
}

// heartbeatLoop keeps the lease alive while evaluation runs. Transport
// failures are ignored — a missed heartbeat at worst gets the range
// reissued, and duplicated evaluation is harmless by construction —
// but a Cancelled verdict aborts the lease via abandon.
func (w *Worker) heartbeatLoop(ctx context.Context, l Lease, abandon func()) {
	t := time.NewTicker(w.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var hr HeartbeatResponse
			if err := w.callOnce(ctx, "/heartbeat", HeartbeatRequest{Worker: w.cfg.ID, Sweep: l.Sweep, Lease: l.ID}, &hr); err == nil && hr.Cancelled {
				abandon()
				return
			}
		}
	}
}

// submit posts a JSONL batch for one sweep, retrying transient
// failures with backoff. A 409 (conflict) maps to ErrConflict and is
// not retried; a Cancelled ack is returned for the caller to act on.
func (w *Worker) submit(ctx context.Context, sweepID string, leaseID int64, lines []byte) (ResultAck, error) {
	url := fmt.Sprintf("%s/results?worker=%s&sweep=%s&lease=%d", w.cfg.URL, w.cfg.ID, sweepID, leaseID)
	if w.cfg.Tracer != nil {
		flushStart := time.Now()
		defer func() {
			w.cfg.Tracer.Span("flush", "coord", -1, flushStart, time.Since(flushStart),
				obs.Arg{Key: "lease", Val: leaseID},
				obs.Arg{Key: "bytes", Val: int64(len(lines))})
		}()
	}
	var lastErr error
	w.backoff.Reset()
	for attempt := 0; attempt < w.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return ResultAck{}, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(lines))
		if err != nil {
			return ResultAck{}, err
		}
		req.Header.Set("Content-Type", "application/jsonl")
		resp, err := w.client.Do(req)
		if err == nil {
			ack, aerr := decodeAck(resp)
			if aerr == nil {
				w.Submitted += ack.Accepted
				w.Duplicate += ack.Duplicates
				if ack.Done {
					w.done = true
				}
				return ack, nil
			}
			if errors.Is(aerr, ErrConflict) {
				return ResultAck{}, aerr
			}
			err = aerr
		}
		lastErr = err
		if serr := sleepCtx(ctx, w.backoff.Next()); serr != nil {
			return ResultAck{}, serr
		}
	}
	return ResultAck{}, fmt.Errorf("coord: submitting results after %d attempts: %w", w.cfg.MaxAttempts, lastErr)
}

// decodeAck reads a /results response, mapping HTTP status to error
// class.
func decodeAck(resp *http.Response) (ResultAck, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return ResultAck{}, err
	}
	switch {
	case resp.StatusCode == http.StatusConflict:
		return ResultAck{}, fmt.Errorf("%w: %s", ErrConflict, bytes.TrimSpace(body))
	case resp.StatusCode != http.StatusOK:
		return ResultAck{}, fmt.Errorf("coord: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var ack ResultAck
	if err := json.Unmarshal(body, &ack); err != nil {
		return ResultAck{}, fmt.Errorf("coord: decoding ack: %w", err)
	}
	return ack, nil
}

// call posts a JSON request and decodes a JSON response, retrying
// transient failures with the worker's backoff schedule.
func (w *Worker) call(ctx context.Context, path string, in, out any) error {
	var lastErr error
	w.backoff.Reset()
	for attempt := 0; attempt < w.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = w.callOnce(ctx, path, in, out)
		if lastErr == nil {
			return nil
		}
		if serr := sleepCtx(ctx, w.backoff.Next()); serr != nil {
			return serr
		}
	}
	return fmt.Errorf("coord: %s after %d attempts: %w", path, w.cfg.MaxAttempts, lastErr)
}

// callOnce is a single JSON request/response round trip.
func (w *Worker) callOnce(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coord: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}

// checkpointLocal saves undelivered result lines as a shard file so a
// later rejoin (this process or a fresh one pointed at the same
// directory) can resubmit them without re-evaluating. The file name
// carries the sweep ID so resubmission can route the lines to the
// right tenant.
func (w *Worker) checkpointLocal(sw *workerSweep, l Lease, lines []byte) error {
	if w.cfg.CheckpointDir == "" || len(lines) == 0 {
		return nil
	}
	if err := os.MkdirAll(w.cfg.CheckpointDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(w.cfg.CheckpointDir, fmt.Sprintf("%s-%s-lease%d.jsonl", w.cfg.ID, l.Sweep, l.ID))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	h := sw.header
	h.Shard = &dse.Shard{Index: 0, Count: 1, Lo: l.Lo, Hi: l.Hi}
	if err := dse.WriteHeader(f, h); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(lines); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	w.log.Printf("%s: checkpointed undelivered lease %s/%d to %s", w.cfg.ID, l.Sweep, l.ID, path)
	return nil
}

// resubmitCheckpoints replays any locally checkpointed lease files
// from an earlier run whose delivery failed, deleting each once the
// coordinator acks it — including a Cancelled ack, which means nobody
// wants the lines any more.
func (w *Worker) resubmitCheckpoints(ctx context.Context) error {
	if w.cfg.CheckpointDir == "" {
		return nil
	}
	paths, err := filepath.Glob(filepath.Join(w.cfg.CheckpointDir, w.cfg.ID+"-sw-*-lease*.jsonl"))
	if err != nil {
		return err
	}
	for _, path := range paths {
		sf, err := dse.ReadShardFile(path)
		if err != nil {
			w.log.Printf("%s: skipping bad checkpoint %s: %v", w.cfg.ID, path, err)
			continue
		}
		sweepID := SweepID(sf.Header)
		var lines bytes.Buffer
		for _, r := range sf.Results {
			if err := dse.WriteResult(&lines, r); err != nil {
				return err
			}
		}
		ack, err := w.submit(ctx, sweepID, 0, lines.Bytes())
		if err != nil {
			return err
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		if ack.Cancelled {
			w.log.Printf("%s: dropped checkpoint %s: sweep %s cancelled", w.cfg.ID, path, sweepID)
			continue
		}
		w.log.Printf("%s: resubmitted %d checkpointed result(s) from %s", w.cfg.ID, len(sf.Results), path)
	}
	return nil
}

// sleepCtx waits for the delay or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
