package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// quickWorker returns a WorkerConfig tuned for tests: tiny backoff,
// small flush batches.
func quickWorker(url, id string) WorkerConfig {
	return WorkerConfig{
		URL:         url,
		ID:          id,
		FlushPoints: 3,
		Workers:     2,
		MaxAttempts: 4,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

// TestWorkerEndToEnd runs one worker against a live coordinator with
// no faults: the sweep completes and the output is byte-identical to
// a standalone run.
func TestWorkerEndToEnd(t *testing.T) {
	const spec, seed = "smoke", uint64(1)
	srv, err := New(Config{Spec: spec, Seed: seed, Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	w := NewWorker(quickWorker(hs.URL, "w0"))
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w.Submitted != len(srv.Points()) {
		t.Fatalf("worker submitted %d, want %d", w.Submitted, len(srv.Points()))
	}
	var got bytes.Buffer
	if err := srv.WriteFinal(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), referenceBytes(t, spec, seed)) {
		t.Fatal("coordinated output differs from the standalone run")
	}
}

// failPath injects a transport error for one URL path, toggleable at
// runtime — the shape of "the coordinator process vanished" as seen
// from a worker mid-submit.
type failPath struct {
	base http.RoundTripper
	path string

	mu   sync.Mutex
	fail bool
}

func (f *failPath) set(fail bool) {
	f.mu.Lock()
	f.fail = fail
	f.mu.Unlock()
}

func (f *failPath) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	fail := f.fail
	f.mu.Unlock()
	if fail && strings.HasPrefix(req.URL.Path, f.path) {
		return nil, errors.New("injected: coordinator unreachable")
	}
	return f.base.RoundTrip(req)
}

// TestWorkerVanishCheckpointAndRejoin exercises graceful degradation:
// the coordinator becomes unreachable mid-lease, the worker finishes
// evaluating, checkpoints the undelivered lines locally and exits
// with an error; a rejoining worker (same identity, same directory)
// resubmits the checkpoint without re-evaluating and completes the
// sweep.
func TestWorkerVanishCheckpointAndRejoin(t *testing.T) {
	const spec, seed = "smoke", uint64(1)
	srv, err := New(Config{Spec: spec, Seed: seed, Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	dir := t.TempDir()

	// Results delivery fails from the start: hello and lease succeed,
	// so the worker accepts work it can never deliver.
	tr := &failPath{base: http.DefaultTransport, path: "/results"}
	tr.set(true)
	cfg := quickWorker(hs.URL, "w0")
	cfg.Client = &http.Client{Transport: tr}
	cfg.CheckpointDir = dir
	cfg.MaxAttempts = 2
	w := NewWorker(cfg)
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("worker reported success with an unreachable coordinator")
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "w0-sw-*-lease*.jsonl"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no local checkpoint written (%v, %v)", ckpts, err)
	}
	if st := srv.Status(); st.Done != 0 {
		t.Fatalf("server accepted %d points through a dead transport", st.Done)
	}

	// The coordinator comes back; the worker rejoins.
	tr.set(false)
	w2 := NewWorker(func() WorkerConfig {
		c := quickWorker(hs.URL, "w0")
		c.CheckpointDir = dir
		return c
	}())
	if err := w2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "w0-sw-*-lease*.jsonl")); len(left) != 0 {
		t.Fatalf("resubmitted checkpoints not removed: %v", left)
	}
	st := srv.Status()
	if !st.Complete {
		t.Fatalf("sweep incomplete after rejoin: %+v", st)
	}
	if st.Duplicates != 0 {
		t.Fatalf("resubmitted checkpoint counted as duplicates (%d): it was never delivered", st.Duplicates)
	}
	var got bytes.Buffer
	if err := srv.WriteFinal(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), referenceBytes(t, spec, seed)) {
		t.Fatal("output differs after vanish + rejoin")
	}
}

// TestWorkerRefusesSpecHashMismatch checks the first-lease drift
// guard: a worker whose local expansion hashes differently refuses the
// sweep instead of submitting conflicting bytes later.
func TestWorkerRefusesSpecHashMismatch(t *testing.T) {
	srv, err := New(Config{Spec: "smoke", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /hello", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(HelloResponse{HeartbeatMS: 1000})
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Header()
		h.SpecHash = "0000000000000000"
		json.NewEncoder(w).Encode(LeaseResponse{
			Lease:  &Lease{Sweep: SweepID(h), ID: 1, Lo: 0, Hi: 4, DeadlineMS: 30000},
			Header: &h,
		})
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()
	cfg := quickWorker(hs.URL, "w0")
	cfg.MaxAttempts = 1
	err = NewWorker(cfg).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "spec hash mismatch") {
		t.Fatalf("drifted worker joined anyway: %v", err)
	}
}

// TestWorkerConflictNotRetried checks a 409 is terminal for the
// worker — retrying poison bytes would never succeed — and that the
// rejected batch is submitted exactly once.
func TestWorkerConflictNotRetried(t *testing.T) {
	srv, err := New(Config{Spec: "smoke", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var submits int
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("POST /hello", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(HelloResponse{HeartbeatMS: 1000})
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Header()
		json.NewEncoder(w).Encode(LeaseResponse{
			Lease:  &Lease{Sweep: SweepID(h), ID: 1, Lo: 0, Hi: 4, DeadlineMS: 30000},
			Header: &h,
		})
	})
	mux.HandleFunc("POST /results", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		submits++
		mu.Unlock()
		http.Error(w, "dse: point 0 has conflicting results", http.StatusConflict)
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	cfg := quickWorker(hs.URL, "w0")
	cfg.FlushPoints = 100 // one flush for the whole lease
	err = NewWorker(cfg).Run(context.Background())
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting submit: %v, want ErrConflict", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if submits != 1 {
		t.Fatalf("rejected batch submitted %d times, want 1 (no retry)", submits)
	}
}
