package trace

import (
	"strings"
	"testing"

	"mpsockit/internal/sim"
)

func TestRingBufferWraps(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Add(Event{At: sim.Time(i), Core: i, Kind: Exec})
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d", b.Len())
	}
	if b.Dropped != 6 {
		t.Fatalf("dropped = %d", b.Dropped)
	}
	ev := b.Events()
	for i, e := range ev {
		if e.Core != 6+i {
			t.Fatalf("events = %v", ev)
		}
	}
}

func TestLastAndOfKind(t *testing.T) {
	b := NewBuffer(16)
	b.Add(Event{Kind: Exec})
	b.Add(Event{Kind: MemWr})
	b.Add(Event{Kind: MemWr})
	b.Add(Event{Kind: IRQ})
	if len(b.OfKind(MemWr)) != 2 {
		t.Fatal("kind filter broken")
	}
	if len(b.Last(2)) != 2 {
		t.Fatal("Last broken")
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(16)
	b.Filter = func(e Event) bool { return e.Kind == IRQ }
	b.Add(Event{Kind: Exec})
	b.Add(Event{Kind: IRQ})
	if b.Len() != 1 {
		t.Fatalf("filter kept %d", b.Len())
	}
}

func TestDumpReadable(t *testing.T) {
	b := NewBuffer(8)
	b.Add(Event{At: 5 * sim.Microsecond, Core: 1, Kind: MemWr, Addr: 0x40000000, Value: 7, Detail: "x"})
	d := b.Dump()
	if !strings.Contains(d, "MEMWR") || !strings.Contains(d, "core1") || !strings.Contains(d, "0x40000000") {
		t.Fatalf("dump unreadable: %s", d)
	}
	b.Clear()
	if b.Len() != 0 {
		t.Fatal("clear failed")
	}
}
