// Package trace provides the hardware/software tracing facility of
// the paper's section VII: "a history of function execution within
// the different processes, and their access to memories and
// peripherals, is of great help to understand and identify the cause
// of a defect." Events are recorded into a bounded ring buffer with
// virtual timestamps and rendered as text.
package trace

import (
	"fmt"
	"strings"

	"mpsockit/internal/sim"
)

// Kind classifies trace events.
type Kind int

// Event kinds.
const (
	Exec   Kind = iota // instruction/function execution
	MemRd              // memory read
	MemWr              // memory write
	Periph             // peripheral register access
	IRQ                // interrupt raised/taken
	Sched              // scheduler/debugger action (suspend, resume, step)
)

var kindNames = [...]string{"EXEC", "MEMRD", "MEMWR", "PERIPH", "IRQ", "SCHED"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "?"
	}
	return kindNames[k]
}

// Event is one trace record.
type Event struct {
	At     sim.Time
	Core   int
	Kind   Kind
	Addr   uint32
	Value  uint32
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("%-12v core%d %-6s", e.At, e.Core, e.Kind)
	if e.Kind == MemRd || e.Kind == MemWr || e.Kind == Periph || e.Kind == Exec {
		s += fmt.Sprintf(" 0x%08x=%#x", e.Addr, e.Value)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Buffer is a bounded ring of events.
type Buffer struct {
	cap    int
	events []Event
	start  int
	// Dropped counts events lost to wrap-around.
	Dropped uint64
	// Filter, when set, drops events for which it returns false.
	Filter func(Event) bool
}

// NewBuffer returns a ring holding up to capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Buffer{cap: capacity}
}

// Add appends an event, evicting the oldest when full.
func (b *Buffer) Add(e Event) {
	if b.Filter != nil && !b.Filter(e) {
		return
	}
	if len(b.events) < b.cap {
		b.events = append(b.events, e)
		return
	}
	b.events[b.start] = e
	b.start = (b.start + 1) % b.cap
	b.Dropped++
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.events) }

// Events returns the buffered events oldest-first.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.start:]...)
	out = append(out, b.events[:b.start]...)
	return out
}

// Last returns up to n most recent events, oldest-first.
func (b *Buffer) Last(n int) []Event {
	ev := b.Events()
	if len(ev) > n {
		ev = ev[len(ev)-n:]
	}
	return ev
}

// OfKind filters the buffered events by kind.
func (b *Buffer) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the buffer as text.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteString("\n")
	}
	if b.Dropped > 0 {
		fmt.Fprintf(&sb, "(%d earlier events dropped)\n", b.Dropped)
	}
	return sb.String()
}

// Clear empties the buffer.
func (b *Buffer) Clear() {
	b.events = b.events[:0]
	b.start = 0
}
