// Package dataflow implements cyclo-static dataflow (CSDF) graphs,
// the formal model behind the paper's section III (the NXP
// Hijdra/CoMPSoC line of work). It provides consistency analysis
// (repetition vectors), self-timed execution with back-pressure over
// bounded buffers, wait-free checks for timer-driven sources and
// sinks, and minimal buffer-capacity computation under a throughput
// constraint in the style of Wiggers et al. (RTAS 2007), the paper's
// reference [5].
package dataflow

import (
	"fmt"
	"math/big"
)

// Actor is a CSDF actor: execution alternates cyclically through
// Phases; phase p takes ExecTime[p] to fire.
type Actor struct {
	Name string
	// ExecTime per phase, in virtual time. All rate vectors on
	// adjacent edges must have the same length (the phase count).
	ExecTime []int64 // picoseconds; kept integral for exact analysis
	idx      int
}

// Phases returns the actor's phase count.
func (a *Actor) Phases() int { return len(a.ExecTime) }

// Edge is a buffered token channel. Prod[p] tokens appear on the
// buffer when the source completes its phase-p firing; Cons[p] tokens
// are claimed when the destination starts its phase-p firing.
type Edge struct {
	Name    string
	Src     *Actor
	Dst     *Actor
	Prod    []int // per src phase
	Cons    []int // per dst phase
	Initial int   // initial tokens
	idx     int
}

// sum returns the total tokens over one cyclo-static cycle.
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Graph is a CSDF graph.
type Graph struct {
	Name   string
	Actors []*Actor
	Edges  []*Edge
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// AddActor creates an actor with the given per-phase execution times.
func (g *Graph) AddActor(name string, execTime ...int64) *Actor {
	if len(execTime) == 0 {
		panic("dataflow: actor needs at least one phase")
	}
	for _, t := range execTime {
		if t < 0 {
			panic("dataflow: negative execution time")
		}
	}
	a := &Actor{Name: name, ExecTime: execTime, idx: len(g.Actors)}
	g.Actors = append(g.Actors, a)
	return a
}

// Connect adds an edge from src to dst. prod must have one entry per
// src phase and cons one per dst phase.
func (g *Graph) Connect(src, dst *Actor, prod, cons []int, initial int) *Edge {
	if len(prod) != src.Phases() {
		panic(fmt.Sprintf("dataflow: edge %s->%s prod has %d entries, src has %d phases",
			src.Name, dst.Name, len(prod), src.Phases()))
	}
	if len(cons) != dst.Phases() {
		panic(fmt.Sprintf("dataflow: edge %s->%s cons has %d entries, dst has %d phases",
			src.Name, dst.Name, len(cons), dst.Phases()))
	}
	e := &Edge{
		Name: src.Name + "->" + dst.Name,
		Src:  src, Dst: dst, Prod: prod, Cons: cons, Initial: initial,
		idx: len(g.Edges),
	}
	g.Edges = append(g.Edges, e)
	return e
}

// ConnectSDF adds a single-phase (SDF) edge with scalar rates,
// broadcasting the scalar across the actors' phases.
func (g *Graph) ConnectSDF(src, dst *Actor, prod, cons, initial int) *Edge {
	ps := make([]int, src.Phases())
	for i := range ps {
		ps[i] = prod
	}
	cs := make([]int, dst.Phases())
	for i := range cs {
		cs[i] = cons
	}
	return g.Connect(src, dst, ps, cs, initial)
}

// RepetitionVector solves the CSDF balance equations and returns, for
// each actor, the number of complete cyclo-static cycles per graph
// iteration (so actor a fires rv[a]*a.Phases() times per iteration).
// It returns an error for inconsistent graphs (which cannot execute
// in bounded memory) and for disconnected graphs.
func (g *Graph) RepetitionVector() ([]int, error) {
	n := len(g.Actors)
	if n == 0 {
		return nil, fmt.Errorf("dataflow: empty graph")
	}
	// q[i] as rationals; propagate q over edges via BFS.
	q := make([]*big.Rat, n)
	q[0] = big.NewRat(1, 1)
	queue := []int{0}
	adj := make(map[int][]*Edge)
	for _, e := range g.Edges {
		adj[e.Src.idx] = append(adj[e.Src.idx], e)
		adj[e.Dst.idx] = append(adj[e.Dst.idx], e)
	}
	visited := map[int]bool{0: true}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, e := range adj[i] {
			// Balance: q[src]*sum(Prod) == q[dst]*sum(Cons).
			sp, sc := sum(e.Prod), sum(e.Cons)
			if sp == 0 || sc == 0 {
				return nil, fmt.Errorf("dataflow: edge %s has zero total rate", e.Name)
			}
			var other int
			var ratio *big.Rat
			if e.Src.idx == i {
				other = e.Dst.idx
				ratio = new(big.Rat).Mul(q[i], big.NewRat(int64(sp), int64(sc)))
			} else {
				other = e.Src.idx
				ratio = new(big.Rat).Mul(q[i], big.NewRat(int64(sum(e.Cons)), int64(sum(e.Prod))))
			}
			if q[other] == nil {
				q[other] = ratio
				visited[other] = true
				queue = append(queue, other)
			} else if q[other].Cmp(ratio) != 0 {
				return nil, fmt.Errorf("dataflow: inconsistent rates at edge %s", e.Name)
			}
		}
	}
	for i := range q {
		if q[i] == nil {
			return nil, fmt.Errorf("dataflow: actor %s not connected", g.Actors[i].Name)
		}
	}
	// Scale to the smallest integer vector: multiply by LCM of
	// denominators, divide by GCD of numerators.
	lcm := big.NewInt(1)
	for _, r := range q {
		d := r.Denom()
		gg := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Div(new(big.Int).Mul(lcm, d), gg)
	}
	ints := make([]*big.Int, n)
	for i, r := range q {
		ints[i] = new(big.Int).Div(new(big.Int).Mul(r.Num(), lcm), r.Denom())
	}
	gcd := new(big.Int).Set(ints[0])
	for _, v := range ints[1:] {
		gcd.GCD(nil, nil, gcd, v)
	}
	out := make([]int, n)
	for i, v := range ints {
		out[i] = int(new(big.Int).Div(v, gcd).Int64())
	}
	return out, nil
}

// Validate checks structural sanity: rates non-negative, totals
// positive, consistency.
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		for _, p := range e.Prod {
			if p < 0 {
				return fmt.Errorf("dataflow: negative production on %s", e.Name)
			}
		}
		for _, c := range e.Cons {
			if c < 0 {
				return fmt.Errorf("dataflow: negative consumption on %s", e.Name)
			}
		}
		if e.Initial < 0 {
			return fmt.Errorf("dataflow: negative initial tokens on %s", e.Name)
		}
	}
	_, err := g.RepetitionVector()
	return err
}

// Chain builds a linear SDF pipeline with unit rates: a common shape
// for the paper's car-radio stream processing. execTimes are in
// picoseconds.
func Chain(name string, execTimes ...int64) *Graph {
	g := NewGraph(name)
	var prev *Actor
	for i, t := range execTimes {
		a := g.AddActor(fmt.Sprintf("%s%d", name, i), t)
		if prev != nil {
			g.ConnectSDF(prev, a, 1, 1, 0)
		}
		prev = a
	}
	return g
}
