package dataflow

import (
	"container/heap"
	"fmt"
)

// RunOptions configures a self-timed execution.
type RunOptions struct {
	// Caps are per-edge buffer capacities (tokens). 0 means unbounded.
	Caps []int
	// Iterations is the number of sink firings to complete.
	Iterations int
	// SourcePeriod, when positive, releases the source strictly
	// periodically (timer-triggered, section III); the source then
	// fires at its release instants unless blocked by back-pressure.
	SourcePeriod int64
	// Source and Sink default to the first and last actor.
	Source *Actor
	Sink   *Actor
	// MaxTime aborts the run (deadlock guard). 0 = derived default.
	MaxTime int64
}

// RunResult reports a self-timed execution.
type RunResult struct {
	// Makespan is the completion time of the last sink firing.
	Makespan int64
	// SinkTimes are the completion instants of sink firings.
	SinkTimes []int64
	// SourceBlocked counts source releases that could not fire on
	// time because of back-pressure: zero means the periodic source
	// ran wait-free (the schedulability criterion of section III).
	SourceBlocked int
	// Deadlocked is set when execution stopped early with no actor
	// able to fire.
	Deadlocked bool
	// TimedOut is set when MaxTime elapsed first.
	TimedOut bool
	// Firings counts total firings per actor.
	Firings []int
}

// Throughput returns steady-state sink firings per picosecond,
// measured over the second half of the run (first half discarded as
// warm-up).
func (r *RunResult) Throughput() float64 {
	n := len(r.SinkTimes)
	if n < 4 {
		return 0
	}
	i0 := n / 2
	dt := r.SinkTimes[n-1] - r.SinkTimes[i0]
	if dt <= 0 {
		return 0
	}
	return float64(n-1-i0) / float64(dt)
}

// Period returns the steady-state inter-firing time of the sink.
func (r *RunResult) Period() float64 {
	t := r.Throughput()
	if t == 0 {
		return 0
	}
	return 1 / t
}

type fireEvent struct {
	time  int64
	seq   int
	actor int
}

type fireHeap []fireEvent

func (h fireHeap) Len() int { return len(h) }
func (h fireHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h fireHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *fireHeap) Push(x any)        { *h = append(*h, x.(fireEvent)) }
func (h *fireHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h fireHeap) peek() int64        { return h[0].time }
func (h fireHeap) empty() bool        { return len(h) == 0 }

// Run executes the graph self-timed: every actor fires as soon as its
// input tokens and output space allow (data-driven semantics). Tokens
// are consumed and space reserved at firing start; tokens are
// produced at firing end.
func (g *Graph) Run(opt RunOptions) (*RunResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Actors)
	src := opt.Source
	if src == nil {
		src = g.Actors[0]
	}
	sink := opt.Sink
	if sink == nil {
		sink = g.Actors[n-1]
	}
	if opt.Iterations <= 0 {
		opt.Iterations = 1
	}
	caps := opt.Caps
	if caps == nil {
		caps = make([]int, len(g.Edges))
	}
	if len(caps) != len(g.Edges) {
		return nil, fmt.Errorf("dataflow: caps has %d entries, graph has %d edges", len(caps), len(g.Edges))
	}
	maxTime := opt.MaxTime
	if maxTime == 0 {
		// Generous default: total work × iterations × actors.
		var w int64
		for _, a := range g.Actors {
			for _, t := range a.ExecTime {
				w += t
			}
		}
		if w == 0 {
			w = 1
		}
		maxTime = w * int64(opt.Iterations+4) * int64(n+2) * 4
		if opt.SourcePeriod > 0 {
			rv, _ := g.RepetitionVector()
			maxTime += opt.SourcePeriod * int64(opt.Iterations+8) * int64(rv[src.idx]*src.Phases()+1)
		}
	}

	tokens := make([]int, len(g.Edges))
	reserved := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		tokens[i] = e.Initial
	}
	inEdges := make([][]*Edge, n)
	outEdges := make([][]*Edge, n)
	for _, e := range g.Edges {
		inEdges[e.Dst.idx] = append(inEdges[e.Dst.idx], e)
		outEdges[e.Src.idx] = append(outEdges[e.Src.idx], e)
	}
	phase := make([]int, n)   // next phase to fire
	busy := make([]bool, n)   // firing in progress
	res := &RunResult{Firings: make([]int, n)}
	// Periodic source bookkeeping.
	releases := 0 // source releases so far (periodic mode)
	blockedPending := false

	now := int64(0)
	seq := 0
	var events fireHeap

	canFire := func(ai int) bool {
		if busy[ai] {
			return false
		}
		a := g.Actors[ai]
		if a == src && opt.SourcePeriod > 0 && res.Firings[ai] >= releases {
			return false // not released yet
		}
		ph := phase[ai]
		for _, e := range inEdges[ai] {
			if tokens[e.idx] < e.Cons[ph] {
				return false
			}
		}
		for _, e := range outEdges[ai] {
			if caps[e.idx] > 0 && tokens[e.idx]+reserved[e.idx]+e.Prod[ph] > caps[e.idx] {
				return false
			}
		}
		return true
	}

	startFiring := func(ai int) {
		a := g.Actors[ai]
		ph := phase[ai]
		for _, e := range inEdges[ai] {
			tokens[e.idx] -= e.Cons[ph]
		}
		for _, e := range outEdges[ai] {
			reserved[e.idx] += e.Prod[ph]
		}
		busy[ai] = true
		heap.Push(&events, fireEvent{time: now + a.ExecTime[ph], seq: seq, actor: ai})
		seq++
	}

	sinkDone := 0
	// Seed: source releases at t=0 in periodic mode.
	if opt.SourcePeriod > 0 {
		releases = 1
	}
	progress := true
	for sinkDone < opt.Iterations && now <= maxTime {
		// Start every actor that can fire (fixpoint at current time).
		progress = true
		for progress {
			progress = false
			for ai := 0; ai < n; ai++ {
				if canFire(ai) {
					if g.Actors[ai] == src && opt.SourcePeriod > 0 && blockedPending {
						blockedPending = false
					}
					startFiring(ai)
					progress = true
				}
			}
		}
		// Periodic source release check: if a release instant passed
		// and the source could not start, it is not wait-free.
		nextRelease := int64(-1)
		if opt.SourcePeriod > 0 {
			nextRelease = int64(releases) * opt.SourcePeriod
		}
		if events.empty() {
			if nextRelease >= 0 {
				// Idle until the next source release.
				now = nextRelease
				releases++
				if !canFire(src.idx) {
					res.SourceBlocked++
					blockedPending = true
				}
				continue
			}
			res.Deadlocked = true
			break
		}
		// Advance to the earlier of next completion and next release.
		if nextRelease >= 0 && nextRelease <= events.peek() {
			now = nextRelease
			releases++
			if !canFire(src.idx) && busy[src.idx] {
				// Source still busy with the previous firing: release
				// queues; it will fire late only if blocked again.
				continue
			}
			if !canFire(src.idx) {
				res.SourceBlocked++
				blockedPending = true
			}
			continue
		}
		ev := heap.Pop(&events).(fireEvent)
		now = ev.time
		ai := ev.actor
		a := g.Actors[ai]
		ph := phase[ai]
		for _, e := range outEdges[ai] {
			reserved[e.idx] -= e.Prod[ph]
			tokens[e.idx] += e.Prod[ph]
		}
		busy[ai] = false
		phase[ai] = (ph + 1) % a.Phases()
		res.Firings[ai]++
		if a == sink {
			sinkDone++
			res.SinkTimes = append(res.SinkTimes, now)
			res.Makespan = now
		}
	}
	if now > maxTime {
		res.TimedOut = true
	}
	return res, nil
}

// SelfTimedPeriod measures the graph's maximal-throughput steady-state
// sink period with effectively unbounded buffers, by self-timed
// simulation over iters sink firings.
func (g *Graph) SelfTimedPeriod(iters int) (float64, error) {
	r, err := g.Run(RunOptions{Iterations: iters})
	if err != nil {
		return 0, err
	}
	if r.Deadlocked {
		return 0, fmt.Errorf("dataflow: graph deadlocks")
	}
	return r.Period(), nil
}

// safeCaps returns a per-edge capacity that certainly sustains
// maximal throughput: initial tokens plus two full cyclo-static
// cycles of production and consumption on both endpoints.
func (g *Graph) safeCaps(rv []int) []int {
	caps := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		p := sum(e.Prod) * rv[e.Src.idx]
		c := sum(e.Cons) * rv[e.Dst.idx]
		caps[i] = e.Initial + 2*(p+c)
		if caps[i] < 1 {
			caps[i] = 1
		}
	}
	return caps
}

// MinBufferSizes computes per-edge buffer capacities that are minimal
// (per-edge, given the others) while the timer-driven source stays
// wait-free at the given period — the buffer-capacity problem of the
// paper's reference [5]. iters controls the simulation horizon used
// as the feasibility oracle.
//
// The algorithm starts from a provably sufficient capacity vector and
// binary-searches each edge downward, iterating to a fixpoint. The
// result is deterministic; safety is re-checked by the final
// verification run.
func (g *Graph) MinBufferSizes(sourcePeriod int64, iters int) ([]int, error) {
	rv, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	if iters < 8 {
		iters = 8
	}
	feasible := func(caps []int) bool {
		r, err := g.Run(RunOptions{
			Caps: caps, Iterations: iters, SourcePeriod: sourcePeriod,
		})
		if err != nil {
			return false
		}
		return !r.Deadlocked && !r.TimedOut && r.SourceBlocked == 0 &&
			len(r.SinkTimes) >= iters
	}
	caps := g.safeCaps(rv)
	if !feasible(caps) {
		return nil, fmt.Errorf("dataflow: period %d infeasible even with safe buffers (source rate too high?)", sourcePeriod)
	}
	// Iterate edge-wise binary search to a fixpoint (two passes are
	// almost always enough; we cap at four).
	for pass := 0; pass < 4; pass++ {
		changed := false
		for i := range caps {
			orig := caps[i]
			lo, hi := 1, caps[i] // invariant: hi feasible
			for lo < hi {
				mid := (lo + hi) / 2
				caps[i] = mid
				if feasible(caps) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			caps[i] = hi
			if hi != orig {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if !feasible(caps) {
		return nil, fmt.Errorf("dataflow: internal error: fixpoint capacities infeasible")
	}
	return caps, nil
}

// TotalTokens sums a capacity vector — the memory footprint proxy
// reported in experiment E5.
func TotalTokens(caps []int) int {
	t := 0
	for _, c := range caps {
		t += c
	}
	return t
}
