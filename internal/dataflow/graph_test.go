package dataflow

import (
	"testing"
	"testing/quick"
)

func TestRepetitionVectorSDFChain(t *testing.T) {
	g := Chain("c", 10, 20, 30)
	rv, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rv {
		if r != 1 {
			t.Fatalf("rv[%d] = %d, want 1 for unit-rate chain", i, r)
		}
	}
}

func TestRepetitionVectorMultirate(t *testing.T) {
	// a --2:3--> b : 3*q_a = ... balance: q_a*2 = q_b*3 -> q = [3,2].
	g := NewGraph("mr")
	a := g.AddActor("a", 5)
	b := g.AddActor("b", 7)
	g.ConnectSDF(a, b, 2, 3, 0)
	rv, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if rv[0] != 3 || rv[1] != 2 {
		t.Fatalf("rv = %v, want [3 2]", rv)
	}
}

func TestRepetitionVectorCSDF(t *testing.T) {
	// CSDF actor with phases producing [1,2] (total 3 per cycle)
	// feeding a single-phase consumer of 1: q_a*3 = q_b*1 -> [1,3].
	g := NewGraph("csdf")
	a := g.AddActor("a", 4, 6)
	b := g.AddActor("b", 5)
	g.Connect(a, b, []int{1, 2}, []int{1}, 0)
	rv, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if rv[0] != 1 || rv[1] != 3 {
		t.Fatalf("rv = %v, want [1 3]", rv)
	}
}

func TestInconsistentGraphRejected(t *testing.T) {
	// Triangle with contradictory rates.
	g := NewGraph("bad")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	c := g.AddActor("c", 1)
	g.ConnectSDF(a, b, 1, 1, 0)
	g.ConnectSDF(b, c, 1, 1, 0)
	g.ConnectSDF(a, c, 2, 1, 0) // forces q_c = 2*q_a but chain gives q_c = q_a
	if _, err := g.RepetitionVector(); err == nil {
		t.Fatal("inconsistent graph accepted")
	}
}

func TestDisconnectedGraphRejected(t *testing.T) {
	g := NewGraph("disc")
	g.AddActor("a", 1)
	g.AddActor("b", 1)
	if _, err := g.RepetitionVector(); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestPhaseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewGraph("pm")
	a := g.AddActor("a", 1, 2) // two phases
	b := g.AddActor("b", 1)
	g.Connect(a, b, []int{1}, []int{1}, 0) // prod has 1 entry, needs 2
}

func TestSelfTimedChainExecution(t *testing.T) {
	g := Chain("p", 10, 20, 15)
	r, err := g.Run(RunOptions{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.TimedOut {
		t.Fatalf("run failed: %+v", r)
	}
	if len(r.SinkTimes) != 10 {
		t.Fatalf("sink fired %d times, want 10", len(r.SinkTimes))
	}
	// Pipeline steady state is limited by the slowest actor (20).
	p := r.Period()
	if p < 19 || p > 21 {
		t.Fatalf("steady-state period %g, want ~20", p)
	}
}

func TestBackPressureThrottlesSource(t *testing.T) {
	// Fast producer into slow consumer over a 1-token buffer: the
	// producer must slow to the consumer's rate; tokens never exceed
	// the capacity.
	g := NewGraph("bp")
	fast := g.AddActor("fast", 1)
	slow := g.AddActor("slow", 100)
	g.ConnectSDF(fast, slow, 1, 1, 0)
	r, err := g.Run(RunOptions{Caps: []int{1}, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked {
		t.Fatal("deadlock with cap 1 on plain chain")
	}
	p := r.Period()
	if p < 99 || p > 101 {
		t.Fatalf("period %g, want consumer-limited ~100", p)
	}
	// Producer cannot have run ahead more than capacity+in-flight.
	if r.Firings[0] > r.Firings[1]+2 {
		t.Fatalf("producer ran ahead: %v", r.Firings)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two-actor cycle with no initial tokens cannot fire.
	g := NewGraph("dl")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.ConnectSDF(a, b, 1, 1, 0)
	g.ConnectSDF(b, a, 1, 1, 0)
	r, err := g.Run(RunOptions{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked {
		t.Fatal("tokenless cycle did not deadlock")
	}
}

func TestCycleWithInitialTokensRuns(t *testing.T) {
	g := NewGraph("cyc")
	a := g.AddActor("a", 10)
	b := g.AddActor("b", 10)
	g.ConnectSDF(a, b, 1, 1, 0)
	g.ConnectSDF(b, a, 1, 1, 1) // one credit token
	r, err := g.Run(RunOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || len(r.SinkTimes) != 5 {
		t.Fatalf("cycle run failed: %+v", r)
	}
	// One token in a 2-actor cycle serializes: period = 10+10.
	if p := r.Period(); p < 19 || p > 21 {
		t.Fatalf("period %g, want ~20", p)
	}
}

func TestPeriodicSourceWaitFree(t *testing.T) {
	g := Chain("wf", 10, 30, 10)
	// Source period 40 > bottleneck 30: feasible; generous buffers.
	r, err := g.Run(RunOptions{
		Caps: []int{4, 4}, Iterations: 20, SourcePeriod: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.SourceBlocked != 0 {
		t.Fatalf("source blocked %d times, want wait-free", r.SourceBlocked)
	}
	// Sink period tracks the source period in steady state.
	if p := r.Period(); p < 39 || p > 41 {
		t.Fatalf("sink period %g, want ~40", p)
	}
}

func TestPeriodicSourceTooFastBlocks(t *testing.T) {
	g := Chain("of", 10, 50, 10)
	// Source period 20 < bottleneck 50: back-pressure must block the
	// source (not corrupt data — that is the section III point).
	r, err := g.Run(RunOptions{
		Caps: []int{2, 2}, Iterations: 10, SourcePeriod: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.SourceBlocked == 0 {
		t.Fatal("overdriven source reported wait-free")
	}
}

func TestMinBufferSizesChain(t *testing.T) {
	g := Chain("mb", 10, 30, 10)
	caps, err := g.MinBufferSizes(40, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range caps {
		if c < 1 {
			t.Fatalf("edge %d capacity %d", i, c)
		}
	}
	// Minimality: unit-rate chain at a feasible period needs only 1-2
	// tokens per edge.
	if TotalTokens(caps) > 6 {
		t.Fatalf("caps %v not minimal", caps)
	}
	// Safety: verify wait-freedom at the computed capacities over a
	// longer horizon than the oracle used.
	r, err := g.Run(RunOptions{Caps: caps, Iterations: 64, SourcePeriod: 40})
	if err != nil {
		t.Fatal(err)
	}
	if r.SourceBlocked != 0 || r.Deadlocked {
		t.Fatalf("computed caps unsafe: %+v", r)
	}
}

func TestMinBufferSizesTightPeriodNeedsMoreBuffer(t *testing.T) {
	// CSDF with bursty phases: tighter periods need larger buffers.
	g := NewGraph("burst")
	srcA := g.AddActor("src", 5)
	burst := g.AddActor("burst", 10, 90) // cheap phase then expensive phase
	sink := g.AddActor("sink", 5)
	g.Connect(srcA, burst, []int{1}, []int{1, 1}, 0)
	g.Connect(burst, sink, []int{1, 1}, []int{1}, 0)
	loose, err := g.MinBufferSizes(120, 16)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := g.MinBufferSizes(55, 16)
	if err != nil {
		t.Fatal(err)
	}
	if TotalTokens(tight) < TotalTokens(loose) {
		t.Fatalf("tight period buffers %v smaller than loose %v", tight, loose)
	}
}

func TestMinBufferInfeasiblePeriod(t *testing.T) {
	g := Chain("inf", 10, 100, 10)
	// Period 20 is below the bottleneck's 100: no buffer size helps.
	if _, err := g.MinBufferSizes(20, 12); err == nil {
		t.Fatal("infeasible period accepted")
	}
}

func TestSelfTimedPeriodMatchesBottleneck(t *testing.T) {
	g := Chain("st", 7, 42, 13)
	p, err := g.SelfTimedPeriod(24)
	if err != nil {
		t.Fatal(err)
	}
	if p < 41 || p > 43 {
		t.Fatalf("self-timed period %g, want ~42", p)
	}
}

// Property: for random unit-rate chains, MinBufferSizes always returns
// capacities that keep the source wait-free at 1.5x the bottleneck
// period (feasibility margin), and every capacity is >= 1.
func TestBufferSizingSafetyProperty(t *testing.T) {
	f := func(times []uint8) bool {
		if len(times) < 2 {
			return true
		}
		if len(times) > 6 {
			times = times[:6]
		}
		execs := make([]int64, len(times))
		var maxT int64 = 1
		for i, v := range times {
			execs[i] = int64(v%50) + 1
			if execs[i] > maxT {
				maxT = execs[i]
			}
		}
		g := Chain("pp", execs...)
		period := maxT + maxT/2 + 1
		caps, err := g.MinBufferSizes(period, 12)
		if err != nil {
			return false
		}
		for _, c := range caps {
			if c < 1 {
				return false
			}
		}
		r, err := g.Run(RunOptions{Caps: caps, Iterations: 40, SourcePeriod: period})
		if err != nil {
			return false
		}
		return r.SourceBlocked == 0 && !r.Deadlocked && !r.TimedOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
