// Package cir implements the toolkit's C-subset intermediate
// representation. Sequential application code enters the MAPS-style
// flow (section IV of the paper) and the designer-controlled Source
// Recoder (section VI) in this form: a small but real imperative
// language with functions, integer scalars, arrays and restricted
// pointers, plus '#pragma maps' annotations for the lightweight
// real-time extensions the paper describes (period, deadline,
// preferred PE class).
//
// The package provides a lexer, recursive-descent parser, semantic
// checker, tree-walking interpreter (the golden-model oracle used to
// prove transformations behaviour-preserving), a source printer, and
// a static cost model.
package cir

import (
	"fmt"
	"strings"
)

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokPunct   // operators and punctuation
	TokKeyword // int, void, if, else, while, for, return
	TokPragma  // full '#pragma ...' line
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%d:%d %q", t.Line, t.Col, t.Text)
}

var keywords = map[string]bool{
	"int": true, "void": true, "if": true, "else": true,
	"while": true, "for": true, "return": true,
}

// multi-character operators, longest first.
var punct2 = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
	"<<", ">>", "++", "--",
}

// Lex tokenizes src. It returns an error with line information for
// unrecognized characters.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	adv := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				adv(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			adv(2)
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				adv(1)
			}
			if i+1 >= n {
				return nil, fmt.Errorf("cir: line %d: unterminated block comment", line)
			}
			adv(2)
		case c == '#':
			start := i
			l0, c0 := line, col
			for i < n && src[i] != '\n' {
				adv(1)
			}
			text := strings.TrimSpace(src[start:i])
			if !strings.HasPrefix(text, "#pragma") {
				return nil, fmt.Errorf("cir: line %d: unsupported preprocessor directive %q", l0, text)
			}
			toks = append(toks, Token{Kind: TokPragma, Text: text, Line: l0, Col: c0})
		case isDigit(c):
			start := i
			l0, c0 := line, col
			for i < n && (isDigit(src[i]) || src[i] == 'x' || src[i] == 'X' ||
				(src[i] >= 'a' && src[i] <= 'f') || (src[i] >= 'A' && src[i] <= 'F')) {
				adv(1)
			}
			toks = append(toks, Token{Kind: TokInt, Text: src[start:i], Line: l0, Col: c0})
		case isAlpha(c):
			start := i
			l0, c0 := line, col
			for i < n && (isAlpha(src[i]) || isDigit(src[i])) {
				adv(1)
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: l0, Col: c0})
		default:
			l0, c0 := line, col
			matched := false
			for _, p := range punct2 {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: l0, Col: c0})
					adv(len(p))
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%<>=!&|^~()[]{},;", rune(c)) {
				toks = append(toks, Token{Kind: TokPunct, Text: string(c), Line: l0, Col: c0})
				adv(1)
			} else {
				return nil, fmt.Errorf("cir: line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
