package cir

import (
	"mpsockit/internal/platform"
)

// Op-mix cost weights per PE class, in cycles. These mirror the MR32
// timing tables (internal/isa) at the statement level so the MAPS
// partitioner and mapper (section IV) can estimate WCET per candidate
// PE class without compiling.
type classWeights struct {
	alu, mul, div, mem, branch, call int64
}

var costTable = map[platform.PEClass]classWeights{
	platform.RISC: {alu: 1, mul: 3, div: 18, mem: 2, branch: 2, call: 6},
	platform.DSP:  {alu: 1, mul: 1, div: 8, mem: 1, branch: 3, call: 8},
	platform.VLIW: {alu: 1, mul: 2, div: 12, mem: 1, branch: 4, call: 10},
	platform.ACC:  {alu: 1, mul: 1, div: 4, mem: 1, branch: 2, call: 4},
	platform.CTRL: {alu: 1, mul: 4, div: 20, mem: 2, branch: 1, call: 4},
}

// DefaultTrip is the iteration count assumed for loops whose bounds
// are not literal constants.
const DefaultTrip = 16

// CostModel estimates execution cycles of CIR fragments.
type CostModel struct {
	// Trip overrides the default assumed trip count for unbounded loops.
	Trip int
	prog *Program
	memo map[*FuncDecl]map[platform.PEClass]int64
	// depth guards against unbounded recursion in call-cost lookup.
	depth int
}

// NewCostModel builds a cost model over prog.
func NewCostModel(prog *Program) *CostModel {
	return &CostModel{
		Trip: DefaultTrip, prog: prog,
		memo: map[*FuncDecl]map[platform.PEClass]int64{},
	}
}

// FuncCycles estimates one invocation of fn on the given PE class.
func (cm *CostModel) FuncCycles(fn *FuncDecl, class platform.PEClass) int64 {
	if m, ok := cm.memo[fn]; ok {
		if v, ok := m[class]; ok {
			return v
		}
	}
	if cm.depth > 16 {
		return 1000 // recursion fallback
	}
	cm.depth++
	v := cm.BlockCycles(fn.Body, class)
	cm.depth--
	if cm.memo[fn] == nil {
		cm.memo[fn] = map[platform.PEClass]int64{}
	}
	cm.memo[fn][class] = v
	return v
}

// BlockCycles estimates a block.
func (cm *CostModel) BlockCycles(b *Block, class platform.PEClass) int64 {
	var total int64
	for _, s := range b.Stmts {
		total += cm.StmtCycles(s, class)
	}
	return total
}

// StmtCycles estimates one statement, scaling loop bodies by their
// (literal or assumed) trip counts.
func (cm *CostModel) StmtCycles(s Stmt, class platform.PEClass) int64 {
	w := costTable[class]
	switch x := s.(type) {
	case *Block:
		return cm.BlockCycles(x, class)
	case *DeclStmt:
		if x.Decl.Init != nil {
			return cm.ExprCycles(x.Decl.Init, class) + w.mem
		}
		return w.alu
	case *AssignStmt:
		c := cm.ExprCycles(x.RHS, class) + w.mem
		if _, isIdent := x.LHS.(*Ident); !isIdent {
			c += cm.ExprCycles(x.LHS, class)
		}
		return c
	case *IfStmt:
		c := cm.ExprCycles(x.Cond, class) + w.branch
		t := cm.BlockCycles(x.Then, class)
		e := int64(0)
		if x.Else != nil {
			e = cm.BlockCycles(x.Else, class)
		}
		// Average the arms: static estimate without profiles.
		return c + (t+e)/2
	case *WhileStmt:
		body := cm.BlockCycles(x.Body, class) + cm.ExprCycles(x.Cond, class) + w.branch
		return body * int64(cm.Trip)
	case *ForStmt:
		trip := int64(TripCount(x, cm.Trip))
		body := cm.BlockCycles(x.Body, class) + w.branch
		if x.Cond != nil {
			body += cm.ExprCycles(x.Cond, class)
		}
		if x.Post != nil {
			body += cm.StmtCycles(x.Post, class)
		}
		var init int64
		if x.Init != nil {
			init = cm.StmtCycles(x.Init, class)
		}
		return init + body*trip
	case *ReturnStmt:
		if x.Val != nil {
			return cm.ExprCycles(x.Val, class) + w.branch
		}
		return w.branch
	case *ExprStmt:
		return cm.ExprCycles(x.X, class)
	}
	return 1
}

// ExprCycles estimates one expression evaluation.
func (cm *CostModel) ExprCycles(e Expr, class platform.PEClass) int64 {
	w := costTable[class]
	switch x := e.(type) {
	case *IntLit:
		return 0
	case *Ident:
		return w.alu
	case *IndexExpr:
		return cm.ExprCycles(x.Base, class) + cm.ExprCycles(x.Idx, class) + w.mem
	case *UnaryExpr:
		c := cm.ExprCycles(x.X, class)
		if x.Op == "*" {
			return c + w.mem
		}
		return c + w.alu
	case *BinaryExpr:
		c := cm.ExprCycles(x.L, class) + cm.ExprCycles(x.R, class)
		switch x.Op {
		case "*":
			return c + w.mul
		case "/", "%":
			return c + w.div
		default:
			return c + w.alu
		}
	case *CallExpr:
		var c int64 = w.call
		for _, a := range x.Args {
			c += cm.ExprCycles(a, class)
		}
		if fn := cm.prog.Func(x.Fn); fn != nil {
			c += cm.FuncCycles(fn, class)
		} else {
			c += w.call // builtin
		}
		return c
	}
	return 1
}

// TripCount extracts a literal trip count from a canonical
// `for (i = a; i < b; i++)`-shaped loop, falling back to def.
func TripCount(f *ForStmt, def int) int {
	lo, hi, step, ok := loopBounds(f)
	if !ok || step == 0 {
		return def
	}
	n := (hi - lo + step - 1) / step
	if n <= 0 {
		return def
	}
	return int(n)
}

// loopBounds recognizes `for (i = C0; i < C1; i += C2)` patterns with
// literal constants; used by the cost model and by the recoder's loop
// splitter to reason about iteration spaces.
func loopBounds(f *ForStmt) (lo, hi, step int64, ok bool) {
	init, okI := f.Init.(*AssignStmt)
	var initDecl *DeclStmt
	if !okI {
		initDecl, okI = f.Init.(*DeclStmt)
	}
	if !okI {
		return 0, 0, 0, false
	}
	if init != nil {
		if lit, isLit := init.RHS.(*IntLit); isLit && init.Op == "=" {
			lo = lit.Val
		} else {
			return 0, 0, 0, false
		}
	} else {
		if initDecl.Decl.Init == nil {
			return 0, 0, 0, false
		}
		lit, isLit := initDecl.Decl.Init.(*IntLit)
		if !isLit {
			return 0, 0, 0, false
		}
		lo = lit.Val
	}
	cond, okC := f.Cond.(*BinaryExpr)
	if !okC || (cond.Op != "<" && cond.Op != "<=") {
		return 0, 0, 0, false
	}
	lit, okL := cond.R.(*IntLit)
	if !okL {
		return 0, 0, 0, false
	}
	hi = lit.Val
	if cond.Op == "<=" {
		hi++
	}
	post, okP := f.Post.(*AssignStmt)
	if !okP || post.Op != "+=" {
		return 0, 0, 0, false
	}
	slit, okS := post.RHS.(*IntLit)
	if !okS || slit.Val <= 0 {
		return 0, 0, 0, false
	}
	step = slit.Val
	return lo, hi, step, true
}

// LoopIndexVar returns the induction variable of a canonical loop, or
// "".
func LoopIndexVar(f *ForStmt) string {
	switch init := f.Init.(type) {
	case *AssignStmt:
		if id, ok := init.LHS.(*Ident); ok {
			return id.Name
		}
	case *DeclStmt:
		return init.Decl.Name
	}
	return ""
}
