package cir

import "fmt"

// CloneProgram deep-copies a program so transformations can operate
// on an AST without aliasing the original (the Source Recoder keeps
// before/after versions for its behaviour-preservation oracle).
func CloneProgram(p *Program) *Program {
	out := &Program{}
	for _, g := range p.Globals {
		out.Globals = append(out.Globals, CloneVarDecl(g))
	}
	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, CloneFunc(f))
	}
	return out
}

// CloneVarDecl deep-copies a declaration.
func CloneVarDecl(d *VarDecl) *VarDecl {
	c := *d
	if d.Init != nil {
		c.Init = CloneExpr(d.Init)
	}
	return &c
}

// CloneFunc deep-copies a function.
func CloneFunc(f *FuncDecl) *FuncDecl {
	c := &FuncDecl{Line: f.Line, Name: f.Name, Ret: f.Ret}
	for _, p := range f.Params {
		c.Params = append(c.Params, CloneVarDecl(p))
	}
	for _, pr := range f.Pragmas {
		cp := &Pragma{Line: pr.Line, Keys: map[string]string{}, Order: append([]string{}, pr.Order...)}
		for k, v := range pr.Keys {
			cp.Keys[k] = v
		}
		c.Pragmas = append(c.Pragmas, cp)
	}
	c.Body = CloneBlock(f.Body)
	return c
}

// CloneBlock deep-copies a block.
func CloneBlock(b *Block) *Block {
	c := &Block{Line: b.Line}
	for _, s := range b.Stmts {
		c.Stmts = append(c.Stmts, CloneStmt(s))
	}
	return c
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Block:
		return CloneBlock(x)
	case *DeclStmt:
		return &DeclStmt{Line: x.Line, Decl: CloneVarDecl(x.Decl)}
	case *AssignStmt:
		return &AssignStmt{Line: x.Line, LHS: CloneExpr(x.LHS), Op: x.Op, RHS: CloneExpr(x.RHS)}
	case *IfStmt:
		c := &IfStmt{Line: x.Line, Cond: CloneExpr(x.Cond), Then: CloneBlock(x.Then)}
		if x.Else != nil {
			c.Else = CloneBlock(x.Else)
		}
		return c
	case *WhileStmt:
		return &WhileStmt{Line: x.Line, Cond: CloneExpr(x.Cond), Body: CloneBlock(x.Body)}
	case *ForStmt:
		c := &ForStmt{Line: x.Line, Body: CloneBlock(x.Body)}
		if x.Init != nil {
			c.Init = CloneStmt(x.Init)
		}
		if x.Cond != nil {
			c.Cond = CloneExpr(x.Cond)
		}
		if x.Post != nil {
			c.Post = CloneStmt(x.Post)
		}
		return c
	case *ReturnStmt:
		c := &ReturnStmt{Line: x.Line}
		if x.Val != nil {
			c.Val = CloneExpr(x.Val)
		}
		return c
	case *ExprStmt:
		return &ExprStmt{Line: x.Line, X: CloneExpr(x.X)}
	}
	panic(fmt.Sprintf("cir: CloneStmt: unknown %T", s))
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *IntLit:
		c := *x
		return &c
	case *Ident:
		c := *x
		return &c
	case *IndexExpr:
		return &IndexExpr{Line: x.Line, Base: CloneExpr(x.Base), Idx: CloneExpr(x.Idx)}
	case *UnaryExpr:
		return &UnaryExpr{Line: x.Line, Op: x.Op, X: CloneExpr(x.X)}
	case *BinaryExpr:
		return &BinaryExpr{Line: x.Line, Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *CallExpr:
		c := &CallExpr{Line: x.Line, Fn: x.Fn}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	}
	panic(fmt.Sprintf("cir: CloneExpr: unknown %T", e))
}

// LoopBounds exposes the canonical-loop bound analysis: lo, hi, step
// for `for (i = lo; i < hi; i += step)` loops with literal constants.
func LoopBounds(f *ForStmt) (lo, hi, step int64, ok bool) {
	return loopBounds(f)
}
