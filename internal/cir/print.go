package cir

import (
	"fmt"
	"strings"
)

// Print renders a Program back to CIR source. The Source Recoder's
// code generator uses this to synchronize the AST back into the
// designer's document (figure 3 of the paper: "a Code Generator
// synchronizes changes in the AST to the document object").
func Print(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		b.WriteString(printVarDecl(g))
		b.WriteString(";\n")
	}
	if len(p.Globals) > 0 {
		b.WriteString("\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		printFunc(&b, f)
	}
	return b.String()
}

// CountLines returns the number of non-blank source lines Print
// produces — the code-size metric used by the recoder's productivity
// accounting and the CIC translator's reports.
func CountLines(p *Program) int {
	n := 0
	for _, ln := range strings.Split(Print(p), "\n") {
		if strings.TrimSpace(ln) != "" {
			n++
		}
	}
	return n
}

func printVarDecl(d *VarDecl) string {
	var b strings.Builder
	b.WriteString("int ")
	if d.IsPtr {
		b.WriteString("*")
	}
	b.WriteString(d.Name)
	if d.ArrayN > 0 {
		fmt.Fprintf(&b, "[%d]", d.ArrayN)
	}
	if d.Init != nil {
		b.WriteString(" = ")
		b.WriteString(PrintExpr(d.Init))
	}
	return b.String()
}

func printFunc(b *strings.Builder, f *FuncDecl) {
	for _, pr := range f.Pragmas {
		b.WriteString("#pragma maps")
		for _, k := range pr.Order {
			v := pr.Keys[k]
			if v == "" {
				fmt.Fprintf(b, " %s", k)
			} else {
				fmt.Fprintf(b, " %s=%s", k, v)
			}
		}
		b.WriteString("\n")
	}
	ret := "void"
	if f.Ret {
		ret = "int"
	}
	fmt.Fprintf(b, "%s %s(", ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("int ")
		if p.IsPtr {
			b.WriteString("*")
		}
		b.WriteString(p.Name)
	}
	b.WriteString(") ")
	printBlock(b, f.Body, 0)
	b.WriteString("\n")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch x := s.(type) {
	case *Block:
		printBlock(b, x, depth)
		b.WriteString("\n")
	case *DeclStmt:
		b.WriteString(printVarDecl(x.Decl))
		b.WriteString(";\n")
	case *AssignStmt:
		fmt.Fprintf(b, "%s %s %s;\n", PrintExpr(x.LHS), x.Op, PrintExpr(x.RHS))
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) ", PrintExpr(x.Cond))
		printBlock(b, x.Then, depth)
		if x.Else != nil {
			b.WriteString(" else ")
			printBlock(b, x.Else, depth)
		}
		b.WriteString("\n")
	case *WhileStmt:
		fmt.Fprintf(b, "while (%s) ", PrintExpr(x.Cond))
		printBlock(b, x.Body, depth)
		b.WriteString("\n")
	case *ForStmt:
		b.WriteString("for (")
		if x.Init != nil {
			b.WriteString(printSimple(x.Init))
		}
		b.WriteString("; ")
		if x.Cond != nil {
			b.WriteString(PrintExpr(x.Cond))
		}
		b.WriteString("; ")
		if x.Post != nil {
			b.WriteString(printSimple(x.Post))
		}
		b.WriteString(") ")
		printBlock(b, x.Body, depth)
		b.WriteString("\n")
	case *ReturnStmt:
		if x.Val != nil {
			fmt.Fprintf(b, "return %s;\n", PrintExpr(x.Val))
		} else {
			b.WriteString("return;\n")
		}
	case *ExprStmt:
		fmt.Fprintf(b, "%s;\n", PrintExpr(x.X))
	}
}

// printSimple renders a statement without trailing semicolon/newline
// (for-clause position).
func printSimple(s Stmt) string {
	switch x := s.(type) {
	case *DeclStmt:
		return printVarDecl(x.Decl)
	case *AssignStmt:
		return fmt.Sprintf("%s %s %s", PrintExpr(x.LHS), x.Op, PrintExpr(x.RHS))
	case *ExprStmt:
		return PrintExpr(x.X)
	}
	return "/*?*/"
}

// PrintExpr renders an expression with minimal but safe
// parenthesization.
func PrintExpr(e Expr) string {
	return printExprPrec(e, 0)
}

func printExprPrec(e Expr, parent int) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *Ident:
		return x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", printExprPrec(x.Base, 11), PrintExpr(x.Idx))
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", x.Op, printExprPrec(x.X, 11))
	case *BinaryExpr:
		prec := binPrec[x.Op]
		s := fmt.Sprintf("%s %s %s",
			printExprPrec(x.L, prec), x.Op, printExprPrec(x.R, prec+1))
		if prec < parent {
			return "(" + s + ")"
		}
		return s
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = PrintExpr(a)
		}
		return fmt.Sprintf("%s(%s)", x.Fn, strings.Join(args, ", "))
	}
	return "/*?*/"
}
