package cir

import "fmt"

// Builtins callable from CIR code. chan_send/chan_recv are the channel
// primitives the Source Recoder inserts when parallelizing (section
// VI: "synchronize accesses to shared data by inserting communication
// channels"); the interpreter and the CIC translator give them
// semantics.
var Builtins = map[string]int{ // name -> arity
	"print":     1,
	"abs":       1,
	"min":       2,
	"max":       2,
	"clip":      3,
	"chan_send": 2,
	"chan_recv": 1,
}

type checker struct {
	prog   *Program
	errs   []error
	scopes []map[string]*VarDecl
}

// Check validates name resolution, arity, l-values and pragma syntax.
// It returns the first error (with source line) or nil.
func Check(prog *Program) error {
	c := &checker{prog: prog}
	global := map[string]*VarDecl{}
	for _, g := range prog.Globals {
		if _, dup := global[g.Name]; dup {
			c.errf(g.Line, "duplicate global %q", g.Name)
		}
		global[g.Name] = g
		if g.Init != nil {
			c.scopes = []map[string]*VarDecl{global}
			c.expr(g.Init)
		}
	}
	seenFn := map[string]bool{}
	for _, f := range prog.Funcs {
		if seenFn[f.Name] {
			c.errf(f.Line, "duplicate function %q", f.Name)
		}
		if _, isBuiltin := Builtins[f.Name]; isBuiltin {
			c.errf(f.Line, "function %q shadows a builtin", f.Name)
		}
		seenFn[f.Name] = true
	}
	for _, f := range prog.Funcs {
		c.scopes = []map[string]*VarDecl{global, {}}
		for _, p := range f.Params {
			if _, dup := c.scopes[1][p.Name]; dup {
				c.errf(p.Line, "duplicate parameter %q", p.Name)
			}
			c.scopes[1][p.Name] = p
		}
		c.block(f.Body)
		for _, pr := range f.Pragmas {
			c.pragma(pr)
		}
	}
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

func (c *checker) errf(line int, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("cir: line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (c *checker) pragma(p *Pragma) {
	known := map[string]bool{
		"task": true, "period": true, "deadline": true, "pe": true,
		"parallel": true, "priority": true, "hard": true, "soft": true,
	}
	for k := range p.Keys {
		if !known[k] {
			c.errf(p.Line, "unknown pragma key %q", k)
		}
	}
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*VarDecl{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(d *VarDecl) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[d.Name]; dup {
		c.errf(d.Line, "duplicate declaration of %q", d.Name)
	}
	top[d.Name] = d
}

// Lookup resolves name against the scope stack.
func (c *checker) lookup(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d, ok := c.scopes[i][name]; ok {
			return d
		}
	}
	return nil
}

func (c *checker) block(b *Block) {
	c.push()
	for _, s := range b.Stmts {
		c.stmt(s)
	}
	c.pop()
}

func (c *checker) stmt(s Stmt) {
	switch x := s.(type) {
	case *Block:
		c.block(x)
	case *DeclStmt:
		if x.Decl.Init != nil {
			c.expr(x.Decl.Init)
		}
		c.declare(x.Decl)
	case *AssignStmt:
		c.expr(x.LHS)
		c.expr(x.RHS)
		if id, ok := x.LHS.(*Ident); ok {
			if d := c.lookup(id.Name); d != nil && d.ArrayN > 0 {
				c.errf(x.Line, "cannot assign to array %q without an index", id.Name)
			}
		}
	case *IfStmt:
		c.expr(x.Cond)
		c.block(x.Then)
		if x.Else != nil {
			c.block(x.Else)
		}
	case *WhileStmt:
		c.expr(x.Cond)
		c.block(x.Body)
	case *ForStmt:
		c.push()
		if x.Init != nil {
			c.stmt(x.Init)
		}
		if x.Cond != nil {
			c.expr(x.Cond)
		}
		if x.Post != nil {
			c.stmt(x.Post)
		}
		c.block(x.Body)
		c.pop()
	case *ReturnStmt:
		if x.Val != nil {
			c.expr(x.Val)
		}
	case *ExprStmt:
		c.expr(x.X)
	}
}

func (c *checker) expr(e Expr) {
	switch x := e.(type) {
	case *IntLit:
	case *Ident:
		if c.lookup(x.Name) == nil {
			c.errf(x.Line, "undeclared identifier %q", x.Name)
		}
	case *IndexExpr:
		c.expr(x.Base)
		c.expr(x.Idx)
		if id, ok := x.Base.(*Ident); ok {
			if d := c.lookup(id.Name); d != nil && d.ArrayN == 0 && !d.IsPtr {
				c.errf(x.Line, "indexing scalar %q", id.Name)
			}
		}
	case *UnaryExpr:
		c.expr(x.X)
		if x.Op == "&" {
			if _, ok := x.X.(*Ident); !ok {
				if _, ok := x.X.(*IndexExpr); !ok {
					c.errf(x.Line, "'&' needs a variable or element")
				}
			}
		}
	case *BinaryExpr:
		c.expr(x.L)
		c.expr(x.R)
	case *CallExpr:
		if arity, ok := Builtins[x.Fn]; ok {
			if len(x.Args) != arity {
				c.errf(x.Line, "builtin %q wants %d args, got %d", x.Fn, arity, len(x.Args))
			}
		} else if f := c.prog.Func(x.Fn); f != nil {
			if len(x.Args) != len(f.Params) {
				c.errf(x.Line, "function %q wants %d args, got %d", x.Fn, len(f.Params), len(x.Args))
			}
		} else {
			c.errf(x.Line, "call to undefined function %q", x.Fn)
		}
		for _, a := range x.Args {
			c.expr(a)
		}
	}
}
