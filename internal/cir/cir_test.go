package cir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("int x = 42; // comment\nx += 0x1f; /* block */ if (x <= 3) {}")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind != TokEOF {
			texts = append(texts, tk.Text)
		}
	}
	want := []string{"int", "x", "=", "42", ";", "x", "+=", "0x1f", ";", "if", "(", "x", "<=", "3", ")", "{", "}"}
	if len(texts) != len(want) {
		t.Fatalf("tokens %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("int x = $;"); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Fatal("unterminated comment accepted")
	}
	if _, err := Lex("#include <stdio.h>"); err == nil {
		t.Fatal("#include accepted")
	}
}

func TestParseSimpleProgram(t *testing.T) {
	prog := MustParse(`
		int g;
		int buf[16];

		int add(int a, int b) {
			return a + b;
		}

		void main() {
			g = add(2, 3);
			buf[0] = g * 2;
		}
	`)
	if len(prog.Globals) != 2 || len(prog.Funcs) != 2 {
		t.Fatalf("parsed %d globals %d funcs", len(prog.Globals), len(prog.Funcs))
	}
	if prog.Globals[1].ArrayN != 16 {
		t.Fatal("array size lost")
	}
	if !prog.Func("add").Ret || prog.Func("main").Ret {
		t.Fatal("return types wrong")
	}
}

func TestParsePragmas(t *testing.T) {
	prog := MustParse(`
		#pragma maps task period=1000 deadline=800 pe=DSP
		void filter() {
			int x = 0;
			x += 1;
		}
	`)
	f := prog.Func("filter")
	if len(f.Pragmas) != 1 {
		t.Fatalf("pragmas = %d", len(f.Pragmas))
	}
	if v, ok := f.Pragma("period"); !ok || v != "1000" {
		t.Fatalf("period pragma = %q %v", v, ok)
	}
	if v, ok := f.Pragma("pe"); !ok || v != "DSP" {
		t.Fatalf("pe pragma = %q %v", v, ok)
	}
	if _, ok := f.Pragma("task"); !ok {
		t.Fatal("flag pragma lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int;",
		"void main() { x = 1; }",              // undeclared
		"void main() { int x; x = y; }",       // undeclared rhs
		"void main() { 3 = 4; }",              // bad lvalue
		"void main() { int a[4]; a = 3; }",    // whole-array assign
		"void main() { int x; x[0] = 1; }",    // index scalar
		"void main() { foo(); }",              // unknown function
		"int f(int a) { return a; } void main() { f(1,2); }", // arity
		"void main() { print(1,2); }",         // builtin arity
		"#pragma maps bogus=1\nvoid f() {}",   // unknown pragma key
		"void f() {} void f() {}",             // duplicate function
		"void main() { if (1) { } else",       // unterminated
		"#pragma once\nvoid f() {}",           // non-maps pragma
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad program: %s", src)
		}
	}
}

func TestInterpArithmetic(t *testing.T) {
	prog := MustParse(`
		void main() {
			int x = 10;
			int y = 3;
			print(x + y);
			print(x - y);
			print(x * y);
			print(x / y);
			print(x % y);
			print(x << 2);
			print(x >> 1);
			print(-x);
			print(!0);
			print(~0);
			print(x > y && y > 0);
			print(x < y || y < 0);
			print(min(x, y));
			print(max(x, y));
			print(abs(0 - 7));
			print(clip(99, 0, 31));
		}
	`)
	in, err := NewInterp(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{13, 7, 30, 3, 1, 40, 5, -10, 1, -1, 1, 0, 3, 10, 7, 31}
	if len(in.Output) != len(want) {
		t.Fatalf("output %v, want %v", in.Output, want)
	}
	for i := range want {
		if in.Output[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, in.Output[i], want[i])
		}
	}
}

func TestInterpControlFlow(t *testing.T) {
	prog := MustParse(`
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		void main() {
			int s = 0;
			for (int i = 0; i < 10; i++) {
				s += i;
			}
			print(s);
			int j = 0;
			while (j < 5) { j++; }
			print(j);
			print(fib(10));
		}
	`)
	in, _ := NewInterp(prog)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{45, 5, 55}
	for i := range want {
		if in.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", in.Output, want)
		}
	}
}

func TestInterpArraysAndGlobals(t *testing.T) {
	prog := MustParse(`
		int data[8];
		int total;
		void main() {
			for (int i = 0; i < 8; i++) {
				data[i] = i * i;
			}
			total = 0;
			for (int i = 0; i < 8; i++) {
				total += data[i];
			}
		}
	`)
	in, _ := NewInterp(prog)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := in.Global("total")
	if got != 140 {
		t.Fatalf("total = %d, want 140", got)
	}
	arr, _ := in.GlobalArray("data")
	if arr[7] != 49 {
		t.Fatalf("data[7] = %d", arr[7])
	}
}

func TestInterpPointers(t *testing.T) {
	prog := MustParse(`
		int a[4];
		void fill(int *p, int n) {
			for (int i = 0; i < n; i++) {
				*(p + i) = i + 100;
			}
		}
		void main() {
			fill(a, 4);
			int *q = &a[2];
			print(*q);
			print(q[1]);
			*q = 7;
			print(a[2]);
		}
	`)
	in, _ := NewInterp(prog)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{102, 103, 7}
	for i := range want {
		if in.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", in.Output, want)
		}
	}
}

func TestInterpArrayParamAliasing(t *testing.T) {
	prog := MustParse(`
		int buf[4];
		void twice(int b[]) {
			for (int i = 0; i < 4; i++) { b[i] *= 2; }
		}
		void main() {
			for (int i = 0; i < 4; i++) { buf[i] = i + 1; }
			twice(buf);
		}
	`)
	in, _ := NewInterp(prog)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	arr, _ := in.GlobalArray("buf")
	for i, v := range arr {
		if v != int64((i+1)*2) {
			t.Fatalf("buf = %v", arr)
		}
	}
}

func TestInterpChannels(t *testing.T) {
	prog := MustParse(`
		void producer() {
			for (int i = 0; i < 4; i++) { chan_send(1, i * 10); }
		}
		void consumer() {
			for (int i = 0; i < 4; i++) { print(chan_recv(1)); }
		}
		void main() {
			producer();
			consumer();
		}
	`)
	in, _ := NewInterp(prog)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 10, 20, 30}
	for i := range want {
		if in.Output[i] != want[i] {
			t.Fatalf("output = %v", in.Output)
		}
	}
}

func TestInterpRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"div0", "void main() { int x = 1; int y = 0; print(x / y); }"},
		{"oob", "void main() { int a[2]; a[5] = 1; }"},
		{"negidx", "void main() { int a[2]; int i = 0 - 1; a[i] = 1; }"},
		{"emptychan", "void main() { print(chan_recv(9)); }"},
		{"derefint", "void main() { int x = 3; int y = 0; y = x[0]; }"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			continue // some are caught statically, also fine
		}
		in, err := NewInterp(prog)
		if err != nil {
			continue
		}
		if err := in.Run(); err == nil {
			t.Errorf("%s: no runtime error", c.name)
		}
	}
}

func TestInterpStepLimit(t *testing.T) {
	prog := MustParse("void main() { while (1) { } }")
	in, _ := NewInterp(prog)
	in.MaxSteps = 1000
	if err := in.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("infinite loop not caught: %v", err)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
		int g = 5;
		int buf[8];
		#pragma maps task period=100 pe=DSP
		void work(int *p, int n) {
			int acc = 0;
			for (int i = 0; i < n; i++) {
				if (p[i] > 0) {
					acc += p[i] * 2;
				} else {
					acc -= 1;
				}
			}
			while (acc > 100) { acc /= 2; }
			chan_send(3, acc);
		}
		void main() {
			for (int i = 0; i < 8; i++) { buf[i] = i - 3; }
			work(buf, 8);
			print(chan_recv(3) + g);
		}
	`
	p1 := MustParse(src)
	printed := Print(p1)
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, printed)
	}
	// Semantics preserved: identical interpreter output.
	i1, _ := NewInterp(p1)
	i2, _ := NewInterp(p2)
	if err := i1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := i2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(i1.Output) != len(i2.Output) {
		t.Fatalf("outputs differ: %v vs %v", i1.Output, i2.Output)
	}
	for i := range i1.Output {
		if i1.Output[i] != i2.Output[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
	// Printing must be a fixpoint after one round.
	if Print(p2) != printed {
		t.Fatal("printer not idempotent")
	}
}

func TestPrintPrecedence(t *testing.T) {
	prog := MustParse("void main() { int x = 0; x = (1 + 2) * 3 - 4 / (2 - 1); print(x); }")
	in, _ := NewInterp(prog)
	_ = in.Run()
	if in.Output[0] != 5 {
		t.Fatalf("precedence broken: %d", in.Output[0])
	}
	// Round trip preserves value.
	p2 := MustParse(Print(prog))
	i2, _ := NewInterp(p2)
	_ = i2.Run()
	if i2.Output[0] != 5 {
		t.Fatalf("printed precedence broken: %d", i2.Output[0])
	}
}

func TestCostModelShape(t *testing.T) {
	prog := MustParse(`
		void mulheavy() {
			int s = 0;
			for (int i = 0; i < 100; i++) { s += i * i * i; }
		}
	`)
	cm := NewCostModel(prog)
	fn := prog.Func("mulheavy")
	risc := cm.FuncCycles(fn, 0)     // platform.RISC
	dsp0 := NewCostModel(prog)
	dsp := dsp0.FuncCycles(fn, 1) // platform.DSP
	if dsp >= risc {
		t.Fatalf("DSP (%d) should beat RISC (%d) on multiply-heavy code", dsp, risc)
	}
	// Cost scales with trip count.
	small := MustParse(`
		void mulheavy() {
			int s = 0;
			for (int i = 0; i < 10; i++) { s += i * i * i; }
		}
	`)
	cms := NewCostModel(small)
	if cms.FuncCycles(small.Func("mulheavy"), 0)*5 > risc {
		t.Fatal("cost not scaling with trip count")
	}
}

func TestTripCount(t *testing.T) {
	prog := MustParse(`
		void f() {
			for (int i = 0; i < 64; i++) { print(i); }
			for (int j = 8; j < 64; j += 8) { print(j); }
		}
	`)
	body := prog.Func("f").Body
	l1 := body.Stmts[0].(*ForStmt)
	l2 := body.Stmts[1].(*ForStmt)
	if TripCount(l1, 0) != 64 {
		t.Fatalf("trip l1 = %d", TripCount(l1, 0))
	}
	if TripCount(l2, 0) != 7 {
		t.Fatalf("trip l2 = %d", TripCount(l2, 0))
	}
	if LoopIndexVar(l1) != "i" || LoopIndexVar(l2) != "j" {
		t.Fatal("loop index vars wrong")
	}
}

// Property: any program assembled from a restricted statement pool
// parses, prints, re-parses, and produces identical output — the
// printer/parser pair is semantics-preserving.
func TestPrintParseProperty(t *testing.T) {
	pool := []string{
		"x = x + %d;",
		"x = x * 2 + y;",
		"y = x % 7 + %d;",
		"if (x > y) { x -= y; } else { y -= 1; }",
		"for (int i = 0; i < %d; i++) { x += i; }",
		"while (y > 0) { y /= 2; }",
		"print(x + y);",
	}
	f := func(choice []uint8, a uint8) bool {
		if len(choice) == 0 {
			return true
		}
		if len(choice) > 8 {
			choice = choice[:8]
		}
		var b strings.Builder
		b.WriteString("void main() { int x = 1; int y = 9;\n")
		for _, ch := range choice {
			tpl := pool[int(ch)%len(pool)]
			if strings.Contains(tpl, "%d") {
				b.WriteString(strings.ReplaceAll(tpl, "%d", "3"))
			} else {
				b.WriteString(tpl)
			}
			b.WriteString("\n")
		}
		b.WriteString("print(x); print(y); }\n")
		p1, err := Parse(b.String())
		if err != nil {
			return false
		}
		p2, err := Parse(Print(p1))
		if err != nil {
			return false
		}
		i1, _ := NewInterp(p1)
		i2, _ := NewInterp(p2)
		if i1.Run() != nil || i2.Run() != nil {
			return false
		}
		if len(i1.Output) != len(i2.Output) {
			return false
		}
		for i := range i1.Output {
			if i1.Output[i] != i2.Output[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
