package cir

import (
	"fmt"
	"sort"
)

// Value is a runtime value: an integer or a pointer into an array
// backing store.
type Value struct {
	IsPtr bool
	I     int64
	Data  []int64
	Off   int64
}

// IntV wraps an int64.
func IntV(v int64) Value { return Value{I: v} }

// cell is a variable's storage: scalars are one-element slices so that
// '&' can hand out aliasing pointers. A cell holding a pointer value
// keeps it in ptr (CIR pointers are opaque; they cannot be stored in
// integer slots).
type cell struct {
	data  []int64
	isArr bool
	ptr   *Value
}

// Interp is a tree-walking interpreter for CIR programs. It serves as
// the behavioural oracle: the Source Recoder proves transformations
// semantics-preserving by comparing interpreter outputs before and
// after (section VI), and workload golden models are validated
// against it.
type Interp struct {
	Prog    *Program
	globals map[string]*cell
	// Output collects print() values in order.
	Output []int64
	// Chans are the FIFO channels behind chan_send/chan_recv.
	Chans map[int64][]int64
	// Steps counts executed statements; MaxSteps guards against
	// runaway loops (0 = default 50M).
	Steps    int64
	MaxSteps int64
}

// NewInterp allocates globals and evaluates their initializers.
func NewInterp(prog *Program) (*Interp, error) {
	in := &Interp{
		Prog:     prog,
		globals:  map[string]*cell{},
		Chans:    map[int64][]int64{},
		MaxSteps: 50_000_000,
	}
	for _, g := range prog.Globals {
		c := &cell{}
		if g.ArrayN > 0 {
			c.data = make([]int64, g.ArrayN)
			c.isArr = true
		} else {
			c.data = make([]int64, 1)
		}
		in.globals[g.Name] = c
	}
	for _, g := range prog.Globals {
		if g.Init != nil {
			env := &frame{in: in}
			v, err := in.eval(env, g.Init)
			if err != nil {
				return nil, err
			}
			in.globals[g.Name].data[0] = v.I
		}
	}
	return in, nil
}

// SetGlobal sets a scalar global.
func (in *Interp) SetGlobal(name string, v int64) error {
	c, ok := in.globals[name]
	if !ok || c.isArr {
		return fmt.Errorf("cir: no scalar global %q", name)
	}
	c.data[0] = v
	return nil
}

// Global reads a scalar global.
func (in *Interp) Global(name string) (int64, error) {
	c, ok := in.globals[name]
	if !ok || c.isArr {
		return 0, fmt.Errorf("cir: no scalar global %q", name)
	}
	return c.data[0], nil
}

// SetGlobalArray copies vals into an array global.
func (in *Interp) SetGlobalArray(name string, vals []int64) error {
	c, ok := in.globals[name]
	if !ok || !c.isArr {
		return fmt.Errorf("cir: no array global %q", name)
	}
	if len(vals) > len(c.data) {
		return fmt.Errorf("cir: %d values exceed array %q of %d", len(vals), name, len(c.data))
	}
	copy(c.data, vals)
	return nil
}

// GlobalArray returns a copy of an array global.
func (in *Interp) GlobalArray(name string) ([]int64, error) {
	c, ok := in.globals[name]
	if !ok || !c.isArr {
		return nil, fmt.Errorf("cir: no array global %q", name)
	}
	out := make([]int64, len(c.data))
	copy(out, c.data)
	return out, nil
}

// ChannelIDs returns the IDs of channels that carry data, sorted.
func (in *Interp) ChannelIDs() []int64 {
	ids := make([]int64, 0, len(in.Chans))
	for id := range in.Chans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// frame is one function activation.
type frame struct {
	in     *Interp
	scopes []map[string]*cell
}

func (f *frame) push() { f.scopes = append(f.scopes, map[string]*cell{}) }
func (f *frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *frame) lookup(name string) *cell {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if c, ok := f.scopes[i][name]; ok {
			return c
		}
	}
	return f.in.globals[name]
}

func (f *frame) declare(d *VarDecl, init Value) {
	c := &cell{}
	if d.ArrayN > 0 {
		c.data = make([]int64, d.ArrayN)
		c.isArr = true
	} else {
		c.data = []int64{init.I}
		if init.IsPtr {
			// Pointer stored in a scalar cell is not representable;
			// pointers live in ptrVals.
			c.ptr = &init
			c.data[0] = 0
		}
	}
	f.scopes[len(f.scopes)-1][d.Name] = c
}

// Run calls main() with no arguments.
func (in *Interp) Run() error {
	_, err := in.Call("main")
	return err
}

// Call invokes a CIR function by name.
func (in *Interp) Call(fn string, args ...Value) (Value, error) {
	f := in.Prog.Func(fn)
	if f == nil {
		return Value{}, fmt.Errorf("cir: no function %q", fn)
	}
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("cir: %s wants %d args, got %d", fn, len(f.Params), len(args))
	}
	fr := &frame{in: in}
	fr.push()
	for i, p := range f.Params {
		fr.declare(p, args[i])
	}
	ret, v, err := in.execBlock(fr, f.Body)
	if err != nil {
		return Value{}, err
	}
	_ = ret
	return v, nil
}

func (in *Interp) step(line int) error {
	in.Steps++
	max := in.MaxSteps
	if max == 0 {
		max = 50_000_000
	}
	if in.Steps > max {
		return fmt.Errorf("cir: line %d: step limit exceeded (infinite loop?)", line)
	}
	return nil
}

func (in *Interp) execBlock(f *frame, b *Block) (bool, Value, error) {
	f.push()
	defer f.pop()
	for _, s := range b.Stmts {
		ret, v, err := in.exec(f, s)
		if err != nil || ret {
			return ret, v, err
		}
	}
	return false, Value{}, nil
}

func (in *Interp) exec(f *frame, s Stmt) (bool, Value, error) {
	if err := in.step(s.Pos()); err != nil {
		return false, Value{}, err
	}
	switch x := s.(type) {
	case *Block:
		return in.execBlock(f, x)
	case *DeclStmt:
		var init Value
		if x.Decl.Init != nil {
			v, err := in.eval(f, x.Decl.Init)
			if err != nil {
				return false, Value{}, err
			}
			init = v
		}
		f.declare(x.Decl, init)
	case *AssignStmt:
		rhs, err := in.eval(f, x.RHS)
		if err != nil {
			return false, Value{}, err
		}
		if err := in.assign(f, x.LHS, x.Op, rhs); err != nil {
			return false, Value{}, err
		}
	case *IfStmt:
		c, err := in.eval(f, x.Cond)
		if err != nil {
			return false, Value{}, err
		}
		if truthy(c) {
			return in.execBlock(f, x.Then)
		} else if x.Else != nil {
			return in.execBlock(f, x.Else)
		}
	case *WhileStmt:
		for {
			c, err := in.eval(f, x.Cond)
			if err != nil {
				return false, Value{}, err
			}
			if !truthy(c) {
				break
			}
			ret, v, err := in.execBlock(f, x.Body)
			if err != nil || ret {
				return ret, v, err
			}
			if err := in.step(x.Line); err != nil {
				return false, Value{}, err
			}
		}
	case *ForStmt:
		f.push()
		defer f.pop()
		if x.Init != nil {
			if ret, v, err := in.exec(f, x.Init); err != nil || ret {
				return ret, v, err
			}
		}
		for {
			if x.Cond != nil {
				c, err := in.eval(f, x.Cond)
				if err != nil {
					return false, Value{}, err
				}
				if !truthy(c) {
					break
				}
			}
			ret, v, err := in.execBlock(f, x.Body)
			if err != nil || ret {
				return ret, v, err
			}
			if x.Post != nil {
				if ret, v, err := in.exec(f, x.Post); err != nil || ret {
					return ret, v, err
				}
			}
			if err := in.step(x.Line); err != nil {
				return false, Value{}, err
			}
		}
	case *ReturnStmt:
		if x.Val != nil {
			v, err := in.eval(f, x.Val)
			return true, v, err
		}
		return true, Value{}, nil
	case *ExprStmt:
		_, err := in.eval(f, x.X)
		return false, Value{}, err
	}
	return false, Value{}, nil
}

func truthy(v Value) bool { return v.I != 0 }

// lvalue resolves an assignable expression to a storage slot.
func (in *Interp) lvalue(f *frame, e Expr) (*int64, error) {
	switch x := e.(type) {
	case *Ident:
		c := f.lookup(x.Name)
		if c == nil {
			return nil, fmt.Errorf("cir: line %d: undeclared %q", x.Line, x.Name)
		}
		if c.ptr != nil {
			return nil, fmt.Errorf("cir: line %d: cannot assign integer to pointer %q directly", x.Line, x.Name)
		}
		return &c.data[0], nil
	case *IndexExpr:
		base, err := in.eval(f, x.Base)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(f, x.Idx)
		if err != nil {
			return nil, err
		}
		if !base.IsPtr {
			return nil, fmt.Errorf("cir: line %d: indexing non-array value", x.Line)
		}
		off := base.Off + idx.I
		if off < 0 || off >= int64(len(base.Data)) {
			return nil, fmt.Errorf("cir: line %d: index %d out of bounds [0,%d)", x.Line, off, len(base.Data))
		}
		return &base.Data[off], nil
	case *UnaryExpr:
		if x.Op != "*" {
			return nil, fmt.Errorf("cir: line %d: not assignable", x.Line)
		}
		p, err := in.eval(f, x.X)
		if err != nil {
			return nil, err
		}
		if !p.IsPtr {
			return nil, fmt.Errorf("cir: line %d: dereference of non-pointer", x.Line)
		}
		if p.Off < 0 || p.Off >= int64(len(p.Data)) {
			return nil, fmt.Errorf("cir: line %d: pointer out of bounds", x.Line)
		}
		return &p.Data[p.Off], nil
	}
	return nil, fmt.Errorf("cir: line %d: not assignable", e.Pos())
}

func (in *Interp) assign(f *frame, lhs Expr, op string, rhs Value) error {
	// Whole-pointer assignment: p = &a[i] or p = q + n.
	if id, ok := lhs.(*Ident); ok && rhs.IsPtr && op == "=" {
		c := f.lookup(id.Name)
		if c == nil {
			return fmt.Errorf("cir: line %d: undeclared %q", id.Line, id.Name)
		}
		if !c.isArr {
			cp := rhs
			c.ptr = &cp
			return nil
		}
		return fmt.Errorf("cir: line %d: cannot assign pointer to array %q", id.Line, id.Name)
	}
	slot, err := in.lvalue(f, lhs)
	if err != nil {
		return err
	}
	switch op {
	case "=":
		*slot = rhs.I
	case "+=":
		*slot += rhs.I
	case "-=":
		*slot -= rhs.I
	case "*=":
		*slot *= rhs.I
	case "/=":
		if rhs.I == 0 {
			return fmt.Errorf("cir: line %d: division by zero", lhs.Pos())
		}
		*slot /= rhs.I
	case "%=":
		if rhs.I == 0 {
			return fmt.Errorf("cir: line %d: modulo by zero", lhs.Pos())
		}
		*slot %= rhs.I
	case "<<=":
		*slot <<= uint64(rhs.I) & 63
	case ">>=":
		*slot >>= uint64(rhs.I) & 63
	default:
		return fmt.Errorf("cir: line %d: unknown assignment op %q", lhs.Pos(), op)
	}
	return nil
}

func (in *Interp) eval(f *frame, e Expr) (Value, error) {
	switch x := e.(type) {
	case *IntLit:
		return IntV(x.Val), nil
	case *Ident:
		c := f.lookup(x.Name)
		if c == nil {
			return Value{}, fmt.Errorf("cir: line %d: undeclared %q", x.Line, x.Name)
		}
		if c.ptr != nil {
			return *c.ptr, nil
		}
		if c.isArr {
			// Arrays decay to pointers when used as values.
			return Value{IsPtr: true, Data: c.data}, nil
		}
		return IntV(c.data[0]), nil
	case *IndexExpr:
		slot, err := in.lvalue(f, x)
		if err != nil {
			return Value{}, err
		}
		return IntV(*slot), nil
	case *UnaryExpr:
		switch x.Op {
		case "&":
			switch t := x.X.(type) {
			case *Ident:
				c := f.lookup(t.Name)
				if c == nil {
					return Value{}, fmt.Errorf("cir: line %d: undeclared %q", t.Line, t.Name)
				}
				return Value{IsPtr: true, Data: c.data}, nil
			case *IndexExpr:
				base, err := in.eval(f, t.Base)
				if err != nil {
					return Value{}, err
				}
				idx, err := in.eval(f, t.Idx)
				if err != nil {
					return Value{}, err
				}
				if !base.IsPtr {
					return Value{}, fmt.Errorf("cir: line %d: '&' on non-array element", t.Line)
				}
				return Value{IsPtr: true, Data: base.Data, Off: base.Off + idx.I}, nil
			}
			return Value{}, fmt.Errorf("cir: line %d: bad '&' operand", x.Line)
		case "*":
			p, err := in.eval(f, x.X)
			if err != nil {
				return Value{}, err
			}
			if !p.IsPtr {
				return Value{}, fmt.Errorf("cir: line %d: dereference of non-pointer", x.Line)
			}
			if p.Off < 0 || p.Off >= int64(len(p.Data)) {
				return Value{}, fmt.Errorf("cir: line %d: pointer out of bounds", x.Line)
			}
			return IntV(p.Data[p.Off]), nil
		case "-":
			v, err := in.eval(f, x.X)
			if err != nil {
				return Value{}, err
			}
			return IntV(-v.I), nil
		case "!":
			v, err := in.eval(f, x.X)
			if err != nil {
				return Value{}, err
			}
			if v.I == 0 {
				return IntV(1), nil
			}
			return IntV(0), nil
		case "~":
			v, err := in.eval(f, x.X)
			if err != nil {
				return Value{}, err
			}
			return IntV(^v.I), nil
		}
		return Value{}, fmt.Errorf("cir: line %d: unknown unary %q", x.Line, x.Op)
	case *BinaryExpr:
		l, err := in.eval(f, x.L)
		if err != nil {
			return Value{}, err
		}
		// Short-circuit logicals.
		switch x.Op {
		case "&&":
			if l.I == 0 {
				return IntV(0), nil
			}
			r, err := in.eval(f, x.R)
			if err != nil {
				return Value{}, err
			}
			return boolV(r.I != 0), nil
		case "||":
			if l.I != 0 {
				return IntV(1), nil
			}
			r, err := in.eval(f, x.R)
			if err != nil {
				return Value{}, err
			}
			return boolV(r.I != 0), nil
		}
		r, err := in.eval(f, x.R)
		if err != nil {
			return Value{}, err
		}
		// Pointer arithmetic: ptr +/- int.
		if l.IsPtr && !r.IsPtr && (x.Op == "+" || x.Op == "-") {
			off := r.I
			if x.Op == "-" {
				off = -off
			}
			return Value{IsPtr: true, Data: l.Data, Off: l.Off + off}, nil
		}
		switch x.Op {
		case "+":
			return IntV(l.I + r.I), nil
		case "-":
			return IntV(l.I - r.I), nil
		case "*":
			return IntV(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return Value{}, fmt.Errorf("cir: line %d: division by zero", x.Line)
			}
			return IntV(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return Value{}, fmt.Errorf("cir: line %d: modulo by zero", x.Line)
			}
			return IntV(l.I % r.I), nil
		case "<<":
			return IntV(l.I << (uint64(r.I) & 63)), nil
		case ">>":
			return IntV(l.I >> (uint64(r.I) & 63)), nil
		case "&":
			return IntV(l.I & r.I), nil
		case "|":
			return IntV(l.I | r.I), nil
		case "^":
			return IntV(l.I ^ r.I), nil
		case "==":
			return boolV(l.I == r.I), nil
		case "!=":
			return boolV(l.I != r.I), nil
		case "<":
			return boolV(l.I < r.I), nil
		case "<=":
			return boolV(l.I <= r.I), nil
		case ">":
			return boolV(l.I > r.I), nil
		case ">=":
			return boolV(l.I >= r.I), nil
		}
		return Value{}, fmt.Errorf("cir: line %d: unknown operator %q", x.Line, x.Op)
	case *CallExpr:
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(f, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		if _, ok := Builtins[x.Fn]; ok {
			return in.builtin(x, args)
		}
		return in.Call(x.Fn, args...)
	}
	return Value{}, fmt.Errorf("cir: line %d: cannot evaluate %T", e.Pos(), e)
}

func boolV(b bool) Value {
	if b {
		return IntV(1)
	}
	return IntV(0)
}

func (in *Interp) builtin(x *CallExpr, args []Value) (Value, error) {
	switch x.Fn {
	case "print":
		in.Output = append(in.Output, args[0].I)
		return Value{}, nil
	case "abs":
		v := args[0].I
		if v < 0 {
			v = -v
		}
		return IntV(v), nil
	case "min":
		if args[0].I < args[1].I {
			return args[0], nil
		}
		return args[1], nil
	case "max":
		if args[0].I > args[1].I {
			return args[0], nil
		}
		return args[1], nil
	case "clip":
		v := args[0].I
		if v < args[1].I {
			v = args[1].I
		}
		if v > args[2].I {
			v = args[2].I
		}
		return IntV(v), nil
	case "chan_send":
		id := args[0].I
		in.Chans[id] = append(in.Chans[id], args[1].I)
		return Value{}, nil
	case "chan_recv":
		id := args[0].I
		q := in.Chans[id]
		if len(q) == 0 {
			return Value{}, fmt.Errorf("cir: line %d: chan_recv(%d) on empty channel (run producers first)", x.Line, id)
		}
		in.Chans[id] = q[1:]
		return IntV(q[0]), nil
	}
	return Value{}, fmt.Errorf("cir: line %d: unknown builtin %q", x.Line, x.Fn)
}
