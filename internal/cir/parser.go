package cir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse lexes and parses src into a Program and runs the semantic
// checker.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// workload sources.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[p.pos+1] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("cir: line %d: %s", t.Line, fmt.Sprintf(format, args...))
}

func (p *parser) is(text string) bool { return p.cur().Text == text && p.cur().Kind != TokEOF }

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.cur().Text)
	}
	return nil
}

// parsePragma parses a '#pragma maps k=v k2 ...' token.
func parsePragma(t Token) (*Pragma, error) {
	fields := strings.Fields(t.Text)
	if len(fields) < 2 || fields[0] != "#pragma" || fields[1] != "maps" {
		return nil, fmt.Errorf("cir: line %d: only '#pragma maps' is supported, got %q", t.Line, t.Text)
	}
	pr := &Pragma{Line: t.Line, Keys: map[string]string{}}
	for _, f := range fields[2:] {
		k, v := f, ""
		if i := strings.Index(f, "="); i >= 0 {
			k, v = f[:i], f[i+1:]
		}
		pr.Keys[k] = v
		pr.Order = append(pr.Order, k)
	}
	return pr, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	var pending []*Pragma
	for p.cur().Kind != TokEOF {
		if p.cur().Kind == TokPragma {
			pr, err := parsePragma(p.next())
			if err != nil {
				return nil, err
			}
			pending = append(pending, pr)
			continue
		}
		if !p.is("int") && !p.is("void") {
			return nil, p.errf("expected declaration, found %q", p.cur().Text)
		}
		isVoid := p.cur().Text == "void"
		p.pos++
		isPtr := p.accept("*")
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected identifier, found %q", p.cur().Text)
		}
		name := p.next().Text
		if p.is("(") {
			fn, err := p.funcDecl(name, !isVoid, pending)
			if err != nil {
				return nil, err
			}
			pending = nil
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		if isVoid {
			return nil, p.errf("void variable %q", name)
		}
		if len(pending) > 0 {
			return nil, p.errf("pragma must precede a function")
		}
		d, err := p.varDeclTail(name, isPtr)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, d)
	}
	return prog, nil
}

// varDeclTail parses everything after `int [*] name`: optional array
// size, optional initializer, semicolon.
func (p *parser) varDeclTail(name string, isPtr bool) (*VarDecl, error) {
	d := &VarDecl{Line: p.cur().Line, Name: name, IsPtr: isPtr}
	if p.accept("[") {
		if p.cur().Kind != TokInt {
			return nil, p.errf("array size must be an integer literal")
		}
		n, err := strconv.ParseInt(p.next().Text, 0, 64)
		if err != nil || n <= 0 {
			return nil, p.errf("bad array size")
		}
		d.ArrayN = int(n)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if d.ArrayN > 0 {
			return nil, p.errf("array initializers are not supported")
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, p.expect(";")
}

func (p *parser) funcDecl(name string, ret bool, pragmas []*Pragma) (*FuncDecl, error) {
	fn := &FuncDecl{Line: p.cur().Line, Name: name, Ret: ret, Pragmas: pragmas}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		for {
			if p.accept("void") {
				break
			}
			if err := p.expect("int"); err != nil {
				return nil, err
			}
			isPtr := p.accept("*")
			if p.cur().Kind != TokIdent {
				return nil, p.errf("expected parameter name")
			}
			d := &VarDecl{Line: p.cur().Line, Name: p.next().Text, IsPtr: isPtr, IsParam: true}
			if p.accept("[") {
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				d.IsPtr = true // array parameters decay to pointers
			}
			fn.Params = append(fn.Params, d)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	b := &Block{Line: p.cur().Line}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.accept("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Text == "{":
		return p.block()
	case t.Text == "int":
		p.pos++
		isPtr := p.accept("*")
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected identifier after 'int'")
		}
		name := p.next().Text
		d, err := p.varDeclTail(name, isPtr)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Line: t.Line, Decl: d}, nil
	case t.Text == "if":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Line: t.Line, Cond: cond, Then: then}
		if p.accept("else") {
			if p.is("if") {
				// else-if sugar: wrap in a block.
				inner, err := p.stmt()
				if err != nil {
					return nil, err
				}
				st.Else = &Block{Line: inner.Pos(), Stmts: []Stmt{inner}}
			} else {
				els, err := p.block()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil
	case t.Text == "while":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Line: t.Line, Cond: cond, Body: body}, nil
	case t.Text == "for":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.is(";") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var cond Expr
		if !p.is(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			cond = e
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var post Stmt
		if !p.is(")") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Line: t.Line, Init: init, Cond: cond, Post: post, Body: body}, nil
	case t.Text == "return":
		p.pos++
		st := &ReturnStmt{Line: t.Line}
		if !p.is(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Val = e
		}
		return st, p.expect(";")
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
}

// simpleStmt parses an assignment, increment/decrement, a local
// declaration (for-init), or a bare expression.
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	if t.Text == "int" {
		p.pos++
		isPtr := p.accept("*")
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected identifier after 'int'")
		}
		name := p.next().Text
		d := &VarDecl{Line: t.Line, Name: name, IsPtr: isPtr}
		if p.accept("=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return &DeclStmt{Line: t.Line, Decl: d}, nil
	}
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	cur := p.cur().Text
	switch cur {
	case "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=":
		p.pos++
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !isLValue(lhs) {
			return nil, p.errf("assignment target is not assignable")
		}
		return &AssignStmt{Line: t.Line, LHS: lhs, Op: cur, RHS: rhs}, nil
	case "++", "--":
		p.pos++
		if !isLValue(lhs) {
			return nil, p.errf("increment target is not assignable")
		}
		op := "+="
		if cur == "--" {
			op = "-="
		}
		return &AssignStmt{Line: t.Line, LHS: lhs, Op: op, RHS: &IntLit{Line: t.Line, Val: 1}}, nil
	}
	return &ExprStmt{Line: t.Line, X: lhs}, nil
}

func isLValue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *IndexExpr:
		return true
	case *UnaryExpr:
		return x.Op == "*"
	}
	return false
}

// Operator precedence (C-like).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Text
		prec, ok := binPrec[op]
		if !ok || p.cur().Kind != TokPunct || prec < minPrec {
			return lhs, nil
		}
		line := p.cur().Line
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Line: line, Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch t.Text {
	case "-", "!", "~", "*", "&":
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Line: t.Line, Op: t.Text, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.is("[") {
		line := p.cur().Line
		p.pos++
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		e = &IndexExpr{Line: line, Base: e, Idx: idx}
	}
	return e, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.pos++
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Text)
		}
		return &IntLit{Line: t.Line, Val: v}, nil
	case t.Kind == TokIdent:
		p.pos++
		if p.is("(") {
			p.pos++
			call := &CallExpr{Line: t.Line, Fn: t.Text}
			if !p.accept(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &Ident{Line: t.Line, Name: t.Text}, nil
	case t.Text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	default:
		return nil, p.errf("unexpected token %q in expression", t.Text)
	}
}
