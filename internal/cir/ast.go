package cir

import "fmt"

// Node is the common interface of all AST nodes.
type Node interface {
	Pos() int // source line
}

// Program is a parsed translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Pos implements Node; a program starts at line 1.
func (p *Program) Pos() int { return 1 }

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Pragma is a parsed '#pragma maps' annotation: the lightweight C
// extension of section IV carrying real-time properties (period,
// deadline) and preferred PE types.
type Pragma struct {
	Line int
	// Keys holds key=value entries; flag-style entries map to "".
	Keys map[string]string
	// Order preserves key order for printing.
	Order []string
}

// Pos implements Node.
func (p *Pragma) Pos() int { return p.Line }

// Get returns a pragma value and whether it was present.
func (p *Pragma) Get(key string) (string, bool) {
	v, ok := p.Keys[key]
	return v, ok
}

// VarDecl declares a scalar, array or pointer variable.
type VarDecl struct {
	Line    int
	Name    string
	IsPtr   bool
	ArrayN  int  // 0 = scalar; >0 = array length
	IsParam bool // function parameter
	Init    Expr // optional initializer (scalars only)
}

// Pos implements Node.
func (d *VarDecl) Pos() int { return d.Line }

// FuncDecl is a function definition.
type FuncDecl struct {
	Line    int
	Name    string
	Params  []*VarDecl
	Ret     bool // true when declared 'int', false for 'void'
	Body    *Block
	Pragmas []*Pragma
}

// Pos implements Node.
func (f *FuncDecl) Pos() int { return f.Line }

// Pragma returns the first pragma value for key across the function's
// annotations.
func (f *FuncDecl) Pragma(key string) (string, bool) {
	for _, p := range f.Pragmas {
		if v, ok := p.Get(key); ok {
			return v, ok
		}
	}
	return "", false
}

// Stmt is any statement.
type Stmt interface {
	Node
	stmt()
}

// Block is a `{ ... }` statement list.
type Block struct {
	Line  int
	Stmts []Stmt
}

// DeclStmt wraps a local variable declaration.
type DeclStmt struct {
	Line int
	Decl *VarDecl
}

// AssignStmt is `lhs op rhs;` where op is =, +=, -=, *=, /=, %=, <<=, >>=.
type AssignStmt struct {
	Line int
	LHS  Expr // Ident, Index or Deref
	Op   string
	RHS  Expr
}

// IfStmt is `if (cond) then else otherwise`.
type IfStmt struct {
	Line int
	Cond Expr
	Then *Block
	Else *Block // nil when absent
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	Line int
	Cond Expr
	Body *Block
}

// ForStmt is `for (init; cond; post) body`. Init and Post may be nil.
type ForStmt struct {
	Line int
	Init Stmt // DeclStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *Block
}

// ReturnStmt is `return expr?;`.
type ReturnStmt struct {
	Line int
	Val  Expr // nil for bare return
}

// ExprStmt is an expression evaluated for effect (calls).
type ExprStmt struct {
	Line int
	X    Expr
}

// Pos implementations.
func (s *Block) Pos() int      { return s.Line }
func (s *DeclStmt) Pos() int   { return s.Line }
func (s *AssignStmt) Pos() int { return s.Line }
func (s *IfStmt) Pos() int     { return s.Line }
func (s *WhileStmt) Pos() int  { return s.Line }
func (s *ForStmt) Pos() int    { return s.Line }
func (s *ReturnStmt) Pos() int { return s.Line }
func (s *ExprStmt) Pos() int   { return s.Line }

func (*Block) stmt()      {}
func (*DeclStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*ForStmt) stmt()    {}
func (*ReturnStmt) stmt() {}
func (*ExprStmt) stmt()   {}

// Expr is any expression.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	Line int
	Val  int64
}

// Ident references a variable.
type Ident struct {
	Line int
	Name string
}

// IndexExpr is `base[idx]`.
type IndexExpr struct {
	Line int
	Base Expr // Ident (array or pointer)
	Idx  Expr
}

// UnaryExpr is `-x`, `!x`, `~x`, `*p` (Deref) or `&v` (AddrOf).
type UnaryExpr struct {
	Line int
	Op   string
	X    Expr
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Line int
	Op   string
	L, R Expr
}

// CallExpr is `fn(args...)`.
type CallExpr struct {
	Line int
	Fn   string
	Args []Expr
}

// Pos implementations.
func (e *IntLit) Pos() int     { return e.Line }
func (e *Ident) Pos() int      { return e.Line }
func (e *IndexExpr) Pos() int  { return e.Line }
func (e *UnaryExpr) Pos() int  { return e.Line }
func (e *BinaryExpr) Pos() int { return e.Line }
func (e *CallExpr) Pos() int   { return e.Line }

func (*IntLit) expr()     {}
func (*Ident) expr()      {}
func (*IndexExpr) expr()  {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*CallExpr) expr()   {}

// Walk applies fn to every node in the subtree rooted at n (pre-order);
// fn returning false prunes descent.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		for _, g := range x.Globals {
			Walk(g, fn)
		}
		for _, f := range x.Funcs {
			Walk(f, fn)
		}
	case *VarDecl:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *FuncDecl:
		for _, p := range x.Params {
			Walk(p, fn)
		}
		Walk(x.Body, fn)
	case *Block:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *DeclStmt:
		Walk(x.Decl, fn)
	case *AssignStmt:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
		if x.Post != nil {
			Walk(x.Post, fn)
		}
		Walk(x.Body, fn)
	case *ReturnStmt:
		if x.Val != nil {
			Walk(x.Val, fn)
		}
	case *ExprStmt:
		Walk(x.X, fn)
	case *IndexExpr:
		Walk(x.Base, fn)
		Walk(x.Idx, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *BinaryExpr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *IntLit, *Ident, *Pragma:
	default:
		panic(fmt.Sprintf("cir: Walk: unknown node %T", n))
	}
}
