// Package ttdd implements the section III comparison of the paper:
// time-triggered versus data-driven execution of a real-time stream
// pipeline (the NXP car-radio / mobile-phone setting).
//
// In the time-triggered executor, a design-time periodic schedule
// derived from worst-case execution-time (WCET) estimates triggers
// every stage at fixed instants. When an actual execution time
// exceeds its estimate, data is corrupted exactly as the paper
// describes: "data would be overwritten in a buffer or the same data
// would be read again" — observable at the sink as sequence-number
// gaps and duplicates.
//
// In the data-driven executor, only the source and sink are
// timer-triggered; every other stage starts on data arrival, and
// bounded buffers exert back-pressure. Overruns then shift timing
// (aperiodic execution) but cannot corrupt the stream, which is the
// section's core claim: "a data-driven approach puts less constraints
// on the application software than a time-triggered approach".
package ttdd

import (
	"fmt"

	"mpsockit/internal/sim"
	"mpsockit/internal/xrand"
)

// Token is one unit of stream data carrying provenance for corruption
// detection.
type Token struct {
	Seq      int
	Produced sim.Time
}

// Stage describes one pipeline stage's timing behaviour.
type Stage struct {
	Name string
	// WCETEst is the design-time estimate the time-triggered schedule
	// is built from. The paper stresses such estimates can be
	// "unreliable"; experiments sweep actual behaviour past them.
	WCETEst sim.Time
	// Mean is the actual mean execution time.
	Mean sim.Time
	// Jitter is the half-width of the uniform actual-time
	// distribution, as a fraction of Mean (0.3 = ±30%).
	Jitter float64
}

// sample returns the actual execution time of one firing.
func (s *Stage) sample(r *xrand.Rand) sim.Time {
	if s.Jitter <= 0 {
		return s.Mean
	}
	u := 2*r.Float64() - 1
	d := sim.Time(float64(s.Mean) * (1 + s.Jitter*u))
	if d < sim.Time(1) {
		d = 1
	}
	return d
}

// Spec describes one pipeline experiment, run identically through
// both executors.
type Spec struct {
	Stages []Stage
	// Period is the source and sink trigger period.
	Period sim.Time
	// BufferCap is the per-edge buffer capacity in tokens.
	BufferCap int
	// Iterations is the number of source triggers.
	Iterations int
	// Seed drives the shared jitter streams; the two executors see
	// identical actual execution times per (stage, firing).
	Seed uint64
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if len(s.Stages) < 2 {
		return fmt.Errorf("ttdd: need at least source and sink stages")
	}
	if s.Period <= 0 || s.Iterations <= 0 {
		return fmt.Errorf("ttdd: period and iterations must be positive")
	}
	if s.BufferCap <= 0 {
		return fmt.Errorf("ttdd: buffer capacity must be positive")
	}
	return nil
}

// Metrics aggregates the observable outcome of one run.
type Metrics struct {
	Executor string
	Produced int
	Consumed int
	// Gaps counts sink-observed missing sequence numbers (data lost to
	// overwrites) and Duplicates re-read stale data; Corruptions is
	// their sum. Data-driven execution keeps these at zero by
	// construction.
	Gaps       int
	Duplicates int
	Corruptions int
	// Overruns counts firings whose actual time exceeded the WCET
	// estimate (the hazard trigger, identical across executors).
	Overruns int
	// SinkMisses counts sink triggers that found no fresh token. The
	// paper deems source/sink robust to this, unlike in-stream
	// corruption.
	SinkMisses int
	// SourceBlocked counts source triggers rejected by back-pressure
	// (data-driven) — with adequately sized buffers this stays zero.
	SourceBlocked int
	// Latency of delivered tokens, end to end.
	MaxLatency sim.Time
	SumLatency sim.Time
}

// AvgLatency returns the mean end-to-end latency of consumed tokens.
func (m *Metrics) AvgLatency() sim.Time {
	if m.Consumed == 0 {
		return 0
	}
	return m.SumLatency / sim.Time(m.Consumed)
}

// CorruptionRate returns corruptions per source trigger.
func (m *Metrics) CorruptionRate() float64 {
	if m.Produced == 0 {
		return 0
	}
	return float64(m.Corruptions) / float64(m.Produced)
}

// sinkCheck folds one delivered token into the metrics. droppedAtSource
// reports sequence numbers the source itself dropped before they ever
// entered the stream; the paper treats source/sink-side loss as
// tolerable, so such gaps are not counted as in-stream corruption.
func (m *Metrics) sinkCheck(tok Token, now sim.Time, lastSeq *int, droppedAtSource func(int) bool) {
	m.Consumed++
	lat := now - tok.Produced
	if lat > m.MaxLatency {
		m.MaxLatency = lat
	}
	m.SumLatency += lat
	switch {
	case tok.Seq == *lastSeq+1:
		// in order
	case tok.Seq <= *lastSeq:
		m.Duplicates++
		m.Corruptions++
	default:
		for s := *lastSeq + 1; s < tok.Seq; s++ {
			if droppedAtSource != nil && droppedAtSource(s) {
				continue
			}
			m.Gaps++
			m.Corruptions++
		}
	}
	if tok.Seq > *lastSeq {
		*lastSeq = tok.Seq
	}
}

// jitterStreams builds one deterministic RNG per stage so both
// executors sample identical actual execution times.
func (s *Spec) jitterStreams() []*xrand.Rand {
	rs := make([]*xrand.Rand, len(s.Stages))
	for i := range rs {
		rs[i] = xrand.New(s.Seed*1_000_003 + uint64(i)*97)
	}
	return rs
}

// slot is a Kopetz-style state-message buffer: the writer overwrites
// the single most-recent value, the reader reads it without consuming.
// An overwrite of a never-read value loses data (sequence gap); a
// re-read of an un-refreshed value duplicates data — the exact
// corruption mechanisms the paper attributes to time-triggered
// communication under WCET violations.
type slot struct {
	tok        Token
	valid      bool
	Overwrites int
}

func (s *slot) write(t Token) {
	if s.valid {
		s.Overwrites++
	}
	s.tok = t
	s.valid = true
}

func (s *slot) read() (Token, bool) {
	return s.tok, s.valid
}

// RunTimeTriggered executes the pipeline under a static periodic
// schedule: stage i is triggered at offset_i + k*Period, with
// offset_i the prefix sum of WCET estimates (the design-time schedule
// of section III). Stages communicate through state-message slots;
// nobody ever waits, so an execution time beyond its estimate
// silently corrupts the stream.
func RunTimeTriggered(spec Spec) (*Metrics, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	m := &Metrics{Executor: "time-triggered"}
	rngs := spec.jitterStreams()
	n := len(spec.Stages)

	slots := make([]*slot, n-1)
	for i := range slots {
		slots[i] = &slot{}
	}
	offsets := make([]sim.Time, n)
	for i := 1; i < n; i++ {
		offsets[i] = offsets[i-1] + spec.Stages[i-1].WCETEst
	}
	lastSeq := -1

	for it := 0; it < spec.Iterations; it++ {
		it := it
		// Source trigger.
		k.At(offsets[0]+sim.Time(it)*spec.Period, func() {
			st := &spec.Stages[0]
			d := st.sample(rngs[0])
			if d > st.WCETEst {
				m.Overruns++
			}
			tok := Token{Seq: it, Produced: k.Now()}
			m.Produced++
			k.Schedule(d, func() { slots[0].write(tok) })
		})
		// Middle stages.
		for si := 1; si < n-1; si++ {
			si := si
			k.At(offsets[si]+sim.Time(it)*spec.Period, func() {
				st := &spec.Stages[si]
				tok, ok := slots[si-1].read()
				if !ok {
					return // nothing ever arrived; skip firing
				}
				d := st.sample(rngs[si])
				if d > st.WCETEst {
					m.Overruns++
				}
				k.Schedule(d, func() { slots[si].write(tok) })
			})
		}
		// Sink trigger.
		k.At(offsets[n-1]+sim.Time(it)*spec.Period, func() {
			st := &spec.Stages[n-1]
			d := st.sample(rngs[n-1])
			if d > st.WCETEst {
				m.Overruns++
			}
			tok, ok := slots[n-2].read()
			if !ok {
				m.SinkMisses++
				return
			}
			m.sinkCheck(tok, k.Now(), &lastSeq, nil)
		})
	}
	k.Run()
	return m, nil
}

// RunDataDriven executes the pipeline with timer-triggered source and
// sink and arrival-triggered middle stages over blocking bounded
// buffers (back-pressure) — the Hijdra execution model of section III.
func RunDataDriven(spec Spec) (*Metrics, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	m := &Metrics{Executor: "data-driven"}
	rngs := spec.jitterStreams()
	n := len(spec.Stages)

	queues := make([]*sim.Queue, n-1)
	for i := range queues {
		queues[i] = k.NewQueue(fmt.Sprintf("dd%d", i), spec.BufferCap)
	}
	// Same startup offset for the sink as in the TT schedule, so
	// latency and miss numbers are comparable.
	var sinkOffset sim.Time
	for i := 0; i < n-1; i++ {
		sinkOffset += spec.Stages[i].WCETEst
	}
	lastSeq := -1
	dropped := map[int]bool{}

	// Source: strictly periodic, non-blocking (a periodic sensor
	// cannot wait); a full buffer drops the new sample and counts.
	for it := 0; it < spec.Iterations; it++ {
		it := it
		k.At(sim.Time(it)*spec.Period, func() {
			st := &spec.Stages[0]
			d := st.sample(rngs[0])
			if d > st.WCETEst {
				m.Overruns++
			}
			tok := Token{Seq: it, Produced: k.Now()}
			m.Produced++
			k.Schedule(d, func() {
				if !queues[0].TryPut(tok) {
					m.SourceBlocked++
					dropped[it] = true
				}
			})
		})
	}
	// Middle stages: data-driven processes.
	for si := 1; si < n-1; si++ {
		si := si
		k.Spawn(spec.Stages[si].Name, func(p *sim.Proc) {
			for consumed := 0; consumed < spec.Iterations; consumed++ {
				v := queues[si-1].Get(p)
				st := &spec.Stages[si]
				d := st.sample(rngs[si])
				if d > st.WCETEst {
					m.Overruns++
				}
				p.Delay(d)
				queues[si].Put(p, v)
			}
		})
	}
	// Sink: strictly periodic.
	for it := 0; it < spec.Iterations; it++ {
		it := it
		k.At(sinkOffset+sim.Time(it)*spec.Period, func() {
			st := &spec.Stages[n-1]
			d := st.sample(rngs[n-1])
			if d > st.WCETEst {
				m.Overruns++
			}
			v, ok := queues[n-2].TryGet()
			if !ok {
				m.SinkMisses++
				return
			}
			m.sinkCheck(v.(Token), k.Now(), &lastSeq, func(s int) bool { return dropped[s] })
		})
	}
	k.Run()
	return m, nil
}

// CarRadioSpec returns the package's reference workload: a 5-stage
// car-radio-like chain (sample, demod, filter, stereo, DAC) with the
// given actual-over-estimate jitter. wcetMargin scales estimates
// above the mean (1.1 = 10% engineering margin).
func CarRadioSpec(jitter, wcetMargin float64, iterations int, seed uint64) Spec {
	mk := func(name string, mean sim.Time) Stage {
		return Stage{
			Name: name, Mean: mean,
			WCETEst: sim.Time(float64(mean) * wcetMargin),
			Jitter:  jitter,
		}
	}
	return Spec{
		Stages: []Stage{
			mk("sample", 20*sim.Microsecond),
			mk("demod", 60*sim.Microsecond),
			mk("filter", 80*sim.Microsecond),
			mk("stereo", 50*sim.Microsecond),
			mk("dac", 20*sim.Microsecond),
		},
		Period:     100 * sim.Microsecond,
		BufferCap:  2,
		Iterations: iterations,
		Seed:       seed,
	}
}
