package ttdd

import (
	"testing"

	"mpsockit/internal/sim"
)

func TestNoJitterBothClean(t *testing.T) {
	// With zero jitter and honest WCETs, both executors deliver every
	// token uncorrupted.
	spec := CarRadioSpec(0, 1.1, 200, 1)
	tt, err := RunTimeTriggered(spec)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := RunDataDriven(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Metrics{tt, dd} {
		if m.Corruptions != 0 {
			t.Fatalf("%s corrupted %d tokens with no jitter", m.Executor, m.Corruptions)
		}
		if m.Overruns != 0 {
			t.Fatalf("%s overran %d times with no jitter", m.Executor, m.Overruns)
		}
		if m.Consumed < 190 {
			t.Fatalf("%s consumed only %d/200", m.Executor, m.Consumed)
		}
	}
}

func TestOverrunsCorruptTimeTriggeredOnly(t *testing.T) {
	// 40% jitter against a 10% WCET margin: overruns are frequent.
	spec := CarRadioSpec(0.4, 1.1, 500, 7)
	tt, err := RunTimeTriggered(spec)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := RunDataDriven(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Overruns == 0 {
		t.Fatal("jitter produced no overruns; sweep is meaningless")
	}
	if tt.Corruptions == 0 {
		t.Fatal("time-triggered executor survived overruns uncorrupted — model broken")
	}
	if dd.Corruptions != 0 {
		t.Fatalf("data-driven executor corrupted %d tokens (gaps %d dups %d)",
			dd.Corruptions, dd.Gaps, dd.Duplicates)
	}
	// The data-driven side must still deliver the stream.
	if dd.Consumed < 400 {
		t.Fatalf("data-driven consumed only %d/500", dd.Consumed)
	}
}

func TestCorruptionGrowsWithJitter(t *testing.T) {
	prev := -1
	for _, j := range []float64{0.15, 0.3, 0.6} {
		spec := CarRadioSpec(j, 1.1, 400, 11)
		tt, err := RunTimeTriggered(spec)
		if err != nil {
			t.Fatal(err)
		}
		if tt.Corruptions < prev {
			// Allow small non-monotonic noise but not gross inversion.
			if prev-tt.Corruptions > prev/4 {
				t.Fatalf("corruption fell sharply as jitter rose: %d -> %d", prev, tt.Corruptions)
			}
		}
		prev = tt.Corruptions
	}
	if prev == 0 {
		t.Fatal("no corruption at 60% jitter")
	}
}

func TestDataDrivenAperiodicYetInOrder(t *testing.T) {
	// Heavy jitter makes middle stages aperiodic; the stream must stay
	// strictly in order with zero loss inside the graph.
	spec := CarRadioSpec(0.5, 1.05, 300, 3)
	spec.BufferCap = 4
	dd, err := RunDataDriven(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dd.Corruptions != 0 {
		t.Fatalf("in-stream corruption in data-driven run: %+v", dd)
	}
	if dd.MaxLatency <= 0 {
		t.Fatal("latency not measured")
	}
	// Latency varies (aperiodic) but is bounded by buffering.
	bound := spec.Period * sim.Time(len(spec.Stages)*spec.BufferCap+2)
	if dd.MaxLatency > bound {
		t.Fatalf("latency %v beyond buffering bound %v", dd.MaxLatency, bound)
	}
}

func TestTightWCETMarginInsufficient(t *testing.T) {
	// Same jitter, wider margin: TT corruption should drop — the cost
	// is a longer schedule (bigger offsets), which the paper calls the
	// "more constraints on the application" trade-off.
	narrow := CarRadioSpec(0.3, 1.05, 400, 13)
	wide := CarRadioSpec(0.3, 1.5, 400, 13)
	mn, err := RunTimeTriggered(narrow)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := RunTimeTriggered(wide)
	if err != nil {
		t.Fatal(err)
	}
	if mw.Corruptions > mn.Corruptions {
		t.Fatalf("wider WCET margin increased corruption: %d vs %d",
			mw.Corruptions, mn.Corruptions)
	}
	if mw.Overruns >= mn.Overruns {
		t.Fatalf("wider margin did not reduce overruns: %d vs %d", mw.Overruns, mn.Overruns)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	spec := CarRadioSpec(0.35, 1.1, 200, 21)
	a, err := RunTimeTriggered(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTimeTriggered(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Corruptions != b.Corruptions || a.Consumed != b.Consumed ||
		a.MaxLatency != b.MaxLatency {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Stages: make([]Stage, 1), Period: 1, BufferCap: 1, Iterations: 1},
		{Stages: make([]Stage, 3), Period: 0, BufferCap: 1, Iterations: 1},
		{Stages: make([]Stage, 3), Period: 1, BufferCap: 0, Iterations: 1},
	}
	for i, s := range bad {
		if _, err := RunTimeTriggered(s); err == nil {
			t.Errorf("spec %d accepted by TT", i)
		}
		if _, err := RunDataDriven(s); err == nil {
			t.Errorf("spec %d accepted by DD", i)
		}
	}
}

func TestMetricsDerivations(t *testing.T) {
	m := &Metrics{Produced: 100, Consumed: 50, Corruptions: 10, SumLatency: 500}
	if m.CorruptionRate() != 0.1 {
		t.Fatalf("corruption rate %g", m.CorruptionRate())
	}
	if m.AvgLatency() != 10 {
		t.Fatalf("avg latency %v", m.AvgLatency())
	}
	empty := &Metrics{}
	if empty.CorruptionRate() != 0 || empty.AvgLatency() != 0 {
		t.Fatal("zero-division not handled")
	}
}
