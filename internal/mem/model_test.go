package mem

import (
	"testing"

	"mpsockit/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		tok  string
		want Spec
	}{
		{"ideal", Spec{Kind: "ideal"}},
		{"bank:4x2", Spec{Kind: "bank", Banks: 4, Channels: 2}},
		{"bank:1x1", Spec{Kind: "bank", Banks: 1, Channels: 1}},
		{"bank:64x8", Spec{Kind: "bank", Banks: 64, Channels: 8}},
		{"bw:8", Spec{Kind: "bw", GBps: 8}},
		{"bw:1024", Spec{Kind: "bw", GBps: 1024}},
	} {
		got, err := ParseSpec(tc.tok)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.tok, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.tok, got, tc.want)
		}
		if got.String() != tc.tok {
			t.Fatalf("Spec(%q).String() = %q", tc.tok, got.String())
		}
	}
	for _, bad := range []string{
		"", "dram", "bank", "bank:", "bank:4", "bank:x2", "bank:4x",
		"bank:0x2", "bank:65x1", "bank:4x0", "bank:4x9", "bank:-1x2",
		"bw", "bw:", "bw:0", "bw:1025", "bw:-8", "bw:eight", "ideal2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestTokenCanonicalizesIdeal: the ideal spec embeds as the empty
// string — the property that keeps mem=ideal sweeps byte-identical to
// sweeps with no mem= dimension.
func TestTokenCanonicalizesIdeal(t *testing.T) {
	if tok := (Spec{Kind: "ideal"}).Token(); tok != "" {
		t.Fatalf("ideal token = %q, want empty", tok)
	}
	if tok := (Spec{}).Token(); tok != "" {
		t.Fatalf("zero-spec token = %q, want empty", tok)
	}
	if tok := (Spec{Kind: "bank", Banks: 4, Channels: 2}).Token(); tok != "bank:4x2" {
		t.Fatalf("bank token = %q", tok)
	}
	if m := (Spec{Kind: "ideal"}).Build(10*sim.Nanosecond, 8); m != nil {
		t.Fatalf("ideal spec built a model: %v", m)
	}
}

// TestServiceTimeClampsZeroBytes: estimator and service path both
// price non-positive payloads as one byte, matching the noc fabrics'
// serialization — zero-byte edges must cost the same everywhere.
func TestServiceTimeClampsZeroBytes(t *testing.T) {
	for _, m := range []Model{
		NewBankModel(4, 2, 10*sim.Nanosecond, 8),
		NewBWModel(10*sim.Nanosecond, 8),
	} {
		one := m.EstLatency(0, 1, 1)
		if got := m.EstLatency(0, 1, 0); got != one {
			t.Fatalf("%s: EstLatency(0 bytes) = %v, want %v", m.Name(), got, one)
		}
		if got := m.Service(0, 0, 1, 0); got != one {
			t.Fatalf("%s: Service(0 bytes) = %v, want %v", m.Name(), got, one)
		}
	}
}

// TestBankModelContention: accesses hitting the same bank serialize,
// accesses hitting disjoint banks and channels do not, wait
// accumulates only for the queued access, and Reset re-arms the model
// to a byte-identical replay.
func TestBankModelContention(t *testing.T) {
	m := NewBankModel(4, 2, 10*sim.Nanosecond, 8)
	svc := m.EstLatency(0, 0, 64) // 10ns access + 8ns serialization
	if svc != 18*sim.Nanosecond {
		t.Fatalf("service time = %v, want 18ns", svc)
	}
	// Same destination bank (dst 0) and channel: full serialization.
	d1 := m.Service(0, 0, 0, 64)
	d2 := m.Service(0, 0, 0, 64)
	if d1 != svc || d2 != 2*svc {
		t.Fatalf("same-bank back-to-back = %v, %v; want %v, %v", d1, d2, svc, 2*svc)
	}
	tr, wait := m.Stats()
	if tr != 2 || wait != svc {
		t.Fatalf("stats = %d transfers %v wait, want 2, %v", tr, wait, svc)
	}
	// Disjoint bank (dst 1) and channel ((0+1)%2=1): no queueing.
	if d := m.Service(0, 0, 1, 64); d != svc {
		t.Fatalf("disjoint access delayed %v, want %v", d, svc)
	}
	replay := []sim.Time{d1, d2}
	m.Reset()
	if tr, wait := m.Stats(); tr != 0 || wait != 0 {
		t.Fatalf("Reset left stats %d/%v", tr, wait)
	}
	for i, want := range replay {
		if got := m.Service(0, 0, 0, 64); got != want {
			t.Fatalf("post-Reset access %d = %v, want %v", i, got, want)
		}
	}
}

// TestBWModelSerializes: the single DMA engine serializes every
// access; starting after the engine drains costs no wait.
func TestBWModelSerializes(t *testing.T) {
	m := NewBWModel(5*sim.Nanosecond, 8)
	svc := m.EstLatency(2, 3, 16) // 5ns + 2ns
	d1 := m.Service(0, 0, 1, 16)
	d2 := m.Service(0, 2, 3, 16)
	if d1 != svc || d2 != 2*svc {
		t.Fatalf("serialized accesses = %v, %v; want %v, %v", d1, d2, svc, 2*svc)
	}
	// Arriving at the drain point queues for nothing.
	if d := m.Service(2*svc, 0, 1, 16); d != svc {
		t.Fatalf("post-drain access delayed %v, want %v", d, svc)
	}
	tr, wait := m.Stats()
	if tr != 3 || wait != svc {
		t.Fatalf("stats = %d transfers %v wait, want 3, %v", tr, wait, svc)
	}
	m.Reset()
	if d := m.Service(0, 0, 1, 16); d != svc {
		t.Fatalf("post-Reset access delayed %v, want %v", d, svc)
	}
}
