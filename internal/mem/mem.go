// Package mem models the MPSoC memory system: core-local stores,
// a shared memory with strict locality enforcement (section II-B of
// the paper: "strict enforcement of locality, at least for on-chip
// memory … protection of each core's resource integrity"), DMA
// engines for Cell-style local-store platforms, and a small cache
// model for the instruction-set simulator.
package mem

import (
	"fmt"

	"mpsockit/internal/sim"
)

// AccessKind distinguishes reads from writes for protection checks and
// tracing.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

func (a AccessKind) String() string {
	if a == Read {
		return "R"
	}
	return "W"
}

// Fault describes a rejected memory access.
type Fault struct {
	Core int
	Addr uint32
	Size int
	Kind AccessKind
	Why  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: fault core=%d %s addr=0x%08x size=%d: %s",
		f.Core, f.Kind, f.Addr, f.Size, f.Why)
}

// LocalStore is a core-private scratchpad (the "L2 cache / local
// memory bound to cores" of section II-A, and the SPE local store of
// the section V Cell target).
type LocalStore struct {
	Owner        int // core ID
	Data         []byte
	AccessCycles int64 // latency per word access

	Reads, Writes uint64
}

// NewLocalStore returns a size-byte local store owned by core owner.
func NewLocalStore(owner, size int, accessCycles int64) *LocalStore {
	return &LocalStore{Owner: owner, Data: make([]byte, size), AccessCycles: accessCycles}
}

// Size returns the store capacity in bytes.
func (l *LocalStore) Size() int { return len(l.Data) }

func (l *LocalStore) check(core int, addr uint32, size int, kind AccessKind) error {
	if core != l.Owner {
		return &Fault{Core: core, Addr: addr, Size: size, Kind: kind,
			Why: fmt.Sprintf("local store owned by core %d", l.Owner)}
	}
	if int(addr)+size > len(l.Data) {
		return &Fault{Core: core, Addr: addr, Size: size, Kind: kind, Why: "out of bounds"}
	}
	return nil
}

// ReadAt copies size bytes at addr into a fresh slice, enforcing
// ownership.
func (l *LocalStore) ReadAt(core int, addr uint32, size int) ([]byte, error) {
	if err := l.check(core, addr, size, Read); err != nil {
		return nil, err
	}
	l.Reads++
	out := make([]byte, size)
	copy(out, l.Data[addr:int(addr)+size])
	return out, nil
}

// WriteAt stores data at addr, enforcing ownership.
func (l *LocalStore) WriteAt(core int, addr uint32, data []byte) error {
	if err := l.check(core, addr, len(data), Write); err != nil {
		return err
	}
	l.Writes++
	copy(l.Data[addr:int(addr)+len(data)], data)
	return nil
}

// Region is a protected window of the shared memory.
type Region struct {
	Name  string
	Base  uint32
	Size  uint32
	Owner int  // core allowed to write; -1 = any
	ROAll bool // all cores may read
}

// Contains reports whether [addr, addr+size) falls inside the region.
func (r *Region) Contains(addr uint32, size int) bool {
	return addr >= r.Base && uint64(addr)+uint64(size) <= uint64(r.Base)+uint64(r.Size)
}

// SharedMemory is the off-cluster memory with per-region protection.
// Section II-B's position is that the OS must police locality; illegal
// accesses fault instead of silently corrupting state, and every fault
// is recorded so the debug layer (section VII) can watch for them.
type SharedMemory struct {
	Data         []byte
	AccessCycles int64
	regions      []*Region

	Reads, Writes uint64
	// Faults records every rejected access in order.
	Faults []Fault
	// Watch, when non-nil, is invoked on every access (after protection
	// checks) — the hook the peripheral-access watchpoints of the debug
	// layer attach to.
	Watch func(core int, addr uint32, size int, kind AccessKind)
}

// NewSharedMemory returns a size-byte shared memory.
func NewSharedMemory(size int, accessCycles int64) *SharedMemory {
	return &SharedMemory{Data: make([]byte, size), AccessCycles: accessCycles}
}

// AddRegion registers a protected region. Regions may not overlap.
func (s *SharedMemory) AddRegion(r *Region) error {
	if uint64(r.Base)+uint64(r.Size) > uint64(len(s.Data)) {
		return fmt.Errorf("mem: region %s exceeds memory", r.Name)
	}
	for _, old := range s.regions {
		if r.Base < old.Base+old.Size && old.Base < r.Base+r.Size {
			return fmt.Errorf("mem: region %s overlaps %s", r.Name, old.Name)
		}
	}
	s.regions = append(s.regions, r)
	return nil
}

// RegionAt returns the region containing the access, or nil.
func (s *SharedMemory) RegionAt(addr uint32, size int) *Region {
	for _, r := range s.regions {
		if r.Contains(addr, size) {
			return r
		}
	}
	return nil
}

func (s *SharedMemory) check(core int, addr uint32, size int, kind AccessKind) error {
	if uint64(addr)+uint64(size) > uint64(len(s.Data)) {
		f := Fault{Core: core, Addr: addr, Size: size, Kind: kind, Why: "out of bounds"}
		s.Faults = append(s.Faults, f)
		return &f
	}
	r := s.RegionAt(addr, size)
	if r == nil {
		// Unregioned memory is open: protection is opt-in.
		return nil
	}
	if r.Owner >= 0 && core != r.Owner {
		if kind == Read && r.ROAll {
			return nil
		}
		f := Fault{Core: core, Addr: addr, Size: size, Kind: kind,
			Why: fmt.Sprintf("region %s owned by core %d", r.Name, r.Owner)}
		s.Faults = append(s.Faults, f)
		return &f
	}
	return nil
}

// ReadAt reads size bytes at addr as core, enforcing region protection.
func (s *SharedMemory) ReadAt(core int, addr uint32, size int) ([]byte, error) {
	if err := s.check(core, addr, size, Read); err != nil {
		return nil, err
	}
	s.Reads++
	if s.Watch != nil {
		s.Watch(core, addr, size, Read)
	}
	out := make([]byte, size)
	copy(out, s.Data[addr:int(addr)+size])
	return out, nil
}

// WriteAt writes data at addr as core, enforcing region protection.
func (s *SharedMemory) WriteAt(core int, addr uint32, data []byte) error {
	if err := s.check(core, addr, len(data), Write); err != nil {
		return err
	}
	s.Writes++
	if s.Watch != nil {
		s.Watch(core, addr, len(data), Write)
	}
	copy(s.Data[addr:int(addr)+len(data)], data)
	return nil
}

// DMA is a direct-memory-access engine moving payloads between local
// stores across the fabric — the transport of the Cell-like target's
// message-passing channels (section V) and a shared platform resource
// in the debugging discussion (section VII).
type DMA struct {
	ID     int
	k      *sim.Kernel
	fabric interface {
		Transfer(src, dst, bytes int, done func())
	}
	// SetupCycles models programming the DMA descriptor.
	SetupTime sim.Time
	// Busy serializes channel programs on this engine.
	busy *sim.Resource

	Transfers uint64
	// Watch is invoked when a transfer is issued (debug hook).
	Watch func(srcCore, dstCore, bytes int)
}

// NewDMA returns a DMA engine using the given fabric.
func NewDMA(k *sim.Kernel, id int, fabric interface {
	Transfer(src, dst, bytes int, done func())
}, setup sim.Time) *DMA {
	return &DMA{
		ID: id, k: k, fabric: fabric, SetupTime: setup,
		busy: k.NewResource(fmt.Sprintf("dma%d", id), 1),
	}
}

// Copy moves size bytes from src's local store at srcAddr to dst's
// local store at dstAddr, blocking the calling process until the data
// has landed. Both stores are updated at completion time.
func (d *DMA) Copy(p *sim.Proc, src *LocalStore, srcAddr uint32,
	dst *LocalStore, dstAddr uint32, size int) error {

	data, err := src.ReadAt(src.Owner, srcAddr, size)
	if err != nil {
		return err
	}
	d.busy.Acquire(p)
	defer d.busy.Release()
	p.Delay(d.SetupTime)
	if d.Watch != nil {
		d.Watch(src.Owner, dst.Owner, size)
	}
	doneSig := d.k.NewSignal()
	d.fabric.Transfer(src.Owner, dst.Owner, size, func() {
		doneSig.Broadcast()
	})
	doneSig.Wait(p)
	d.Transfers++
	return dst.WriteAt(dst.Owner, dstAddr, data)
}

// Cache is a direct-mapped cache used by the instruction-set
// simulator's timing model.
type Cache struct {
	LineBytes int
	Lines     int
	HitCycles int64
	MissExtra int64 // additional cycles on miss

	tags  []uint32
	valid []bool

	Hits, Misses uint64
}

// NewCache returns a direct-mapped cache with the given geometry.
func NewCache(lineBytes, lines int, hitCycles, missExtra int64) *Cache {
	if lineBytes <= 0 || lines <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic("mem: cache geometry must be positive, line size power of two")
	}
	return &Cache{
		LineBytes: lineBytes, Lines: lines,
		HitCycles: hitCycles, MissExtra: missExtra,
		tags: make([]uint32, lines), valid: make([]bool, lines),
	}
}

// Access looks up addr, fills on miss, and returns the access cost in
// cycles.
func (c *Cache) Access(addr uint32) int64 {
	line := (addr / uint32(c.LineBytes)) % uint32(c.Lines)
	tag := addr / uint32(c.LineBytes) / uint32(c.Lines)
	if c.valid[line] && c.tags[line] == tag {
		c.Hits++
		return c.HitCycles
	}
	c.Misses++
	c.valid[line] = true
	c.tags[line] = tag
	return c.HitCycles + c.MissExtra
}

// HitRate returns the fraction of accesses that hit.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Invalidate clears the cache.
func (c *Cache) Invalidate() {
	for i := range c.valid {
		c.valid[i] = false
	}
}
