package mem

// Memory-subsystem contention models for design-space exploration.
// The fabric (internal/noc) is no longer the only contended shared
// resource: a design point can attach a Model to its platform and
// every cross-PE payload then queues for memory service — bank/channel
// conflicts or a shared DMA bandwidth budget — after it crosses the
// interconnect. Models follow the noc contention idiom exactly: a
// deterministic busy-until reservation per resource, a contention-free
// EstLatency for the mapping cost models, and cumulative
// transfer/wait counters the sweep reads as a delta per run. A Model
// is resettable per design point like the kernel, and both its
// estimator and its service path clamp non-positive payloads to one
// byte, matching the fabrics' serialization — so a zero-byte edge
// costs the same on the scoring and the simulation path.

import (
	"fmt"
	"strconv"
	"strings"

	"mpsockit/internal/sim"
)

// Model is the pluggable memory-subsystem contention interface. A nil
// Model is the ideal memory: infinite banks and bandwidth, zero
// service time — the exact pre-model behaviour.
type Model interface {
	Name() string
	// EstLatency returns the contention-free service-time estimate the
	// mapping cost models add on top of platform.Fabric.EstLatency for
	// cross-PE edges. It must allocate nothing.
	EstLatency(src, dst, bytes int) sim.Time
	// Service books one memory access starting at virtual time now and
	// returns the delay until it completes (queue wait included,
	// always positive). The caller schedules delivery that far in the
	// future; the model itself never touches the kernel.
	Service(now sim.Time, src, dst, bytes int) sim.Time
	// Stats returns the cumulative serviced-transfer count and queue
	// wait, mirroring platform.Fabric.Stats.
	Stats() (transfers uint64, wait sim.Time)
	// Reset clears the queues and counters, re-arming the model for
	// the next design point.
	Reset()
}

// Spec bounds: hostile shard headers re-expand specs on every merge
// host, so token parameters are capped like cal:K probes are.
const (
	// MaxBanks bounds bank:BxC bank counts.
	MaxBanks = 64
	// MaxChannels bounds bank:BxC channel counts.
	MaxChannels = 8
	// MaxGBps bounds bw:G bandwidth budgets (bytes per nanosecond).
	MaxGBps = 1024
)

// Spec names one memory-model configuration of a sweep's mem=
// dimension: ideal (no contention), bank:BxC (B bank queues behind C
// shared channels) or bw:G (one DMA engine with a G byte/ns budget).
type Spec struct {
	// Kind is ideal, bank or bw.
	Kind string
	// Banks and Channels size the bank model's queue arrays.
	Banks    int
	Channels int
	// GBps is the bw model's bandwidth budget in bytes per nanosecond
	// (1 GB/s ≈ 1 byte/ns).
	GBps int64
}

// ParseSpec parses a mem= token: "ideal", "bank:BxC" or "bw:G".
func ParseSpec(tok string) (Spec, error) {
	if tok == "ideal" {
		return Spec{Kind: "ideal"}, nil
	}
	if rest, ok := strings.CutPrefix(tok, "bank:"); ok {
		bs, cs, ok := strings.Cut(rest, "x")
		if !ok {
			return Spec{}, fmt.Errorf("mem: bad token %q (want bank:BxC, e.g. bank:4x2)", tok)
		}
		b, berr := strconv.Atoi(bs)
		c, cerr := strconv.Atoi(cs)
		if berr != nil || cerr != nil || b < 1 || b > MaxBanks || c < 1 || c > MaxChannels {
			return Spec{}, fmt.Errorf("mem: bad token %q (want bank:BxC, 1 <= B <= %d, 1 <= C <= %d)",
				tok, MaxBanks, MaxChannels)
		}
		return Spec{Kind: "bank", Banks: b, Channels: c}, nil
	}
	if rest, ok := strings.CutPrefix(tok, "bw:"); ok {
		g, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || g < 1 || g > MaxGBps {
			return Spec{}, fmt.Errorf("mem: bad token %q (want bw:G, 1 <= G <= %d bytes/ns)", tok, MaxGBps)
		}
		return Spec{Kind: "bw", GBps: g}, nil
	}
	return Spec{}, fmt.Errorf("mem: unknown model %q (want ideal, bank:BxC or bw:G)", tok)
}

// String renders the spec back to its canonical token; parse → render
// → parse is the identity.
func (s Spec) String() string {
	switch s.Kind {
	case "bank":
		return fmt.Sprintf("bank:%dx%d", s.Banks, s.Channels)
	case "bw":
		return fmt.Sprintf("bw:%d", s.GBps)
	}
	return "ideal"
}

// Token renders the spec for embedding in a design point: the ideal
// model canonicalizes to the empty string, so a mem=ideal sweep
// expands to points byte-identical to a sweep with no mem= dimension
// at all — which is what keeps the default sweep's spec_hash stable.
func (s Spec) Token() string {
	if s.Kind == "ideal" || s.Kind == "" {
		return ""
	}
	return s.String()
}

// Build constructs the spec's model with the platform's memory timing
// (access latency per service, DMA bandwidth in bytes/ns). The ideal
// spec builds nil — no model attached, nothing charged.
func (s Spec) Build(access sim.Time, bytesPerNS int64) Model {
	switch s.Kind {
	case "bank":
		return NewBankModel(s.Banks, s.Channels, access, bytesPerNS)
	case "bw":
		return NewBWModel(access, s.GBps)
	}
	return nil
}

// serviceTime is the contention-free memory service time shared by
// every model: the fixed access latency plus payload serialization at
// the model's bandwidth. Non-positive payloads clamp to one byte,
// exactly like the noc fabrics' serialization, so estimator and
// simulator agree on zero-byte edges.
func serviceTime(access sim.Time, bytesPerNS int64, bytes int) sim.Time {
	if bytes <= 0 {
		bytes = 1
	}
	ns := (int64(bytes) + bytesPerNS - 1) / bytesPerNS
	return access + sim.Time(ns)*sim.Nanosecond
}

// BankModel models a banked shared memory behind a few DMA channels:
// an access queues on its destination bank and on the channel its
// (src, dst) pair hashes to, each a deterministic busy-until
// reservation. It captures the first-order effect DRAM bank conflicts
// have on mapped schedules — transfers into the same consumer
// serialize even when the fabric routes them on disjoint links.
type BankModel struct {
	// AccessTime is the fixed per-access service latency.
	AccessTime sim.Time
	// BytesPerNS is the per-channel burst bandwidth.
	BytesPerNS int64

	bankBusy []sim.Time
	chanBusy []sim.Time

	transfers uint64
	wait      sim.Time
}

// NewBankModel returns a banks×channels bank model.
func NewBankModel(banks, channels int, access sim.Time, bytesPerNS int64) *BankModel {
	if banks <= 0 || channels <= 0 || bytesPerNS <= 0 {
		panic("mem: bank model geometry must be positive")
	}
	return &BankModel{
		AccessTime: access, BytesPerNS: bytesPerNS,
		bankBusy: make([]sim.Time, banks),
		chanBusy: make([]sim.Time, channels),
	}
}

// Name implements Model.
func (m *BankModel) Name() string {
	return fmt.Sprintf("bank%dx%d", len(m.bankBusy), len(m.chanBusy))
}

// EstLatency implements Model: the zero-conflict service time.
func (m *BankModel) EstLatency(src, dst, bytes int) sim.Time {
	return serviceTime(m.AccessTime, m.BytesPerNS, bytes)
}

// Service implements Model: the access starts once both its
// destination bank and its channel are free, and occupies both for
// the service duration.
func (m *BankModel) Service(now sim.Time, src, dst, bytes int) sim.Time {
	bank := dst % len(m.bankBusy)
	ch := (src + dst) % len(m.chanBusy)
	start := now
	if m.bankBusy[bank] > start {
		start = m.bankBusy[bank]
	}
	if m.chanBusy[ch] > start {
		start = m.chanBusy[ch]
	}
	end := start + serviceTime(m.AccessTime, m.BytesPerNS, bytes)
	m.bankBusy[bank] = end
	m.chanBusy[ch] = end
	m.transfers++
	m.wait += start - now
	return end - now
}

// Stats implements Model.
func (m *BankModel) Stats() (uint64, sim.Time) { return m.transfers, m.wait }

// Reset implements Model.
func (m *BankModel) Reset() {
	for i := range m.bankBusy {
		m.bankBusy[i] = 0
	}
	for i := range m.chanBusy {
		m.chanBusy[i] = 0
	}
	m.transfers = 0
	m.wait = 0
}

// BWModel models one bandwidth-shared DMA engine: every access
// serializes through a single busy-until reservation at the budgeted
// bandwidth — the fallback-to-bandwidth-model strategy of coarse
// memory estimators, and the centralized counterpart to the bank
// model the way the bus is to the mesh.
type BWModel struct {
	// AccessTime is the fixed per-access service latency (DMA setup).
	AccessTime sim.Time
	// BytesPerNS is the engine's bandwidth budget.
	BytesPerNS int64

	busyUntil sim.Time
	transfers uint64
	wait      sim.Time
}

// NewBWModel returns a bandwidth-shared DMA model.
func NewBWModel(access sim.Time, bytesPerNS int64) *BWModel {
	if bytesPerNS <= 0 {
		panic("mem: bandwidth must be positive")
	}
	return &BWModel{AccessTime: access, BytesPerNS: bytesPerNS}
}

// Name implements Model.
func (m *BWModel) Name() string { return fmt.Sprintf("bw%d", m.BytesPerNS) }

// EstLatency implements Model.
func (m *BWModel) EstLatency(src, dst, bytes int) sim.Time {
	return serviceTime(m.AccessTime, m.BytesPerNS, bytes)
}

// Service implements Model: accesses queue on the single engine.
func (m *BWModel) Service(now sim.Time, src, dst, bytes int) sim.Time {
	start := now
	if m.busyUntil > start {
		m.wait += m.busyUntil - start
		start = m.busyUntil
	}
	end := start + serviceTime(m.AccessTime, m.BytesPerNS, bytes)
	m.busyUntil = end
	m.transfers++
	return end - now
}

// Stats implements Model.
func (m *BWModel) Stats() (uint64, sim.Time) { return m.transfers, m.wait }

// Reset implements Model.
func (m *BWModel) Reset() {
	m.busyUntil = 0
	m.transfers = 0
	m.wait = 0
}
