package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"mpsockit/internal/sim"
)

func TestLocalStoreOwnership(t *testing.T) {
	ls := NewLocalStore(2, 1024, 1)
	if err := ls.WriteAt(2, 0, []byte{1, 2, 3}); err != nil {
		t.Fatalf("owner write rejected: %v", err)
	}
	got, err := ls.ReadAt(2, 0, 3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("owner read failed: %v %v", got, err)
	}
	// Another core must fault — strict locality (section II-B).
	if _, err := ls.ReadAt(3, 0, 3); err == nil {
		t.Fatal("foreign read allowed")
	}
	if err := ls.WriteAt(0, 0, []byte{9}); err == nil {
		t.Fatal("foreign write allowed")
	}
}

func TestLocalStoreBounds(t *testing.T) {
	ls := NewLocalStore(0, 16, 1)
	if err := ls.WriteAt(0, 10, make([]byte, 10)); err == nil {
		t.Fatal("out-of-bounds write allowed")
	}
	var f *Fault
	_, err := ls.ReadAt(0, 16, 1)
	if err == nil {
		t.Fatal("out-of-bounds read allowed")
	}
	if !errorsAs(err, &f) {
		t.Fatalf("error type %T, want *Fault", err)
	}
}

func errorsAs(err error, target **Fault) bool {
	f, ok := err.(*Fault)
	if ok {
		*target = f
	}
	return ok
}

func TestSharedMemoryRegions(t *testing.T) {
	sm := NewSharedMemory(4096, 10)
	if err := sm.AddRegion(&Region{Name: "core0", Base: 0, Size: 1024, Owner: 0}); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddRegion(&Region{Name: "core1", Base: 1024, Size: 1024, Owner: 1, ROAll: true}); err != nil {
		t.Fatal(err)
	}
	// Overlap must be rejected.
	if err := sm.AddRegion(&Region{Name: "bad", Base: 512, Size: 1024, Owner: 2}); err == nil {
		t.Fatal("overlapping region accepted")
	}

	if err := sm.WriteAt(0, 100, []byte{42}); err != nil {
		t.Fatalf("owner write rejected: %v", err)
	}
	if err := sm.WriteAt(1, 100, []byte{42}); err == nil {
		t.Fatal("foreign write to protected region allowed")
	}
	// ROAll region: anyone reads, only owner writes.
	if _, err := sm.ReadAt(0, 1024, 4); err != nil {
		t.Fatalf("shared read rejected: %v", err)
	}
	if err := sm.WriteAt(0, 1024, []byte{1}); err == nil {
		t.Fatal("foreign write to ROAll region allowed")
	}
	// Unregioned space is open.
	if err := sm.WriteAt(7, 3000, []byte{1}); err != nil {
		t.Fatalf("open write rejected: %v", err)
	}
	if len(sm.Faults) != 2 {
		t.Fatalf("fault log has %d entries, want 2", len(sm.Faults))
	}
}

func TestSharedMemoryWatch(t *testing.T) {
	sm := NewSharedMemory(256, 1)
	var seen []AccessKind
	sm.Watch = func(core int, addr uint32, size int, kind AccessKind) {
		seen = append(seen, kind)
	}
	_ = sm.WriteAt(0, 0, []byte{1})
	_, _ = sm.ReadAt(0, 0, 1)
	if len(seen) != 2 || seen[0] != Write || seen[1] != Read {
		t.Fatalf("watch saw %v", seen)
	}
}

func TestDMACopy(t *testing.T) {
	k := sim.NewKernel()
	fabric := &countingFabric{k: k, lat: 10 * sim.Nanosecond}
	src := NewLocalStore(0, 256, 1)
	dst := NewLocalStore(1, 256, 1)
	_ = src.WriteAt(0, 0, []byte("hello-dma"))
	d := NewDMA(k, 0, fabric, 5*sim.Nanosecond)
	var doneAt sim.Time
	k.Spawn("xfer", func(p *sim.Proc) {
		if err := d.Copy(p, src, 0, dst, 64, 9); err != nil {
			t.Errorf("copy failed: %v", err)
		}
		doneAt = p.Now()
	})
	k.Run()
	got, _ := dst.ReadAt(1, 64, 9)
	if string(got) != "hello-dma" {
		t.Fatalf("dst contains %q", got)
	}
	if doneAt != 15*sim.Nanosecond {
		t.Fatalf("copy completed at %v, want setup+fabric = 15ns", doneAt)
	}
	if fabric.calls != 1 || d.Transfers != 1 {
		t.Fatalf("fabric calls %d, dma transfers %d", fabric.calls, d.Transfers)
	}
}

func TestDMASerializesOnEngine(t *testing.T) {
	k := sim.NewKernel()
	fabric := &countingFabric{k: k, lat: 10 * sim.Nanosecond}
	a := NewLocalStore(0, 64, 1)
	b := NewLocalStore(1, 64, 1)
	d := NewDMA(k, 0, fabric, 5*sim.Nanosecond)
	var finish []sim.Time
	for i := 0; i < 2; i++ {
		k.Spawn("xfer", func(p *sim.Proc) {
			_ = d.Copy(p, a, 0, b, 0, 8)
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	if len(finish) != 2 {
		t.Fatalf("finished %d copies", len(finish))
	}
	if finish[1] < 30*sim.Nanosecond {
		t.Fatalf("second copy at %v should wait for engine", finish[1])
	}
}

type countingFabric struct {
	k     *sim.Kernel
	lat   sim.Time
	calls int
}

func (f *countingFabric) Transfer(src, dst, bytes int, done func()) {
	f.calls++
	f.k.Schedule(f.lat, done)
}

func TestCacheBehavior(t *testing.T) {
	c := NewCache(16, 4, 1, 10)
	// First access misses, second to the same line hits.
	if cost := c.Access(0); cost != 11 {
		t.Fatalf("cold miss cost %d, want 11", cost)
	}
	if cost := c.Access(4); cost != 1 {
		t.Fatalf("same-line hit cost %d, want 1", cost)
	}
	// Conflicting tag evicts: 0 and 64 map to the same line (4 lines * 16B).
	c.Access(64)
	if cost := c.Access(0); cost != 11 {
		t.Fatalf("conflict should miss, got %d", cost)
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Fatalf("hit rate %g out of (0,1)", c.HitRate())
	}
	c.Invalidate()
	if cost := c.Access(4); cost != 11 {
		t.Fatal("invalidate did not clear lines")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two line size accepted")
		}
	}()
	NewCache(12, 4, 1, 10)
}

// Property: local-store round trip preserves bytes for any in-bounds
// offset/payload.
func TestLocalStoreRoundTripProperty(t *testing.T) {
	f := func(off uint8, payload []byte) bool {
		ls := NewLocalStore(0, 1024, 1)
		if len(payload) > 512 {
			payload = payload[:512]
		}
		addr := uint32(off)
		if err := ls.WriteAt(0, addr, payload); err != nil {
			return false
		}
		got, err := ls.ReadAt(0, addr, len(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
