// Package obs is the toolkit's dependency-free observability core:
// atomic counters, gauges and power-of-two-bucket histograms behind a
// registry with Prometheus-text and JSON exposition, plus a span
// tracer emitting Chrome trace-event JSONL (loadable in Perfetto and
// chrome://tracing).
//
// The package exists so the stack can explain its own behavior at
// runtime without giving up its two hard-won properties:
//
//   - Zero-allocation hot paths. Counter, Gauge and Histogram updates
//     are single atomic operations on preallocated state — no
//     interfaces, no maps, no label rendering at update time. Every
//     update method is additionally a no-op on a nil receiver, so
//     instrumented code holds plain handle fields and never branches
//     on "is telemetry enabled": disabled instrumentation is a nil
//     check, enabled instrumentation is a nil check plus one atomic
//     add. Both are 0 B/op, and the bench CI guard holds that.
//
//   - Byte-identical results. Nothing in this package feeds back into
//     simulation state, seeds, or result bytes: metrics and spans are
//     a side channel read at exposition time. Sweeps with telemetry
//     enabled produce byte-identical JSONL/Pareto/hypervolume output
//     to sweeps without (internal/dse holds that as a regression
//     test).
//
// Registration (Registry.Counter, .Gauge, .Histogram, .GaugeFunc,
// .CounterFunc) may allocate — it happens once at setup, not per
// update. Metric identity is the Prometheus convention: a family name
// plus an optional fixed label set; registering the same identity
// twice returns the same instrument, so independent subsystems can
// share a registry without coordination.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; all methods are safe for concurrent use and
// no-ops on a nil receiver, so instrumented code can hold optional
// counter handles without nil branches of its own.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta. Negative deltas are ignored — counters are
// monotonic by contract (the snapshot/diff property tests hold this).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value: it can be set, moved, or
// raised to a high-water mark. The zero value is ready to use; all
// methods are safe for concurrent use and no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Max raises the gauge to v if v exceeds the current value — the
// high-water-mark operation (e.g. event-heap depth).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations whose value needs i significant bits, so bucket
// boundaries are powers of two (le 0, 1, 3, 7, ..., 2^(i)-1). 40
// buckets cover [0, 2^39), five orders of magnitude beyond any
// latency this toolkit measures in microseconds.
const HistBuckets = 40

// Histogram is a power-of-two-bucket histogram of non-negative int64
// observations (typically latencies in microseconds). Observe is one
// bounds computation plus three atomic adds — no allocation, no
// locks. The zero value is ready to use; all methods are safe for
// concurrent use and no-ops on a nil receiver.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// bucketOf maps a value to its bucket index: the number of
// significant bits, clamped to the last bucket. Negative values clamp
// to bucket 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketBound returns bucket i's inclusive upper bound (2^i - 1); the
// last bucket is unbounded and reports -1 (rendered "+Inf").
func BucketBound(i int) int64 {
	if i >= HistBuckets-1 {
		return -1
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value. The count is incremented last, so a
// quiescent histogram always satisfies sum(buckets) == count (the
// property test holds this after concurrent hammering).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns bucket i's raw (non-cumulative) count.
func (h *Histogram) Bucket(i int) int64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}
