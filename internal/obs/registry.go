package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind classifies a registered instrument.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered instrument: a metric family name, an
// optional fixed label set (rendered once at registration), and the
// instrument itself.
type series struct {
	name   string
	labels string // rendered `key="value",...` or ""
	help   string
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// key is the series' registry identity.
func (s *series) key() string { return s.name + "{" + s.labels + "}" }

// Registry holds a set of named instruments and renders them as
// Prometheus text exposition or JSON. Registration is idempotent on
// (name, labels): re-registering returns the existing instrument, so
// independent subsystems share a registry without coordination.
// Registration locks; instrument updates never touch the registry.
type Registry struct {
	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*series{}}
}

// renderLabels turns key/value pairs into the canonical Prometheus
// label string. Values are quoted with escaping; keys are
// code-controlled identifiers and used as-is. Panics on an odd pair
// count — that is a programming error at a registration site, not
// runtime input.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(kv[i+1]))
	}
	return b.String()
}

// register returns the series with the given identity, creating it if
// new. A kind mismatch on an existing identity panics: two subsystems
// disagreeing about a metric's type is a bug to surface, not mask.
func (r *Registry) register(name, help string, k kind, labels []string) *series {
	s := &series{name: name, labels: renderLabels(labels), help: help, kind: k}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[s.key()]; ok {
		if prev.kind != k {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", s.key(), k.promType(), prev.kind.promType()))
		}
		return prev
	}
	r.byKey[s.key()] = s
	r.series = append(r.series, s)
	return s
}

// Counter registers (or returns the existing) counter with the given
// name and optional key/value label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or returns the existing) histogram.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = &Histogram{}
	}
	return s.h
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values already maintained elsewhere under
// their own synchronization (e.g. per-worker heartbeat age under the
// coordinator mutex). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGaugeFunc, labels).fn = fn
}

// CounterFunc registers a counter whose value is read by fn at
// exposition time. fn must be monotonic and safe to call from any
// goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCounterFunc, labels).fn = fn
}

// Unregister removes the series with the given name and label pairs
// from the registry, reporting whether it existed. Long-lived services
// use it to drop per-entity series (a departed worker, a cancelled
// sweep) so label sets do not grow without bound. Handles to the
// removed instrument keep working — they just stop being exported —
// so racing updaters need no coordination with the removal.
func (r *Registry) Unregister(name string, labels ...string) bool {
	key := name + "{" + renderLabels(labels) + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byKey[key]
	if !ok {
		return false
	}
	delete(r.byKey, key)
	for i, cur := range r.series {
		if cur == s {
			r.series = append(r.series[:i], r.series[i+1:]...)
			break
		}
	}
	return true
}

// snapshotSeries returns a stable-ordered copy of the series list:
// families sorted by name, series within a family by label string,
// ties by registration order (registration order is preserved for
// equal keys, which cannot happen — keys are unique).
func (r *Registry) snapshotSeries() []*series {
	r.mu.Lock()
	out := make([]*series, len(r.series))
	copy(out, r.series)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// formatValue renders a float with integer values kept integral, so
// counters read naturally in exposition output.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders "name{labels}" (or bare name), with extra
// labels appended — used for histogram le labels.
func seriesName(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, HELP/TYPE once per
// family, histogram series expanded into cumulative _bucket/_sum/
// _count with power-of-two le bounds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, s := range r.snapshotSeries() {
		if s.name != lastFamily {
			fmt.Fprintf(bw, "# HELP %s %s\n", s.name, s.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind.promType())
			lastFamily = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", seriesName(s.name, s.labels, ""), s.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", seriesName(s.name, s.labels, ""), s.g.Value())
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", seriesName(s.name, s.labels, ""), formatValue(s.fn()))
		case kindHistogram:
			var cum int64
			for i := 0; i < HistBuckets; i++ {
				n := s.h.Bucket(i)
				cum += n
				if n == 0 && i < HistBuckets-1 {
					continue // sparse: only materialized bounds plus +Inf
				}
				le := "+Inf"
				if b := BucketBound(i); b >= 0 {
					le = strconv.FormatInt(b, 10)
				}
				fmt.Fprintf(bw, "%s %d\n", seriesName(s.name+"_bucket", s.labels, `le="`+le+`"`), cum)
			}
			fmt.Fprintf(bw, "%s %d\n", seriesName(s.name+"_sum", s.labels, ""), s.h.Sum())
			fmt.Fprintf(bw, "%s %d\n", seriesName(s.name+"_count", s.labels, ""), s.h.Count())
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the Prometheus exposition —
// mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// SnapValue is one instrument's state inside a Snapshot.
type SnapValue struct {
	// Kind is the Prometheus type: counter, gauge or histogram.
	Kind string `json:"kind"`
	// Value is the counter/gauge reading (absent for histograms).
	Value float64 `json:"value,omitempty"`
	// Count and Sum are the histogram totals.
	Count int64 `json:"count,omitempty"`
	// Sum is the histogram's value total.
	Sum int64 `json:"sum,omitempty"`
	// Buckets are the histogram's raw (non-cumulative) bucket counts,
	// trailing zeros trimmed.
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every registered instrument,
// keyed by "name{labels}". It serializes to JSON (cmd/dse
// -metrics-out) and diffs against an earlier snapshot.
type Snapshot map[string]SnapValue

// Snapshot captures the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{}
	for _, s := range r.snapshotSeries() {
		k := seriesName(s.name, s.labels, "")
		switch s.kind {
		case kindCounter:
			out[k] = SnapValue{Kind: "counter", Value: float64(s.c.Value())}
		case kindGauge:
			out[k] = SnapValue{Kind: "gauge", Value: float64(s.g.Value())}
		case kindCounterFunc:
			out[k] = SnapValue{Kind: "counter", Value: s.fn()}
		case kindGaugeFunc:
			out[k] = SnapValue{Kind: "gauge", Value: s.fn()}
		case kindHistogram:
			v := SnapValue{Kind: "histogram", Count: s.h.Count(), Sum: s.h.Sum()}
			last := -1
			var buckets [HistBuckets]int64
			for i := 0; i < HistBuckets; i++ {
				buckets[i] = s.h.Bucket(i)
				if buckets[i] != 0 {
					last = i
				}
			}
			if last >= 0 {
				v.Buckets = append([]int64(nil), buckets[:last+1]...)
			}
			out[k] = v
		}
	}
	return out
}

// Diff returns cur - prev per instrument: counters and histograms
// subtract (an instrument absent from prev diffs against zero),
// gauges keep their current reading. Instruments only in prev are
// dropped.
func Diff(prev, cur Snapshot) Snapshot {
	out := Snapshot{}
	for k, c := range cur {
		p := prev[k] // zero value when absent
		switch c.Kind {
		case "counter":
			c.Value -= p.Value
		case "histogram":
			c.Count -= p.Count
			c.Sum -= p.Sum
			buckets := append([]int64(nil), c.Buckets...)
			for i := range p.Buckets {
				if i >= len(buckets) {
					buckets = append(buckets, 0)
				}
				buckets[i] -= p.Buckets[i]
			}
			c.Buckets = buckets
		}
		out[k] = c
	}
	return out
}

// WriteJSON renders a snapshot of the registry as indented JSON — the
// cmd/dse -metrics-out format.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
