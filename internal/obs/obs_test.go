package obs

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

// TestNilSafety: every update and read on nil instruments and a nil
// tracer must be a harmless no-op — that is the contract that lets
// instrumented hot paths hold optional handles without branching.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter read nonzero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	g.Max(10)
	if g.Value() != 0 {
		t.Fatal("nil gauge read nonzero")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 || h.Bucket(0) != 0 {
		t.Fatal("nil histogram read nonzero")
	}
	var tr *Tracer
	tr.Span("x", "y", 0, trTime(), 0)
	if tr.Spans() != 0 {
		t.Fatal("nil tracer counted spans")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentHammer drives counters, gauges and histograms from
// many goroutines at once (the -race CI job runs this with the race
// detector) and checks the exact totals afterwards.
func TestConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const perG = 5000
	var c Counter
	var g Gauge
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perG; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				g.Max(int64(w*perG + i))
				h.Observe(rng.Int63n(1 << 20))
			}
		}()
	}
	wg.Wait()
	if want := int64(goroutines * perG * 3); c.Value() != want {
		t.Fatalf("counter = %d, want %d", c.Value(), want)
	}
	if want := int64(goroutines * perG); g.Value() < want {
		t.Fatalf("gauge = %d, want >= %d", g.Value(), want)
	}
	if want := int64(goroutines*perG - 1); g.Value() < want {
		t.Fatalf("gauge high-water = %d, want >= %d", g.Value(), want)
	}
	if h.Count() != int64(goroutines*perG) {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	var bucketSum int64
	for i := 0; i < HistBuckets; i++ {
		bucketSum += h.Bucket(i)
	}
	if bucketSum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count())
	}
}

// TestCounterMonotonic: Add with a negative delta must not move a
// counter — counters never decrease, which the snapshot diff relies
// on.
func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-5)
	if c.Value() != 10 {
		t.Fatalf("counter moved backwards: %d", c.Value())
	}
}

// TestHistogramBuckets pins the power-of-two bucket mapping at its
// boundaries.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 38, HistBuckets - 1}, {1 << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketBound(0) != 0 || BucketBound(1) != 1 || BucketBound(3) != 7 {
		t.Fatal("bucket bounds drifted from 2^i - 1")
	}
	if BucketBound(HistBuckets-1) != -1 {
		t.Fatal("last bucket must be unbounded")
	}
}

// TestSnapshotDiffProperties holds the snapshot/diff invariants over
// randomized update sequences: counters never decrease between
// snapshots, diffs are exactly the updates applied in between, and
// histogram bucket sums always equal the count.
func TestSnapshotDiffProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRegistry()
	c := r.Counter("prop_counter_total", "property counter")
	g := r.Gauge("prop_gauge", "property gauge")
	h := r.Histogram("prop_hist_us", "property histogram")
	prev := r.Snapshot()
	for round := 0; round < 50; round++ {
		var cAdds, hObs, hSum int64
		var gLast int64
		for i := 0; i < rng.Intn(200); i++ {
			d := rng.Int63n(100)
			c.Add(d)
			cAdds += d
			gLast = rng.Int63n(1000) - 500
			g.Set(gLast)
			v := rng.Int63n(1 << 30)
			h.Observe(v)
			hObs++
			hSum += v
		}
		cur := r.Snapshot()
		if cur["prop_counter_total"].Value < prev["prop_counter_total"].Value {
			t.Fatalf("round %d: counter decreased across snapshots", round)
		}
		d := Diff(prev, cur)
		if got := int64(d["prop_counter_total"].Value); got != cAdds {
			t.Fatalf("round %d: counter diff %d, want %d", round, got, cAdds)
		}
		if got := d["prop_hist_us"]; got.Count != hObs || got.Sum != hSum {
			t.Fatalf("round %d: histogram diff count/sum %d/%d, want %d/%d",
				round, got.Count, got.Sum, hObs, hSum)
		}
		var bsum int64
		for _, b := range d["prop_hist_us"].Buckets {
			bsum += b
		}
		if bsum != d["prop_hist_us"].Count {
			t.Fatalf("round %d: diff bucket sum %d != count %d", round, bsum, d["prop_hist_us"].Count)
		}
		var csum int64
		for _, b := range cur["prop_hist_us"].Buckets {
			csum += b
		}
		if csum != cur["prop_hist_us"].Count {
			t.Fatalf("round %d: snapshot bucket sum %d != count %d", round, csum, cur["prop_hist_us"].Count)
		}
		if hObs > 0 && int64(d["prop_gauge"].Value) != gLast {
			t.Fatalf("round %d: gauge diff kept %v, want current %d", round, d["prop_gauge"].Value, gLast)
		}
		prev = cur
	}
}

// TestRegistryIdempotent: re-registering the same identity returns
// the same instrument; a different label set is a different series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "worker", "a")
	b := r.Counter("x_total", "x", "worker", "a")
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	other := r.Counter("x_total", "x", "worker", "b")
	if a == other {
		t.Fatal("distinct labels aliased one counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x", "worker", "a")
}

// TestSnapshotJSONRoundTrip: snapshots are the -metrics-out format
// and must survive a JSON round trip.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(3)
	r.Histogram("b_us", "b").Observe(9)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if int64(back["a_total"].Value) != 3 || back["b_us"].Count != 1 || back["b_us"].Sum != 9 {
		t.Fatalf("round trip lost values: %+v", back)
	}
}
