package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// goldenRegistry builds a registry with one instrument of every kind
// at fixed values, so the exposition bytes are deterministic.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("farm_lease_grants_total", "Leases granted to workers.").Add(17)
	r.Counter("farm_results_accepted_total", "Result lines accepted.", "worker", "w-1").Add(3)
	r.Counter("farm_results_accepted_total", "Result lines accepted.", "worker", "w-0").Add(9)
	r.Gauge("farm_points_done", "Points with an accepted result.").Set(12)
	r.GaugeFunc("farm_worker_heartbeat_age_seconds", "Seconds since the worker was last heard from.",
		func() float64 { return 1.5 }, "worker", "w-0")
	r.CounterFunc("farm_reclaims_total", "Expired leases reclaimed.", func() float64 { return 2 })
	h := r.Histogram("eval_latency_us", "Per-point evaluation latency.", "fid", "mvp")
	for _, v := range []int64{0, 1, 3, 4, 100, 1 << 20} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusExpositionGolden pins the exposition format against a
// committed golden file: families sorted and HELP/TYPE'd once,
// labeled series sorted, histograms expanded into cumulative
// buckets with power-of-two le bounds plus _sum and _count.
// Regenerate deliberately with:
//
//	go test ./internal/obs/ -run TestPrometheusExpositionGolden -update-golden
func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionParses walks every exposition line and checks the
// text-format grammar a Prometheus scraper relies on: HELP/TYPE
// comments, then `name{labels} value` samples — the same check the
// farm CI smoke applies to a live /metrics scrape.
func TestExpositionParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	samples := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || name == "" || value == "" {
			t.Fatalf("unparseable sample line %q", line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
			t.Fatalf("unbalanced label braces in %q", line)
		}
		samples++
	}
	if samples < 8 {
		t.Fatalf("only %d samples in exposition", samples)
	}
}

// TestHandler: the HTTP handler serves the exposition with the
// text-format content type.
func TestHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	goldenRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "farm_lease_grants_total 17") {
		t.Fatalf("exposition body missing counter:\n%s", rec.Body.String())
	}
}

// trTime is a fixed-ish wall instant for tracer tests.
func trTime() time.Time { return time.Now() }

// TestTracerEmitsLoadableJSON: the trace stream must be a valid JSON
// array of complete-span events with the fields Perfetto requires,
// and must remain parseable even without Close (crash tolerance).
func TestTracerEmitsLoadableJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	base := time.Now()
	tr.Span("eval", "mvp", 3, base, 1500*time.Microsecond, Arg{Key: "point", Val: 17})
	tr.Span("flush", "io", 0, base.Add(2*time.Millisecond), 40*time.Microsecond)
	if tr.Spans() != 2 {
		t.Fatalf("span count %d", tr.Spans())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events", len(events))
	}
	e := events[0]
	if e["name"] != "eval" || e["cat"] != "mvp" || e["ph"] != "X" {
		t.Fatalf("span fields wrong: %v", e)
	}
	if e["dur"].(float64) != 1500 {
		t.Fatalf("dur %v, want 1500 us", e["dur"])
	}
	if args, ok := e["args"].(map[string]any); !ok || args["point"].(float64) != 17 {
		t.Fatalf("args wrong: %v", e["args"])
	}
	// Crash tolerance: an unclosed stream still parses once the array
	// is closed the way Perfetto's lenient parser does.
	var buf2 bytes.Buffer
	tr2 := NewTracer(&buf2)
	tr2.Span("eval", "mvp", 0, base, time.Millisecond)
	partial := append(append([]byte{}, buf2.Bytes()...), ']')
	if err := json.Unmarshal(partial, &events); err != nil {
		t.Fatalf("unclosed trace unparseable: %v", err)
	}
	tr2.Close()
}

// TestTracerConcurrent hammers Span from many goroutines; the -race
// CI job holds the locking, and the decoded event count holds that no
// line was torn.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	done := make(chan struct{})
	const each = 200
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < each; i++ {
				tr.Span("eval", "mvp", w, time.Now(), time.Microsecond, Arg{Key: "i", Val: int64(i)})
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("concurrent trace unparseable: %v", err)
	}
	if len(events) != 8*each {
		t.Fatalf("decoded %d events, want %d", len(events), 8*each)
	}
}
