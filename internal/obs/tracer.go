package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// Tracer emits Chrome trace-event JSON — one complete-span event per
// line, wrapped in a JSON array — loadable in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing. The format is the
// trace-event "JSON Array" flavour: both tools accept a file whose
// array is even left unclosed, so a crash mid-trace still loads.
//
// Spans carry wall-clock timestamps relative to the tracer's
// construction instant. Tracing is a side channel: nothing read from
// the clock feeds back into simulation or result bytes, so a traced
// sweep is byte-identical to an untraced one. Emission locks and
// allocates (it renders JSON); it is opt-in per span site behind a
// nil receiver — every method is a no-op on a nil *Tracer, which is
// what keeps the 0 B/op paths zero-allocation when tracing is off.
type Tracer struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	c     io.Closer
	epoch time.Time
	n     int64
	buf   []byte
}

// NewTracer starts a trace stream on w. If w is also an io.Closer,
// Close closes it after finalizing the array.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{bw: bufio.NewWriter(w), epoch: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	t.bw.WriteString("[\n")
	return t
}

// Arg is one key/value pair attached to a span's args object.
type Arg struct {
	// Key is the argument name (a code-controlled identifier).
	Key string
	// Val is the argument value.
	Val int64
}

// A span name/category/key must not need JSON escaping — they are
// code-controlled identifiers, never runtime input. appendString
// quotes without escaping on that basis.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// Span records a complete span (Chrome phase "X"): name and category,
// a virtual thread ID tid grouping spans into Perfetto rows (e.g. one
// row per pool worker), the wall-clock start and duration, and
// optional args shown in the span's detail pane. Safe for concurrent
// use; no-op on a nil receiver.
func (t *Tracer) Span(name, cat string, tid int, start time.Time, d time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	ts := start.Sub(t.epoch).Microseconds()
	if ts < 0 {
		ts = 0
	}
	dur := d.Microseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw == nil {
		return
	}
	b := t.buf[:0]
	if t.n > 0 {
		b = append(b, ",\n"...)
	}
	b = append(b, `{"name":`...)
	b = appendString(b, name)
	b = append(b, `,"cat":`...)
	b = appendString(b, cat)
	b = append(b, `,"ph":"X","pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, ts, 10)
	b = append(b, `,"dur":`...)
	b = strconv.AppendInt(b, dur, 10)
	if len(args) > 0 {
		b = append(b, `,"args":{`...)
		for i, a := range args {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendString(b, a.Key)
			b = append(b, ':')
			b = strconv.AppendInt(b, a.Val, 10)
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	t.buf = b
	t.bw.Write(b)
	// Flush per span: spans are emitted hundreds of times per sweep,
	// not millions, and a flushed stream means a killed process still
	// leaves a loadable trace behind.
	t.bw.Flush()
	t.n++
}

// Spans returns the number of spans emitted so far (0 on a nil
// receiver) — the acceptance tests assert span coverage with it.
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close finalizes the JSON array, flushes, and closes the underlying
// writer when it is closeable. No-op on a nil receiver or a second
// call.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw == nil {
		return nil
	}
	t.bw.WriteString("\n]\n")
	err := t.bw.Flush()
	t.bw = nil
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
