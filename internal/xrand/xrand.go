// Package xrand provides a small, fast, deterministic pseudo-random
// number generator used throughout the toolkit.
//
// Simulations and heuristics (e.g. simulated-annealing mapping,
// execution-time jitter injection) must be reproducible run-to-run so
// that experiments and tests are stable. The standard library's
// math/rand global source is shared mutable state; this package gives
// every component its own explicitly seeded stream based on
// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
// generators").
package xrand

// Rand is a deterministic SplitMix64 generator. The zero value is a
// valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split returns a new generator whose stream is independent of r's
// subsequent output, derived deterministically from r's state.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if
// n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniformly distributed int64 in [lo, hi]. It panics
// if hi < lo.
func (r *Rand) Range(lo, hi int64) int64 {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Norm returns an approximately normally distributed float64 with mean
// mu and standard deviation sigma, using the sum of 12 uniforms
// (Irwin-Hall). Good enough for jitter models and much cheaper than
// Box-Muller; exact tails do not matter for our experiments.
func (r *Rand) Norm(mu, sigma float64) float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return mu + sigma*(s-6)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}
