package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean %g far from 0.5; generator biased", mean)
	}
}

func TestRangeProperty(t *testing.T) {
	f := func(seed uint64, a, b int32) bool {
		lo, hi := int64(a), int64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := New(seed).Range(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("mean %g, want ~10", mean)
	}
	if variance < 3.5 || variance > 4.5 {
		t.Fatalf("variance %g, want ~4", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(5)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}
