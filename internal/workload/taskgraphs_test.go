package workload

import (
	"fmt"
	"testing"

	"mpsockit/internal/platform"
	"mpsockit/internal/taskgraph"
)

func TestApplicationTaskGraphsValid(t *testing.T) {
	for _, g := range []*taskgraph.Graph{JPEGTaskGraph(), H264TaskGraph(), CarRadioTaskGraph()} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if len(g.Tasks) < 5 {
			t.Fatalf("%s: only %d tasks", g.Name, len(g.Tasks))
		}
		// Every task must be runnable on each built-in platform's class
		// mix (the DSE sweep maps every workload onto every platform).
		classSets := [][]platform.PEClass{
			{platform.RISC},               // homog / mpcore
			{platform.CTRL, platform.DSP}, // cell-like
			{platform.RISC, platform.DSP, platform.VLIW, platform.ACC}, // wireless
		}
		for _, classes := range classSets {
			for _, task := range g.Tasks {
				ok := false
				for _, c := range classes {
					if task.CanRunOn(c) {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("%s: task %s unmappable on %v", g.Name, task.Name, classes)
				}
			}
		}
	}
}

func graphString(g *taskgraph.Graph) string {
	s := g.Name
	for _, task := range g.Tasks {
		s += fmt.Sprintf("|%+v", *task)
	}
	return s + fmt.Sprintf("|%+v", g.Edges)
}

func TestSyntheticTaskGraphDeterministic(t *testing.T) {
	for _, n := range []int{2, 8, 16, 40} {
		a := SyntheticTaskGraph(n, 42)
		b := SyntheticTaskGraph(n, 42)
		if err := a.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(a.Tasks) != n {
			t.Fatalf("n=%d: got %d tasks", n, len(a.Tasks))
		}
		if graphString(a) != graphString(b) {
			t.Fatalf("n=%d: same seed produced different graphs", n)
		}
		c := SyntheticTaskGraph(n, 43)
		if graphString(a) == graphString(c) {
			t.Fatalf("n=%d: different seeds produced identical graphs", n)
		}
	}
}
