package workload

import (
	"fmt"

	"mpsockit/internal/platform"
	"mpsockit/internal/taskgraph"
	"mpsockit/internal/xrand"
)

// Coarse task-graph models of the three applications, for mapping and
// design-space exploration. The functional codecs elsewhere in this
// package compute real outputs; these graphs capture the same stage
// structure at the granularity MAPS maps — tasks with per-PE-class
// WCETs and weighted communication edges. Every task carries RISC,
// CTRL and DSP timings so the graphs are mappable on each built-in
// platform (wireless, homogeneous, Cell-like, MPCore); VLIW and ACC
// timings appear where a media engine or accelerator plausibly helps.

// wcet builds a WCET table from per-class cycle counts; zero means
// the task cannot run on that class.
func wcet(risc, ctrl, dsp, vliw, acc int64) map[platform.PEClass]int64 {
	m := map[platform.PEClass]int64{}
	set := func(c platform.PEClass, v int64) {
		if v > 0 {
			m[c] = v
		}
	}
	set(platform.RISC, risc)
	set(platform.CTRL, ctrl)
	set(platform.DSP, dsp)
	set(platform.VLIW, vliw)
	set(platform.ACC, acc)
	return m
}

// JPEGTaskGraph models the section IV partitioning case study at
// strip granularity: a source stage fans out to two parallel strips,
// each running the separable DCT, quantization and entropy stages,
// joined by a packer. DCT-class stages run much faster on DSP/VLIW/ACC
// cores; the bit-twiddling entropy coder prefers control cores.
func JPEGTaskGraph() *taskgraph.Graph {
	g := taskgraph.NewGraph("jpeg")
	src := g.AddTask(&taskgraph.Task{Name: "src", WCET: wcet(120_000, 110_000, 100_000, 0, 0)})
	pack := g.AddTask(&taskgraph.Task{Name: "pack", WCET: wcet(80_000, 75_000, 90_000, 0, 0)})
	for s := 0; s < 2; s++ {
		rowdct := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("rowdct%d", s), WCET: wcet(900_000, 940_000, 310_000, 230_000, 180_000)})
		coldct := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("coldct%d", s), WCET: wcet(880_000, 920_000, 300_000, 225_000, 175_000)})
		quant := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("quant%d", s), WCET: wcet(170_000, 180_000, 60_000, 52_000, 0)})
		rle := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("rle%d", s), WCET: wcet(210_000, 200_000, 260_000, 0, 0)})
		g.Connect(src, rowdct, 32<<10, "strip")
		g.Connect(rowdct, coldct, 32<<10, "rowdct")
		g.Connect(coldct, quant, 32<<10, "coeff")
		g.Connect(quant, rle, 32<<10, "quanted")
		g.Connect(rle, pack, 8<<10, "rle")
	}
	return g
}

// H264TaskGraph models the reference-[7] encoder shape: per-slice
// motion estimation, residual, transform, quantization and entropy
// coding over two slices, with a shared reconstruction stage feeding
// the next frame's reference (modelled as a join) and a bitstream
// muxer.
func H264TaskGraph() *taskgraph.Graph {
	g := taskgraph.NewGraph("h264")
	fetch := g.AddTask(&taskgraph.Task{Name: "fetch", WCET: wcet(150_000, 140_000, 130_000, 0, 0)})
	recon := g.AddTask(&taskgraph.Task{Name: "recon", WCET: wcet(380_000, 400_000, 150_000, 110_000, 0)})
	mux := g.AddTask(&taskgraph.Task{Name: "mux", WCET: wcet(60_000, 55_000, 70_000, 0, 0)})
	for s := 0; s < 2; s++ {
		me := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("me%d", s), WCET: wcet(1_400_000, 1_500_000, 500_000, 360_000, 0)})
		resid := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("resid%d", s), WCET: wcet(300_000, 320_000, 110_000, 85_000, 0)})
		xfrm := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("xfrm%d", s), WCET: wcet(250_000, 265_000, 90_000, 70_000, 55_000)})
		quant := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("quant%d", s), WCET: wcet(120_000, 130_000, 45_000, 38_000, 0)})
		entropy := g.AddTask(&taskgraph.Task{Name: fmt.Sprintf("entropy%d", s), WCET: wcet(420_000, 400_000, 520_000, 0, 0)})
		g.Connect(fetch, me, 24<<10, "slice")
		g.Connect(me, resid, 16<<10, "mv+ref")
		g.Connect(resid, xfrm, 16<<10, "residual")
		g.Connect(xfrm, quant, 16<<10, "coeff")
		g.Connect(quant, entropy, 12<<10, "levels")
		g.Connect(quant, recon, 12<<10, "levels")
		g.Connect(entropy, mux, 4<<10, "bits")
	}
	g.Connect(recon, mux, 2<<10, "refdone")
	return g
}

// CarRadioTaskGraph is the section III stream chain (sample ->
// decimating FIR -> FM demod -> stereo decoder -> DAC) at audio-block
// granularity, with WCETs proportional to the CSDF actor execution
// times of CarRadioGraph. The FIR is the classic DSP kernel and
// carries a preferred-PE hint, like a '#pragma maps pe=DSP'.
func CarRadioTaskGraph() *taskgraph.Graph {
	g := taskgraph.NewGraph("carradio")
	sample := g.AddTask(&taskgraph.Task{Name: "sample", WCET: wcet(30_000, 28_000, 32_000, 0, 0)})
	fir := g.AddTask(&taskgraph.Task{
		Name: "fir", WCET: wcet(160_000, 170_000, 42_000, 48_000, 0),
		PreferredPE: platform.DSP, HasPref: true,
	})
	demod := g.AddTask(&taskgraph.Task{Name: "demod", WCET: wcet(90_000, 95_000, 26_000, 30_000, 0)})
	stereo := g.AddTask(&taskgraph.Task{Name: "stereo", WCET: wcet(130_000, 140_000, 36_000, 40_000, 0)})
	dac := g.AddTask(&taskgraph.Task{Name: "dac", WCET: wcet(20_000, 18_000, 24_000, 0, 0)})
	g.Connect(sample, fir, 16<<10, "pcm")
	g.Connect(fir, demod, 4<<10, "baseband")
	g.Connect(demod, stereo, 4<<10, "mpx")
	g.Connect(stereo, dac, 8<<10, "audio")
	return g
}

// SyntheticTaskGraph generates a deterministic layered random DAG of n
// tasks for exploration stress: layer widths near sqrt(n), each
// non-root task consuming one to three predecessors from the previous
// layer, WCETs drawn per class with DSP/VLIW/ACC speedups present with
// decreasing probability. The same (n, seed) always yields the same
// graph.
func SyntheticTaskGraph(n int, seed uint64) *taskgraph.Graph {
	if n < 2 {
		n = 2
	}
	r := xrand.New(seed)
	g := taskgraph.NewGraph(fmt.Sprintf("synth%d", n))
	width := 1
	for width*width < n {
		width++
	}
	var prev []*taskgraph.Task
	made := 0
	for made < n {
		w := 1 + r.Intn(width)
		if remaining := n - made; w > remaining {
			w = remaining
		}
		var layer []*taskgraph.Task
		for i := 0; i < w; i++ {
			risc := r.Range(100_000, 1_200_000)
			ctrl := risc + risc/20
			dsp := risc * r.Range(30, 90) / 100
			var vliw, acc int64
			if r.Bool(0.4) {
				vliw = risc * r.Range(25, 80) / 100
			}
			if r.Bool(0.2) {
				acc = risc * r.Range(20, 50) / 100
			}
			t := g.AddTask(&taskgraph.Task{
				Name: fmt.Sprintf("t%d", made+i),
				WCET: wcet(risc, ctrl, dsp, vliw, acc),
			})
			layer = append(layer, t)
			if len(prev) > 0 {
				nPred := 1 + r.Intn(3)
				if nPred > len(prev) {
					nPred = len(prev)
				}
				for _, pi := range r.Perm(len(prev))[:nPred] {
					g.Connect(prev[pi], t, int(r.Range(256, 64<<10)), "dep")
				}
			}
		}
		made += w
		prev = layer
	}
	return g
}
