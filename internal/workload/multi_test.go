package workload

import (
	"testing"

	"mpsockit/internal/platform"
	"mpsockit/internal/taskgraph"
)

func TestAppTaskGraphDispatch(t *testing.T) {
	for _, kind := range []string{"jpeg", "h264", "carradio", "synth"} {
		g, err := AppTaskGraph(kind, 8, 42)
		if err != nil {
			t.Fatalf("AppTaskGraph(%q): %v", kind, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s graph invalid: %v", kind, err)
		}
	}
	if _, err := AppTaskGraph("jobs", 8, 42); err == nil {
		t.Fatal("jobs accepted as a task-graph workload")
	}
	// Same (kind, n, seed) must rebuild the identical instance.
	a, _ := AppTaskGraph("synth", 12, 7)
	b, _ := AppTaskGraph("synth", 12, 7)
	if len(a.Tasks) != len(b.Tasks) || len(a.Edges) != len(b.Edges) {
		t.Fatalf("synth instance not deterministic: %d/%d tasks, %d/%d edges",
			len(a.Tasks), len(b.Tasks), len(a.Edges), len(b.Edges))
	}
}

func TestMultiScenarioWorstLoad(t *testing.T) {
	apps := []AppSpec{{Kind: "jpeg"}, {Kind: "carradio"}, {Kind: "synth", N: 8, Seed: 3}}
	graphs := make([]*taskgraph.Graph, len(apps))
	for i, a := range apps {
		g, err := AppTaskGraph(a.Kind, a.N, a.Seed)
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	cg, err := MultiScenario(apps, graphs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cg.Apps) != 3 {
		t.Fatalf("scenario has %d apps", len(cg.Apps))
	}
	// All apps concurrent: the single maximal clique is everything,
	// and the worst load is the full sum on the bottleneck class.
	cliques := cg.MaximalCliques()
	if len(cliques) != 1 || len(cliques[0]) != 3 {
		t.Fatalf("all-concurrent scenario has cliques %v", cliques)
	}
	load, class, at := WorstLoad(cg)
	if load <= 0 || len(at) != 3 {
		t.Fatalf("worst load %v at %v", load, at)
	}
	// The demand figure must come from a class every task can run on;
	// VLIW/ACC carry the cannot-run sentinel in these graphs.
	if class != platform.RISC && class != platform.CTRL && class != platform.DSP {
		t.Fatalf("worst load reported on non-universal class %v", class)
	}
	if load > 1e12 {
		t.Fatalf("worst load %g looks like the cannot-run sentinel leaked", load)
	}
	// Mismatched inputs are an error, not a panic.
	if _, err := MultiScenario(apps, graphs[:2]); err == nil {
		t.Fatal("mismatched apps/graphs accepted")
	}
	if _, err := MultiScenario(nil, nil); err == nil {
		t.Fatal("empty scenario accepted")
	}
}

// TestUnionComposition: the union graph of a scenario preserves each
// constituent's tasks and edges inside its span, stays acyclic, and
// keeps sources immutable.
func TestUnionComposition(t *testing.T) {
	j := JPEGTaskGraph()
	c := CarRadioTaskGraph()
	jTasks, cTasks := len(j.Tasks), len(c.Tasks)
	u, spans := taskgraph.Union("multi:jpeg+carradio", j, c)
	if err := u.Validate(); err != nil {
		t.Fatalf("union invalid: %v", err)
	}
	if len(spans) != 2 || spans[0].Len() != jTasks || spans[1].Len() != cTasks {
		t.Fatalf("spans %v do not cover %d+%d tasks", spans, jTasks, cTasks)
	}
	if len(u.Tasks) != jTasks+cTasks || len(u.Edges) != len(j.Edges)+len(c.Edges) {
		t.Fatalf("union has %d tasks %d edges", len(u.Tasks), len(u.Edges))
	}
	for _, e := range u.Edges {
		sameSpan := false
		for _, s := range spans {
			if e.From >= s.Lo && e.From < s.Hi && e.To >= s.Lo && e.To < s.Hi {
				sameSpan = true
			}
		}
		if !sameSpan {
			t.Fatalf("edge %d->%d crosses application spans", e.From, e.To)
		}
	}
	if len(j.Tasks) != jTasks || len(c.Tasks) != cTasks {
		t.Fatal("union mutated a source graph")
	}
	if j.Tasks[0].Name == u.Tasks[0].Name {
		t.Fatal("union task names not disambiguated")
	}
}
