package workload

import (
	"mpsockit/internal/dataflow"
	"mpsockit/internal/ttdd"
)

// The car-radio stream chain of the paper's section III (the NXP
// Hijdra application domain): sample -> decimating FIR -> FM demod ->
// stereo decoder -> DAC. Provided in two forms: a CSDF graph for the
// buffer-sizing analysis (experiment E5) and a ttdd.Spec for the
// time-triggered versus data-driven comparison (experiment E4).

// CarRadioGraph builds the CSDF model. Execution times are in
// picoseconds; the decimator consumes 4 samples per output (a
// multi-rate stage), the stereo decoder alternates cheap/expensive
// phases (cyclo-static behaviour).
func CarRadioGraph() *dataflow.Graph {
	g := dataflow.NewGraph("carradio")
	sample := g.AddActor("sample", 20_000)
	fir := g.AddActor("fir", 110_000)
	demod := g.AddActor("demod", 60_000)
	stereo := g.AddActor("stereo", 40_000, 90_000) // L-only phase, L+R phase
	dac := g.AddActor("dac", 15_000)

	g.ConnectSDF(sample, fir, 1, 4, 0)            // decimate by 4
	g.ConnectSDF(fir, demod, 1, 1, 0)
	g.Connect(demod, stereo, []int{1}, []int{1, 1}, 0)
	g.Connect(stereo, dac, []int{1, 1}, []int{1}, 0)
	return g
}

// CarRadioTTDD returns the section III executor spec (defined in
// internal/ttdd) with the given jitter/margin, so benches drive both
// representations of the same application from one place.
func CarRadioTTDD(jitter, margin float64, iters int, seed uint64) ttdd.Spec {
	return ttdd.CarRadioSpec(jitter, margin, iters, seed)
}
