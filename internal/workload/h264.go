package workload

import (
	"fmt"

	"mpsockit/internal/cic"
	"mpsockit/internal/xrand"
)

// The H.264-flavoured encoder: per 16x16 macroblock, integer motion
// search against the previous frame (±4 full-pel SAD), residual
// computation, a 4x4 Hadamard-style transform, quantization and
// run-length entropy coding. This is the workload shape of the
// paper's reference [7] ("Automatic H.264 Encoder Synthesis for the
// Cell Processor from a Target Independent Specification") at reduced
// scale.

// MB is a 16x16 macroblock.
const MB = 16

// Frame is one w*h luma frame.
type Frame struct {
	W, H int
	Pix  []int32
}

// SyntheticVideo produces n deterministic frames with global motion
// so the motion search has something to find.
func SyntheticVideo(w, h, n int, seed uint64) []Frame {
	r := xrand.New(seed)
	base := TestImage(w, h, seed)
	frames := make([]Frame, n)
	for f := 0; f < n; f++ {
		pix := make([]int32, w*h)
		dx, dy := f%3, (f/2)%3
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				sx, sy := (x+dx)%w, (y+dy)%h
				v := base[sy*w+sx] + int32(r.Intn(8)) - 4
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				pix[y*w+x] = v
			}
		}
		frames[f] = Frame{W: w, H: h, Pix: pix}
	}
	return frames
}

// SAD computes the sum of absolute differences between a macroblock
// at (mx,my) in cur and (rx,ry) in ref.
func SAD(cur, ref *Frame, mx, my, rx, ry int) int32 {
	var acc int32
	for y := 0; y < MB; y++ {
		for x := 0; x < MB; x++ {
			a := cur.Pix[(my+y)*cur.W+mx+x]
			b := ref.Pix[(ry+y)*ref.W+rx+x]
			d := a - b
			if d < 0 {
				d = -d
			}
			acc += d
		}
	}
	return acc
}

// MotionSearch finds the best ±4 full-pel motion vector for the
// macroblock at (mx,my).
func MotionSearch(cur, ref *Frame, mx, my int) (dx, dy int, best int32) {
	best = 1 << 30
	for cy := -4; cy <= 4; cy++ {
		for cx := -4; cx <= 4; cx++ {
			rx, ry := mx+cx, my+cy
			if rx < 0 || ry < 0 || rx+MB > cur.W || ry+MB > cur.H {
				continue
			}
			s := SAD(cur, ref, mx, my, rx, ry)
			if s < best {
				best, dx, dy = s, cx, cy
			}
		}
	}
	return dx, dy, best
}

// Hadamard4 applies a 4x4 Hadamard-style transform in place over the
// 16 values (separable +/- butterflies).
func Hadamard4(b []int32) {
	for r := 0; r < 4; r++ {
		i := r * 4
		a0, a1, a2, a3 := b[i], b[i+1], b[i+2], b[i+3]
		b[i] = a0 + a1 + a2 + a3
		b[i+1] = a0 - a1 + a2 - a3
		b[i+2] = a0 + a1 - a2 - a3
		b[i+3] = a0 - a1 - a2 + a3
	}
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := b[c], b[c+4], b[c+8], b[c+12]
		b[c] = (a0 + a1 + a2 + a3) >> 1
		b[c+4] = (a0 - a1 + a2 - a3) >> 1
		b[c+8] = (a0 + a1 - a2 - a3) >> 1
		b[c+12] = (a0 - a1 - a2 + a3) >> 1
	}
}

// EncodeMB encodes one macroblock against a reference frame and
// returns the entropy-coded stream (mv + coefficients).
func EncodeMB(cur, ref *Frame, mx, my int, qp int32) []int32 {
	dx, dy, _ := MotionSearch(cur, ref, mx, my)
	out := []int32{int32(dx), int32(dy)}
	// Residual in 4x4 sub-blocks.
	for sy := 0; sy < MB; sy += 4 {
		for sx := 0; sx < MB; sx += 4 {
			var blk [16]int32
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					cx, cy := mx+sx+x, my+sy+y
					rx, ry := cx+dx, cy+dy
					blk[y*4+x] = cur.Pix[cy*cur.W+cx] - ref.Pix[ry*ref.W+rx]
				}
			}
			Hadamard4(blk[:])
			// Quantize + RLE.
			run := int32(0)
			for _, v := range blk {
				q := v / (qp + 1)
				if q == 0 {
					run++
					continue
				}
				out = append(out, run, q)
				run = 0
			}
			out = append(out, 0, 0)
		}
	}
	return out
}

// EncodeVideo encodes frames[1:] against their predecessors and
// returns the full stream — the golden model for the CIC version.
func EncodeVideo(frames []Frame, qp int32) []int32 {
	var out []int32
	for f := 1; f < len(frames); f++ {
		cur, ref := &frames[f], &frames[f-1]
		for my := 0; my+MB <= cur.H; my += MB {
			for mx := 0; mx+MB <= cur.W; mx += MB {
				out = append(out, EncodeMB(cur, ref, mx, my, qp)...)
			}
		}
	}
	return out
}

// H264Spec builds the CIC application of the section V study: a
// macroblock pipeline (dispatch -> N parallel motion/transform
// workers -> entropy merge). One spec, translated to both the
// Cell-like and SMP architectures, must produce identical streams.
//
// Workers split the macroblock rows of each frame; the merger
// restores raster order, so output is target-independent.
func H264Spec(w, h, nFrames, workers int, qp int32, seed uint64) *cic.Spec {
	frames := SyntheticVideo(w, h, nFrames, seed)
	mbRows := h / MB
	mbCols := w / MB
	if workers > mbRows {
		workers = mbRows
	}
	// Row ranges per worker.
	rowsOf := func(wk int) (int, int) {
		per := (mbRows + workers - 1) / workers
		lo := wk * per
		hi := lo + per
		if hi > mbRows {
			hi = mbRows
		}
		return lo, hi
	}
	nPairs := nFrames - 1

	spec := &cic.Spec{Name: fmt.Sprintf("h264_%dx%d_f%d_w%d", w, h, nFrames, workers)}
	cyc := func(c int64) map[string]int64 {
		return map[string]int64{"CTRL": c, "DSP": c / 3, "RISC": c}
	}

	// Dispatcher: per frame pair, sends one token per worker naming
	// the frame index (workers hold frames as read-only state; in the
	// real system this is the DMA of the frame slice).
	dispatch := &cic.TaskSpec{
		Name: "dispatch", Firings: nPairs,
		CyclesPerFiring: cyc(20_000),
		CodeBytes:       8 << 10, DataBytes: 16 << 10,
	}
	for wk := 0; wk < workers; wk++ {
		dispatch.Out = append(dispatch.Out, cic.PortSpec{
			Name: fmt.Sprintf("f%d", wk), Rate: 1, TokenInts: 1,
		})
	}
	dispatch.Go = func(ctx *cic.TaskCtx) {
		for wk := 0; wk < workers; wk++ {
			ctx.Write(fmt.Sprintf("f%d", wk), int32(ctx.Firing+1))
		}
	}
	spec.Tasks = append(spec.Tasks, dispatch)

	// Workers: encode their row range; emit a length-prefixed stream
	// token. Worst case per macroblock: 2 mv ints + 16 sub-blocks x
	// (16 coefficients as (run,level) pairs + terminator) = 546 ints.
	maxRows := (mbRows + workers - 1) / workers
	maxTok := 1 + mbCols*maxRows*(2+16*(16*2+2))
	for wk := 0; wk < workers; wk++ {
		wk := wk
		lo, hi := rowsOf(wk)
		spec.Tasks = append(spec.Tasks, &cic.TaskSpec{
			Name: fmt.Sprintf("enc%d", wk), Firings: nPairs,
			In:  []cic.PortSpec{{Name: "i", Rate: 1, TokenInts: 1}},
			Out: []cic.PortSpec{{Name: "o", Rate: 1, TokenInts: maxTok}},
			CyclesPerFiring: cyc(int64(400_000 * (hi - lo))),
			CodeBytes:       24 << 10, DataBytes: 64 << 10,
			Go: func(ctx *cic.TaskCtx) {
				f := int(ctx.Read("i")[0])
				cur, ref := &frames[f], &frames[f-1]
				var stream []int32
				for r := lo; r < hi; r++ {
					for c := 0; c < mbCols; c++ {
						stream = append(stream, EncodeMB(cur, ref, c*MB, r*MB, qp)...)
					}
				}
				tok := make([]int32, maxTok)
				tok[0] = int32(len(stream))
				copy(tok[1:], stream)
				ctx.Write("o", tok...)
			},
		})
	}

	// Merger: collects worker streams in worker order (raster order)
	// and emits the byte-exact stream.
	merge := &cic.TaskSpec{
		Name: "merge", Firings: nPairs,
		CyclesPerFiring: cyc(30_000),
		CodeBytes:       8 << 10, DataBytes: 32 << 10,
	}
	for wk := 0; wk < workers; wk++ {
		merge.In = append(merge.In, cic.PortSpec{
			Name: fmt.Sprintf("s%d", wk), Rate: 1, TokenInts: maxTok,
		})
	}
	merge.Go = func(ctx *cic.TaskCtx) {
		for wk := 0; wk < workers; wk++ {
			tok := ctx.Read(fmt.Sprintf("s%d", wk))
			n := int(tok[0])
			ctx.Emit(tok[1 : 1+n]...)
		}
	}
	spec.Tasks = append(spec.Tasks, merge)

	for wk := 0; wk < workers; wk++ {
		spec.Channels = append(spec.Channels,
			&cic.ChannelSpec{
				Name:    fmt.Sprintf("cf%d", wk),
				SrcTask: "dispatch", SrcPort: fmt.Sprintf("f%d", wk),
				DstTask: fmt.Sprintf("enc%d", wk), DstPort: "i", Depth: 2,
			},
			&cic.ChannelSpec{
				Name:    fmt.Sprintf("cs%d", wk),
				SrcTask: fmt.Sprintf("enc%d", wk), SrcPort: "o",
				DstTask: "merge", DstPort: fmt.Sprintf("s%d", wk), Depth: 2,
			})
	}
	return spec
}
