package workload

import (
	"testing"

	"mpsockit/internal/cic"
	"mpsockit/internal/cir"
	"mpsockit/internal/targets"
)

func TestDCTConstantBlock(t *testing.T) {
	var blk Block8
	for i := range blk {
		blk[i] = 100
	}
	d := DCT8(&blk)
	// A constant block concentrates energy in DC; AC terms ~0.
	if d[0] == 0 {
		t.Fatal("DC term vanished")
	}
	for i := 1; i < 64; i++ {
		if abs32(d[i]) > abs32(d[0])/8 {
			t.Fatalf("AC[%d] = %d too large vs DC %d", i, d[i], d[0])
		}
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDCTEnergyFollowsFrequency(t *testing.T) {
	// A horizontal gradient has most energy in the first AC column
	// coefficient, none in high verticals.
	var blk Block8
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			blk[y*8+x] = int32(x * 16)
		}
	}
	d := DCT8(&blk)
	if abs32(d[1]) <= abs32(d[8]) {
		t.Fatalf("horizontal gradient energy wrong: d[1]=%d d[8]=%d", d[1], d[8])
	}
}

func TestQuantizeMonotone(t *testing.T) {
	var blk Block8
	for i := range blk {
		blk[i] = 1000
	}
	coarse := Quantize(&blk, 1)
	fine := Quantize(&blk, 8)
	for i := range blk {
		if abs32(fine[i]) < abs32(coarse[i]) {
			t.Fatalf("finer quality must keep more signal at %d", i)
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	var blk Block8
	for i := range blk {
		blk[i] = int32(i)
	}
	z := Zigzag(&blk)
	seen := map[int32]bool{}
	for _, v := range z {
		if seen[v] {
			t.Fatalf("zigzag duplicated %d", v)
		}
		seen[v] = true
	}
	if z[0] != 0 || z[1] != 1 || z[2] != 8 {
		t.Fatalf("zigzag head wrong: %v", z[:3])
	}
}

func TestRLERoundTrippable(t *testing.T) {
	blk := Block8{5, 0, 0, -3, 0, 0, 0, 1}
	out := RLE(&blk, nil)
	// (0,5) (2,-3) (3,1) then 56 zeros -> terminator.
	want := []int32{0, 5, 2, -3, 3, 1, 0, 0}
	if len(out) != len(want) {
		t.Fatalf("rle = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("rle = %v, want %v", out, want)
		}
	}
}

func TestEncodeJPEGDeterministic(t *testing.T) {
	img := TestImage(32, 32, 7)
	a := EncodeJPEG(img, 32, 32, 2)
	b := EncodeJPEG(img, 32, 32, 2)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoder not deterministic")
		}
	}
	// Higher quality keeps more coefficients.
	hq := EncodeJPEG(img, 32, 32, 8)
	if len(hq) <= len(a) {
		t.Fatalf("quality 8 stream (%d) not longer than quality 2 (%d)", len(hq), len(a))
	}
}

func TestJPEGSourceCIRRuns(t *testing.T) {
	prog, err := cir.Parse(JPEGSourceCIR)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cir.NewInterp(prog)
	if err != nil {
		t.Fatal(err)
	}
	img := TestImage(16, 16, 3)
	vals := make([]int64, 256)
	for i, v := range img {
		vals[i] = int64(v)
	}
	if err := in.SetGlobalArray("input", vals); err != nil {
		t.Fatal(err)
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	n, _ := in.Global("npacked")
	if n <= 0 || n > 256 {
		t.Fatalf("npacked = %d", n)
	}
}

func TestMotionSearchFindsShift(t *testing.T) {
	frames := SyntheticVideo(64, 48, 3, 9)
	// Frame 1 is frame 0 shifted by (1,0) plus noise: the search must
	// find a small vector with low SAD.
	dx, dy, sad := MotionSearch(&frames[1], &frames[0], 16, 16)
	if dx < -4 || dx > 4 || dy < -4 || dy > 4 {
		t.Fatalf("mv out of range: (%d,%d)", dx, dy)
	}
	zero := SAD(&frames[1], &frames[0], 16, 16, 16, 16)
	if sad > zero {
		t.Fatalf("search result (%d) worse than zero-mv (%d)", sad, zero)
	}
}

func TestHadamardEnergyCompaction(t *testing.T) {
	flat := make([]int32, 16)
	for i := range flat {
		flat[i] = 8
	}
	Hadamard4(flat)
	if flat[0] == 0 {
		t.Fatal("DC vanished")
	}
	for i := 1; i < 16; i++ {
		if flat[i] != 0 {
			t.Fatalf("flat block has AC energy at %d: %v", i, flat)
		}
	}
}

func TestEncodeVideoDeterministic(t *testing.T) {
	frames := SyntheticVideo(64, 48, 3, 11)
	a := EncodeVideo(frames, 3)
	b := EncodeVideo(frames, 3)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("video encoder not deterministic")
		}
	}
}

// TestH264SpecMatchesGolden runs the CIC pipeline on the SMP target
// and compares against the sequential golden encoder.
func TestH264SpecMatchesGolden(t *testing.T) {
	const w, h, frames, workers = 64, 48, 3, 3
	golden := EncodeVideo(SyntheticVideo(w, h, frames, 5), 3)

	spec := H264Spec(w, h, frames, workers, 3, 5)
	arch := targets.SMP(4)
	m, err := cic.AutoMap(spec, arch)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := cic.Translate(spec, arch, m)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := stats.Outputs["merge"]
	if len(got) != len(golden) {
		t.Fatalf("stream length %d, golden %d", len(got), len(golden))
	}
	for i := range got {
		if got[i] != golden[i] {
			t.Fatalf("stream diverges from golden at %d", i)
		}
	}
}

func TestCarRadioGraphConsistent(t *testing.T) {
	g := CarRadioGraph()
	rv, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	// sample fires 4x per fir firing; stereo has 2 phases per demod pair.
	if rv[0] != 8 || rv[1] != 2 || rv[2] != 2 || rv[3] != 1 || rv[4] != 2 {
		t.Fatalf("rv = %v", rv)
	}
	caps, err := g.MinBufferSizes(300_000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if dataflow := caps; len(dataflow) != len(g.Edges) {
		t.Fatalf("caps = %v", caps)
	}
}
