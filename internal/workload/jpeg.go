// Package workload provides the applications the paper's tools are
// exercised on: a JPEG-flavoured still-image encoder (the MAPS
// partitioning case study of section IV), an H.264-flavoured video
// encoder (the HOPES/CIC retargeting study of section V, ref [7]),
// and a car-radio stream chain (the NXP data-driven system of section
// III). The codecs are functionally real — integer DCT, quantization,
// zigzag, run-length entropy coding, motion search — but reduced to
// laptop scale, giving the toolflows genuine dependence structure and
// checkable outputs.
package workload

import "mpsockit/internal/xrand"

// Block8 is an 8x8 sample block in row-major order.
type Block8 [64]int32

// jpegQuant is a luminance-style quantization matrix.
var jpegQuant = Block8{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzag is the coefficient scan order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// dctCos is a fixed-point (scaled by 1<<10) cosine table for the 8x8
// DCT-II: dctCos[k][n] = round(1024 * cos((2n+1)k*pi/16)).
var dctCos [8][8]int32

func init() {
	// Integer-friendly initialization from the exact table; values
	// precomputed to avoid math imports in hot paths.
	table := [8][8]int32{
		{1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024},
		{1004, 851, 569, 200, -200, -569, -851, -1004},
		{946, 392, -392, -946, -946, -392, 392, 946},
		{851, -200, -1004, -569, 569, 1004, 200, -851},
		{724, -724, -724, 724, 724, -724, -724, 724},
		{569, -1004, 200, 851, -851, -200, 1004, -569},
		{392, -946, 946, -392, -392, 946, -946, 392},
		{200, -569, 851, -1004, 1004, -851, 569, -200},
	}
	dctCos = table
}

// DCT8 computes the two-dimensional 8x8 DCT-II in fixed point.
func DCT8(in *Block8) Block8 {
	var tmp [64]int64
	// Rows.
	for r := 0; r < 8; r++ {
		for k := 0; k < 8; k++ {
			var acc int64
			for n := 0; n < 8; n++ {
				acc += int64(in[r*8+n]) * int64(dctCos[k][n])
			}
			tmp[r*8+k] = acc >> 10
		}
	}
	// Columns.
	var out Block8
	for c := 0; c < 8; c++ {
		for k := 0; k < 8; k++ {
			var acc int64
			for n := 0; n < 8; n++ {
				acc += tmp[n*8+c] * int64(dctCos[k][n])
			}
			// Normalization folded into a single shift (scale-preserving
			// approximation; exactness does not matter, determinism does).
			out[k*8+c] = int32(acc >> 13)
		}
	}
	return out
}

// Quantize divides coefficients by the quantization matrix scaled by
// quality (higher quality = finer steps).
func Quantize(in *Block8, quality int32) Block8 {
	if quality <= 0 {
		quality = 1
	}
	var out Block8
	for i := range in {
		q := jpegQuant[i] / quality
		if q < 1 {
			q = 1
		}
		out[i] = in[i] / q
	}
	return out
}

// Zigzag reorders a block into scan order.
func Zigzag(in *Block8) Block8 {
	var out Block8
	for i, src := range zigzag {
		out[i] = in[src]
	}
	return out
}

// RLE run-length encodes a scanned block as (run,level) pairs with a
// (0,0) terminator, appending to dst.
func RLE(in *Block8, dst []int32) []int32 {
	run := int32(0)
	for _, v := range in {
		if v == 0 {
			run++
			continue
		}
		dst = append(dst, run, v)
		run = 0
	}
	return append(dst, 0, 0)
}

// EncodeJPEG runs the full block pipeline over an image of w*h
// samples (w, h multiples of 8) and returns the entropy-coded stream.
func EncodeJPEG(pixels []int32, w, h int, quality int32) []int32 {
	if w%8 != 0 || h%8 != 0 || len(pixels) != w*h {
		panic("workload: image must be a multiple of 8x8")
	}
	var out []int32
	for by := 0; by < h; by += 8 {
		for bx := 0; bx < w; bx += 8 {
			var blk Block8
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = pixels[(by+y)*w+bx+x] - 128
				}
			}
			d := DCT8(&blk)
			q := Quantize(&d, quality)
			z := Zigzag(&q)
			out = RLE(&z, out)
		}
	}
	return out
}

// TestImage generates a deterministic synthetic image with smooth
// gradients plus texture — enough spectral content to exercise every
// pipeline stage.
func TestImage(w, h int, seed uint64) []int32 {
	r := xrand.New(seed)
	img := make([]int32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := int32((x*255)/w+(y*128)/h) + int32(r.Intn(32)) - 16
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*w+x] = v
		}
	}
	return img
}

// JPEGSourceCIR is the sequential C-subset version of the block
// pipeline over a 4-block strip, used as the MAPS partitioning input
// (experiment E6). Stages communicate through global arrays exactly
// like the reference C implementations MAPS consumes; the 2-D DCT is
// written as separable row and column passes (as real encoders do),
// which gives the pipeline two comparably heavy stages.
const JPEGSourceCIR = `
	int input[256];
	int shifted[256];
	int rowdct[256];
	int coeff[256];
	int quanted[256];
	int packed[512];
	int npacked;

	void main() {
		for (int i = 0; i < 256; i++) {
			shifted[i] = input[i] - 128;
		}
		for (int r = 0; r < 32; r++) {
			for (int k = 0; k < 8; k++) {
				int acc = 0;
				for (int n = 0; n < 8; n++) {
					acc += shifted[r * 8 + n] * ((k * 7 + n * 3) % 32 - 16);
				}
				rowdct[r * 8 + k] = acc / 8;
			}
		}
		for (int c = 0; c < 32; c++) {
			for (int k = 0; k < 8; k++) {
				int acc = 0;
				for (int n = 0; n < 8; n++) {
					acc += rowdct[c * 8 + n] * ((k * 5 + n * 3) % 32 - 16);
				}
				coeff[c * 8 + k] = acc / 8;
			}
		}
		for (int i = 0; i < 256; i++) {
			int q = 8 + (i % 64) / 8;
			quanted[i] = coeff[i] / q;
		}
		npacked = 0;
		for (int i = 0; i < 256; i++) {
			if (quanted[i] != 0) {
				packed[npacked] = quanted[i];
				npacked += 1;
			}
		}
		print(npacked);
	}
`
