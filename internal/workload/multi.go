package workload

import (
	"fmt"

	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
)

// Multi-application usage scenarios (paper section IV): several
// applications composed under a concurrency graph, whose maximal
// cliques give the worst-case concurrent computational load a
// platform and mapping must satisfy. The builders here turn a list of
// application specs into that analysis structure plus the union task
// graph of the worst-case scenario.

// AppSpec names one application instance of a multi-app scenario.
type AppSpec struct {
	// Kind is a task-graph workload: jpeg, h264, carradio or synth.
	Kind string
	// N sizes parameterized workloads (synth task count).
	N int
	// Seed generates parameterized workload instances.
	Seed uint64
}

// String renders the app token ("jpeg", "synth16", …).
func (a AppSpec) String() string {
	if a.N > 0 {
		return fmt.Sprintf("%s%d", a.Kind, a.N)
	}
	return a.Kind
}

// AppTaskGraph builds the task graph of one named application — the
// single dispatch point for workload tokens, shared by single-app
// design points and multi-app scenarios so both map identical
// instances.
func AppTaskGraph(kind string, n int, seed uint64) (*taskgraph.Graph, error) {
	switch kind {
	case "jpeg":
		return JPEGTaskGraph(), nil
	case "h264":
		return H264TaskGraph(), nil
	case "carradio":
		return CarRadioTaskGraph(), nil
	case "synth":
		if n <= 0 {
			n = 16
		}
		return SyntheticTaskGraph(n, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown task-graph workload %q", kind)
}

// AppPeriod returns the nominal activation period of an application
// kind — the interval over which its graph executes once, which turns
// total WCET into a cycles-per-second demand for the concurrency
// analysis. Streaming codecs run at frame/block rate; synthetic DAGs
// get a generous batch period.
func AppPeriod(kind string) sim.Time {
	switch kind {
	case "jpeg", "h264":
		return 33 * sim.Millisecond // ~30 fps frame rate
	case "carradio":
		return 10 * sim.Millisecond // audio block rate
	default:
		return 50 * sim.Millisecond
	}
}

// AppRT returns the real-time class of an application kind: the audio
// chain is hard real-time, the video codecs soft, synthetic load best
// effort (section IV's scheduling taxonomy).
func AppRT(kind string) taskgraph.RTClass {
	switch kind {
	case "carradio":
		return taskgraph.HardRT
	case "jpeg", "h264":
		return taskgraph.SoftRT
	default:
		return taskgraph.BestEffort
	}
}

// MultiScenario builds the concurrency graph of a multi-app point:
// one App per spec (graphs supplied by the caller, typically from a
// prototype cache) with kind-derived periods and RT classes, every
// pair marked concurrent — the worst-case usage scenario in which all
// listed applications are active at once. Restricted scenarios (apps
// that exclude each other) would drop marks here; the clique analysis
// downstream already handles them.
func MultiScenario(apps []AppSpec, graphs []*taskgraph.Graph) (*taskgraph.ConcurrencyGraph, error) {
	if len(apps) == 0 || len(apps) != len(graphs) {
		return nil, fmt.Errorf("workload: multi scenario needs one graph per app (%d apps, %d graphs)", len(apps), len(graphs))
	}
	cg := taskgraph.NewConcurrencyGraph()
	for i, a := range apps {
		cg.AddApp(&taskgraph.App{
			Name:   a.String(),
			Graph:  graphs[i],
			Period: AppPeriod(a.Kind),
			RT:     AppRT(a.Kind),
		})
	}
	for i := range cg.Apps {
		for j := i + 1; j < len(cg.Apps); j++ {
			cg.MarkConcurrent(cg.Apps[i], cg.Apps[j])
		}
	}
	return cg, nil
}

// WorstLoad scans the PE classes every task of the scenario can run
// on and returns the maximum worst-case concurrent demand in cycles
// per second, with the class and clique realizing it — "the worst
// case computational loads" the concurrency graph exists to derive.
// Classes some task cannot run on are skipped: CyclesOn charges an
// effectively-infinite sentinel there, which is meaningful to a
// mapper avoiding the placement but not as a demand figure. Classes
// scan in ascending order so ties resolve deterministically.
func WorstLoad(cg *taskgraph.ConcurrencyGraph) (float64, platform.PEClass, []int) {
	var worst float64
	var at []int
	class := platform.RISC
	for cl := platform.RISC; cl <= platform.CTRL; cl++ {
		runnable := true
		for _, a := range cg.Apps {
			for _, t := range a.Graph.Tasks {
				if !t.CanRunOn(cl) {
					runnable = false
				}
			}
		}
		if !runnable {
			continue
		}
		load, clique := cg.WorstCaseLoad(cl)
		if load > worst {
			worst, class, at = load, cl, clique
		}
	}
	return worst, class, at
}
