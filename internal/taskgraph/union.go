package taskgraph

import "fmt"

// Span is a contiguous task-ID range [Lo, Hi) inside a composed
// graph, identifying which tasks belong to one constituent
// application.
type Span struct {
	// Lo is the first task ID of the span (inclusive).
	Lo int
	// Hi is one past the last task ID of the span (exclusive).
	Hi int
}

// Len returns the number of tasks in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Union composes disjoint task graphs into one mappable DAG — the
// worst-case concurrent scenario of a multi-application usage case,
// where every constituent runs at once and competes for the same
// cores and fabric. Tasks are copied (sources stay immutable) with
// IDs offset per graph and names prefixed "aK." to stay unique when
// the same application appears twice; WCET tables are shared with the
// sources, which never mutate them. The returned spans give each
// source graph's task-ID range, in argument order.
func Union(name string, gs ...*Graph) (*Graph, []Span) {
	u := NewGraph(name)
	spans := make([]Span, len(gs))
	for gi, g := range gs {
		lo := len(u.Tasks)
		for _, t := range g.Tasks {
			ct := *t
			ct.Name = fmt.Sprintf("a%d.%s", gi, t.Name)
			u.AddTask(&ct)
		}
		for _, e := range g.Edges {
			u.Connect(u.Tasks[lo+e.From], u.Tasks[lo+e.To], e.Bytes, e.Label)
		}
		spans[gi] = Span{Lo: lo, Hi: len(u.Tasks)}
	}
	return u, spans
}
