package taskgraph

import (
	"testing"

	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
)

func diamond() *Graph {
	g := NewGraph("diamond")
	wc := func(c int64) map[platform.PEClass]int64 {
		return map[platform.PEClass]int64{platform.RISC: c, platform.DSP: c / 2}
	}
	a := g.AddTask(&Task{Name: "a", WCET: wc(100)})
	b := g.AddTask(&Task{Name: "b", WCET: wc(200)})
	c := g.AddTask(&Task{Name: "c", WCET: wc(300)})
	d := g.AddTask(&Task{Name: "d", WCET: wc(100)})
	g.Connect(a, b, 64, "")
	g.Connect(a, c, 64, "")
	g.Connect(b, d, 32, "")
	g.Connect(c, d, 32, "")
	return g
}

func TestTopoOrder(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topological violation: %d before %d", e.To, e.From)
		}
	}
}

func TestCycleDetected(t *testing.T) {
	g := diamond()
	g.Edges = append(g.Edges, Edge{From: 3, To: 0})
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	g := NewGraph("bad")
	g.AddTask(&Task{Name: "x", WCET: map[platform.PEClass]int64{platform.RISC: 1}})
	g.Edges = append(g.Edges, Edge{From: 0, To: 5})
	if err := g.Validate(); err == nil {
		t.Fatal("dangling edge accepted")
	}
	g2 := NewGraph("noWCET")
	g2.AddTask(&Task{Name: "y", WCET: map[platform.PEClass]int64{}})
	if err := g2.Validate(); err == nil {
		t.Fatal("WCET-less task accepted")
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond()
	// a -> c -> d = 100+300+100 = 500 on RISC.
	if cp := g.CriticalPathCycles(platform.RISC); cp != 500 {
		t.Fatalf("critical path %d, want 500", cp)
	}
	if tot := g.TotalCycles(platform.RISC); tot != 700 {
		t.Fatalf("total %d, want 700", tot)
	}
	// DSP halves everything.
	if cp := g.CriticalPathCycles(platform.DSP); cp != 250 {
		t.Fatalf("DSP critical path %d, want 250", cp)
	}
}

func TestCanRunOn(t *testing.T) {
	task := &Task{Name: "dsp-only", WCET: map[platform.PEClass]int64{platform.DSP: 10}}
	if task.CanRunOn(platform.RISC) {
		t.Fatal("task should not run on RISC")
	}
	if task.CyclesOn(platform.RISC) < 1<<40 {
		t.Fatal("impossible class should cost astronomically")
	}
}

func TestConcurrencyWorstCase(t *testing.T) {
	cg := NewConcurrencyGraph()
	mk := func(name string, cycles int64, period sim.Time) *App {
		g := NewGraph(name)
		g.AddTask(&Task{Name: name, WCET: map[platform.PEClass]int64{platform.RISC: cycles}})
		return cg.AddApp(&App{Name: name, Graph: g, Period: period})
	}
	radio := mk("radio", 1_000_000, 10*sim.Millisecond)  // 100 Mcyc/s
	video := mk("video", 4_000_000, 33*sim.Millisecond)  // ~121 Mcyc/s
	ui := mk("ui", 200_000, 50*sim.Millisecond)          // 4 Mcyc/s
	browser := mk("browser", 3_000_000, 20*sim.Millisecond) // 150 Mcyc/s

	// Radio runs with everything; video and browser never overlap.
	cg.MarkConcurrent(radio, video)
	cg.MarkConcurrent(radio, ui)
	cg.MarkConcurrent(radio, browser)
	cg.MarkConcurrent(video, ui)
	cg.MarkConcurrent(browser, ui)

	cliques := cg.MaximalCliques()
	// Expect {radio,video,ui} and {radio,browser,ui}.
	if len(cliques) != 2 {
		t.Fatalf("cliques = %v", cliques)
	}
	load, clique := cg.WorstCaseLoad(platform.RISC)
	// Worst clique is radio+browser+ui = 100+150+4 = 254 Mcyc/s.
	want := radio.Load(platform.RISC) + browser.Load(platform.RISC) + ui.Load(platform.RISC)
	if load != want {
		t.Fatalf("worst load %g, want %g (clique %v)", load, want, clique)
	}
	if len(clique) != 3 {
		t.Fatalf("worst clique %v", clique)
	}
}

func TestSingleAppClique(t *testing.T) {
	cg := NewConcurrencyGraph()
	g := NewGraph("solo")
	g.AddTask(&Task{Name: "t", WCET: map[platform.PEClass]int64{platform.RISC: 100}})
	cg.AddApp(&App{Name: "solo", Graph: g, Period: sim.Millisecond})
	cliques := cg.MaximalCliques()
	if len(cliques) != 1 || len(cliques[0]) != 1 {
		t.Fatalf("cliques = %v", cliques)
	}
}

func TestInBytesAggregates(t *testing.T) {
	g := NewGraph("multi")
	a := g.AddTask(&Task{Name: "a", WCET: map[platform.PEClass]int64{platform.RISC: 1}})
	b := g.AddTask(&Task{Name: "b", WCET: map[platform.PEClass]int64{platform.RISC: 1}})
	g.Connect(a, b, 100, "x")
	g.Connect(a, b, 50, "y")
	if got := g.InBytes(a.ID, b.ID); got != 150 {
		t.Fatalf("InBytes = %d", got)
	}
}
