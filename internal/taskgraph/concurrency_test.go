package taskgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
)

// randomConcurrency builds a concurrency graph of n single-task apps
// with random loads and a random concurrency relation drawn from r.
func randomConcurrency(r *rand.Rand, n int) *ConcurrencyGraph {
	cg := NewConcurrencyGraph()
	for i := 0; i < n; i++ {
		g := NewGraph("app")
		g.AddTask(&Task{
			Name: "t",
			WCET: map[platform.PEClass]int64{platform.RISC: 1 + r.Int63n(1_000_000)},
		})
		period := sim.Time(0)
		if r.Intn(4) > 0 { // leave some apps load-less (period 0)
			period = sim.Time(1+r.Int63n(50)) * sim.Millisecond
		}
		cg.AddApp(&App{Name: "app", Graph: g, Period: period})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(2) == 0 {
				cg.MarkConcurrent(cg.Apps[i], cg.Apps[j])
			}
		}
	}
	return cg
}

// isClique reports whether the apps in ids are pairwise concurrent.
func isClique(cg *ConcurrencyGraph, ids []int) bool {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if !cg.Concurrent(ids[i], ids[j]) {
				return false
			}
		}
	}
	return true
}

// TestMaximalCliquesProperties: on random concurrency graphs, every
// returned set is a clique, no returned clique extends to a larger
// one, and every app appears in at least one returned clique.
func TestMaximalCliquesProperties(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(sz)%9
		cg := randomConcurrency(r, n)
		cliques := cg.MaximalCliques()
		covered := make([]bool, n)
		for _, cl := range cliques {
			if len(cl) == 0 || !isClique(cg, cl) {
				t.Logf("non-clique %v returned", cl)
				return false
			}
			for _, id := range cl {
				covered[id] = true
			}
			// Maximality: no app outside the clique is concurrent with
			// every member.
			inClique := make(map[int]bool, len(cl))
			for _, id := range cl {
				inClique[id] = true
			}
			for cand := 0; cand < n; cand++ {
				if inClique[cand] {
					continue
				}
				extends := true
				for _, id := range cl {
					if !cg.Concurrent(cand, id) {
						extends = false
						break
					}
				}
				if extends {
					t.Logf("clique %v extends with app %d", cl, cand)
					return false
				}
			}
		}
		for id, ok := range covered {
			if !ok {
				t.Logf("app %d in no maximal clique", id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWorstCaseLoadBruteForce: the reported worst-case load equals
// the brute-force maximum aggregate load over every clique (maximal
// or not) of the concurrency relation — loads are non-negative, so
// restricting the scan to maximal cliques must not change the answer.
func TestWorstCaseLoadBruteForce(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(sz)%9
		cg := randomConcurrency(r, n)
		got, gotClique := cg.WorstCaseLoad(platform.RISC)
		var want float64
		for mask := 1; mask < 1<<n; mask++ {
			var ids []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					ids = append(ids, i)
				}
			}
			if !isClique(cg, ids) {
				continue
			}
			var load float64
			for _, id := range ids {
				load += cg.Apps[id].Load(platform.RISC)
			}
			if load > want {
				want = load
			}
		}
		if got != want {
			t.Logf("WorstCaseLoad=%v brute-force=%v", got, want)
			return false
		}
		if got > 0 && !isClique(cg, gotClique) {
			t.Logf("worst clique %v is not a clique", gotClique)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
