// Package taskgraph models the coarse-grained task graphs the MAPS
// flow extracts from sequential code (section IV of the paper):
// tasks with per-PE-class WCETs and real-time attributes, weighted
// communication edges, and the multi-application concurrency graph
// MAPS uses "to capture potential parallelism between applications,
// in order to derive the worst case computational loads".
package taskgraph

import (
	"fmt"
	"sort"

	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
)

// RTClass is the real-time criticality of a task or application.
// Section IV: "Hard real-time applications are scheduled statically,
// while soft and non-real-time applications are scheduled dynamically
// according to their priority in best effort manner."
type RTClass int

// Real-time classes.
const (
	BestEffort RTClass = iota
	SoftRT
	HardRT
)

func (c RTClass) String() string {
	switch c {
	case HardRT:
		return "hard"
	case SoftRT:
		return "soft"
	default:
		return "best-effort"
	}
}

// Task is one schedulable unit.
type Task struct {
	ID   int
	Name string
	// WCET gives worst-case cycles per PE class; absence means the
	// task cannot run on that class.
	WCET map[platform.PEClass]int64
	// PreferredPE is the '#pragma maps pe=...' hint.
	PreferredPE platform.PEClass
	HasPref     bool

	Period   sim.Time
	Deadline sim.Time
	Priority int
	RT       RTClass
}

// CanRunOn reports whether the task has a WCET for the class.
func (t *Task) CanRunOn(class platform.PEClass) bool {
	_, ok := t.WCET[class]
	return ok
}

// CyclesOn returns the task's WCET on class; +Inf-ish for impossible.
func (t *Task) CyclesOn(class platform.PEClass) int64 {
	if c, ok := t.WCET[class]; ok {
		return c
	}
	return 1 << 50
}

// Edge is a directed data dependence carrying Bytes of payload.
type Edge struct {
	From, To int
	Bytes    int
	Label    string
}

// Graph is a task DAG. Mutate it only through AddTask and Connect:
// both invalidate the cached View, direct writes to Tasks/Edges do
// not.
type Graph struct {
	Name  string
	Tasks []*Task
	Edges []Edge

	// version counts structural mutations; View caches against it.
	version uint64
	view    *View
}

// NewGraph returns an empty task graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// AddTask appends a task and assigns its ID.
func (g *Graph) AddTask(t *Task) *Task {
	t.ID = len(g.Tasks)
	g.Tasks = append(g.Tasks, t)
	g.version++
	return t
}

// Connect adds a dependence edge.
func (g *Graph) Connect(from, to *Task, bytes int, label string) {
	g.Edges = append(g.Edges, Edge{From: from.ID, To: to.ID, Bytes: bytes, Label: label})
	g.version++
}

// Preds returns the predecessor task IDs of id, in edge order.
func (g *Graph) Preds(id int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.To == id {
			out = append(out, e.From)
		}
	}
	return out
}

// Succs returns the successor task IDs of id, in edge order.
func (g *Graph) Succs(id int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e.To)
		}
	}
	return out
}

// InBytes sums payload arriving at task id from pred p.
func (g *Graph) InBytes(p, id int) int {
	total := 0
	for _, e := range g.Edges {
		if e.From == p && e.To == id {
			total += e.Bytes
		}
	}
	return total
}

// Validate checks IDs, edge endpoints, and acyclicity.
func (g *Graph) Validate() error {
	for i, t := range g.Tasks {
		if t.ID != i {
			return fmt.Errorf("taskgraph: task %q has ID %d at position %d", t.Name, t.ID, i)
		}
		if len(t.WCET) == 0 {
			return fmt.Errorf("taskgraph: task %q has no WCET on any PE class", t.Name)
		}
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Tasks) || e.To < 0 || e.To >= len(g.Tasks) {
			return fmt.Errorf("taskgraph: edge %d->%d out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("taskgraph: self edge on task %d", e.From)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a deterministic topological order (Kahn with
// smallest-ID tie-break) or an error when the graph has a cycle. The
// order is memoized on the cached View; the returned slice is a copy
// the caller may keep.
func (g *Graph) TopoOrder() ([]int, error) {
	order, err := g.View().TopoOrder()
	if err != nil {
		return nil, err
	}
	return append([]int(nil), order...), nil
}

// TotalCycles sums the WCETs of all tasks on the given class.
func (g *Graph) TotalCycles(class platform.PEClass) int64 {
	var total int64
	for _, t := range g.Tasks {
		total += t.CyclesOn(class)
	}
	return total
}

// CriticalPathCycles returns the longest compute path (ignoring
// communication) on the given class — the parallel-speedup bound.
func (g *Graph) CriticalPathCycles(class platform.PEClass) int64 {
	v := g.View()
	order, err := v.TopoOrder()
	if err != nil {
		return g.TotalCycles(class)
	}
	finish := make([]int64, len(g.Tasks))
	var best int64
	for _, id := range order {
		var start int64
		for _, p := range v.Preds(id) {
			if finish[p.Task] > start {
				start = finish[p.Task]
			}
		}
		finish[id] = start + g.Tasks[id].CyclesOn(class)
		if finish[id] > best {
			best = finish[id]
		}
	}
	return best
}

// App is one application instance for the concurrency analysis.
type App struct {
	ID    int
	Name  string
	Graph *Graph
	// Period over which the graph executes once.
	Period sim.Time
	RT     RTClass
}

// Load returns the app's utilization demand in cycles per second on
// the given class: total cycles / period.
func (a *App) Load(class platform.PEClass) float64 {
	if a.Period <= 0 {
		return 0
	}
	return float64(a.Graph.TotalCycles(class)) / a.Period.Seconds()
}

// ConcurrencyGraph marks which applications may be active
// simultaneously (section IV's multi-application usage scenarios).
type ConcurrencyGraph struct {
	Apps []*App
	// conc[i][j] = true when apps i and j can run at the same time.
	conc map[[2]int]bool
}

// NewConcurrencyGraph returns an empty concurrency graph.
func NewConcurrencyGraph() *ConcurrencyGraph {
	return &ConcurrencyGraph{conc: map[[2]int]bool{}}
}

// AddApp registers an application.
func (c *ConcurrencyGraph) AddApp(a *App) *App {
	a.ID = len(c.Apps)
	c.Apps = append(c.Apps, a)
	return a
}

// MarkConcurrent records that a and b may be active together.
func (c *ConcurrencyGraph) MarkConcurrent(a, b *App) {
	if a.ID == b.ID {
		return
	}
	i, j := a.ID, b.ID
	if i > j {
		i, j = j, i
	}
	c.conc[[2]int{i, j}] = true
}

// Concurrent reports whether apps i and j may overlap.
func (c *ConcurrencyGraph) Concurrent(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	return c.conc[[2]int{i, j}]
}

// MaximalCliques enumerates maximal sets of pairwise-concurrent apps.
// Usage scenarios involve a handful of applications, so exhaustive
// subset enumeration (2^n) is both simple and exact; it panics beyond
// 20 apps rather than silently blowing up.
func (c *ConcurrencyGraph) MaximalCliques() [][]int {
	n := len(c.Apps)
	if n == 0 {
		return nil
	}
	if n > 20 {
		panic("taskgraph: too many apps for exhaustive clique enumeration")
	}
	isClique := func(mask uint32) bool {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if mask&(1<<j) != 0 && !c.Concurrent(i, j) {
					return false
				}
			}
		}
		return true
	}
	var cliqueMasks []uint32
	for mask := uint32(1); mask < 1<<n; mask++ {
		if isClique(mask) {
			cliqueMasks = append(cliqueMasks, mask)
		}
	}
	var cliques [][]int
	for _, m := range cliqueMasks {
		maximal := true
		for _, o := range cliqueMasks {
			if o != m && o&m == m {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		var clique []int
		for i := 0; i < n; i++ {
			if m&(1<<i) != 0 {
				clique = append(clique, i)
			}
		}
		cliques = append(cliques, clique)
	}
	sort.Slice(cliques, func(a, b int) bool {
		return fmt.Sprint(cliques[a]) < fmt.Sprint(cliques[b])
	})
	return cliques
}

// WorstCaseLoad returns, per PE class, the maximum aggregate
// cycles-per-second demand over all maximal concurrency cliques, and
// the clique realizing it — the "worst case computational loads" of
// section IV.
func (c *ConcurrencyGraph) WorstCaseLoad(class platform.PEClass) (float64, []int) {
	var worst float64
	var at []int
	for _, clique := range c.MaximalCliques() {
		var load float64
		for _, id := range clique {
			load += c.Apps[id].Load(class)
		}
		if load > worst {
			worst = load
			at = clique
		}
	}
	return worst, at
}
