package taskgraph

import (
	"fmt"

	"mpsockit/internal/platform"
)

// Adj is one adjacency record of a View: the neighbor task, the index
// of the Graph.Edges entry it came from, and the payload bytes. In the
// aggregated Preds/Succs views parallel edges between the same task
// pair are merged into a single record with summed Bytes (Edge keeps
// the first contributing edge index); in the per-edge InEdges/OutEdges
// views every Graph.Edges entry appears exactly once.
type Adj struct {
	Task  int
	Edge  int
	Bytes int
}

// View is an immutable adjacency snapshot of a Graph, built once and
// cached on the graph: CSR-style predecessor/successor lists with
// per-edge payload bytes, the memoized topological order, and a dense
// per-class WCET table. It exists so the mapping-search hot path
// (thousands of candidate evaluations per design point) never rescans
// Graph.Edges or allocates adjacency slices the way Graph.Preds/Succs/
// InBytes do.
//
// A View is valid for the graph state it was built from; AddTask and
// Connect invalidate it, and the next Graph.View call rebuilds. All
// accessors return subslices of the view's backing arrays — callers
// must treat them as read-only. Concurrent readers of one View are
// safe; building (the first View call after a mutation) is not
// goroutine-safe, so materialize the view before sharing a graph
// across goroutines.
type View struct {
	g       *Graph
	version uint64

	// Aggregated adjacency (one record per distinct neighbor).
	predStart []int
	predAdj   []Adj
	succStart []int
	succAdj   []Adj

	// Per-edge adjacency (one record per Graph.Edges entry).
	inStart  []int
	inAdj    []Adj
	outStart []int
	outAdj   []Adj

	topo    []int
	topoErr error

	// cycles[id*NumPEClasses+class] is the task's WCET on class, or -1
	// when the task cannot run there.
	cycles []int64
}

// View returns the graph's cached adjacency view, rebuilding it if
// AddTask or Connect ran since the last call.
func (g *Graph) View() *View {
	if g.view != nil && g.view.version == g.version {
		return g.view
	}
	g.view = buildView(g)
	return g.view
}

// NumPEClasses is the number of distinct platform.PEClass values,
// sizing the view's dense per-class WCET table.
const NumPEClasses = int(platform.CTRL) + 1

func buildView(g *Graph) *View {
	n := len(g.Tasks)
	v := &View{g: g, version: g.version}

	// Per-edge CSR, counting sort by endpoint. Iterating g.Edges in
	// order both times keeps each bucket in edge order, matching the
	// iteration order of the legacy Preds/Succs scans.
	v.inStart = make([]int, n+1)
	v.outStart = make([]int, n+1)
	for _, e := range g.Edges {
		v.inStart[e.To+1]++
		v.outStart[e.From+1]++
	}
	for i := 0; i < n; i++ {
		v.inStart[i+1] += v.inStart[i]
		v.outStart[i+1] += v.outStart[i]
	}
	v.inAdj = make([]Adj, len(g.Edges))
	v.outAdj = make([]Adj, len(g.Edges))
	inNext := make([]int, n)
	outNext := make([]int, n)
	copy(inNext, v.inStart[:n])
	copy(outNext, v.outStart[:n])
	for i, e := range g.Edges {
		v.inAdj[inNext[e.To]] = Adj{Task: e.From, Edge: i, Bytes: e.Bytes}
		inNext[e.To]++
		v.outAdj[outNext[e.From]] = Adj{Task: e.To, Edge: i, Bytes: e.Bytes}
		outNext[e.From]++
	}

	// Aggregated adjacency: merge parallel edges (same pair, summed
	// bytes, first-occurrence order). Neighbor lists are short, so the
	// quadratic merge stays cheap and allocation-light.
	aggregate := func(start []int, adj []Adj) ([]int, []Adj) {
		aggStart := make([]int, n+1)
		agg := make([]Adj, 0, len(adj))
		for id := 0; id < n; id++ {
			aggStart[id] = len(agg)
			for _, a := range adj[start[id]:start[id+1]] {
				merged := false
				for j := aggStart[id]; j < len(agg); j++ {
					if agg[j].Task == a.Task {
						agg[j].Bytes += a.Bytes
						merged = true
						break
					}
				}
				if !merged {
					agg = append(agg, a)
				}
			}
		}
		aggStart[n] = len(agg)
		return aggStart, agg
	}
	v.predStart, v.predAdj = aggregate(v.inStart, v.inAdj)
	v.succStart, v.succAdj = aggregate(v.outStart, v.outAdj)

	v.buildTopo()

	v.cycles = make([]int64, n*NumPEClasses)
	for id, t := range g.Tasks {
		row := v.cycles[id*NumPEClasses : (id+1)*NumPEClasses]
		for cl := range row {
			row[cl] = -1
		}
		for cl, cyc := range t.WCET {
			if int(cl) >= 0 && int(cl) < NumPEClasses {
				row[cl] = cyc
			}
		}
	}
	return v
}

// buildTopo runs Kahn's algorithm with a min-heap on task ID — the
// same smallest-ID tie-break as the legacy sort-based TopoOrder, one
// pass instead of a sort per step.
func (v *View) buildTopo() {
	n := len(v.g.Tasks)
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		indeg[id] = v.inStart[id+1] - v.inStart[id]
	}
	heap := make([]int, 0, n)
	push := func(x int) {
		heap = append(heap, x)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if heap[parent] <= heap[i] {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			c := 2*i + 1
			if c >= last {
				break
			}
			if r := c + 1; r < last && heap[r] < heap[c] {
				c = r
			}
			if heap[i] <= heap[c] {
				break
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
		return top
	}
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			push(id)
		}
	}
	order := make([]int, 0, n)
	for len(heap) > 0 {
		id := pop()
		order = append(order, id)
		for _, a := range v.outAdj[v.outStart[id]:v.outStart[id+1]] {
			indeg[a.Task]--
			if indeg[a.Task] == 0 {
				push(a.Task)
			}
		}
	}
	if len(order) != n {
		v.topoErr = fmt.Errorf("taskgraph: %q contains a cycle", v.g.Name)
		return
	}
	v.topo = order
}

// TopoOrder returns the memoized topological order (Kahn,
// smallest-ID tie-break) or the graph's cycle error. The slice is the
// view's own — read-only for callers.
func (v *View) TopoOrder() ([]int, error) {
	return v.topo, v.topoErr
}

// Preds returns task id's distinct predecessors in first-edge order,
// with parallel-edge bytes summed — the aggregation mapping cost
// models want. Read-only.
func (v *View) Preds(id int) []Adj {
	return v.predAdj[v.predStart[id]:v.predStart[id+1]]
}

// Succs returns task id's distinct successors in first-edge order,
// with parallel-edge bytes summed. Read-only.
func (v *View) Succs(id int) []Adj {
	return v.succAdj[v.succStart[id]:v.succStart[id+1]]
}

// InEdges returns one record per incoming Graph.Edges entry of task
// id, in edge order. Read-only.
func (v *View) InEdges(id int) []Adj {
	return v.inAdj[v.inStart[id]:v.inStart[id+1]]
}

// OutEdges returns one record per outgoing Graph.Edges entry of task
// id, in edge order. Read-only.
func (v *View) OutEdges(id int) []Adj {
	return v.outAdj[v.outStart[id]:v.outStart[id+1]]
}

// CyclesOn returns task id's WCET on class from the dense table, with
// the same no-WCET sentinel as Task.CyclesOn.
func (v *View) CyclesOn(id int, class platform.PEClass) int64 {
	if c := v.cycles[id*NumPEClasses+int(class)]; c >= 0 {
		return c
	}
	return 1 << 50
}

// CanRunOn reports whether task id has a WCET on class, from the
// dense table.
func (v *View) CanRunOn(id int, class platform.PEClass) bool {
	return v.cycles[id*NumPEClasses+int(class)] >= 0
}
