package mapping

import (
	"testing"
	"testing/quick"

	"mpsockit/internal/platform"
	"mpsockit/internal/taskgraph"
)

// randomDAG builds a task graph from fuzz bytes: edges always point
// from lower to higher IDs, so the graph is acyclic by construction.
func randomDAG(tasks []uint8, edges []uint16) *taskgraph.Graph {
	n := len(tasks)%6 + 2
	g := taskgraph.NewGraph("fuzz")
	for i := 0; i < n; i++ {
		cyc := int64(tasks[i%len(tasks)])*1000 + 1000
		g.AddTask(&taskgraph.Task{
			Name: "t",
			WCET: map[platform.PEClass]int64{
				platform.RISC: cyc,
				platform.DSP:  cyc/2 + 1,
				platform.VLIW: cyc + 500,
			},
		})
	}
	for _, e := range edges {
		from := int(e>>8) % n
		to := int(e&0xff) % n
		if from < to {
			g.Connect(g.Tasks[from], g.Tasks[to], int(e%512)+1, "")
		}
	}
	return g
}

// Property: every heuristic produces a schedule that passes Validate
// (no PE overlap, precedence respected) and a positive makespan, for
// arbitrary acyclic graphs.
func TestMappingValidityProperty(t *testing.T) {
	plat := wirelessPlat()
	f := func(tasks []uint8, edges []uint16) bool {
		if len(tasks) == 0 {
			return true
		}
		if len(edges) > 12 {
			edges = edges[:12]
		}
		g := randomDAG(tasks, edges)
		if g.Validate() != nil {
			return true // duplicate edges etc. — not the property under test
		}
		for _, h := range []Heuristic{List, Anneal} {
			a, err := Map(g, plat, Options{Heuristic: h, Seed: 1, Iterations: 100})
			if err != nil {
				return false
			}
			if a.Makespan <= 0 {
				return false
			}
			if a.Validate() != nil {
				return false
			}
		}
		// Throughput objective as well.
		a, err := Map(g, plat, Options{Objective: Throughput})
		if err != nil || a.Validate() != nil {
			return false
		}
		// Pipelined execution completes for any valid assignment.
		if _, err := ExecutePipelined(a, 3); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
