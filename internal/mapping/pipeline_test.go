package mapping

import (
	"testing"

	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
)

func TestThroughputObjectiveSpreadsChain(t *testing.T) {
	plat := wirelessPlat()
	g := chainGraph(4, 1_000_000, 64)
	a, err := Map(g, plat, Options{Objective: Throughput})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, pe := range a.TaskPE {
		used[pe] = true
	}
	// The two double-speed DSPs holding two stages each is the
	// balanced optimum; the mapper must at minimum not serialize.
	if len(used) < 2 {
		t.Fatalf("throughput mapping serialized the chain onto %d core", len(used))
	}
	// Bottleneck load must beat the best single core.
	load := map[int]sim.Time{}
	for id, pe := range a.TaskPE {
		c := plat.Core(pe)
		load[pe] += c.Cycles(g.Tasks[id].CyclesOn(c.Class))
	}
	var bottleneck sim.Time
	for _, l := range load {
		if l > bottleneck {
			bottleneck = l
		}
	}
	var bestSerial sim.Time = sim.Forever
	for _, c := range plat.Cores {
		var total sim.Time
		ok := true
		for _, task := range g.Tasks {
			if !task.CanRunOn(c.Class) {
				ok = false
				break
			}
			total += c.Cycles(task.CyclesOn(c.Class))
		}
		if ok && total < bestSerial {
			bestSerial = total
		}
	}
	if bottleneck >= bestSerial {
		t.Fatalf("bottleneck %v not better than serial %v", bottleneck, bestSerial)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedBeatsOneShotOnChain(t *testing.T) {
	plat := wirelessPlat()
	g := chainGraph(4, 1_000_000, 64)
	a, err := Map(g, plat, Options{Objective: Throughput})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 16
	pipelined, err := ExecutePipelined(a, iters)
	if err != nil {
		t.Fatal(err)
	}
	// Serial lower bound: the whole chain on the single best core,
	// iters times.
	var serial sim.Time = sim.Forever
	for _, c := range plat.Cores {
		var total sim.Time
		ok := true
		for _, task := range g.Tasks {
			if !task.CanRunOn(c.Class) {
				ok = false
				break
			}
			total += c.Cycles(task.CyclesOn(c.Class))
		}
		if ok && total < serial {
			serial = total
		}
	}
	serialAll := serial * iters
	if pipelined.Makespan >= serialAll {
		t.Fatalf("pipelined %v not faster than serial %v", pipelined.Makespan, serialAll)
	}
	// Speedup bounded by stage count.
	speedup := float64(serialAll) / float64(pipelined.Makespan)
	if speedup > float64(len(g.Tasks))+0.5 {
		t.Fatalf("speedup %.2f exceeds stage bound", speedup)
	}
}

func TestPipelinedSingleIterationMatchesDAGShape(t *testing.T) {
	plat := wirelessPlat()
	g := chainGraph(3, 500_000, 32)
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	one, err := ExecutePipelined(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	if _, err := ExecutePipelined(a, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestPipelinedForkJoin(t *testing.T) {
	plat := wirelessPlat()
	g := forkJoin(3, 400_000)
	a, err := Map(g, plat, Options{Objective: Throughput})
	if err != nil {
		t.Fatal(err)
	}
	mk, err := ExecutePipelined(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mk.Makespan <= 0 {
		t.Fatal("fork-join pipeline failed")
	}
}

func TestThroughputHonorsCapability(t *testing.T) {
	plat := wirelessPlat()
	g := taskgraph.NewGraph("dsponly")
	for i := 0; i < 3; i++ {
		g.AddTask(&taskgraph.Task{
			Name: "t",
			WCET: map[platform.PEClass]int64{platform.DSP: 1000},
		})
	}
	a, err := Map(g, plat, Options{Objective: Throughput})
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range a.TaskPE {
		if plat.Core(pe).Class != platform.DSP {
			t.Fatal("task placed on incapable core")
		}
	}
}
