package mapping

import "mpsockit/internal/obs"

// SearchObs is the mapping layer's optional instrumentation handle: a
// bundle of counters the search heuristics bump as they work. The
// zero value is fully inert — every field is a nil *obs.Counter whose
// methods are no-ops — so an Evaluator with no observer attached pays
// one nil check per event and allocates nothing (the CI bench guard
// holds schedule and objectiveCost at 0 allocs/op with these
// increments compiled in).
type SearchObs struct {
	// Schedules counts list-schedule evaluations (calls to schedule).
	Schedules *obs.Counter
	// CostEvals counts objective-cost evaluations of a candidate
	// assignment.
	CostEvals *obs.Counter
	// AnnealMoves counts proposed simulated-annealing moves.
	AnnealMoves *obs.Counter
	// AnnealAccepts counts accepted annealing moves.
	AnnealAccepts *obs.Counter
	// AnnealRejects counts rejected (reverted) annealing moves.
	AnnealRejects *obs.Counter
}
