package mapping

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"mpsockit/internal/noc"
	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
	"mpsockit/internal/workload"
	"mpsockit/internal/xrand"
)

// Equivalence tests: the zero-allocation Evaluator hot path must
// reproduce the seed implementation byte for byte — same makespans,
// same slots, same annealing trajectory, same exhaustive argmin. The
// reference implementations below are verbatim copies of the
// pre-Evaluator code (per-call edge scans, full-copy anneal moves,
// plain enumeration).

func capableRef(g *taskgraph.Graph, plat *platform.Platform, t *taskgraph.Task) []int {
	var pref, all []int
	for _, c := range plat.Cores {
		if !t.CanRunOn(c.Class) {
			continue
		}
		all = append(all, c.ID)
		if t.HasPref && c.Class == t.PreferredPE {
			pref = append(pref, c.ID)
		}
	}
	if t.HasPref && len(pref) > 0 {
		return pref
	}
	return all
}

func evaluateRef(g *taskgraph.Graph, plat *platform.Platform, taskPE []int) (sim.Time, []Slot, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, nil, err
	}
	peAvail := make([]sim.Time, len(plat.Cores))
	finish := make([]sim.Time, len(g.Tasks))
	slots := make([]Slot, 0, len(g.Tasks))
	var makespan sim.Time
	for _, id := range order {
		t := g.Tasks[id]
		pe := taskPE[id]
		core := plat.Core(pe)
		if !t.CanRunOn(core.Class) {
			return 0, nil, nil // callers below only compare the error case by presence
		}
		ready := sim.Time(0)
		for _, p := range g.Preds(id) {
			arr := finish[p]
			if taskPE[p] != pe {
				arr += plat.Fabric.EstLatency(taskPE[p], pe, g.InBytes(p, id))
			}
			if arr > ready {
				ready = arr
			}
		}
		start := ready
		if peAvail[pe] > start {
			start = peAvail[pe]
		}
		end := start + core.Cycles(t.CyclesOn(core.Class))
		peAvail[pe] = end
		finish[id] = end
		slots = append(slots, Slot{Task: id, PE: pe, Start: start, Finish: end})
		if end > makespan {
			makespan = end
		}
	}
	return makespan, slots, nil
}

func objectiveCostRef(g *taskgraph.Graph, plat *platform.Platform, objective Objective, assign []int) sim.Time {
	if objective == Throughput {
		load := make([]sim.Time, len(plat.Cores))
		var worst sim.Time
		for id, pe := range assign {
			core := plat.Core(pe)
			load[pe] += core.Cycles(g.Tasks[id].CyclesOn(core.Class))
			if load[pe] > worst {
				worst = load[pe]
			}
		}
		return worst
	}
	mk, slots, err := evaluateRef(g, plat, assign)
	if err != nil || slots == nil {
		return sim.Forever
	}
	return mk
}

// annealMapRef is the seed annealer: full assignment copy per move,
// full cost recomputation per candidate.
func annealMapRef(g *taskgraph.Graph, plat *platform.Platform, opt Options, start []int) []int {
	cur := append([]int{}, start...)
	iters := opt.Iterations
	if iters <= 0 {
		iters = 2000
	}
	rng := xrand.New(opt.Seed + 1)
	cost := func(assign []int) sim.Time {
		return objectiveCostRef(g, plat, opt.Objective, assign)
	}
	curCost := cost(cur)
	best := append([]int{}, cur...)
	bestCost := curCost
	temp := float64(curCost)
	for i := 0; i < iters; i++ {
		tIdx := rng.Intn(len(g.Tasks))
		cands := capableRef(g, plat, g.Tasks[tIdx])
		next := append([]int{}, cur...)
		next[tIdx] = cands[rng.Intn(len(cands))]
		nc := cost(next)
		dE := float64(nc - curCost)
		if dE <= 0 || rng.Float64() < math.Exp(-dE/math.Max(temp, 1)) {
			cur, curCost = next, nc
			if curCost < bestCost {
				best = append([]int{}, cur...)
				bestCost = curCost
			}
		}
		temp *= 0.995
	}
	return best
}

// exhaustiveMapRef is the seed plain enumeration (first-found min).
func exhaustiveMapRef(g *taskgraph.Graph, plat *platform.Platform, objective Objective) []int {
	n := len(g.Tasks)
	cands := make([][]int, n)
	for i, t := range g.Tasks {
		cands[i] = capableRef(g, plat, t)
	}
	assign := make([]int, n)
	best := make([]int, n)
	bestCost := sim.Forever
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c := objectiveCostRef(g, plat, objective, assign)
			if c < bestCost {
				bestCost = c
				copy(best, assign)
			}
			return
		}
		for _, pe := range cands[i] {
			assign[i] = pe
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// evalPlatforms builds the platform shapes the default sweep crosses,
// each on a private kernel.
func evalPlatforms() []*platform.Platform {
	var plats []*platform.Platform
	build := func(f func(k *sim.Kernel) *platform.Platform) {
		k := sim.NewKernel()
		plats = append(plats, f(k))
	}
	build(func(k *sim.Kernel) *platform.Platform { return platform.NewWirelessTerminal(k, noc.MeshFor(k, 6)) })
	build(func(k *sim.Kernel) *platform.Platform { return platform.NewWirelessTerminal(k, noc.DefaultBus(k)) })
	build(func(k *sim.Kernel) *platform.Platform {
		return platform.NewHomogeneous(k, 4, 1_000_000_000, noc.MeshFor(k, 4))
	})
	build(func(k *sim.Kernel) *platform.Platform {
		return platform.NewHomogeneous(k, 8, 1_000_000_000, noc.DefaultBus(k))
	})
	build(func(k *sim.Kernel) *platform.Platform { return platform.NewCellLike(k, 4, noc.MeshFor(k, 5)) })
	build(func(k *sim.Kernel) *platform.Platform { return platform.NewMPCoreLike(k, 2, noc.DefaultBus(k)) })
	// DVFS variants: pin every core to its lowest and highest level.
	for _, lvl := range []int{0, 2} {
		k := sim.NewKernel()
		p := platform.NewWirelessTerminal(k, noc.MeshFor(k, 6))
		for _, c := range p.Cores {
			if lvl < len(c.Levels) {
				if err := c.SetLevel(lvl); err != nil {
					panic(err)
				}
			}
		}
		plats = append(plats, p)
	}
	return plats
}

func evalWorkloads() []*taskgraph.Graph {
	return []*taskgraph.Graph{
		workload.JPEGTaskGraph(),
		workload.H264TaskGraph(),
		workload.CarRadioTaskGraph(),
		workload.SyntheticTaskGraph(16, 7),
		workload.SyntheticTaskGraph(24, 99),
	}
}

// TestScheduleEquivalence: the scratch-based schedule reproduces the
// seed evaluate on random graphs, platforms and capable assignments.
func TestScheduleEquivalence(t *testing.T) {
	plats := evalPlatforms()
	f := func(tasks []uint8, edges []uint16, seed uint64) bool {
		if len(tasks) == 0 {
			return true
		}
		if len(edges) > 16 {
			edges = edges[:16]
		}
		g := randomDAG(tasks, edges)
		if g.Validate() != nil {
			return true
		}
		plat := plats[int(seed%uint64(len(plats)))]
		ev := NewEvaluator(g, plat)
		rng := xrand.New(seed)
		assign := make([]int, len(g.Tasks))
		for id := range assign {
			cands := capableRef(g, plat, g.Tasks[id])
			if len(cands) == 0 {
				return true
			}
			assign[id] = cands[rng.Intn(len(cands))]
		}
		wantMk, wantSlots, err := evaluateRef(g, plat, assign)
		if err != nil || wantSlots == nil {
			return true
		}
		gotMk, gotSlots, err := ev.schedule(assign, true)
		if err != nil {
			return false
		}
		if gotMk != wantMk || !reflect.DeepEqual(gotSlots, wantSlots) {
			t.Logf("schedule mismatch: got %v want %v", gotMk, wantMk)
			return false
		}
		// Cost paths too, both objectives.
		for _, obj := range []Objective{Makespan, Throughput} {
			if ev.objectiveCost(obj, assign) != objectiveCostRef(g, plat, obj, assign) {
				t.Logf("objectiveCost mismatch (obj %d)", obj)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAnnealEquivalence: the move/undo delta-cost annealer follows the
// exact accept/reject trajectory of the seed full-copy annealer — the
// returned assignments match element for element across the default
// sweep's workload × platform × objective cross, several seeds each.
func TestAnnealEquivalence(t *testing.T) {
	plats := evalPlatforms()
	graphs := evalWorkloads()
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	for gi, g := range graphs {
		for pi, plat := range plats {
			for _, obj := range []Objective{Makespan, Throughput} {
				for _, seed := range []uint64{1, 42, 0xdead} {
					opt := Options{Heuristic: Anneal, Objective: obj, Seed: seed, Iterations: iters}
					ev := NewEvaluator(g, plat)
					got, err := ev.annealMap(opt)
					if err != nil {
						t.Fatalf("graph %d plat %d: %v", gi, pi, err)
					}
					var start []int
					if obj == Throughput {
						start, err = ev.throughputMap()
					} else {
						start, err = ev.listMap()
					}
					if err != nil {
						t.Fatal(err)
					}
					want := annealMapRef(g, plat, opt, start)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("graph %d plat %d obj %d seed %d: anneal diverged\ngot  %v\nwant %v",
							gi, pi, obj, seed, got, want)
					}
				}
			}
		}
	}
}

// TestExhaustiveEquivalence: branch-and-bound returns the plain
// enumeration's first-found argmin on every small workload, both
// objectives.
func TestExhaustiveEquivalence(t *testing.T) {
	plats := evalPlatforms()
	graphs := []*taskgraph.Graph{
		workload.CarRadioTaskGraph(),
		chainGraph(5, 10_000, 4096),
		forkJoin(3, 20_000),
		workload.SyntheticTaskGraph(6, 3),
	}
	for gi, g := range graphs {
		for pi, plat := range plats {
			for _, obj := range []Objective{Makespan, Throughput} {
				ev := NewEvaluator(g, plat)
				got, err := ev.exhaustiveMap(obj)
				if err != nil {
					t.Fatalf("graph %d plat %d: %v", gi, pi, err)
				}
				want := exhaustiveMapRef(g, plat, obj)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("graph %d plat %d obj %d: exhaustive diverged\ngot  %v\nwant %v",
						gi, pi, obj, got, want)
				}
			}
		}
	}
}

// TestCapableEquivalence: the precomputed capable-core sets match the
// per-call reference, including preferred-PE filtering.
func TestCapableEquivalence(t *testing.T) {
	plats := evalPlatforms()
	for _, g := range evalWorkloads() {
		for _, plat := range plats {
			ev := NewEvaluator(g, plat)
			for id, task := range g.Tasks {
				want := capableRef(g, plat, task)
				got := ev.Capable(id)
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s task %d capable mismatch: got %v want %v", g.Name, id, got, want)
				}
			}
		}
	}
}

// TestThroughputWeightZeroCycle: regression for the LPT weight
// sentinel bug — a task whose fastest capable core needs 0 cycles
// must keep weight 0 (lightest), not pick up a slower core's time
// when a later core in ID order is also capable.
func TestThroughputWeightZeroCycle(t *testing.T) {
	k := sim.NewKernel()
	plat := platform.NewWirelessTerminal(k, noc.MeshFor(k, 6))
	g := taskgraph.NewGraph("zerocycle")
	// t0 runs in 0 cycles on the DSPs but is also capable (slowly) on
	// the VLIW core that comes later in core order; t1 is a normal DSP
	// task. With the sentinel bug t0 weighed as the VLIW time and was
	// placed first; weighted correctly it is the lightest task and
	// lands on the second DSP after t1 takes the first.
	t0 := g.AddTask(&taskgraph.Task{Name: "t0", WCET: map[platform.PEClass]int64{
		platform.DSP: 0, platform.VLIW: 1_000_000,
	}})
	t1 := g.AddTask(&taskgraph.Task{Name: "t1", WCET: map[platform.PEClass]int64{
		platform.DSP: 30,
	}})
	_, _ = t0, t1
	ev := NewEvaluator(g, plat)
	taskPE, err := ev.throughputMap()
	if err != nil {
		t.Fatal(err)
	}
	// Wireless core order: arm0, arm1, dsp0(2), dsp1(3), vliw0, acc0.
	if taskPE[1] != 2 || taskPE[0] != 3 {
		t.Fatalf("LPT misordered zero-cycle task: taskPE = %v (want t1->2, t0->3)", taskPE)
	}
}

// TestMapMalformedGraphError: Map on a graph with out-of-range edge
// endpoints (edges edited outside AddTask/Connect) must return the
// Validate error like the seed implementation, not panic building
// the adjacency view.
func TestMapMalformedGraphError(t *testing.T) {
	g := taskgraph.NewGraph("broken")
	g.AddTask(&taskgraph.Task{Name: "t", WCET: map[platform.PEClass]int64{platform.RISC: 100}})
	g.Edges = append(g.Edges, taskgraph.Edge{From: 0, To: 5, Bytes: 1})
	if _, err := Map(g, wirelessPlat(), Options{}); err == nil {
		t.Fatal("Map accepted out-of-range edge")
	}
}

// TestScheduleZeroAlloc: the candidate-scoring hot path must not
// allocate — the contract the anneal and exhaustive speedups rest on.
func TestScheduleZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counts are unreliable under -short CI modes (race)")
	}
	g := workload.SyntheticTaskGraph(16, 42)
	k := sim.NewKernel()
	plat := platform.NewWirelessTerminal(k, noc.MeshFor(k, 6))
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := ev.schedule(a.TaskPE, false); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("schedule allocates %.1f allocs/op, want 0", n)
	}
	for _, obj := range []Objective{Makespan, Throughput} {
		obj := obj
		if n := testing.AllocsPerRun(200, func() {
			ev.objectiveCost(obj, a.TaskPE)
		}); n != 0 {
			t.Fatalf("objectiveCost(%d) allocates %.1f allocs/op, want 0", obj, n)
		}
	}
}
