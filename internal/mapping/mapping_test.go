package mapping

import (
	"strings"
	"testing"

	"mpsockit/internal/noc"
	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
)

func wirelessPlat() *platform.Platform {
	k := sim.NewKernel()
	return platform.NewWirelessTerminal(k, noc.MeshFor(k, 6))
}

func chainGraph(n int, cycles int64, bytes int) *taskgraph.Graph {
	g := taskgraph.NewGraph("chain")
	var prev *taskgraph.Task
	for i := 0; i < n; i++ {
		t := g.AddTask(&taskgraph.Task{
			Name: "t",
			WCET: map[platform.PEClass]int64{
				platform.RISC: cycles, platform.DSP: cycles / 2, platform.VLIW: cycles,
			},
		})
		if prev != nil {
			g.Connect(prev, t, bytes, "")
		}
		prev = t
	}
	return g
}

func forkJoin(width int, cycles int64) *taskgraph.Graph {
	g := taskgraph.NewGraph("forkjoin")
	wc := map[platform.PEClass]int64{platform.RISC: cycles, platform.DSP: cycles, platform.VLIW: cycles}
	src := g.AddTask(&taskgraph.Task{Name: "src", WCET: wc})
	sink := g.AddTask(&taskgraph.Task{Name: "sink", WCET: wc})
	for i := 0; i < width; i++ {
		mid := g.AddTask(&taskgraph.Task{Name: "mid", WCET: wc})
		g.Connect(src, mid, 128, "")
		g.Connect(mid, sink, 128, "")
	}
	return g
}

func TestListMapValidSchedule(t *testing.T) {
	plat := wirelessPlat()
	g := forkJoin(4, 100_000)
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v\n%s", err, a.Gantt())
	}
	if a.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestForkJoinUsesParallelism(t *testing.T) {
	plat := wirelessPlat()
	g := forkJoin(4, 1_000_000)
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, pe := range a.TaskPE {
		used[pe] = true
	}
	if len(used) < 3 {
		t.Fatalf("fork-join mapped onto %d cores; parallelism wasted\n%s", len(used), a.Gantt())
	}
	// Must beat any single-core serialization.
	serial := sim.Forever
	for _, c := range plat.Cores {
		if !g.Tasks[0].CanRunOn(c.Class) {
			continue
		}
		var total sim.Time
		ok := true
		for _, task := range g.Tasks {
			if !task.CanRunOn(c.Class) {
				ok = false
				break
			}
			total += c.Cycles(task.CyclesOn(c.Class))
		}
		if ok && total < serial {
			serial = total
		}
	}
	if a.Makespan >= serial {
		t.Fatalf("parallel makespan %v not better than serial %v", a.Makespan, serial)
	}
}

func TestPreferredPEHonored(t *testing.T) {
	plat := wirelessPlat()
	g := taskgraph.NewGraph("pref")
	task := g.AddTask(&taskgraph.Task{
		Name: "filter",
		WCET: map[platform.PEClass]int64{platform.RISC: 1000, platform.DSP: 900},
		PreferredPE: platform.DSP, HasPref: true,
	})
	_ = task
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	if plat.Core(a.TaskPE[0]).Class != platform.DSP {
		t.Fatalf("preferred class ignored: mapped to %v", plat.Core(a.TaskPE[0]).Class)
	}
}

func TestHeterogeneousAffinity(t *testing.T) {
	// A DSP-friendly chain should land mostly on DSPs under list
	// mapping even without explicit preference.
	plat := wirelessPlat()
	g := chainGraph(4, 2_000_000, 64)
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	dsp := 0
	for _, pe := range a.TaskPE {
		if plat.Core(pe).Class == platform.DSP {
			dsp++
		}
	}
	if dsp < 2 {
		t.Fatalf("only %d/4 chain tasks on DSPs\n%s", dsp, a.Gantt())
	}
}

func TestAnnealNotWorseThanList(t *testing.T) {
	plat := wirelessPlat()
	g := forkJoin(6, 500_000)
	la, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	aa, err := Map(g, plat, Options{Heuristic: Anneal, Seed: 42, Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if aa.Makespan > la.Makespan {
		t.Fatalf("annealing regressed: %v vs %v", aa.Makespan, la.Makespan)
	}
	if err := aa.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	plat := wirelessPlat()
	g := forkJoin(5, 300_000)
	a1, _ := Map(g, plat, Options{Heuristic: Anneal, Seed: 7, Iterations: 500})
	a2, _ := Map(g, plat, Options{Heuristic: Anneal, Seed: 7, Iterations: 500})
	for i := range a1.TaskPE {
		if a1.TaskPE[i] != a2.TaskPE[i] {
			t.Fatal("annealing not deterministic under fixed seed")
		}
	}
}

func TestExhaustiveOptimalOnSmall(t *testing.T) {
	plat := wirelessPlat()
	g := chainGraph(3, 500_000, 32)
	ex, err := Map(g, plat, Options{Heuristic: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	li, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Makespan > li.Makespan {
		t.Fatalf("exhaustive (%v) worse than list (%v)", ex.Makespan, li.Makespan)
	}
}

func TestExhaustiveSpaceGuard(t *testing.T) {
	plat := wirelessPlat()
	g := forkJoin(12, 1000) // 14 tasks over 6 cores: 6^14 >> guard
	if _, err := Map(g, plat, Options{Heuristic: Exhaustive}); err == nil {
		t.Fatal("oversized exhaustive search accepted")
	}
}

func TestMapRejectsImpossibleTask(t *testing.T) {
	plat := wirelessPlat()
	g := taskgraph.NewGraph("imp")
	g.AddTask(&taskgraph.Task{Name: "none", WCET: map[platform.PEClass]int64{platform.PEClass(99): 1}})
	if _, err := Map(g, plat, Options{Heuristic: List}); err == nil {
		t.Fatal("unmappable task accepted")
	}
}

func TestExecuteMatchesScheduleShape(t *testing.T) {
	plat := wirelessPlat()
	g := chainGraph(4, 500_000, 256)
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Execute(a)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Makespan <= 0 {
		t.Fatal("no measured makespan")
	}
	// The event-driven execution includes real contention, so it can
	// differ from the estimate, but not wildly for a plain chain.
	ratio := float64(stats.Makespan) / float64(a.Makespan)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("measured %v vs estimated %v (ratio %g)", stats.Makespan, a.Makespan, ratio)
	}
	if stats.BusyTotal() <= 0 || stats.BusyTotal() > stats.Makespan*sim.Time(len(plat.Cores)) {
		t.Fatalf("implausible busy total %v for makespan %v", stats.BusyTotal(), stats.Makespan)
	}
}

func TestExecuteForkJoinCompletesAll(t *testing.T) {
	plat := wirelessPlat()
	g := forkJoin(6, 200_000)
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(a); err != nil {
		t.Fatal(err)
	}
}

func TestGanttRendering(t *testing.T) {
	plat := wirelessPlat()
	g := chainGraph(2, 100_000, 8)
	a, _ := Map(g, plat, Options{Heuristic: List})
	gantt := a.Gantt()
	if !strings.Contains(gantt, "makespan") || !strings.Contains(gantt, "[") {
		t.Fatalf("gantt unreadable:\n%s", gantt)
	}
}

func TestFeasibleWithin(t *testing.T) {
	plat := wirelessPlat()
	g := chainGraph(2, 100_000, 8)
	a, _ := Map(g, plat, Options{Heuristic: List})
	if !a.FeasibleWithin(a.Makespan) {
		t.Fatal("schedule infeasible within its own makespan")
	}
	if a.FeasibleWithin(a.Makespan - 1) {
		t.Fatal("deadline check too lenient")
	}
}
