package mapping

import (
	"reflect"
	"testing"
	"testing/quick"

	"mpsockit/internal/mem"
	"mpsockit/internal/platform"
	"mpsockit/internal/taskgraph"
	"mpsockit/internal/workload"
	"mpsockit/internal/xrand"
)

// memPlat is wirelessPlat with a bank/channel contention model
// attached, built from the platform's own memory timing — the shape
// buildPlatform produces for a mem=bank:4x2 sweep point.
func memPlat() *platform.Platform {
	plat := wirelessPlat()
	access, bpns := plat.MemTiming()
	plat.Mem = mem.NewBankModel(4, 2, access, bpns)
	return plat
}

// randomDAGBytes is randomDAG with explicit control over edge payloads
// for the zero-byte equivalence property: each (from, to) pair appears
// at most once (so InBytes aggregation can't mix payloads), and every
// fourth candidate edge carries `small` bytes instead of its fuzzed
// payload.
func randomDAGBytes(tasks []uint8, edges []uint16, small int) *taskgraph.Graph {
	n := len(tasks)%6 + 2
	g := taskgraph.NewGraph("fuzz")
	for i := 0; i < n; i++ {
		cyc := int64(tasks[i%len(tasks)])*1000 + 1000
		g.AddTask(&taskgraph.Task{
			Name: "t",
			WCET: map[platform.PEClass]int64{
				platform.RISC: cyc,
				platform.DSP:  cyc/2 + 1,
				platform.VLIW: cyc + 500,
			},
		})
	}
	seen := make(map[int]bool)
	for i, e := range edges {
		from := int(e>>8) % n
		to := int(e&0xff) % n
		if from >= to || seen[from*n+to] {
			continue
		}
		seen[from*n+to] = true
		bytes := int(e%512) + 1
		if i%4 == 0 {
			bytes = small
		}
		g.Connect(g.Tasks[from], g.Tasks[to], bytes, "")
	}
	return g
}

// TestZeroByteEdgeEquivalence holds the simulator/estimator agreement
// contract on the zero-byte edge case: fabrics and memory models all
// price a non-positive payload as one byte, so a graph with 0-byte
// edges must schedule AND execute exactly like its twin whose 0-byte
// edges carry 1 byte — with and without a memory contention model
// attached. A clamp present on one path but missing on another would
// make the estimator and the simulator disagree on the same design
// point.
func TestZeroByteEdgeEquivalence(t *testing.T) {
	f := func(tasks []uint8, edges []uint16, seed uint64) bool {
		if len(tasks) == 0 {
			return true
		}
		if len(edges) > 12 {
			edges = edges[:12]
		}
		gz := randomDAGBytes(tasks, edges, 0)
		g1 := randomDAGBytes(tasks, edges, 1)
		if gz.Validate() != nil {
			return true
		}
		for _, withMem := range []bool{false, true} {
			build := wirelessPlat
			if withMem {
				build = memPlat
			}
			// One platform, one assignment: the twin graphs have
			// identical topology, so an assignment is valid for both.
			plat := build()
			evz := NewEvaluator(gz, plat)
			ev1 := NewEvaluator(g1, plat)
			rng := xrand.New(seed)
			assign := make([]int, len(gz.Tasks))
			for id := range assign {
				cands := evz.Capable(id)
				if len(cands) == 0 {
					return true
				}
				assign[id] = cands[rng.Intn(len(cands))]
			}
			mkz, slotsz, err := evz.schedule(assign, true)
			if err != nil {
				return false
			}
			mk1, slots1, err := ev1.schedule(assign, true)
			if err != nil {
				return false
			}
			if mkz != mk1 || !reflect.DeepEqual(slotsz, slots1) {
				t.Logf("schedule diverged on zero-byte edges (mem=%v): %v vs %v", withMem, mkz, mk1)
				return false
			}
			// Through the event-driven simulator too, each graph on a
			// fresh platform so kernel and contention state match.
			sz, err := Execute(&Assignment{Graph: gz, Platform: build(), TaskPE: assign})
			if err != nil {
				return false
			}
			s1, err := Execute(&Assignment{Graph: g1, Platform: build(), TaskPE: assign})
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(sz, s1) {
				t.Logf("execution diverged on zero-byte edges (mem=%v): %+v vs %+v", withMem, sz, s1)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMemExecuteContention: executing a fixed assignment under a
// memory contention model services exactly one access per fabric
// transfer and never finishes earlier than the ideal-memory run of
// the same assignment — contention only adds latency.
func TestMemExecuteContention(t *testing.T) {
	g := workload.JPEGTaskGraph()
	ideal := wirelessPlat()
	a, err := Map(g, ideal, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Execute(a)
	if err != nil {
		t.Fatal(err)
	}
	if base.Mem != (platform.MemStats{}) {
		t.Fatalf("ideal platform reported memory traffic: %+v", base.Mem)
	}
	contended, err := Execute(&Assignment{Graph: g, Platform: memPlat(), TaskPE: a.TaskPE})
	if err != nil {
		t.Fatal(err)
	}
	if contended.Fabric.Transfers == 0 {
		t.Fatal("assignment did no cross-PE transfers; contention not exercised")
	}
	if contended.Mem.Transfers != contended.Fabric.Transfers {
		t.Fatalf("memory serviced %d accesses for %d fabric transfers",
			contended.Mem.Transfers, contended.Fabric.Transfers)
	}
	if contended.Makespan < base.Makespan {
		t.Fatalf("contended makespan %v below ideal %v", contended.Makespan, base.Makespan)
	}
	// The same run repeated on a fresh platform is deterministic.
	again, err := Execute(&Assignment{Graph: g, Platform: memPlat(), TaskPE: a.TaskPE})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(contended, again) {
		t.Fatalf("contended execution not deterministic: %+v vs %+v", contended, again)
	}
}

// TestScheduleMemZeroAlloc: attaching a memory model must not buy its
// estimator fidelity with allocations — the scoring hot path stays at
// zero allocs with the model's latency hook active.
func TestScheduleMemZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counts are unreliable under -short CI modes (race)")
	}
	g := workload.SyntheticTaskGraph(16, 42)
	plat := memPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := ev.schedule(a.TaskPE, false); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("schedule with mem model allocates %.1f allocs/op, want 0", n)
	}
	for _, obj := range []Objective{Makespan, Throughput} {
		obj := obj
		if n := testing.AllocsPerRun(200, func() {
			ev.objectiveCost(obj, a.TaskPE)
		}); n != 0 {
			t.Fatalf("objectiveCost(%d) with mem model allocates %.1f allocs/op, want 0", obj, n)
		}
	}
}
