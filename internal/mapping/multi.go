package mapping

import (
	"fmt"

	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
)

// Multi-application execution: a union graph (taskgraph.Union)
// composes several applications' DAGs into one mappable graph, the
// Evaluator machinery maps it like any other graph — candidate
// scoring stays on the zero-allocation hot path, the union is just a
// bigger DAG — and ExecuteMulti runs the mapped scenario with every
// application active at once, reporting per-application makespans on
// top of the aggregate ExecStats.

// ExecuteMulti runs the assignment exactly like Execute — the same
// event-driven platform model, fabric contention and aggregate stats
// (both share one implementation, executeSpans) — and additionally
// measures each application's own makespan, where spans are the union
// graph's per-application task-ID ranges (taskgraph.Union's second
// result). An application's makespan is the completion time of its
// last task while competing with every other application for cores
// and fabric, which is the per-app number a real-time requirement is
// checked against.
func ExecuteMulti(a *Assignment, spans []taskgraph.Span) (ExecStats, []sim.Time, error) {
	n := len(a.Graph.Tasks)
	claimed := make([]int, n)
	for i := range claimed {
		claimed[i] = -1
	}
	for ai, s := range spans {
		if s.Lo < 0 || s.Hi > n || s.Lo > s.Hi {
			return ExecStats{}, nil, fmt.Errorf("mapping: span %d (%d..%d) outside graph of %d tasks", ai, s.Lo, s.Hi, n)
		}
		for id := s.Lo; id < s.Hi; id++ {
			if claimed[id] >= 0 {
				return ExecStats{}, nil, fmt.Errorf("mapping: task %d claimed by spans %d and %d", id, claimed[id], ai)
			}
			claimed[id] = ai
		}
	}
	return executeSpans(a, spans)
}

// executeSpans is the shared execution core behind Execute and
// ExecuteMulti: event-driven one-shot execution with genuine fabric
// contention, plus per-span makespan tracking when spans are given.
// Span tracking adds no kernel events, so both entry points produce
// identical event streams and stats for the same assignment.
func executeSpans(a *Assignment, spans []taskgraph.Span) (ExecStats, []sim.Time, error) {
	k := a.Platform.Kernel
	if k == nil {
		return ExecStats{}, nil, fmt.Errorf("mapping: platform has no kernel")
	}
	g := a.Graph
	n := len(g.Tasks)
	appOf := make([]int, n)
	for i := range appOf {
		appOf[i] = -1
	}
	for ai, s := range spans {
		for id := s.Lo; id < s.Hi; id++ {
			appOf[id] = ai
		}
	}
	v := g.View()
	pending := make([]int, n) // unarrived inputs
	for id := range pending {
		pending[id] = len(v.InEdges(id))
	}
	peRes := make([]*sim.Resource, len(a.Platform.Cores))
	for i := range peRes {
		peRes[i] = k.NewResource(peName(i), 1)
	}
	fabric0 := platform.FabricStatsOf(a.Platform.Fabric)
	mem0 := platform.MemStatsOf(a.Platform.Mem)
	busy := make([]sim.Time, len(a.Platform.Cores))
	appMakespan := make([]sim.Time, len(spans))
	var makespan sim.Time
	done := 0
	var runTask func(id int)
	deliver := func(id int) {
		pending[id]--
		if pending[id] == 0 {
			runTask(id)
		}
	}
	runTask = func(id int) {
		k.Spawn(g.Tasks[id].Name, func(p *sim.Proc) {
			pe := a.TaskPE[id]
			core := a.Platform.Core(pe)
			peRes[pe].Acquire(p)
			dur := core.Cycles(g.Tasks[id].CyclesOn(core.Class))
			p.Delay(dur)
			peRes[pe].Release()
			busy[pe] += dur
			if p.Now() > makespan {
				makespan = p.Now()
			}
			if ai := appOf[id]; ai >= 0 && p.Now() > appMakespan[ai] {
				appMakespan[ai] = p.Now()
			}
			done++
			for _, oe := range v.OutEdges(id) {
				to := oe.Task
				if a.TaskPE[to] == pe {
					k.Schedule(0, func() { deliver(to) })
				} else {
					transferContended(a.Platform, pe, a.TaskPE[to], oe.Bytes, func() {
						if k.Now() > makespan {
							makespan = k.Now()
						}
						deliver(to)
					})
				}
			}
		})
	}
	for id := 0; id < n; id++ {
		if pending[id] == 0 {
			runTask(id)
		}
	}
	k.Run()
	if done != n {
		return ExecStats{}, nil, fmt.Errorf("mapping: executed %d/%d tasks (deadlock?)", done, n)
	}
	return ExecStats{
		Makespan: makespan,
		PEBusy:   busy,
		Fabric:   platform.FabricStatsOf(a.Platform.Fabric).Sub(fabric0),
		Mem:      platform.MemStatsOf(a.Platform.Mem).Sub(mem0),
	}, appMakespan, nil
}
