// Package mapping assigns task graphs to MPSoC processing elements
// and schedules them — the back half of the MAPS flow in the paper's
// section IV: "Using optimization algorithms, the task graphs are
// mapped to the target architecture, taking into account real-time
// requirements and preferred PE classes."
//
// Three mappers are provided: HEFT-style list scheduling, simulated
// annealing refinement, and exhaustive search for small instances.
// Execute runs a mapped graph on the event-driven platform model with
// real fabric contention — the fast high-level simulation that plays
// the role of the MAPS Virtual Platform (MVP) in experiments.
package mapping

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
	"mpsockit/internal/xrand"
)

// Heuristic selects the mapping algorithm.
type Heuristic int

// Mapping heuristics.
const (
	List Heuristic = iota
	Anneal
	Exhaustive
)

// String returns the heuristic's flag/spec name.
func (h Heuristic) String() string {
	switch h {
	case List:
		return "list"
	case Anneal:
		return "anneal"
	default:
		return "exhaustive"
	}
}

// ParseHeuristic converts a heuristic name ("list", "anneal",
// "exhaustive") to a Heuristic.
func ParseHeuristic(s string) (Heuristic, error) {
	switch s {
	case "list":
		return List, nil
	case "anneal":
		return Anneal, nil
	case "exhaustive":
		return Exhaustive, nil
	}
	return 0, fmt.Errorf("mapping: unknown heuristic %q", s)
}

// Objective selects what Map optimizes: one-shot makespan (latency)
// or pipeline throughput (bottleneck stage time) — MAPS uses the
// latter for streaming multimedia codecs.
type Objective int

// Mapping objectives.
const (
	Makespan Objective = iota
	Throughput
)

// Options configures Map.
type Options struct {
	Heuristic  Heuristic
	Objective  Objective
	Seed       uint64
	Iterations int // annealing steps (default 2000)
}

// Slot is one scheduled task occurrence.
type Slot struct {
	Task, PE      int
	Start, Finish sim.Time
}

// Assignment is a mapping plus its static schedule.
type Assignment struct {
	Graph    *taskgraph.Graph
	Platform *platform.Platform
	TaskPE   []int
	Schedule []Slot
	Makespan sim.Time
}

// capable lists core IDs that can run task t, respecting a preferred
// PE class when one is available.
func capable(g *taskgraph.Graph, plat *platform.Platform, t *taskgraph.Task) []int {
	var pref, all []int
	for _, c := range plat.Cores {
		if !t.CanRunOn(c.Class) {
			continue
		}
		all = append(all, c.ID)
		if t.HasPref && c.Class == t.PreferredPE {
			pref = append(pref, c.ID)
		}
	}
	if t.HasPref && len(pref) > 0 {
		return pref
	}
	return all
}

// evaluate computes the static schedule for a fixed assignment:
// topological order, communication charged at contention-free fabric
// estimates, one task at a time per PE.
func evaluate(g *taskgraph.Graph, plat *platform.Platform, taskPE []int) (sim.Time, []Slot, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, nil, err
	}
	peAvail := make([]sim.Time, len(plat.Cores))
	finish := make([]sim.Time, len(g.Tasks))
	slots := make([]Slot, 0, len(g.Tasks))
	var makespan sim.Time
	for _, id := range order {
		t := g.Tasks[id]
		pe := taskPE[id]
		core := plat.Core(pe)
		if !t.CanRunOn(core.Class) {
			return 0, nil, fmt.Errorf("mapping: task %q cannot run on core %d (%v)", t.Name, pe, core.Class)
		}
		ready := sim.Time(0)
		for _, p := range g.Preds(id) {
			arr := finish[p]
			if taskPE[p] != pe {
				arr += plat.Fabric.EstLatency(taskPE[p], pe, g.InBytes(p, id))
			}
			if arr > ready {
				ready = arr
			}
		}
		start := ready
		if peAvail[pe] > start {
			start = peAvail[pe]
		}
		end := start + core.Cycles(t.CyclesOn(core.Class))
		peAvail[pe] = end
		finish[id] = end
		slots = append(slots, Slot{Task: id, PE: pe, Start: start, Finish: end})
		if end > makespan {
			makespan = end
		}
	}
	return makespan, slots, nil
}

// Map assigns g's tasks onto plat with the selected heuristic.
func Map(g *taskgraph.Graph, plat *platform.Platform, opt Options) (*Assignment, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(plat.Cores) == 0 {
		return nil, fmt.Errorf("mapping: platform has no cores")
	}
	for _, t := range g.Tasks {
		if len(capable(g, plat, t)) == 0 {
			return nil, fmt.Errorf("mapping: no core can run task %q", t.Name)
		}
	}
	var taskPE []int
	var err error
	switch opt.Heuristic {
	case List:
		if opt.Objective == Throughput {
			taskPE, err = throughputMap(g, plat)
		} else {
			taskPE, err = listMap(g, plat)
		}
	case Anneal:
		taskPE, err = annealMap(g, plat, opt)
	case Exhaustive:
		taskPE, err = exhaustiveMap(g, plat, opt.Objective)
	default:
		return nil, fmt.Errorf("mapping: unknown heuristic %d", opt.Heuristic)
	}
	if err != nil {
		return nil, err
	}
	mk, slots, err := evaluate(g, plat, taskPE)
	if err != nil {
		return nil, err
	}
	return &Assignment{Graph: g, Platform: plat, TaskPE: taskPE, Schedule: slots, Makespan: mk}, nil
}

// listMap is HEFT-flavoured: rank tasks by upward rank (mean compute
// plus mean communication to the exit), then greedily place each on
// the core minimizing its earliest finish time.
func listMap(g *taskgraph.Graph, plat *platform.Platform) ([]int, error) {
	n := len(g.Tasks)
	meanCycles := func(t *taskgraph.Task) float64 {
		var sum float64
		var cnt int
		for _, c := range plat.Cores {
			if t.CanRunOn(c.Class) {
				sum += float64(t.CyclesOn(c.Class)) / float64(c.Hz()) * 1e12
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	rank := make([]float64, n)
	order, _ := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var best float64
		for _, s := range g.Succs(id) {
			comm := float64(plat.Fabric.EstLatency(0, len(plat.Cores)-1, g.InBytes(id, s)))
			if r := rank[s] + comm; r > best {
				best = r
			}
		}
		rank[id] = meanCycles(g.Tasks[id]) + best
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if rank[ids[a]] != rank[ids[b]] {
			return rank[ids[a]] > rank[ids[b]]
		}
		return ids[a] < ids[b]
	})

	taskPE := make([]int, n)
	for i := range taskPE {
		taskPE[i] = -1
	}
	peAvail := make([]sim.Time, len(plat.Cores))
	finish := make([]sim.Time, n)
	for _, id := range ids {
		t := g.Tasks[id]
		bestPE, bestEFT := -1, sim.Forever
		for _, pe := range capable(g, plat, t) {
			core := plat.Core(pe)
			ready := sim.Time(0)
			for _, p := range g.Preds(id) {
				if taskPE[p] < 0 {
					continue // predecessor not placed yet (rank order anomaly)
				}
				arr := finish[p]
				if taskPE[p] != pe {
					arr += plat.Fabric.EstLatency(taskPE[p], pe, g.InBytes(p, id))
				}
				if arr > ready {
					ready = arr
				}
			}
			start := ready
			if peAvail[pe] > start {
				start = peAvail[pe]
			}
			eft := start + core.Cycles(t.CyclesOn(core.Class))
			if eft < bestEFT {
				bestEFT = eft
				bestPE = pe
			}
		}
		taskPE[id] = bestPE
		peAvail[bestPE] = bestEFT
		finish[id] = bestEFT
	}
	return taskPE, nil
}

// throughputMap balances stage load across PEs (greedy LPT on
// per-core execution time): the pipeline's steady-state period is the
// most-loaded core, so minimizing the maximum load maximizes
// throughput.
func throughputMap(g *taskgraph.Graph, plat *platform.Platform) ([]int, error) {
	n := len(g.Tasks)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	weight := func(id int) int64 {
		var w int64
		for _, c := range plat.Cores {
			if g.Tasks[id].CanRunOn(c.Class) {
				t := int64(plat.Cores[c.ID].Cycles(g.Tasks[id].CyclesOn(c.Class)))
				if w == 0 || t < w {
					w = t
				}
			}
		}
		return w
	}
	sort.SliceStable(ids, func(a, b int) bool { return weight(ids[a]) > weight(ids[b]) })
	load := make([]sim.Time, len(plat.Cores))
	taskPE := make([]int, n)
	for _, id := range ids {
		bestPE := -1
		var bestLoad sim.Time = sim.Forever
		for _, pe := range capable(g, plat, g.Tasks[id]) {
			core := plat.Core(pe)
			l := load[pe] + core.Cycles(g.Tasks[id].CyclesOn(core.Class))
			if l < bestLoad {
				bestLoad = l
				bestPE = pe
			}
		}
		taskPE[id] = bestPE
		load[bestPE] = bestLoad
	}
	return taskPE, nil
}

// objectiveCost scores an assignment under the selected objective:
// static-schedule makespan, or the pipeline's steady-state period
// (the most-loaded core) for throughput.
func objectiveCost(g *taskgraph.Graph, plat *platform.Platform, objective Objective, assign []int) sim.Time {
	if objective == Throughput {
		load := make([]sim.Time, len(plat.Cores))
		var worst sim.Time
		for id, pe := range assign {
			core := plat.Core(pe)
			load[pe] += core.Cycles(g.Tasks[id].CyclesOn(core.Class))
			if load[pe] > worst {
				worst = load[pe]
			}
		}
		return worst
	}
	mk, _, err := evaluate(g, plat, assign)
	if err != nil {
		return sim.Forever
	}
	return mk
}

// annealMap refines the list (or, for throughput, LPT) mapping with
// simulated annealing over task moves, optimizing the selected
// objective; deterministic under Options.Seed.
func annealMap(g *taskgraph.Graph, plat *platform.Platform, opt Options) ([]int, error) {
	var cur []int
	var err error
	if opt.Objective == Throughput {
		cur, err = throughputMap(g, plat)
	} else {
		cur, err = listMap(g, plat)
	}
	if err != nil {
		return nil, err
	}
	iters := opt.Iterations
	if iters <= 0 {
		iters = 2000
	}
	rng := xrand.New(opt.Seed + 1)
	cost := func(assign []int) sim.Time {
		return objectiveCost(g, plat, opt.Objective, assign)
	}
	curCost := cost(cur)
	best := append([]int{}, cur...)
	bestCost := curCost
	temp := float64(curCost)
	for i := 0; i < iters; i++ {
		tIdx := rng.Intn(len(g.Tasks))
		cands := capable(g, plat, g.Tasks[tIdx])
		next := append([]int{}, cur...)
		next[tIdx] = cands[rng.Intn(len(cands))]
		nc := cost(next)
		dE := float64(nc - curCost)
		if dE <= 0 || rng.Float64() < math.Exp(-dE/math.Max(temp, 1)) {
			cur, curCost = next, nc
			if curCost < bestCost {
				best = append([]int{}, cur...)
				bestCost = curCost
			}
		}
		temp *= 0.995
	}
	return best, nil
}

// exhaustiveMap enumerates all feasible assignments under the
// selected objective; guarded to small instances (the paper's
// exploration loop for design studies).
func exhaustiveMap(g *taskgraph.Graph, plat *platform.Platform, objective Objective) ([]int, error) {
	n := len(g.Tasks)
	cands := make([][]int, n)
	space := 1
	for i, t := range g.Tasks {
		cands[i] = capable(g, plat, t)
		space *= len(cands[i])
		if space > 500_000 {
			return nil, fmt.Errorf("mapping: exhaustive search space too large (>500k); use list or anneal")
		}
	}
	assign := make([]int, n)
	best := make([]int, n)
	bestCost := sim.Forever
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c := objectiveCost(g, plat, objective, assign)
			if c < bestCost {
				bestCost = c
				copy(best, assign)
			}
			return
		}
		for _, pe := range cands[i] {
			assign[i] = pe
			rec(i + 1)
		}
	}
	rec(0)
	if bestCost == sim.Forever {
		return nil, fmt.Errorf("mapping: no feasible assignment")
	}
	return best, nil
}

// Validate checks schedule sanity: no PE runs two tasks at once and
// every dependence finishes before its consumer starts.
func (a *Assignment) Validate() error {
	byPE := map[int][]Slot{}
	byTask := make([]Slot, len(a.Graph.Tasks))
	for _, s := range a.Schedule {
		byPE[s.PE] = append(byPE[s.PE], s)
		byTask[s.Task] = s
	}
	for pe, slots := range byPE {
		sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
		for i := 1; i < len(slots); i++ {
			if slots[i].Start < slots[i-1].Finish {
				return fmt.Errorf("mapping: PE %d overlaps tasks %d and %d", pe, slots[i-1].Task, slots[i].Task)
			}
		}
	}
	for _, e := range a.Graph.Edges {
		if byTask[e.To].Start < byTask[e.From].Finish {
			return fmt.Errorf("mapping: task %d starts before producer %d finishes", e.To, e.From)
		}
	}
	return nil
}

// FeasibleWithin reports whether the schedule fits a period/deadline.
func (a *Assignment) FeasibleWithin(deadline sim.Time) bool {
	return a.Makespan <= deadline
}

// Gantt renders the schedule as text for reports.
func (a *Assignment) Gantt() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule on %s (makespan %v):\n", a.Platform.Name, a.Makespan)
	byPE := map[int][]Slot{}
	for _, s := range a.Schedule {
		byPE[s.PE] = append(byPE[s.PE], s)
	}
	var pes []int
	for pe := range byPE {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		slots := byPE[pe]
		sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
		fmt.Fprintf(&b, "  %-8s:", a.Platform.Core(pe).Name)
		for _, s := range slots {
			fmt.Fprintf(&b, " [%s %v..%v]", a.Graph.Tasks[s.Task].Name, s.Start, s.Finish)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ExecStats is the measurement record a simulated execution returns:
// the makespan, per-PE busy time (compute only, excluding contention
// stalls), and the fabric traffic generated during the run. It feeds
// dse.Metrics — utilization, energy proxies and NoC pressure all
// derive from it.
type ExecStats struct {
	Makespan sim.Time
	// PEBusy[pe] is the time core pe spent computing tasks.
	PEBusy []sim.Time
	// Fabric is the traffic delta attributable to this run.
	Fabric platform.FabricStats
}

// BusyTotal sums compute time over all PEs.
func (s ExecStats) BusyTotal() sim.Time {
	var total sim.Time
	for _, b := range s.PEBusy {
		total += b
	}
	return total
}

// Utilization returns per-PE busy fraction of the makespan.
func (s ExecStats) Utilization() []float64 {
	out := make([]float64, len(s.PEBusy))
	if s.Makespan <= 0 {
		return out
	}
	for i, b := range s.PEBusy {
		out[i] = float64(b) / float64(s.Makespan)
	}
	return out
}

// Execute runs the assignment on the event-driven platform model with
// genuine fabric contention (transfers share links) — the high-level
// "virtual platform" simulation of section IV. It uses the platform's
// kernel, which must be otherwise idle, and returns the measured
// makespan plus per-PE busy time and the fabric traffic of the run.
func Execute(a *Assignment) (ExecStats, error) {
	k := a.Platform.Kernel
	if k == nil {
		return ExecStats{}, fmt.Errorf("mapping: platform has no kernel")
	}
	g := a.Graph
	n := len(g.Tasks)
	pending := make([]int, n) // unarrived inputs
	for _, e := range g.Edges {
		pending[e.To]++
	}
	peRes := make([]*sim.Resource, len(a.Platform.Cores))
	for i := range peRes {
		peRes[i] = k.NewResource(fmt.Sprintf("pe%d", i), 1)
	}
	fabric0 := platform.FabricStatsOf(a.Platform.Fabric)
	busy := make([]sim.Time, len(a.Platform.Cores))
	var makespan sim.Time
	done := 0
	var runTask func(id int)
	deliver := func(id int) {
		pending[id]--
		if pending[id] == 0 {
			runTask(id)
		}
	}
	runTask = func(id int) {
		k.Spawn(g.Tasks[id].Name, func(p *sim.Proc) {
			pe := a.TaskPE[id]
			core := a.Platform.Core(pe)
			peRes[pe].Acquire(p)
			dur := core.Cycles(g.Tasks[id].CyclesOn(core.Class))
			p.Delay(dur)
			peRes[pe].Release()
			busy[pe] += dur
			if p.Now() > makespan {
				makespan = p.Now()
			}
			done++
			for _, e := range g.Edges {
				if e.From != id {
					continue
				}
				to := e.To
				if a.TaskPE[to] == pe {
					k.Schedule(0, func() { deliver(to) })
				} else {
					a.Platform.Fabric.Transfer(pe, a.TaskPE[to], e.Bytes, func() {
						if k.Now() > makespan {
							makespan = k.Now()
						}
						deliver(to)
					})
				}
			}
		})
	}
	for id := 0; id < n; id++ {
		if pending[id] == 0 {
			runTask(id)
		}
	}
	k.Run()
	if done != n {
		return ExecStats{}, fmt.Errorf("mapping: executed %d/%d tasks (deadlock?)", done, n)
	}
	return ExecStats{
		Makespan: makespan,
		PEBusy:   busy,
		Fabric:   platform.FabricStatsOf(a.Platform.Fabric).Sub(fabric0),
	}, nil
}

// ExecutePipelined runs the mapped graph as a pipeline over
// `iterations` successive data sets (frames, blocks): every task
// fires once per iteration, consuming its predecessors' tokens for
// the same iteration through depth-bounded FIFO channels. This is how
// MAPS-mapped multimedia codecs actually earn their speedup — stage
// parallelism across consecutive frames — and the measurement behind
// the section IV "promising speedup results".
func ExecutePipelined(a *Assignment, iterations int) (ExecStats, error) {
	if iterations <= 0 {
		return ExecStats{}, fmt.Errorf("mapping: iterations must be positive")
	}
	k := a.Platform.Kernel
	if k == nil {
		return ExecStats{}, fmt.Errorf("mapping: platform has no kernel")
	}
	g := a.Graph
	queues := map[int]*sim.Queue{} // edge index -> token queue
	for i, e := range g.Edges {
		_ = e
		queues[i] = k.NewQueue(fmt.Sprintf("e%d", i), 2)
	}
	peRes := make([]*sim.Resource, len(a.Platform.Cores))
	for i := range peRes {
		peRes[i] = k.NewResource(fmt.Sprintf("pe%d", i), 1)
	}
	fabric0 := platform.FabricStatsOf(a.Platform.Fabric)
	busy := make([]sim.Time, len(a.Platform.Cores))
	var makespan sim.Time
	finished := 0
	for id := range g.Tasks {
		id := id
		var inEdges, outEdges []int
		for i, e := range g.Edges {
			if e.To == id {
				inEdges = append(inEdges, i)
			}
			if e.From == id {
				outEdges = append(outEdges, i)
			}
		}
		pe := a.TaskPE[id]
		core := a.Platform.Core(pe)
		cycles := g.Tasks[id].CyclesOn(core.Class)
		k.Spawn(g.Tasks[id].Name, func(p *sim.Proc) {
			for it := 0; it < iterations; it++ {
				for _, ei := range inEdges {
					queues[ei].Get(p)
				}
				peRes[pe].Acquire(p)
				dur := core.Cycles(cycles)
				p.Delay(dur)
				peRes[pe].Release()
				busy[pe] += dur
				for _, ei := range outEdges {
					e := g.Edges[ei]
					if a.TaskPE[e.To] != pe {
						done := k.NewSignal()
						a.Platform.Fabric.Transfer(pe, a.TaskPE[e.To], e.Bytes, func() { done.Broadcast() })
						done.Wait(p)
					}
					queues[ei].Put(p, it)
				}
				if p.Now() > makespan {
					makespan = p.Now()
				}
			}
			finished++
		})
	}
	k.Run()
	if finished != len(g.Tasks) {
		return ExecStats{}, fmt.Errorf("mapping: pipeline stalled (%d/%d tasks finished)", finished, len(g.Tasks))
	}
	return ExecStats{
		Makespan: makespan,
		PEBusy:   busy,
		Fabric:   platform.FabricStatsOf(a.Platform.Fabric).Sub(fabric0),
	}, nil
}
