// Package mapping assigns task graphs to MPSoC processing elements
// and schedules them — the back half of the MAPS flow in the paper's
// section IV: "Using optimization algorithms, the task graphs are
// mapped to the target architecture, taking into account real-time
// requirements and preferred PE classes."
//
// Three mappers are provided: HEFT-style list scheduling, simulated
// annealing refinement, and branch-and-bound exhaustive search for
// small instances. Execute runs a mapped graph on the event-driven
// platform model with real fabric contention — the fast high-level
// simulation that plays the role of the MAPS Virtual Platform (MVP)
// in experiments.
//
// # Hot-path design
//
// Candidate evaluation is the inner loop of design-space exploration
// (thousands of scored assignments per anneal, one per leaf of the
// exhaustive search), so it is engineered as a zero-allocation hot
// path: an Evaluator binds one (graph, platform) pair, precomputes
// capable-core sets and per-(task, core) execution times from the
// graph's cached taskgraph.View, and scores assignments into reused
// scratch. The annealer mutates one task per move and reverts on
// reject instead of copying assignments; for the throughput objective
// the move cost is an O(cores) incremental load update. The search
// results are byte-identical to the naive implementations — the
// regression tests in this package hold that equivalence.
package mapping

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mpsockit/internal/mem"
	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
	"mpsockit/internal/xrand"
)

// Heuristic selects the mapping algorithm.
type Heuristic int

// Mapping heuristics.
const (
	List Heuristic = iota
	Anneal
	Exhaustive
)

// String returns the heuristic's flag/spec name.
func (h Heuristic) String() string {
	switch h {
	case List:
		return "list"
	case Anneal:
		return "anneal"
	default:
		return "exhaustive"
	}
}

// ParseHeuristic converts a heuristic name ("list", "anneal",
// "exhaustive") to a Heuristic.
func ParseHeuristic(s string) (Heuristic, error) {
	switch s {
	case "list":
		return List, nil
	case "anneal":
		return Anneal, nil
	case "exhaustive":
		return Exhaustive, nil
	}
	return 0, fmt.Errorf("mapping: unknown heuristic %q", s)
}

// Objective selects what Map optimizes: one-shot makespan (latency)
// or pipeline throughput (bottleneck stage time) — MAPS uses the
// latter for streaming multimedia codecs.
type Objective int

// Mapping objectives.
const (
	Makespan Objective = iota
	Throughput
)

// Options configures Map.
type Options struct {
	Heuristic  Heuristic
	Objective  Objective
	Seed       uint64
	Iterations int // annealing steps (default 2000)
}

// Slot is one scheduled task occurrence.
type Slot struct {
	Task, PE      int
	Start, Finish sim.Time
}

// Assignment is a mapping plus its static schedule.
type Assignment struct {
	Graph    *taskgraph.Graph
	Platform *platform.Platform
	TaskPE   []int
	Schedule []Slot
	Makespan sim.Time
}

// Evaluator is a reusable candidate-scoring context for one (graph,
// platform) pair. It precomputes what every cost evaluation needs —
// the graph's cached adjacency view, per-task capable-core sets, and
// per-(task, core) execution times at the cores' current DVFS levels
// — and keeps scratch arrays alive across evaluations, so scoring an
// assignment allocates nothing. Rebind (or construct) after changing
// the graph, the platform, or a core's DVFS level; an Evaluator is
// not safe for concurrent use.
type Evaluator struct {
	g    *taskgraph.Graph
	plat *platform.Platform
	view *taskgraph.View
	// mem is the platform's memory contention model (nil for ideal),
	// cached at bind time so the scoring loop skips the field chase.
	mem mem.Model

	capab  [][]int // per task: capable core IDs (preferred-PE filtered)
	capBuf []int   // backing array for capab

	// durs[id*nPE+pe] is the task's execution time on core pe at its
	// bound DVFS level, or -1 when the task cannot run there.
	durs []sim.Time
	// infCost[pe] is Cycles(1<<50) — the legacy "impossible" charge the
	// throughput objective adds for an infeasible placement, kept
	// bit-identical to the pre-Evaluator implementation.
	infCost []sim.Time

	peAvail []sim.Time
	finish  []sim.Time
	load    []sim.Time

	// Obs is the optional search-instrumentation handle. The zero
	// value is inert; attaching counters never changes which
	// assignment a heuristic returns.
	Obs SearchObs
}

// NewEvaluator returns an evaluator bound to (g, plat). The graph's
// edges must reference tasks in range (anything built through
// AddTask/Connect is); use Map, which validates first, for untrusted
// graphs.
func NewEvaluator(g *taskgraph.Graph, plat *platform.Platform) *Evaluator {
	e := &Evaluator{}
	e.Bind(g, plat)
	return e
}

// Bind repoints the evaluator at (g, plat), reusing its scratch
// storage. Call it again after structural graph changes or core DVFS
// level changes; the per-(task, core) time table is frozen at bind
// time.
func (e *Evaluator) Bind(g *taskgraph.Graph, plat *platform.Platform) {
	e.g, e.plat = g, plat
	e.mem = plat.Mem
	e.view = g.View()
	n := len(g.Tasks)
	nPE := len(plat.Cores)

	if cap(e.capab) < n {
		e.capab = make([][]int, n)
	}
	e.capab = e.capab[:n]
	need := n * nPE
	if cap(e.capBuf) < need {
		e.capBuf = make([]int, 0, need)
	}
	e.capBuf = e.capBuf[:0]
	if cap(e.durs) < need {
		e.durs = make([]sim.Time, need)
	}
	e.durs = e.durs[:need]
	e.infCost = growTime(e.infCost, nPE)
	e.peAvail = growTime(e.peAvail, nPE)
	e.finish = growTime(e.finish, n)
	e.load = growTime(e.load, nPE)

	for pe, c := range plat.Cores {
		e.infCost[pe] = c.Cycles(1 << 50)
	}
	v := e.view
	for id, t := range g.Tasks {
		usePref := false
		if t.HasPref {
			for _, c := range plat.Cores {
				if c.Class == t.PreferredPE && v.CanRunOn(id, c.Class) {
					usePref = true
					break
				}
			}
		}
		start := len(e.capBuf)
		for _, c := range plat.Cores {
			if !v.CanRunOn(id, c.Class) {
				e.durs[id*nPE+c.ID] = -1
				continue
			}
			e.durs[id*nPE+c.ID] = c.Cycles(v.CyclesOn(id, c.Class))
			if !usePref || c.Class == t.PreferredPE {
				e.capBuf = append(e.capBuf, c.ID)
			}
		}
		e.capab[id] = e.capBuf[start:len(e.capBuf):len(e.capBuf)]
	}
}

// growTime returns s resized to n, reusing its backing array.
func growTime(s []sim.Time, n int) []sim.Time {
	if cap(s) < n {
		return make([]sim.Time, n)
	}
	return s[:n]
}

// Capable returns the core IDs that can run task id, respecting a
// preferred PE class when one is available. The slice is the
// evaluator's own — read-only.
func (e *Evaluator) Capable(id int) []int { return e.capab[id] }

// schedule computes the static schedule for a fixed assignment:
// topological order, communication charged at contention-free fabric
// estimates, one task at a time per PE. With wantSlots false it runs
// entirely in reused scratch — zero allocations — and returns only
// the makespan; with wantSlots true it allocates a fresh slot list
// for the caller to keep.
func (e *Evaluator) schedule(taskPE []int, wantSlots bool) (sim.Time, []Slot, error) {
	e.Obs.Schedules.Inc()
	v := e.view
	order, err := v.TopoOrder()
	if err != nil {
		return 0, nil, err
	}
	nPE := len(e.plat.Cores)
	peAvail := e.peAvail
	for i := range peAvail {
		peAvail[i] = 0
	}
	finish := e.finish
	var slots []Slot
	if wantSlots {
		slots = make([]Slot, 0, len(order))
	}
	var makespan sim.Time
	for _, id := range order {
		pe := taskPE[id]
		dur := e.durs[id*nPE+pe]
		if dur < 0 {
			t := e.g.Tasks[id]
			return 0, nil, fmt.Errorf("mapping: task %q cannot run on core %d (%v)", t.Name, pe, e.plat.Core(pe).Class)
		}
		ready := sim.Time(0)
		for _, pr := range v.Preds(id) {
			arr := finish[pr.Task]
			if taskPE[pr.Task] != pe {
				arr += e.plat.Fabric.EstLatency(taskPE[pr.Task], pe, pr.Bytes)
				if e.mem != nil {
					arr += e.mem.EstLatency(taskPE[pr.Task], pe, pr.Bytes)
				}
			}
			if arr > ready {
				ready = arr
			}
		}
		start := ready
		if peAvail[pe] > start {
			start = peAvail[pe]
		}
		end := start + dur
		peAvail[pe] = end
		finish[id] = end
		if wantSlots {
			slots = append(slots, Slot{Task: id, PE: pe, Start: start, Finish: end})
		}
		if end > makespan {
			makespan = end
		}
	}
	return makespan, slots, nil
}

// evaluate is the legacy entry point kept for the equivalence tests:
// score one assignment with a throwaway evaluator.
func evaluate(g *taskgraph.Graph, plat *platform.Platform, taskPE []int) (sim.Time, []Slot, error) {
	return NewEvaluator(g, plat).schedule(taskPE, true)
}

// objectiveCost scores an assignment under the selected objective:
// static-schedule makespan, or the pipeline's steady-state period
// (the most-loaded core) for throughput. Zero allocations.
func (e *Evaluator) objectiveCost(objective Objective, assign []int) sim.Time {
	e.Obs.CostEvals.Inc()
	if objective == Throughput {
		nPE := len(e.plat.Cores)
		load := e.load
		for i := range load {
			load[i] = 0
		}
		var worst sim.Time
		for id, pe := range assign {
			d := e.durs[id*nPE+pe]
			if d < 0 {
				d = e.infCost[pe]
			}
			load[pe] += d
			if load[pe] > worst {
				worst = load[pe]
			}
		}
		return worst
	}
	mk, _, err := e.schedule(assign, false)
	if err != nil {
		return sim.Forever
	}
	return mk
}

// Map assigns g's tasks onto plat with the selected heuristic, using
// a fresh Evaluator. Callers mapping many candidates against reusable
// scratch should construct an Evaluator once and call its Map method.
func Map(g *taskgraph.Graph, plat *platform.Platform, opt Options) (*Assignment, error) {
	// Validate before building the evaluator: its adjacency view
	// indexes edge endpoints unchecked, and a malformed graph (edges
	// edited outside AddTask/Connect) must surface as the Validate
	// error, not a panic.
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return NewEvaluator(g, plat).Map(opt)
}

// Map assigns the bound graph's tasks onto the bound platform with
// the selected heuristic.
func (e *Evaluator) Map(opt Options) (*Assignment, error) {
	g, plat := e.g, e.plat
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(plat.Cores) == 0 {
		return nil, fmt.Errorf("mapping: platform has no cores")
	}
	for id, t := range g.Tasks {
		if len(e.capab[id]) == 0 {
			return nil, fmt.Errorf("mapping: no core can run task %q", t.Name)
		}
	}
	var taskPE []int
	var err error
	switch opt.Heuristic {
	case List:
		if opt.Objective == Throughput {
			taskPE, err = e.throughputMap()
		} else {
			taskPE, err = e.listMap()
		}
	case Anneal:
		taskPE, err = e.annealMap(opt)
	case Exhaustive:
		taskPE, err = e.exhaustiveMap(opt.Objective)
	default:
		return nil, fmt.Errorf("mapping: unknown heuristic %d", opt.Heuristic)
	}
	if err != nil {
		return nil, err
	}
	mk, slots, err := e.schedule(taskPE, true)
	if err != nil {
		return nil, err
	}
	return &Assignment{Graph: g, Platform: plat, TaskPE: taskPE, Schedule: slots, Makespan: mk}, nil
}

// listMap is HEFT-flavoured: rank tasks by upward rank (mean compute
// plus mean communication to the exit), then greedily place each on
// the core minimizing its earliest finish time.
func (e *Evaluator) listMap() ([]int, error) {
	g, plat, v := e.g, e.plat, e.view
	n := len(g.Tasks)
	meanCycles := func(id int) float64 {
		var sum float64
		var cnt int
		for _, c := range plat.Cores {
			if v.CanRunOn(id, c.Class) {
				sum += float64(v.CyclesOn(id, c.Class)) / float64(c.Hz()) * 1e12
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	rank := make([]float64, n)
	order, _ := v.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var best float64
		for _, s := range v.Succs(id) {
			comm := float64(plat.Fabric.EstLatency(0, len(plat.Cores)-1, s.Bytes))
			if e.mem != nil {
				comm += float64(e.mem.EstLatency(0, len(plat.Cores)-1, s.Bytes))
			}
			if r := rank[s.Task] + comm; r > best {
				best = r
			}
		}
		rank[id] = meanCycles(id) + best
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if rank[ids[a]] != rank[ids[b]] {
			return rank[ids[a]] > rank[ids[b]]
		}
		return ids[a] < ids[b]
	})

	taskPE := make([]int, n)
	for i := range taskPE {
		taskPE[i] = -1
	}
	nPE := len(plat.Cores)
	peAvail := e.peAvail
	for i := range peAvail {
		peAvail[i] = 0
	}
	finish := e.finish
	for _, id := range ids {
		bestPE, bestEFT := -1, sim.Forever
		for _, pe := range e.capab[id] {
			ready := sim.Time(0)
			for _, pr := range v.Preds(id) {
				if taskPE[pr.Task] < 0 {
					continue // predecessor not placed yet (rank order anomaly)
				}
				arr := finish[pr.Task]
				if taskPE[pr.Task] != pe {
					arr += plat.Fabric.EstLatency(taskPE[pr.Task], pe, pr.Bytes)
					if e.mem != nil {
						arr += e.mem.EstLatency(taskPE[pr.Task], pe, pr.Bytes)
					}
				}
				if arr > ready {
					ready = arr
				}
			}
			start := ready
			if peAvail[pe] > start {
				start = peAvail[pe]
			}
			eft := start + e.durs[id*nPE+pe]
			if eft < bestEFT {
				bestEFT = eft
				bestPE = pe
			}
		}
		taskPE[id] = bestPE
		peAvail[bestPE] = bestEFT
		finish[id] = bestEFT
	}
	return taskPE, nil
}

// throughputMap balances stage load across PEs (greedy LPT on
// per-core execution time): the pipeline's steady-state period is the
// most-loaded core, so minimizing the maximum load maximizes
// throughput.
func (e *Evaluator) throughputMap() ([]int, error) {
	g, plat := e.g, e.plat
	n := len(g.Tasks)
	nPE := len(plat.Cores)
	ids := make([]int, n)
	weights := make([]int64, n)
	for i := range ids {
		ids[i] = i
		// Fastest capable core's execution time. An explicit found
		// flag, not a zero sentinel: a 0-cycle task must not fall
		// through to a slower core's time.
		var w int64
		found := false
		for _, c := range plat.Cores {
			if d := e.durs[i*nPE+c.ID]; d >= 0 {
				if t := int64(d); !found || t < w {
					w = t
					found = true
				}
			}
		}
		weights[i] = w
	}
	sort.SliceStable(ids, func(a, b int) bool { return weights[ids[a]] > weights[ids[b]] })
	load := e.load
	for i := range load {
		load[i] = 0
	}
	taskPE := make([]int, n)
	for _, id := range ids {
		bestPE := -1
		var bestLoad sim.Time = sim.Forever
		for _, pe := range e.capab[id] {
			l := load[pe] + e.durs[id*nPE+pe]
			if l < bestLoad {
				bestLoad = l
				bestPE = pe
			}
		}
		taskPE[id] = bestPE
		load[bestPE] = bestLoad
	}
	return taskPE, nil
}

// annealMap refines the list (or, for throughput, LPT) mapping with
// simulated annealing over single-task moves, optimizing the selected
// objective; deterministic under Options.Seed. Moves mutate the
// current assignment in place and revert on reject; the throughput
// objective's move cost is an incremental per-core load update, the
// makespan objective recomputes the static schedule in scratch. Both
// produce the exact cost values of a full recomputation, so the
// accept/reject trajectory — and therefore the returned assignment —
// is byte-identical to the copying implementation.
func (e *Evaluator) annealMap(opt Options) ([]int, error) {
	g := e.g
	nPE := len(e.plat.Cores)
	var cur []int
	var err error
	if opt.Objective == Throughput {
		cur, err = e.throughputMap()
	} else {
		cur, err = e.listMap()
	}
	if err != nil {
		return nil, err
	}
	iters := opt.Iterations
	if iters <= 0 {
		iters = 2000
	}
	rng := xrand.New(opt.Seed + 1)
	curCost := e.objectiveCost(opt.Objective, cur)
	best := append([]int{}, cur...)
	bestCost := curCost
	temp := float64(curCost)
	// Throughput: e.load now holds cur's per-core loads (filled by
	// objectiveCost above); maintain it incrementally across moves.
	load := e.load
	dur := func(id, pe int) sim.Time {
		if d := e.durs[id*nPE+pe]; d >= 0 {
			return d
		}
		return e.infCost[pe]
	}
	for i := 0; i < iters; i++ {
		tIdx := rng.Intn(len(g.Tasks))
		cands := e.capab[tIdx]
		oldPE := cur[tIdx]
		newPE := cands[rng.Intn(len(cands))]
		cur[tIdx] = newPE
		var nc sim.Time
		if opt.Objective == Throughput {
			load[oldPE] -= dur(tIdx, oldPE)
			load[newPE] += dur(tIdx, newPE)
			for _, l := range load {
				if l > nc {
					nc = l
				}
			}
		} else {
			mk, _, err := e.schedule(cur, false)
			if err != nil {
				mk = sim.Forever
			}
			nc = mk
		}
		e.Obs.AnnealMoves.Inc()
		dE := float64(nc - curCost)
		if dE <= 0 || rng.Float64() < math.Exp(-dE/math.Max(temp, 1)) {
			e.Obs.AnnealAccepts.Inc()
			curCost = nc
			if curCost < bestCost {
				copy(best, cur)
				bestCost = curCost
			}
		} else {
			e.Obs.AnnealRejects.Inc()
			cur[tIdx] = oldPE
			if opt.Objective == Throughput {
				load[newPE] -= dur(tIdx, newPE)
				load[oldPE] += dur(tIdx, oldPE)
			}
		}
		temp *= 0.995
	}
	return best, nil
}

// exhaustiveMap enumerates all feasible assignments under the
// selected objective with branch-and-bound: a prefix is cut when an
// admissible lower bound — the larger of the most-loaded core so far
// and the remaining work spread perfectly over all cores — already
// meets the incumbent. Bounds never cut a strictly better leaf and
// enumeration order is unchanged, so the returned assignment is the
// plain enumeration's first-found argmin, byte for byte. Guarded to
// small instances (the paper's exploration loop for design studies).
func (e *Evaluator) exhaustiveMap(objective Objective) ([]int, error) {
	g := e.g
	n := len(g.Tasks)
	nPE := len(e.plat.Cores)
	space := 1
	for id := range g.Tasks {
		space *= len(e.capab[id])
		if space > 500_000 {
			return nil, fmt.Errorf("mapping: exhaustive search space too large (>500k); use list or anneal")
		}
	}
	// minDur[i] is task i's fastest capable-core time; remMin[i] the
	// total over tasks i..n-1 — the admissible remaining-work term.
	minDur := make([]sim.Time, n)
	for id := range g.Tasks {
		m := sim.Forever
		for _, pe := range e.capab[id] {
			if d := e.durs[id*nPE+pe]; d < m {
				m = d
			}
		}
		minDur[id] = m
	}
	remMin := make([]sim.Time, n+1)
	for id := n - 1; id >= 0; id-- {
		remMin[id] = remMin[id+1] + minDur[id]
	}
	assign := make([]int, n)
	best := make([]int, n)
	bestCost := sim.Forever
	load := make([]sim.Time, nPE)
	var loadSum sim.Time
	var rec func(i int, maxLoad sim.Time)
	rec = func(i int, maxLoad sim.Time) {
		if i == n {
			c := e.objectiveCost(objective, assign)
			if c < bestCost {
				bestCost = c
				copy(best, assign)
			}
			return
		}
		if bestCost < sim.Forever {
			lb := maxLoad
			if spread := (loadSum + remMin[i] + sim.Time(nPE) - 1) / sim.Time(nPE); spread > lb {
				lb = spread
			}
			if lb >= bestCost {
				return
			}
		}
		for _, pe := range e.capab[i] {
			assign[i] = pe
			d := e.durs[i*nPE+pe]
			load[pe] += d
			loadSum += d
			ml := maxLoad
			if load[pe] > ml {
				ml = load[pe]
			}
			rec(i+1, ml)
			load[pe] -= d
			loadSum -= d
		}
	}
	rec(0, 0)
	if bestCost == sim.Forever {
		return nil, fmt.Errorf("mapping: no feasible assignment")
	}
	return best, nil
}

// Validate checks schedule sanity: no PE runs two tasks at once and
// every dependence finishes before its consumer starts.
func (a *Assignment) Validate() error {
	byPE := map[int][]Slot{}
	byTask := make([]Slot, len(a.Graph.Tasks))
	for _, s := range a.Schedule {
		byPE[s.PE] = append(byPE[s.PE], s)
		byTask[s.Task] = s
	}
	for pe, slots := range byPE {
		sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
		for i := 1; i < len(slots); i++ {
			if slots[i].Start < slots[i-1].Finish {
				return fmt.Errorf("mapping: PE %d overlaps tasks %d and %d", pe, slots[i-1].Task, slots[i].Task)
			}
		}
	}
	for _, e := range a.Graph.Edges {
		if byTask[e.To].Start < byTask[e.From].Finish {
			return fmt.Errorf("mapping: task %d starts before producer %d finishes", e.To, e.From)
		}
	}
	return nil
}

// FeasibleWithin reports whether the schedule fits a period/deadline.
func (a *Assignment) FeasibleWithin(deadline sim.Time) bool {
	return a.Makespan <= deadline
}

// Gantt renders the schedule as text for reports.
func (a *Assignment) Gantt() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule on %s (makespan %v):\n", a.Platform.Name, a.Makespan)
	byPE := map[int][]Slot{}
	for _, s := range a.Schedule {
		byPE[s.PE] = append(byPE[s.PE], s)
	}
	var pes []int
	for pe := range byPE {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		slots := byPE[pe]
		sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
		fmt.Fprintf(&b, "  %-8s:", a.Platform.Core(pe).Name)
		for _, s := range slots {
			fmt.Fprintf(&b, " [%s %v..%v]", a.Graph.Tasks[s.Task].Name, s.Start, s.Finish)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ExecStats is the measurement record a simulated execution returns:
// the makespan, per-PE busy time (compute only, excluding contention
// stalls), and the fabric traffic generated during the run. It feeds
// dse.Metrics — utilization, energy proxies and NoC pressure all
// derive from it.
type ExecStats struct {
	Makespan sim.Time
	// PEBusy[pe] is the time core pe spent computing tasks.
	PEBusy []sim.Time
	// Fabric is the traffic delta attributable to this run.
	Fabric platform.FabricStats
	// Mem is the memory-subsystem service delta attributable to this
	// run. Zero when the platform has no memory model attached.
	Mem platform.MemStats
}

// BusyTotal sums compute time over all PEs.
func (s ExecStats) BusyTotal() sim.Time {
	var total sim.Time
	for _, b := range s.PEBusy {
		total += b
	}
	return total
}

// Utilization returns per-PE busy fraction of the makespan.
func (s ExecStats) Utilization() []float64 {
	out := make([]float64, len(s.PEBusy))
	if s.Makespan <= 0 {
		return out
	}
	for i, b := range s.PEBusy {
		out[i] = float64(b) / float64(s.Makespan)
	}
	return out
}

// Simulation resources are named per index ("pe3", "e17"); the names
// only surface in diagnostics, so they come from a precomputed table
// instead of a fmt.Sprintf per resource per run.
var (
	peNames   [64]string
	edgeNames [256]string
)

func init() {
	for i := range peNames {
		peNames[i] = "pe" + strconv.Itoa(i)
	}
	for i := range edgeNames {
		edgeNames[i] = "e" + strconv.Itoa(i)
	}
}

func peName(i int) string {
	if i < len(peNames) {
		return peNames[i]
	}
	return "pe" + strconv.Itoa(i)
}

func edgeName(i int) string {
	if i < len(edgeNames) {
		return edgeNames[i]
	}
	return "e" + strconv.Itoa(i)
}

// transferContended moves one cross-PE payload: the fabric delivers
// it, then — when the platform has a memory contention model — the
// payload queues for memory service before done fires. With no model
// (nil Mem) the call is exactly Fabric.Transfer: same arguments, same
// event stream, byte-identical timing to the pre-model simulator.
func transferContended(plat *platform.Platform, src, dst, bytes int, done func()) {
	m := plat.Mem
	if m == nil {
		plat.Fabric.Transfer(src, dst, bytes, done)
		return
	}
	k := plat.Kernel
	plat.Fabric.Transfer(src, dst, bytes, func() {
		if d := m.Service(k.Now(), src, dst, bytes); d > 0 {
			k.Schedule(d, done)
		} else {
			done()
		}
	})
}

// Execute runs the assignment on the event-driven platform model with
// genuine fabric contention (transfers share links) — the high-level
// "virtual platform" simulation of section IV. It uses the platform's
// kernel, which must be otherwise idle, and returns the measured
// makespan plus per-PE busy time and the fabric traffic of the run.
// It shares its implementation with ExecuteMulti (executeSpans), so
// the two can never diverge.
func Execute(a *Assignment) (ExecStats, error) {
	stats, _, err := executeSpans(a, nil)
	return stats, err
}

// ExecutePipelined runs the mapped graph as a pipeline over
// `iterations` successive data sets (frames, blocks): every task
// fires once per iteration, consuming its predecessors' tokens for
// the same iteration through depth-bounded FIFO channels. This is how
// MAPS-mapped multimedia codecs actually earn their speedup — stage
// parallelism across consecutive frames — and the measurement behind
// the section IV "promising speedup results".
func ExecutePipelined(a *Assignment, iterations int) (ExecStats, error) {
	if iterations <= 0 {
		return ExecStats{}, fmt.Errorf("mapping: iterations must be positive")
	}
	k := a.Platform.Kernel
	if k == nil {
		return ExecStats{}, fmt.Errorf("mapping: platform has no kernel")
	}
	g := a.Graph
	v := g.View()
	queues := make([]*sim.Queue, len(g.Edges)) // edge index -> token queue
	for i := range g.Edges {
		queues[i] = k.NewQueue(edgeName(i), 2)
	}
	peRes := make([]*sim.Resource, len(a.Platform.Cores))
	for i := range peRes {
		peRes[i] = k.NewResource(peName(i), 1)
	}
	fabric0 := platform.FabricStatsOf(a.Platform.Fabric)
	mem0 := platform.MemStatsOf(a.Platform.Mem)
	busy := make([]sim.Time, len(a.Platform.Cores))
	var makespan sim.Time
	finished := 0
	for id := range g.Tasks {
		id := id
		inEdges, outEdges := v.InEdges(id), v.OutEdges(id)
		pe := a.TaskPE[id]
		core := a.Platform.Core(pe)
		cycles := g.Tasks[id].CyclesOn(core.Class)
		k.Spawn(g.Tasks[id].Name, func(p *sim.Proc) {
			for it := 0; it < iterations; it++ {
				for _, ie := range inEdges {
					queues[ie.Edge].Get(p)
				}
				peRes[pe].Acquire(p)
				dur := core.Cycles(cycles)
				p.Delay(dur)
				peRes[pe].Release()
				busy[pe] += dur
				for _, oe := range outEdges {
					if a.TaskPE[oe.Task] != pe {
						done := k.NewSignal()
						transferContended(a.Platform, pe, a.TaskPE[oe.Task], oe.Bytes, func() { done.Broadcast() })
						done.Wait(p)
					}
					queues[oe.Edge].Put(p, it)
				}
				if p.Now() > makespan {
					makespan = p.Now()
				}
			}
			finished++
		})
	}
	k.Run()
	if finished != len(g.Tasks) {
		return ExecStats{}, fmt.Errorf("mapping: pipeline stalled (%d/%d tasks finished)", finished, len(g.Tasks))
	}
	return ExecStats{
		Makespan: makespan,
		PEBusy:   busy,
		Fabric:   platform.FabricStatsOf(a.Platform.Fabric).Sub(fabric0),
		Mem:      platform.MemStatsOf(a.Platform.Mem).Sub(mem0),
	}, nil
}
