package mapping

import (
	"testing"

	"mpsockit/internal/workload"
)

// Benchmarks of the candidate-evaluation hot path. These are the
// numbers docs/performance.md tracks PR-to-PR: evaluate and
// objectiveCost must stay at 0 allocs/op (CI guards this), and
// BenchmarkAnneal is the headline mapping-search figure.

func BenchmarkEvaluate(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.schedule(a.TaskPE, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnnealCost(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.objectiveCost(Makespan, a.TaskPE)
	}
}

func BenchmarkAnneal(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(g, plat, Options{Heuristic: Anneal, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustive(b *testing.B) {
	g := workload.CarRadioTaskGraph()
	plat := wirelessPlat()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(g, plat, Options{Heuristic: Exhaustive}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecute(b *testing.B) {
	g := workload.JPEGTaskGraph()
	plat := wirelessPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(a); err != nil {
			b.Fatal(err)
		}
	}
}
