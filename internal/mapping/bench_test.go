package mapping

import (
	"testing"

	"mpsockit/internal/mem"
	"mpsockit/internal/obs"
	"mpsockit/internal/workload"
)

// liveSearchObs returns a SearchObs with every counter attached, so
// the *Obs benchmark variants measure the instrumented fast path (nil
// check + atomic add) rather than the inert one.
func liveSearchObs(r *obs.Registry) SearchObs {
	return SearchObs{
		Schedules:     r.Counter("map_schedules_total", "List-schedule evaluations."),
		CostEvals:     r.Counter("map_cost_evals_total", "Objective-cost evaluations."),
		AnnealMoves:   r.Counter("map_anneal_moves_total", "Proposed annealing moves."),
		AnnealAccepts: r.Counter("map_anneal_accepts_total", "Accepted annealing moves."),
		AnnealRejects: r.Counter("map_anneal_rejects_total", "Rejected annealing moves."),
	}
}

// Benchmarks of the candidate-evaluation hot path. These are the
// numbers docs/performance.md tracks PR-to-PR: evaluate and
// objectiveCost must stay at 0 allocs/op (CI guards this), and
// BenchmarkAnneal is the headline mapping-search figure.

func BenchmarkEvaluate(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.schedule(a.TaskPE, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnnealCost(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.objectiveCost(Makespan, a.TaskPE)
	}
}

// BenchmarkEvaluateObs is BenchmarkEvaluate with live metrics
// attached; the CI guard requires it to stay at 0 allocs/op, proving
// instrumentation-on costs no allocations on the hot path.
func BenchmarkEvaluateObs(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	ev.Obs = liveSearchObs(obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.schedule(a.TaskPE, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealCostObs is BenchmarkAnnealCost with live metrics
// attached; CI requires 0 allocs/op here too.
func BenchmarkAnnealCostObs(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	ev.Obs = liveSearchObs(obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.objectiveCost(Makespan, a.TaskPE)
	}
}

// BenchmarkEvaluateMem is BenchmarkEvaluate with a bank/channel
// memory contention model attached to the platform: the scheduler
// charges the model's estimate per cross-PE edge. The CI guard
// requires 0 allocs/op — the memory axis must not buy its fidelity
// with allocations on the scoring path.
func BenchmarkEvaluateMem(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	access, bpns := plat.MemTiming()
	plat.Mem = mem.NewBankModel(4, 2, access, bpns)
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(g, plat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.schedule(a.TaskPE, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnneal(b *testing.B) {
	g := workload.SyntheticTaskGraph(16, 42)
	plat := wirelessPlat()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(g, plat, Options{Heuristic: Anneal, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustive(b *testing.B) {
	g := workload.CarRadioTaskGraph()
	plat := wirelessPlat()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(g, plat, Options{Heuristic: Exhaustive}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecute(b *testing.B) {
	g := workload.JPEGTaskGraph()
	plat := wirelessPlat()
	a, err := Map(g, plat, Options{Heuristic: List})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(a); err != nil {
			b.Fatal(err)
		}
	}
}
