// Package cic implements the HOPES "common intermediate code"
// programming model of the paper's section V: applications are sets
// of concurrent tasks communicating through typed channels, specified
// independently of any target; the target architecture and design
// constraints live in a separate XML architecture-information file;
// and a translator synthesizes the target-specific interface code and
// run-time system for a chosen task-to-processor mapping.
//
// Retargetability — the section's headline property — is exercised by
// translating one Spec against two architectures (a Cell-like
// distributed-memory machine and an MPCore-like SMP; see
// internal/targets) and checking that both produce identical outputs
// with target-appropriate synthesized code.
package cic

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TaskCtx is the target-independent execution context handed to task
// code. Task code sees only ports and an emit facility: no memory
// architecture, no synchronization — those are the translator's
// business.
type TaskCtx struct {
	// Firing is the current firing index (0-based).
	Firing int
	in     map[string][]int32
	out    map[string][][]int32
	emit   []int32
	state  map[string]int32
}

// Read returns the tokens consumed from port this firing.
func (c *TaskCtx) Read(port string) []int32 {
	v, ok := c.in[port]
	if !ok {
		panic(fmt.Sprintf("cic: task read from unconnected port %q", port))
	}
	return v
}

// Write queues one token (a fixed-size int32 vector) on port.
func (c *TaskCtx) Write(port string, vals ...int32) {
	c.out[port] = append(c.out[port], vals)
}

// Emit appends values to the task's observable output stream (sink
// tasks use this; the retargetability check compares these streams).
func (c *TaskCtx) Emit(vals ...int32) {
	c.emit = append(c.emit, vals...)
}

// State returns persistent per-task state surviving across firings.
func (c *TaskCtx) State(key string) int32 { return c.state[key] }

// SetState updates persistent per-task state.
func (c *TaskCtx) SetState(key string, v int32) { c.state[key] = v }

// TaskFunc is the body of a CIC task, executed once per firing.
type TaskFunc func(ctx *TaskCtx)

// PortSpec declares a port and its rate (tokens per firing) and token
// width (int32s per token).
type PortSpec struct {
	Name      string
	Rate      int
	TokenInts int
}

// TaskSpec is one CIC task.
type TaskSpec struct {
	Name string
	In   []PortSpec
	Out  []PortSpec
	// Firings is how many times the task fires per run.
	Firings int
	// CyclesPerFiring estimates compute per firing per PE class name
	// (e.g. "DSP": 12000); the translator matches it against the
	// architecture file's processor classes.
	CyclesPerFiring map[string]int64
	// CodeBytes and DataBytes feed the memory-capacity design
	// constraint check (section V: "it is the programmer's
	// responsibility to confirm satisfaction of the design
	// constraints, such as memory requirements" — CIC moves that
	// burden into the translator).
	CodeBytes int
	DataBytes int
	// Init runs once before the first firing; Go runs every firing;
	// Wrapup once after the last.
	Init   TaskFunc
	Go     TaskFunc
	Wrapup TaskFunc
}

// ChannelSpec wires SrcTask.SrcPort to DstTask.DstPort.
type ChannelSpec struct {
	Name    string
	SrcTask string
	SrcPort string
	DstTask string
	DstPort string
	// Depth is the buffer capacity in tokens.
	Depth int
}

// Spec is a complete CIC application.
type Spec struct {
	Name     string
	Tasks    []*TaskSpec
	Channels []*ChannelSpec
}

// Task returns the named task spec, or nil.
func (s *Spec) Task(name string) *TaskSpec {
	for _, t := range s.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Validate checks structural consistency of the spec alone.
func (s *Spec) Validate() error {
	seen := map[string]bool{}
	for _, t := range s.Tasks {
		if seen[t.Name] {
			return fmt.Errorf("cic: duplicate task %q", t.Name)
		}
		seen[t.Name] = true
		if t.Go == nil {
			return fmt.Errorf("cic: task %q has no Go function", t.Name)
		}
		if t.Firings <= 0 {
			return fmt.Errorf("cic: task %q has no firings", t.Name)
		}
		ports := map[string]bool{}
		for _, p := range append(append([]PortSpec{}, t.In...), t.Out...) {
			if ports[p.Name] {
				return fmt.Errorf("cic: task %q duplicate port %q", t.Name, p.Name)
			}
			ports[p.Name] = true
			if p.Rate <= 0 || p.TokenInts <= 0 {
				return fmt.Errorf("cic: task %q port %q has non-positive rate or width", t.Name, p.Name)
			}
		}
	}
	wired := map[string]bool{}
	for _, ch := range s.Channels {
		src := s.Task(ch.SrcTask)
		dst := s.Task(ch.DstTask)
		if src == nil || dst == nil {
			return fmt.Errorf("cic: channel %q references unknown task", ch.Name)
		}
		sp := findPort(src.Out, ch.SrcPort)
		dp := findPort(dst.In, ch.DstPort)
		if sp == nil {
			return fmt.Errorf("cic: channel %q: task %q has no out port %q", ch.Name, ch.SrcTask, ch.SrcPort)
		}
		if dp == nil {
			return fmt.Errorf("cic: channel %q: task %q has no in port %q", ch.Name, ch.DstTask, ch.DstPort)
		}
		if sp.TokenInts != dp.TokenInts {
			return fmt.Errorf("cic: channel %q token width mismatch: %d vs %d", ch.Name, sp.TokenInts, dp.TokenInts)
		}
		if ch.Depth <= 0 {
			return fmt.Errorf("cic: channel %q needs positive depth", ch.Name)
		}
		// Rate balance across the whole run.
		if src.Firings*sp.Rate != dst.Firings*dp.Rate {
			return fmt.Errorf("cic: channel %q unbalanced: %d produced vs %d consumed",
				ch.Name, src.Firings*sp.Rate, dst.Firings*dp.Rate)
		}
		wired[ch.SrcTask+"."+ch.SrcPort] = true
		wired[ch.DstTask+"."+ch.DstPort] = true
	}
	for _, t := range s.Tasks {
		for _, p := range t.In {
			if !wired[t.Name+"."+p.Name] {
				return fmt.Errorf("cic: task %q input port %q not connected", t.Name, p.Name)
			}
		}
		for _, p := range t.Out {
			if !wired[t.Name+"."+p.Name] {
				return fmt.Errorf("cic: task %q output port %q not connected", t.Name, p.Name)
			}
		}
	}
	return nil
}

func findPort(ps []PortSpec, name string) *PortSpec {
	for i := range ps {
		if ps[i].Name == name {
			return &ps[i]
		}
	}
	return nil
}

// --- Architecture information file (XML) ---

// ProcessorInfo describes one processing element in the architecture
// file.
type ProcessorInfo struct {
	Name          string `xml:"name,attr"`
	Class         string `xml:"class,attr"`
	ClockHz       int64  `xml:"clockHz,attr"`
	LocalMemBytes int    `xml:"localMemBytes,attr"`
}

// InterconnectInfo describes the communication fabric and its
// channel-implementation style: "dma" (distributed local stores,
// message passing) or "sharedmem" (SMP with lock-protected FIFOs).
type InterconnectInfo struct {
	Type        string `xml:"type,attr"`
	BytesPerNS  int64  `xml:"bytesPerNS,attr"`
	HopLatencyNS int64 `xml:"hopLatencyNS,attr"`
	// LockCycles is the lock acquire+release cost for sharedmem
	// channels.
	LockCycles int64 `xml:"lockCycles,attr"`
	// DMASetupNS is the descriptor-programming cost for dma channels.
	DMASetupNS int64 `xml:"dmaSetupNS,attr"`
}

// ArchInfo is the parsed architecture-information file.
type ArchInfo struct {
	XMLName        xml.Name         `xml:"architecture"`
	Name           string           `xml:"name,attr"`
	SharedMemBytes int              `xml:"sharedMemBytes,attr"`
	Processors     []ProcessorInfo  `xml:"processor"`
	Interconnect   InterconnectInfo `xml:"interconnect"`
}

// Processor returns the named processor, or nil.
func (a *ArchInfo) Processor(name string) *ProcessorInfo {
	for i := range a.Processors {
		if a.Processors[i].Name == name {
			return &a.Processors[i]
		}
	}
	return nil
}

// Validate checks the architecture description.
func (a *ArchInfo) Validate() error {
	if len(a.Processors) == 0 {
		return fmt.Errorf("cic: architecture %q has no processors", a.Name)
	}
	seen := map[string]bool{}
	for _, p := range a.Processors {
		if seen[p.Name] {
			return fmt.Errorf("cic: duplicate processor %q", p.Name)
		}
		seen[p.Name] = true
		if p.ClockHz <= 0 {
			return fmt.Errorf("cic: processor %q has no clock", p.Name)
		}
	}
	switch a.Interconnect.Type {
	case "dma", "sharedmem":
	default:
		return fmt.Errorf("cic: unknown interconnect type %q", a.Interconnect.Type)
	}
	if a.Interconnect.Type == "sharedmem" && a.SharedMemBytes <= 0 {
		return fmt.Errorf("cic: sharedmem architecture needs sharedMemBytes")
	}
	if a.Interconnect.BytesPerNS <= 0 {
		return fmt.Errorf("cic: interconnect needs bandwidth")
	}
	return nil
}

// ParseArch reads an architecture-information XML file.
func ParseArch(r io.Reader) (*ArchInfo, error) {
	var a ArchInfo
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("cic: bad architecture file: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteArch serders an ArchInfo back to XML (for cmd tooling and
// examples).
func WriteArch(w io.Writer, a *ArchInfo) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(a); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// --- Mapping file (XML) ---

// MapEntry binds one task to one processor.
type MapEntry struct {
	Task      string `xml:"task,attr"`
	Processor string `xml:"processor,attr"`
}

// Mapping is the task-to-processor binding, either hand-written (the
// paper: "the programmer maps tasks to processing components, either
// manually or automatically") or produced by AutoMap.
type Mapping struct {
	XMLName xml.Name   `xml:"mapping"`
	Entries []MapEntry `xml:"map"`
}

// Of returns the processor assigned to task, or "".
func (m *Mapping) Of(task string) string {
	for _, e := range m.Entries {
		if e.Task == task {
			return e.Processor
		}
	}
	return ""
}

// ParseMapping reads a mapping XML file.
func ParseMapping(r io.Reader) (*Mapping, error) {
	var m Mapping
	if err := xml.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("cic: bad mapping file: %w", err)
	}
	return &m, nil
}

// WriteMapping serders a mapping to XML.
func WriteMapping(w io.Writer, m *Mapping) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(m); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// AutoMap produces a deterministic load-balancing mapping: tasks in
// descending compute demand, each to the capable processor with the
// least accumulated load (greedy LPT).
func AutoMap(spec *Spec, arch *ArchInfo) (*Mapping, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	demand := func(t *TaskSpec, class string) (int64, bool) {
		c, ok := t.CyclesPerFiring[class]
		return c * int64(t.Firings), ok
	}
	tasks := append([]*TaskSpec{}, spec.Tasks...)
	sort.SliceStable(tasks, func(i, j int) bool {
		var di, dj int64
		for _, p := range arch.Processors {
			if d, ok := demand(tasks[i], p.Class); ok && d > di {
				di = d
			}
			if d, ok := demand(tasks[j], p.Class); ok && d > dj {
				dj = d
			}
		}
		if di != dj {
			return di > dj
		}
		return tasks[i].Name < tasks[j].Name
	})
	load := map[string]float64{}
	m := &Mapping{}
	for _, t := range tasks {
		bestProc := ""
		bestFinish := 0.0
		for _, p := range arch.Processors {
			d, ok := demand(t, p.Class)
			if !ok {
				continue
			}
			finish := load[p.Name] + float64(d)/float64(p.ClockHz)
			if bestProc == "" || finish < bestFinish {
				bestProc, bestFinish = p.Name, finish
			}
		}
		if bestProc == "" {
			return nil, fmt.Errorf("cic: no processor class suits task %q (classes %v)",
				t.Name, classNames(t))
		}
		load[bestProc] = bestFinish
		m.Entries = append(m.Entries, MapEntry{Task: t.Name, Processor: bestProc})
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Task < m.Entries[j].Task })
	return m, nil
}

func classNames(t *TaskSpec) []string {
	var out []string
	for c := range t.CyclesPerFiring {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// String renders a compact spec summary.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cic %s: %d tasks, %d channels", s.Name, len(s.Tasks), len(s.Channels))
	return b.String()
}
