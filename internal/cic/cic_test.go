package cic

import (
	"bytes"
	"strings"
	"testing"
)

// testSpec builds a 4-stage pipeline: gen -> scale -> offset -> sink,
// computing (i*3+7) over n tokens with checkable output.
func testSpec(n int) *Spec {
	cyc := func(c int64) map[string]int64 {
		return map[string]int64{"CTRL": c, "DSP": c / 2, "RISC": c * 2}
	}
	return &Spec{
		Name: "pipeline",
		Tasks: []*TaskSpec{
			{
				Name: "gen", Firings: n,
				Out:             []PortSpec{{Name: "o", Rate: 1, TokenInts: 1}},
				CyclesPerFiring: cyc(2000),
				CodeBytes:       4 << 10, DataBytes: 1 << 10,
				Go: func(ctx *TaskCtx) { ctx.Write("o", int32(ctx.Firing)) },
			},
			{
				Name: "scale", Firings: n,
				In:              []PortSpec{{Name: "i", Rate: 1, TokenInts: 1}},
				Out:             []PortSpec{{Name: "o", Rate: 1, TokenInts: 1}},
				CyclesPerFiring: cyc(6000),
				CodeBytes:       8 << 10, DataBytes: 2 << 10,
				Go: func(ctx *TaskCtx) { ctx.Write("o", ctx.Read("i")[0]*3) },
			},
			{
				Name: "offset", Firings: n,
				In:              []PortSpec{{Name: "i", Rate: 1, TokenInts: 1}},
				Out:             []PortSpec{{Name: "o", Rate: 1, TokenInts: 1}},
				CyclesPerFiring: cyc(4000),
				CodeBytes:       6 << 10, DataBytes: 2 << 10,
				Go: func(ctx *TaskCtx) { ctx.Write("o", ctx.Read("i")[0]+7) },
			},
			{
				Name: "sink", Firings: n,
				In:              []PortSpec{{Name: "i", Rate: 1, TokenInts: 1}},
				CyclesPerFiring: cyc(1000),
				CodeBytes:       2 << 10, DataBytes: 1 << 10,
				Go:              func(ctx *TaskCtx) { ctx.Emit(ctx.Read("i")[0]) },
			},
		},
		Channels: []*ChannelSpec{
			{Name: "c0", SrcTask: "gen", SrcPort: "o", DstTask: "scale", DstPort: "i", Depth: 4},
			{Name: "c1", SrcTask: "scale", SrcPort: "o", DstTask: "offset", DstPort: "i", Depth: 4},
			{Name: "c2", SrcTask: "offset", SrcPort: "o", DstTask: "sink", DstPort: "i", Depth: 4},
		},
	}
}

func dmaArch() *ArchInfo {
	return &ArchInfo{
		Name: "cell2",
		Interconnect: InterconnectInfo{
			Type: "dma", BytesPerNS: 16, HopLatencyNS: 2, DMASetupNS: 100,
		},
		Processors: []ProcessorInfo{
			{Name: "ppe", Class: "CTRL", ClockHz: 3_200_000_000, LocalMemBytes: 512 << 10},
			{Name: "spe0", Class: "DSP", ClockHz: 3_200_000_000, LocalMemBytes: 256 << 10},
			{Name: "spe1", Class: "DSP", ClockHz: 3_200_000_000, LocalMemBytes: 256 << 10},
		},
	}
}

func smpArch() *ArchInfo {
	return &ArchInfo{
		Name:           "smp4",
		SharedMemBytes: 1 << 20,
		Interconnect: InterconnectInfo{
			Type: "sharedmem", BytesPerNS: 4, HopLatencyNS: 5, LockCycles: 100,
		},
		Processors: []ProcessorInfo{
			{Name: "cpu0", Class: "RISC", ClockHz: 600_000_000, LocalMemBytes: 512 << 10},
			{Name: "cpu1", Class: "RISC", ClockHz: 600_000_000, LocalMemBytes: 512 << 10},
			{Name: "cpu2", Class: "RISC", ClockHz: 600_000_000, LocalMemBytes: 512 << 10},
			{Name: "cpu3", Class: "RISC", ClockHz: 600_000_000, LocalMemBytes: 512 << 10},
		},
	}
}

func TestSpecValidation(t *testing.T) {
	if err := testSpec(8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testSpec(8)
	bad.Channels[0].Depth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-depth channel accepted")
	}
	bad2 := testSpec(8)
	bad2.Tasks[0].Firings = 7 // unbalances every channel
	if err := bad2.Validate(); err == nil {
		t.Fatal("unbalanced rates accepted")
	}
	bad3 := testSpec(8)
	bad3.Channels = bad3.Channels[1:] // scale.i unconnected
	if err := bad3.Validate(); err == nil {
		t.Fatal("dangling port accepted")
	}
}

func TestArchXMLRoundTrip(t *testing.T) {
	arch := dmaArch()
	var buf bytes.Buffer
	if err := WriteArch(&buf, arch); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseArch(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if parsed.Name != arch.Name || len(parsed.Processors) != 3 {
		t.Fatalf("round trip lost data: %+v", parsed)
	}
	if parsed.Interconnect.Type != "dma" || parsed.Interconnect.DMASetupNS != 100 {
		t.Fatalf("interconnect lost: %+v", parsed.Interconnect)
	}
}

func TestMappingXMLRoundTrip(t *testing.T) {
	m := &Mapping{Entries: []MapEntry{{Task: "gen", Processor: "ppe"}, {Task: "sink", Processor: "spe0"}}}
	var buf bytes.Buffer
	if err := WriteMapping(&buf, m); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Of("gen") != "ppe" || parsed.Of("sink") != "spe0" {
		t.Fatalf("mapping lost: %+v", parsed)
	}
}

func TestAutoMapBalances(t *testing.T) {
	m, err := AutoMap(testSpec(16), dmaArch())
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]bool{}
	for _, e := range m.Entries {
		used[e.Processor] = true
	}
	if len(used) < 2 {
		t.Fatalf("automap used only %v", used)
	}
}

func TestTranslateValidations(t *testing.T) {
	spec := testSpec(8)
	arch := dmaArch()
	// Unmapped task.
	if _, err := Translate(spec, arch, &Mapping{}); err == nil {
		t.Fatal("empty mapping accepted")
	}
	// Unknown processor.
	m := &Mapping{Entries: []MapEntry{
		{Task: "gen", Processor: "nosuch"}, {Task: "scale", Processor: "spe0"},
		{Task: "offset", Processor: "spe1"}, {Task: "sink", Processor: "ppe"},
	}}
	if _, err := Translate(spec, arch, m); err == nil {
		t.Fatal("unknown processor accepted")
	}
	// Memory constraint: blow up a task's data segment.
	big := testSpec(8)
	big.Task("scale").DataBytes = 10 << 20
	am, _ := AutoMap(big, arch)
	if _, err := Translate(big, arch, am); err == nil {
		t.Fatal("memory constraint violation accepted")
	} else if !strings.Contains(err.Error(), "design constraint") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestGeneratedCodeShape(t *testing.T) {
	spec := testSpec(8)
	arch := dmaArch()
	m, err := AutoMap(spec, arch)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Translate(spec, arch, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Generated) != len(arch.Processors)+1 {
		t.Fatalf("generated %d files", len(tp.Generated))
	}
	joined := ""
	for _, src := range tp.Generated {
		joined += src
	}
	for _, want := range []string{"rt_dma_send", "dma_desc_t", "rt_run_static_order", "cic_task_t"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("dma codegen lacks %q", want)
		}
	}
	if strings.Contains(joined, "rt_shm_send") {
		t.Fatal("dma target emitted shared-memory primitives")
	}
	// SMP target uses the other primitive set.
	smp := smpArch()
	m2, _ := AutoMap(spec, smp)
	tp2, err := Translate(spec, smp, m2)
	if err != nil {
		t.Fatal(err)
	}
	joined2 := ""
	for _, src := range tp2.Generated {
		joined2 += src
	}
	if !strings.Contains(joined2, "rt_shm_send") || strings.Contains(joined2, "rt_dma_send") {
		t.Fatal("smp codegen primitives wrong")
	}
	if tp.GeneratedLines() == 0 || tp2.GeneratedLines() == 0 {
		t.Fatal("no generated lines counted")
	}
}

func TestRunProducesCorrectOutput(t *testing.T) {
	const n = 32
	spec := testSpec(n)
	arch := dmaArch()
	m, _ := AutoMap(spec, arch)
	tp, err := Translate(spec, arch, m)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := stats.Outputs["sink"]
	if len(out) != n {
		t.Fatalf("sink emitted %d values, want %d", len(out), n)
	}
	for i, v := range out {
		if v != int32(i*3+7) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3+7)
		}
	}
	if stats.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	if stats.BytesMoved == 0 {
		t.Fatal("pipeline spread over processors moved no bytes?")
	}
}

// TestRetargetability is the core section V check: one spec, two
// architectures, identical outputs.
func TestRetargetability(t *testing.T) {
	const n = 24
	run := func(arch *ArchInfo) *RunStats {
		spec := testSpec(n) // fresh spec (task closures are stateful per run)
		m, err := AutoMap(spec, arch)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := Translate(spec, arch, m)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := tp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	cell := run(dmaArch())
	smp := run(smpArch())
	a, b := cell.Outputs["sink"], smp.Outputs["sink"]
	if len(a) != len(b) {
		t.Fatalf("output lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Different targets, different performance characteristics.
	if cell.Makespan == smp.Makespan {
		t.Fatal("suspiciously identical makespans across targets")
	}
}

func TestRunDeadlockDetected(t *testing.T) {
	// Two tasks in a channel cycle with empty buffers: deadlock.
	spec := &Spec{
		Name: "dl",
		Tasks: []*TaskSpec{
			{
				Name: "a", Firings: 2,
				In:              []PortSpec{{Name: "i", Rate: 1, TokenInts: 1}},
				Out:             []PortSpec{{Name: "o", Rate: 1, TokenInts: 1}},
				CyclesPerFiring: map[string]int64{"CTRL": 100, "DSP": 100},
				Go:              func(ctx *TaskCtx) { ctx.Write("o", ctx.Read("i")[0]) },
			},
			{
				Name: "b", Firings: 2,
				In:              []PortSpec{{Name: "i", Rate: 1, TokenInts: 1}},
				Out:             []PortSpec{{Name: "o", Rate: 1, TokenInts: 1}},
				CyclesPerFiring: map[string]int64{"CTRL": 100, "DSP": 100},
				Go:              func(ctx *TaskCtx) { ctx.Write("o", ctx.Read("i")[0]) },
			},
		},
		Channels: []*ChannelSpec{
			{Name: "ab", SrcTask: "a", SrcPort: "o", DstTask: "b", DstPort: "i", Depth: 2},
			{Name: "ba", SrcTask: "b", SrcPort: "o", DstTask: "a", DstPort: "i", Depth: 2},
		},
	}
	arch := dmaArch()
	m, _ := AutoMap(spec, arch)
	tp, err := Translate(spec, arch, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Run(); err == nil {
		t.Fatal("deadlock not reported")
	} else if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestStatefulTask(t *testing.T) {
	spec := &Spec{
		Name: "acc",
		Tasks: []*TaskSpec{
			{
				Name: "gen", Firings: 5,
				Out:             []PortSpec{{Name: "o", Rate: 1, TokenInts: 1}},
				CyclesPerFiring: map[string]int64{"CTRL": 100, "DSP": 100},
				Go:              func(ctx *TaskCtx) { ctx.Write("o", 2) },
			},
			{
				Name: "accum", Firings: 5,
				In:              []PortSpec{{Name: "i", Rate: 1, TokenInts: 1}},
				CyclesPerFiring: map[string]int64{"CTRL": 100, "DSP": 100},
				Go: func(ctx *TaskCtx) {
					s := ctx.State("sum") + ctx.Read("i")[0]
					ctx.SetState("sum", s)
				},
				Wrapup: func(ctx *TaskCtx) { ctx.Emit(ctx.State("sum")) },
			},
		},
		Channels: []*ChannelSpec{
			{Name: "c", SrcTask: "gen", SrcPort: "o", DstTask: "accum", DstPort: "i", Depth: 2},
		},
	}
	arch := dmaArch()
	m, _ := AutoMap(spec, arch)
	tp, err := Translate(spec, arch, m)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Outputs["accum"]; len(got) != 1 || got[0] != 10 {
		t.Fatalf("accumulated %v, want [10]", got)
	}
}
