package cic

import (
	"fmt"
	"sort"
	"strings"

	"mpsockit/internal/noc"
	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
)

// TargetProgram is the translator's output: synthesized per-processor
// interface code (as text artifacts, standing in for the generated C
// the paper's translator feeds to native compilers) plus an
// executable model that runs on the event-driven platform simulator.
type TargetProgram struct {
	Spec    *Spec
	Arch    *ArchInfo
	Mapping *Mapping
	// Generated holds synthesized source per processor name plus a
	// "cic_rt.h" runtime header entry.
	Generated map[string]string
	// Report summarizes the translation decisions.
	Report string
}

// Translate checks the spec against the architecture and mapping,
// verifies the design constraints (memory capacities), and
// synthesizes the target program. This is the CIC translator of
// section V: "The CIC translator automatically translates the task
// codes in the CIC model into the final parallel code, following the
// partitioning decision."
func Translate(spec *Spec, arch *ArchInfo, mapping *Mapping) (*TargetProgram, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	// Mapping completeness and class compatibility.
	for _, t := range spec.Tasks {
		pname := mapping.Of(t.Name)
		if pname == "" {
			return nil, fmt.Errorf("cic: task %q not mapped", t.Name)
		}
		proc := arch.Processor(pname)
		if proc == nil {
			return nil, fmt.Errorf("cic: task %q mapped to unknown processor %q", t.Name, pname)
		}
		if _, ok := t.CyclesPerFiring[proc.Class]; !ok {
			return nil, fmt.Errorf("cic: task %q has no timing for class %s (processor %s)",
				t.Name, proc.Class, pname)
		}
	}
	// Memory-capacity design constraints.
	if err := checkMemory(spec, arch, mapping); err != nil {
		return nil, err
	}
	tp := &TargetProgram{Spec: spec, Arch: arch, Mapping: mapping, Generated: map[string]string{}}
	tp.Generated["cic_rt.h"] = runtimeHeader(arch)
	for _, p := range arch.Processors {
		tp.Generated[p.Name+".c"] = genProcessorSource(spec, arch, mapping, &p)
	}
	tp.Report = tp.buildReport()
	return tp, nil
}

// channelBytes returns the buffer footprint of a channel.
func channelBytes(spec *Spec, ch *ChannelSpec) int {
	src := spec.Task(ch.SrcTask)
	sp := findPort(src.Out, ch.SrcPort)
	return ch.Depth * sp.TokenInts * 4
}

func checkMemory(spec *Spec, arch *ArchInfo, mapping *Mapping) error {
	local := map[string]int{}
	for _, t := range spec.Tasks {
		local[mapping.Of(t.Name)] += t.CodeBytes + t.DataBytes
	}
	sharedNeed := 0
	for _, ch := range spec.Channels {
		bytes := channelBytes(spec, ch)
		if arch.Interconnect.Type == "dma" {
			// Message-passing buffers live in the consumer's local store.
			local[mapping.Of(ch.DstTask)] += bytes
		} else {
			sharedNeed += bytes
		}
	}
	for pname, need := range local {
		p := arch.Processor(pname)
		if p == nil {
			continue
		}
		if p.LocalMemBytes > 0 && need > p.LocalMemBytes {
			return fmt.Errorf("cic: design constraint violated: %s needs %d bytes local memory, has %d",
				pname, need, p.LocalMemBytes)
		}
	}
	if arch.Interconnect.Type == "sharedmem" && sharedNeed > arch.SharedMemBytes {
		return fmt.Errorf("cic: design constraint violated: channels need %d bytes shared memory, have %d",
			sharedNeed, arch.SharedMemBytes)
	}
	return nil
}

// --- Synthesized code artifacts ---

func runtimeHeader(arch *ArchInfo) string {
	var b strings.Builder
	b.WriteString("/* cic_rt.h - synthesized run-time system interface */\n")
	fmt.Fprintf(&b, "/* target: %s, interconnect: %s */\n", arch.Name, arch.Interconnect.Type)
	b.WriteString("typedef struct cic_task { void (*init)(void); void (*go)(void); void (*wrapup)(void); int firings; } cic_task_t;\n")
	if arch.Interconnect.Type == "dma" {
		b.WriteString("void rt_dma_send(int chan, const int *tok, int n);\n")
		b.WriteString("void rt_dma_recv(int chan, int *tok, int n);\n")
	} else {
		b.WriteString("void rt_shm_send(int chan, const int *tok, int n); /* lock-protected FIFO */\n")
		b.WriteString("void rt_shm_recv(int chan, int *tok, int n);\n")
	}
	b.WriteString("void rt_run_static_order(cic_task_t **tasks, int n);\n")
	return b.String()
}

func genProcessorSource(spec *Spec, arch *ArchInfo, mapping *Mapping, proc *ProcessorInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* %s.c - synthesized by the CIC translator for %s (class %s, %.0f MHz) */\n",
		proc.Name, arch.Name, proc.Class, float64(proc.ClockHz)/1e6)
	b.WriteString("#include \"cic_rt.h\"\n\n")

	var myTasks []*TaskSpec
	for _, t := range spec.Tasks {
		if mapping.Of(t.Name) == proc.Name {
			myTasks = append(myTasks, t)
		}
	}
	sort.Slice(myTasks, func(i, j int) bool { return myTasks[i].Name < myTasks[j].Name })

	// Channel endpoints on this processor.
	chanID := map[string]int{}
	for i, ch := range spec.Channels {
		chanID[ch.Name] = i
	}
	for _, ch := range spec.Channels {
		onSrc := mapping.Of(ch.SrcTask) == proc.Name
		onDst := mapping.Of(ch.DstTask) == proc.Name
		if !onSrc && !onDst {
			continue
		}
		bytes := channelBytes(spec, ch)
		cross := mapping.Of(ch.SrcTask) != mapping.Of(ch.DstTask)
		switch {
		case !cross:
			fmt.Fprintf(&b, "/* channel %s: local FIFO, %d bytes */\nstatic int ch%d_buf[%d];\n",
				ch.Name, bytes, chanID[ch.Name], bytes/4)
		case arch.Interconnect.Type == "dma" && onDst:
			fmt.Fprintf(&b, "/* channel %s: DMA target buffer in local store, %d bytes */\nstatic int ch%d_buf[%d];\n",
				ch.Name, bytes, chanID[ch.Name], bytes/4)
		case arch.Interconnect.Type == "dma" && onSrc:
			fmt.Fprintf(&b, "/* channel %s: DMA descriptor (dest %s) */\nstatic dma_desc_t ch%d_desc;\n",
				ch.Name, mapping.Of(ch.DstTask), chanID[ch.Name])
		default:
			fmt.Fprintf(&b, "/* channel %s: shared-memory FIFO + lock %d */\nextern shm_fifo_t ch%d_fifo;\n",
				ch.Name, chanID[ch.Name], chanID[ch.Name])
		}
	}
	b.WriteString("\n")

	for _, t := range myTasks {
		fmt.Fprintf(&b, "/* task %s: %d firings, %d cycles/firing on %s */\n",
			t.Name, t.Firings, t.CyclesPerFiring[proc.Class], proc.Class)
		fmt.Fprintf(&b, "static void %s_init(void) { /* user init */ }\n", t.Name)
		fmt.Fprintf(&b, "static void %s_go(void) {\n", t.Name)
		for _, p := range t.In {
			ch := channelInto(spec, t.Name, p.Name)
			recv := "rt_shm_recv"
			if arch.Interconnect.Type == "dma" {
				recv = "rt_dma_recv"
			}
			fmt.Fprintf(&b, "    int %s[%d]; for (int i = 0; i < %d; i++) %s(%d, %s, %d);\n",
				p.Name, p.TokenInts, p.Rate, recv, chanID[ch.Name], p.Name, p.TokenInts)
		}
		b.WriteString("    /* user task body (target independent) */\n")
		for _, p := range t.Out {
			ch := channelFrom(spec, t.Name, p.Name)
			send := "rt_shm_send"
			if arch.Interconnect.Type == "dma" {
				send = "rt_dma_send"
			}
			fmt.Fprintf(&b, "    int %s_out[%d]; for (int i = 0; i < %d; i++) %s(%d, %s_out, %d);\n",
				p.Name, p.TokenInts, p.Rate, send, chanID[ch.Name], p.Name, p.TokenInts)
		}
		b.WriteString("}\n")
		fmt.Fprintf(&b, "static void %s_wrapup(void) { /* user wrapup */ }\n", t.Name)
		fmt.Fprintf(&b, "static cic_task_t %s_desc = { %s_init, %s_go, %s_wrapup, %d };\n\n",
			t.Name, t.Name, t.Name, t.Name, t.Firings)
	}

	b.WriteString("int main(void) {\n")
	fmt.Fprintf(&b, "    cic_task_t *tasks[%d] = {", len(myTasks))
	for i, t := range myTasks {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "&%s_desc", t.Name)
	}
	b.WriteString("};\n")
	fmt.Fprintf(&b, "    rt_run_static_order(tasks, %d); /* synthesized scheduler */\n", len(myTasks))
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

func channelInto(spec *Spec, task, port string) *ChannelSpec {
	for _, ch := range spec.Channels {
		if ch.DstTask == task && ch.DstPort == port {
			return ch
		}
	}
	panic(fmt.Sprintf("cic: no channel into %s.%s", task, port))
}

func channelFrom(spec *Spec, task, port string) *ChannelSpec {
	for _, ch := range spec.Channels {
		if ch.SrcTask == task && ch.SrcPort == port {
			return ch
		}
	}
	panic(fmt.Sprintf("cic: no channel from %s.%s", task, port))
}

// GeneratedLines counts non-blank synthesized source lines — the
// interface-code volume the translator saves the programmer.
func (tp *TargetProgram) GeneratedLines() int {
	n := 0
	for _, src := range tp.Generated {
		for _, ln := range strings.Split(src, "\n") {
			if strings.TrimSpace(ln) != "" {
				n++
			}
		}
	}
	return n
}

func (tp *TargetProgram) buildReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CIC translation of %q onto %q (%s)\n", tp.Spec.Name, tp.Arch.Name, tp.Arch.Interconnect.Type)
	for _, p := range tp.Arch.Processors {
		var names []string
		for _, t := range tp.Spec.Tasks {
			if tp.Mapping.Of(t.Name) == p.Name {
				names = append(names, t.Name)
			}
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  %s (%s): %s\n", p.Name, p.Class, strings.Join(names, ", "))
	}
	fmt.Fprintf(&b, "  synthesized %d lines of interface/runtime code\n", tp.GeneratedLines())
	return b.String()
}

// --- Executable model ---

// RunStats reports one execution of a target program.
type RunStats struct {
	Makespan sim.Time
	// Outputs collects each task's Emit stream.
	Outputs map[string][]int32
	// BusyTime is per-processor compute time.
	BusyTime map[string]sim.Time
	// BytesMoved counts cross-processor channel traffic.
	BytesMoved int
	// Firings counts completed firings per task.
	Firings map[string]int
}

// BuildPlatform converts the architecture file into a simulated
// platform.
func (a *ArchInfo) BuildPlatform(k *sim.Kernel) (*platform.Platform, error) {
	specs := make([]platform.CoreSpec, len(a.Processors))
	for i, p := range a.Processors {
		class, err := platform.ParsePEClass(p.Class)
		if err != nil {
			return nil, err
		}
		specs[i] = platform.CoreSpec{
			Name: p.Name, Class: class, Hz: p.ClockHz, L1Bytes: p.LocalMemBytes,
		}
	}
	var fabric platform.Fabric
	if a.Interconnect.Type == "dma" {
		fabric = noc.MeshFor(k, len(a.Processors))
	} else {
		fabric = noc.NewBus(k, sim.Time(a.Interconnect.HopLatencyNS)*sim.Nanosecond, a.Interconnect.BytesPerNS)
	}
	p := platform.New(k, a.Name, specs, fabric)
	p.SharedBytes = a.SharedMemBytes
	return p, nil
}

// Run executes the translated program on the event-driven platform
// model and returns its statistics. Identical Outputs across two
// architectures is the retargetability criterion of experiment E9.
func (tp *TargetProgram) Run() (*RunStats, error) {
	k := sim.NewKernel()
	plat, err := tp.Arch.BuildPlatform(k)
	if err != nil {
		return nil, err
	}
	procIdx := map[string]int{}
	for i, p := range tp.Arch.Processors {
		procIdx[p.Name] = i
	}
	stats := &RunStats{
		Outputs:  map[string][]int32{},
		BusyTime: map[string]sim.Time{},
		Firings:  map[string]int{},
	}

	// Runtime channels.
	queues := map[string]*sim.Queue{}
	locks := map[string]*sim.Resource{}
	for _, ch := range tp.Spec.Channels {
		queues[ch.Name] = k.NewQueue(ch.Name, ch.Depth)
		if tp.Arch.Interconnect.Type == "sharedmem" {
			locks[ch.Name] = k.NewResource("lock:"+ch.Name, 1)
		}
	}
	// One DMA engine per processor for dma targets.
	dmaRes := map[string]*sim.Resource{}
	if tp.Arch.Interconnect.Type == "dma" {
		for _, p := range tp.Arch.Processors {
			dmaRes[p.Name] = k.NewResource("dma:"+p.Name, 1)
		}
	}

	send := func(p *sim.Proc, t *TaskSpec, ch *ChannelSpec, tok []int32) {
		srcProc := tp.Mapping.Of(ch.SrcTask)
		dstProc := tp.Mapping.Of(ch.DstTask)
		bytes := len(tok) * 4
		if srcProc == dstProc {
			// Local FIFO: copy cost only.
			core := plat.Core(procIdx[srcProc])
			p.Delay(core.Cycles(int64(len(tok)) + 4))
			queues[ch.Name].Put(p, tok)
			return
		}
		stats.BytesMoved += bytes
		if tp.Arch.Interconnect.Type == "dma" {
			engine := dmaRes[srcProc]
			engine.Acquire(p)
			p.Delay(sim.Time(tp.Arch.Interconnect.DMASetupNS) * sim.Nanosecond)
			done := k.NewSignal()
			plat.Fabric.Transfer(procIdx[srcProc], procIdx[dstProc], bytes, func() { done.Broadcast() })
			done.Wait(p)
			engine.Release()
		} else {
			lock := locks[ch.Name]
			core := plat.Core(procIdx[srcProc])
			lock.Acquire(p)
			p.Delay(core.Cycles(tp.Arch.Interconnect.LockCycles))
			done := k.NewSignal()
			plat.Fabric.Transfer(procIdx[srcProc], procIdx[dstProc], bytes, func() { done.Broadcast() })
			done.Wait(p)
			lock.Release()
		}
		queues[ch.Name].Put(p, tok)
	}

	recv := func(p *sim.Proc, t *TaskSpec, ch *ChannelSpec) []int32 {
		tok := queues[ch.Name].Get(p).([]int32)
		dstProc := tp.Mapping.Of(ch.DstTask)
		srcProc := tp.Mapping.Of(ch.SrcTask)
		core := plat.Core(procIdx[dstProc])
		if srcProc == dstProc {
			p.Delay(core.Cycles(int64(len(tok)) + 4))
		} else if tp.Arch.Interconnect.Type == "sharedmem" {
			// Reader also takes the lock briefly.
			lock := locks[ch.Name]
			lock.Acquire(p)
			p.Delay(core.Cycles(tp.Arch.Interconnect.LockCycles))
			lock.Release()
		}
		return tok
	}

	// Per-processor core mutex: tasks on one processor interleave at
	// firing granularity under the synthesized static-order scheduler.
	coreRes := make([]*sim.Resource, len(plat.Cores))
	for i := range coreRes {
		coreRes[i] = k.NewResource(fmt.Sprintf("core%d", i), 1)
	}

	finished := 0
	for _, t := range tp.Spec.Tasks {
		t := t
		pname := tp.Mapping.Of(t.Name)
		proc := tp.Arch.Processor(pname)
		core := plat.Core(procIdx[pname])
		cycles := t.CyclesPerFiring[proc.Class]
		k.Spawn(t.Name, func(p *sim.Proc) {
			state := map[string]int32{}
			if t.Init != nil {
				ctx := &TaskCtx{in: map[string][]int32{}, out: map[string][][]int32{}, state: state}
				t.Init(ctx)
				stats.Outputs[t.Name] = append(stats.Outputs[t.Name], ctx.emit...)
			}
			for f := 0; f < t.Firings; f++ {
				ctx := &TaskCtx{Firing: f, in: map[string][]int32{}, out: map[string][][]int32{}, state: state}
				// Gather inputs.
				for _, port := range t.In {
					ch := channelInto(tp.Spec, t.Name, port.Name)
					var vals []int32
					for r := 0; r < port.Rate; r++ {
						vals = append(vals, recv(p, t, ch)...)
					}
					ctx.in[port.Name] = vals
				}
				// Compute.
				coreRes[core.ID].Acquire(p)
				t.Go(ctx)
				dur := core.Cycles(cycles)
				p.Delay(dur)
				stats.BusyTime[pname] += dur
				coreRes[core.ID].Release()
				// Scatter outputs.
				for _, port := range t.Out {
					ch := channelFrom(tp.Spec, t.Name, port.Name)
					toks := ctx.out[port.Name]
					if len(toks) != port.Rate {
						panic(fmt.Sprintf("cic: task %s wrote %d tokens on %s, declared rate %d",
							t.Name, len(toks), port.Name, port.Rate))
					}
					for _, tok := range toks {
						if len(tok) != port.TokenInts {
							panic(fmt.Sprintf("cic: task %s token width %d on %s, declared %d",
								t.Name, len(tok), port.Name, port.TokenInts))
						}
						send(p, t, ch, tok)
					}
				}
				stats.Outputs[t.Name] = append(stats.Outputs[t.Name], ctx.emit...)
				stats.Firings[t.Name]++
				if p.Now() > stats.Makespan {
					stats.Makespan = p.Now()
				}
			}
			if t.Wrapup != nil {
				ctx := &TaskCtx{in: map[string][]int32{}, out: map[string][][]int32{}, state: state}
				t.Wrapup(ctx)
				stats.Outputs[t.Name] = append(stats.Outputs[t.Name], ctx.emit...)
			}
			finished++
		})
	}
	k.Run()
	if finished != len(tp.Spec.Tasks) {
		var stuck []string
		for _, t := range tp.Spec.Tasks {
			if stats.Firings[t.Name] < t.Firings {
				stuck = append(stuck, fmt.Sprintf("%s(%d/%d)", t.Name, stats.Firings[t.Name], t.Firings))
			}
		}
		return nil, fmt.Errorf("cic: execution deadlocked; incomplete tasks: %s", strings.Join(stuck, ", "))
	}
	return stats, nil
}
