package iss

import (
	"testing"

	"mpsockit/internal/isa"
)

func run(t *testing.T, src string, maxInstr uint64) *CPU {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ram := NewRAM(1 << 16)
	ram.LoadProgram(p)
	c := New(0, ram, isa.TimingRISC())
	c.PC = p.Entry
	c.Run(maxInstr)
	if c.Err != nil {
		t.Fatalf("cpu error: %v", c.Err)
	}
	if !c.Halted {
		t.Fatalf("cpu did not halt within %d instructions", maxInstr)
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
		addi r1, r0, 21
		addi r2, r0, 2
		mul  r3, r1, r2     # 42
		addi r4, r0, -7
		div  r5, r3, r4     # -6
		rem  r6, r3, r4     # 0
		sub  r7, r3, r1     # 21
		halt
	`, 100)
	if got := int32(c.Regs[3]); got != 42 {
		t.Fatalf("mul result %d, want 42", got)
	}
	if got := int32(c.Regs[5]); got != -6 {
		t.Fatalf("div result %d, want -6", got)
	}
	if got := int32(c.Regs[6]); got != 0 {
		t.Fatalf("rem result %d, want 0", got)
	}
	if got := int32(c.Regs[7]); got != 21 {
		t.Fatalf("sub result %d, want 21", got)
	}
}

func TestDivideByZeroDefined(t *testing.T) {
	c := run(t, `
		addi r1, r0, 5
		div  r2, r1, r0
		rem  r3, r1, r0
		halt
	`, 10)
	if c.Regs[2] != 0xffffffff {
		t.Fatalf("div by zero = %#x, want all ones", c.Regs[2])
	}
	if c.Regs[3] != 5 {
		t.Fatalf("rem by zero = %d, want dividend", c.Regs[3])
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..100 = 5050
	c := run(t, `
		addi r1, r0, 100   # i
		addi r2, r0, 0     # sum
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, 1000)
	if c.Regs[2] != 5050 {
		t.Fatalf("sum = %d, want 5050", c.Regs[2])
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
		la   r1, buf
		li   r2, 0x11223344
		sw   r2, 0(r1)
		lw   r3, 0(r1)
		lb   r4, 0(r1)     # little-endian low byte: 0x44
		lb   r5, 3(r1)     # 0x11
		addi r6, r0, -1
		sb   r6, 4(r1)
		lb   r7, 4(r1)     # sign-extended -1
		halt
	buf:
		.space 8
	`, 100)
	if c.Regs[3] != 0x11223344 {
		t.Fatalf("lw = %#x", c.Regs[3])
	}
	if c.Regs[4] != 0x44 || c.Regs[5] != 0x11 {
		t.Fatalf("lb bytes = %#x %#x", c.Regs[4], c.Regs[5])
	}
	if int32(c.Regs[7]) != -1 {
		t.Fatalf("lb sign extension = %d, want -1", int32(c.Regs[7]))
	}
}

func TestFunctionCall(t *testing.T) {
	// double(x) via jal/jr; result in v0.
	c := run(t, `
		addi a0, r0, 21
		jal  double
		move s0, v0
		halt
	double:
		add  v0, a0, a0
		jr   ra
	`, 100)
	if c.Regs[16] != 42 {
		t.Fatalf("call result %d, want 42", c.Regs[16])
	}
}

func TestRecursiveFactorial(t *testing.T) {
	// Stack-based recursive factorial(6) = 720.
	c := run(t, `
		li   sp, 0x8000
		addi a0, r0, 6
		jal  fact
		halt
	fact:
		addi sp, sp, -8
		sw   ra, 4(sp)
		sw   a0, 0(sp)
		addi t0, r0, 1
		bge  t0, a0, base    # if 1 >= n
		addi a0, a0, -1
		jal  fact
		lw   a0, 0(sp)
		mul  v0, v0, a0
		j    done
	base:
		addi v0, r0, 1
	done:
		lw   ra, 4(sp)
		addi sp, sp, 8
		jr   ra
	`, 10000)
	if c.Regs[RegV0] != 720 {
		t.Fatalf("fact(6) = %d, want 720", c.Regs[RegV0])
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c := run(t, `
		addi r0, r0, 99
		addi r1, r0, 1
		halt
	`, 10)
	if c.Regs[0] != 0 {
		t.Fatalf("r0 = %d, want 0", c.Regs[0])
	}
	if c.Regs[1] != 1 {
		t.Fatalf("r1 = %d", c.Regs[1])
	}
}

func TestShiftsAndCompares(t *testing.T) {
	c := run(t, `
		addi r1, r0, 1
		slli r2, r1, 10     # 1024
		addi r3, r0, -16
		srai r4, r3, 2      # -4
		srli r5, r3, 28     # 15
		slt  r6, r3, r1     # -16 < 1 -> 1
		sltu r7, r3, r1     # 0xfffffff0 < 1 unsigned -> 0
		halt
	`, 100)
	if c.Regs[2] != 1024 {
		t.Fatalf("slli = %d", c.Regs[2])
	}
	if int32(c.Regs[4]) != -4 {
		t.Fatalf("srai = %d", int32(c.Regs[4]))
	}
	if c.Regs[5] != 15 {
		t.Fatalf("srli = %d", c.Regs[5])
	}
	if c.Regs[6] != 1 || c.Regs[7] != 0 {
		t.Fatalf("slt/sltu = %d/%d", c.Regs[6], c.Regs[7])
	}
}

func TestEcallHandler(t *testing.T) {
	p, err := isa.Assemble(`
		addi v0, r0, 1     # service 1
		addi a0, r0, 77
		ecall
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	ram := NewRAM(1 << 12)
	ram.LoadProgram(p)
	c := New(0, ram, isa.TimingRISC())
	var printed []uint32
	c.OnEcall = func(c *CPU) int64 {
		if c.Regs[RegV0] == 1 {
			printed = append(printed, c.Regs[RegA0])
		}
		return 10
	}
	c.Run(100)
	if len(printed) != 1 || printed[0] != 77 {
		t.Fatalf("ecall saw %v", printed)
	}
}

func TestEcallWithoutHandlerFaults(t *testing.T) {
	p, _ := isa.Assemble("ecall\nhalt")
	ram := NewRAM(1 << 12)
	ram.LoadProgram(p)
	c := New(0, ram, nil)
	c.Run(10)
	if c.Err == nil {
		t.Fatal("ecall without handler should fault")
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	ram := NewRAM(64)
	ram.Data[3] = 0xff // garbage opcode
	c := New(0, ram, nil)
	c.Run(10)
	if c.Err == nil || !c.Halted {
		t.Fatal("illegal instruction should halt with error")
	}
}

func TestInterruptDelivery(t *testing.T) {
	p, err := isa.Assemble(`
		.entry main
	handler:
		addi s1, s1, 1      # count interrupts
		jr   k1             # return (k1 holds interrupted PC)
	main:
	spin:
		addi s0, s0, 1
		blt  s0, t9, spin
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	ram := NewRAM(1 << 12)
	ram.LoadProgram(p)
	c := New(0, ram, isa.TimingRISC())
	c.PC = p.Entry
	c.Regs[25] = 1000 // t9: spin limit
	c.IntVector = p.Symbols["handler"]
	c.IntEnabled = true
	for i := 0; i < 200 && !c.Halted; i++ {
		if i == 50 {
			c.RaiseInterrupt()
		}
		c.Step()
	}
	if c.Regs[17] != 1 {
		t.Fatalf("handler ran %d times, want 1", c.Regs[17])
	}
	if c.IntTaken != 1 {
		t.Fatalf("IntTaken = %d", c.IntTaken)
	}
}

func TestTimingAccumulation(t *testing.T) {
	src := `
		addi r1, r0, 1
		mul  r2, r1, r1
		halt
	`
	p, _ := isa.Assemble(src)
	runWith := func(tm *isa.Timing) uint64 {
		ram := NewRAM(1 << 12)
		ram.LoadProgram(p)
		c := New(0, ram, tm)
		c.Run(10)
		return c.Cycles
	}
	risc := runWith(isa.TimingRISC())
	dsp := runWith(isa.TimingDSP())
	if dsp >= risc {
		t.Fatalf("DSP (%d cycles) should beat RISC (%d) on multiply code", dsp, risc)
	}
}

func TestSaveRestore(t *testing.T) {
	p, _ := isa.Assemble(`
	loop:
		addi r1, r1, 1
		j    loop
	`)
	ram := NewRAM(1 << 12)
	ram.LoadProgram(p)
	c := New(0, ram, isa.TimingRISC())
	for i := 0; i < 10; i++ {
		c.Step()
	}
	snap := c.Save()
	r1 := c.Regs[1]
	for i := 0; i < 10; i++ {
		c.Step()
	}
	if c.Regs[1] == r1 {
		t.Fatal("cpu did not advance")
	}
	c.Restore(snap)
	if c.Regs[1] != r1 || c.PC != snap.PC || c.Cycles != snap.Cycles {
		t.Fatal("restore did not reinstate state")
	}
	// Replay must be bit-identical (determinism for section VII).
	c.Step()
	afterOne := c.Regs[1]
	c.Restore(snap)
	c.Step()
	if c.Regs[1] != afterOne {
		t.Fatal("replay diverged")
	}
}

func TestMemPenaltyHook(t *testing.T) {
	p, _ := isa.Assemble(`
		la r1, buf
		lw r2, 0(r1)
		halt
	buf: .word 5
	`)
	ram := NewRAM(1 << 12)
	ram.LoadProgram(p)
	c := New(0, ram, isa.TimingRISC())
	base := func() uint64 {
		cc := New(0, ram, isa.TimingRISC())
		cc.Run(10)
		return cc.Cycles
	}()
	c.MemPenalty = func(addr uint32, write bool) int64 { return 50 }
	c.Run(10)
	if c.Cycles != base+50 {
		t.Fatalf("cycles with penalty %d, want %d", c.Cycles, base+50)
	}
}

func TestTraceHook(t *testing.T) {
	p, _ := isa.Assemble("addi r1, r0, 1\nhalt")
	ram := NewRAM(256)
	ram.LoadProgram(p)
	c := New(0, ram, nil)
	var pcs []uint32
	c.Trace = func(c *CPU, pc uint32, ins isa.Instr) { pcs = append(pcs, pc) }
	c.Run(10)
	if len(pcs) != 2 || pcs[0] != 0 || pcs[1] != 4 {
		t.Fatalf("trace = %v", pcs)
	}
}
