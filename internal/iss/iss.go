// Package iss implements the MR32 instruction-set simulator: a
// cycle-approximate interpreter over the encodings in internal/isa.
// One CPU instance models one processing element; the virtual
// platform (internal/vp) composes several CPUs with peripherals on
// the discrete-event kernel. The ISS is deliberately side-effect-free
// outside its Bus so that whole-system state can be snapshotted and
// restored — the mechanism behind the paper's section VII
// deterministic, non-intrusive debugging claims.
package iss

import (
	"encoding/binary"
	"fmt"

	"mpsockit/internal/isa"
)

// Bus is the CPU's window onto memory and memory-mapped peripherals.
// The core ID travels with every access so protection and watchpoint
// layers can attribute it.
type Bus interface {
	Load(core int, addr uint32, size int) (uint32, error)
	Store(core int, addr uint32, val uint32, size int) error
}

// RAM is a flat little-endian memory implementing Bus without
// protection — the single-core test fixture.
type RAM struct {
	Data []byte
}

// NewRAM returns a RAM of the given size.
func NewRAM(size int) *RAM { return &RAM{Data: make([]byte, size)} }

// Load implements Bus.
func (r *RAM) Load(core int, addr uint32, size int) (uint32, error) {
	if int(addr)+size > len(r.Data) {
		return 0, fmt.Errorf("iss: load out of bounds at 0x%08x", addr)
	}
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(r.Data[int(addr)+i])
	}
	return v, nil
}

// Store implements Bus.
func (r *RAM) Store(core int, addr uint32, val uint32, size int) error {
	if int(addr)+size > len(r.Data) {
		return fmt.Errorf("iss: store out of bounds at 0x%08x", addr)
	}
	for i := 0; i < size; i++ {
		r.Data[int(addr)+i] = byte(val)
		val >>= 8
	}
	return nil
}

// LoadProgram copies a program image into RAM at offset 0.
func (r *RAM) LoadProgram(p *isa.Program) {
	copy(r.Data, p.Image)
}

// Registers by convention (MIPS-flavoured).
const (
	RegZero = 0
	RegV0   = 2
	RegV1   = 3
	RegA0   = 4
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
	RegK0   = 26
	RegK1   = 27
	RegSP   = 29
	RegRA   = 31
)

// CPU is one MR32 hardware thread.
type CPU struct {
	ID   int
	Regs [32]uint32
	PC   uint32
	Bus  Bus
	// Timing selects the per-PE-class cycle table. Nil means every
	// instruction costs one cycle (pure functional mode).
	Timing *isa.Timing

	Halted bool
	Err    error

	// Cycles and Instret accumulate consumed cycles and retired
	// instructions.
	Cycles  uint64
	Instret uint64

	// Interrupt state: when enabled and pending, the CPU saves the
	// next PC in k1 and vectors to IntVector before the next fetch.
	IntEnabled bool
	IntPending bool
	IntVector  uint32
	// IntTaken counts taken interrupts.
	IntTaken uint64

	// LocalFetch, when non-nil, backs instruction fetches for
	// addresses [0, len(LocalFetch)) directly, bypassing the Bus
	// interface call. Owners whose bus routes that address range to
	// hook-free local memory (the virtual platform's per-core local
	// stores) set it; fetches outside the window still go through the
	// Bus, so faults and memory-mapped regions behave identically.
	LocalFetch []byte

	// dcache is the direct-mapped decode cache, indexed by word PC.
	// Entries are validated against the fetched raw word (Instr.Raw),
	// so self-modifying code can never observe a stale decode.
	dcache []isa.Instr

	// OnEcall handles ECALL instructions; the service number travels
	// in v0 and arguments in a0..a3. It returns extra cycles charged.
	// A nil handler makes ECALL illegal.
	OnEcall func(c *CPU) int64
	// MemPenalty, when set, charges extra cycles per data access (the
	// cache model hook).
	MemPenalty func(addr uint32, write bool) int64
	// Trace, when set, observes every retired instruction.
	Trace func(c *CPU, pc uint32, ins isa.Instr)
}

// dcacheSize is the decode cache's entry count (power of two); 512
// entries cover 2 KiB of straight-line code.
const dcacheSize = 512

// New returns a CPU with the given ID wired to bus.
func New(id int, bus Bus, timing *isa.Timing) *CPU {
	return &CPU{ID: id, Bus: bus, Timing: timing, dcache: make([]isa.Instr, dcacheSize)}
}

// State is a snapshot of the CPU-architectural state (memory is owned
// by the Bus and snapshotted by the virtual platform).
type State struct {
	Regs       [32]uint32
	PC         uint32
	Halted     bool
	Cycles     uint64
	Instret    uint64
	IntEnabled bool
	IntPending bool
	IntVector  uint32
	IntTaken   uint64
}

// Save captures the architectural state.
func (c *CPU) Save() State {
	return State{
		Regs: c.Regs, PC: c.PC, Halted: c.Halted,
		Cycles: c.Cycles, Instret: c.Instret,
		IntEnabled: c.IntEnabled, IntPending: c.IntPending,
		IntVector: c.IntVector, IntTaken: c.IntTaken,
	}
}

// Restore reinstates a previously saved state.
func (c *CPU) Restore(s State) {
	c.Regs = s.Regs
	c.PC = s.PC
	c.Halted = s.Halted
	c.Cycles = s.Cycles
	c.Instret = s.Instret
	c.IntEnabled = s.IntEnabled
	c.IntPending = s.IntPending
	c.IntVector = s.IntVector
	c.IntTaken = s.IntTaken
}

// RaiseInterrupt marks an interrupt pending (level-triggered until
// taken).
func (c *CPU) RaiseInterrupt() { c.IntPending = true }

// Reset zeroes the architectural state — registers, PC, halted flag,
// cycle/instruction/interrupt counters, pending error — returning the
// CPU to its just-constructed condition. The wiring (Bus, Timing,
// LocalFetch, handlers) is untouched, and so is the decode cache: its
// entries are validated against the fetched raw word on every hit, so
// a warm cache is observably identical to a cold one.
func (c *CPU) Reset() {
	c.Restore(State{})
	c.Err = nil
}

func (c *CPU) fail(err error) int64 {
	c.Err = err
	c.Halted = true
	return 1
}

// Step executes one instruction (or takes one pending interrupt) and
// returns the cycles it consumed. A halted CPU consumes nothing.
func (c *CPU) Step() int64 {
	if c.Halted {
		return 0
	}
	if c.IntEnabled && c.IntPending {
		c.IntPending = false
		c.IntEnabled = false
		c.Regs[RegK1] = c.PC
		c.PC = c.IntVector
		c.IntTaken++
		c.Cycles += 4
		return 4
	}
	var raw uint32
	if end := c.PC + 4; c.LocalFetch != nil && end > c.PC && end <= uint32(len(c.LocalFetch)) {
		raw = binary.LittleEndian.Uint32(c.LocalFetch[c.PC:])
	} else {
		var err error
		raw, err = c.Bus.Load(c.ID, c.PC, 4)
		if err != nil {
			return c.fail(fmt.Errorf("fetch at 0x%08x: %w", c.PC, err))
		}
	}
	if len(c.dcache) == 0 { // zero-value CPU constructed without New
		c.dcache = make([]isa.Instr, dcacheSize)
	}
	var ins isa.Instr
	if d := &c.dcache[(c.PC>>2)&(dcacheSize-1)]; d.Raw == raw && d.Valid {
		ins = *d
	} else {
		ins = isa.Decode(raw)
		if !ins.Valid {
			return c.fail(fmt.Errorf("illegal instruction 0x%08x at 0x%08x", raw, c.PC))
		}
		*d = ins
	}
	if c.Trace != nil {
		c.Trace(c, c.PC, ins)
	}
	cycles := int64(1)
	if c.Timing != nil {
		cycles = c.Timing.Cost(ins)
	}
	nextPC := c.PC + 4

	reg := func(i int) uint32 { return c.Regs[i] }
	setReg := func(i int, v uint32) {
		if i != RegZero {
			c.Regs[i] = v
		}
	}

	switch ins.Op {
	case isa.OpR:
		a, b := reg(ins.Rs1), reg(ins.Rs2)
		var v uint32
		switch ins.Fn {
		case isa.FnADD:
			v = a + b
		case isa.FnSUB:
			v = a - b
		case isa.FnMUL:
			v = uint32(int32(a) * int32(b))
		case isa.FnDIV:
			if b == 0 {
				v = 0xffffffff
			} else {
				v = uint32(int32(a) / int32(b))
			}
		case isa.FnREM:
			if b == 0 {
				v = a
			} else {
				v = uint32(int32(a) % int32(b))
			}
		case isa.FnAND:
			v = a & b
		case isa.FnOR:
			v = a | b
		case isa.FnXOR:
			v = a ^ b
		case isa.FnSLL:
			v = a << (b & 31)
		case isa.FnSRL:
			v = a >> (b & 31)
		case isa.FnSRA:
			v = uint32(int32(a) >> (b & 31))
		case isa.FnSLT:
			if int32(a) < int32(b) {
				v = 1
			}
		case isa.FnSLTU:
			if a < b {
				v = 1
			}
		case isa.FnJR:
			nextPC = a
		case isa.FnJALR:
			setReg(ins.Rd, c.PC+4)
			nextPC = a
		}
		if ins.Fn != isa.FnJR && ins.Fn != isa.FnJALR {
			setReg(ins.Rd, v)
		}
	case isa.OpADDI:
		setReg(ins.Rd, reg(ins.Rs1)+uint32(ins.Imm))
	case isa.OpANDI:
		setReg(ins.Rd, reg(ins.Rs1)&uint32(ins.Imm))
	case isa.OpORI:
		setReg(ins.Rd, reg(ins.Rs1)|uint32(ins.Imm))
	case isa.OpXORI:
		setReg(ins.Rd, reg(ins.Rs1)^uint32(ins.Imm))
	case isa.OpSLTI:
		var v uint32
		if int32(reg(ins.Rs1)) < ins.Imm {
			v = 1
		}
		setReg(ins.Rd, v)
	case isa.OpSLLI:
		setReg(ins.Rd, reg(ins.Rs1)<<(uint32(ins.Imm)&31))
	case isa.OpSRLI:
		setReg(ins.Rd, reg(ins.Rs1)>>(uint32(ins.Imm)&31))
	case isa.OpSRAI:
		setReg(ins.Rd, uint32(int32(reg(ins.Rs1))>>(uint32(ins.Imm)&31)))
	case isa.OpLUI:
		setReg(ins.Rd, uint32(ins.Imm)<<16)
	case isa.OpLW, isa.OpLB:
		addr := reg(ins.Rs1) + uint32(ins.Imm)
		size := 4
		if ins.Op == isa.OpLB {
			size = 1
		}
		v, err := c.Bus.Load(c.ID, addr, size)
		if err != nil {
			return c.fail(err)
		}
		if ins.Op == isa.OpLB && v&0x80 != 0 {
			v |= 0xffffff00
		}
		setReg(ins.Rd, v)
		if c.MemPenalty != nil {
			cycles += c.MemPenalty(addr, false)
		}
	case isa.OpSW, isa.OpSB:
		addr := reg(ins.Rs1) + uint32(ins.Imm)
		size := 4
		if ins.Op == isa.OpSB {
			size = 1
		}
		if err := c.Bus.Store(c.ID, addr, reg(ins.Rd), size); err != nil {
			return c.fail(err)
		}
		if c.MemPenalty != nil {
			cycles += c.MemPenalty(addr, true)
		}
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE:
		a, b := reg(ins.Rd), reg(ins.Rs1)
		taken := false
		switch ins.Op {
		case isa.OpBEQ:
			taken = a == b
		case isa.OpBNE:
			taken = a != b
		case isa.OpBLT:
			taken = int32(a) < int32(b)
		case isa.OpBGE:
			taken = int32(a) >= int32(b)
		}
		if taken {
			nextPC = uint32(int64(c.PC) + 4 + int64(ins.Imm)*4)
		}
	case isa.OpJ:
		nextPC = uint32(int64(c.PC) + 4 + int64(ins.Imm)*4)
	case isa.OpJAL:
		setReg(RegRA, c.PC+4)
		nextPC = uint32(int64(c.PC) + 4 + int64(ins.Imm)*4)
	case isa.OpECALL:
		if c.OnEcall == nil {
			return c.fail(fmt.Errorf("ecall with no handler at 0x%08x", c.PC))
		}
		c.PC = nextPC // handler may overwrite (e.g. interrupt return)
		cycles += c.OnEcall(c)
		c.Cycles += uint64(cycles)
		c.Instret++
		return cycles
	case isa.OpHALT:
		c.Halted = true
	}

	c.PC = nextPC
	c.Cycles += uint64(cycles)
	c.Instret++
	return cycles
}

// StepBurst executes up to max instructions back-to-back and returns
// the number retired together with the cycles they consumed. It is the
// temporally-decoupled fast path of the virtual platform: the caller
// accounts the whole burst's time as one kernel event instead of one
// per instruction. The burst ends early when the CPU halts (including
// on an execution fault).
func (c *CPU) StepBurst(max int) (retired int, cycles int64) {
	for retired < max && !c.Halted {
		cy := c.Step()
		if cy <= 0 {
			cy = 1
		}
		cycles += cy
		retired++
	}
	return retired, cycles
}

// Run steps until the CPU halts or maxInstr instructions retire. It
// returns the number of instructions retired in this call.
func (c *CPU) Run(maxInstr uint64) uint64 {
	start := c.Instret
	for !c.Halted && c.Instret-start < maxInstr {
		c.Step()
	}
	return c.Instret - start
}
