// Package script implements the scriptable debug framework of the
// paper's section VII: "Using a TCL based scripting language, the
// control and inspection of hardware and software can be automated.
// This scripting capability allows implementing system level software
// assertions, without changing the software code."
//
// The language is a small TCL-flavoured command language: one command
// per line, whitespace-separated words, $variable substitution, and
// brace-delimited blocks that attach scripts to watchpoints.
//
// Commands:
//
//	set NAME VALUE            define a variable
//	echo WORDS...             append a line to the output
//	run N(us|ms|ns)           advance virtual time (top level only)
//	suspend | resume          whole-system suspension control
//	break CORE SYM|ADDR       arm a PC breakpoint
//	step CORE [N]             step a suspended core
//	watch write|read|rw LO [HI]   arm a memory watchpoint (prints id)
//	onwatch ID { SCRIPT }     run SCRIPT on each hit of watch ID
//	assert A OP B             record a violation when false
//	print REF                 echo a value reference
//
// Value references: integer literals, $vars, and state refs
// reg:CORE:N, pc:CORE, mem:ADDR (shared memory word), hits:WATCHID,
// console:CORE (number of words printed). Inside onwatch blocks the
// variables $hit_core, $hit_addr and $hit_value are bound.
package script

import (
	"fmt"
	"strconv"
	"strings"

	"mpsockit/internal/debug"
	"mpsockit/internal/sim"
)

// Interp executes debug scripts against a Debugger.
type Interp struct {
	D *debug.Debugger
	// Symbols resolves program symbols for `break`.
	Symbols map[string]uint32
	// Out collects echo/print lines.
	Out []string
	// Violations mirrors assertion failures (also recorded on the
	// debugger).
	Violations []string

	vars      map[string]string
	watches   map[int64]*debug.MemWatch
	inHandler bool
}

// New returns a script interpreter bound to d.
func New(d *debug.Debugger) *Interp {
	return &Interp{
		D:       d,
		Symbols: map[string]uint32{},
		vars:    map[string]string{},
		watches: map[int64]*debug.MemWatch{},
	}
}

// Run executes a script.
func (in *Interp) Run(src string) error {
	cmds, err := parse(src)
	if err != nil {
		return err
	}
	for _, c := range cmds {
		if err := in.exec(c); err != nil {
			return fmt.Errorf("script: line %d: %w", c.line, err)
		}
	}
	return nil
}

// command is one parsed command: words plus optional brace block.
type command struct {
	line  int
	words []string
	block string
}

// parse splits the script into commands, honouring brace blocks that
// may span lines.
func parse(src string) ([]command, error) {
	var cmds []command
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		ln := strings.TrimSpace(lines[i])
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		lineNo := i + 1
		// Collect a brace block if the line opens one.
		if idx := strings.Index(ln, "{"); idx >= 0 {
			head := strings.TrimSpace(ln[:idx])
			rest := ln[idx:]
			depth := 0
			var block strings.Builder
			done := false
			for {
				for _, ch := range rest {
					switch ch {
					case '{':
						depth++
						if depth == 1 {
							continue
						}
					case '}':
						depth--
						if depth == 0 {
							done = true
							continue
						}
					}
					if depth >= 1 && !done {
						block.WriteRune(ch)
					}
				}
				if done {
					break
				}
				block.WriteString("\n")
				i++
				if i >= len(lines) {
					return nil, fmt.Errorf("script: line %d: unterminated block", lineNo)
				}
				rest = lines[i]
			}
			cmds = append(cmds, command{line: lineNo, words: strings.Fields(head), block: block.String()})
			continue
		}
		cmds = append(cmds, command{line: lineNo, words: strings.Fields(ln)})
	}
	return cmds, nil
}

// subst expands $vars in a word.
func (in *Interp) subst(w string) string {
	if !strings.Contains(w, "$") {
		return w
	}
	out := w
	for name, val := range in.vars {
		out = strings.ReplaceAll(out, "$"+name, val)
	}
	return out
}

// value resolves a reference to an integer.
func (in *Interp) value(w string) (int64, error) {
	w = in.subst(w)
	if v, err := strconv.ParseInt(w, 0, 64); err == nil {
		return v, nil
	}
	parts := strings.Split(w, ":")
	switch parts[0] {
	case "reg":
		if len(parts) != 3 {
			return 0, fmt.Errorf("want reg:CORE:N, got %q", w)
		}
		core, err1 := strconv.Atoi(parts[1])
		reg, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return 0, fmt.Errorf("bad reg ref %q", w)
		}
		return int64(in.D.Reg(core, reg)), nil
	case "pc":
		core, err := strconv.Atoi(parts[1])
		if err != nil {
			return 0, fmt.Errorf("bad pc ref %q", w)
		}
		return int64(in.D.PC(core)), nil
	case "mem":
		addr, err := strconv.ParseUint(parts[1], 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad mem ref %q", w)
		}
		return int64(in.D.SharedWord(uint32(addr))), nil
	case "hits":
		id, err := strconv.ParseInt(parts[1], 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad hits ref %q", w)
		}
		watch, ok := in.watches[id]
		if !ok {
			return 0, fmt.Errorf("no watch %d", id)
		}
		return int64(watch.Hits), nil
	case "console":
		core, err := strconv.Atoi(parts[1])
		if err != nil {
			return 0, fmt.Errorf("bad console ref %q", w)
		}
		return int64(len(in.D.VP.Console[core])), nil
	}
	return 0, fmt.Errorf("cannot resolve %q", w)
}

func (in *Interp) exec(c command) error {
	if len(c.words) == 0 {
		return nil
	}
	cmd := c.words[0]
	args := c.words[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d args, got %d", cmd, n, len(args))
		}
		return nil
	}
	switch cmd {
	case "set":
		if err := need(2); err != nil {
			return err
		}
		in.vars[args[0]] = in.subst(args[1])
	case "echo":
		var parts []string
		for _, a := range args {
			parts = append(parts, in.subst(a))
		}
		in.Out = append(in.Out, strings.Join(parts, " "))
	case "run":
		if in.inHandler {
			return fmt.Errorf("run is not allowed inside onwatch handlers")
		}
		if err := need(1); err != nil {
			return err
		}
		d, err := parseDuration(in.subst(args[0]))
		if err != nil {
			return err
		}
		in.D.VP.K.RunFor(d)
	case "suspend":
		in.D.VP.Suspend()
	case "resume":
		in.D.Continue()
	case "break":
		if err := need(2); err != nil {
			return err
		}
		core, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad core %q", args[0])
		}
		addr, err := in.resolveAddr(args[1])
		if err != nil {
			return err
		}
		in.D.AddBreakpoint(core, addr)
	case "step":
		core, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad core %q", args[0])
		}
		n := 1
		if len(args) > 1 {
			n, err = strconv.Atoi(args[1])
			if err != nil {
				return fmt.Errorf("bad count %q", args[1])
			}
		}
		for i := 0; i < n; i++ {
			if err := in.D.VP.StepCore(core); err != nil {
				return err
			}
		}
	case "watch":
		if len(args) < 2 {
			return fmt.Errorf("watch wants MODE LO [HI]")
		}
		mode := args[0]
		lo64, err := in.value(args[1])
		if err != nil {
			return err
		}
		hi64 := lo64 + 3
		if len(args) > 2 {
			hi64, err = in.value(args[2])
			if err != nil {
				return err
			}
		}
		onR := mode == "read" || mode == "rw"
		onW := mode == "write" || mode == "rw"
		if !onR && !onW {
			return fmt.Errorf("watch mode must be read, write or rw")
		}
		w := in.D.WatchMem(uint32(lo64), uint32(hi64), onR, onW, -1)
		w.Handler = func(d *debug.Debugger, r debug.StopReason) {} // count-only until onwatch
		in.watches[int64(w.ID)] = w
		in.Out = append(in.Out, fmt.Sprintf("watch %d", w.ID))
	case "onwatch":
		if len(args) != 1 || c.block == "" {
			return fmt.Errorf("onwatch wants ID { SCRIPT }")
		}
		id, err := strconv.ParseInt(in.subst(args[0]), 0, 64)
		if err != nil {
			return fmt.Errorf("bad watch id %q", args[0])
		}
		w, ok := in.watches[id]
		if !ok {
			return fmt.Errorf("no watch %d", id)
		}
		body := c.block
		w.Handler = func(d *debug.Debugger, r debug.StopReason) {
			saved := in.inHandler
			in.inHandler = true
			in.vars["hit_core"] = strconv.Itoa(r.Core)
			in.vars["hit_addr"] = fmt.Sprintf("0x%08x", r.Addr)
			in.vars["hit_value"] = strconv.FormatUint(uint64(r.Value), 10)
			if err := in.Run(body); err != nil {
				in.Violations = append(in.Violations, "handler error: "+err.Error())
			}
			in.inHandler = saved
		}
	case "assert":
		if err := need(3); err != nil {
			return err
		}
		a, err := in.value(args[0])
		if err != nil {
			return err
		}
		b, err := in.value(args[2])
		if err != nil {
			return err
		}
		ok, err := compare(a, in.subst(args[1]), b)
		if err != nil {
			return err
		}
		if !ok {
			v := fmt.Sprintf("assert %s %s %s failed (%d vs %d) at %v",
				args[0], args[1], args[2], a, b, in.D.VP.K.Now())
			in.Violations = append(in.Violations, v)
			in.D.Violations = append(in.D.Violations, v)
		}
	case "print":
		if err := need(1); err != nil {
			return err
		}
		v, err := in.value(args[0])
		if err != nil {
			return err
		}
		in.Out = append(in.Out, fmt.Sprintf("%s = %d", args[0], v))
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

func (in *Interp) resolveAddr(w string) (uint32, error) {
	w = in.subst(w)
	if v, err := strconv.ParseUint(w, 0, 32); err == nil {
		return uint32(v), nil
	}
	if addr, ok := in.Symbols[w]; ok {
		return addr, nil
	}
	return 0, fmt.Errorf("unknown symbol %q", w)
}

func parseDuration(s string) (sim.Time, error) {
	mul := sim.Nanosecond
	switch {
	case strings.HasSuffix(s, "us"):
		mul = sim.Microsecond
		s = strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		mul = sim.Millisecond
		s = strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "ns"):
		s = strings.TrimSuffix(s, "ns")
	default:
		return 0, fmt.Errorf("duration %q needs a ns/us/ms suffix", s)
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return sim.Time(v) * mul, nil
}

func compare(a int64, op string, b int64) (bool, error) {
	switch op {
	case "==":
		return a == b, nil
	case "!=":
		return a != b, nil
	case "<":
		return a < b, nil
	case "<=":
		return a <= b, nil
	case ">":
		return a > b, nil
	case ">=":
		return a >= b, nil
	}
	return false, fmt.Errorf("unknown comparison %q", op)
}
