package script

import (
	"strings"
	"testing"

	"mpsockit/internal/debug"
	"mpsockit/internal/isa"
	"mpsockit/internal/sim"
	"mpsockit/internal/vp"
)

func session(t *testing.T, cores int, src string) (*Interp, *vp.VP) {
	t.Helper()
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	v := vp.New(k, vp.DefaultConfig(cores))
	for c := 0; c < cores; c++ {
		v.LoadProgram(c, prog)
	}
	d := debug.New(v)
	in := New(d)
	in.Symbols = prog.Symbols
	v.Start()
	return in, v
}

func TestSetEchoPrint(t *testing.T) {
	in, _ := session(t, 1, "halt")
	err := in.Run(`
		# a comment
		set who world
		echo hello $who
		set n 42
		print $n
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in.Out[0] != "hello world" {
		t.Fatalf("out = %v", in.Out)
	}
	if !strings.Contains(in.Out[1], "= 42") {
		t.Fatalf("out = %v", in.Out)
	}
}

func TestRunAndStateRefs(t *testing.T) {
	in, v := session(t, 1, `
		li  t0, 0x40000010
		li  t1, 99
		sw  t1, 0(t0)
		addi s0, r0, 17
		halt
	`)
	if err := in.Run("run 100us"); err != nil {
		t.Fatal(err)
	}
	if !v.AllHalted() {
		t.Fatal("program did not finish")
	}
	if err := in.Run(`
		print mem:0x40000010
		print reg:0:16
		assert mem:0x40000010 == 99
		assert reg:0:16 == 17
	`); err != nil {
		t.Fatal(err)
	}
	if len(in.Violations) != 0 {
		t.Fatalf("violations = %v", in.Violations)
	}
}

func TestAssertFailureRecorded(t *testing.T) {
	in, _ := session(t, 1, "halt")
	if err := in.Run("run 10us\nassert 1 == 2"); err != nil {
		t.Fatal(err)
	}
	if len(in.Violations) != 1 {
		t.Fatalf("violations = %v", in.Violations)
	}
	if len(in.D.Violations) != 1 {
		t.Fatal("violation not mirrored on debugger")
	}
}

func TestBreakAndStep(t *testing.T) {
	in, v := session(t, 1, `
		.entry main
	main:
		addi s0, s0, 1
	spot:
		addi s0, s0, 10
		addi s0, s0, 100
		halt
	`)
	if err := in.Run(`
		break 0 spot
		run 100us
	`); err != nil {
		t.Fatal(err)
	}
	if !v.Suspended() {
		t.Fatal("breakpoint did not suspend")
	}
	if in.D.Reg(0, 16) != 1 {
		t.Fatalf("s0 = %d at breakpoint", in.D.Reg(0, 16))
	}
	// Step over the instruction under the breakpoint.
	if err := in.Run("step 0 1"); err != nil {
		t.Fatal(err)
	}
	if in.D.Reg(0, 16) != 11 {
		t.Fatalf("s0 = %d after step", in.D.Reg(0, 16))
	}
	if err := in.Run("resume\nrun 100us"); err != nil {
		t.Fatal(err)
	}
	if !v.AllHalted() {
		t.Fatal("did not finish after resume")
	}
}

func TestWatchpointWithAssertionScript(t *testing.T) {
	// The section VII use case: assert a system-level invariant
	// (counter stays below a limit) on every shared write, without
	// touching target code.
	in, v := session(t, 1, `
		li   s0, 0x40000000
		li   s1, 5
	loop:
		lw   t0, 0(s0)
		addi t0, t0, 40
		sw   t0, 0(s0)
		addi s1, s1, -1
		bne  s1, r0, loop
		halt
	`)
	err := in.Run(`
		set limit 100
		watch write 0x40000000
		onwatch 1 {
			assert $hit_value <= $limit
		}
		run 500us
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.AllHalted() {
		t.Fatal("program did not finish")
	}
	// Writes: 40, 80, 120, 160, 200 -> three violations.
	if len(in.Violations) != 3 {
		t.Fatalf("violations = %v", in.Violations)
	}
	if err := in.Run("assert hits:1 == 5"); err != nil {
		t.Fatal(err)
	}
	if len(in.Violations) != 3 {
		t.Fatal("hit count wrong")
	}
}

func TestOnwatchBindsHitVars(t *testing.T) {
	in, _ := session(t, 1, `
		li  t0, 0x40000020
		li  t1, 7
		sw  t1, 0(t0)
		halt
	`)
	err := in.Run(`
		watch write 0x40000020
		onwatch 1 {
			echo hit core $hit_core at $hit_addr value $hit_value
		}
		run 100us
	`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range in.Out {
		if strings.Contains(o, "hit core 0") && strings.Contains(o, "0x40000020") && strings.Contains(o, "value 7") {
			found = true
		}
	}
	if !found {
		t.Fatalf("out = %v", in.Out)
	}
}

func TestScriptErrors(t *testing.T) {
	in, _ := session(t, 1, "halt")
	cases := []string{
		"bogus",
		"set x",
		"run 10",         // missing unit
		"break 0 nosuch", // unknown symbol
		"watch sideways 0x40000000",
		"onwatch 9 { echo x }",
		"assert 1 ~~ 2",
		"print reg:zz:0",
	}
	for _, src := range cases {
		if err := in.Run(src); err == nil {
			t.Errorf("script %q accepted", src)
		}
	}
}

func TestRunForbiddenInHandler(t *testing.T) {
	in, _ := session(t, 1, `
		li  t0, 0x40000030
		sw  t0, 0(t0)
		halt
	`)
	err := in.Run(`
		watch write 0x40000030
		onwatch 1 {
			run 10us
		}
		run 100us
	`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range in.Violations {
		if strings.Contains(v, "handler error") {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested run not rejected: %v", in.Violations)
	}
}

func TestConsoleRef(t *testing.T) {
	in, _ := session(t, 1, `
		addi v0, r0, 1
		addi a0, r0, 5
		ecall
		ecall
		halt
	`)
	if err := in.Run("run 100us\nassert console:0 == 2"); err != nil {
		t.Fatal(err)
	}
	if len(in.Violations) != 0 {
		t.Fatalf("violations = %v", in.Violations)
	}
}
