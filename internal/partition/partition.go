// Package partition implements the MAPS-style semi-automatic code
// partitioner of the paper's section IV: it turns a sequential CIR
// function into a coarse task graph using the statement-level
// dependence graph ("MAPS uses advanced dataflow analysis to extract
// the available parallelism from the sequential codes and to form a
// set of fine-grained task graphs"), then clusters fine-grained nodes
// under a granularity/communication heuristic.
//
// "Semi-automatic" enters through Options: the designer chooses the
// target task count and granularity floor, and can pin statements
// together, mirroring the tool-plus-designer workflow the paper
// describes.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"mpsockit/internal/cir"
	"mpsockit/internal/dfa"
	"mpsockit/internal/platform"
	"mpsockit/internal/taskgraph"
)

// Options steer the clustering.
type Options struct {
	// MaxTasks bounds the number of coarse tasks (0 = no bound).
	MaxTasks int
	// MinTaskCycles merges any cluster cheaper than this (on the RISC
	// cost basis) into a neighbour; prevents absurdly fine tasks whose
	// dispatch overhead dominates (the OSIP discussion of section IV).
	MinTaskCycles int64
	// Pin forces statement indices to share a cluster (designer
	// knowledge, the "semi" in semi-automatic).
	Pin [][]int
	// ElementBytes sizes a data element for communication-volume
	// estimates (default 4, i.e. int32 on the target).
	ElementBytes int
}

// DefaultOptions returns a reasonable configuration.
func DefaultOptions() Options {
	return Options{MaxTasks: 4, MinTaskCycles: 2000, ElementBytes: 4}
}

// Result is the partitioning outcome.
type Result struct {
	Graph *taskgraph.Graph
	// Clusters maps each coarse task to the top-level statement
	// indices it contains, in source order.
	Clusters [][]int
	// Parallelism notes which clusters contain parallelizable loops
	// (candidates for further data-parallel splitting by the recoder).
	Parallelism map[int]*dfa.LoopInfo
	// Report is a human-readable summary for the designer.
	Report string
}

// Partition analyzes fnName in prog and produces a coarse task graph.
func Partition(prog *cir.Program, fnName string, opt Options) (*Result, error) {
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("partition: no function %q", fnName)
	}
	if opt.ElementBytes <= 0 {
		opt.ElementBytes = 4
	}
	dep := dfa.BuildDepGraph(fn)
	n := len(dep.Stmts)
	if n == 0 {
		return nil, fmt.Errorf("partition: %q has an empty body", fnName)
	}

	cm := cir.NewCostModel(prog)
	cost := make([]int64, n)
	for i, s := range dep.Stmts {
		cost[i] = cm.StmtCycles(s, platform.RISC)
	}

	// Union-find over statements.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(b)] = find(a) }

	for _, pin := range opt.Pin {
		for i := 1; i < len(pin); i++ {
			if pin[i] < 0 || pin[i] >= n || pin[0] < 0 || pin[0] >= n {
				return nil, fmt.Errorf("partition: pin index out of range: %v", pin)
			}
			union(pin[0], pin[i])
		}
	}

	// normalize collapses mutually reachable clusters: pinning distant
	// statements together pulls every cluster on a dependence path
	// between them into the same task, keeping the cluster graph a DAG.
	normalize := func() {
		for {
			adj := map[int]map[int]bool{}
			roots := map[int]bool{}
			for _, e := range dep.Edges {
				cf, ct := find(e.From), find(e.To)
				roots[cf] = true
				roots[ct] = true
				if cf == ct {
					continue
				}
				if adj[cf] == nil {
					adj[cf] = map[int]bool{}
				}
				adj[cf][ct] = true
			}
			reach := func(from, to int) bool {
				stack := []int{from}
				seen := map[int]bool{}
				for len(stack) > 0 {
					c := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if c == to {
						return true
					}
					if seen[c] {
						continue
					}
					seen[c] = true
					for s := range adj[c] {
						stack = append(stack, s)
					}
				}
				return false
			}
			changed := false
			var rootList []int
			for r := range roots {
				rootList = append(rootList, r)
			}
			sort.Ints(rootList)
			for i := 0; i < len(rootList) && !changed; i++ {
				for j := i + 1; j < len(rootList) && !changed; j++ {
					a, b := rootList[i], rootList[j]
					if find(a) != find(b) && reach(a, b) && reach(b, a) {
						union(a, b)
						changed = true
					}
				}
			}
			if !changed {
				return
			}
		}
	}
	normalize()

	volume := func(vars []string) int {
		total := 0
		for _, v := range vars {
			elems := 1
			for _, g := range prog.Globals {
				if g.Name == v && g.ArrayN > 0 {
					elems = g.ArrayN
				}
			}
			total += elems * opt.ElementBytes
		}
		return total
	}

	clusterCost := func() map[int]int64 {
		m := map[int]int64{}
		for i := 0; i < n; i++ {
			m[find(i)] += cost[i]
		}
		return m
	}
	clusterCount := func() int {
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			seen[find(i)] = true
		}
		return len(seen)
	}
	// wouldCycle reports whether merging clusters a and b creates a
	// cycle in the cluster DAG: true iff a path a→…→b (or b→…→a)
	// exists that passes through at least one third cluster.
	wouldCycle := func(a, b int) bool {
		adj := map[int]map[int]bool{}
		for _, e := range dep.Edges {
			cf, ct := find(e.From), find(e.To)
			if cf == ct {
				continue
			}
			if adj[cf] == nil {
				adj[cf] = map[int]bool{}
			}
			adj[cf][ct] = true
		}
		reachVia := func(from, to int) bool {
			// BFS from 'from', skipping the direct from→to edge; any
			// arrival at 'to' then goes through an intermediate.
			var stack []int
			seen := map[int]bool{from: true}
			for s := range adj[from] {
				if s != to {
					stack = append(stack, s)
				}
			}
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if c == to {
					return true
				}
				if seen[c] {
					continue
				}
				seen[c] = true
				for s := range adj[c] {
					stack = append(stack, s)
				}
			}
			return false
		}
		return reachVia(a, b) || reachVia(b, a)
	}

	type candidate struct {
		a, b int // cluster roots
		vol  int
	}
	mergeOnce := func(pred func(costs map[int]int64, c candidate) bool) bool {
		costs := clusterCost()
		var cands []candidate
		seen := map[[2]int]int{}
		for _, e := range dep.Edges {
			if e.Kind != dfa.RAW {
				continue
			}
			a, b := find(e.From), find(e.To)
			if a == b {
				continue
			}
			key := [2]int{a, b}
			seen[key] += volume(e.Vars)
		}
		for key, vol := range seen {
			cands = append(cands, candidate{a: key[0], b: key[1], vol: vol})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].vol != cands[j].vol {
				return cands[i].vol > cands[j].vol
			}
			if cands[i].a != cands[j].a {
				return cands[i].a < cands[j].a
			}
			return cands[i].b < cands[j].b
		})
		for _, c := range cands {
			if !pred(costs, c) {
				continue
			}
			if wouldCycle(c.a, c.b) {
				continue
			}
			union(c.a, c.b)
			return true
		}
		return false
	}

	// Phase 1: grow tiny clusters to the granularity floor.
	for {
		merged := mergeOnce(func(costs map[int]int64, c candidate) bool {
			return costs[c.a] < opt.MinTaskCycles || costs[c.b] < opt.MinTaskCycles
		})
		if !merged {
			break
		}
	}
	// Phase 2: respect the MaxTasks bound, merging the chattiest pairs
	// first (keeps communication on-cluster).
	for opt.MaxTasks > 0 && clusterCount() > opt.MaxTasks {
		if !mergeOnce(func(map[int]int64, candidate) bool { return true }) {
			// No mergeable RAW pair left; merge adjacent-in-source
			// clusters as a last resort (first pair that stays acyclic).
			roots := map[int]bool{}
			var order []int
			for i := 0; i < n; i++ {
				r := find(i)
				if !roots[r] {
					roots[r] = true
					order = append(order, r)
				}
			}
			merged := false
			for i := 0; i+1 < len(order) && !merged; i++ {
				if !wouldCycle(order[i], order[i+1]) {
					union(order[i], order[i+1])
					merged = true
				}
			}
			if !merged {
				break
			}
		}
	}

	// Materialize clusters in source order of their first statement.
	byRoot := map[int][]int{}
	for i := 0; i < n; i++ {
		byRoot[find(i)] = append(byRoot[find(i)], i)
	}
	var roots []int
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return byRoot[roots[i]][0] < byRoot[roots[j]][0] })

	res := &Result{Parallelism: map[int]*dfa.LoopInfo{}}
	tg := taskgraph.NewGraph(fnName)
	clusterIdx := map[int]int{}
	for ci, r := range roots {
		stmts := byRoot[r]
		res.Clusters = append(res.Clusters, stmts)
		clusterIdx[r] = ci
		wcet := map[platform.PEClass]int64{}
		for _, class := range []platform.PEClass{platform.RISC, platform.DSP, platform.VLIW, platform.CTRL} {
			var c int64
			for _, si := range stmts {
				c += cm.StmtCycles(dep.Stmts[si], class)
			}
			wcet[class] = c
		}
		t := &taskgraph.Task{
			Name: fmt.Sprintf("%s_t%d", fnName, ci),
			WCET: wcet,
		}
		tg.AddTask(t)
		// Note data-parallel potential for the recoder.
		for _, si := range stmts {
			if loop, ok := dep.Stmts[si].(*cir.ForStmt); ok {
				if info := dfa.AnalyzeLoop(prog, loop); info.Parallel {
					res.Parallelism[ci] = info
				}
			}
		}
	}
	// Aggregate inter-cluster RAW edges.
	agg := map[[2]int]int{}
	for _, e := range dep.Edges {
		if e.Kind != dfa.RAW {
			continue
		}
		a, b := clusterIdx[find(e.From)], clusterIdx[find(e.To)]
		if a != b {
			agg[[2]int{a, b}] += volume(e.Vars)
		}
	}
	var keys [][2]int
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		tg.Connect(tg.Tasks[k[0]], tg.Tasks[k[1]], agg[k], "")
	}
	if err := tg.Validate(); err != nil {
		return nil, fmt.Errorf("partition: produced invalid graph: %w", err)
	}
	res.Graph = tg
	res.Report = report(fn, res, cost)
	return res, nil
}

func report(fn *cir.FuncDecl, res *Result, cost []int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MAPS partition of %s: %d statements -> %d tasks\n",
		fn.Name, len(cost), len(res.Clusters))
	for ci, stmts := range res.Clusters {
		var c int64
		for _, si := range stmts {
			c += cost[si]
		}
		fmt.Fprintf(&b, "  task %d: stmts %v, ~%d RISC cycles", ci, stmts, c)
		if info, ok := res.Parallelism[ci]; ok {
			fmt.Fprintf(&b, " [data-parallel: trip %d", info.Trip)
			if len(info.Reductions) > 0 {
				fmt.Fprintf(&b, ", reductions %v", info.Reductions)
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	for _, e := range res.Graph.Edges {
		fmt.Fprintf(&b, "  edge t%d -> t%d: %d bytes\n", e.From, e.To, e.Bytes)
	}
	return b.String()
}
