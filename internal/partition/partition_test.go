package partition

import (
	"strings"
	"testing"

	"mpsockit/internal/cir"
	"mpsockit/internal/platform"
)

// pipelineSrc is a JPEG-shaped three-stage pipeline over global
// arrays: the canonical MAPS partitioning example.
const pipelineSrc = `
	int input[256];
	int coeff[256];
	int quant[256];
	int packed[256];

	void main() {
		for (int i = 0; i < 256; i++) {
			coeff[i] = input[i] * 7 - input[i] / 3;
		}
		for (int i = 0; i < 256; i++) {
			quant[i] = coeff[i] / 16;
		}
		for (int i = 0; i < 256; i++) {
			packed[i] = quant[i] & 255;
		}
	}
`

func TestPartitionPipeline(t *testing.T) {
	prog := cir.MustParse(pipelineSrc)
	res, err := Partition(prog, "main", Options{MaxTasks: 3, MinTaskCycles: 1, ElementBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3\n%s", len(res.Graph.Tasks), res.Report)
	}
	// Pipeline shape: t0 -> t1 -> t2.
	if len(res.Graph.Edges) != 2 {
		t.Fatalf("edges = %v", res.Graph.Edges)
	}
	for i, e := range res.Graph.Edges {
		if e.From != i || e.To != i+1 {
			t.Fatalf("edge %d is %d->%d", i, e.From, e.To)
		}
		if e.Bytes != 256*4 {
			t.Fatalf("edge volume %d, want 1024", e.Bytes)
		}
	}
	// Every stage is a parallelizable loop.
	if len(res.Parallelism) != 3 {
		t.Fatalf("parallelism notes = %v", res.Parallelism)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRespectsMaxTasks(t *testing.T) {
	prog := cir.MustParse(pipelineSrc)
	res, err := Partition(prog, "main", Options{MaxTasks: 2, MinTaskCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(res.Graph.Tasks))
	}
}

func TestPartitionGranularityFloor(t *testing.T) {
	// Tiny statements must be absorbed into neighbours.
	prog := cir.MustParse(`
		int a;
		int b[64];
		int c[64];
		void main() {
			a = 1;
			for (int i = 0; i < 64; i++) { b[i] = a + i; }
			for (int i = 0; i < 64; i++) { c[i] = b[i] * 2; }
		}
	`)
	res, err := Partition(prog, "main", Options{MaxTasks: 8, MinTaskCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	for ci, stmts := range res.Clusters {
		_ = stmts
		_ = ci
	}
	// The scalar assignment (few cycles) must not be a task by itself.
	if len(res.Graph.Tasks) > 2 {
		t.Fatalf("granularity floor ignored: %d tasks\n%s", len(res.Graph.Tasks), res.Report)
	}
}

func TestPartitionPinning(t *testing.T) {
	prog := cir.MustParse(pipelineSrc)
	// Designer pins stages 0 and 2 together (say they share a lookup
	// table on the target).
	res, err := Partition(prog, "main", Options{MaxTasks: 3, MinTaskCycles: 1, Pin: [][]int{{0, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	foundTogether := false
	for _, stmts := range res.Clusters {
		has0, has2 := false, false
		for _, s := range stmts {
			if s == 0 {
				has0 = true
			}
			if s == 2 {
				has2 = true
			}
		}
		if has0 && has2 {
			foundTogether = true
		}
	}
	if !foundTogether {
		t.Fatalf("pinned statements separated: %v", res.Clusters)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("pinned graph invalid: %v", err)
	}
}

func TestPartitionHeterogeneousWCET(t *testing.T) {
	prog := cir.MustParse(`
		int x[128];
		int y[128];
		void main() {
			for (int i = 0; i < 128; i++) {
				y[i] = x[i] * x[i] * x[i];
			}
		}
	`)
	res, err := Partition(prog, "main", Options{MaxTasks: 1, MinTaskCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	task := res.Graph.Tasks[0]
	if task.WCET[platform.DSP] >= task.WCET[platform.RISC] {
		t.Fatalf("DSP WCET %d should beat RISC %d on multiply-heavy task",
			task.WCET[platform.DSP], task.WCET[platform.RISC])
	}
}

func TestPartitionErrors(t *testing.T) {
	prog := cir.MustParse("void main() { int x = 0; x += 1; }")
	if _, err := Partition(prog, "nosuch", DefaultOptions()); err == nil {
		t.Fatal("missing function accepted")
	}
	if _, err := Partition(prog, "main", Options{Pin: [][]int{{0, 99}}}); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
}

func TestPartitionReportReadable(t *testing.T) {
	prog := cir.MustParse(pipelineSrc)
	res, err := Partition(prog, "main", Options{MaxTasks: 3, MinTaskCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MAPS partition", "task 0", "edge t0 -> t1", "data-parallel"} {
		if !strings.Contains(res.Report, want) {
			t.Fatalf("report lacks %q:\n%s", want, res.Report)
		}
	}
}

func TestPartitionInterleavedDepsStayAcyclic(t *testing.T) {
	// A structure where naive merging would create a cluster cycle:
	// s0 -> s1 -> s2, s0 -> s3, s2 and s0 tempting to merge.
	prog := cir.MustParse(`
		int a[32];
		int b[32];
		int c[32];
		int d[32];
		void main() {
			for (int i = 0; i < 32; i++) { b[i] = a[i] + 1; }
			for (int i = 0; i < 32; i++) { c[i] = b[i] + b[31 - i]; }
			for (int i = 0; i < 32; i++) { d[i] = c[i] + a[i]; }
			for (int i = 0; i < 32; i++) { a[i] = 0; }
		}
	`)
	for _, maxTasks := range []int{1, 2, 3, 4} {
		res, err := Partition(prog, "main", Options{MaxTasks: maxTasks, MinTaskCycles: 1})
		if err != nil {
			t.Fatalf("maxTasks=%d: %v", maxTasks, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("maxTasks=%d produced cyclic graph: %v", maxTasks, err)
		}
	}
}
