package debug

import (
	"strings"
	"testing"

	"mpsockit/internal/isa"
	"mpsockit/internal/sim"
	"mpsockit/internal/vp"
)

func platformWith(t *testing.T, cores int, src string) (*sim.Kernel, *vp.VP, *isa.Program) {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	v := vp.New(k, vp.DefaultConfig(cores))
	for c := 0; c < cores; c++ {
		v.LoadProgram(c, p)
	}
	return k, v, p
}

func TestBreakpointStopsWholeSystem(t *testing.T) {
	src := `
		.entry main
	main:
		addi s2, s2, 1
	target:
		addi s2, s2, 10
		halt
	`
	k, v, p := platformWith(t, 2, src)
	d := New(v)
	d.AddBreakpoint(0, p.Symbols["target"])
	v.Start()
	k.RunFor(10 * sim.Microsecond)
	if len(d.Stops) != 1 || d.Stops[0].Kind != "break" {
		t.Fatalf("stops = %v", d.Stops)
	}
	if !v.Suspended() {
		t.Fatal("system not suspended at breakpoint")
	}
	// Core 0 stopped before the target instruction executed.
	if d.Reg(0, 18) != 1 {
		t.Fatalf("core0 s2 = %d, want 1", d.Reg(0, 18))
	}
	// Core 1 (no breakpoint) is frozen too — synchronous suspension.
	pc1 := d.PC(1)
	k.RunFor(10 * sim.Microsecond)
	if d.PC(1) != pc1 {
		t.Fatal("core1 advanced while suspended")
	}
	// Continue: program finishes.
	d.Continue()
	if !v.RunUntilHalted(sim.Second) {
		t.Fatal("did not halt after continue")
	}
	if d.Reg(0, 18) != 11 {
		t.Fatalf("core0 s2 = %d after continue", d.Reg(0, 18))
	}
}

func TestMemWatchpoint(t *testing.T) {
	src := `
		li  t0, 0x40000100
		li  t1, 77
		sw  t1, 0(t0)
		halt
	`
	k, v, _ := platformWith(t, 1, src)
	d := New(v)
	w := d.WatchMem(0x40000100, 0x40000103, false, true, -1)
	v.Start()
	k.RunFor(10 * sim.Microsecond)
	if w.Hits != 1 {
		t.Fatalf("watch hits = %d", w.Hits)
	}
	if len(d.Stops) != 1 || d.Stops[0].Kind != "watch-mem-write" {
		t.Fatalf("stops = %v", d.Stops)
	}
	if d.Stops[0].Value != 77 {
		t.Fatalf("watched value = %d", d.Stops[0].Value)
	}
	// Inspect the written word through the debugger.
	d.Continue()
	v.RunUntilHalted(sim.Second)
	if d.SharedWord(0x40000100) != 77 {
		t.Fatalf("shared word = %d", d.SharedWord(0x40000100))
	}
}

func TestWatchpointCoreFilter(t *testing.T) {
	src := `
		li  t0, 0x40000200
		li  t1, 5
		sw  t1, 0(t0)
		halt
	`
	k, v, _ := platformWith(t, 2, src)
	d := New(v)
	w := d.WatchMem(0x40000200, 0x40000203, false, true, 1) // only core 1
	w.Handler = func(d *Debugger, r StopReason) {} // count only
	v.Start()
	k.RunFor(20 * sim.Microsecond)
	v.RunUntilHalted(sim.Second)
	if w.Hits != 1 {
		t.Fatalf("core-filtered watch hits = %d, want 1", w.Hits)
	}
}

func TestIRQWatchpoint(t *testing.T) {
	src := `
		li  t0, 0xF0000008
		li  t1, 500
		sw  t1, 0(t0)      # start timer
	spin:
		j   spin
	`
	k, v, _ := platformWith(t, 1, src)
	d := New(v)
	d.WatchIRQ()
	v.Start()
	k.RunFor(100 * sim.Microsecond)
	if len(d.Stops) == 0 || d.Stops[0].Kind != "watch-irq" {
		t.Fatalf("stops = %v", d.Stops)
	}
	if !v.Suspended() {
		t.Fatal("not suspended on IRQ watch")
	}
}

func TestSystemLevelAssertion(t *testing.T) {
	src := `
		li  t0, 0x40000000
		li  t1, 150
		sw  t1, 0(t0)       # violates invariant counter <= 100
		halt
	`
	k, v, _ := platformWith(t, 1, src)
	d := New(v)
	w := d.WatchMem(vp.SharedBase, vp.SharedBase+3, false, true, -1)
	w.Handler = func(d *Debugger, r StopReason) {
		d.Assert("counter <= 100", func(d *Debugger) bool {
			return r.Value <= 100
		})
	}
	v.Start()
	k.RunFor(10 * sim.Microsecond)
	v.RunUntilHalted(sim.Second)
	if len(d.Violations) != 1 {
		t.Fatalf("violations = %v", d.Violations)
	}
	if !strings.Contains(d.Violations[0], "counter <= 100") {
		t.Fatalf("violation text: %s", d.Violations[0])
	}
}

func TestStateDump(t *testing.T) {
	src := "halt"
	k, v, _ := platformWith(t, 2, src)
	d := New(v)
	d.WatchMem(0x40000000, 0x40000004, true, true, -1)
	v.Start()
	k.RunFor(time10())
	s := d.StateDump()
	for _, want := range []string{"core0", "core1", "watch1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("state dump lacks %q:\n%s", want, s)
		}
	}
}

func time10() sim.Time { return 10 * sim.Microsecond }

// --- The Heisenbug experiment (E11) ---

func TestRaceLosesUpdatesUndisturbed(t *testing.T) {
	res, err := RunRace(2, 200, RaceProgram(200), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostUpdates == 0 {
		t.Fatal("race produced no lost updates; demo broken")
	}
	if res.Final >= res.Expected {
		t.Fatalf("final %d >= expected %d", res.Final, res.Expected)
	}
}

func TestRaceIsDeterministic(t *testing.T) {
	a, err := RunRace(2, 150, RaceProgram(150), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRace(2, 150, RaceProgram(150), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Final != b.Final {
		t.Fatalf("race outcome not reproducible: %d vs %d", a.Final, b.Final)
	}
}

func TestIntrusiveProbeHidesTheBug(t *testing.T) {
	baseline, err := RunRace(2, 200, RaceProgram(200), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := isa.Assemble(RaceProgram(200))
	loopPC := prog.Symbols["loop"]
	// The probe halts the core under debug at the loop head while the
	// other core keeps running free — the section VII scenario
	// ("while the core under debug is stalled, other cores or timers
	// continue to operate").
	probed, err := RunRace(2, 200, RaceProgram(200), func(v *vp.VP) {
		pr := &IntrusiveProbe{Core: 1, TriggerPC: loopPC, StallCycles: 5000}
		pr.Install(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The perturbed interleaving hides the defect — the Heisenbug.
	if probed.LostUpdates != 0 {
		t.Fatalf("intrusive probe did not hide the bug: %d lost vs baseline %d",
			probed.LostUpdates, baseline.LostUpdates)
	}
	if baseline.LostUpdates == 0 {
		t.Fatal("baseline lost nothing; experiment meaningless")
	}
}

func TestVPSuspensionPreservesTheBug(t *testing.T) {
	baseline, err := RunRace(2, 200, RaceProgram(200), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Non-intrusive whole-system suspension mid-run must not change
	// the defect.
	suspendEvery := func(v *vp.VP) {
		k := v.K
		var tick func()
		tick = func() {
			if v.AllHalted() {
				return
			}
			v.Suspend()
			v.Resume()
			k.Schedule(7*sim.Microsecond, tick)
		}
		k.Schedule(7*sim.Microsecond, tick)
	}
	observed, err := RunRace(2, 200, RaceProgram(200), suspendEvery)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Final != baseline.Final {
		t.Fatalf("VP suspension changed the defect: %d vs %d", observed.Final, baseline.Final)
	}
}

func TestSemaphoreFixesTheRace(t *testing.T) {
	res, err := RunRace(2, 100, SafeProgram(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostUpdates != 0 {
		t.Fatalf("guarded version lost %d updates", res.LostUpdates)
	}
}
