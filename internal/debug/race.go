package debug

import (
	"fmt"

	"mpsockit/internal/isa"
	"mpsockit/internal/sim"
	"mpsockit/internal/vp"
)

// CounterAddr is the shared word the race demo increments.
const CounterAddr = vp.SharedBase

// RaceProgram returns MR32 source in which a core increments the
// shared counter iters times through an unguarded read-modify-write
// window — the canonical data race of the paper's section VII
// discussion (lost updates depending on interleaving).
func RaceProgram(iters int) string {
	return fmt.Sprintf(`
		.entry main
	main:
		li   s0, 0x40000000    # shared counter
		li   s1, %d            # iterations
	loop:
		lw   t0, 0(s0)         # read
		nop                    # widen the race window
		nop
		addi t0, t0, 1         # modify
		sw   t0, 0(s0)         # write
		addi s1, s1, -1
		bne  s1, r0, loop
		halt
	`, iters)
}

// SafeProgram is the corrected version: the read-modify-write is
// guarded by hardware semaphore 0.
func SafeProgram(iters int) string {
	return fmt.Sprintf(`
		.entry main
	main:
		li   s0, 0x40000000    # shared counter
		li   s1, %d            # iterations
		li   s2, 0xF0000100    # semaphore 0: load=try-acquire, store=release
	loop:
	acquire:
		lw   t1, 0(s2)
		beq  t1, r0, acquire   # 0 = busy
		lw   t0, 0(s0)
		nop
		nop
		addi t0, t0, 1
		sw   t0, 0(s0)
		sw   r0, 0(s2)         # release
		addi s1, s1, -1
		bne  s1, r0, loop
		halt
	`, iters)
}

// RaceResult reports one execution of the race demo.
type RaceResult struct {
	Expected    uint32
	Final       uint32
	LostUpdates uint32
	Retired     uint64
	// Events is the kernel's dispatched-event count — the replay
	// fingerprint the determinism tests compare across runs.
	Events uint64
}

// RunRace executes the given per-core program on `cores` cores and
// returns the counter outcome. configure (optional) can attach a
// debugger or intrusive probe before the platform starts. It runs in
// precise (quantum=1) mode so interleavings match the seed model.
func RunRace(cores, iters int, src string, configure func(*vp.VP)) (*RaceResult, error) {
	return RunRaceQ(cores, iters, src, configure, 1)
}

// RunRaceQ is RunRace with an explicit temporal-decoupling quantum
// (instructions per kernel event). Quantums above 1 coarsen the
// interleaving between cores — and therefore can change the race
// outcome — but any fixed quantum is still fully deterministic from
// run to run, which is what the determinism regression tests assert.
func RunRaceQ(cores, iters int, src string, configure func(*vp.VP), quantum int) (*RaceResult, error) {
	prog, err := isa.Assemble(src)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	cfg := vp.DefaultConfig(cores)
	cfg.Quantum = quantum
	v := vp.New(k, cfg)
	for c := 0; c < cores; c++ {
		v.LoadProgram(c, prog)
	}
	if configure != nil {
		configure(v)
	}
	v.InstrBudget = uint64(cores*iters*200 + 100_000)
	v.Start()
	if !v.RunUntilHalted(10 * sim.Second) {
		return nil, fmt.Errorf("debug: race program did not halt")
	}
	var final uint32
	for i := 3; i >= 0; i-- {
		final = final<<8 | uint32(v.Shared[i])
	}
	expected := uint32(cores * iters)
	return &RaceResult{
		Expected:    expected,
		Final:       final,
		LostUpdates: expected - final,
		Retired:     v.Retired(),
		Events:      k.Executed,
	}, nil
}
