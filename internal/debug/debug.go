// Package debug layers the section-VII debugging methodology over the
// virtual platform: breakpoints, memory and signal watchpoints with
// whole-system suspension, per-core stepping, full state inspection,
// and system-level software assertions evaluated without changing the
// target code.
//
// It also models the *intrusive* alternative the paper criticizes — a
// hardware probe that halts only the core under debug while "other
// cores or timers continue to operate" — so experiments can produce
// Heisenbugs on demand and show the virtual platform making them
// reproducible.
package debug

import (
	"fmt"
	"sort"

	"mpsockit/internal/sim"
	"mpsockit/internal/trace"
	"mpsockit/internal/vp"
)

// StopReason describes why the system suspended.
type StopReason struct {
	Kind   string // "break", "watch-mem", "watch-irq", "manual"
	Core   int
	PC     uint32
	Addr   uint32
	Value  uint32
	At     sim.Time
	Detail string
}

func (r StopReason) String() string {
	return fmt.Sprintf("%s core%d pc=0x%08x addr=0x%08x val=%#x at %v %s",
		r.Kind, r.Core, r.PC, r.Addr, r.Value, r.At, r.Detail)
}

// MemWatch is a peripheral/memory access watchpoint ("suspending
// execution when a specific core or DMA is writing to a shared
// resource").
type MemWatch struct {
	ID      int
	Lo, Hi  uint32 // inclusive address range
	OnWrite bool
	OnRead  bool
	// CoreFilter restricts to one core; -1 matches any.
	CoreFilter int
	// Handler runs on every hit (assertions attach here). A nil
	// handler just suspends.
	Handler func(d *Debugger, r StopReason)
	Hits    int
	// Enabled gates the watchpoint.
	Enabled bool
}

// Debugger drives one virtual platform.
type Debugger struct {
	VP *vp.VP

	breakpoints map[int]map[uint32]bool
	stepOver    map[int]uint32 // skip bp once after resume (core -> pc)
	memWatches  []*MemWatch
	irqWatch    bool
	nextWatchID int

	// Stops records every suspension with its cause.
	Stops []StopReason
	// Violations records failed assertions.
	Violations []string
}

// New attaches a debugger to a virtual platform (install before
// vp.Start).
func New(v *vp.VP) *Debugger {
	d := &Debugger{
		VP:          v,
		breakpoints: map[int]map[uint32]bool{},
		stepOver:    map[int]uint32{},
	}
	v.OnStep = d.onStep
	v.OnMemAccess = d.onMem
	v.OnIRQ = d.onIRQ
	return d
}

// AddBreakpoint arms a PC breakpoint on one core.
func (d *Debugger) AddBreakpoint(core int, pc uint32) {
	if d.breakpoints[core] == nil {
		d.breakpoints[core] = map[uint32]bool{}
	}
	d.breakpoints[core][pc] = true
}

// ClearBreakpoint removes a breakpoint.
func (d *Debugger) ClearBreakpoint(core int, pc uint32) {
	delete(d.breakpoints[core], pc)
}

// WatchMem arms an address-range watchpoint and returns it.
func (d *Debugger) WatchMem(lo, hi uint32, onRead, onWrite bool, core int) *MemWatch {
	d.nextWatchID++
	w := &MemWatch{
		ID: d.nextWatchID, Lo: lo, Hi: hi,
		OnRead: onRead, OnWrite: onWrite, CoreFilter: core, Enabled: true,
	}
	d.memWatches = append(d.memWatches, w)
	return w
}

// WatchIRQ suspends the system whenever any interrupt line is
// asserted ("a watchpoint can be set on a signal, such as the
// interrupt line of a peripheral").
func (d *Debugger) WatchIRQ() { d.irqWatch = true }

// UnwatchIRQ disables the IRQ watchpoint.
func (d *Debugger) UnwatchIRQ() { d.irqWatch = false }

func (d *Debugger) onStep(core int, pc uint32) bool {
	if d.stepOver[core] == pc {
		delete(d.stepOver, core)
		return true
	}
	if d.breakpoints[core][pc] {
		r := StopReason{Kind: "break", Core: core, PC: pc, At: d.VP.K.Now()}
		d.stop(r)
		d.stepOver[core] = pc
		return false
	}
	return true
}

func (d *Debugger) onMem(core int, addr uint32, write bool, val uint32) {
	for _, w := range d.memWatches {
		if !w.Enabled {
			continue
		}
		if addr < w.Lo || addr > w.Hi {
			continue
		}
		if write && !w.OnWrite || !write && !w.OnRead {
			continue
		}
		if w.CoreFilter >= 0 && w.CoreFilter != core {
			continue
		}
		w.Hits++
		kind := "watch-mem-read"
		if write {
			kind = "watch-mem-write"
		}
		r := StopReason{
			Kind: kind, Core: core, PC: d.VP.CPUs[core].PC,
			Addr: addr, Value: val, At: d.VP.K.Now(),
			Detail: fmt.Sprintf("watch %d", w.ID),
		}
		if w.Handler != nil {
			w.Handler(d, r)
		} else {
			d.stop(r)
		}
	}
}

func (d *Debugger) onIRQ(core int) {
	if !d.irqWatch {
		return
	}
	d.stop(StopReason{Kind: "watch-irq", Core: core, PC: d.VP.CPUs[core].PC, At: d.VP.K.Now()})
}

// stop suspends the whole system and records why.
func (d *Debugger) stop(r StopReason) {
	d.Stops = append(d.Stops, r)
	d.VP.Suspend()
	d.VP.Trace.Add(trace.Event{At: d.VP.K.Now(), Core: r.Core, Kind: trace.Sched, Detail: r.Kind})
}

// Continue resumes execution after a stop.
func (d *Debugger) Continue() { d.VP.Resume() }

// --- Inspection (the "consistent view into the state of all cores
// and peripherals") ---

// Reg reads a core register.
func (d *Debugger) Reg(core, reg int) uint32 { return d.VP.CPUs[core].Regs[reg] }

// PC reads a core's program counter.
func (d *Debugger) PC(core int) uint32 { return d.VP.CPUs[core].PC }

// SharedWord reads a word of shared memory without disturbing it.
func (d *Debugger) SharedWord(addr uint32) uint32 {
	off := addr - vp.SharedBase
	if addr < vp.SharedBase || int(off)+4 > len(d.VP.Shared) {
		return 0
	}
	var v uint32
	for i := 3; i >= 0; i-- {
		v = v<<8 | uint32(d.VP.Shared[off+uint32(i)])
	}
	return v
}

// LocalWord reads a word of a core's local memory.
func (d *Debugger) LocalWord(core int, addr uint32) uint32 {
	if int(addr)+4 > len(d.VP.Locals[core]) {
		return 0
	}
	var v uint32
	for i := 3; i >= 0; i-- {
		v = v<<8 | uint32(d.VP.Locals[core][addr+uint32(i)])
	}
	return v
}

// Assert evaluates a predicate over full system state and records a
// violation when false — the "system level software assertions"
// capability: no target code changes needed.
func (d *Debugger) Assert(name string, pred func(d *Debugger) bool) bool {
	if pred(d) {
		return true
	}
	v := fmt.Sprintf("assertion %q failed at %v", name, d.VP.K.Now())
	d.Violations = append(d.Violations, v)
	return false
}

// StateDump renders all core and peripheral state while suspended.
func (d *Debugger) StateDump() string {
	s := fmt.Sprintf("system state at %v (suspended=%v)\n", d.VP.K.Now(), d.VP.Suspended())
	for i, c := range d.VP.CPUs {
		s += fmt.Sprintf("  core%d pc=0x%08x halted=%v cycles=%d irqs=%d\n",
			i, c.PC, c.Halted, c.Cycles, c.IntTaken)
	}
	var ws []string
	for _, w := range d.memWatches {
		ws = append(ws, fmt.Sprintf("watch%d [0x%08x..0x%08x] hits=%d", w.ID, w.Lo, w.Hi, w.Hits))
	}
	sort.Strings(ws)
	for _, w := range ws {
		s += "  " + w + "\n"
	}
	return s
}

// --- The intrusive alternative (for the Heisenbug experiment) ---

// IntrusiveProbe models traditional single-core halt debugging: when
// the probed core reaches the trigger PC, only that core stalls for
// stallCycles while the rest of the system keeps running — exactly
// the timing perturbation that makes Heisenbugs vanish ("while the
// core under debug is stalled, other cores or timers continue to
// operate").
type IntrusiveProbe struct {
	Core        int
	TriggerPC   uint32
	StallCycles int64
	Hits        int
}

// Install arms the probe on a virtual platform (instead of a
// Debugger; they both claim the OnStep hook). While the probed core
// is stalled the step hook refuses execution, so the core idles cycle
// by cycle as virtual time — and every other core — marches on.
func (pr *IntrusiveProbe) Install(v *vp.VP) {
	stalledUntil := sim.Time(-1)
	armed := true // re-arms once the core leaves the trigger PC
	v.OnStep = func(core int, pc uint32) bool {
		if core != pr.Core {
			return true
		}
		now := v.K.Now()
		if stalledUntil >= 0 {
			if now < stalledUntil {
				return false // core under debug stays halted
			}
			stalledUntil = -1
			armed = false // let the trigger instruction finally run
		}
		if pc != pr.TriggerPC {
			armed = true
			return true
		}
		if !armed {
			return true
		}
		pr.Hits++
		stalledUntil = now + sim.Time(pr.StallCycles)*v.CyclePeriod()
		return false
	}
}
