// Package osip models the OSIP study of the paper's section IV: a
// dedicated task-dispatching ASIP ("operating system ASIP") versus an
// additional RISC core performing scheduling in software. The claim
// under test (experiment E7): OSIP lowers task-switching overhead and
// thereby "enables higher PE utilization via more fine-grained tasks".
//
// The model: worker PEs repeatedly fetch work items from a central
// dispatcher. The dispatcher serializes requests (it is one piece of
// hardware) and its per-decision service time depends on its
// implementation: a software scheduler on a RISC core walks ready
// queues (cost grows with backlog and has a large constant), while
// the OSIP services requests in near-constant short time. Worker PEs
// also pay a context-switch cost per dispatched task, again much
// smaller with OSIP's hardware-managed contexts.
package osip

import (
	"fmt"

	"mpsockit/internal/sim"
)

// Kind selects the dispatcher implementation.
type Kind int

// Dispatcher kinds.
const (
	RISCSoftware Kind = iota
	OSIP
)

func (k Kind) String() string {
	if k == OSIP {
		return "OSIP"
	}
	return "RISC-SW"
}

// Config describes one dispatch experiment.
type Config struct {
	Kind Kind
	// Workers is the number of processing elements served.
	Workers int
	// Tasks is the total number of work items.
	Tasks int
	// TaskCycles is the useful work per item (granularity knob).
	TaskCycles int64
	// WorkerHz is the PE clock.
	WorkerHz int64

	// DispatchBase/DispatchPerPending are the dispatcher's service
	// time in dispatcher cycles; the software scheduler pays the
	// per-pending term for queue walks, OSIP's hardware queues do not.
	DispatchBase       int64
	DispatchPerPending int64
	// CtxSwitchCycles is the per-dispatch overhead on the worker.
	CtxSwitchCycles int64
	// DispatcherHz is the dispatcher clock.
	DispatcherHz int64
}

// DefaultConfig returns the calibrated parameters for each kind.
// Numbers follow the relative magnitudes reported for OSIP-style
// dispatchers: ~10x cheaper scheduling decisions and ~5x cheaper
// context switches.
func DefaultConfig(kind Kind, workers int, tasks int, taskCycles int64) Config {
	c := Config{
		Kind: kind, Workers: workers, Tasks: tasks, TaskCycles: taskCycles,
		WorkerHz: 400_000_000, DispatcherHz: 400_000_000,
	}
	switch kind {
	case RISCSoftware:
		c.DispatchBase = 800
		c.DispatchPerPending = 60
		c.CtxSwitchCycles = 500
	case OSIP:
		c.DispatchBase = 80
		c.DispatchPerPending = 0
		c.CtxSwitchCycles = 100
	}
	return c
}

// Result summarizes one run.
type Result struct {
	Cfg      Config
	Makespan sim.Time
	// BusyTime is worker time spent on useful task cycles.
	BusyTime sim.Time
	// DispatchWait is worker time spent blocked on the dispatcher
	// (queueing + service).
	DispatchWait sim.Time
	// Dispatches counts served requests.
	Dispatches int
	// Events is the kernel's dispatched-event count, the determinism
	// fingerprint compared across repeated runs.
	Events uint64
}

// Utilization is useful work over total worker time.
func (r *Result) Utilization() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(int64(r.BusyTime)) / (float64(int64(r.Makespan)) * float64(r.Cfg.Workers))
}

// Simulate runs the dispatch model to completion.
func Simulate(cfg Config) (*Result, error) {
	if cfg.Workers <= 0 || cfg.Tasks <= 0 || cfg.TaskCycles <= 0 {
		return nil, fmt.Errorf("osip: workers, tasks and task cycles must be positive")
	}
	if cfg.WorkerHz <= 0 || cfg.DispatcherHz <= 0 {
		return nil, fmt.Errorf("osip: clocks must be positive")
	}
	k := sim.NewKernel()
	res := &Result{Cfg: cfg}
	dispatcher := k.NewResource("dispatcher", 1)
	remaining := cfg.Tasks
	workerCycle := int64(sim.Second) / cfg.WorkerHz
	dispCycle := int64(sim.Second) / cfg.DispatcherHz

	for w := 0; w < cfg.Workers; w++ {
		k.Spawn(fmt.Sprintf("pe%d", w), func(p *sim.Proc) {
			for {
				t0 := p.Now()
				dispatcher.Acquire(p)
				if remaining == 0 {
					dispatcher.Release()
					return
				}
				remaining--
				res.Dispatches++
				// Service time: queue walk grows with backlog in the
				// software scheduler.
				service := cfg.DispatchBase + cfg.DispatchPerPending*int64(remaining%64)
				p.Delay(sim.Time(service * dispCycle))
				dispatcher.Release()
				// Context switch on the worker.
				p.Delay(sim.Time(cfg.CtxSwitchCycles * workerCycle))
				res.DispatchWait += p.Now() - t0
				// Useful work.
				work := sim.Time(cfg.TaskCycles * workerCycle)
				p.Delay(work)
				res.BusyTime += work
				if p.Now() > res.Makespan {
					res.Makespan = p.Now()
				}
			}
		})
	}
	k.Run()
	res.Events = k.Executed
	return res, nil
}

// Compare runs both dispatcher kinds on the same workload and returns
// (RISC result, OSIP result).
func Compare(workers, tasks int, taskCycles int64) (*Result, *Result, error) {
	r1, err := Simulate(DefaultConfig(RISCSoftware, workers, tasks, taskCycles))
	if err != nil {
		return nil, nil, err
	}
	r2, err := Simulate(DefaultConfig(OSIP, workers, tasks, taskCycles))
	if err != nil {
		return nil, nil, err
	}
	return r1, r2, nil
}
