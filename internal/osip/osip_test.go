package osip

import "testing"

func TestOSIPBeatsRISCAtFineGranularity(t *testing.T) {
	risc, osip, err := Compare(8, 2000, 1000) // 1k-cycle tasks: very fine
	if err != nil {
		t.Fatal(err)
	}
	if osip.Utilization() <= risc.Utilization() {
		t.Fatalf("OSIP utilization %.3f not above RISC %.3f at fine granularity",
			osip.Utilization(), risc.Utilization())
	}
	if osip.Makespan >= risc.Makespan {
		t.Fatalf("OSIP makespan %v not below RISC %v", osip.Makespan, risc.Makespan)
	}
}

func TestGapShrinksAtCoarseGranularity(t *testing.T) {
	fineR, fineO, err := Compare(8, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	coarseR, coarseO, err := Compare(8, 500, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	fineGap := fineO.Utilization() - fineR.Utilization()
	coarseGap := coarseO.Utilization() - coarseR.Utilization()
	if coarseGap >= fineGap {
		t.Fatalf("OSIP advantage should shrink with coarser tasks: fine %.3f coarse %.3f",
			fineGap, coarseGap)
	}
	// Both near-full utilization on coarse tasks.
	if coarseR.Utilization() < 0.9 || coarseO.Utilization() < 0.9 {
		t.Fatalf("coarse-grain utilizations too low: %.3f / %.3f",
			coarseR.Utilization(), coarseO.Utilization())
	}
}

func TestAllTasksDispatched(t *testing.T) {
	r, err := Simulate(DefaultConfig(OSIP, 4, 333, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if r.Dispatches != 333 {
		t.Fatalf("dispatched %d/333", r.Dispatches)
	}
	if r.Utilization() <= 0 || r.Utilization() > 1 {
		t.Fatalf("utilization %g out of range", r.Utilization())
	}
}

func TestDispatcherSerializesUnderContention(t *testing.T) {
	// Many workers on tiny tasks: the software dispatcher becomes the
	// bottleneck and utilization collapses.
	r, err := Simulate(DefaultConfig(RISCSoftware, 16, 2000, 500))
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization() > 0.5 {
		t.Fatalf("expected dispatcher bottleneck, utilization %.3f", r.Utilization())
	}
	if r.DispatchWait == 0 {
		t.Fatal("dispatch wait not accounted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Workers: 1, Tasks: 0, TaskCycles: 1, WorkerHz: 1, DispatcherHz: 1},
		{Workers: 1, Tasks: 1, TaskCycles: 1, WorkerHz: 0, DispatcherHz: 1},
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Simulate(DefaultConfig(OSIP, 8, 100, 5000))
	b, _ := Simulate(DefaultConfig(OSIP, 8, 100, 5000))
	if a.Makespan != b.Makespan || a.DispatchWait != b.DispatchWait {
		t.Fatal("simulation not deterministic")
	}
}
