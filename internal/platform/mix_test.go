package platform

import (
	"reflect"
	"testing"

	"mpsockit/internal/sim"
)

func TestParseMixRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"8xrisc",
		"2xrisc+4xdsp",
		"2xrisc@400+2xdsp+1xvliw+1xacc",
		"1xctrl+4xdsp@3200",
		"64xrisc",
		"1xacc@1",
	} {
		groups, err := ParseMix(spec)
		if err != nil {
			t.Fatalf("ParseMix(%q): %v", spec, err)
		}
		rendered := FormatMix(groups)
		again, err := ParseMix(rendered)
		if err != nil {
			t.Fatalf("ParseMix(FormatMix(%q)=%q): %v", spec, rendered, err)
		}
		if !reflect.DeepEqual(groups, again) {
			t.Fatalf("mix %q does not round-trip: %v vs %v", spec, groups, again)
		}
	}
	// Explicit class-default clock renders without the @ suffix and
	// still parses to the same group.
	a, _ := ParseMix("2xrisc@1000")
	b, _ := ParseMix("2xrisc")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("default-clock mix differs: %v vs %v", a, b)
	}
}

func TestParseMixErrors(t *testing.T) {
	for _, bad := range []string{
		"", "risc", "0xrisc", "2xquantum", "2xrisc@0", "2xrisc@", "x",
		"65xrisc", "33xrisc+32xdsp", "2xrisc++1xdsp", "-1xrisc",
		"2xrisc@9999999",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestNewMixMatchesHomogeneous: an all-RISC mix at the default clock
// is core-for-core the homogeneous builder's platform (class, clock,
// DVFS table, memories, space-sharing).
func TestNewMixMatchesHomogeneous(t *testing.T) {
	k := sim.NewKernel()
	groups, err := ParseMix("8xrisc")
	if err != nil {
		t.Fatal(err)
	}
	mix := NewMix(k, groups, nil)
	ref := NewHomogeneous(k, 8, 1_000_000_000, nil)
	if len(mix.Cores) != len(ref.Cores) {
		t.Fatalf("core count %d vs %d", len(mix.Cores), len(ref.Cores))
	}
	for i, c := range mix.Cores {
		r := ref.Cores[i]
		if c.Class != r.Class || c.Hz() != r.Hz() || !reflect.DeepEqual(c.Levels, r.Levels) ||
			c.L1Bytes != r.L1Bytes || c.L2Bytes != r.L2Bytes || c.SpaceShared != r.SpaceShared {
			t.Fatalf("core %d differs: %+v vs %+v", i, c, r)
		}
	}
}

// TestNewMixWirelessShape: the wireless terminal's core mix is
// expressible as a spec with identical classes and clocks in order.
func TestNewMixWirelessShape(t *testing.T) {
	k := sim.NewKernel()
	groups, err := ParseMix("2xrisc@400+2xdsp+1xvliw+1xacc")
	if err != nil {
		t.Fatal(err)
	}
	mix := NewMix(k, groups, nil)
	ref := NewWirelessTerminal(k, nil)
	if len(mix.Cores) != len(ref.Cores) {
		t.Fatalf("core count %d vs %d", len(mix.Cores), len(ref.Cores))
	}
	for i, c := range mix.Cores {
		r := ref.Cores[i]
		if c.Class != r.Class || c.Hz() != r.Hz() || !reflect.DeepEqual(c.Levels, r.Levels) {
			t.Fatalf("core %d: class %v@%d vs %v@%d", i, c.Class, c.Hz(), r.Class, r.Hz())
		}
	}
	if mix.Cores[0].SpaceShared {
		t.Fatal("heterogeneous mix joined the space-shared pool")
	}
}

func TestPEClassTextMarshalling(t *testing.T) {
	for cl := RISC; cl <= CTRL; cl++ {
		data, err := cl.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back PEClass
		if err := back.UnmarshalText(data); err != nil {
			t.Fatal(err)
		}
		if back != cl {
			t.Fatalf("%v round-trips to %v", cl, back)
		}
	}
	var c PEClass
	if err := c.UnmarshalText([]byte("QUANTUM")); err == nil {
		t.Fatal("unknown class name accepted")
	}
	if _, err := PEClass(99).MarshalText(); err == nil {
		t.Fatal("out-of-range class encoded")
	}
}
