package platform

import (
	"fmt"
	"strconv"
	"strings"

	"mpsockit/internal/sim"
)

// A core-mix spec describes an arbitrary heterogeneous platform as a
// '+'-separated list of core groups, each "NxCLASS" with an optional
// "@MHZ" clock override:
//
//	mix   = group , { "+" , group } ;
//	group = count , "x" , class , [ "@" , mhz ] ;
//	class = "risc" | "dsp" | "vliw" | "acc" | "ctrl" ;
//	count = integer (1..64) ;  mhz = integer (1..1000000) ;
//
// "2xrisc+4xdsp+1xvliw" is two RISC control cores, four DSPs and one
// VLIW media engine at their class-default clocks; "8xrisc@600" is
// eight 600 MHz RISC cores. Per-class default clocks are chosen so
// the named platform builders are reproducible as mixes in every
// execution-relevant respect — class, clock and DVFS table per core,
// in order — e.g. "8xrisc" matches NewHomogeneous(8) exactly and
// "1xctrl+4xdsp@3200" matches NewCellLike(4)'s timing. Local-memory
// defaults are per class, so memory-derived figures (the DSE area
// proxy) can differ from a preset that sizes memories per role (the
// Cell-like 256 KiB SPE local store, the MPCore's L2-less cores).

// MixGroup is one parsed group of a core-mix spec: N identical cores
// of one PE class at a fixed clock.
type MixGroup struct {
	// N is the number of cores in the group (1..64).
	N int `json:"n"`
	// Class is the group's PE class.
	Class PEClass `json:"class"`
	// MHz is the group's clock in MHz. ParseMix resolves the
	// class-default clock at parse time, so a stored group is always
	// concrete.
	MHz int `json:"mhz"`
}

// classDefault holds the per-class core parameters a mix group gets
// when the spec does not override them. Clocks and memories follow
// the named builders: RISC matches the homogeneous manycore core,
// DSP/VLIW/ACC the wireless-terminal engines, CTRL the Cell-like
// host core.
var classDefault = map[PEClass]struct {
	mhz    int
	l1, l2 int
}{
	RISC: {mhz: 1000, l1: 32 << 10, l2: 256 << 10},
	DSP:  {mhz: 600, l1: 64 << 10},
	VLIW: {mhz: 300, l1: 128 << 10},
	ACC:  {mhz: 200, l1: 16 << 10},
	CTRL: {mhz: 3200, l1: 32 << 10, l2: 512 << 10},
}

// MaxMixCores bounds the total core count of a parsed mix, matching
// the named platform tokens' 64-core ceiling.
const MaxMixCores = 64

// ParseMix parses a core-mix spec ("2xrisc+4xdsp@3200") into its
// groups. Group order is preserved — it determines core IDs — and
// class-default clocks are resolved, so the result round-trips
// through FormatMix.
func ParseMix(spec string) ([]MixGroup, error) {
	if spec == "" {
		return nil, fmt.Errorf("platform: empty core-mix spec")
	}
	var groups []MixGroup
	total := 0
	for _, tok := range strings.Split(spec, "+") {
		ns, rest, ok := strings.Cut(tok, "x")
		if !ok {
			return nil, fmt.Errorf("platform: bad core-mix group %q (want e.g. 2xrisc)", tok)
		}
		n, err := strconv.Atoi(ns)
		if err != nil || n < 1 || n > MaxMixCores {
			return nil, fmt.Errorf("platform: bad core count in mix group %q (want 1..%d)", tok, MaxMixCores)
		}
		name, mhzs, hasMHz := strings.Cut(rest, "@")
		cl, err := ParsePEClass(strings.ToUpper(name))
		if err != nil {
			return nil, fmt.Errorf("platform: unknown PE class %q in mix group %q", name, tok)
		}
		mhz := classDefault[cl].mhz
		if hasMHz {
			mhz, err = strconv.Atoi(mhzs)
			if err != nil || mhz < 1 || mhz > 1_000_000 {
				return nil, fmt.Errorf("platform: bad clock in mix group %q (want MHz 1..1000000)", tok)
			}
		}
		total += n
		if total > MaxMixCores {
			return nil, fmt.Errorf("platform: core mix %q exceeds %d cores", spec, MaxMixCores)
		}
		groups = append(groups, MixGroup{N: n, Class: cl, MHz: mhz})
	}
	return groups, nil
}

// FormatMix renders groups back to spec form, omitting "@MHZ" for
// class-default clocks. ParseMix(FormatMix(gs)) reproduces gs, so the
// rendering is the canonical token for headers and logs.
func FormatMix(groups []MixGroup) string {
	var b strings.Builder
	for i, g := range groups {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%dx%s", g.N, strings.ToLower(g.Class.String()))
		if g.MHz != classDefault[g.Class].mhz {
			fmt.Fprintf(&b, "@%d", g.MHz)
		}
	}
	return b.String()
}

// MixSpecs expands parsed groups into the CoreSpec list New consumes,
// applying per-class default local memories.
func MixSpecs(groups []MixGroup) []CoreSpec {
	var specs []CoreSpec
	counts := map[PEClass]int{}
	for _, g := range groups {
		def := classDefault[g.Class]
		for i := 0; i < g.N; i++ {
			specs = append(specs, CoreSpec{
				Name:    fmt.Sprintf("%s%d", strings.ToLower(g.Class.String()), counts[g.Class]),
				Class:   g.Class,
				Hz:      int64(g.MHz) * 1_000_000,
				L1Bytes: def.l1,
				L2Bytes: def.l2,
			})
			counts[g.Class]++
		}
	}
	return specs
}

// MixCoreCount sums the cores of a parsed mix.
func MixCoreCount(groups []MixGroup) int {
	n := 0
	for _, g := range groups {
		n += g.N
	}
	return n
}

// NewMix builds the platform a core-mix spec describes: cores in
// group order with class-default memories and DVFS tables (half,
// nominal, double — the same shape the named builders use). An
// all-RISC mix additionally joins the space-shared pool, matching
// NewHomogeneous.
func NewMix(k *sim.Kernel, groups []MixGroup, fabric Fabric) *Platform {
	p := New(k, FormatMix(groups), MixSpecs(groups), fabric)
	homogRISC := true
	for _, g := range groups {
		if g.Class != RISC {
			homogRISC = false
		}
	}
	if homogRISC {
		for _, c := range p.Cores {
			c.SpaceShared = true
		}
	}
	return p
}
