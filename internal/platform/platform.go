// Package platform models the MPSoC hardware targets the paper's
// programming tools run against: processing elements with per-core
// frequency scaling (section II-A), local memory bound to cores
// (section II-A/B), and an interconnect fabric (mesh NoC or shared
// bus). Both the homogeneous "manycore" platforms advocated in
// section II and the heterogeneous wireless-multimedia platforms MAPS
// targets in section IV can be described.
package platform

import (
	"fmt"
	"sort"

	"mpsockit/internal/mem"
	"mpsockit/internal/sim"
)

// PEClass identifies the kind of processing element. Section II argues
// for a single ISA across all cores; section IV/V target heterogeneous
// platforms (RISC control cores, DSPs, VLIW media engines,
// accelerators). The toolkit supports both: classes share the MR32 ISA
// (homogeneous-ISA position) but differ in per-class cycle timing and
// clock (heterogeneous-performance reality).
type PEClass int

// Processing element classes.
const (
	RISC PEClass = iota // general-purpose control core
	DSP                 // signal-processing core (fast MAC)
	VLIW                // wide media core
	ACC                 // fixed-function style accelerator core
	CTRL                // host/control processor (e.g. the PPE in a Cell-like SoC)
)

var peClassNames = [...]string{"RISC", "DSP", "VLIW", "ACC", "CTRL"}

func (c PEClass) String() string {
	if c < 0 || int(c) >= len(peClassNames) {
		return fmt.Sprintf("PEClass(%d)", int(c))
	}
	return peClassNames[c]
}

// ParsePEClass converts a class name to a PEClass.
func ParsePEClass(s string) (PEClass, error) {
	for i, n := range peClassNames {
		if n == s {
			return PEClass(i), nil
		}
	}
	return 0, fmt.Errorf("platform: unknown PE class %q", s)
}

// MarshalText encodes the class by name, so JSON records stay
// readable ("RISC", not 0) and stable if class values are ever
// reordered.
func (c PEClass) MarshalText() ([]byte, error) {
	if c < 0 || int(c) >= len(peClassNames) {
		return nil, fmt.Errorf("platform: cannot encode PEClass(%d)", int(c))
	}
	return []byte(peClassNames[c]), nil
}

// UnmarshalText decodes a class name produced by MarshalText.
func (c *PEClass) UnmarshalText(text []byte) error {
	cl, err := ParsePEClass(string(text))
	if err != nil {
		return err
	}
	*c = cl
	return nil
}

// Core is one processing element. Frequency is adjustable at run time
// between discrete DVFS levels, the mechanism section II-A proposes
// for boosting sequential phases ("the frequency at which each core
// executes shall be modifiable at a fine-grain level during program
// execution").
type Core struct {
	ID    int
	Name  string
	Class PEClass

	// Levels are the available clock frequencies in Hz, ascending.
	Levels []int64
	level  int // index into Levels
	// nominal is the level the core returns to after Unboost.
	nominal int

	// L1Bytes and L2Bytes are core-local memories (section II-A: "L2
	// cache / local memory shall be bound to cores").
	L1Bytes int
	L2Bytes int

	// SpaceShared marks the core as part of the space-shared pool
	// (dedicated gang allocation) rather than the time-shared pool
	// (section II-B's two resource types).
	SpaceShared bool

	// FreqSwitches counts DVFS transitions, for energy-proxy stats.
	FreqSwitches uint64
}

// Hz returns the current clock frequency.
func (c *Core) Hz() int64 { return c.Levels[c.level] }

// Level returns the current DVFS level index.
func (c *Core) Level() int { return c.level }

// SetLevel switches the core to DVFS level i.
func (c *Core) SetLevel(i int) error {
	if i < 0 || i >= len(c.Levels) {
		return fmt.Errorf("platform: core %d has no DVFS level %d", c.ID, i)
	}
	if i != c.level {
		c.level = i
		c.FreqSwitches++
	}
	return nil
}

// SetNominal records the current level as the core's nominal
// operating point.
func (c *Core) SetNominal() { c.nominal = c.level }

// Boost raises the core to its highest frequency. It returns the
// boost factor relative to the nominal frequency.
func (c *Core) Boost() float64 {
	base := c.Levels[c.nominal]
	_ = c.SetLevel(len(c.Levels) - 1)
	return float64(c.Hz()) / float64(base)
}

// Unboost returns the core to its nominal frequency.
func (c *Core) Unboost() { _ = c.SetLevel(c.nominal) }

// CyclePeriod returns the duration of one clock cycle at the current
// frequency.
func (c *Core) CyclePeriod() sim.Time {
	return sim.Time(int64(sim.Second) / c.Hz())
}

// Cycles converts a cycle count at the current frequency into virtual
// time.
func (c *Core) Cycles(n int64) sim.Time {
	if n < 0 {
		panic("platform: negative cycle count")
	}
	return sim.Time(n * (int64(sim.Second) / c.Hz()))
}

// TimeToCycles converts a duration into whole cycles at the current
// frequency (rounding down).
func (c *Core) TimeToCycles(t sim.Time) int64 {
	return int64(t) / (int64(sim.Second) / c.Hz())
}

// FabricStats is the traffic counter snapshot every fabric maintains:
// completed transfers and the contention stall time they accumulated
// waiting for busy links (or the bus arbiter). Design-space
// exploration reads the delta across a simulation to score
// interconnect pressure.
type FabricStats struct {
	Transfers uint64
	Wait      sim.Time
}

// Sub returns s - prev, the traffic that occurred between the two
// snapshots.
func (s FabricStats) Sub(prev FabricStats) FabricStats {
	return FabricStats{Transfers: s.Transfers - prev.Transfers, Wait: s.Wait - prev.Wait}
}

// FabricStatsOf snapshots a fabric's counters as a FabricStats.
func FabricStatsOf(f Fabric) FabricStats {
	transfers, wait := f.Stats()
	return FabricStats{Transfers: transfers, Wait: wait}
}

// MemStats is the memory-subsystem counterpart of FabricStats:
// serviced memory accesses and the queue wait they accumulated behind
// busy banks/channels (or the shared DMA engine). Design-space
// exploration reads the delta across a simulation to score memory
// pressure.
type MemStats struct {
	Transfers uint64
	Wait      sim.Time
}

// Sub returns s - prev, the accesses serviced between the two
// snapshots.
func (s MemStats) Sub(prev MemStats) MemStats {
	return MemStats{Transfers: s.Transfers - prev.Transfers, Wait: s.Wait - prev.Wait}
}

// MemStatsOf snapshots a memory model's counters. A nil model (the
// ideal memory) has no counters and snapshots as zero.
func MemStatsOf(m mem.Model) MemStats {
	if m == nil {
		return MemStats{}
	}
	transfers, wait := m.Stats()
	return MemStats{Transfers: transfers, Wait: wait}
}

// Fabric is the on-chip interconnect abstraction. Implementations live
// in internal/noc (mesh network-on-chip, shared bus). Transfer models
// moving a payload between two cores' local memories and invokes done
// on the kernel when the payload has been delivered.
type Fabric interface {
	Name() string
	// Transfer starts moving bytes from core src to core dst at the
	// current virtual time. done runs when delivery completes.
	Transfer(src, dst, bytes int, done func())
	// EstLatency returns the contention-free latency estimate used by
	// mapping cost models.
	EstLatency(src, dst, bytes int) sim.Time
	// Stats returns the cumulative completed-transfer count and
	// contention wait (plain values so implementations need not
	// depend on this package).
	Stats() (transfers uint64, wait sim.Time)
}

// Platform is a complete MPSoC: cores plus interconnect plus optional
// off-cluster shared memory.
type Platform struct {
	Name        string
	Cores       []*Core
	Fabric      Fabric
	SharedBytes int
	Kernel      *sim.Kernel

	// Mem is the optional memory-subsystem contention model cross-PE
	// payloads are serviced by after the fabric delivers them. nil is
	// the ideal memory: zero service time, the pre-model behaviour.
	Mem mem.Model
}

// MemTiming returns the platform's memory-subsystem service
// parameters — per-access latency and DMA burst bandwidth in bytes
// per nanosecond — for mem.Spec.Build. Platforms with off-cluster
// shared memory (DRAM behind the fabric) pay a longer access than the
// local-store-only ones, whose "memory" is a neighbour's scratchpad.
func (p *Platform) MemTiming() (access sim.Time, bytesPerNS int64) {
	if p.SharedBytes > 0 {
		return 30 * sim.Nanosecond, 8
	}
	return 15 * sim.Nanosecond, 8
}

// Homogeneous reports whether all cores share one PE class — the
// hardware shape section II argues scales (near) linearly.
func (p *Platform) Homogeneous() bool {
	for _, c := range p.Cores {
		if c.Class != p.Cores[0].Class {
			return false
		}
	}
	return true
}

// CoresOf returns the cores of the given class, in ID order.
func (p *Platform) CoresOf(class PEClass) []*Core {
	var out []*Core
	for _, c := range p.Cores {
		if c.Class == class {
			out = append(out, c)
		}
	}
	return out
}

// Classes returns the distinct PE classes present, sorted.
func (p *Platform) Classes() []PEClass {
	seen := map[PEClass]bool{}
	for _, c := range p.Cores {
		seen[c.Class] = true
	}
	out := make([]PEClass, 0, len(seen))
	for cl := range seen {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Core returns the core with the given ID.
func (p *Platform) Core(id int) *Core {
	if id < 0 || id >= len(p.Cores) {
		panic(fmt.Sprintf("platform: no core %d", id))
	}
	return p.Cores[id]
}

// String summarizes the platform.
func (p *Platform) String() string {
	counts := map[PEClass]int{}
	for _, c := range p.Cores {
		counts[c.Class]++
	}
	s := fmt.Sprintf("%s[", p.Name)
	first := true
	for _, cl := range p.Classes() {
		if !first {
			s += " "
		}
		first = false
		s += fmt.Sprintf("%dx%s", counts[cl], cl)
	}
	return s + "]"
}

// CoreSpec describes one core for the heterogeneous builder.
type CoreSpec struct {
	Name    string
	Class   PEClass
	Hz      int64
	Levels  []int64 // optional explicit DVFS table; defaults to {Hz/2, Hz, 2*Hz}
	L1Bytes int
	L2Bytes int
}

func defaultLevels(hz int64) []int64 {
	return []int64{hz / 2, hz, 2 * hz}
}

// New builds a platform from explicit core specs.
func New(k *sim.Kernel, name string, specs []CoreSpec, fabric Fabric) *Platform {
	p := &Platform{Name: name, Kernel: k, Fabric: fabric}
	for i, s := range specs {
		levels := s.Levels
		if len(levels) == 0 {
			levels = defaultLevels(s.Hz)
		}
		sort.Slice(levels, func(a, b int) bool { return levels[a] < levels[b] })
		nominal := 0
		for j, hz := range levels {
			if hz == s.Hz {
				nominal = j
			}
		}
		cname := s.Name
		if cname == "" {
			cname = fmt.Sprintf("%s%d", s.Class, i)
		}
		c := &Core{
			ID: i, Name: cname, Class: s.Class,
			Levels: levels, level: nominal, nominal: nominal,
			L1Bytes: s.L1Bytes, L2Bytes: s.L2Bytes,
		}
		p.Cores = append(p.Cores, c)
	}
	return p
}

// NewHomogeneous builds the section-II-style platform: n identical
// RISC cores at hz with per-core DVFS (half, nominal, double) and
// core-local L1/L2.
func NewHomogeneous(k *sim.Kernel, n int, hz int64, fabric Fabric) *Platform {
	specs := make([]CoreSpec, n)
	for i := range specs {
		specs[i] = CoreSpec{
			Class: RISC, Hz: hz,
			L1Bytes: 32 << 10, L2Bytes: 256 << 10,
		}
	}
	p := New(k, fmt.Sprintf("homog%d", n), specs, fabric)
	for _, c := range p.Cores {
		c.SpaceShared = true
	}
	return p
}

// NewCellLike builds a Cell-BE-shaped heterogeneous platform: one
// control core (PPE analogue) plus nSPE synergistic-style DSP cores
// with local stores — the section V retargeting case study target.
func NewCellLike(k *sim.Kernel, nSPE int, fabric Fabric) *Platform {
	specs := []CoreSpec{{
		Name: "ppe", Class: CTRL, Hz: 3_200_000_000,
		L1Bytes: 32 << 10, L2Bytes: 512 << 10,
	}}
	for i := 0; i < nSPE; i++ {
		specs = append(specs, CoreSpec{
			Name: fmt.Sprintf("spe%d", i), Class: DSP, Hz: 3_200_000_000,
			L1Bytes: 256 << 10, // the SPE-style local store
		})
	}
	return New(k, fmt.Sprintf("celllike%d", nSPE), specs, fabric)
}

// NewMPCoreLike builds an ARM-MPCore-shaped symmetric multiprocessor:
// n identical RISC cores with shared memory — the second section V
// retargeting target.
func NewMPCoreLike(k *sim.Kernel, n int, fabric Fabric) *Platform {
	specs := make([]CoreSpec, n)
	for i := range specs {
		specs[i] = CoreSpec{
			Name: fmt.Sprintf("cpu%d", i), Class: RISC, Hz: 600_000_000,
			L1Bytes: 32 << 10,
		}
	}
	p := New(k, fmt.Sprintf("mpcore%d", n), specs, fabric)
	p.SharedBytes = 64 << 20
	return p
}

// NewWirelessTerminal builds the MAPS-style (section IV) heterogeneous
// multimedia/baseband platform: 2 RISC control cores, 2 DSPs, one
// VLIW media engine and one accelerator.
func NewWirelessTerminal(k *sim.Kernel, fabric Fabric) *Platform {
	specs := []CoreSpec{
		{Name: "arm0", Class: RISC, Hz: 400_000_000, L1Bytes: 32 << 10, L2Bytes: 256 << 10},
		{Name: "arm1", Class: RISC, Hz: 400_000_000, L1Bytes: 32 << 10, L2Bytes: 256 << 10},
		{Name: "dsp0", Class: DSP, Hz: 600_000_000, L1Bytes: 64 << 10},
		{Name: "dsp1", Class: DSP, Hz: 600_000_000, L1Bytes: 64 << 10},
		{Name: "vliw0", Class: VLIW, Hz: 300_000_000, L1Bytes: 128 << 10},
		{Name: "acc0", Class: ACC, Hz: 200_000_000, L1Bytes: 16 << 10},
	}
	p := New(k, "wireless", specs, fabric)
	p.SharedBytes = 16 << 20
	return p
}
