package platform

import (
	"testing"

	"mpsockit/internal/noc"
	"mpsockit/internal/sim"
)

func testPlatform(n int) (*sim.Kernel, *Platform) {
	k := sim.NewKernel()
	return k, NewHomogeneous(k, n, 1_000_000_000, noc.MeshFor(k, n))
}

func TestHomogeneousPlatform(t *testing.T) {
	_, p := testPlatform(8)
	if !p.Homogeneous() {
		t.Fatal("homogeneous platform not recognized")
	}
	if len(p.Cores) != 8 {
		t.Fatalf("core count %d, want 8", len(p.Cores))
	}
	for _, c := range p.Cores {
		if c.Class != RISC {
			t.Fatalf("core %d class %v, want RISC", c.ID, c.Class)
		}
		if !c.SpaceShared {
			t.Fatal("homogeneous manycore cores should default to space-shared")
		}
	}
}

func TestCycleTiming(t *testing.T) {
	_, p := testPlatform(1)
	c := p.Core(0)
	if c.Hz() != 1_000_000_000 {
		t.Fatalf("nominal Hz = %d", c.Hz())
	}
	if c.CyclePeriod() != sim.Nanosecond {
		t.Fatalf("cycle period %v, want 1ns at 1GHz", c.CyclePeriod())
	}
	if c.Cycles(1000) != sim.Microsecond {
		t.Fatalf("1000 cycles = %v, want 1us", c.Cycles(1000))
	}
	if c.TimeToCycles(5*sim.Microsecond) != 5000 {
		t.Fatalf("TimeToCycles wrong: %d", c.TimeToCycles(5*sim.Microsecond))
	}
}

func TestDVFSBoost(t *testing.T) {
	_, p := testPlatform(1)
	c := p.Core(0)
	base := c.Hz()
	factor := c.Boost()
	if c.Hz() <= base {
		t.Fatal("boost did not raise frequency")
	}
	if factor != float64(c.Hz())/float64(base) {
		t.Fatalf("boost factor %g inconsistent", factor)
	}
	// Boosted core executes the same cycles in less time.
	if c.Cycles(1000) >= sim.Microsecond {
		t.Fatal("boosted core not faster")
	}
	c.Unboost()
	if c.Hz() != base {
		t.Fatalf("unboost returned %d, want %d", c.Hz(), base)
	}
	if c.FreqSwitches != 2 {
		t.Fatalf("freq switches = %d, want 2", c.FreqSwitches)
	}
}

func TestSetLevelBounds(t *testing.T) {
	_, p := testPlatform(1)
	c := p.Core(0)
	if err := c.SetLevel(99); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := c.SetLevel(0); err != nil {
		t.Fatalf("valid level rejected: %v", err)
	}
}

func TestCellLikeShape(t *testing.T) {
	k := sim.NewKernel()
	p := NewCellLike(k, 6, noc.MeshFor(k, 7))
	if p.Homogeneous() {
		t.Fatal("cell-like platform should be heterogeneous")
	}
	if len(p.CoresOf(CTRL)) != 1 {
		t.Fatal("want exactly one PPE-like control core")
	}
	if len(p.CoresOf(DSP)) != 6 {
		t.Fatalf("want 6 SPE-like cores, got %d", len(p.CoresOf(DSP)))
	}
	// SPE local stores must exist for the CIC translator's capacity checks.
	for _, c := range p.CoresOf(DSP) {
		if c.L1Bytes != 256<<10 {
			t.Fatalf("spe local store %d bytes, want 256K", c.L1Bytes)
		}
	}
}

func TestMPCoreLikeShape(t *testing.T) {
	k := sim.NewKernel()
	p := NewMPCoreLike(k, 4, noc.DefaultBus(k))
	if !p.Homogeneous() {
		t.Fatal("MPCore-like platform should be homogeneous")
	}
	if p.SharedBytes == 0 {
		t.Fatal("SMP platform needs shared memory")
	}
}

func TestWirelessTerminalClasses(t *testing.T) {
	k := sim.NewKernel()
	p := NewWirelessTerminal(k, noc.MeshFor(k, 6))
	classes := p.Classes()
	if len(classes) != 4 {
		t.Fatalf("want 4 PE classes, got %v", classes)
	}
}

func TestParsePEClass(t *testing.T) {
	for _, c := range []PEClass{RISC, DSP, VLIW, ACC, CTRL} {
		got, err := ParsePEClass(c.String())
		if err != nil || got != c {
			t.Fatalf("round trip failed for %v: %v %v", c, got, err)
		}
	}
	if _, err := ParsePEClass("GPU"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestPlatformString(t *testing.T) {
	k := sim.NewKernel()
	p := NewCellLike(k, 2, noc.MeshFor(k, 3))
	s := p.String()
	if s == "" {
		t.Fatal("empty string")
	}
}
