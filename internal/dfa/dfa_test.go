package dfa

import (
	"testing"

	"mpsockit/internal/cir"
)

func TestStmtRW(t *testing.T) {
	prog := cir.MustParse(`
		int a[8];
		int b[8];
		int s;
		void main() {
			for (int i = 0; i < 8; i++) {
				b[i] = a[i] * 2;
			}
			s = b[0] + b[7];
		}
	`)
	body := prog.Func("main").Body
	rw0 := StmtRW(body.Stmts[0])
	if !rw0.Reads["a"] || !rw0.Writes["b"] {
		t.Fatalf("loop RW = %+v", rw0)
	}
	if rw0.Reads["i"] || rw0.Writes["i"] {
		t.Fatal("loop-local index leaked into RW set")
	}
	rw1 := StmtRW(body.Stmts[1])
	if !rw1.Reads["b"] || !rw1.Writes["s"] {
		t.Fatalf("assign RW = %+v", rw1)
	}
}

func TestCompoundAssignReadsTarget(t *testing.T) {
	prog := cir.MustParse(`
		int s;
		void main() { s += 3; }
	`)
	rw := StmtRW(prog.Func("main").Body.Stmts[0])
	if !rw.Reads["s"] || !rw.Writes["s"] {
		t.Fatalf("compound assign RW = %+v", rw)
	}
}

func TestDepGraphPipeline(t *testing.T) {
	prog := cir.MustParse(`
		int in[4];
		int mid[4];
		int out[4];
		void main() {
			for (int i = 0; i < 4; i++) { mid[i] = in[i] + 1; }
			for (int i = 0; i < 4; i++) { out[i] = mid[i] * 2; }
			for (int i = 0; i < 4; i++) { print(out[i]); }
		}
	`)
	g := BuildDepGraph(prog.Func("main"))
	if len(g.Stmts) != 3 {
		t.Fatalf("stmt count %d", len(g.Stmts))
	}
	flows := g.FlowDeps()
	if len(flows) != 2 {
		t.Fatalf("flow deps = %v", flows)
	}
	if flows[0].From != 0 || flows[0].To != 1 || flows[0].Vars[0] != "mid" {
		t.Fatalf("first flow dep wrong: %+v", flows[0])
	}
	if flows[1].From != 1 || flows[1].To != 2 || flows[1].Vars[0] != "out" {
		t.Fatalf("second flow dep wrong: %+v", flows[1])
	}
}

func TestDepGraphWARWAW(t *testing.T) {
	prog := cir.MustParse(`
		int x;
		void main() {
			int y = x + 1;
			x = 5;
			x = 6;
			print(y);
		}
	`)
	g := BuildDepGraph(prog.Func("main"))
	var kinds []string
	for _, e := range g.Edges {
		kinds = append(kinds, e.Kind.String())
	}
	hasWAR, hasWAW := false, false
	for _, e := range g.Edges {
		if e.Kind == WAR && e.From == 0 && e.To == 1 {
			hasWAR = true
		}
		if e.Kind == WAW && e.From == 1 && e.To == 2 {
			hasWAW = true
		}
	}
	if !hasWAR || !hasWAW {
		t.Fatalf("missing WAR/WAW edges: %v", kinds)
	}
}

func parseLoop(t *testing.T, body string) (*cir.Program, *cir.ForStmt) {
	t.Helper()
	prog := cir.MustParse(body)
	for _, fn := range prog.Funcs {
		if loops := FindLoops(fn); len(loops) > 0 {
			return prog, loops[0]
		}
	}
	t.Fatal("no loop found")
	return nil, nil
}

func TestLoopParallelElementwise(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[64];
		int b[64];
		void main() {
			for (int i = 0; i < 64; i++) {
				b[i] = a[i] * a[i];
			}
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if !info.Parallel {
		t.Fatalf("elementwise loop not parallel: %s", info.Reason)
	}
	if info.Trip != 64 {
		t.Fatalf("trip = %d", info.Trip)
	}
	if len(info.ArraysWritten) != 1 || info.ArraysWritten[0] != "b" {
		t.Fatalf("arrays written = %v", info.ArraysWritten)
	}
}

func TestLoopCarriedDependenceRejected(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[64];
		void main() {
			for (int i = 0; i < 63; i++) {
				a[i] = a[i + 1] + 1;
			}
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if info.Parallel {
		t.Fatal("loop-carried dependence not detected")
	}
}

func TestLoopReductionRecognized(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[64];
		int s;
		void main() {
			s = 0;
			for (int i = 0; i < 64; i++) {
				s += a[i];
			}
			print(s);
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if !info.Parallel {
		t.Fatalf("reduction loop not parallel: %s", info.Reason)
	}
	if len(info.Reductions) != 1 || info.Reductions[0] != "s" {
		t.Fatalf("reductions = %v", info.Reductions)
	}
}

func TestLoopPrivateScalar(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[64];
		int b[64];
		int t;
		void main() {
			for (int i = 0; i < 64; i++) {
				t = a[i] * 3;
				b[i] = t + 1;
			}
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if !info.Parallel {
		t.Fatalf("privatizable loop not parallel: %s", info.Reason)
	}
	if len(info.Private) != 1 || info.Private[0] != "t" {
		t.Fatalf("private = %v", info.Private)
	}
}

func TestLoopScalarCarryRejected(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[64];
		int prev;
		void main() {
			for (int i = 0; i < 64; i++) {
				a[i] = prev + a[i];
				prev = a[i];
			}
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if info.Parallel {
		t.Fatal("scalar carry not detected")
	}
}

func TestLoopWithPrintRejected(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[8];
		void main() {
			for (int i = 0; i < 8; i++) {
				print(a[i]);
			}
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if info.Parallel {
		t.Fatal("side-effecting loop marked parallel")
	}
}

func TestLoopWithPureCallAccepted(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[8];
		int b[8];
		int square(int x) { return x * x; }
		void main() {
			for (int i = 0; i < 8; i++) {
				b[i] = square(a[i]) + abs(a[i]);
			}
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if !info.Parallel {
		t.Fatalf("pure-call loop rejected: %s", info.Reason)
	}
}

func TestLoopWithGlobalWritingCalleeRejected(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[8];
		int g;
		int bump(int x) { g += 1; return x; }
		void main() {
			for (int i = 0; i < 8; i++) {
				a[i] = bump(i);
			}
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if info.Parallel {
		t.Fatal("global-writing callee not detected")
	}
}

func TestPointerLoopAffine(t *testing.T) {
	prog, loop := parseLoop(t, `
		void scale(int *p, int n) {
			for (int i = 0; i < 64; i++) {
				*(p + i) = *(p + i) * 2;
			}
		}
		void main() {
			int buf[64];
			scale(buf, 64);
		}
	`)
	_ = prog
	info := AnalyzeLoop(prog, loop)
	if !info.Parallel {
		t.Fatalf("affine pointer loop rejected: %s", info.Reason)
	}
}

func TestOffsetMismatchRejected(t *testing.T) {
	prog, loop := parseLoop(t, `
		int a[64];
		void main() {
			for (int i = 0; i < 63; i++) {
				a[i] = a[i] + 1;
				a[i + 1] = 0;
			}
		}
	`)
	info := AnalyzeLoop(prog, loop)
	if info.Parallel {
		t.Fatal("offset mismatch not detected")
	}
}
