// Package dfa implements the dataflow analyses the paper's tools rely
// on: MAPS "uses advanced dataflow analysis to extract the available
// parallelism from the sequential codes" (section IV), and the Source
// Recoder invokes transformations to "analyze shared data accesses"
// (section VI). The package provides read/write set extraction,
// statement-level dependence graphs with communication volumes, array
// dependence tests for canonical loops, privatization and reduction
// recognition.
package dfa

import (
	"fmt"
	"sort"

	"mpsockit/internal/cir"
)

// Access is one variable access with whatever subscript structure
// could be recovered.
type Access struct {
	Var   string
	Write bool
	// Indexed is true for a[...] or *(p+...) accesses.
	Indexed bool
	// Affine is true when the subscript is i+Offset for loop index i
	// (IndexVar); constant subscripts have IndexVar == "".
	Affine   bool
	IndexVar string
	Offset   int64
	Line     int
}

// affineIndex decomposes e as (indexVar, offset) when e is i, i+c,
// i-c, or a constant.
func affineIndex(e cir.Expr) (iv string, off int64, ok bool) {
	switch x := e.(type) {
	case *cir.IntLit:
		return "", x.Val, true
	case *cir.Ident:
		return x.Name, 0, true
	case *cir.BinaryExpr:
		id, isIdent := x.L.(*cir.Ident)
		lit, isLit := x.R.(*cir.IntLit)
		if isIdent && isLit {
			switch x.Op {
			case "+":
				return id.Name, lit.Val, true
			case "-":
				return id.Name, -lit.Val, true
			}
		}
		// c + i form
		lit2, isLit2 := x.L.(*cir.IntLit)
		id2, isIdent2 := x.R.(*cir.Ident)
		if isLit2 && isIdent2 && x.Op == "+" {
			return id2.Name, lit2.Val, true
		}
	}
	return "", 0, false
}

// exprAccesses appends all accesses in e (evaluated for reading) to
// out.
func exprAccesses(e cir.Expr, out *[]Access) {
	switch x := e.(type) {
	case *cir.IntLit:
	case *cir.Ident:
		*out = append(*out, Access{Var: x.Name, Line: x.Line})
	case *cir.IndexExpr:
		if base, ok := x.Base.(*cir.Ident); ok {
			a := Access{Var: base.Name, Indexed: true, Line: x.Line}
			if iv, off, ok := affineIndex(x.Idx); ok {
				a.Affine = true
				a.IndexVar = iv
				a.Offset = off
			}
			*out = append(*out, a)
		} else {
			exprAccesses(x.Base, out)
		}
		exprAccesses(x.Idx, out)
	case *cir.UnaryExpr:
		if x.Op == "*" {
			// Pointer dereference: attribute to the pointer variable
			// when recoverable, with unknown subscript.
			if p, arith, ok := derefTarget(x.X); ok {
				a := Access{Var: p, Indexed: true, Line: x.Line}
				if iv, off, aok := affineIndex(arith); aok {
					a.Affine = true
					a.IndexVar = iv
					a.Offset = off
				}
				*out = append(*out, a)
				exprAccesses(arith, out)
				return
			}
		}
		exprAccesses(x.X, out)
	case *cir.BinaryExpr:
		exprAccesses(x.L, out)
		exprAccesses(x.R, out)
	case *cir.CallExpr:
		for _, arg := range x.Args {
			exprAccesses(arg, out)
		}
	}
}

// derefTarget decomposes *(p) or *(p+e) into (pointer var, index expr).
func derefTarget(e cir.Expr) (pvar string, idx cir.Expr, ok bool) {
	switch x := e.(type) {
	case *cir.Ident:
		return x.Name, &cir.IntLit{Line: x.Line, Val: 0}, true
	case *cir.BinaryExpr:
		if id, isID := x.L.(*cir.Ident); isID && (x.Op == "+" || x.Op == "-") {
			idx := x.R
			if x.Op == "-" {
				idx = &cir.UnaryExpr{Line: x.Line, Op: "-", X: x.R}
			}
			return id.Name, idx, true
		}
	}
	return "", nil, false
}

// lhsAccesses extracts the write access of an assignment target plus
// the reads embedded in its subscripts.
func lhsAccesses(e cir.Expr, out *[]Access) {
	switch x := e.(type) {
	case *cir.Ident:
		*out = append(*out, Access{Var: x.Name, Write: true, Line: x.Line})
	case *cir.IndexExpr:
		if base, ok := x.Base.(*cir.Ident); ok {
			a := Access{Var: base.Name, Write: true, Indexed: true, Line: x.Line}
			if iv, off, ok := affineIndex(x.Idx); ok {
				a.Affine = true
				a.IndexVar = iv
				a.Offset = off
			}
			*out = append(*out, a)
		} else {
			exprAccesses(x.Base, out)
		}
		exprAccesses(x.Idx, out)
	case *cir.UnaryExpr:
		if x.Op == "*" {
			if p, arith, ok := derefTarget(x.X); ok {
				a := Access{Var: p, Write: true, Indexed: true, Line: x.Line}
				if iv, off, aok := affineIndex(arith); aok {
					a.Affine = true
					a.IndexVar = iv
					a.Offset = off
				}
				*out = append(*out, a)
				exprAccesses(arith, out)
				return
			}
		}
		exprAccesses(x.X, out)
	}
}

// StmtAccesses returns every access performed by s (recursively).
func StmtAccesses(s cir.Stmt) []Access {
	var out []Access
	collectStmt(s, &out)
	return out
}

func collectStmt(s cir.Stmt, out *[]Access) {
	switch x := s.(type) {
	case *cir.Block:
		for _, st := range x.Stmts {
			collectStmt(st, out)
		}
	case *cir.DeclStmt:
		if x.Decl.Init != nil {
			exprAccesses(x.Decl.Init, out)
		}
		*out = append(*out, Access{Var: x.Decl.Name, Write: true, Line: x.Line})
	case *cir.AssignStmt:
		if x.Op != "=" {
			// Compound assignment also reads the target.
			var tmp []Access
			lhsAccesses(x.LHS, &tmp)
			for _, a := range tmp {
				if a.Write {
					r := a
					r.Write = false
					*out = append(*out, r)
				}
			}
		}
		exprAccesses(x.RHS, out)
		lhsAccesses(x.LHS, out)
	case *cir.IfStmt:
		exprAccesses(x.Cond, out)
		collectStmt(x.Then, out)
		if x.Else != nil {
			collectStmt(x.Else, out)
		}
	case *cir.WhileStmt:
		exprAccesses(x.Cond, out)
		collectStmt(x.Body, out)
	case *cir.ForStmt:
		if x.Init != nil {
			collectStmt(x.Init, out)
		}
		if x.Cond != nil {
			exprAccesses(x.Cond, out)
		}
		if x.Post != nil {
			collectStmt(x.Post, out)
		}
		collectStmt(x.Body, out)
	case *cir.ReturnStmt:
		if x.Val != nil {
			exprAccesses(x.Val, out)
		}
	case *cir.ExprStmt:
		exprAccesses(x.X, out)
	}
}

// RWSet summarizes reads and writes by variable name.
type RWSet struct {
	Reads  map[string]bool
	Writes map[string]bool
}

// StmtRW computes the read/write sets of a statement, excluding
// variables declared inside it (purely local effects).
func StmtRW(s cir.Stmt) RWSet {
	rw := RWSet{Reads: map[string]bool{}, Writes: map[string]bool{}}
	locals := map[string]bool{}
	cir.Walk(s, func(n cir.Node) bool {
		if d, ok := n.(*cir.DeclStmt); ok {
			locals[d.Decl.Name] = true
		}
		return true
	})
	for _, a := range StmtAccesses(s) {
		if locals[a.Var] {
			continue
		}
		if a.Write {
			rw.Writes[a.Var] = true
		} else {
			rw.Reads[a.Var] = true
		}
	}
	return rw
}

// Vars returns the sorted union of reads and writes.
func (rw RWSet) Vars() []string {
	set := map[string]bool{}
	for v := range rw.Reads {
		set[v] = true
	}
	for v := range rw.Writes {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DepKind classifies a dependence edge.
type DepKind int

// Dependence kinds.
const (
	RAW DepKind = iota // true/flow dependence (data actually moves)
	WAR                // anti dependence
	WAW                // output dependence
)

func (k DepKind) String() string {
	switch k {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	default:
		return "WAW"
	}
}

// DepEdge connects statement From to the later statement To.
type DepEdge struct {
	From, To int
	Kind     DepKind
	Vars     []string
}

// DepGraph is the statement-level dependence graph of a function
// body's top-level statements — the structure MAPS clusters into
// coarse task graphs.
type DepGraph struct {
	Fn    *cir.FuncDecl
	Stmts []cir.Stmt
	RW    []RWSet
	Edges []DepEdge
}

// BuildDepGraph analyzes the top-level statements of fn.
func BuildDepGraph(fn *cir.FuncDecl) *DepGraph {
	g := &DepGraph{Fn: fn}
	for _, s := range fn.Body.Stmts {
		g.Stmts = append(g.Stmts, s)
		g.RW = append(g.RW, StmtRW(s))
	}
	for i := 0; i < len(g.Stmts); i++ {
		for j := i + 1; j < len(g.Stmts); j++ {
			g.addEdges(i, j)
		}
	}
	return g
}

func intersect(a, b map[string]bool) []string {
	var out []string
	for v := range a {
		if b[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func (g *DepGraph) addEdges(i, j int) {
	ri, rj := g.RW[i], g.RW[j]
	if vs := intersect(ri.Writes, rj.Reads); len(vs) > 0 {
		g.Edges = append(g.Edges, DepEdge{From: i, To: j, Kind: RAW, Vars: vs})
	}
	if vs := intersect(ri.Reads, rj.Writes); len(vs) > 0 {
		g.Edges = append(g.Edges, DepEdge{From: i, To: j, Kind: WAR, Vars: vs})
	}
	if vs := intersect(ri.Writes, rj.Writes); len(vs) > 0 {
		g.Edges = append(g.Edges, DepEdge{From: i, To: j, Kind: WAW, Vars: vs})
	}
}

// FlowDeps returns only the RAW edges — the ones that carry data and
// hence communication volume between partitioned tasks.
func (g *DepGraph) FlowDeps() []DepEdge {
	var out []DepEdge
	for _, e := range g.Edges {
		if e.Kind == RAW {
			out = append(out, e)
		}
	}
	return out
}

// String renders the graph for reports.
func (g *DepGraph) String() string {
	s := fmt.Sprintf("dep graph of %s: %d stmts\n", g.Fn.Name, len(g.Stmts))
	for _, e := range g.Edges {
		s += fmt.Sprintf("  S%d -%s-> S%d via %v\n", e.From, e.Kind, e.To, e.Vars)
	}
	return s
}
