package dfa

import (
	"fmt"

	"mpsockit/internal/cir"
)

// LoopInfo is the parallelizability verdict for one canonical loop.
type LoopInfo struct {
	Loop     *cir.ForStmt
	IndexVar string
	Trip     int
	// Parallel is true when iterations can execute independently
	// (after privatizing Private and combining Reductions).
	Parallel bool
	// Reason explains a negative verdict.
	Reason string
	// Private lists scalars that are written before read each
	// iteration and can be replicated per partition.
	Private []string
	// Reductions lists scalars updated only through associative
	// compound assignments (+=, *=) and combinable across partitions.
	Reductions []string
	// ArraysRead and ArraysWritten list arrays touched with affine
	// subscripts.
	ArraysRead    []string
	ArraysWritten []string
}

// AnalyzeLoop runs the dependence test the Source Recoder's loop
// splitter and MAPS' data-parallelism extractor share. prog provides
// callee bodies for purity checks.
func AnalyzeLoop(prog *cir.Program, loop *cir.ForStmt) *LoopInfo {
	info := &LoopInfo{Loop: loop}
	info.IndexVar = cir.LoopIndexVar(loop)
	if info.IndexVar == "" {
		info.Reason = "loop has no recognizable induction variable"
		return info
	}
	info.Trip = cir.TripCount(loop, 0)

	// Gather local declarations inside the body (always private).
	bodyLocals := map[string]bool{}
	cir.Walk(loop.Body, func(n cir.Node) bool {
		if d, ok := n.(*cir.DeclStmt); ok {
			bodyLocals[d.Decl.Name] = true
		}
		return true
	})

	// Reject impure calls.
	impure := ""
	cir.Walk(loop.Body, func(n cir.Node) bool {
		if c, ok := n.(*cir.CallExpr); ok {
			if !calleePure(prog, c.Fn, map[string]bool{}) {
				impure = c.Fn
			}
		}
		return true
	})
	if impure != "" {
		info.Reason = fmt.Sprintf("body calls %q which has side effects", impure)
		return info
	}

	accs := StmtAccesses(loop.Body)
	// Partition accesses by variable.
	type varAcc struct {
		reads, writes []Access
	}
	byVar := map[string]*varAcc{}
	order := []string{}
	for _, a := range accs {
		if a.Var == info.IndexVar || bodyLocals[a.Var] {
			continue
		}
		va := byVar[a.Var]
		if va == nil {
			va = &varAcc{}
			byVar[a.Var] = va
			order = append(order, a.Var)
		}
		if a.Write {
			va.writes = append(va.writes, a)
		} else {
			va.reads = append(va.reads, a)
		}
	}

	for _, v := range order {
		va := byVar[v]
		indexed := false
		for _, a := range append(append([]Access{}, va.reads...), va.writes...) {
			if a.Indexed {
				indexed = true
			}
		}
		if indexed {
			// Array (or pointer-as-array) accesses: every write must be
			// affine in the loop index, and all accesses must use one
			// common offset for independence.
			if len(va.writes) == 0 {
				info.ArraysRead = append(info.ArraysRead, v)
				continue
			}
			off := int64(0)
			offSet := false
			bad := ""
			for _, a := range append(append([]Access{}, va.writes...), va.reads...) {
				if !a.Affine || a.IndexVar != info.IndexVar {
					bad = fmt.Sprintf("%s has non-affine or loop-invariant subscript", v)
					break
				}
				if !offSet {
					off = a.Offset
					offSet = true
				} else if a.Offset != off {
					bad = fmt.Sprintf("%s accessed at offsets %d and %d (loop-carried)", v, off, a.Offset)
					break
				}
			}
			if bad != "" {
				info.Reason = bad
				return info
			}
			info.ArraysWritten = append(info.ArraysWritten, v)
			continue
		}
		// Scalar with writes: private or reduction?
		if len(va.writes) == 0 {
			continue // read-only shared scalar is fine
		}
		if red, ok := scalarReduction(loop.Body, v); ok {
			info.Reductions = append(info.Reductions, v)
			_ = red
			continue
		}
		if writtenBeforeRead(loop.Body, v) {
			info.Private = append(info.Private, v)
			continue
		}
		info.Reason = fmt.Sprintf("scalar %s carries a value across iterations", v)
		return info
	}
	info.Parallel = true
	return info
}

// calleePure reports whether fn (builtin or user) is side-effect-free:
// no print/chan builtins, no global writes, and only pure callees.
func calleePure(prog *cir.Program, fn string, visiting map[string]bool) bool {
	switch fn {
	case "abs", "min", "max", "clip":
		return true
	case "print", "chan_send", "chan_recv":
		return false
	}
	f := prog.Func(fn)
	if f == nil || visiting[fn] {
		return false
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	params := map[string]bool{}
	for _, p := range f.Params {
		params[p.Name] = true
	}
	locals := map[string]bool{}
	cir.Walk(f.Body, func(n cir.Node) bool {
		if d, ok := n.(*cir.DeclStmt); ok {
			locals[d.Decl.Name] = true
		}
		return true
	})
	pure := true
	for _, a := range StmtAccesses(f.Body) {
		if a.Write && !params[a.Var] && !locals[a.Var] {
			pure = false // writes a global
		}
		if a.Write && params[a.Var] {
			// Writing through a pointer/array parameter mutates caller
			// state; conservative reject.
			pure = false
		}
	}
	cir.Walk(f.Body, func(n cir.Node) bool {
		if c, ok := n.(*cir.CallExpr); ok {
			if !calleePure(prog, c.Fn, visiting) {
				pure = false
			}
		}
		return true
	})
	return pure
}

// scalarReduction reports whether every write to v inside body is a
// `v += e` or `v *= e` whose RHS does not read v.
func scalarReduction(body *cir.Block, v string) (op string, ok bool) {
	ok = true
	cir.Walk(body, func(n cir.Node) bool {
		a, isAssign := n.(*cir.AssignStmt)
		if !isAssign {
			return true
		}
		id, isIdent := a.LHS.(*cir.Ident)
		if !isIdent || id.Name != v {
			// v read elsewhere is checked below.
			return true
		}
		if a.Op != "+=" && a.Op != "*=" {
			ok = false
			return true
		}
		if op == "" {
			op = a.Op
		} else if op != a.Op {
			ok = false
		}
		// RHS must not read v.
		var accs []Access
		exprAccesses(a.RHS, &accs)
		for _, acc := range accs {
			if acc.Var == v {
				ok = false
			}
		}
		return true
	})
	if op == "" {
		return "", false
	}
	// v must not be read outside its own reduction updates.
	reads := 0
	updates := 0
	cir.Walk(body, func(n cir.Node) bool {
		if a, isAssign := n.(*cir.AssignStmt); isAssign {
			if id, isIdent := a.LHS.(*cir.Ident); isIdent && id.Name == v {
				updates++
				return true
			}
		}
		return true
	})
	for _, a := range StmtAccesses(body) {
		if a.Var == v && !a.Write {
			reads++
		}
	}
	// Compound assignments inject one read per update (the implicit
	// read of the target); any additional read disqualifies.
	if reads > updates {
		ok = false
	}
	return op, ok && op != ""
}

// writtenBeforeRead reports whether the first access to v in body
// (source order) is an unconditional write at the top level of the
// body — the privatization criterion.
func writtenBeforeRead(body *cir.Block, v string) bool {
	for _, s := range body.Stmts {
		switch x := s.(type) {
		case *cir.DeclStmt:
			if x.Decl.Name == v {
				return true
			}
			if x.Decl.Init != nil && readsVar(x.Decl.Init, v) {
				return false
			}
		case *cir.AssignStmt:
			if readsVar(x.RHS, v) {
				return false
			}
			if id, ok := x.LHS.(*cir.Ident); ok && id.Name == v {
				if x.Op == "=" {
					return true
				}
				return false // compound assignment reads first
			}
			if lhsReads(x.LHS, v) {
				return false
			}
		default:
			// Any nested use before a top-level write disqualifies.
			for _, a := range StmtAccesses(s) {
				if a.Var == v {
					return false
				}
			}
		}
	}
	return false
}

func readsVar(e cir.Expr, v string) bool {
	var accs []Access
	exprAccesses(e, &accs)
	for _, a := range accs {
		if a.Var == v {
			return true
		}
	}
	return false
}

func lhsReads(e cir.Expr, v string) bool {
	if idx, ok := e.(*cir.IndexExpr); ok {
		return readsVar(idx.Idx, v) || readsVar(idx.Base, v)
	}
	if u, ok := e.(*cir.UnaryExpr); ok && u.Op == "*" {
		return readsVar(u.X, v)
	}
	return false
}

// FindLoops returns all for-loops in a function body, outermost first.
func FindLoops(fn *cir.FuncDecl) []*cir.ForStmt {
	var out []*cir.ForStmt
	cir.Walk(fn.Body, func(n cir.Node) bool {
		if f, ok := n.(*cir.ForStmt); ok {
			out = append(out, f)
		}
		return true
	})
	return out
}
