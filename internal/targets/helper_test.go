package targets

import "mpsockit/internal/sim"

func simKernel() *sim.Kernel { return sim.NewKernel() }
