// Package targets provides the architecture-information files for the
// paper's section V retargeting study: a Cell-BE-like distributed
// local-store machine programmed with DMA message passing (the H.264
// encoder target of reference [7]) and an ARM-MPCore-like symmetric
// multiprocessor with lock-protected shared-memory FIFOs. One CIC
// spec translated against both must produce identical outputs — the
// retargetability claim under test.
package targets

import "mpsockit/internal/cic"

// CellLike returns a 1-PPE + nSPE architecture with 256 KiB SPE local
// stores and a DMA interconnect.
func CellLike(nSPE int) *cic.ArchInfo {
	arch := &cic.ArchInfo{
		Name: "celllike",
		Interconnect: cic.InterconnectInfo{
			Type: "dma", BytesPerNS: 16, HopLatencyNS: 2, DMASetupNS: 150,
		},
	}
	arch.Processors = append(arch.Processors, cic.ProcessorInfo{
		Name: "ppe", Class: "CTRL", ClockHz: 3_200_000_000, LocalMemBytes: 512 << 10,
	})
	for i := 0; i < nSPE; i++ {
		arch.Processors = append(arch.Processors, cic.ProcessorInfo{
			Name: spe(i), Class: "DSP", ClockHz: 3_200_000_000, LocalMemBytes: 256 << 10,
		})
	}
	return arch
}

func spe(i int) string {
	return "spe" + string(rune('0'+i))
}

// SMP returns an n-core MPCore-like shared-memory architecture.
func SMP(n int) *cic.ArchInfo {
	arch := &cic.ArchInfo{
		Name:           "mpcorelike",
		SharedMemBytes: 64 << 20,
		Interconnect: cic.InterconnectInfo{
			Type: "sharedmem", BytesPerNS: 4, HopLatencyNS: 5, LockCycles: 120,
		},
	}
	for i := 0; i < n; i++ {
		arch.Processors = append(arch.Processors, cic.ProcessorInfo{
			Name: "cpu" + string(rune('0'+i)), Class: "RISC", ClockHz: 600_000_000,
			LocalMemBytes: 512 << 10,
		})
	}
	return arch
}
