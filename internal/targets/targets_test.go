package targets

import (
	"bytes"
	"testing"

	"mpsockit/internal/cic"
)

func TestCellLikeValid(t *testing.T) {
	arch := CellLike(6)
	if err := arch.Validate(); err != nil {
		t.Fatal(err)
	}
	if arch.Interconnect.Type != "dma" {
		t.Fatal("cell-like must use DMA message passing")
	}
	if arch.Processor("ppe") == nil || arch.Processor("spe5") == nil {
		t.Fatal("processors missing")
	}
	if arch.Processor("spe0").LocalMemBytes != 256<<10 {
		t.Fatal("SPE local store size wrong")
	}
}

func TestSMPValid(t *testing.T) {
	arch := SMP(4)
	if err := arch.Validate(); err != nil {
		t.Fatal(err)
	}
	if arch.Interconnect.Type != "sharedmem" || arch.SharedMemBytes == 0 {
		t.Fatal("SMP must use shared memory")
	}
	if arch.Interconnect.LockCycles <= 0 {
		t.Fatal("SMP needs a lock cost")
	}
}

func TestArchesSerializeToXML(t *testing.T) {
	for _, arch := range []*cic.ArchInfo{CellLike(2), SMP(2)} {
		var buf bytes.Buffer
		if err := cic.WriteArch(&buf, arch); err != nil {
			t.Fatal(err)
		}
		parsed, err := cic.ParseArch(&buf)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if parsed.Name != arch.Name || len(parsed.Processors) != len(arch.Processors) {
			t.Fatalf("%s round trip lost data", arch.Name)
		}
	}
}

func TestBuildablePlatforms(t *testing.T) {
	for _, arch := range []*cic.ArchInfo{CellLike(3), SMP(3)} {
		k := simKernel()
		p, err := arch.BuildPlatform(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Cores) != len(arch.Processors) {
			t.Fatalf("%s: %d cores", arch.Name, len(p.Cores))
		}
	}
}
