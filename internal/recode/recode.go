// Package recode implements the designer-controlled Source Recoder of
// the paper's section VI (Chandraiah & Dömer): an interactive set of
// AST-level transformations that restructure a sequential C-subset
// model into a parallel, analyzable, flexible specification. The
// designer chains transformations ("split loops into code partitions,
// analyze shared data accesses, split vectors of shared data,
// localize variable accesses, and finally synchronize accesses to
// shared data by inserting communication channels"); the tool keeps
// the AST and the source text in sync and journals every action for
// the productivity accounting of experiment E10.
//
// Unlike a batch compiler, every transformation here is invoked
// explicitly, may refuse with a legality explanation, and its effect
// is immediately visible as regenerated source — the paper's
// "designer-controlled" middle road between manual editing and
// automatic parallelization.
package recode

import (
	"fmt"
	"strings"

	"mpsockit/internal/cir"
	"mpsockit/internal/dfa"
)

// Op is one journal entry: a designer action and its effect size.
type Op struct {
	Name   string
	Target string
	Detail string
	// LinesTouched is how many source lines changed — the manual-edit
	// volume the action replaced.
	LinesTouched int
}

// Recoder holds the working AST, the journal, and chunk metadata that
// lets later transformations (vector splitting) understand earlier
// ones (loop splitting).
type Recoder struct {
	Prog    *cir.Program
	Journal []Op
	// chunks records, per generated task function, the iteration
	// chunk it owns: [lo, hi) over the original index space.
	chunks map[string][2]int64
}

// New parses src into a recoder session.
func New(src string) (*Recoder, error) {
	prog, err := cir.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Recoder{Prog: prog, chunks: map[string][2]int64{}}, nil
}

// Source regenerates the current source text (the Code Generator of
// the paper's figure 3).
func (r *Recoder) Source() string { return cir.Print(r.Prog) }

// reparse round-trips the AST through the printer/parser to re-run
// the semantic checker after a transformation.
func (r *Recoder) reparse() error {
	p, err := cir.Parse(r.Source())
	if err != nil {
		return fmt.Errorf("recode: transformation produced invalid code: %w", err)
	}
	r.Prog = p
	return nil
}

// log journals an op, measuring its touched lines as the symmetric
// line difference between before and after.
func (r *Recoder) log(name, target, detail, before string) {
	after := r.Source()
	r.Journal = append(r.Journal, Op{
		Name: name, Target: target, Detail: detail,
		LinesTouched: diffLines(before, after),
	})
}

// diffLines counts lines present in exactly one of the two sources
// (multiset symmetric difference) — a proxy for hand-edit volume.
func diffLines(a, b string) int {
	count := map[string]int{}
	for _, ln := range strings.Split(a, "\n") {
		ln = strings.TrimSpace(ln)
		if ln != "" {
			count[ln]++
		}
	}
	for _, ln := range strings.Split(b, "\n") {
		ln = strings.TrimSpace(ln)
		if ln != "" {
			count[ln]--
		}
	}
	d := 0
	for _, c := range count {
		if c < 0 {
			c = -c
		}
		d += c
	}
	return d
}

// ManualEditEstimate sums the journal's touched lines: what the
// designer would have edited by hand.
func (r *Recoder) ManualEditEstimate() int {
	total := 0
	for _, op := range r.Journal {
		total += op.LinesTouched
	}
	return total
}

// ProductivityFactor is manual edit lines per designer action — the
// experiment E10 metric ("productivity gains up to two orders of
// magnitude over manual recoding").
func (r *Recoder) ProductivityFactor() float64 {
	if len(r.Journal) == 0 {
		return 0
	}
	return float64(r.ManualEditEstimate()) / float64(len(r.Journal))
}

// findLoop locates the idx-th for-loop (pre-order) in fn.
func (r *Recoder) findLoop(fnName string, idx int) (*cir.FuncDecl, *cir.ForStmt, error) {
	fn := r.Prog.Func(fnName)
	if fn == nil {
		return nil, nil, fmt.Errorf("recode: no function %q", fnName)
	}
	loops := dfa.FindLoops(fn)
	if idx < 0 || idx >= len(loops) {
		return nil, nil, fmt.Errorf("recode: %q has %d loops, no index %d", fnName, len(loops), idx)
	}
	return fn, loops[idx], nil
}

// AnalyzeShared reports the shared-data picture of a function: which
// variables flow between its top-level statements (the paper's
// "analyze shared data accesses" step). Purely informative; it never
// modifies code and is not journaled.
func (r *Recoder) AnalyzeShared(fnName string) (string, error) {
	fn := r.Prog.Func(fnName)
	if fn == nil {
		return "", fmt.Errorf("recode: no function %q", fnName)
	}
	g := dfa.BuildDepGraph(fn)
	var b strings.Builder
	fmt.Fprintf(&b, "shared-data analysis of %s:\n", fnName)
	for _, e := range g.FlowDeps() {
		fmt.Fprintf(&b, "  S%d -> S%d share %v\n", e.From, e.To, e.Vars)
	}
	for i := range g.Stmts {
		info := ""
		if loop, ok := g.Stmts[i].(*cir.ForStmt); ok {
			li := dfa.AnalyzeLoop(r.Prog, loop)
			if li.Parallel {
				info = " [parallelizable]"
			} else {
				info = " [serial: " + li.Reason + "]"
			}
		}
		fmt.Fprintf(&b, "  S%d reads %v writes %v%s\n", i,
			g.RW[i].Vars(), keys(g.RW[i].Writes), info)
	}
	return b.String(), nil
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	// Deterministic order for reports.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// SplitLoop splits a canonical loop in place into k consecutive
// chunk loops over sub-ranges (exposing data parallelism while
// keeping sequential semantics). Legality: the dependence test of
// internal/dfa must pass.
func (r *Recoder) SplitLoop(fnName string, loopIdx, k int) error {
	if k < 2 {
		return fmt.Errorf("recode: split factor must be >= 2")
	}
	before := r.Source()
	fn, loop, err := r.findLoop(fnName, loopIdx)
	if err != nil {
		return err
	}
	info := dfa.AnalyzeLoop(r.Prog, loop)
	if !info.Parallel {
		return fmt.Errorf("recode: loop is not splittable: %s", info.Reason)
	}
	lo, hi, step, ok := cir.LoopBounds(loop)
	if !ok {
		return fmt.Errorf("recode: loop bounds are not literal constants")
	}
	pieces, err := chunkLoops(loop, lo, hi, step, k, "")
	if err != nil {
		return err
	}
	if !replaceStmt(fn.Body, loop, pieces) {
		return fmt.Errorf("recode: loop is not a replaceable statement (nested too deep?)")
	}
	if err := r.reparse(); err != nil {
		return err
	}
	r.log("split-loop", fmt.Sprintf("%s#%d", fnName, loopIdx), fmt.Sprintf("k=%d", k), before)
	return nil
}

// chunkLoops builds k copies of loop over [lo,hi) chunks. When
// idxSuffix is non-empty the induction variable is renamed per chunk
// (needed when chunks land in separate functions sharing globals).
func chunkLoops(loop *cir.ForStmt, lo, hi, step int64, k int, idxSuffix string) ([]cir.Stmt, error) {
	iv := cir.LoopIndexVar(loop)
	if iv == "" {
		return nil, fmt.Errorf("recode: loop has no induction variable")
	}
	total := hi - lo
	chunk := (total + int64(k) - 1) / int64(k)
	// Round chunk up to a multiple of step so splits respect strides.
	if rem := chunk % step; rem != 0 {
		chunk += step - rem
	}
	var out []cir.Stmt
	for t := 0; t < k; t++ {
		clo := lo + int64(t)*chunk
		chi := clo + chunk
		if chi > hi {
			chi = hi
		}
		if clo >= hi {
			break
		}
		cp := cir.CloneStmt(loop).(*cir.ForStmt)
		setLoopBounds(cp, clo, chi)
		out = append(out, cp)
		_ = idxSuffix
	}
	return out, nil
}

// setLoopBounds rewrites a canonical loop's literal bounds.
func setLoopBounds(loop *cir.ForStmt, lo, hi int64) {
	switch init := loop.Init.(type) {
	case *cir.AssignStmt:
		init.RHS = &cir.IntLit{Line: init.Pos(), Val: lo}
	case *cir.DeclStmt:
		init.Decl.Init = &cir.IntLit{Line: init.Pos(), Val: lo}
	}
	if cond, ok := loop.Cond.(*cir.BinaryExpr); ok {
		cond.Op = "<"
		cond.R = &cir.IntLit{Line: cond.Line, Val: hi}
	}
}

// replaceStmt substitutes old with news in a block tree.
func replaceStmt(b *cir.Block, old cir.Stmt, news []cir.Stmt) bool {
	for i, s := range b.Stmts {
		if s == old {
			rest := append([]cir.Stmt{}, b.Stmts[i+1:]...)
			b.Stmts = append(b.Stmts[:i], append(news, rest...)...)
			return true
		}
		switch x := s.(type) {
		case *cir.Block:
			if replaceStmt(x, old, news) {
				return true
			}
		case *cir.IfStmt:
			if replaceStmt(x.Then, old, news) {
				return true
			}
			if x.Else != nil && replaceStmt(x.Else, old, news) {
				return true
			}
		case *cir.WhileStmt:
			if replaceStmt(x.Body, old, news) {
				return true
			}
		case *cir.ForStmt:
			if replaceStmt(x.Body, old, news) {
				return true
			}
		}
	}
	return false
}
