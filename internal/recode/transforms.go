package recode

import (
	"fmt"
	"strings"

	"mpsockit/internal/cir"
	"mpsockit/internal/dfa"
)

// mapExpr rewrites every expression in a statement tree bottom-up.
func mapExpr(s cir.Stmt, f func(cir.Expr) cir.Expr) {
	var me func(cir.Expr) cir.Expr
	me = func(e cir.Expr) cir.Expr {
		switch x := e.(type) {
		case *cir.IndexExpr:
			x.Base = me(x.Base)
			x.Idx = me(x.Idx)
		case *cir.UnaryExpr:
			x.X = me(x.X)
		case *cir.BinaryExpr:
			x.L = me(x.L)
			x.R = me(x.R)
		case *cir.CallExpr:
			for i := range x.Args {
				x.Args[i] = me(x.Args[i])
			}
		}
		return f(e)
	}
	var ms func(cir.Stmt)
	ms = func(s cir.Stmt) {
		switch x := s.(type) {
		case *cir.Block:
			for _, st := range x.Stmts {
				ms(st)
			}
		case *cir.DeclStmt:
			if x.Decl.Init != nil {
				x.Decl.Init = me(x.Decl.Init)
			}
		case *cir.AssignStmt:
			x.LHS = me(x.LHS)
			x.RHS = me(x.RHS)
		case *cir.IfStmt:
			x.Cond = me(x.Cond)
			ms(x.Then)
			if x.Else != nil {
				ms(x.Else)
			}
		case *cir.WhileStmt:
			x.Cond = me(x.Cond)
			ms(x.Body)
		case *cir.ForStmt:
			if x.Init != nil {
				ms(x.Init)
			}
			if x.Cond != nil {
				x.Cond = me(x.Cond)
			}
			if x.Post != nil {
				ms(x.Post)
			}
			ms(x.Body)
		case *cir.ReturnStmt:
			if x.Val != nil {
				x.Val = me(x.Val)
			}
		case *cir.ExprStmt:
			x.X = me(x.X)
		}
	}
	ms(s)
}

// SplitLoopToTasks outlines a parallelizable top-level loop of fnName
// into k task functions <fn>_part0..k-1, each owning one chunk of the
// iteration space; reductions become per-task partials combined at
// the join. This is the paper's "split loops into code partitions"
// expressed as a single designer action.
func (r *Recoder) SplitLoopToTasks(fnName string, loopIdx, k int) error {
	if k < 2 {
		return fmt.Errorf("recode: split factor must be >= 2")
	}
	before := r.Source()
	fn, loop, err := r.findLoop(fnName, loopIdx)
	if err != nil {
		return err
	}
	// Must be a top-level statement of fn for outlining.
	topIdx := -1
	for i, s := range fn.Body.Stmts {
		if s == loop {
			topIdx = i
		}
	}
	if topIdx < 0 {
		return fmt.Errorf("recode: loop must be a top-level statement to outline")
	}
	info := dfa.AnalyzeLoop(r.Prog, loop)
	if !info.Parallel {
		return fmt.Errorf("recode: loop is not partitionable: %s", info.Reason)
	}
	lo, hi, step, ok := cir.LoopBounds(loop)
	if !ok {
		return fmt.Errorf("recode: loop bounds are not literal constants")
	}
	// Arrays touched must be globals (task functions can only reach
	// globals).
	globals := map[string]bool{}
	for _, g := range r.Prog.Globals {
		globals[g.Name] = true
	}
	for _, arr := range append(append([]string{}, info.ArraysRead...), info.ArraysWritten...) {
		if !globals[arr] {
			return fmt.Errorf("recode: array %q must be global to outline the loop", arr)
		}
	}

	pieces, err := chunkLoops(loop, lo, hi, step, k, "")
	if err != nil {
		return err
	}
	// Per-reduction partial arrays.
	var preStmts, postStmts []cir.Stmt
	for _, red := range info.Reductions {
		part := red + "_part"
		r.Prog.Globals = append(r.Prog.Globals, &cir.VarDecl{Name: part, ArrayN: k})
		op := reductionOp(loop.Body, red)
		initVal := int64(0)
		if op == "*=" {
			initVal = 1
		}
		for t := 0; t < len(pieces); t++ {
			preStmts = append(preStmts, &cir.AssignStmt{
				LHS: &cir.IndexExpr{Base: &cir.Ident{Name: part}, Idx: &cir.IntLit{Val: int64(t)}},
				Op:  "=", RHS: &cir.IntLit{Val: initVal},
			})
			postStmts = append(postStmts, &cir.AssignStmt{
				LHS: &cir.Ident{Name: red},
				Op:  op,
				RHS: &cir.IndexExpr{Base: &cir.Ident{Name: part}, Idx: &cir.IntLit{Val: int64(t)}},
			})
		}
	}

	// Continue part numbering across repeated splits of one function.
	offset := 0
	prefix := fnName + "_part"
	for _, f := range r.Prog.Funcs {
		if strings.HasPrefix(f.Name, prefix) {
			offset++
		}
	}
	var calls []cir.Stmt
	for t, piece := range pieces {
		taskName := fmt.Sprintf("%s_part%d", fnName, offset+t)
		pl := piece.(*cir.ForStmt)
		// Redirect reductions to the partial slot.
		for _, red := range info.Reductions {
			rewriteReduction(pl, red, t)
		}
		body := &cir.Block{}
		// Private scalars become locals of the task.
		for _, pv := range info.Private {
			body.Stmts = append(body.Stmts, &cir.DeclStmt{Decl: &cir.VarDecl{Name: pv}})
		}
		// An induction variable assigned (not declared) in the loop
		// header needs a local declaration in the outlined task.
		if as, ok := pl.Init.(*cir.AssignStmt); ok {
			if id, ok := as.LHS.(*cir.Ident); ok {
				body.Stmts = append(body.Stmts, &cir.DeclStmt{Decl: &cir.VarDecl{Name: id.Name}})
			}
		}
		body.Stmts = append(body.Stmts, pl)
		task := &cir.FuncDecl{Name: taskName, Body: body}
		r.Prog.Funcs = append(r.Prog.Funcs, task)
		clo, chi, _, _ := cir.LoopBounds(pl)
		r.chunks[taskName] = [2]int64{clo, chi}
		calls = append(calls, &cir.ExprStmt{X: &cir.CallExpr{Fn: taskName}})
	}

	news := append(append(preStmts, calls...), postStmts...)
	if !replaceStmt(fn.Body, loop, news) {
		return fmt.Errorf("recode: internal error replacing loop")
	}
	if err := r.reparse(); err != nil {
		return err
	}
	r.log("split-loop-to-tasks", fmt.Sprintf("%s#%d", fnName, loopIdx),
		fmt.Sprintf("k=%d private=%v reductions=%v", k, info.Private, info.Reductions), before)
	return nil
}

// reductionOp finds the compound operator used to update v.
func reductionOp(b *cir.Block, v string) string {
	op := "+="
	cir.Walk(b, func(n cir.Node) bool {
		if a, ok := n.(*cir.AssignStmt); ok {
			if id, ok := a.LHS.(*cir.Ident); ok && id.Name == v {
				op = a.Op
			}
		}
		return true
	})
	return op
}

// rewriteReduction redirects `v op= e` to `v_part[t] op= e` inside a
// task chunk.
func rewriteReduction(loop *cir.ForStmt, v string, t int) {
	var ms func(cir.Stmt)
	ms = func(s cir.Stmt) {
		switch x := s.(type) {
		case *cir.Block:
			for _, st := range x.Stmts {
				ms(st)
			}
		case *cir.AssignStmt:
			if id, ok := x.LHS.(*cir.Ident); ok && id.Name == v {
				x.LHS = &cir.IndexExpr{
					Base: &cir.Ident{Name: v + "_part"},
					Idx:  &cir.IntLit{Val: int64(t)},
				}
			}
		case *cir.IfStmt:
			ms(x.Then)
			if x.Else != nil {
				ms(x.Else)
			}
		case *cir.WhileStmt:
			ms(x.Body)
		case *cir.ForStmt:
			ms(x.Body)
		}
	}
	ms(loop)
}

// SplitVector splits a global array into per-task chunks after
// SplitLoopToTasks: accesses inside each task function are rebased to
// its chunk-local array (the paper's "split vectors of shared data").
// Legality: the array may only be referenced inside task functions
// whose chunks are known and disjoint.
func (r *Recoder) SplitVector(arrName string) error {
	before := r.Source()
	var decl *cir.VarDecl
	for _, g := range r.Prog.Globals {
		if g.Name == arrName {
			decl = g
		}
	}
	if decl == nil || decl.ArrayN == 0 {
		return fmt.Errorf("recode: %q is not a global array", arrName)
	}
	// Find referencing functions.
	refFuncs := map[string]bool{}
	for _, f := range r.Prog.Funcs {
		for _, a := range dfa.StmtAccesses(f.Body) {
			if a.Var == arrName {
				refFuncs[f.Name] = true
			}
		}
	}
	for fname := range refFuncs {
		if _, ok := r.chunks[fname]; !ok {
			return fmt.Errorf("recode: %q is referenced by %q which is not a split task", arrName, fname)
		}
	}
	// Distinct chunk ranges, sorted by lower bound: producer and
	// consumer tasks over the same range share one part array; ranges
	// must tile (disjoint or identical) for the split to be legal.
	var ranges [][2]int64
	for fname := range refFuncs {
		c := r.chunks[fname]
		dup := false
		for _, old := range ranges {
			if old == c {
				dup = true
			} else if c[0] < old[1] && old[0] < c[1] {
				return fmt.Errorf("recode: %q chunks overlap (%v vs %v); cannot split", arrName, c, old)
			}
		}
		if !dup {
			ranges = append(ranges, c)
		}
	}
	for i := 0; i < len(ranges); i++ {
		for j := i + 1; j < len(ranges); j++ {
			if ranges[j][0] < ranges[i][0] {
				ranges[i], ranges[j] = ranges[j], ranges[i]
			}
		}
	}
	partOf := map[[2]int64]string{}
	var parts []string
	for idx, c := range ranges {
		partName := fmt.Sprintf("%s_%d", arrName, idx)
		size := int(c[1] - c[0])
		if size <= 0 {
			size = 1
		}
		r.Prog.Globals = append(r.Prog.Globals, &cir.VarDecl{Name: partName, ArrayN: size})
		partOf[c] = partName
		parts = append(parts, partName)
	}
	for _, f := range r.Prog.Funcs {
		chunk, ok := r.chunks[f.Name]
		if !ok || !refFuncs[f.Name] {
			continue
		}
		partName := partOf[chunk]
		base := chunk[0]
		mapExpr(f.Body, func(e cir.Expr) cir.Expr {
			ix, ok := e.(*cir.IndexExpr)
			if !ok {
				return e
			}
			id, ok := ix.Base.(*cir.Ident)
			if !ok || id.Name != arrName {
				return e
			}
			newIdx := cir.Expr(&cir.BinaryExpr{
				Op: "-", L: ix.Idx, R: &cir.IntLit{Val: base},
			})
			if base == 0 {
				newIdx = ix.Idx
			}
			return &cir.IndexExpr{Base: &cir.Ident{Name: partName}, Idx: newIdx}
		})
	}
	// Remove the original declaration.
	var kept []*cir.VarDecl
	for _, g := range r.Prog.Globals {
		if g.Name != arrName {
			kept = append(kept, g)
		}
	}
	r.Prog.Globals = kept
	if err := r.reparse(); err != nil {
		return err
	}
	r.log("split-vector", arrName, fmt.Sprintf("parts=%v", parts), before)
	return nil
}

// LocalizeVariable demotes a global used by exactly one function into
// a local of that function ("localize variable accesses").
func (r *Recoder) LocalizeVariable(varName string) error {
	before := r.Source()
	var decl *cir.VarDecl
	for _, g := range r.Prog.Globals {
		if g.Name == varName {
			decl = g
		}
	}
	if decl == nil {
		return fmt.Errorf("recode: no global %q", varName)
	}
	var users []*cir.FuncDecl
	for _, f := range r.Prog.Funcs {
		for _, a := range dfa.StmtAccesses(f.Body) {
			if a.Var == varName {
				users = append(users, f)
				break
			}
		}
	}
	if len(users) == 0 {
		return fmt.Errorf("recode: %q is unused; delete it instead", varName)
	}
	if len(users) > 1 {
		names := make([]string, len(users))
		for i, u := range users {
			names[i] = u.Name
		}
		return fmt.Errorf("recode: %q is shared by %v; localizing would change behaviour", varName, names)
	}
	fn := users[0]
	local := &cir.VarDecl{Name: varName, ArrayN: decl.ArrayN, Init: decl.Init}
	if local.ArrayN == 0 && local.Init == nil {
		local.Init = &cir.IntLit{Val: 0} // globals are zero-initialized
	}
	fn.Body.Stmts = append([]cir.Stmt{&cir.DeclStmt{Decl: local}}, fn.Body.Stmts...)
	var kept []*cir.VarDecl
	for _, g := range r.Prog.Globals {
		if g.Name != varName {
			kept = append(kept, g)
		}
	}
	r.Prog.Globals = kept
	if err := r.reparse(); err != nil {
		return err
	}
	r.log("localize", varName, "global -> local of "+fn.Name, before)
	return nil
}

// InsertChannel replaces a shared-array handoff between a producer
// and a consumer function with FIFO channel operations ("synchronize
// accesses to shared data by inserting communication channels"):
// producer stores into arr become chan_send, consumer loads become
// chan_recv. The designer asserts the access orders match (the tool
// checks the static count).
func (r *Recoder) InsertChannel(prodFn, consFn, arrName string, chanID int) error {
	before := r.Source()
	prod := r.Prog.Func(prodFn)
	cons := r.Prog.Func(consFn)
	if prod == nil || cons == nil {
		return fmt.Errorf("recode: missing function %q or %q", prodFn, consFn)
	}
	writes := 0
	var walkAssign func(s cir.Stmt)
	walkAssign = func(s cir.Stmt) {
		switch x := s.(type) {
		case *cir.Block:
			for _, st := range x.Stmts {
				walkAssign(st)
			}
		case *cir.AssignStmt:
			if ix, ok := x.LHS.(*cir.IndexExpr); ok {
				if id, ok := ix.Base.(*cir.Ident); ok && id.Name == arrName {
					writes++
				}
			}
		case *cir.IfStmt:
			walkAssign(x.Then)
			if x.Else != nil {
				walkAssign(x.Else)
			}
		case *cir.WhileStmt:
			walkAssign(x.Body)
		case *cir.ForStmt:
			walkAssign(x.Body)
		}
	}
	walkAssign(prod.Body)
	if writes == 0 {
		return fmt.Errorf("recode: %q never writes %q", prodFn, arrName)
	}
	// Producer: arr[e] = RHS  ->  chan_send(id, RHS).
	var rewriteProd func(s cir.Stmt)
	rewriteProd = func(s cir.Stmt) {
		switch x := s.(type) {
		case *cir.Block:
			for i, st := range x.Stmts {
				if as, ok := st.(*cir.AssignStmt); ok {
					if ix, ok := as.LHS.(*cir.IndexExpr); ok {
						if id, ok := ix.Base.(*cir.Ident); ok && id.Name == arrName && as.Op == "=" {
							x.Stmts[i] = &cir.ExprStmt{X: &cir.CallExpr{
								Fn:   "chan_send",
								Args: []cir.Expr{&cir.IntLit{Val: int64(chanID)}, as.RHS},
							}}
							continue
						}
					}
				}
				rewriteProd(st)
			}
		case *cir.IfStmt:
			rewriteProd(x.Then)
			if x.Else != nil {
				rewriteProd(x.Else)
			}
		case *cir.WhileStmt:
			rewriteProd(x.Body)
		case *cir.ForStmt:
			rewriteProd(x.Body)
		}
	}
	rewriteProd(prod.Body)
	// Consumer: reads of arr[e] -> chan_recv(id).
	reads := 0
	mapExpr(cons.Body, func(e cir.Expr) cir.Expr {
		ix, ok := e.(*cir.IndexExpr)
		if !ok {
			return e
		}
		id, ok := ix.Base.(*cir.Ident)
		if !ok || id.Name != arrName {
			return e
		}
		reads++
		return &cir.CallExpr{Fn: "chan_recv", Args: []cir.Expr{&cir.IntLit{Val: int64(chanID)}}}
	})
	if reads == 0 {
		return fmt.Errorf("recode: %q never reads %q", consFn, arrName)
	}
	// Drop the array if nobody references it anymore.
	still := false
	for _, f := range r.Prog.Funcs {
		for _, a := range dfa.StmtAccesses(f.Body) {
			if a.Var == arrName {
				still = true
			}
		}
	}
	if !still {
		var kept []*cir.VarDecl
		for _, g := range r.Prog.Globals {
			if g.Name != arrName {
				kept = append(kept, g)
			}
		}
		r.Prog.Globals = kept
	}
	if err := r.reparse(); err != nil {
		return err
	}
	r.log("insert-channel", arrName,
		fmt.Sprintf("%s -> %s via channel %d (%d sends, %d recvs)", prodFn, consFn, chanID, writes, reads), before)
	return nil
}

// RecodePointers rewrites pointer arithmetic into array indexing in
// one function: *(p+e) becomes p[e], *p becomes p[0] ("pointer
// recoding to replace pointer expressions … enhance the analyzability
// and synthesizability of the models").
func (r *Recoder) RecodePointers(fnName string) error {
	before := r.Source()
	fn := r.Prog.Func(fnName)
	if fn == nil {
		return fmt.Errorf("recode: no function %q", fnName)
	}
	count := 0
	mapExpr(fn.Body, func(e cir.Expr) cir.Expr {
		u, ok := e.(*cir.UnaryExpr)
		if !ok || u.Op != "*" {
			return e
		}
		switch x := u.X.(type) {
		case *cir.Ident:
			count++
			return &cir.IndexExpr{Base: x, Idx: &cir.IntLit{Val: 0}}
		case *cir.BinaryExpr:
			if id, okL := x.L.(*cir.Ident); okL && (x.Op == "+" || x.Op == "-") {
				idx := x.R
				if x.Op == "-" {
					idx = &cir.UnaryExpr{Op: "-", X: x.R}
				}
				count++
				return &cir.IndexExpr{Base: id, Idx: idx}
			}
		}
		return e
	})
	if count == 0 {
		return fmt.Errorf("recode: no pointer expressions to recode in %q", fnName)
	}
	if err := r.reparse(); err != nil {
		return err
	}
	r.log("recode-pointers", fnName, fmt.Sprintf("%d expressions", count), before)
	return nil
}

// PruneControl folds constant expressions and removes dead branches
// in a function ("code restructuring to prune the control structure").
func (r *Recoder) PruneControl(fnName string) error {
	before := r.Source()
	fn := r.Prog.Func(fnName)
	if fn == nil {
		return fmt.Errorf("recode: no function %q", fnName)
	}
	changed := 0
	// Constant folding.
	mapExpr(fn.Body, func(e cir.Expr) cir.Expr {
		if b, ok := e.(*cir.BinaryExpr); ok {
			l, okL := b.L.(*cir.IntLit)
			rr, okR := b.R.(*cir.IntLit)
			if okL && okR {
				if v, ok := foldBin(b.Op, l.Val, rr.Val); ok {
					changed++
					return &cir.IntLit{Line: b.Line, Val: v}
				}
			}
		}
		if u, ok := e.(*cir.UnaryExpr); ok {
			if l, okL := u.X.(*cir.IntLit); okL {
				switch u.Op {
				case "-":
					changed++
					return &cir.IntLit{Line: u.Line, Val: -l.Val}
				case "!":
					changed++
					v := int64(0)
					if l.Val == 0 {
						v = 1
					}
					return &cir.IntLit{Line: u.Line, Val: v}
				case "~":
					changed++
					return &cir.IntLit{Line: u.Line, Val: ^l.Val}
				}
			}
		}
		return e
	})
	// Dead-branch elimination.
	var prune func(b *cir.Block)
	prune = func(b *cir.Block) {
		var out []cir.Stmt
		for _, s := range b.Stmts {
			switch x := s.(type) {
			case *cir.IfStmt:
				if lit, ok := x.Cond.(*cir.IntLit); ok {
					changed++
					var taken *cir.Block
					if lit.Val != 0 {
						taken = x.Then
					} else {
						taken = x.Else
					}
					if taken != nil {
						prune(taken)
						out = append(out, taken.Stmts...)
					}
					continue
				}
				prune(x.Then)
				if x.Else != nil {
					prune(x.Else)
				}
			case *cir.Block:
				prune(x)
			case *cir.WhileStmt:
				prune(x.Body)
			case *cir.ForStmt:
				prune(x.Body)
			}
			out = append(out, s)
		}
		b.Stmts = out
	}
	prune(fn.Body)
	if changed == 0 {
		return fmt.Errorf("recode: nothing to prune in %q", fnName)
	}
	if err := r.reparse(); err != nil {
		return err
	}
	r.log("prune-control", fnName, fmt.Sprintf("%d folds/branches", changed), before)
	return nil
}

func foldBin(op string, l, r int64) (int64, bool) {
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case "%":
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case "<<":
		return l << (uint64(r) & 63), true
	case ">>":
		return l >> (uint64(r) & 63), true
	case "&":
		return l & r, true
	case "|":
		return l | r, true
	case "^":
		return l ^ r, true
	}
	return 0, false
}
