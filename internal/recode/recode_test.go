package recode

import (
	"strings"
	"testing"

	"mpsockit/internal/cir"
)

// runMain interprets a source's main() and returns the print stream.
func runMain(t *testing.T, src string) []int64 {
	t.Helper()
	prog, err := cir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	in, err := cir.NewInterp(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return in.Output
}

// mustPreserve checks the recoder session still computes the same
// print stream as the original source.
func mustPreserve(t *testing.T, original string, r *Recoder) {
	t.Helper()
	want := runMain(t, original)
	got := runMain(t, r.Source())
	if len(want) != len(got) {
		t.Fatalf("output length changed: %d -> %d\nafter:\n%s", len(want), len(got), r.Source())
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("output[%d] changed: %d -> %d\nafter:\n%s", i, want[i], got[i], r.Source())
		}
	}
}

const sumSrc = `
	int data[64];
	int total;
	void main() {
		for (int i = 0; i < 64; i++) {
			data[i] = i * 3 - 32;
		}
		total = 0;
		for (int i = 0; i < 64; i++) {
			total += data[i];
		}
		print(total);
	}
`

func TestSplitLoopPreservesSemantics(t *testing.T) {
	r, err := New(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SplitLoop("main", 0, 4); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, sumSrc, r)
	// Four chunk loops replaced one.
	if n := strings.Count(r.Source(), "for ("); n != 5 {
		t.Fatalf("expected 5 loops after split, got %d:\n%s", n, r.Source())
	}
	if len(r.Journal) != 1 || r.Journal[0].Name != "split-loop" {
		t.Fatalf("journal = %+v", r.Journal)
	}
	if r.Journal[0].LinesTouched == 0 {
		t.Fatal("no lines accounted")
	}
}

func TestSplitLoopUnevenBounds(t *testing.T) {
	src := `
		int a[10];
		void main() {
			for (int i = 0; i < 10; i++) { a[i] = i * i; }
			for (int i = 0; i < 10; i++) { print(a[i]); }
		}
	`
	r, _ := New(src)
	if err := r.SplitLoop("main", 0, 3); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, src, r)
}

func TestSplitLoopRejectsCarriedDependence(t *testing.T) {
	src := `
		int a[16];
		void main() {
			a[0] = 1;
			for (int i = 1; i < 16; i++) { a[i] = a[i - 1] * 2; }
			print(a[15]);
		}
	`
	r, _ := New(src)
	if err := r.SplitLoop("main", 0, 2); err == nil {
		t.Fatal("carried dependence not rejected")
	}
	// Source must be untouched after a refused transformation.
	mustPreserve(t, src, r)
	if len(r.Journal) != 0 {
		t.Fatal("refused op was journaled")
	}
}

func TestSplitLoopToTasksWithReduction(t *testing.T) {
	r, err := New(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Split the reduction loop (index 1) into 4 tasks.
	if err := r.SplitLoopToTasks("main", 1, 4); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, sumSrc, r)
	src := r.Source()
	for _, want := range []string{"main_part0", "main_part3", "total_part"} {
		if !strings.Contains(src, want) {
			t.Fatalf("missing %q in:\n%s", want, src)
		}
	}
	if len(r.chunks) != 4 {
		t.Fatalf("chunks = %v", r.chunks)
	}
}

func TestSplitLoopToTasksPrivateScalar(t *testing.T) {
	src := `
		int a[32];
		int b[32];
		int tmp;
		void main() {
			for (int i = 0; i < 32; i++) { a[i] = i; }
			for (int i = 0; i < 32; i++) {
				tmp = a[i] * 2;
				b[i] = tmp + 1;
			}
			print(b[31]);
			print(b[0]);
		}
	`
	r, _ := New(src)
	if err := r.SplitLoopToTasks("main", 1, 2); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, src, r)
	// The private temp must be declared inside the task functions.
	if !strings.Contains(r.Source(), "main_part0") {
		t.Fatal("tasks not created")
	}
}

func TestSplitVectorAfterTaskSplit(t *testing.T) {
	src := `
		int mid[40];
		int outv[40];
		void main() {
			for (int i = 0; i < 40; i++) { mid[i] = i * 7; }
			for (int i = 0; i < 40; i++) { outv[i] = mid[i] + 1; }
			int s = 0;
			for (int i = 0; i < 40; i++) { s += outv[i]; }
			print(s);
		}
	`
	r, _ := New(src)
	// Split producer and consumer loops with matching chunks.
	if err := r.SplitLoopToTasks("main", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.SplitLoopToTasks("main", 0, 2); err != nil { // next remaining loop
		t.Fatal(err)
	}
	// mid is now only touched by split tasks: vector split is legal.
	if err := r.SplitVector("mid"); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, src, r)
	if strings.Contains(r.Source(), "int mid[40]") {
		t.Fatalf("original vector not removed:\n%s", r.Source())
	}
	if !strings.Contains(r.Source(), "mid_0") || !strings.Contains(r.Source(), "mid_1") {
		t.Fatalf("split vectors missing:\n%s", r.Source())
	}
}

func TestSplitVectorRejectsSharedUse(t *testing.T) {
	r, _ := New(sumSrc)
	// data is used by main directly; not legal to split.
	if err := r.SplitVector("data"); err == nil {
		t.Fatal("shared vector split accepted")
	}
}

func TestLocalizeVariable(t *testing.T) {
	src := `
		int scratch;
		int out[8];
		void compute() {
			scratch = 5;
			for (int i = 0; i < 8; i++) { out[i] = scratch + i; }
		}
		void main() {
			compute();
			print(out[7]);
		}
	`
	r, _ := New(src)
	if err := r.LocalizeVariable("scratch"); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, src, r)
	if strings.Contains(strings.Split(r.Source(), "void")[0], "scratch") {
		t.Fatalf("scratch still global:\n%s", r.Source())
	}
}

func TestLocalizeRejectsSharedGlobal(t *testing.T) {
	src := `
		int shared;
		void a() { shared = 1; }
		void b() { print(shared); }
		void main() { a(); b(); }
	`
	r, _ := New(src)
	if err := r.LocalizeVariable("shared"); err == nil {
		t.Fatal("cross-function global localized")
	}
}

func TestInsertChannel(t *testing.T) {
	src := `
		int buf[16];
		void producer() {
			for (int i = 0; i < 16; i++) { buf[i] = i * i; }
		}
		void consumer() {
			for (int i = 0; i < 16; i++) { print(buf[i] + 1); }
		}
		void main() {
			producer();
			consumer();
		}
	`
	r, _ := New(src)
	if err := r.InsertChannel("producer", "consumer", "buf", 5); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, src, r)
	out := r.Source()
	if !strings.Contains(out, "chan_send(5,") || !strings.Contains(out, "chan_recv(5)") {
		t.Fatalf("channel ops missing:\n%s", out)
	}
	if strings.Contains(out, "int buf[16]") {
		t.Fatalf("dead shared buffer kept:\n%s", out)
	}
}

func TestInsertChannelRejectsNonParticipants(t *testing.T) {
	r, _ := New(sumSrc)
	if err := r.InsertChannel("main", "main", "nothere", 1); err == nil {
		t.Fatal("bogus channel insertion accepted")
	}
}

func TestRecodePointers(t *testing.T) {
	src := `
		int v[8];
		void fill(int *p, int n) {
			for (int i = 0; i < 8; i++) {
				*(p + i) = i * 4;
			}
		}
		void main() {
			fill(v, 8);
			int *q = &v[3];
			print(*q);
		}
	`
	r, _ := New(src)
	if err := r.RecodePointers("fill"); err != nil {
		t.Fatal(err)
	}
	if err := r.RecodePointers("main"); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, src, r)
	out := r.Source()
	if strings.Contains(out, "*(p + i)") {
		t.Fatalf("pointer expression survived:\n%s", out)
	}
	if !strings.Contains(out, "p[i]") || !strings.Contains(out, "q[0]") {
		t.Fatalf("indexing not synthesized:\n%s", out)
	}
}

func TestPruneControl(t *testing.T) {
	src := `
		void main() {
			int x = 0;
			if (1) {
				x = 3 * 4 + 2;
			} else {
				x = 99;
			}
			if (0) {
				x = 1000;
			}
			print(x);
		}
	`
	r, _ := New(src)
	if err := r.PruneControl("main"); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, src, r)
	out := r.Source()
	if strings.Contains(out, "if (1)") || strings.Contains(out, "if (0)") || strings.Contains(out, "99") {
		t.Fatalf("dead branches survived:\n%s", out)
	}
	if !strings.Contains(out, "14") {
		t.Fatalf("constant not folded:\n%s", out)
	}
}

// TestFullRecodingChain drives the complete section VI workflow the
// paper sketches and checks behaviour preservation end to end.
func TestFullRecodingChain(t *testing.T) {
	src := `
		int raw[48];
		int mid[48];
		int total;
		void main() {
			for (int i = 0; i < 48; i++) {
				raw[i] = i * 5 - 7;
			}
			for (int i = 0; i < 48; i++) {
				mid[i] = abs(raw[i]) + 3;
			}
			total = 0;
			for (int i = 0; i < 48; i++) {
				total += mid[i];
			}
			print(total);
		}
	`
	r, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	// 1. Understand the sharing structure.
	report, err := r.AnalyzeShared("main")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "parallelizable") {
		t.Fatalf("analysis found no parallelism:\n%s", report)
	}
	// 2-4. Partition the three loops into tasks.
	if err := r.SplitLoopToTasks("main", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.SplitLoopToTasks("main", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.SplitLoopToTasks("main", 0, 2); err != nil {
		t.Fatal(err)
	}
	// 5. Split the now task-private intermediate vectors.
	if err := r.SplitVector("mid"); err != nil {
		t.Fatal(err)
	}
	mustPreserve(t, src, r)
	if len(r.Journal) != 4 {
		t.Fatalf("journal = %+v", r.Journal)
	}
	if r.ManualEditEstimate() < 20 {
		t.Fatalf("manual estimate suspiciously low: %d", r.ManualEditEstimate())
	}
	if r.ProductivityFactor() < 5 {
		t.Fatalf("productivity factor %g too low", r.ProductivityFactor())
	}
}

func TestJournalAccounting(t *testing.T) {
	r, _ := New(sumSrc)
	_ = r.SplitLoop("main", 0, 2)
	_ = r.SplitLoop("main", 2, 2)
	if len(r.Journal) != 2 {
		t.Fatalf("journal length %d", len(r.Journal))
	}
	if r.ManualEditEstimate() <= 0 || r.ProductivityFactor() <= 0 {
		t.Fatal("accounting empty")
	}
}
