package dse

import (
	"encoding/json"
	"testing"

	"mpsockit/internal/sim"
)

// TestMultiSingleAppEquivalence: a multi: point with one app must be
// byte-identical in metrics to the corresponding single-workload
// point — the scenario of one application IS that application, so the
// multi path must not perturb a single event of its evaluation.
func TestMultiSingleAppEquivalence(t *testing.T) {
	plats := []PlatSpec{
		{Kind: "homog", Cores: 4, Fabric: "mesh", DVFS: 1},
		{Kind: "wireless", Fabric: "bus", DVFS: 2},
	}
	type wl struct {
		kind string
		n    int
	}
	cases := []struct {
		wl   wl
		heur string
		fid  FidelitySpec
	}{
		{wl{"jpeg", 0}, "list", FidelitySpec{Kind: "mvp"}},
		{wl{"carradio", 0}, "anneal", FidelitySpec{Kind: "mvp"}},
		{wl{"synth", 8}, "list", FidelitySpec{Kind: "pipe", Iterations: 4}},
		{wl{"h264", 0}, "anneal", FidelitySpec{Kind: "vp", Quantum: 16}},
	}
	for _, plat := range plats {
		for _, tc := range cases {
			single := Point{
				ID: 1, Seed: 12345, Plat: plat,
				Workload: tc.wl.kind, N: tc.wl.n, WorkloadSeed: 777,
				Heuristic: tc.heur,
				Fidelity:  tc.fid.Kind, Iterations: tc.fid.Iterations, Quantum: tc.fid.Quantum,
			}
			multi := single
			multi.Workload = "multi:" + (WorkloadSpec{Kind: tc.wl.kind, N: tc.wl.n}).String()
			multi.N = 0
			multi.WorkloadSeed = 999 // scenario seed; the app carries the instance seed
			multi.Apps = []AppRef{{Kind: tc.wl.kind, N: tc.wl.n, Seed: 777}}

			rs := Evaluate(single)
			rm := Evaluate(multi)
			if rs.Err != "" || rm.Err != "" {
				t.Fatalf("%v %s %s: errs %q / %q", plat, single.Workload, tc.heur, rs.Err, rm.Err)
			}
			sb, _ := json.Marshal(rs.Metrics)
			mb, _ := json.Marshal(rm.Metrics)
			if string(sb) != string(mb) {
				t.Errorf("%v %s/%s/%s: single-app multi diverges\nsingle: %s\nmulti:  %s",
					plat, single.Workload, tc.heur, tc.fid, sb, mb)
			}
		}
	}
}

// TestCustomMixReproducesPresets: a custom plat= token spelling out a
// named preset's core mix must produce identical execution behavior —
// every ExecStats-derived metric matches; only the area proxy may
// differ (mix defaults assign class-default local memories, which the
// mpcore and celllike presets size differently).
func TestCustomMixReproducesPresets(t *testing.T) {
	pairs := []struct {
		named, mix string
	}{
		{"homog8", "8xrisc"},
		{"mpcore4", "4xrisc@600"},
		{"celllike4", "1xctrl+4xdsp@3200"},
		{"wireless", "2xrisc@400+2xdsp+1xvliw+1xacc"},
	}
	for _, pair := range pairs {
		named, err := parsePlat(pair.named)
		if err != nil {
			t.Fatal(err)
		}
		mix, err := parsePlat(pair.mix)
		if err != nil {
			t.Fatal(err)
		}
		if named.CoreCount() != mix.CoreCount() {
			t.Fatalf("%s: %d cores vs %s: %d", pair.named, named.CoreCount(), pair.mix, mix.CoreCount())
		}
		for _, fab := range []string{"mesh", "bus"} {
			for _, wl := range []string{"jpeg", "carradio"} {
				for _, heur := range []string{"list", "anneal"} {
					a := Point{ID: 3, Seed: 99, Workload: wl, Heuristic: heur, Fidelity: "mvp"}
					a.Plat = named
					a.Plat.Fabric = fab
					a.Plat.DVFS = 1
					b := a
					b.Plat = mix
					b.Plat.Fabric = fab
					b.Plat.DVFS = 1
					ra, rb := Evaluate(a), Evaluate(b)
					if ra.Err != "" || rb.Err != "" {
						t.Fatalf("%s/%s/%s/%s: errs %q / %q", pair.named, fab, wl, heur, ra.Err, rb.Err)
					}
					ma, mb := ra.Metrics, rb.Metrics
					ma.Area, mb.Area = 0, 0
					ja, _ := json.Marshal(ma)
					jb, _ := json.Marshal(mb)
					if string(ja) != string(jb) {
						t.Errorf("%s vs %s (%s %s %s): ExecStats diverge\nnamed: %s\nmix:   %s",
							pair.named, pair.mix, fab, wl, heur, ja, jb)
					}
				}
			}
		}
	}
}

// TestMultiScenarioCacheIdentity: a reused context must never serve a
// cached scenario to a point whose constituent app seeds differ, even
// when the workload token and scenario seed collide — reused-context
// evaluation stays byte-identical to fresh-context evaluation.
func TestMultiScenarioCacheIdentity(t *testing.T) {
	base := Point{
		ID: 1, Seed: 8, Plat: PlatSpec{Kind: "homog", Cores: 4, Fabric: "mesh", DVFS: 1},
		Workload: "multi:synth8+synth8", WorkloadSeed: 55,
		Heuristic: "list", Fidelity: "mvp",
	}
	a := base
	a.Apps = []AppRef{{Kind: "synth", N: 8, Seed: 100}, {Kind: "synth", N: 8, Seed: 200}}
	b := base
	b.Apps = []AppRef{{Kind: "synth", N: 8, Seed: 300}, {Kind: "synth", N: 8, Seed: 400}}
	ctx := NewEvalContext()
	for _, p := range []Point{a, b} {
		reused := ctx.Evaluate(p)
		fresh := Evaluate(p)
		if reused.Err != "" || fresh.Err != "" {
			t.Fatalf("errs %q / %q", reused.Err, fresh.Err)
		}
		rb, _ := json.Marshal(reused.Metrics)
		fb, _ := json.Marshal(fresh.Metrics)
		if string(rb) != string(fb) {
			t.Fatalf("reused context diverged from fresh for apps %v:\nreused: %s\nfresh:  %s", p.Apps, rb, fb)
		}
	}
}

// TestMultiExecutePerAppMakespans: per-app makespans of a concurrent
// scenario bound the aggregate makespan, and the slowest app defines
// it.
func TestMultiExecutePerAppMakespans(t *testing.T) {
	p := Point{
		ID: 5, Seed: 31, Plat: PlatSpec{Kind: "wireless", Fabric: "mesh", DVFS: 1},
		Workload: "multi:jpeg+carradio+synth8", WorkloadSeed: 4,
		Apps: []AppRef{
			{Kind: "jpeg", Seed: 11}, {Kind: "carradio", Seed: 12}, {Kind: "synth", N: 8, Seed: 13},
		},
		Heuristic: "list", Fidelity: "mvp",
	}
	r := Evaluate(p)
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	m := r.Metrics
	if len(m.AppMakespanPS) != 3 {
		t.Fatalf("got %d app makespans", len(m.AppMakespanPS))
	}
	var worst int64
	for i, mk := range m.AppMakespanPS {
		if mk <= 0 {
			t.Fatalf("app %d has makespan %d", i, mk)
		}
		if mk > worst {
			worst = mk
		}
	}
	if sim.Time(worst) != m.Makespan {
		t.Fatalf("slowest app %d != scenario makespan %v", worst, m.Makespan)
	}
	if m.WorstLoadCPS <= 0 || m.WorstLoadCPS > 1e12 {
		t.Fatalf("implausible worst-case load %g", m.WorstLoadCPS)
	}
	// The concurrent scenario cannot be faster than its slowest
	// constituent run alone on the same platform.
	alone := Evaluate(Point{
		ID: 6, Seed: 31, Plat: p.Plat,
		Workload: "jpeg", WorkloadSeed: 11, Heuristic: "list", Fidelity: "mvp",
	})
	if alone.Err != "" {
		t.Fatal(alone.Err)
	}
	if m.Makespan < alone.Metrics.Makespan {
		t.Fatalf("concurrent scenario (%v) beat jpeg alone (%v)", m.Makespan, alone.Metrics.Makespan)
	}
	// At vp fidelity the headline makespan is ISS-refined; task-level
	// per-app makespans would contradict it and must not be emitted.
	vp := p
	vp.Fidelity, vp.Quantum = "vp", 16
	rvp := Evaluate(vp)
	if rvp.Err != "" {
		t.Fatal(rvp.Err)
	}
	if len(rvp.Metrics.AppMakespanPS) != 0 {
		t.Fatalf("vp multi point emitted task-level app makespans %v", rvp.Metrics.AppMakespanPS)
	}
	if rvp.Metrics.WorstLoadCPS != m.WorstLoadCPS {
		t.Fatalf("worst-case load depends on fidelity: %g vs %g", rvp.Metrics.WorstLoadCPS, m.WorstLoadCPS)
	}
}
