package dse

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestAtomicWriteFile checks the durability contract: the target file
// either keeps its old content or carries the complete new content,
// never a torn mix, and a failed writer leaves no temp litter behind.
func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")

	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first\n" {
		t.Fatalf("content %q", got)
	}

	// Overwrite succeeds atomically.
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("second, longer than before\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second, longer than before\n" {
		t.Fatalf("content after rewrite %q", got)
	}

	// A writer that fails mid-stream must not disturb the original.
	boom := errors.New("boom")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want wrapped boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second, longer than before\n" {
		t.Fatalf("failed write clobbered the file: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.jsonl" {
		t.Fatalf("temp litter left behind: %v", ents)
	}
}

// TestPeekHeader checks header-only inspection of a checkpoint log,
// the primitive the coordinator's directory rescan is built on.
func TestPeekHeader(t *testing.T) {
	sw, err := ParseSweep("smoke", 7)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeader("smoke", 7, points, nil)
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		return WriteHeader(w, h)
	}); err != nil {
		t.Fatal(err)
	}
	got, err := PeekHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecHash != h.SpecHash || got.Seed != h.Seed || got.Spec != h.Spec {
		t.Fatalf("peeked %+v, want %+v", got, h)
	}
	if _, err := PeekHeader(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("PeekHeader on a missing file succeeded")
	}
}
