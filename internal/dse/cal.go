package dse

import (
	"fmt"
	"math"
	"strings"

	"mpsockit/internal/mapping"
	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
)

// Calibration (fid=cal:K) closes the loop between the cheap
// task-level estimator and the instruction-level virtual platform:
// per (platform, workload) group, K probe mappings are executed at
// task level and re-measured on the vp, per-PE-class WCET scale
// factors are fitted to the paired samples by least squares through
// the origin, and every group member's bottleneck compute is rescaled
// by its class's factor. Probes are stamped into each point at sweep
// expansion (Point.CalProbes), so the fit is a pure function of the
// point itself — any worker or shard recomputes the identical factors,
// which is what keeps sharded cal sweeps byte-identical.

// calEntry is one group's fitted calibration: per-class scale
// factors, the pooled fallback factor, the fit residual, and each
// probe's vp-refined makespan (reused verbatim when a group member is
// itself a probe).
type calEntry struct {
	scale    map[platform.PEClass]float64
	global   float64
	rms      float64
	n        int
	measured []sim.Time
}

// scaleFor returns the class's fitted factor, falling back to the
// pooled fit for classes no probe bottlenecked on.
func (e *calEntry) scaleFor(class platform.PEClass) float64 {
	if s, ok := e.scale[class]; ok {
		return s
	}
	return e.global
}

// calKey is a cal point's group fit identity: platform, workload
// instance, probe quantum and the full probe list. Everything the fit
// depends on and nothing else, so group members hit one cache entry
// and differently-probed groups can never alias.
func calKey(p Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s/%d/%d|q%d", p.Plat.String(), p.Workload, p.N, p.WorkloadSeed, p.Quantum)
	for _, a := range p.Apps {
		fmt.Fprintf(&b, "|a:%s/%d/%d", a.Kind, a.N, a.Seed)
	}
	for _, pr := range p.CalProbes {
		fmt.Fprintf(&b, "|p:%s/%d", pr.Heur, pr.Seed)
	}
	return b.String()
}

// probeIndex returns the point's index among its own probes, or -1
// when the point's mapping was not probed.
func (p Point) probeIndex() int {
	for i, pr := range p.CalProbes {
		if pr.Heur == p.Heuristic && pr.Seed == p.Seed {
			return i
		}
	}
	return -1
}

// bottleneckPE returns the busiest PE (ties to the lowest index) and
// its busy time, or (-1, 0) when nothing computed.
func bottleneckPE(stats mapping.ExecStats) (int, sim.Time) {
	pe, best := -1, sim.Time(0)
	for i, b := range stats.PEBusy {
		if b > best {
			pe, best = i, b
		}
	}
	return pe, best
}

// calibrate rescales the point's task-level makespan by its group's
// fitted factor for the bottleneck PE class and stamps the audit
// metrics (factor, residual, sample count). A point that is one of
// its group's probes takes its vp measurement verbatim — so cal with
// probes covering the whole group ranks exactly as vp fidelity.
func (c *EvalContext) calibrate(p Point, plat *platform.Platform, stats mapping.ExecStats, m *Metrics, units int) error {
	if len(p.CalProbes) == 0 {
		return fmt.Errorf("dse: cal point %d has no probes", p.ID)
	}
	fit, err := c.calFit(p)
	if err != nil {
		return err
	}
	m.CalRMS = fit.rms
	m.CalSamples = fit.n
	pe, maxBusy := bottleneckPE(stats)
	if pe < 0 {
		return nil // no compute, nothing to rescale
	}
	scale := fit.scaleFor(plat.Cores[pe].Class)
	m.CalScale = scale
	if i := p.probeIndex(); i >= 0 {
		m.Makespan = fit.measured[i]
	} else {
		m.Makespan = stats.Makespan - maxBusy + sim.Time(scale*float64(maxBusy))
	}
	if m.Makespan > 0 {
		m.ThroughputHz = float64(units) / m.Makespan.Seconds()
	}
	return nil
}

// calFit returns the point's group calibration, computing and caching
// it on first sight: each probe mapping is scheduled and executed at
// task level, its bottleneck compute re-measured on the pooled vp,
// and per-class scale factors fitted to the (task-level busy,
// vp-measured compute) pairs by least squares through the origin.
func (c *EvalContext) calFit(p Point) (*calEntry, error) {
	key := calKey(p)
	if e, ok := c.cals[key]; ok {
		c.obs.CalHits.Inc()
		return e, nil
	}
	c.obs.CalMisses.Inc()
	type sample struct {
		class platform.PEClass
		x, y  float64
	}
	var samples []sample
	e := &calEntry{scale: map[platform.PEClass]float64{}, global: 1}
	// Probes run on their own kernel so the caller's platform and
	// execution record stay untouched mid-evaluation.
	var pk *sim.Kernel
	var pkBase kernelBase
	for _, pr := range p.CalProbes {
		k := reuseKernel(&pk)
		plat, _, err := buildPlatform(k, p.Plat)
		if err != nil {
			return nil, err
		}
		g, spans, _, err := c.pointGraph(p)
		if err != nil {
			return nil, err
		}
		heur, err := mapping.ParseHeuristic(pr.Heur)
		if err != nil {
			return nil, err
		}
		c.me.Bind(g, plat)
		a, err := c.me.Map(mapping.Options{Heuristic: heur, Seed: pr.Seed})
		if err != nil {
			return nil, err
		}
		var stats mapping.ExecStats
		if spans != nil {
			stats, _, err = mapping.ExecuteMulti(a, spans)
		} else {
			stats, err = mapping.Execute(a)
		}
		if err != nil {
			return nil, err
		}
		refined, _, _, err := c.vpRefine(p, stats)
		if err != nil {
			return nil, err
		}
		e.measured = append(e.measured, refined)
		if pe, maxBusy := bottleneckPE(stats); pe >= 0 {
			samples = append(samples, sample{
				class: plat.Cores[pe].Class,
				x:     float64(maxBusy),
				// The probe's vp-measured compute is the refinement
				// minus the task-level communication slack it carried
				// through unchanged.
				y: float64(refined - (stats.Makespan - maxBusy)),
			})
		}
		if c.obs.SimExecuted != nil {
			c.obs.absorb(&pkBase, k)
		}
	}
	e.n = len(samples)
	var gx2, gxy float64
	sums := map[platform.PEClass][2]float64{}
	for _, s := range samples {
		a := sums[s.class]
		a[0] += s.x * s.x
		a[1] += s.x * s.y
		sums[s.class] = a
		gx2 += s.x * s.x
		gxy += s.x * s.y
	}
	if gx2 > 0 {
		e.global = gxy / gx2
	}
	for class, a := range sums {
		if a[0] > 0 {
			e.scale[class] = a[1] / a[0]
		}
	}
	if len(samples) > 0 {
		var se float64
		for _, s := range samples {
			d := s.y - e.scaleFor(s.class)*s.x
			se += d * d
		}
		e.rms = math.Sqrt(se / float64(len(samples)))
	}
	c.cals[key] = e
	return e, nil
}
