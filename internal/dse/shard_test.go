package dse

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func expandSweep(t *testing.T, spec string, seed uint64) []Point {
	t.Helper()
	sw, err := ParseSweep(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// TestPlanShardsProperties: shards are contiguous, cover every point
// exactly once, stay within the greedy balance bound, and the plan is
// a pure function of (points, n).
func TestPlanShardsProperties(t *testing.T) {
	points := expandSweep(t, "default", 1)
	total, maxCost := 0.0, 0.0
	for _, p := range points {
		c := EstCost(p)
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	for _, n := range []int{1, 2, 3, 5, 8, 31} {
		shards, err := PlanShards(points, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != n {
			t.Fatalf("n=%d: got %d shards", n, len(shards))
		}
		lo := 0
		for k, s := range shards {
			if s.Index != k || s.Count != n {
				t.Fatalf("n=%d shard %d mislabelled: %+v", n, k, s)
			}
			if s.Lo != lo || s.Hi < s.Lo {
				t.Fatalf("n=%d shard %d not contiguous: %+v (want Lo=%d)", n, k, s, lo)
			}
			cost := 0.0
			for _, p := range points[s.Lo:s.Hi] {
				cost += EstCost(p)
			}
			if bound := total/float64(n) + maxCost + 1e-9; cost > bound {
				t.Fatalf("n=%d shard %d cost %.1f exceeds balance bound %.1f", n, k, cost, bound)
			}
			lo = s.Hi
		}
		if lo != len(points) {
			t.Fatalf("n=%d shards cover %d of %d points", n, lo, len(points))
		}
		again, _ := PlanShards(points, n)
		if !reflect.DeepEqual(shards, again) {
			t.Fatalf("n=%d plan is not deterministic", n)
		}
	}
	// Splitting exactly one point per shard is the finest legal plan.
	few := points[:3]
	shards, err := PlanShards(few, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range shards {
		if s.Len() != 1 {
			t.Fatalf("shard %d of 3 over 3 points has %d points (want 1)", k, s.Len())
		}
	}
}

// TestPlanShardsErrors: asking for more shards than points, or a
// non-positive count, is an actionable error naming the valid range —
// not a plan with silently empty shards. Property-checked over a
// range of invalid counts.
func TestPlanShardsErrors(t *testing.T) {
	points := expandSweep(t, "smoke", 1)
	for _, n := range []int{0, -1, -100} {
		if _, err := PlanShards(points, n); err == nil || !strings.Contains(err.Error(), ">= 1") {
			t.Errorf("PlanShards(n=%d) = %v, want >=1 error", n, err)
		}
	}
	wantRange := fmt.Sprintf("1..%d", len(points))
	for _, n := range []int{len(points) + 1, len(points) + 7, 10 * len(points)} {
		_, err := PlanShards(points, n)
		if err == nil || !strings.Contains(err.Error(), wantRange) {
			t.Errorf("PlanShards(n=%d) over %d points = %v, want error naming range %s", n, len(points), err, wantRange)
		}
	}
	if _, err := PlanShards(nil, 1); err == nil {
		t.Error("PlanShards over zero points accepted")
	}
}

func TestParseShardArg(t *testing.T) {
	k, n, err := ParseShardArg("2/5")
	if err != nil || k != 2 || n != 5 {
		t.Fatalf("ParseShardArg(2/5) = %d, %d, %v", k, n, err)
	}
	// Each failure mode gets its own actionable message: the error
	// must say what is wrong, not just "bad shard".
	for _, tc := range []struct{ in, want string }{
		{"", "want K/N"},
		{"3", "want K/N"},
		{"a/b", "integers"},
		{"1/x", "integers"},
		{"1/0", "must be >= 1"},
		{"1/-2", "must be >= 1"},
		{"0/0", "must be >= 1"},
		{"5/5", "0..4"},
		{"-1/3", "0..2"},
	} {
		_, _, err := ParseShardArg(tc.in)
		if err == nil {
			t.Errorf("ParseShardArg(%q) accepted", tc.in)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseShardArg(%q) = %v, want message containing %q", tc.in, err, tc.want)
		}
	}
}

func TestShardPath(t *testing.T) {
	for _, tc := range []struct {
		out  string
		k    int
		want string
	}{
		{"dse.jsonl", 2, "dse.shard-2.jsonl"},
		{"out", 0, "out.shard-0"},
		{"/tmp/v1.2/out", 1, "/tmp/v1.2/out.shard-1"},
		{"/tmp/run/a.jsonl", 3, "/tmp/run/a.shard-3.jsonl"},
	} {
		if got := ShardPath(tc.out, tc.k); got != tc.want {
			t.Errorf("ShardPath(%q, %d) = %q, want %q", tc.out, tc.k, got, tc.want)
		}
	}
}

// runShardFile emulates one cmd/dse shard invocation in-process:
// header line plus the shard's results streamed in point order.
func runShardFile(t *testing.T, path, spec string, seed uint64, shard *Shard, workers int) {
	t.Helper()
	points := expandSweep(t, spec, seed)
	slice := points
	if shard != nil {
		slice = points[shard.Lo:shard.Hi]
	}
	var buf bytes.Buffer
	if err := WriteHeader(&buf, NewHeader(spec, seed, points, shard)); err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: workers, OnResult: func(r Result) {
		if err := WriteResult(&buf, r); err != nil {
			t.Error(err)
		}
	}}
	for _, r := range eng.Run(slice) {
		if r.Err != "" {
			t.Fatalf("point %d failed: %s", r.Point.ID, r.Err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShardMergeByteIdentity is the distribution contract: splitting
// the default sweep into k shards (each evaluated with a different
// worker count, as different hosts would), then merging, must
// reproduce the unsharded JSONL byte for byte — and therefore the
// same Pareto fronts and hypervolumes — for shard counts 2 and 5.
func TestShardMergeByteIdentity(t *testing.T) {
	spec := "default"
	if testing.Short() {
		spec = "smoke"
	}
	const seed = 1
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	runShardFile(t, full, spec, seed, nil, 4)
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	points := expandSweep(t, spec, seed)
	wantHV := HVTable(Hypervolumes(mustMerge(t, []string{full}).Results), false)
	for _, n := range []int{2, 5} {
		shards, err := PlanShards(points, n)
		if err != nil {
			t.Fatal(err)
		}
		var paths []string
		for k := range shards {
			path := ShardPath(filepath.Join(dir, "s.jsonl"), k)
			runShardFile(t, path, spec, seed, &shards[k], k+1)
			paths = append(paths, path)
		}
		m := mustMerge(t, paths)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("%d-shard merge diverged from unsharded run (%d vs %d bytes)", n, buf.Len(), len(want))
		}
		if gotHV := HVTable(Hypervolumes(m.Results), false); gotHV != wantHV {
			t.Fatalf("%d-shard hypervolumes diverged:\n%s\nvs\n%s", n, gotHV, wantHV)
		}
	}
}

func mustMerge(t *testing.T, paths []string) *Merged {
	t.Helper()
	m, err := MergeShards(paths)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
