package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"mpsockit/internal/obs"
)

// sweepResultBytes runs the spec through an Engine and returns the
// result stream as JSONL bytes.
func sweepResultBytes(t *testing.T, spec string, workers int, o EvalObs, tr *obs.Tracer) []byte {
	t.Helper()
	sw, err := ParseSweep(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	eng := Engine{Workers: workers, Obs: o, Tracer: tr, OnResult: func(r Result) {
		if err := enc.Encode(r); err != nil {
			t.Error(err)
		}
	}}
	pts, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	eng.RunContext(context.Background(), pts)
	return buf.Bytes()
}

// TestInstrumentedSweepByteIdentical is the telemetry-is-a-side-channel
// regression: a sweep with live metrics and tracing attached must emit
// byte-identical result JSONL to an unobserved run, and the metrics
// must actually have moved.
func TestInstrumentedSweepByteIdentical(t *testing.T) {
	const spec = "smoke"
	plain := sweepResultBytes(t, spec, 3, EvalObs{}, nil)

	r := obs.NewRegistry()
	o := NewEvalObs(r)
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf)
	observed := sweepResultBytes(t, spec, 3, o, tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(plain, observed) {
		t.Fatalf("instrumentation changed result bytes:\n--- plain ---\n%s\n--- observed ---\n%s", plain, observed)
	}
	sw, _ := ParseSweep(spec, 42)
	pts, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(pts))
	if got := o.Points.Value(); got != n {
		t.Fatalf("dse_points_total = %d, want %d", got, n)
	}
	if o.SimExecuted.Value() == 0 || o.SimScheduled.Value() == 0 {
		t.Fatal("kernel event counters did not move")
	}
	if o.Search.Schedules.Value() == 0 {
		t.Fatal("mapping schedule counter did not move")
	}
	if tr.Spans() < n {
		t.Fatalf("tracer recorded %d spans for %d points", tr.Spans(), n)
	}
	var events []map[string]any
	if err := json.Unmarshal(traceBuf.Bytes(), &events); err != nil {
		t.Fatalf("trace unparseable: %v", err)
	}
	if int64(len(events)) != tr.Spans() {
		t.Fatalf("decoded %d events, Spans() says %d", len(events), tr.Spans())
	}
}

// TestEvalObsCachesAndLatency: a reused context hits its caches on the
// second sight of a point, and every evaluation lands in the
// fidelity's latency histogram.
func TestEvalObsCachesAndLatency(t *testing.T) {
	r := obs.NewRegistry()
	o := NewEvalObs(r)
	c := NewEvalContext()
	c.SetObs(o)
	p := Point{
		Seed: 1, Plat: PlatSpec{Kind: "homog", Cores: 4, Fabric: "bus"},
		Workload: "synth", N: 8, WorkloadSeed: 5, Heuristic: "list", Fidelity: "mvp",
	}
	for i := 0; i < 3; i++ {
		if res := c.Evaluate(p); res.Err != "" {
			t.Fatal(res.Err)
		}
	}
	if o.GraphMisses.Value() != 1 || o.GraphHits.Value() != 2 {
		t.Fatalf("graph cache hits/misses = %d/%d, want 2/1",
			o.GraphHits.Value(), o.GraphMisses.Value())
	}
	if o.LatMVP.Count() != 3 {
		t.Fatalf("mvp latency count = %d, want 3", o.LatMVP.Count())
	}
	if o.Points.Value() != 3 || o.Errors.Value() != 0 {
		t.Fatalf("points/errors = %d/%d", o.Points.Value(), o.Errors.Value())
	}

	// A failing point lands in Errors but still counts as a point.
	if res := c.Evaluate(Point{Plat: p.Plat, Workload: "synth", N: 8, WorkloadSeed: 5,
		Heuristic: "list", Fidelity: "bogus"}); res.Err == "" {
		t.Fatal("bogus fidelity did not error")
	}
	if o.Errors.Value() != 1 || o.Points.Value() != 4 {
		t.Fatalf("after failure points/errors = %d/%d, want 4/1", o.Points.Value(), o.Errors.Value())
	}
}

// TestInstrumentationAllocFree proves the instrumented steady-state
// evaluation path allocates exactly as much as the unobserved one —
// the SweepPoint analogue of the 0-allocs/op bench guard, measured as
// an equality so it stays meaningful even though a full evaluation
// itself allocates (platform build, result slices).
func TestInstrumentationAllocFree(t *testing.T) {
	p := Point{
		Seed: 12345, Plat: PlatSpec{Kind: "wireless", Fabric: "mesh", DVFS: 1},
		Workload: "synth", N: 16, WorkloadSeed: 99, Heuristic: "anneal", Fidelity: "mvp",
	}
	plain := NewEvalContext()
	observed := NewEvalContext()
	observed.SetObs(NewEvalObs(obs.NewRegistry()))
	run := func(c *EvalContext) float64 {
		return testing.AllocsPerRun(20, func() {
			if r := c.Evaluate(p); r.Err != "" {
				t.Fatal(r.Err)
			}
		})
	}
	a, b := run(plain), run(observed)
	if a != b {
		t.Fatalf("instrumentation changed allocations: plain %.0f, observed %.0f allocs/op", a, b)
	}
}
