package dse

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mpsockit/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden sweep regression files")

// TestDefaultSweepGolden pins the default sweep's observable output —
// the JSONL provenance header (whose spec_hash fingerprints every
// expanded point and derived seed), the per-workload Pareto fronts,
// and their hypervolumes — against a committed golden file. Silent
// determinism drift anywhere in the stack (expansion, seeding,
// mapping search, execution, metrics, front extraction, hypervolume)
// shows up here as a diff instead of surviving until a cross-host
// merge fails. Regenerate deliberately with:
//
//	go test ./internal/dse/ -run TestDefaultSweepGolden -update-golden
func TestDefaultSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates the full 612-point default sweep; skipped under -short")
	}
	sw, err := ParseSweep("default", 1)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHeader(&buf, NewHeader("default", 1, points, nil)); err != nil {
		t.Fatal(err)
	}
	// The golden run carries full telemetry — a live metrics registry
	// and a span tracer — so matching the golden file (recorded before
	// instrumentation existed) proves observation never changes an
	// output byte on the real 612-point sweep.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(io.Discard)
	results := (&Engine{Obs: NewEvalObs(reg), Tracer: tracer}).Run(points)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("point %d failed: %s", r.Point.ID, r.Err)
		}
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := tracer.Spans(), int64(len(points)); got < want {
		t.Fatalf("tracer recorded %d spans, want at least one per evaluated point (%d)", got, want)
	}
	front := GroupedFront(results)
	buf.WriteString(FrontTable(results, front))
	buf.WriteString(HVTable(Hypervolumes(results), false))

	path := filepath.Join("testdata", "default_sweep.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("default sweep drifted from %s.\nThe header, fronts or hypervolumes changed — if intentional, regenerate with -update-golden and call the change out in the PR.\n--- got ---\n%s\n--- want ---\n%s",
			path, truncate(buf.Bytes()), truncate(want))
	}
}

// TestCalSweepGolden pins a small vp-heavy sweep — instruction-level
// vp64 points next to cal:1 (one probe per group, siblings corrected)
// and cal:4 (probes cover both heuristics, degenerating to vp) — to a
// committed golden: the provenance header, every cal point's fitted
// factor, residual and calibrated makespan, and the fronts and
// hypervolumes. On top of the byte pin it asserts the calibration
// acceptance bound: calibrated makespans are strictly closer to the
// vp ground truth, in mean absolute error, than the raw task-level
// estimates. Regenerate deliberately with:
//
//	go test ./internal/dse/ -run TestCalSweepGolden -update-golden
func TestCalSweepGolden(t *testing.T) {
	const spec = "plat=homog4,wireless;wl=jpeg,synth12;heur=list,anneal;fid=mvp,vp64,cal:1,cal:4"
	const seed = 5
	sw, err := ParseSweep(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHeader(&buf, NewHeader(spec, seed, points, nil)); err != nil {
		t.Fatal(err)
	}
	results := (&Engine{}).Run(points)
	vp := map[[3]string]float64{}
	mvp := map[[3]string]float64{}
	key := func(p Point) [3]string { return [3]string{p.Plat.String(), p.Workload, p.Heuristic} }
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("point %d failed: %s", r.Point.ID, r.Err)
		}
		switch r.Point.Fidelity {
		case "vp":
			vp[key(r.Point)] = float64(r.Metrics.Makespan)
		case "mvp":
			mvp[key(r.Point)] = float64(r.Metrics.Makespan)
		}
	}
	var calMAE, mvpMAE float64
	n := 0
	for _, r := range results {
		if r.Point.Fidelity != "cal" {
			continue
		}
		m := r.Metrics
		fmt.Fprintf(&buf, "cal %3d %-18s %-8s %-7s K=%d scale=%.9f rms_ps=%.3f n=%d makespan_ps=%d\n",
			r.Point.ID, r.Point.Plat.String(), r.Point.Workload, r.Point.Heuristic,
			len(r.Point.CalProbes), m.CalScale, m.CalRMS, m.CalSamples, int64(m.Makespan))
		truth := vp[key(r.Point)]
		calMAE += math.Abs(float64(m.Makespan) - truth)
		mvpMAE += math.Abs(mvp[key(r.Point)] - truth)
		n++
	}
	calMAE /= float64(n)
	mvpMAE /= float64(n)
	if calMAE >= mvpMAE {
		t.Errorf("calibration did not reduce error: calibrated MAE %.0f ps, raw task-level MAE %.0f ps (%d cal points)",
			calMAE, mvpMAE, n)
	}
	front := GroupedFront(results)
	buf.WriteString(FrontTable(results, front))
	buf.WriteString(HVTable(Hypervolumes(results), false))

	path := filepath.Join("testdata", "cal_sweep.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("calibration sweep drifted from %s.\nThe header, fitted factors, fronts or hypervolumes changed — if intentional, regenerate with -update-golden and call the change out in the PR.\n--- got ---\n%s\n--- want ---\n%s",
			path, truncate(buf.Bytes()), truncate(want))
	}
}

// truncate keeps failure output readable; the full files diff better
// offline.
func truncate(b []byte) []byte {
	const max = 4096
	if len(b) <= max {
		return b
	}
	return append(append([]byte(nil), b[:max]...), []byte("\n... (truncated)")...)
}
