package dse

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mpsockit/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden sweep regression files")

// TestDefaultSweepGolden pins the default sweep's observable output —
// the JSONL provenance header (whose spec_hash fingerprints every
// expanded point and derived seed), the per-workload Pareto fronts,
// and their hypervolumes — against a committed golden file. Silent
// determinism drift anywhere in the stack (expansion, seeding,
// mapping search, execution, metrics, front extraction, hypervolume)
// shows up here as a diff instead of surviving until a cross-host
// merge fails. Regenerate deliberately with:
//
//	go test ./internal/dse/ -run TestDefaultSweepGolden -update-golden
func TestDefaultSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates the full 612-point default sweep; skipped under -short")
	}
	sw, err := ParseSweep("default", 1)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHeader(&buf, NewHeader("default", 1, points, nil)); err != nil {
		t.Fatal(err)
	}
	// The golden run carries full telemetry — a live metrics registry
	// and a span tracer — so matching the golden file (recorded before
	// instrumentation existed) proves observation never changes an
	// output byte on the real 612-point sweep.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(io.Discard)
	results := (&Engine{Obs: NewEvalObs(reg), Tracer: tracer}).Run(points)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("point %d failed: %s", r.Point.ID, r.Err)
		}
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := tracer.Spans(), int64(len(points)); got < want {
		t.Fatalf("tracer recorded %d spans, want at least one per evaluated point (%d)", got, want)
	}
	front := GroupedFront(results)
	buf.WriteString(FrontTable(results, front))
	buf.WriteString(HVTable(Hypervolumes(results), false))

	path := filepath.Join("testdata", "default_sweep.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("default sweep drifted from %s.\nThe header, fronts or hypervolumes changed — if intentional, regenerate with -update-golden and call the change out in the PR.\n--- got ---\n%s\n--- want ---\n%s",
			path, truncate(buf.Bytes()), truncate(want))
	}
}

// truncate keeps failure output readable; the full files diff better
// offline.
func truncate(b []byte) []byte {
	const max = 4096
	if len(b) <= max {
		return b
	}
	return append(append([]byte(nil), b[:max]...), []byte("\n... (truncated)")...)
}
