// Package dse is the parallel design-space exploration engine: it
// sweeps the cross product of platform configurations (core counts,
// PE-class mixes, DVFS operating points, interconnect topologies) ×
// mapping heuristics × workloads × simulation fidelities, evaluating
// every design point on its own sim.Kernel in a worker pool. This is
// the loop the paper's tooling exists to serve — MAPS maps task
// graphs "taking into account real-time requirements and preferred PE
// classes", and fast abstract simulation (the MVP, PR 1's temporal
// decoupling) is what makes evaluating thousands of candidate designs
// cheap enough to do before committing to hardware.
//
// Design points are embarrassingly parallel: each evaluation builds a
// private kernel, fabric and platform, so points share no mutable
// state and the pool scales with GOMAXPROCS. Results stream in point
// order regardless of completion order, which makes a sweep's JSONL
// output byte-reproducible for a given seed and resumable from a
// checkpoint prefix.
//
// # Distribution
//
// Sweeps distribute across processes and hosts without a coordinator.
// PlanShards splits the expanded point list into contiguous ID ranges
// balanced on EstCost; because planning is a pure function of the
// spec and every per-point seed derives from the sweep seed alone,
// each worker independently computes the same plan, evaluates its own
// range, and writes a shard file whose result lines are a literal
// substring of the unsharded output.
//
// Every sweep file starts with a Header line pinning the schema
// version, spec, seed, expanded-point hash and (for shards) the
// covered ID range. LoadCheckpoint validates it before resuming —
// a mismatched header is a loud error, not a silent restart — and
// MergeShards validates it before combining: shard headers must agree,
// the spec must re-expand to the recorded hash, duplicate point IDs
// must carry identical bytes, and the union must cover the full
// sweep. A merged file is byte-identical to an unsharded run.
//
// Front quality is quantified per workload: GroupedFront extracts
// per-workload Pareto fronts over latency, energy proxy and area
// proxy, and Hypervolumes reports each front's exact hypervolume
// indicator against a deterministic per-group reference point, so
// sweeps (full versus heuristic-restricted, merged versus unsharded)
// compare by a number rather than by front membership counts.
//
// # Sweep grammar
//
// ParseSweep accepts a preset name ("smoke", "default") or a
// ';'-separated dimension list. In EBNF:
//
//	spec     = preset | dims ;
//	preset   = "smoke" | "default" ;
//	dims     = dim , { ";" , dim } ;
//	dim      = key , "=" , value , { "," , value } ;
//	key      = "plat" | "fab" | "dvfs" | "wl" | "heur" | "fid"
//	         | "mem" ;
//
//	plat     = "homog" int | "mpcore" int | "celllike" int
//	         | "wireless" | mix ;
//	mix      = group , { "+" , group } ;
//	group    = int , "x" , class , [ "@" , int (* MHz *) ] ;
//	class    = "risc" | "dsp" | "vliw" | "acc" | "ctrl" ;
//
//	fab      = "mesh" | "bus" ;
//	dvfs     = int (* operating-point index, 0 = lowest *) ;
//
//	wl       = app | "jobs" int | "multi:" , app , { "+" , app } ;
//	app      = "jpeg" | "h264" | "carradio" | "synth" int ;
//
//	heur     = "list" | "anneal" | "exhaustive" ;
//	fid      = "mvp" | "pipe" int | "vp" int | "cal" ":" int ;
//	mem      = "ideal" | "bank" ":" int "x" int | "bw" ":" int ;
//
// A mix platform token ("2xrisc+4xdsp@3200") builds the listed core
// groups in order at class-default clocks and memories unless "@MHz"
// overrides the clock; a multi workload token
// ("multi:jpeg+carradio+synth8") evaluates the listed applications as
// one concurrent usage scenario — the union of their task graphs is
// mapped and executed with every application active at once, and the
// concurrency analysis reports the scenario's worst-case load. A
// "cal:K" fidelity token scores points at task-level (mvp) speed with
// calibrated makespans: per (platform, workload) group, up to K probe
// mappings are measured on the instruction-level virtual platform,
// per-PE-class WCET scale factors are fitted to the paired
// (task-level estimate, vp measurement) samples by least squares, and
// every point's bottleneck compute is rescaled by its class's factor
// (probe points reuse their vp measurement verbatim, so K covering
// the whole group degenerates to vp-identical ranking).
// A "mem=" dimension crosses memory-subsystem contention models into
// the sweep: "ideal" is the uncontended default (byte-identical to
// omitting the dimension), "bank:BxC" queues cross-PE payloads on B
// destination-hashed bank reservations behind C shared DMA channels,
// and "bw:G" serializes them through one DMA engine budgeted at G
// bytes/ns. The model charges its service time on both the mapping
// estimator and the simulated execute path; jobs workloads carry the
// token but are unaffected (the RTOS does no task transfers).
// Sweep.Spec renders any sweep back to this grammar canonically;
// parse→render→parse is the identity on expanded points.
package dse

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mpsockit/internal/obs"
	"mpsockit/internal/platform"
	"mpsockit/internal/sim"
)

// PlatSpec names one platform configuration of the sweep.
type PlatSpec struct {
	// Kind is homog, mpcore, celllike, wireless or custom (an
	// arbitrary core mix).
	Kind string `json:"kind"`
	// Cores is the core count for homog/mpcore and the DSP (SPE)
	// count for celllike; wireless is fixed at 6, custom sums Mix.
	Cores int `json:"cores,omitempty"`
	// Mix is the parsed core-mix spec of a custom platform
	// ("2xrisc+4xdsp"), empty for the named kinds.
	Mix []platform.MixGroup `json:"mix,omitempty"`
	// Fabric is mesh or bus.
	Fabric string `json:"fabric"`
	// DVFS is the frequency level index applied to every core before
	// mapping (0 = lowest). Levels are clamped per core.
	DVFS int `json:"dvfs"`
	// Mem is the memory-subsystem contention token ("bank:4x2",
	// "bw:8"). Empty is the ideal memory — mem=ideal canonicalizes to
	// empty at expansion, so points without a mem= dimension keep
	// their exact pre-axis JSON encoding (and spec hash).
	Mem string `json:"mem,omitempty"`
}

// CoreCount returns the number of PEs the spec builds.
func (s PlatSpec) CoreCount() int {
	switch s.Kind {
	case "wireless":
		return 6
	case "celllike":
		return s.Cores + 1
	case "custom":
		return platform.MixCoreCount(s.Mix)
	default:
		return s.Cores
	}
}

// Token renders the spec's platform-dimension token — the value that
// parses back to this spec via the plat= grammar ("homog8",
// "wireless", "2xrisc+4xdsp").
func (s PlatSpec) Token() string {
	switch s.Kind {
	case "wireless":
		return "wireless"
	case "custom":
		return platform.FormatMix(s.Mix)
	default:
		return s.Kind + strconv.Itoa(s.Cores)
	}
}

// String renders the spec as the compact "kind/fabric/dN" token used
// in tables and logs, with "/mem" appended when a memory model is
// attached. Calibration caches key on this string, so cal groups
// never mix measurements across memory models.
func (s PlatSpec) String() string {
	str := s.Token() + "/" + s.Fabric + "/d" + strconv.Itoa(s.DVFS)
	if s.Mem != "" {
		str += "/" + s.Mem
	}
	return str
}

// AppRef names one application of a multi-app design point: the
// workload kind, its size, and the seed generating its instance. The
// seed is derived exactly as for the corresponding single-workload
// token, so a multi point's constituents are the same instances the
// single points evaluate.
type AppRef struct {
	// Kind is a task-graph workload: jpeg, h264, carradio or synth.
	Kind string `json:"kind"`
	// N sizes parameterized workloads (synth task count).
	N int `json:"n,omitempty"`
	// Seed generates the app's workload instance.
	Seed uint64 `json:"seed"`
}

// Point is one design point: everything needed to evaluate it,
// serializable so sweeps checkpoint and resume.
type Point struct {
	ID int `json:"id"`
	// Seed drives the point's mapping heuristic (annealing moves).
	Seed uint64   `json:"seed"`
	Plat PlatSpec `json:"plat"`
	// Workload is jpeg, h264, carradio, synth, jobs, or a multi:a+b
	// token naming a multi-application scenario.
	Workload string `json:"wl"`
	// N sizes parameterized workloads: task count for synth, job
	// count for jobs.
	N int `json:"n,omitempty"`
	// WorkloadSeed generates the workload instance; shared by every
	// point of the sweep that uses the same workload, so heuristics
	// and platforms are compared on identical inputs.
	WorkloadSeed uint64 `json:"wl_seed"`
	// Apps lists the constituent applications of a multi workload, in
	// token order; empty for single workloads.
	Apps []AppRef `json:"apps,omitempty"`
	// Heuristic is list, anneal or exhaustive ("-" for jobs, which
	// the RTOS schedules online).
	Heuristic string `json:"heur"`
	// Fidelity is mvp (one-shot task-level mapping.Execute), pipe
	// (pipelined task-level), vp (instruction-level virtual platform
	// with temporal decoupling), cal (task-level with WCET scale
	// factors calibrated against vp probe measurements) or rtos
	// (online scheduler).
	Fidelity string `json:"fid"`
	// Iterations is the pipelined frame count (pipe fidelity).
	Iterations int `json:"iters,omitempty"`
	// Quantum is the temporal-decoupling quantum in instructions per
	// kernel event (vp and cal fidelities).
	Quantum int `json:"quantum,omitempty"`
	// CalProbes lists the probe mappings whose vp measurements
	// calibrate this point's makespan (cal fidelity only), in group
	// heuristic order. Stamped at expansion, so a point carries its
	// group's full probe identity and any shard computes the identical
	// fit without seeing the rest of the sweep.
	CalProbes []CalProbe `json:"cal_probes,omitempty"`
}

// CalProbe names one calibration probe of a cal point's (platform,
// workload) group: a sibling mapping identified by its heuristic and
// mapping seed. The probe's mapping is executed at task level and
// re-measured on the virtual platform; the pair calibrates the
// group's WCET scale factors.
type CalProbe struct {
	Heur string `json:"heur"`
	Seed uint64 `json:"seed"`
}

// Metrics is the measurement record of one evaluated design point.
// Latency, energy and area feed the Pareto extraction; the rest are
// diagnostics (utilization, interconnect pressure, simulation cost).
type Metrics struct {
	Makespan     sim.Time `json:"makespan_ps"`
	ThroughputHz float64  `json:"throughput_hz"`
	// BusyPS is total compute time summed over PEs.
	BusyPS   int64   `json:"busy_ps"`
	UtilMean float64 `json:"util_mean"`
	UtilMax  float64 `json:"util_max"`
	// Energy is the proxy: per-PE busy-seconds weighted by f³ (DVFS
	// voltage scaling) plus an idle-leakage term, plus a per-switch
	// DVFS transition charge.
	Energy float64 `json:"energy"`
	// Area is the proxy: PE-class weights plus interconnect area.
	Area         float64 `json:"area"`
	NoCTransfers uint64  `json:"noc_transfers"`
	NoCWaitPS    int64   `json:"noc_wait_ps"`
	// MemTransfers and MemWaitPS are the memory-subsystem service
	// count and queue wait of the run (mem= points only; zero — and
	// omitted from JSON — when the point has no memory model).
	MemTransfers uint64 `json:"mem_transfers,omitempty"`
	MemWaitPS    int64  `json:"mem_wait_ps,omitempty"`
	FreqSwitches uint64 `json:"freq_switches,omitempty"`
	// SimEvents counts kernel events dispatched evaluating the point
	// (the abstraction-level cost measure of experiment E13).
	SimEvents uint64 `json:"sim_events"`
	// VPInstr counts ISS instructions retired (vp fidelity only).
	VPInstr uint64 `json:"vp_instr,omitempty"`
	// MissRate is the deadline miss fraction (jobs workload only).
	MissRate float64 `json:"miss_rate,omitempty"`
	// WorstLoadCPS is the worst-case concurrent compute demand in
	// cycles per second over the scenario's maximal concurrency
	// cliques (multi workloads with two or more apps only).
	WorstLoadCPS float64 `json:"worst_load_cps,omitempty"`
	// AppMakespanPS gives each constituent application's own makespan
	// under concurrent execution, in Apps order (multi workloads at
	// the task-level mvp fidelity only — a vp-refined headline
	// makespan has no consistent task-level split).
	AppMakespanPS []int64 `json:"app_makespan_ps,omitempty"`
	// CalScale is the fitted WCET scale factor applied to the point's
	// bottleneck PE class (cal fidelity only).
	CalScale float64 `json:"cal_scale,omitempty"`
	// CalRMS is the calibration fit's root-mean-square residual across
	// probe samples, in picoseconds (cal fidelity only) — the audit
	// number for how well the scaled task-level model tracks the vp.
	CalRMS float64 `json:"cal_rms,omitempty"`
	// CalSamples is the number of probe measurements behind the fit
	// (cal fidelity only).
	CalSamples int `json:"cal_samples,omitempty"`
}

// Result pairs a point with its metrics; Err records evaluation
// failures (e.g. an exhaustive search space overflow) without
// aborting the sweep.
type Result struct {
	Point   Point   `json:"point"`
	Metrics Metrics `json:"metrics"`
	Err     string  `json:"err,omitempty"`
}

// Engine runs sweeps over a pool of workers.
type Engine struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// OnResult, when set, receives every result in point order (not
	// completion order) — results stream as soon as the ordered
	// prefix is complete, so a consumer writing JSONL produces
	// identical bytes for any worker count.
	OnResult func(Result)
	// Obs, when non-zero, is attached to every worker's EvalContext
	// (shared instruments are atomic, so one handle serves the pool).
	Obs EvalObs
	// Tracer, when set, records one "eval" span per point, on a
	// Perfetto row per worker, categorized by fidelity. Telemetry is a
	// side channel: results are byte-identical with or without it.
	Tracer *obs.Tracer
}

// Run evaluates every point and returns the results in input order.
func (e *Engine) Run(points []Point) []Result {
	return e.RunContext(context.Background(), points)
}

// RunContext evaluates points until the context is cancelled. In-flight
// evaluations finish (a design point is never torn mid-evaluation); no
// new points are dispatched after cancellation. The returned slice is
// the completed contiguous prefix — exactly the results that were
// released to OnResult — so a caller writing JSONL has a clean cut
// point: flushing what OnResult saw yields a valid resumable
// checkpoint with no torn trailing line.
func (e *Engine) RunContext(ctx context.Context, points []Point) []Result {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]Result, len(points))
	if len(points) == 0 {
		return results
	}
	jobs := make(chan int)
	completed := make(chan int, len(points))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One context per worker: kernels, workload prototypes and
			// mapping scratch are reused across the points this worker
			// drains, with no cross-worker sharing.
			ec := NewEvalContext()
			ec.SetObs(e.Obs)
			for idx := range jobs {
				if e.Tracer != nil {
					t0 := time.Now()
					results[idx] = ec.Evaluate(points[idx])
					e.Tracer.Span("eval", points[idx].Fidelity, w, t0, time.Since(t0),
						obs.Arg{Key: "point", Val: int64(points[idx].ID)})
				} else {
					results[idx] = ec.Evaluate(points[idx])
				}
				completed <- idx
			}
		}(w)
	}
	// Collector: release results to OnResult in point order. next is
	// read after collWG.Wait, which orders the access after the
	// collector's final write.
	var collWG sync.WaitGroup
	collWG.Add(1)
	next := 0
	go func() {
		defer collWG.Done()
		ready := make(map[int]bool, workers)
		for idx := range completed {
			ready[idx] = true
			for ready[next] {
				delete(ready, next)
				if e.OnResult != nil {
					e.OnResult(results[next])
				}
				next++
			}
		}
	}()
dispatch:
	for i := range points {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	close(completed)
	collWG.Wait()
	return results[:next]
}
