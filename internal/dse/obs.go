package dse

import (
	"mpsockit/internal/mapping"
	"mpsockit/internal/obs"
	"mpsockit/internal/sim"
)

// EvalObs bundles the evaluation layer's instruments. The zero value
// is fully inert — every field is a nil instrument whose methods are
// no-ops — so an unobserved EvalContext pays one nil check per event
// and allocates nothing extra; attaching a live EvalObs adds atomic
// updates but still no allocations (TestInstrumentationAllocFree
// holds both). Metrics are a pure side channel: nothing read from
// them or from the clock feeds back into evaluation, so observed and
// unobserved sweeps emit byte-identical results.
type EvalObs struct {
	// Points counts design-point evaluations.
	Points *obs.Counter
	// Errors counts evaluations that returned an error in Result.Err.
	Errors *obs.Counter

	// LatMVP, LatPipe, LatVP, LatCal and LatJobs record per-point
	// evaluation wall-clock latency in microseconds, one histogram per
	// fidelity.
	LatMVP  *obs.Histogram
	LatPipe *obs.Histogram
	LatVP   *obs.Histogram
	LatCal  *obs.Histogram
	LatJobs *obs.Histogram

	// GraphHits/GraphMisses count workload-graph prototype cache
	// lookups; MultiHits/MultiMisses the multi-app scenario cache;
	// ProgHits/ProgMisses the vp calibration-loop program cache;
	// VPHits/VPMisses the pooled virtual-platform cache (a hit is a
	// VP.Reset reuse, a miss builds a platform and its kernel);
	// CalHits/CalMisses the per-group calibration-fit cache (a miss
	// measures the group's probes on the vp and fits the factors).
	GraphHits   *obs.Counter
	GraphMisses *obs.Counter
	MultiHits   *obs.Counter
	MultiMisses *obs.Counter
	ProgHits    *obs.Counter
	ProgMisses  *obs.Counter
	VPHits      *obs.Counter
	VPMisses    *obs.Counter
	CalHits     *obs.Counter
	CalMisses   *obs.Counter

	// SimScheduled/SimExecuted/SimCancelled aggregate kernel event
	// counts across every kernel the context used; PoolHits/PoolMisses
	// aggregate event-record pool reuse; HeapMax tracks the deepest
	// pending-event heap seen (a high-water gauge).
	SimScheduled *obs.Counter
	SimExecuted  *obs.Counter
	SimCancelled *obs.Counter
	PoolHits     *obs.Counter
	PoolMisses   *obs.Counter
	HeapMax      *obs.Gauge

	// Search is forwarded to the mapping evaluator (schedule, cost and
	// annealing counters).
	Search mapping.SearchObs
}

// NewEvalObs registers the evaluation layer's metric families on r
// and returns the live handle to attach via EvalContext.SetObs or
// Engine.Obs.
func NewEvalObs(r *obs.Registry) EvalObs {
	latency := func(fid string) *obs.Histogram {
		return r.Histogram("dse_eval_latency_us",
			"Per-point evaluation wall-clock latency in microseconds, by fidelity.",
			"fid", fid)
	}
	cacheHit := func(cache string) *obs.Counter {
		return r.Counter("dse_cache_hits_total",
			"EvalContext cache hits, by cache.", "cache", cache)
	}
	cacheMiss := func(cache string) *obs.Counter {
		return r.Counter("dse_cache_misses_total",
			"EvalContext cache misses (entry built), by cache.", "cache", cache)
	}
	return EvalObs{
		Points:  r.Counter("dse_points_total", "Design points evaluated."),
		Errors:  r.Counter("dse_point_errors_total", "Design points whose evaluation returned an error."),
		LatMVP:  latency("mvp"),
		LatPipe: latency("pipe"),
		LatVP:   latency("vp"),
		LatCal:  latency("cal"),
		LatJobs: latency("jobs"),

		GraphHits:   cacheHit("graph"),
		GraphMisses: cacheMiss("graph"),
		MultiHits:   cacheHit("multi"),
		MultiMisses: cacheMiss("multi"),
		ProgHits:    cacheHit("prog"),
		ProgMisses:  cacheMiss("prog"),
		VPHits:      cacheHit("vp"),
		VPMisses:    cacheMiss("vp"),
		CalHits:     cacheHit("cal"),
		CalMisses:   cacheMiss("cal"),

		SimScheduled: r.Counter("sim_events_scheduled_total", "Kernel events scheduled."),
		SimExecuted:  r.Counter("sim_events_executed_total", "Kernel events executed."),
		SimCancelled: r.Counter("sim_events_cancelled_total", "Kernel events cancelled before firing."),
		PoolHits:     r.Counter("sim_pool_hits_total", "Event records recycled from the kernel free list."),
		PoolMisses:   r.Counter("sim_pool_misses_total", "Event records freshly allocated by the kernel."),
		HeapMax:      r.Gauge("sim_heap_depth_max", "Deepest pending-event heap observed."),

		Search: mapping.SearchObs{
			Schedules:     r.Counter("map_schedules_total", "List-schedule evaluations."),
			CostEvals:     r.Counter("map_cost_evals_total", "Objective-cost evaluations."),
			AnnealMoves:   r.Counter("map_anneal_moves_total", "Proposed annealing moves."),
			AnnealAccepts: r.Counter("map_anneal_accepts_total", "Accepted annealing moves."),
			AnnealRejects: r.Counter("map_anneal_rejects_total", "Rejected (reverted) annealing moves."),
		},
	}
}

// latency returns the fidelity's latency histogram (nil when
// unobserved or the fidelity is unknown) — the Evaluate wrapper only
// reads the clock when this is non-nil.
func (o *EvalObs) latency(fid string) *obs.Histogram {
	switch fid {
	case "mvp":
		return o.LatMVP
	case "pipe":
		return o.LatPipe
	case "vp":
		return o.LatVP
	case "cal":
		return o.LatCal
	case "jobs":
		return o.LatJobs
	}
	return nil
}

// kernelBase remembers which kernel a context's stat baseline belongs
// to: reuseKernel replaces kernels that cannot reset, and the new
// kernel's monotonic stats restart from zero.
type kernelBase struct {
	k    *sim.Kernel
	last sim.KernelStats
}

// absorb folds the kernel's stat growth since the last absorb into
// the counters, re-baselining when the kernel was replaced.
func (o *EvalObs) absorb(base *kernelBase, k *sim.Kernel) {
	if k == nil {
		return
	}
	s := k.Stats()
	if base.k != k {
		base.k, base.last = k, sim.KernelStats{}
	}
	o.SimScheduled.Add(int64(s.Scheduled - base.last.Scheduled))
	o.SimExecuted.Add(int64(s.Executed - base.last.Executed))
	o.SimCancelled.Add(int64(s.Cancelled - base.last.Cancelled))
	o.PoolHits.Add(int64(s.PoolHits - base.last.PoolHits))
	o.PoolMisses.Add(int64(s.PoolMisses - base.last.PoolMisses))
	o.HeapMax.Max(int64(s.HeapMax))
	base.last = s
}
