package dse

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg pins testing/quick's randomness so property trials are
// reproducible run to run (the properties quantify over the sweep
// seed, which quick draws).
func quickCfg(trials int) *quick.Config {
	return &quick.Config{MaxCount: trials, Rand: rand.New(rand.NewSource(9))}
}

// calSweep expands the spec at the given seed and evaluates every
// point on one context, returning results keyed by point ID.
func calSweep(t *testing.T, spec string, seed uint64) []Result {
	t.Helper()
	sw, err := ParseSweep(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewEvalContext()
	results := make([]Result, len(points))
	for i, p := range points {
		results[i] = ctx.Evaluate(p)
		if results[i].Err != "" {
			t.Fatalf("spec %q seed %d: point %d failed: %s", spec, seed, p.ID, results[i].Err)
		}
	}
	return results
}

// calPairKey identifies a result's (platform, workload, heuristic)
// coordinate so points differing only in fidelity can be paired.
func calPairKey(p Point) [4]string {
	return [4]string{p.Plat.String(), p.Workload, p.Heuristic, ""}
}

// TestCalFitDeterministic (property): for any sweep seed, the fitted
// scale factors — and the full result bytes — of a calibration sweep
// are identical across independent evaluations in different orders.
func TestCalFitDeterministic(t *testing.T) {
	spec := "plat=homog4;wl=synth10;heur=list,anneal;fid=cal:1"
	prop := func(seed uint64) bool {
		a := calSweep(t, spec, seed)
		b := calSweep(t, spec, seed)
		for i := range a {
			ab, err := json.Marshal(a[i])
			if err != nil {
				t.Fatal(err)
			}
			bb, err := json.Marshal(b[i])
			if err != nil {
				t.Fatal(err)
			}
			if string(ab) != string(bb) {
				t.Logf("seed %d point %d diverged:\n%s\n%s", seed, i, ab, bb)
				return false
			}
			if a[i].Metrics.CalScale == 0 {
				t.Logf("seed %d point %d: no fitted factor emitted", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(4)); err != nil {
		t.Fatal(err)
	}
}

// TestCalReducesError (property): on synthetic workloads, calibrated
// makespans of held-out points (group members that were not probed)
// are no farther from the vp ground truth than the raw task-level
// estimate, for any sweep seed — and strictly closer for at least one
// trial, so the property is not vacuously holding on zero error.
func TestCalReducesError(t *testing.T) {
	spec := "plat=homog4,wireless;wl=synth12;heur=list,anneal;fid=mvp,vp64,cal:1"
	sawStrict := false
	prop := func(seed uint64) bool {
		results := calSweep(t, spec, seed)
		vp := map[[4]string]float64{}
		mvp := map[[4]string]float64{}
		for _, r := range results {
			switch r.Point.Fidelity {
			case "vp":
				vp[calPairKey(r.Point)] = float64(r.Metrics.Makespan)
			case "mvp":
				mvp[calPairKey(r.Point)] = float64(r.Metrics.Makespan)
			}
		}
		var calMAE, mvpMAE float64
		n := 0
		for _, r := range results {
			if r.Point.Fidelity != "cal" || r.Point.probeIndex() >= 0 {
				continue // held-out members only
			}
			key := calPairKey(r.Point)
			truth, ok := vp[key]
			if !ok {
				t.Fatalf("seed %d: no vp ground truth for %v", seed, key)
			}
			calMAE += math.Abs(float64(r.Metrics.Makespan) - truth)
			mvpMAE += math.Abs(mvp[key] - truth)
			n++
		}
		if n == 0 {
			t.Fatalf("seed %d: no held-out cal points", seed)
		}
		calMAE /= float64(n)
		mvpMAE /= float64(n)
		if calMAE < mvpMAE {
			sawStrict = true
		}
		if calMAE > mvpMAE {
			t.Logf("seed %d: calibrated MAE %.0f ps > uncalibrated %.0f ps over %d held-out points",
				seed, calMAE, mvpMAE, n)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(5)); err != nil {
		t.Fatal(err)
	}
	if !sawStrict {
		t.Fatal("vacuous: calibration never strictly improved on the raw estimate")
	}
}

// TestCalDegeneratesToVP (property): with K covering every group
// member, each cal point is its own probe and takes the vp
// measurement verbatim — makespans (and therefore ranking) match
// fid=vp64 exactly, for any sweep seed.
func TestCalDegeneratesToVP(t *testing.T) {
	spec := "plat=homog4;wl=synth10,jpeg;heur=list,anneal;fid=vp64,cal:2"
	prop := func(seed uint64) bool {
		results := calSweep(t, spec, seed)
		vp := map[[4]string]float64{}
		for _, r := range results {
			if r.Point.Fidelity == "vp" {
				vp[calPairKey(r.Point)] = float64(r.Metrics.Makespan)
			}
		}
		for _, r := range results {
			if r.Point.Fidelity != "cal" {
				continue
			}
			if r.Point.probeIndex() < 0 {
				t.Fatalf("seed %d: point %d not a probe despite K = group size", seed, r.Point.ID)
			}
			if got, want := float64(r.Metrics.Makespan), vp[calPairKey(r.Point)]; got != want {
				t.Logf("seed %d point %d: cal makespan %.0f != vp %.0f", seed, r.Point.ID, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(4)); err != nil {
		t.Fatal(err)
	}
}
