package dse

import (
	"math"
	"testing"
	"testing/quick"

	"mpsockit/internal/sim"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestHypervolumeKnownValues checks the exact 3-D sweep against
// hand-computed volumes.
func TestHypervolumeKnownValues(t *testing.T) {
	ref := [3]float64{1, 1, 1}
	cases := []struct {
		name string
		pts  [][3]float64
		want float64
	}{
		{"empty", nil, 0},
		{"origin dominates the unit box", [][3]float64{{0, 0, 0}}, 1},
		{"single interior point", [][3]float64{{0.5, 0.5, 0.5}}, 0.125},
		{"point outside ref contributes nothing", [][3]float64{{2, 0, 0}}, 0},
		{"point on ref boundary contributes nothing", [][3]float64{{1, 0, 0}}, 0},
		{"dominated point adds nothing", [][3]float64{{0.2, 0.2, 0.2}, {0.5, 0.5, 0.5}}, 0.512},
		// Two boxes: 0.5 + 0.5 - 0.25 overlap.
		{"overlapping pair", [][3]float64{{0, 0.5, 0}, {0.5, 0, 0}}, 0.75},
		// Three-point staircase in xy at two z levels:
		// z<=0.5 slab uses only the first point.
		{"z-layered", [][3]float64{{0.5, 0.5, 0}, {0, 0, 0.5}}, 0.25*0.5 + 1*0.5},
	}
	for _, tc := range cases {
		if got := Hypervolume(tc.pts, ref); !almostEq(got, tc.want) {
			t.Errorf("%s: Hypervolume = %g, want %g", tc.name, got, tc.want)
		}
	}
	// Permutation invariance: the sweep sorts internally.
	pts := [][3]float64{{0.1, 0.7, 0.3}, {0.6, 0.2, 0.5}, {0.4, 0.4, 0.1}, {0.9, 0.9, 0.9}}
	want := Hypervolume(pts, ref)
	perm := [][3]float64{pts[2], pts[0], pts[3], pts[1]}
	if got := Hypervolume(perm, ref); got != want {
		t.Errorf("permutation changed hypervolume: %g vs %g", got, want)
	}
}

// mkResult builds a synthetic evaluated result with the given
// objectives (latency seconds, energy, area) for front/HV tests.
func mkResult(id int, wl string, lat, energy, area float64) Result {
	return Result{
		Point: Point{ID: id, Workload: wl},
		Metrics: Metrics{
			Makespan: sim.Time(lat * float64(sim.Second)),
			Energy:   energy,
			Area:     area,
		},
	}
}

// TestRefPointAndSinglePointFront: the reference point is the
// per-group componentwise worst inflated by 1%, so a single-point
// front still encloses positive volume and normalizes to exactly 1.
func TestRefPointAndSinglePointFront(t *testing.T) {
	r := mkResult(0, "jpeg", 2, 8, 3)
	ref := RefPoint([]Result{r})
	want := [3]float64{2 * 1.01, 8 * 1.01, 3 * 1.01}
	for d := 0; d < 3; d++ {
		if !almostEq(ref[d], want[d]) {
			t.Fatalf("ref[%d] = %g, want %g", d, ref[d], want[d])
		}
	}
	hvs := Hypervolumes([]Result{r})
	if len(hvs) != 1 {
		t.Fatalf("got %d fronts, want 1", len(hvs))
	}
	h := hvs[0]
	if h.Workload != "jpeg" || h.Points != 1 || h.Front != 1 {
		t.Fatalf("unexpected front record %+v", h)
	}
	if h.Volume <= 0 {
		t.Fatalf("single-point front has non-positive volume %g", h.Volume)
	}
	if h.Norm != 1 {
		t.Fatalf("single-point front norm = %g, want exactly 1", h.Norm)
	}
	// Failed results contribute to nothing.
	failed := Result{Point: Point{ID: 1, Workload: "jpeg"}, Err: "boom"}
	if got := RefPoint([]Result{failed}); got != ([3]float64{}) {
		t.Fatalf("RefPoint over failed results = %v, want zero", got)
	}
	hvs = Hypervolumes([]Result{r, failed})
	if hvs[0].Points != 1 || hvs[0].Front != 1 {
		t.Fatalf("failed result leaked into front record %+v", hvs[0])
	}
}

// TestRefPointZeroExtentAxis is the regression for the degenerate
// reference point: when every result of a group scores exactly 0 on
// one objective, worst×1.01 used to put the reference on the points
// themselves — the front enclosed zero volume and Norm divided 0 by
// 0. The zero-extent axis must get a unit reference instead, so the
// other two objectives still measure.
func TestRefPointZeroExtentAxis(t *testing.T) {
	results := []Result{
		mkResult(0, "jpeg", 1, 0, 1), // energy identically 0 across the group
		mkResult(1, "jpeg", 2, 0, 2),
	}
	ref := RefPoint(results)
	if ref[1] != 1 {
		t.Fatalf("zero-extent energy axis ref = %g, want 1", ref[1])
	}
	hvs := Hypervolumes(results)
	if len(hvs) != 1 {
		t.Fatalf("got %d fronts, want 1", len(hvs))
	}
	h := hvs[0]
	if h.Volume <= 0 {
		t.Fatalf("zero-extent axis collapsed the hypervolume: %+v", h)
	}
	if math.IsNaN(h.Norm) || h.Norm <= 0 || h.Norm > 1 {
		t.Fatalf("Norm = %g, want in (0, 1]", h.Norm)
	}
	// All-zero objectives: the fully degenerate group still scores a
	// defined, maximal front.
	zero := []Result{mkResult(0, "jpeg", 0, 0, 0)}
	h = Hypervolumes(zero)[0]
	if math.IsNaN(h.Norm) || h.Volume != 1 || h.Norm != 1 {
		t.Fatalf("all-zero group scored %+v, want volume 1 norm 1", h)
	}
}

// TestHypervolumeNormProperty holds the indicator's contract over
// random result sets, zero-valued objectives included: Norm is always
// in [0, 1] and never NaN, and Volume is non-negative and finite.
func TestHypervolumeNormProperty(t *testing.T) {
	prop := func(objs [][3]uint8, errMask uint8) bool {
		if len(objs) > 24 {
			objs = objs[:24]
		}
		var results []Result
		for i, o := range objs {
			// Small integer grid: collisions, exact zeros and
			// zero-extent axes all occur with high probability.
			r := mkResult(i, "synth8", float64(o[0]%4), float64(o[1]%4), float64(o[2]%4))
			if errMask&(1<<(i%8)) != 0 && i%3 == 0 {
				r.Err = "boom"
			}
			results = append(results, r)
		}
		for _, h := range Hypervolumes(results) {
			if math.IsNaN(h.Norm) || h.Norm < 0 || h.Norm > 1+1e-12 {
				t.Logf("norm out of range: %+v", h)
				return false
			}
			if math.IsNaN(h.Volume) || math.IsInf(h.Volume, 0) || h.Volume < 0 {
				t.Logf("bad volume: %+v", h)
				return false
			}
			if h.Front > 0 && h.Volume == 0 {
				t.Logf("non-empty front dominated nothing: %+v", h)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHypervolumesGrouping: fronts are per workload instance, sorted
// by label, and a dominating point collapses its group's front.
func TestHypervolumesGrouping(t *testing.T) {
	results := []Result{
		mkResult(0, "jpeg", 1, 1, 1), // dominates id 1
		mkResult(1, "jpeg", 2, 2, 2), // dominated
		mkResult(2, "h264", 5, 5, 5), // different group
		mkResult(3, "h264", 4, 6, 5), // trades energy for latency
	}
	hvs := Hypervolumes(results)
	if len(hvs) != 2 {
		t.Fatalf("got %d groups, want 2", len(hvs))
	}
	if hvs[0].Workload != "h264" || hvs[1].Workload != "jpeg" {
		t.Fatalf("groups not sorted by label: %+v", hvs)
	}
	if hvs[1].Front != 1 || hvs[1].Points != 2 {
		t.Fatalf("jpeg front record %+v, want front 1 of 2", hvs[1])
	}
	if hvs[0].Front != 2 {
		t.Fatalf("h264 front record %+v, want front 2", hvs[0])
	}
	for _, h := range hvs {
		if h.Volume <= 0 || h.Norm <= 0 || h.Norm > 1 {
			t.Fatalf("implausible hypervolume record %+v", h)
		}
	}
}

// TestHypervolumesShared: cross-sweep comparison needs one reference
// box. A restricted sweep measured against its own results scores a
// strictly worse front as perfect (norm 1); measured against the
// shared baseline it scores strictly below the full sweep.
func TestHypervolumesShared(t *testing.T) {
	full := []Result{
		mkResult(0, "jpeg", 1, 1, 1),
		mkResult(1, "jpeg", 2, 2, 2),
		mkResult(2, "jpeg", 3, 3, 3),
	}
	restricted := full[2:] // only the worst design
	selfRef := Hypervolumes(restricted)
	if selfRef[0].Norm != 1 {
		t.Fatalf("self-referenced single-point front norm = %g, want 1 (the misleading number)", selfRef[0].Norm)
	}
	fullHV := HypervolumesShared(full, restricted)
	restrictedHV := HypervolumesShared(restricted, full)
	if fullHV[0].Ref != restrictedHV[0].Ref {
		t.Fatalf("shared baselines produced different reference points: %v vs %v", fullHV[0].Ref, restrictedHV[0].Ref)
	}
	if restrictedHV[0].Volume >= fullHV[0].Volume {
		t.Fatalf("worse front scored >= in the shared frame: %g vs %g", restrictedHV[0].Volume, fullHV[0].Volume)
	}
	if restrictedHV[0].Norm >= 1 {
		t.Fatalf("worse front still normalizes to %g in the shared frame", restrictedHV[0].Norm)
	}
	// Baseline results from groups the sweep never evaluated are
	// ignored (no phantom fronts), and front membership never changes.
	other := []Result{mkResult(9, "h264", 5, 5, 5)}
	got := HypervolumesShared(restricted, other)
	if len(got) != 1 || got[0].Workload != "jpeg" || got[0].Front != 1 {
		t.Fatalf("baseline leaked into fronts: %+v", got)
	}
}

// TestHypervolumeMonotonic: adding a non-dominated point never
// shrinks the front's hypervolume — the property that makes it a
// front-quality indicator (run on a real smoke sweep).
func TestHypervolumeMonotonic(t *testing.T) {
	points := expandSweep(t, "smoke", 5)
	results := (&Engine{Workers: 4}).Run(points)
	hvs := Hypervolumes(results)
	if len(hvs) == 0 {
		t.Fatal("no fronts")
	}
	for _, h := range hvs {
		if h.Front < 1 || h.Volume <= 0 || h.Norm <= 0 || h.Norm > 1+1e-12 {
			t.Fatalf("implausible sweep hypervolume %+v", h)
		}
	}
	// Dropping a front member from one group must not increase the
	// group's hypervolume.
	front := GroupedFront(results)
	drop := front[0]
	var reduced []Result
	for i, r := range results {
		if i != drop {
			reduced = append(reduced, r)
		}
	}
	label := (WorkloadSpec{Kind: results[drop].Point.Workload, N: results[drop].Point.N}).String()
	var before, after float64
	for _, h := range Hypervolumes(results) {
		if h.Workload == label {
			before = h.Volume
		}
	}
	for _, h := range Hypervolumes(reduced) {
		if h.Workload == label {
			after = h.Volume
		}
	}
	if after > before+1e-12 {
		t.Fatalf("removing front member grew hypervolume: %g -> %g", before, after)
	}
}
