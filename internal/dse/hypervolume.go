package dse

import (
	"fmt"
	"sort"
	"strings"
)

// RefPoint returns the hypervolume reference point for a result set:
// the componentwise worst (maximum) latency, energy and area over all
// evaluable results, inflated by 1% so boundary points still enclose
// positive volume. An axis whose worst value is exactly 0 (every
// result free on that objective) gets a unit reference instead:
// 0×1.01 would put the reference on the points themselves, zeroing
// the hypervolume — and the ideal-to-reference box — for fronts that
// are degenerate on one axis but perfectly meaningful on the others.
// It is a pure function of the results, so sweeps that evaluate the
// same points — whatever the worker or shard count — report identical
// hypervolumes. Failed points are skipped; a set with no evaluable
// points returns the zero reference.
func RefPoint(results []Result) [3]float64 {
	var ref [3]float64
	evaluable := false
	for _, r := range results {
		if r.Err != "" {
			continue
		}
		evaluable = true
		lat, energy, area := Objectives(r)
		obj := [3]float64{lat, energy, area}
		for d := 0; d < 3; d++ {
			if obj[d] > ref[d] {
				ref[d] = obj[d]
			}
		}
	}
	if !evaluable {
		return ref
	}
	for d := 0; d < 3; d++ {
		if ref[d] == 0 {
			ref[d] = 1
		} else {
			ref[d] *= 1.01
		}
	}
	return ref
}

// Hypervolume computes the exact volume dominated by pts (minimized
// objectives) up to the reference point ref: the measure of the union
// of boxes [p, ref]. Points not strictly better than ref on every
// axis contribute nothing. The algorithm sweeps the third objective
// and integrates 2-D staircase areas per slab — O(n² log n), exact,
// and deterministic (ties broken lexicographically), which is all a
// front of tens of points needs.
func Hypervolume(pts [][3]float64, ref [3]float64) float64 {
	var ps [][3]float64
	for _, p := range pts {
		if p[0] < ref[0] && p[1] < ref[1] && p[2] < ref[2] {
			ps = append(ps, p)
		}
	}
	if len(ps) == 0 {
		return 0
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][2] != ps[j][2] {
			return ps[i][2] < ps[j][2]
		}
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
	hv := 0.0
	for i := 0; i < len(ps); {
		z := ps[i][2]
		j := i
		for j < len(ps) && ps[j][2] == z {
			j++
		}
		zNext := ref[2]
		if j < len(ps) {
			zNext = ps[j][2]
		}
		hv += area2D(ps[:j], ref) * (zNext - z)
		i = j
	}
	return hv
}

// area2D returns the area of the union of rectangles [p_x, ref_x] ×
// [p_y, ref_y] over the xy-projections of ps, which must already be
// sorted with x ascending: sweeping left to right, each point whose y
// improves on the best seen so far adds the horizontal slab between
// the two y levels.
func area2D(ps [][3]float64, ref [3]float64) float64 {
	idx := make([]int, len(ps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if ps[idx[a]][0] != ps[idx[b]][0] {
			return ps[idx[a]][0] < ps[idx[b]][0]
		}
		return ps[idx[a]][1] < ps[idx[b]][1]
	})
	area := 0.0
	bestY := ref[1]
	for _, i := range idx {
		if ps[i][1] < bestY {
			area += (ref[0] - ps[i][0]) * (bestY - ps[i][1])
			bestY = ps[i][1]
		}
	}
	return area
}

// FrontHV is the quality record of one per-workload Pareto front: the
// hypervolume dominated by the front relative to the group's
// reference point, plus the normalization that makes fronts of
// different workloads comparable.
type FrontHV struct {
	// Workload is the group label ("jpeg", "synth16", …).
	Workload string
	// Points is the number of evaluable results in the group.
	Points int
	// Front is the number of non-dominated results in the group.
	Front int
	// Ref is the group's reference point (latency s, energy, area).
	Ref [3]float64
	// Volume is the raw hypervolume dominated by the front up to Ref.
	Volume float64
	// Norm is Volume divided by the volume of the ideal-to-reference
	// box (componentwise best to Ref) — 1.0 means the front's ideal
	// point exists, 0 means the front dominates nothing. Comparing
	// Norm between a full sweep and a heuristic-restricted sweep of
	// the same workload quantifies what the restriction gave up.
	Norm float64
}

// Hypervolumes computes the hypervolume indicator of every
// per-workload Pareto front (the same grouping as GroupedFront),
// sorted by workload label, with each group's reference box derived
// from its own results. Volumes are therefore comparable only
// between sweeps that evaluated the same point set per group (e.g. a
// merged sharded run versus an unsharded run); to compare sweeps
// over *different* point sets — a heuristic-restricted sweep against
// a full one — use HypervolumesShared, which pins one reference box
// for both.
func Hypervolumes(results []Result) []FrontHV {
	return HypervolumesShared(results, nil)
}

// HypervolumesShared computes per-workload front hypervolumes for
// results, but derives each group's reference and ideal points from
// the union of results and baseline. Passing the larger sweep (or
// the concatenation of every sweep under comparison) as baseline
// fixes one reference box per workload group, which is the
// precondition for hypervolume numbers from different sweeps being
// comparable at all: without it, a sweep that never evaluates the
// bad designs shrinks its own reference box and can score a strictly
// worse front higher. Fronts are still extracted from results alone
// — baseline only shapes the measurement box.
func HypervolumesShared(results, baseline []Result) []FrontHV {
	groups := map[string][]Result{}
	refGroups := map[string][]Result{}
	for _, r := range results {
		key := groupKey(r.Point)
		groups[key] = append(groups[key], r)
		refGroups[key] = append(refGroups[key], r)
	}
	for _, r := range baseline {
		key := groupKey(r.Point)
		if _, ours := groups[key]; ours {
			refGroups[key] = append(refGroups[key], r)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []FrontHV
	for _, k := range keys {
		sub := groups[k]
		refSet := refGroups[k]
		ref := RefPoint(refSet)
		front := Front(sub)
		ideal := ref
		for _, r := range refSet {
			if r.Err != "" {
				continue
			}
			lat, energy, area := Objectives(r)
			obj := [3]float64{lat, energy, area}
			for d := 0; d < 3; d++ {
				if obj[d] < ideal[d] {
					ideal[d] = obj[d]
				}
			}
		}
		evaluable := 0
		for _, r := range sub {
			if r.Err == "" {
				evaluable++
			}
		}
		var pts [][3]float64
		for _, i := range front {
			lat, energy, area := Objectives(sub[i])
			pts = append(pts, [3]float64{lat, energy, area})
		}
		hv := FrontHV{
			Workload: WorkloadSpec{Kind: sub[0].Point.Workload, N: sub[0].Point.N}.String(),
			Points:   evaluable,
			Front:    len(front),
			Ref:      ref,
			Volume:   Hypervolume(pts, ref),
		}
		denom := (ref[0] - ideal[0]) * (ref[1] - ideal[1]) * (ref[2] - ideal[2])
		if denom > 0 {
			hv.Norm = hv.Volume / denom
		}
		out = append(out, hv)
	}
	return out
}

// BaselineOverlaps reports whether any baseline result falls in a
// workload group that results also evaluates — the precondition for
// HypervolumesShared to widen anything. Group identity includes the
// workload generator seed, so two sweeps run with different sweep
// seeds share no groups (their synthetic workload instances differ)
// and a baseline from one is silently inert for the other; callers
// should treat that as an error rather than report numbers that look
// shared but are not.
func BaselineOverlaps(results, baseline []Result) bool {
	groups := map[string]bool{}
	for _, r := range results {
		groups[groupKey(r.Point)] = true
	}
	for _, r := range baseline {
		if groups[groupKey(r.Point)] {
			return true
		}
	}
	return false
}

// HVTable renders per-workload hypervolumes as text, one front per
// line. sharedRef selects the caption: false for the default frame
// (each group's own worst), true when the reference box was widened
// with a baseline via HypervolumesShared — the caption must say
// which frame the numbers were measured in.
func HVTable(hvs []FrontHV, sharedRef bool) string {
	var b strings.Builder
	if sharedRef {
		fmt.Fprintf(&b, "hypervolume per workload front (ref = shared frame: worst over sweep ∪ baseline × 1.01)\n")
	} else {
		fmt.Fprintf(&b, "hypervolume per workload front (ref = per-group worst × 1.01)\n")
	}
	fmt.Fprintf(&b, "%-10s %7s %6s %14s %8s  %s\n",
		"workload", "points", "front", "volume", "norm", "ref (lat_s, energy, area)")
	for _, h := range hvs {
		fmt.Fprintf(&b, "%-10s %7d %6d %14.6e %8.4f  (%.4g, %.4g, %.4g)\n",
			h.Workload, h.Points, h.Front, h.Volume, h.Norm, h.Ref[0], h.Ref[1], h.Ref[2])
	}
	return b.String()
}
