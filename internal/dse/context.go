package dse

import (
	"fmt"
	"strings"

	"mpsockit/internal/isa"
	"mpsockit/internal/mapping"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
	"mpsockit/internal/vp"
	"mpsockit/internal/workload"
)

// EvalContext is a per-worker evaluation context: it owns the reused
// simulation kernels, the workload-graph prototypes, and the mapping
// scratch that successive design points share while one worker drains
// its slice of a sweep. Point evaluation is deterministic per point
// (everything is derived from the point's own seeds), so reuse cannot
// leak state between points: a reset kernel is observably identical
// to a fresh one (sim.Kernel.Reset), graph prototypes are immutable
// once built, and the mapping evaluator rebinds per point. The sweep
// byte-identity tests hold exactly that — any worker count, fresh or
// reused context, same bytes.
//
// An EvalContext is not safe for concurrent use; Engine.Run gives
// each worker its own.
type EvalContext struct {
	// k runs mapped executions and the RTOS scheduler. It is Reset
	// between points and discarded when an evaluation leaves live
	// processes behind (parked RTOS services, deadlocked executions).
	k *sim.Kernel
	// vps pools resettable virtual platforms for the instruction-level
	// vp refinement, keyed by shape: core count and decoupling quantum.
	// (The timing model and clock are fixed by vp.DefaultConfig, so
	// they need no key component.) A pooled hit costs VP.Reset +
	// LoadProgram instead of a kernel, CPU and MiB-store rebuild —
	// VP.Reset's observably-fresh contract is what keeps pooled sweep
	// bytes identical to fresh ones.
	vps map[vpPoolKey]*vpEntry
	// me is the reusable mapping scratch, rebound per point.
	me mapping.Evaluator
	// graphs caches built workload task graphs: every point of a
	// sweep that shares (workload, N, seed) maps the identical
	// prototype, so the graph and its adjacency view are built once
	// per worker instead of once per point.
	graphs map[graphKey]*taskgraph.Graph
	// multis caches multi-app scenarios (union graph, spans,
	// worst-case load) by their full identity — workload token,
	// scenario seed and every constituent's instance seed (multiKey) —
	// so hand-built points that share a token but not app seeds can
	// never alias.
	multis map[string]*multiEntry
	// progs caches assembled vp calibration loops by iteration count.
	progs map[int64]*isa.Program
	// cals caches per-group calibration fits (fid=cal) by calKey: the
	// probe measurements and least-squares factors are computed once
	// per (platform, workload, probes) group per worker; any worker
	// recomputes identical values, so sharding never changes bytes.
	cals map[string]*calEntry

	// obs is the optional instrumentation handle (SetObs); the zero
	// value is inert. kBase anchors the mapping kernel's stat baseline
	// so counter growth survives kernel replacement; each pooled VP
	// carries its own baseline in its vpEntry.
	obs   EvalObs
	kBase kernelBase
}

// vpPoolKey identifies a reusable virtual-platform shape.
type vpPoolKey struct {
	cores   int
	quantum int
}

// vpEntry is one pooled platform: the VP, its dedicated kernel, and
// the kernel-stat baseline its observer deltas are computed against
// (per entry, so alternating between pooled platforms never
// re-baselines and double-counts).
type vpEntry struct {
	v    *vp.VP
	k    *sim.Kernel
	base kernelBase
}

type graphKey struct {
	kind string
	n    int
	seed uint64
}

// multiEntry is one cached multi-app scenario: the union task graph
// of all constituent applications (immutable, view materialized), the
// per-application task-ID spans inside it, and the concurrency
// analysis's worst-case load.
type multiEntry struct {
	graph     *taskgraph.Graph
	spans     []taskgraph.Span
	worstLoad float64
}

// NewEvalContext returns an empty context; kernels and caches
// materialize on first use.
func NewEvalContext() *EvalContext {
	return &EvalContext{
		vps:    map[vpPoolKey]*vpEntry{},
		graphs: map[graphKey]*taskgraph.Graph{},
		multis: map[string]*multiEntry{},
		progs:  map[int64]*isa.Program{},
		cals:   map[string]*calEntry{},
	}
}

// SetObs attaches the instrumentation handle; the mapping search
// counters are forwarded to the context's evaluator. Attaching (or
// not) never changes evaluation results.
func (c *EvalContext) SetObs(o EvalObs) {
	c.obs = o
	c.me.Obs = o.Search
}

// reuseKernel returns *kp reset for the next point, replacing it with
// a fresh kernel when live processes make reset impossible.
func reuseKernel(kp **sim.Kernel) *sim.Kernel {
	if *kp == nil || (*kp).LiveProcs() > 0 {
		*kp = sim.NewKernel()
	} else {
		(*kp).Reset()
	}
	return *kp
}

// pooledVP returns a freshly-reset virtual platform of the requested
// shape, building one (with its own kernel) on first sight. VP.Reset
// reclaims platforms in any state — including a previous refinement
// that timed out with cores still spinning — so a pooled platform is
// always observably identical to vp.New on sim.NewKernel.
func (c *EvalContext) pooledVP(cores, quantum int) *vp.VP {
	key := vpPoolKey{cores: cores, quantum: quantum}
	if e, ok := c.vps[key]; ok {
		c.obs.VPHits.Inc()
		e.v.Reset()
		return e.v
	}
	c.obs.VPMisses.Inc()
	cfg := vp.DefaultConfig(cores)
	cfg.Quantum = quantum
	k := sim.NewKernel()
	e := &vpEntry{v: vp.New(k, cfg), k: k}
	c.vps[key] = e
	return e.v
}

// graph returns the point's workload task graph prototype, building
// and caching it on first sight of (workload, N, seed).
func (c *EvalContext) graph(p Point) (*taskgraph.Graph, error) {
	key := graphKey{kind: p.Workload, n: p.N, seed: p.WorkloadSeed}
	if g, ok := c.graphs[key]; ok {
		c.obs.GraphHits.Inc()
		return g, nil
	}
	c.obs.GraphMisses.Inc()
	g, err := buildGraph(p)
	if err != nil {
		return nil, err
	}
	// Materialize the adjacency view now: the prototype is immutable
	// from here on, and every mapping of it starts from the view.
	g.View()
	c.graphs[key] = g
	return g, nil
}

// multiKey is a multi-app scenario's full cache identity: the token,
// the scenario seed, and each constituent's (kind, N, seed).
func multiKey(p Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%d", p.Workload, p.WorkloadSeed)
	for _, a := range p.Apps {
		fmt.Fprintf(&b, "|%s/%d/%d", a.Kind, a.N, a.Seed)
	}
	return b.String()
}

// multiScenario returns the point's cached multi-app scenario,
// building it on first sight: per-app graphs come from the prototype
// cache (shared with single-workload points of the same instance),
// the concurrency graph marks all apps concurrent, and the union
// graph of the scenario is composed and its view materialized once.
func (c *EvalContext) multiScenario(p Point) (*multiEntry, error) {
	key := multiKey(p)
	if mu, ok := c.multis[key]; ok {
		c.obs.MultiHits.Inc()
		return mu, nil
	}
	c.obs.MultiMisses.Inc()
	apps := make([]workload.AppSpec, len(p.Apps))
	graphs := make([]*taskgraph.Graph, len(p.Apps))
	for i, a := range p.Apps {
		apps[i] = workload.AppSpec{Kind: a.Kind, N: a.N, Seed: a.Seed}
		g, err := c.graph(Point{Workload: a.Kind, N: a.N, WorkloadSeed: a.Seed})
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}
	cg, err := workload.MultiScenario(apps, graphs)
	if err != nil {
		return nil, err
	}
	worst, _, _ := workload.WorstLoad(cg)
	union, spans := taskgraph.Union(p.Workload, graphs...)
	union.View()
	mu := &multiEntry{graph: union, spans: spans, worstLoad: worst}
	c.multis[key] = mu
	return mu, nil
}

// cyclesPerIter is the vp calibration loop body cost: addi(1) +
// mul(3) + bne(2) = 6 cycles under TimingRISC.
const cyclesPerIter = 6

// assembleLoop assembles the vp calibration loop that busy-spins for
// iters iterations.
func assembleLoop(iters int64) (*isa.Program, error) {
	return isa.Assemble(fmt.Sprintf(`
	li r10, %d
loop:
	addi r8, r8, 1
	mul  r9, r8, r8
	bne  r8, r10, loop
	halt
`, iters))
}

// loopProg returns the assembled vp calibration loop for the given
// iteration count, cached — the assembly source only varies in the
// loop bound, and sweeps re-measure the same handful of bounds
// constantly.
func (c *EvalContext) loopProg(iters int64) (*isa.Program, error) {
	if prog, ok := c.progs[iters]; ok {
		c.obs.ProgHits.Inc()
		return prog, nil
	}
	c.obs.ProgMisses.Inc()
	prog, err := assembleLoop(iters)
	if err != nil {
		return nil, err
	}
	c.progs[iters] = prog
	return prog, nil
}
