package dse

import (
	"fmt"

	"mpsockit/internal/isa"
	"mpsockit/internal/mapping"
	"mpsockit/internal/sim"
	"mpsockit/internal/taskgraph"
)

// EvalContext is a per-worker evaluation context: it owns the reused
// simulation kernels, the workload-graph prototypes, and the mapping
// scratch that successive design points share while one worker drains
// its slice of a sweep. Point evaluation is deterministic per point
// (everything is derived from the point's own seeds), so reuse cannot
// leak state between points: a reset kernel is observably identical
// to a fresh one (sim.Kernel.Reset), graph prototypes are immutable
// once built, and the mapping evaluator rebinds per point. The sweep
// byte-identity tests hold exactly that — any worker count, fresh or
// reused context, same bytes.
//
// An EvalContext is not safe for concurrent use; Engine.Run gives
// each worker its own.
type EvalContext struct {
	// k runs mapped executions and the RTOS scheduler; vk runs the
	// instruction-level vp refinement. A kernel is Reset between
	// points and discarded when an evaluation leaves live processes
	// behind (parked RTOS services, deadlocked executions).
	k  *sim.Kernel
	vk *sim.Kernel
	// me is the reusable mapping scratch, rebound per point.
	me mapping.Evaluator
	// graphs caches built workload task graphs: every point of a
	// sweep that shares (workload, N, seed) maps the identical
	// prototype, so the graph and its adjacency view are built once
	// per worker instead of once per point.
	graphs map[graphKey]*taskgraph.Graph
	// progs caches assembled vp calibration loops by iteration count.
	progs map[int64]*isa.Program
}

type graphKey struct {
	kind string
	n    int
	seed uint64
}

// NewEvalContext returns an empty context; kernels and caches
// materialize on first use.
func NewEvalContext() *EvalContext {
	return &EvalContext{
		graphs: map[graphKey]*taskgraph.Graph{},
		progs:  map[int64]*isa.Program{},
	}
}

// reuseKernel returns *kp reset for the next point, replacing it with
// a fresh kernel when live processes make reset impossible.
func reuseKernel(kp **sim.Kernel) *sim.Kernel {
	if *kp == nil || (*kp).LiveProcs() > 0 {
		*kp = sim.NewKernel()
	} else {
		(*kp).Reset()
	}
	return *kp
}

// graph returns the point's workload task graph prototype, building
// and caching it on first sight of (workload, N, seed).
func (c *EvalContext) graph(p Point) (*taskgraph.Graph, error) {
	key := graphKey{kind: p.Workload, n: p.N, seed: p.WorkloadSeed}
	if g, ok := c.graphs[key]; ok {
		return g, nil
	}
	g, err := buildGraph(p)
	if err != nil {
		return nil, err
	}
	// Materialize the adjacency view now: the prototype is immutable
	// from here on, and every mapping of it starts from the view.
	g.View()
	c.graphs[key] = g
	return g, nil
}

// cyclesPerIter is the vp calibration loop body cost: addi(1) +
// mul(3) + bne(2) = 6 cycles under TimingRISC.
const cyclesPerIter = 6

// assembleLoop assembles the vp calibration loop that busy-spins for
// iters iterations.
func assembleLoop(iters int64) (*isa.Program, error) {
	return isa.Assemble(fmt.Sprintf(`
	li r10, %d
loop:
	addi r8, r8, 1
	mul  r9, r8, r8
	bne  r8, r10, loop
	halt
`, iters))
}

// loopProg returns the assembled vp calibration loop for the given
// iteration count, cached — the assembly source only varies in the
// loop bound, and sweeps re-measure the same handful of bounds
// constantly.
func (c *EvalContext) loopProg(iters int64) (*isa.Program, error) {
	if prog, ok := c.progs[iters]; ok {
		return prog, nil
	}
	prog, err := assembleLoop(iters)
	if err != nil {
		return nil, err
	}
	c.progs[iters] = prog
	return prog, nil
}
