package dse

import (
	"encoding/json"
	"testing"
)

// contextPoints covers every evaluation path through an EvalContext:
// task-level one-shot, pipelined, instruction-level vp refinement,
// and the RTOS jobs path (which leaves live scheduler processes
// behind, forcing a kernel replacement on the next point).
func contextPoints() []Point {
	mk := func(id int, plat PlatSpec, wl string, n int, heur, fid string, iters, quantum int) Point {
		return Point{
			ID: id, Seed: seedFor(11, "point", id),
			Plat: plat, Workload: wl, N: n,
			WorkloadSeed: seedFor(11, "wl/"+wl, n),
			Heuristic:    heur, Fidelity: fid,
			Iterations: iters, Quantum: quantum,
		}
	}
	wireless := PlatSpec{Kind: "wireless", Fabric: "mesh", DVFS: 1}
	homog := PlatSpec{Kind: "homog", Cores: 4, Fabric: "bus", DVFS: 0}
	cell := PlatSpec{Kind: "celllike", Cores: 4, Fabric: "mesh", DVFS: 2}
	return []Point{
		mk(0, wireless, "jpeg", 0, "list", "mvp", 0, 0),
		mk(1, wireless, "jpeg", 0, "anneal", "mvp", 0, 0),
		mk(2, homog, "synth", 12, "anneal", "vp", 0, 64),
		mk(3, cell, "carradio", 0, "exhaustive", "pipe", 6, 0),
		mk(4, homog, "jobs", 16, "-", "rtos", 0, 0),
		mk(5, wireless, "h264", 0, "anneal", "vp", 0, 16),
		mk(6, homog, "synth", 12, "list", "mvp", 0, 0), // same graph key as 2
	}
}

// TestEvalContextReuseIdentity: evaluating a stream of points on one
// reused context — reset kernels, cached graph prototypes, rebound
// mapping scratch — yields byte-identical results to a fresh context
// per point, in any order. This is the no-state-leak contract kernel
// and scratch reuse must uphold (run under -race in CI).
func TestEvalContextReuseIdentity(t *testing.T) {
	points := contextPoints()
	want := make([]string, len(points))
	for i, p := range points {
		r := NewEvalContext().Evaluate(p)
		if r.Err != "" {
			t.Fatalf("point %d failed: %s", p.ID, r.Err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = string(b)
	}
	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{4, 0, 4, 2, 6, 2, 1, 3, 5, 0}, // repeats: same point twice on one context
	}
	for oi, order := range orders {
		ctx := NewEvalContext()
		for _, idx := range order {
			r := ctx.Evaluate(points[idx])
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != want[idx] {
				t.Fatalf("order %d: reused context diverged on point %d:\nfresh  %s\nreused %s",
					oi, points[idx].ID, want[idx], b)
			}
		}
	}
}

// TestEvalContextGraphCache: points sharing (workload, N, seed) map
// the same prototype graph, points differing in any key do not.
func TestEvalContextGraphCache(t *testing.T) {
	ctx := NewEvalContext()
	p1 := Point{Plat: PlatSpec{Kind: "homog", Cores: 2, Fabric: "mesh"}, Workload: "synth", N: 8, WorkloadSeed: 5}
	p2 := p1
	p3 := p1
	p3.WorkloadSeed = 6
	g1, err := ctx.graph(p1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ctx.graph(p2)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := ctx.graph(p3)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("identical workload keys built two prototypes")
	}
	if g1 == g3 {
		t.Fatal("different workload seeds shared a prototype")
	}
}
