package dse

import (
	"reflect"
	"testing"

	"mpsockit/internal/mem"
)

// Fuzz targets for the sweep-spec grammars. Two invariants: no input
// panics a parser (a sweep spec arrives from the command line and
// from shard-file headers, so a crash is a DoS on a merge fleet), and
// accepted input round-trips — parse, render canonically, re-parse —
// to the same parsed form, which is what lets shard headers re-expand
// the spec on any host. CI runs each target briefly
// (`go test -fuzz … -fuzztime 10s`); the committed corpora under
// testdata/fuzz seed the interesting grammar corners.

// maxFuzzPoints bounds cross-product expansion inside fuzz targets: a
// handful of long dimension lists multiply into millions of points,
// which is legal but turns a fuzz iteration into an allocation storm.
const maxFuzzPoints = 1 << 14

// expansionBound overapproximates the point count of a sweep without
// expanding it.
func expansionBound(s *Sweep) int {
	dims := [...]int{
		len(s.Platforms), max1(len(s.Fabrics)), max1(len(s.DVFS)),
		len(s.Workloads), max1(len(s.Heuristics)), max1(len(s.Fidelities)),
		max1(len(s.Mems)),
	}
	bound := 1
	for _, d := range dims {
		bound *= d
		if bound > maxFuzzPoints {
			return bound
		}
	}
	return bound
}

// max1 floors a dimension length at its defaulted size.
func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// FuzzParseSweep holds the full-spec round trip: any accepted spec
// renders to a canonical form that re-parses to the same expanded
// point list (seeds included), and the canonical form is a fixed
// point of the rendering.
func FuzzParseSweep(f *testing.F) {
	for _, seed := range []string{
		"smoke",
		"default",
		"",
		"plat=homog8,wireless;fab=mesh,bus;dvfs=0,1,2;wl=jpeg,h264,carradio,synth16,jobs32;heur=list,anneal,exhaustive;fid=mvp,pipe8,vp64",
		"plat=2xrisc+4xdsp+1xvliw,8xrisc@600,1xctrl+4xdsp@3200;wl=multi:jpeg+carradio+synth8,jpeg",
		"wl=multi:synth2+synth2;plat=2xrisc",
		"plat=celllike4;;wl= jpeg , carradio ;dvfs=-1",
		"plat=03xrisc@01000;wl=synth02",
		"plat=homog4;wl=jpeg,synth8;heur=list,anneal;fid=mvp,cal:2",
		"fid=cal:32,cal:1,vp64;wl=multi:jpeg+synth4;plat=2xrisc+1xdsp",
		"plat=homog4;wl=jpeg;mem=ideal,bank:4x2,bw:8",
		"mem=bank:64x8,bw:1024,bank:1x1;plat=wireless;wl=synth8;fid=mvp,vp64",
		"plat=homog2;wl=jpeg;mem=bank:0x2,bank:4,bw:0,dram",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sw, err := ParseSweep(spec, 1)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if expansionBound(sw) > maxFuzzPoints {
			return
		}
		canon := sw.Spec()
		sw2, err := ParseSweep(canon, 1)
		if err != nil {
			t.Fatalf("canonical spec %q (of %q) does not re-parse: %v", canon, spec, err)
		}
		if again := sw2.Spec(); again != canon {
			t.Fatalf("canonical spec is not a fixed point: %q -> %q", canon, again)
		}
		p1, err1 := sw.Points()
		p2, err2 := sw2.Points()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("expansion errors diverge for %q: %v vs %v", spec, err1, err2)
		}
		if err1 == nil && HashPoints(p1) != HashPoints(p2) {
			t.Fatalf("spec %q and its canonical form %q expand to different points", spec, canon)
		}
	})
}

// FuzzPlatToken holds the plat-dimension token round trip, covering
// both the named presets and the custom core-mix grammar.
func FuzzPlatToken(f *testing.F) {
	for _, seed := range []string{
		"homog8", "mpcore2", "celllike4", "wireless",
		"2xrisc+4xdsp+1xvliw", "8xrisc@600", "1xctrl+4xdsp@3200",
		"64xrisc", "2xRISC@01000", "homog+8", "1xacc@1000000",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		ps, err := parsePlat(tok)
		if err != nil {
			return
		}
		if n := ps.CoreCount(); n < 1 || n > 65 {
			t.Fatalf("token %q parsed to %d cores", tok, n)
		}
		ps2, err := parsePlat(ps.Token())
		if err != nil {
			t.Fatalf("canonical token %q (of %q) does not re-parse: %v", ps.Token(), tok, err)
		}
		if !reflect.DeepEqual(ps, ps2) {
			t.Fatalf("token %q does not round-trip: %+v vs %+v", tok, ps, ps2)
		}
	})
}

// FuzzFidelityToken holds the fid-dimension token round trip,
// covering mvp/pipeN/vpN and the cal:K calibration grammar: no token
// panics the parser, accepted tokens carry bounded parameters (so a
// hostile shard header cannot demand an unbounded probe fan-out), and
// parse → canonical render → parse is the identity.
func FuzzFidelityToken(f *testing.F) {
	for _, seed := range []string{
		"mvp", "pipe8", "pipe1", "vp64", "vp1",
		"cal:1", "cal:4", "cal:32", "cal:0", "cal:33", "cal:-1",
		"cal:", "cal", "vp", "pipe", "vp064", "cal:04", "cal:+1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		fs, err := parseFidelity(tok)
		if err != nil {
			return
		}
		switch fs.Kind {
		case "mvp", "pipe", "vp", "cal":
		default:
			t.Fatalf("token %q parsed to unknown kind %q", tok, fs.Kind)
		}
		if fs.Kind == "cal" && (fs.Probes < 1 || fs.Probes > 32) {
			t.Fatalf("token %q parsed to %d probes (want 1..32)", tok, fs.Probes)
		}
		fs2, err := parseFidelity(fs.String())
		if err != nil {
			t.Fatalf("canonical token %q (of %q) does not re-parse: %v", fs.String(), tok, err)
		}
		if !reflect.DeepEqual(fs, fs2) {
			t.Fatalf("token %q does not round-trip: %+v vs %+v", tok, fs, fs2)
		}
	})
}

// FuzzMemToken holds the mem-dimension token round trip: no token
// panics the parser, accepted tokens carry bounded parameters (a
// hostile shard header cannot demand an unbounded bank array), and
// parse → canonical render → parse is the identity.
func FuzzMemToken(f *testing.F) {
	for _, seed := range []string{
		"ideal", "bank:4x2", "bank:1x1", "bank:64x8", "bw:8", "bw:1024",
		"bank:0x2", "bank:65x1", "bank:4x9", "bank:4", "bank:x", "bank:2x",
		"bw:0", "bw:1025", "bw:-1", "bw:", "bw", "bank:04x02", "dram",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		ms, err := mem.ParseSpec(tok)
		if err != nil {
			return
		}
		switch ms.Kind {
		case "ideal", "bank", "bw":
		default:
			t.Fatalf("token %q parsed to unknown kind %q", tok, ms.Kind)
		}
		if ms.Kind == "bank" && (ms.Banks < 1 || ms.Banks > mem.MaxBanks || ms.Channels < 1 || ms.Channels > mem.MaxChannels) {
			t.Fatalf("token %q parsed to unbounded geometry %dx%d", tok, ms.Banks, ms.Channels)
		}
		if ms.Kind == "bw" && (ms.GBps < 1 || ms.GBps > mem.MaxGBps) {
			t.Fatalf("token %q parsed to unbounded bandwidth %d", tok, ms.GBps)
		}
		ms2, err := mem.ParseSpec(ms.String())
		if err != nil {
			t.Fatalf("canonical token %q (of %q) does not re-parse: %v", ms.String(), tok, err)
		}
		if !reflect.DeepEqual(ms, ms2) {
			t.Fatalf("token %q does not round-trip: %+v vs %+v", tok, ms, ms2)
		}
	})
}

// FuzzWorkloadToken holds the wl-dimension token round trip,
// including the multi: scenario grammar.
func FuzzWorkloadToken(f *testing.F) {
	for _, seed := range []string{
		"jpeg", "h264", "carradio", "synth16", "jobs32",
		"multi:jpeg+carradio+synth8", "multi:synth2+synth2", "multi:h264",
		"synth512", "jobs02", "multi:jpeg+jpeg+jpeg+jpeg+jpeg+jpeg+jpeg+jpeg",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		w, err := parseWorkload(tok)
		if err != nil {
			return
		}
		w2, err := parseWorkload(w.String())
		if err != nil {
			t.Fatalf("canonical token %q (of %q) does not re-parse: %v", w.String(), tok, err)
		}
		if !reflect.DeepEqual(w, w2) {
			t.Fatalf("token %q does not round-trip: %+v vs %+v", tok, w, w2)
		}
		for _, a := range w.Apps {
			if a.Kind == "jobs" || a.Kind == "multi" {
				t.Fatalf("token %q admitted %q into a multi scenario", tok, a.Kind)
			}
		}
	})
}
