package dse

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
)

// SchemaVersion identifies the JSONL sweep-file layout: a header line
// followed by one Result per line. Bump it whenever the Point or
// Metrics encoding changes incompatibly; merge and resume refuse
// files from another schema rather than silently misreading them.
const SchemaVersion = 1

// Header is the provenance record written as the first line of every
// sweep JSONL file, wrapped as {"header":{...}} so it can never be
// confused with a result line. It pins everything that must match
// for two files to be combinable: the schema version, the sweep spec
// and seed, the hash of the expanded point list (which changes if the
// expansion logic itself changes), the total point count, and — for
// shard files — which contiguous ID range the file covers. Resume
// and merge both validate it and fail loudly on mismatch instead of
// silently discarding or mixing foreign results.
type Header struct {
	// Schema is the file's SchemaVersion.
	Schema int `json:"schema"`
	// Spec is the sweep specification string the file was run with.
	Spec string `json:"spec"`
	// Seed is the sweep seed; all per-point seeds derive from it.
	Seed uint64 `json:"seed"`
	// SpecHash fingerprints the expanded point list (HashPoints).
	SpecHash string `json:"spec_hash"`
	// Points is the total point count of the full (unsharded) sweep.
	Points int `json:"points"`
	// Shard is the ID range this file covers; nil for an unsharded or
	// merged file, which covers all points.
	Shard *Shard `json:"shard,omitempty"`
}

// headerLine is the JSONL wrapper distinguishing the header from
// result lines.
type headerLine struct {
	Header *Header `json:"header"`
}

// HashPoints fingerprints an expanded point list: a SHA-256 over the
// schema version and the JSON encoding of every point (IDs, derived
// seeds, platform/workload/heuristic/fidelity axes). Two sweeps share
// a hash exactly when they expand to identical points, so the hash
// detects a different spec, a different seed, and — because the
// derived seeds are part of the encoding — a change to the expansion
// algorithm itself.
func HashPoints(points []Point) string {
	h := sha256.New()
	fmt.Fprintf(h, "dse-schema-%d\n", SchemaVersion)
	enc := json.NewEncoder(h)
	for _, p := range points {
		// Encoding a Point never fails; ignore the error to keep the
		// hash a pure function.
		_ = enc.Encode(p)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// NewHeader builds the header for a sweep over the given expanded
// points. Pass shard == nil for an unsharded run; merged files use
// the same nil-shard form, which is what makes a merged file
// byte-identical to an unsharded one.
func NewHeader(spec string, seed uint64, points []Point, shard *Shard) Header {
	return Header{
		Schema:   SchemaVersion,
		Spec:     spec,
		Seed:     seed,
		SpecHash: HashPoints(points),
		Points:   len(points),
		Shard:    shard,
	}
}

// sameSweep reports whether two headers describe the same sweep
// (ignoring the shard range), with a descriptive error when not.
func (h Header) sameSweep(other Header) error {
	switch {
	case h.Schema != other.Schema:
		return fmt.Errorf("schema %d vs %d", h.Schema, other.Schema)
	case h.Spec != other.Spec:
		return fmt.Errorf("spec %q vs %q", h.Spec, other.Spec)
	case h.Seed != other.Seed:
		return fmt.Errorf("seed %d vs %d", h.Seed, other.Seed)
	case h.SpecHash != other.SpecHash:
		return fmt.Errorf("spec hash %s vs %s", h.SpecHash, other.SpecHash)
	case h.Points != other.Points:
		return fmt.Errorf("point count %d vs %d", h.Points, other.Points)
	}
	return nil
}

// WriteHeader writes the header as the file's first JSONL line.
func WriteHeader(w io.Writer, h Header) error {
	data, err := json.Marshal(headerLine{Header: &h})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// parseHeader decodes a JSONL line as a header line; ok is false for
// anything else (including result lines and torn fragments).
func parseHeader(line []byte) (Header, bool) {
	var hl headerLine
	if err := json.Unmarshal(line, &hl); err != nil || hl.Header == nil {
		return Header{}, false
	}
	return *hl.Header, true
}

// WriteResult appends one result as a JSONL line. Encoding a Result
// is deterministic (fixed field order, no maps), so a sweep streamed
// through an ordered Engine.OnResult produces byte-identical files
// run-to-run for the same seed.
func WriteResult(w io.Writer, r Result) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// MatchPrefix returns the longest prefix of results that corresponds
// point-for-point to the expanded sweep — the reusable part of a
// checkpoint. A result matches when its embedded point (spec and
// seeds) is identical to the expansion, so a checkpoint from a
// different sweep, seed or engine version is discarded rather than
// silently merged.
func MatchPrefix(points []Point, results []Result) []Result {
	n := 0
	for n < len(results) && n < len(points) && reflect.DeepEqual(results[n].Point, points[n]) {
		n++
	}
	return results[:n]
}

// MaxLineBytes caps one JSONL line (header or result). Real result
// lines are a few hundred bytes; the cap bounds memory when a crashed
// or foreign writer leaves megabytes of garbage in a file — an
// oversized line is consumed and discarded, never buffered whole.
const MaxLineBytes = 1 << 22

// readCappedLine reads one newline-delimited line from br, buffering
// at most MaxLineBytes of it. It returns the line without its newline,
// whether the cap was exceeded (the rest of the line is consumed and
// dropped), and whether the file ended before a newline (a torn final
// line — or clean EOF when the returned line is empty).
func readCappedLine(br *bufio.Reader) (line []byte, tooLong, noNewline bool, err error) {
	for {
		frag, err := br.ReadSlice('\n')
		if !tooLong {
			line = append(line, frag...)
			if len(line) > MaxLineBytes {
				tooLong, line = true, nil
			}
		}
		switch err {
		case nil:
			if !tooLong {
				line = line[:len(line)-1]
			}
			return line, tooLong, false, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			return line, tooLong, true, nil
		default:
			return nil, false, false, err
		}
	}
}

// atEOF reports whether no bytes remain in br.
func atEOF(br *bufio.Reader) bool {
	_, err := br.Peek(1)
	return err == io.EOF
}

// scanResults reads the result lines following a header with
// defensive corruption handling. A line that is oversized or fails to
// decode is salvageable only when it is the file's last line (a crash
// mid-append tears exactly the tail); the same damage mid-file means
// the file did not come from an append-only writer crashing — it is
// corrupt — and strict callers (shard merge) treat even a torn tail
// as damage, because a shard offered for merging claims completeness.
func scanResults(br *bufio.Reader, strict bool, path string) (results []Result, raw [][]byte, err error) {
	lineNo := 1 // the header was line 1
	for {
		lineNo++
		line, tooLong, noNewline, err := readCappedLine(br)
		if err != nil {
			return nil, nil, err
		}
		if noNewline && len(line) == 0 && !tooLong {
			return results, raw, nil // clean EOF
		}
		var res Result
		reason := ""
		if tooLong {
			reason = fmt.Sprintf("exceeds the %d MiB line cap", MaxLineBytes>>20)
		} else if jsonErr := json.Unmarshal(line, &res); jsonErr != nil {
			reason = jsonErr.Error()
		}
		if reason != "" {
			trailing := noNewline || atEOF(br)
			if strict {
				return nil, nil, fmt.Errorf("dse: %s line %d is malformed (torn write?): %s", path, lineNo, reason)
			}
			if !trailing {
				return nil, nil, fmt.Errorf("dse: %s line %d is corrupt mid-file (%s); a crash only tears the final line — refusing to salvage, inspect or delete the file", path, lineNo, reason)
			}
			return results, raw, nil // torn tail: salvage the prefix
		}
		results = append(results, res)
		raw = append(raw, append([]byte(nil), line...))
	}
}

// readHeader reads and validates a file's first line as a Header.
func readHeader(br *bufio.Reader, path, kind string) (Header, error) {
	line, tooLong, noNewline, err := readCappedLine(br)
	if err != nil {
		return Header{}, err
	}
	if noNewline && len(line) == 0 && !tooLong {
		return Header{}, errEmptyFile
	}
	h, ok := parseHeader(line)
	if tooLong || !ok {
		return Header{}, fmt.Errorf("dse: %s %s has no header line (pre-schema file or torn header)", kind, path)
	}
	return h, nil
}

// errEmptyFile marks a zero-byte results file; callers decide whether
// that is an empty checkpoint (fine) or an unverifiable shard (error).
var errEmptyFile = fmt.Errorf("dse: empty file")

// LoadCheckpoint reads a JSONL results file and returns the prefix
// that is valid for the sweep described by want (for a shard run,
// points is the shard's slice and want carries the shard range). A
// missing or empty file is an empty checkpoint, not an error. A file
// whose header is absent, unreadable or from a different sweep —
// spec, seed, schema version or shard range — is an error: resuming
// it would silently throw the file away (or worse, mix sweeps), and
// the caller should either fix the flags or delete the file.
// A torn final line (crash mid-write) is salvaged — everything from
// there on is re-evaluated anyway — but a malformed or oversized line
// with valid data after it is corruption no crash produces, and fails
// loudly instead of silently truncating the checkpoint there.
func LoadCheckpoint(path string, want Header, points []Point) ([]Result, error) {
	results, _, err := readResultFile(path, want, "checkpoint")
	if err != nil || results == nil {
		return nil, err
	}
	return MatchPrefix(points, results), nil
}

// ReadResultLog reads an append-order JSONL results file — a
// coordinator checkpoint, where accepted results land in arrival
// order rather than point order — validating its header against want
// exactly like LoadCheckpoint and salvaging a torn tail the same way.
// It returns the decoded results alongside their original line bytes
// (the coordinator re-emits those bytes, keeping merged output
// byte-identical). A missing or empty file is an empty log.
func ReadResultLog(path string, want Header) ([]Result, [][]byte, error) {
	return readResultFile(path, want, "checkpoint")
}

// readResultFile is the shared loader behind LoadCheckpoint and
// ReadResultLog: header-validated, torn-tail-salvaging, loud on
// mid-file corruption.
func readResultFile(path string, want Header, kind string) ([]Result, [][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	h, err := readHeader(br, path, kind)
	if err == errEmptyFile {
		return nil, nil, nil // empty file: empty checkpoint
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%w; delete it or drop -resume", err)
	}
	if err := want.sameSweep(h); err != nil {
		return nil, nil, fmt.Errorf("dse: %s %s is from a different sweep (%v); refusing to resume", kind, path, err)
	}
	if !reflect.DeepEqual(h.Shard, want.Shard) {
		return nil, nil, fmt.Errorf("dse: %s %s covers %v, not %v; refusing to resume", kind, path, shardLabel(h.Shard), shardLabel(want.Shard))
	}
	return scanResults(br, false, path)
}

// shardLabel names a header's coverage for error messages.
func shardLabel(s *Shard) string {
	if s == nil {
		return "the full sweep"
	}
	return s.String()
}

// ShardFile is one parsed shard result file: its header, decoded
// results, and the raw result lines (merging re-emits the original
// bytes, so a merged file is byte-identical to an unsharded run even
// if a future encoder would format a float differently).
type ShardFile struct {
	// Path is where the file was read from.
	Path string
	// Header is the file's validated provenance line.
	Header Header
	// Results holds the decoded result lines in file order.
	Results []Result
	raw     [][]byte
}

// ReadShardFile reads one shard JSONL file strictly: the header line
// is mandatory and every subsequent line must decode as a Result.
// Unlike checkpoint loading, a torn line is an error — a shard
// offered for merging claims to be complete, and salvaging a prefix
// here would silently drop points. A header-only file is a valid
// empty shard (a worker whose whole lease was reclaimed and finished
// elsewhere checkpoints one).
func ReadShardFile(path string) (*ShardFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	h, err := readHeader(br, path, "shard")
	if err == errEmptyFile {
		return nil, fmt.Errorf("dse: shard %s is empty (no header line)", path)
	}
	if err != nil {
		return nil, err
	}
	sf := &ShardFile{Path: path, Header: h}
	sf.Results, sf.raw, err = scanResults(br, true, "shard "+path)
	if err != nil {
		return nil, err
	}
	return sf, nil
}

// Merged is the outcome of merging shard files back into one sweep:
// an unsharded-form header plus the union of results in point-ID
// order. Duplicates records how many identical duplicate lines were
// dropped (shards with overlapping ranges are legal as long as they
// agree).
type Merged struct {
	// Header is the merged file's header: the shards' common sweep
	// description with the shard range cleared.
	Header Header
	// Results holds every point's result, sorted by point ID.
	Results []Result
	// Duplicates counts identical result lines dropped during
	// de-duplication on point ID.
	Duplicates int
	raw        [][]byte
}

// MergeShards validates and merges shard result files into one sweep.
// Every file's header must describe the same sweep (schema, spec,
// seed, spec hash, point count); the spec is re-expanded and
// re-hashed locally, so a merge run with a drifted engine fails
// rather than producing a file nothing else can reproduce. Results
// are de-duplicated on point ID — byte-identical duplicates are
// dropped, conflicting ones are an error — checked against the local
// expansion point-for-point, and must cover the full sweep: a missing
// shard is reported by its missing ID range, not papered over.
func MergeShards(paths []string) (*Merged, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dse: no shard files to merge")
	}
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	var files []*ShardFile
	for _, p := range sorted {
		sf, err := ReadShardFile(p)
		if err != nil {
			return nil, err
		}
		files = append(files, sf)
	}
	h := files[0].Header
	for _, sf := range files[1:] {
		if err := h.sameSweep(sf.Header); err != nil {
			return nil, fmt.Errorf("dse: shard %s is from a different sweep than %s (%v)", sf.Path, files[0].Path, err)
		}
	}
	if h.Schema != SchemaVersion {
		return nil, fmt.Errorf("dse: shards use schema %d, this engine writes %d", h.Schema, SchemaVersion)
	}
	sw, err := ParseSweep(h.Spec, h.Seed)
	if err != nil {
		return nil, fmt.Errorf("dse: shard header spec does not parse: %w", err)
	}
	points, err := sw.Points()
	if err != nil {
		return nil, err
	}
	if len(points) != h.Points || HashPoints(points) != h.SpecHash {
		return nil, fmt.Errorf("dse: spec %q re-expands to %d points hash %s, but shards were run with %d points hash %s (engine drift?)",
			h.Spec, len(points), HashPoints(points), h.Points, h.SpecHash)
	}
	m := &Merged{Header: h}
	m.Header.Shard = nil
	acc := NewAccumulator(points)
	for _, sf := range files {
		for i, r := range sf.Results {
			if s := sf.Header.Shard; s != nil && (r.Point.ID < s.Lo || r.Point.ID >= s.Hi) {
				return nil, fmt.Errorf("dse: shard %s carries point ID %d outside its declared range %v", sf.Path, r.Point.ID, *s)
			}
			if _, err := acc.AddResult(r, sf.raw[i]); err != nil {
				return nil, fmt.Errorf("shard %s: %w (conflicting shards?)", sf.Path, err)
			}
		}
	}
	if missing, firstMissing := acc.Missing(); missing > 0 {
		return nil, fmt.Errorf("dse: merge is missing %d of %d points (first missing ID %d) — is a shard file absent from the glob?",
			missing, len(points), firstMissing)
	}
	m.Duplicates = acc.Duplicates()
	m.Results = acc.Results()
	m.raw = acc.raw
	return m, nil
}

// WriteTo streams the merged sweep — header plus every result line in
// point-ID order, using the shards' original bytes — to w. The output
// is byte-identical to an unsharded run of the same spec and seed.
func (m *Merged) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if err := WriteHeader(cw, m.Header); err != nil {
		return cw.n, err
	}
	for _, line := range m.raw {
		if _, err := cw.Write(line); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte{'\n'}); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// countWriter counts bytes written through it (io.WriterTo contract).
type countWriter struct {
	w io.Writer
	n int64
}

// Write forwards to the wrapped writer and tallies bytes.
func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
